// Request-path micro benchmarks: the batched admission tick at fleet
// scale. One tick aggregates every arrival of a decision period — the
// O(ticks)-not-O(requests) trick — so this is the entire per-period cost
// of request-level elasticity. The benchdiff gate watches allocs/op
// (must stay 0: the tick runs inside the manager's event handler) and
// users/sec throughput.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// benchAdmissionTick drives the admission controller at ~1.2x the
// capacity of an nServers fleet, so the fair-share and shedding paths
// (not just the fast admit-all path) are in the loop.
func benchAdmissionTick(b *testing.B, nServers int) {
	b.Helper()
	cfg := workload.DefaultAdmissionConfig()
	adm, err := workload.NewAdmission(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const dt = time.Minute
	mix := workload.DefaultClassMix()
	var erl, fresh [workload.NumClasses]float64
	mix.Split(float64(nServers)*1.2, &erl)
	for c := 0; c < workload.NumClasses; c++ {
		rate := erl[c] / cfg.Classes[c].ServiceTime.Seconds()
		fresh[c] = workload.UsersPerTick(rate, dt)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var users float64
	for i := 0; i < b.N; i++ {
		out := adm.Tick(dt, &fresh, float64(nServers))
		for c := 0; c < workload.NumClasses; c++ {
			users += out.Offered[c]
		}
	}
	b.ReportMetric(users/b.Elapsed().Seconds(), "users/sec")
}

// BenchmarkAdmissionTick1k is the CI-sized tier.
func BenchmarkAdmissionTick1k(b *testing.B) { benchAdmissionTick(b, 1_000) }

// BenchmarkAdmissionTick10k is the headline tier: tens of millions of
// users per tick admitted through one allocation-free pass.
func BenchmarkAdmissionTick10k(b *testing.B) { benchAdmissionTick(b, 10_000) }
