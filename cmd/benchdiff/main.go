// Command benchdiff runs the repository's benchmark suite, emits the
// results as machine-readable JSON, and statistically compares a run
// against a checked-in baseline (BENCH_baseline.json at the repo root).
// It is the benchmark-regression gate: a significant worsening beyond the
// threshold in a gated metric fails the run.
//
//	benchdiff -out BENCH_baseline.json                 # refresh the baseline
//	benchdiff -baseline BENCH_baseline.json            # run + compare, exit 1 on regression
//	benchdiff -baseline old.json -candidate new.json   # compare two files, no run
//
// Metrics are classified by unit: allocs/op, B/op and ns/op are
// lower-is-better; units containing "/sec" or "/min" (events/sec,
// points/min) are throughput, higher-is-better. Which classes fail the
// run is chosen with -gate (default "allocs,throughput"); ns/op is
// always informational because wall time on shared runners is noise.
// Significance is a two-sided Mann–Whitney U test (the same test
// benchstat applies), so a single noisy run cannot fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Results maps benchmark name -> metric unit -> samples (one per -count
// run).
type Results map[string]map[string][]float64

// File is the JSON document benchdiff reads and writes.
type File struct {
	GoVersion  string  `json:"go_version,omitempty"`
	Benchtime  string  `json:"benchtime,omitempty"`
	Count      int     `json:"count,omitempty"`
	Benchmarks Results `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	bench := fs.String("bench", ".", "benchmark regex passed to go test -bench")
	packages := fs.String("packages", "./...", "comma-separated package patterns to bench")
	count := fs.Int("count", 5, "runs per benchmark (samples for the significance test)")
	benchtime := fs.String("benchtime", "1x", "go test -benchtime value")
	short := fs.Bool("short", false, "pass -short to go test (skips the 10k/100k scale tiers)")
	outFile := fs.String("out", "", "write this run's results JSON to this file")
	baseline := fs.String("baseline", "", "compare against this baseline JSON; exit 1 on gated regressions")
	candidate := fs.String("candidate", "", "compare this results JSON instead of running the benchmarks")
	gate := fs.String("gate", "allocs,throughput", "comma-separated metric classes that fail the run: allocs, throughput, time")
	threshold := fs.Float64("threshold", 0.15, "relative regression beyond which a significant delta fails")
	alpha := fs.Float64("alpha", 0.05, "significance level for the Mann-Whitney test")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cur Results
	var err error
	if *candidate != "" {
		f, err := loadFile(*candidate)
		if err != nil {
			return err
		}
		cur = f.Benchmarks
	} else {
		cur, err = runBenchmarks(out, *bench, *packages, *benchtime, *count, *short)
		if err != nil {
			return err
		}
	}
	if len(cur) == 0 {
		return fmt.Errorf("no benchmark results collected")
	}

	if *outFile != "" {
		doc := File{GoVersion: runtime.Version(), Benchtime: *benchtime, Count: *count, Benchmarks: cur}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d benchmarks)\n", *outFile, len(cur))
	}

	if *baseline != "" {
		base, err := loadFile(*baseline)
		if err != nil {
			return err
		}
		report, regressions := compare(base.Benchmarks, cur, gateSet(*gate), *threshold, *alpha)
		fmt.Fprint(out, report)
		if regressions > 0 {
			return fmt.Errorf("%d gated benchmark regression(s) vs %s", regressions, *baseline)
		}
		fmt.Fprintf(out, "no gated regressions vs %s\n", *baseline)
	}
	return nil
}

func loadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("%s: no benchmarks", path)
	}
	return f, nil
}

// runBenchmarks shells out to go test and folds the parsed output of all
// packages into one result set.
func runBenchmarks(out io.Writer, bench, packages, benchtime string, count int, short bool) (Results, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "-benchmem"}
	if short {
		args = append(args, "-short")
	}
	args = append(args, strings.Split(packages, ",")...)
	fmt.Fprintf(out, "running: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(&buf, out)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return parseBenchOutput(strings.NewReader(buf.String()))
}

// parseBenchOutput extracts per-benchmark metric samples from go test
// -bench output. Lines look like:
//
//	BenchmarkName/case=1-8  	 1  	1018 ns/op  	24 B/op  	1 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so results compare
// across machines with different core counts.
func parseBenchOutput(r io.Reader) (Results, error) {
	res := Results{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := stripProcs(fields[0])
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if res[name] == nil {
				res[name] = map[string][]float64{}
			}
			res[name][unit] = append(res[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// stripProcs removes a trailing -N GOMAXPROCS suffix from a benchmark
// name.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// metric classes for gating.
const (
	classAllocs     = "allocs"
	classThroughput = "throughput"
	classTime       = "time"
	classOther      = ""
)

// classify buckets a metric unit: allocs/op is its own gate class,
// "/sec" and "/min" units are throughput (higher is better), ns/op and
// B/op are time-like (lower is better, informational by default).
func classify(unit string) (class string, higherBetter bool) {
	switch {
	case unit == "allocs/op":
		return classAllocs, false
	case strings.Contains(unit, "/sec") || strings.Contains(unit, "/min"):
		return classThroughput, true
	case unit == "ns/op" || unit == "B/op":
		return classTime, false
	default:
		return classOther, false
	}
}

func gateSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			set[c] = true
		}
	}
	return set
}

func median(xs []float64) float64 {
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare renders a delta table of every (benchmark, metric) present in
// both sets and counts gated regressions: significant (Mann-Whitney p <
// alpha) worsenings beyond the threshold in a gated metric class.
func compare(base, cur Results, gated map[string]bool, threshold, alpha float64) (string, int) {
	var names []string
	for name := range base {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	regressions := 0
	for _, name := range names {
		var units []string
		for unit := range base[name] {
			if _, ok := cur[name][unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			old, new_ := base[name][unit], cur[name][unit]
			mo, mn := median(old), median(new_)
			var delta float64
			switch {
			case mo == mn:
				delta = 0
			case mo == 0:
				delta = math.Inf(1)
			default:
				delta = (mn - mo) / math.Abs(mo)
			}
			mw, err := stats.MannWhitneyU(old, new_)
			significant := err == nil && mw.P < alpha
			class, higherBetter := classify(unit)
			worse := delta > threshold
			if higherBetter {
				worse = delta < -threshold
			}
			verdict := "~"
			switch {
			case !significant:
				verdict = "~" // indistinguishable
			case worse && gated[class]:
				verdict = "REGRESSION"
				regressions++
			case worse:
				verdict = "worse (informational)"
			default:
				verdict = "ok"
			}
			p := math.NaN()
			if err == nil {
				p = mw.P
			}
			fmt.Fprintf(&b, "%-55s %14s  %12.6g -> %12.6g  %+7.1f%%  p=%.3f  %s\n",
				name, unit, mo, mn, delta*100, p, verdict)
		}
	}
	return b.String(), regressions
}
