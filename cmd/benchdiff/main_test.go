package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Some CPU
BenchmarkSchedule/pending=10000-8         	       1	      1018 ns/op	      24 B/op	       1 allocs/op
BenchmarkSchedule/pending=10000-8         	       1	      1100 ns/op	      24 B/op	       1 allocs/op
BenchmarkRunLargeQueue/events=100000-8    	       1	  16133264 ns/op	   6199024 events/sec	       0 B/op	       0 allocs/op
BenchmarkRunLargeQueue/events=100000-8    	       1	  17000000 ns/op	   6000000 events/sec	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/sim	0.958s
`

func TestParseBenchOutput(t *testing.T) {
	res, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	sched, ok := res["BenchmarkSchedule/pending=10000"]
	if !ok {
		t.Fatalf("missing schedule bench (GOMAXPROCS suffix not stripped?); have %v", res)
	}
	if got := sched["ns/op"]; len(got) != 2 || got[0] != 1018 || got[1] != 1100 {
		t.Errorf("ns/op samples = %v", got)
	}
	if got := sched["allocs/op"]; len(got) != 2 || got[0] != 1 {
		t.Errorf("allocs/op samples = %v", got)
	}
	runq := res["BenchmarkRunLargeQueue/events=100000"]
	if got := runq["events/sec"]; len(got) != 2 || got[0] != 6199024 {
		t.Errorf("events/sec samples = %v", got)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo/case=1-16":  "BenchmarkFoo/case=1",
		"BenchmarkFoo":            "BenchmarkFoo",
		"BenchmarkFoo/pending=10": "BenchmarkFoo/pending=10",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestClassify(t *testing.T) {
	if c, hb := classify("allocs/op"); c != classAllocs || hb {
		t.Errorf("allocs/op -> %q %v", c, hb)
	}
	if c, hb := classify("events/sec"); c != classThroughput || !hb {
		t.Errorf("events/sec -> %q %v", c, hb)
	}
	if c, hb := classify("points/min"); c != classThroughput || !hb {
		t.Errorf("points/min -> %q %v", c, hb)
	}
	if c, hb := classify("ns/op"); c != classTime || hb {
		t.Errorf("ns/op -> %q %v", c, hb)
	}
}

func mkResults(allocs, throughput []float64) Results {
	return Results{
		"BenchmarkX": {
			"allocs/op":  allocs,
			"events/sec": throughput,
		},
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	base := mkResults([]float64{100, 100, 101, 100, 100}, []float64{1000, 1001, 999, 1000, 1002})
	cur := mkResults([]float64{150, 151, 150, 150, 152}, []float64{1000, 1001, 999, 1000, 1002})
	report, regs := compare(base, cur, gateSet("allocs,throughput"), 0.15, 0.05)
	if regs != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regs, report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report missing REGRESSION:\n%s", report)
	}
}

func TestCompareDetectsThroughputRegression(t *testing.T) {
	base := mkResults([]float64{1, 1, 1, 1, 1}, []float64{1000, 1001, 999, 1000, 1002})
	cur := mkResults([]float64{1, 1, 1, 1, 1}, []float64{700, 699, 701, 702, 698})
	_, regs := compare(base, cur, gateSet("allocs,throughput"), 0.15, 0.05)
	if regs != 1 {
		t.Fatalf("regressions = %d, want 1", regs)
	}
	// Higher throughput must NOT be a regression.
	cur2 := mkResults([]float64{1, 1, 1, 1, 1}, []float64{2000, 2001, 1999, 2002, 1998})
	_, regs = compare(base, cur2, gateSet("allocs,throughput"), 0.15, 0.05)
	if regs != 0 {
		t.Fatalf("improvement flagged as regression")
	}
}

func TestCompareInsignificantNoiseDoesNotGate(t *testing.T) {
	// Overlapping samples: a >15% median delta without separation must
	// not fail the gate.
	base := mkResults([]float64{100, 140, 90, 130, 95}, []float64{1, 1, 1, 1, 1})
	cur := mkResults([]float64{130, 95, 145, 100, 135}, []float64{1, 1, 1, 1, 1})
	report, regs := compare(base, cur, gateSet("allocs,throughput"), 0.15, 0.05)
	if regs != 0 {
		t.Fatalf("noise gated as regression:\n%s", report)
	}
}

func TestCompareTimeIsInformational(t *testing.T) {
	base := Results{"BenchmarkX": {"ns/op": {100, 100, 101, 100, 100}}}
	cur := Results{"BenchmarkX": {"ns/op": {300, 301, 300, 299, 300}}}
	report, regs := compare(base, cur, gateSet("allocs,throughput"), 0.15, 0.05)
	if regs != 0 {
		t.Fatalf("ns/op gated: %d regressions\n%s", regs, report)
	}
	if !strings.Contains(report, "informational") {
		t.Errorf("report should mark the worsening informational:\n%s", report)
	}
	// But it gates when asked to.
	_, regs = compare(base, cur, gateSet("time"), 0.15, 0.05)
	if regs != 1 {
		t.Fatalf("time gate did not fire")
	}
}

func TestRunCompareFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f File) string {
		p := filepath.Join(dir, name)
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", File{Benchmarks: mkResults(
		[]float64{100, 100, 100, 100, 100}, []float64{1000, 1000, 1000, 1000, 1000})})
	sameP := write("same.json", File{Benchmarks: mkResults(
		[]float64{100, 100, 100, 100, 100}, []float64{1001, 1000, 999, 1000, 1001})})
	worseP := write("worse.json", File{Benchmarks: mkResults(
		[]float64{200, 200, 201, 200, 200}, []float64{1000, 1000, 1000, 1000, 1000})})

	var out strings.Builder
	if err := run([]string{"-baseline", base, "-candidate", sameP}, &out); err != nil {
		t.Fatalf("clean compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no gated regressions") {
		t.Errorf("missing pass line:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-baseline", base, "-candidate", worseP}, &out); err == nil {
		t.Fatalf("regression compare passed:\n%s", out.String())
	}
}

func TestRunWritesOut(t *testing.T) {
	dir := t.TempDir()
	cand := filepath.Join(dir, "c.json")
	data, _ := json.Marshal(File{Benchmarks: mkResults([]float64{1}, []float64{2})})
	if err := os.WriteFile(cand, data, 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.json")
	var out strings.Builder
	if err := run([]string{"-candidate", cand, "-out", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := loadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 {
		t.Errorf("round-tripped %d benchmarks", len(f.Benchmarks))
	}
}
