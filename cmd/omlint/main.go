// Command omlint validates an OpenMetrics text exposition read from
// stdin (or from files given as arguments) against the subset of the
// format this repo's /metrics endpoint promises: metadata-before-samples,
// contiguous family blocks, _total-suffixed counters, unit-suffix naming,
// and the trailing "# EOF". CI pipes a live scrape through it so a
// writer regression fails the pipeline.
//
//	curl -s localhost:8080/metrics | omlint
//	omlint scrape-a.txt scrape-b.txt
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omlint:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		return serve.Lint(data)
	}
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := serve.Lint(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}
