package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMode(t *testing.T) {
	for _, name := range []string{"always-on", "onoff-only", "dvfs-only", "oblivious", "coordinated"} {
		if _, err := parseMode(name); err != nil {
			t.Errorf("parseMode(%q): %v", name, err)
		}
	}
	if _, err := parseMode("nope"); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-mode", "coordinated", "-fleet", "8", "-days", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.csv")
	if err := run([]string{"-mode", "onoff-only", "-fleet", "6", "-days", "1", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "seconds,offered,active,pstate,power_w,response_ms,dropped" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 1+24*60 {
		t.Errorf("csv rows = %d, want %d", len(lines)-1, 24*60)
	}
}

func TestRunFacility(t *testing.T) {
	if err := run([]string{"-mode", "coordinated", "-fleet", "10", "-days", "1", "-facility"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus"},
		{"-days", "0"},
		{"-fleet", "0"},
		{"-min-load", "0.9", "-max-load", "0.5"},
		{"-max-load", "1.5"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}
