package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMode(t *testing.T) {
	for _, name := range []string{"always-on", "onoff-only", "dvfs-only", "oblivious", "coordinated"} {
		if _, err := parseMode(name); err != nil {
			t.Errorf("parseMode(%q): %v", name, err)
		}
	}
	if _, err := parseMode("nope"); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-mode", "coordinated", "-fleet", "8", "-days", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.csv")
	if err := run([]string{"-mode", "onoff-only", "-fleet", "6", "-days", "1", "-csv", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "seconds,offered,active,pstate,power_w,response_ms,dropped" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 1+24*60 {
		t.Errorf("csv rows = %d, want %d", len(lines)-1, 24*60)
	}
}

func TestRunUsers(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "coordinated", "-fleet", "8", "-days", "1", "-users"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"users offered:", "users admitted:", "users rejected:", "SLO misses interactive:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunUsersRetry(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "coordinated", "-fleet", "8", "-days", "1", "-users", "-retry", "budget"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"users retried:", "users abandoned:", "breaker:", "amplification"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRetryFlagValidation(t *testing.T) {
	if err := run([]string{"-retry", "bogus"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-retry") {
		t.Errorf("bogus -retry not rejected: %v", err)
	}
	if err := run([]string{"-retry", "naive"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-users") {
		t.Errorf("-retry without -users not rejected: %v", err)
	}
}

func TestRunFacility(t *testing.T) {
	if err := run([]string{"-mode", "coordinated", "-fleet", "10", "-days", "1", "-facility"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus"},
		{"-days", "0"},
		{"-fleet", "0"},
		{"-min-load", "0.9", "-max-load", "0.5"},
		{"-min-load", "-0.1"},
		{"-max-load", "1.5"},
		{"-speedup", "0"},
		{"-speedup", "-2"},
		{"-sla", "0"},
		{"-carbon", "-10"},
		{"-carbon-swing", "1.5"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}

func TestRunGeoSites(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sites", "2", "-fleet", "12", "-days", "1", "-retry", "budget"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mode=weighted sites=2", "routing epochs:", "users goodput:",
		"site-0", "site-1", "weight",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("geo output missing %q:\n%s", want, out.String())
		}
	}
}

// TestGeoSitesValidation pins the federated flag rules into the same
// aggregated one-error report the single-site flags use.
func TestGeoSitesValidation(t *testing.T) {
	err := run([]string{
		"-sites", "1", "-csv", "x.csv", "-mode", "oblivious", "-speedup", "0",
	}, io.Discard)
	if err == nil {
		t.Fatal("bad federated flag set should be rejected")
	}
	msg := err.Error()
	for _, want := range []string{"-sites 1", "-speedup 0"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
	err = run([]string{
		"-sites", "2", "-csv", "x.csv", "-mode", "oblivious", "-facility", "-fleet", "25",
	}, io.Discard)
	if err == nil {
		t.Fatal("bad federated flag set should be rejected")
	}
	msg = err.Error()
	for _, want := range []string{"-csv", "-mode \"oblivious\"", "divisible by 20"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestRunValidationReportsEverything pins the bugfix: a command line with
// several bad flags must come back with one error naming all of them, not
// just the first — the old checks returned on the first hit and never
// looked at -speedup at all.
func TestRunValidationReportsEverything(t *testing.T) {
	err := run([]string{
		"-mode", "bogus", "-fleet", "0", "-days", "-1",
		"-min-load", "0.9", "-max-load", "0.5", "-speedup", "0",
	}, io.Discard)
	if err == nil {
		t.Fatal("run should reject the flag set")
	}
	msg := err.Error()
	for _, want := range []string{"-mode", "-fleet 0", "-days -1", "-min-load 0.9", "-speedup 0"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestValidateAcceptsDefaults guards against the aggregated validator
// rejecting the documented defaults.
func TestValidateAcceptsDefaults(t *testing.T) {
	o := options{
		modeStr: "coordinated", fleet: 40, days: 3, slaMS: 100,
		minFrac: 0.15, maxFrac: 0.5, speedup: 60,
		carbonBase: 475, carbonSwing: 0.2,
	}
	if err := o.validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}
