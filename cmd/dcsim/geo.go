package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/geo"
	"repro/internal/serve"
	"repro/internal/workload"
)

// geoConfig maps the command line onto a federation: -sites complete
// facilities with evenly spread time zones and equal population shares,
// each running the same per-site stack the single-site path would
// (admission always, the retry loop when -retry asks, the full facility
// substrate when -facility is set). Demand comes from the federation's
// shared global trace, so -min-load/-max-load do not apply here.
func (o options) geoConfig() geo.Config {
	policy, retryOn, _ := parseRetry(o.retryStr)
	cfg := geo.Config{
		Seed:        o.seed,
		Epoch:       30 * time.Minute,
		Tick:        time.Minute,
		Horizon:     time.Duration(o.days) * 24 * time.Hour,
		Mode:        geo.RouteWeighted,
		Parallel:    true,
		SiteWorkers: o.workers,
	}
	for i := 0; i < o.sites; i++ {
		sc := geo.SiteConfig{
			Name:            fmt.Sprintf("site-%d", i),
			TZOffset:        time.Duration(i) * 24 * time.Hour / time.Duration(o.sites),
			PopulationShare: 1,
			FleetSize:       o.fleet,
			Facility:        o.facility,
			Carbon:          o.carbonModel(),
			Retry:           retryOn,
		}
		if retryOn {
			rcfg := workload.DefaultRetryConfig(policy)
			rcfg.Breaker = workload.DefaultBreakerConfig()
			sc.RetryConfig = &rcfg
		}
		cfg.Sites = append(cfg.Sites, sc)
	}
	return cfg
}

// runGeo executes the federated path of the command: batch-run the
// federation and print the global and per-site summaries, or serve it
// live when -serve is set.
func runGeo(o options, stdout io.Writer) error {
	fed, err := geo.New(o.geoConfig())
	if err != nil {
		return err
	}
	defer fed.Close()

	if o.serveMode {
		return runServeGeo(fed, o, stdout)
	}

	if err := fed.Run(); err != nil {
		return err
	}
	res := fed.Result()
	fmt.Fprintf(stdout, "mode=%s sites=%d fleet=%d/site days=%d seed=%d\n",
		res.Mode, len(res.Sites), o.fleet, o.days, o.seed)
	fmt.Fprintf(stdout, "IT energy:        %.2f kWh (peak %.1f kW)\n",
		res.GlobalEnergyKWh, res.GlobalPeakPowerW/1e3)
	fmt.Fprintf(stdout, "routing epochs:   %d\n", res.Epochs)
	fmt.Fprintf(stdout, "users offered:    %.0f\n", res.OfferedUsers)
	fmt.Fprintf(stdout, "users rejected:   %.0f (%.2f%%)\n", res.RejectedUsers, res.RejectedFrac*100)
	fmt.Fprintf(stdout, "users goodput:    %.0f\n", res.GoodputUsers)
	fmt.Fprintf(stdout, "carbon:           %.0f gCO2e\n", res.GramsCO2e)
	for _, s := range res.Sites {
		fmt.Fprintf(stdout, "%-10s %9.1f kWh  mean %5.1f active  rejected %6.2f%%  weight %.3f  trips %d\n",
			s.Name, s.EnergyKWh, s.MeanActive, s.RejectedFrac*100, s.MeanWeight, s.ThermalTrips)
	}
	return nil
}

// runServeGeo paces the federation against the wall clock and serves
// the merged multi-site state over HTTP, mirroring runServe.
func runServeGeo(fed *geo.Federation, o options, stdout io.Writer) error {
	srv, err := serve.NewGeoServer(fed, serve.Options{Speedup: o.speedup})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "dcsim: serving %d federated sites on http://%s (fleet=%d/site speedup=%gx horizon=%s)\n",
		len(fed.Sites()), ln.Addr(), o.fleet, o.speedup, fed.Config().Horizon)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	paceErr := srv.Run(ctx)

	srv.Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)

	select {
	case err := <-httpErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	default:
	}
	if paceErr != nil && !errors.Is(paceErr, context.Canceled) {
		return paceErr
	}
	snap := srv.Snapshot()
	fmt.Fprintf(stdout, "dcsim: stopped at sim time %s (%d epochs, %.2f kWh, %.0f gCO2e)\n",
		time.Duration(snap.SimTimeSeconds*float64(time.Second)).Round(time.Second),
		snap.Epochs, snap.EnergyJoules/3.6e6, snap.GramsCO2e)
	return nil
}
