// Command dcsim runs a configurable elastic-power-management simulation:
// a server fleet under one of the five policy modes, driven by a diurnal
// demand, optionally embedded in a full facility (power tree + cooling)
// so PUE and thermal effects are reported too.
//
//	dcsim -mode coordinated -fleet 40 -days 3
//	dcsim -mode oblivious -fleet 40 -days 3 -csv samples.csv
//	dcsim -mode coordinated -facility -days 2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
}

func parseMode(s string) (core.PolicyMode, error) {
	switch s {
	case "always-on":
		return core.ModeAlwaysOn, nil
	case "onoff-only":
		return core.ModeOnOffOnly, nil
	case "dvfs-only":
		return core.ModeDVFSOnly, nil
	case "oblivious":
		return core.ModeOblivious, nil
	case "coordinated":
		return core.ModeCoordinated, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (always-on|onoff-only|dvfs-only|oblivious|coordinated)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcsim", flag.ContinueOnError)
	modeStr := fs.String("mode", "coordinated", "policy mode")
	fleet := fs.Int("fleet", 40, "fleet size")
	days := fs.Int("days", 3, "simulated days")
	seed := fs.Int64("seed", 1, "deterministic seed")
	slaMS := fs.Int("sla", 100, "SLA response target (ms)")
	minFrac := fs.Float64("min-load", 0.15, "night demand as fraction of fleet capacity")
	maxFrac := fs.Float64("max-load", 0.50, "day demand as fraction of fleet capacity")
	csvPath := fs.String("csv", "", "write per-decision samples to this CSV file")
	facility := fs.Bool("facility", false, "embed the fleet in a full facility (power tree + cooling)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		return err
	}
	if *days <= 0 || *fleet <= 0 {
		return fmt.Errorf("days and fleet must be positive")
	}
	if *minFrac < 0 || *maxFrac > 1 || *minFrac >= *maxFrac {
		return fmt.Errorf("load fractions must satisfy 0 <= min < max <= 1")
	}

	srvCfg := server.DefaultConfig()
	e := sim.NewEngine(*seed)
	demand := func(now time.Duration) float64 {
		h := now.Hours() - 24*float64(int(now.Hours()/24))
		frac := *minFrac + (*maxFrac-*minFrac)*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * float64(*fleet) * srvCfg.Capacity
	}
	mgrCfg := core.ManagerConfig{
		ServerConfig:   srvCfg,
		FleetSize:      *fleet,
		Queue:          workload.DefaultQueueModel(),
		SLA:            time.Duration(*slaMS) * time.Millisecond,
		DecisionPeriod: time.Minute,
		Mode:           mode,
		DVFSTarget:     0.8,
		Trigger: onoff.DelayTrigger{
			High:   time.Duration(*slaMS) * time.Millisecond * 6 / 10,
			Low:    time.Duration(*slaMS) * time.Millisecond / 4,
			StepUp: 1, StepDown: 1, Min: 1, Max: *fleet,
		},
		InitialOn: *fleet / 2,
		Record:    *csvPath != "",
	}

	var dc *core.DataCenter
	var mgr *core.Manager
	if *facility {
		dc, mgr, err = buildFacility(e, srvCfg, mgrCfg, demand)
		if err != nil {
			return err
		}
	} else {
		mgr, err = core.NewManager(e, mgrCfg, demand)
		if err != nil {
			return err
		}
	}
	mgr.Start()

	var pueSum float64
	var pueN int
	if dc != nil {
		e.Every(15*time.Minute, func(*sim.Engine) {
			if pue, _, err := dc.PUEAt(18, 0.5); err == nil {
				pueSum += pue
				pueN++
			}
		})
	}

	horizon := time.Duration(*days) * 24 * time.Hour
	if err := e.Run(horizon); err != nil {
		return err
	}
	res := mgr.Result(horizon)

	fmt.Printf("mode=%s fleet=%d days=%d seed=%d\n", res.Mode, *fleet, *days, *seed)
	fmt.Printf("IT energy:        %.2f kWh\n", res.EnergyKWh)
	fmt.Printf("mean active:      %.1f servers\n", res.MeanActive)
	fmt.Printf("power switches:   %d on, %d off\n", res.SwitchOns, res.SwitchOffs)
	fmt.Printf("SLA violations:   %.2f%% of decisions (worst %v)\n",
		res.SLAViolationRate*100, res.WorstResponse.Round(time.Millisecond))
	fmt.Printf("dropped load:     %.3f%%\n", res.DroppedFraction*100)
	if dc != nil && pueN > 0 {
		fmt.Printf("mean PUE:         %.2f\n", pueSum/float64(pueN))
		fmt.Printf("thermal trips:    %d\n", dc.Trips())
	}

	if *csvPath != "" {
		var b strings.Builder
		b.WriteString("seconds,offered,active,pstate,power_w,response_ms,dropped\n")
		for _, s := range res.Samples {
			fmt.Fprintf(&b, "%d,%.1f,%d,%d,%.1f,%.2f,%.1f\n",
				int64(s.At.Seconds()), s.Offered, s.Active, s.PState,
				s.PowerW, float64(s.Response)/float64(time.Millisecond), s.Dropped)
		}
		if err := os.WriteFile(*csvPath, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *csvPath)
	}
	return nil
}

// buildFacility wraps the managed fleet in a power tree and cooling room
// sized for the fleet.
func buildFacility(e *sim.Engine, srvCfg server.Config, mgrCfg core.ManagerConfig, demand core.DemandFunc) (*core.DataCenter, *core.Manager, error) {
	perRack := 10
	racks := (mgrCfg.FleetSize + perRack - 1) / perRack
	if racks < 1 {
		racks = 1
	}
	// One zone per pair of racks, at least one.
	zones := (racks + 1) / 2
	roomCfg := cooling.RoomConfig{PhysicsTick: cooling.DefaultPhysicsTick}
	for z := 0; z < zones; z++ {
		roomCfg.Zones = append(roomCfg.Zones, cooling.DefaultZone(fmt.Sprintf("z%d", z)))
		roomCfg.Sensitivity = append(roomCfg.Sensitivity, []float64{0.9})
	}
	roomCfg.CRACs = []cooling.CRACConfig{cooling.DefaultCRAC("c0")}
	zoneOfRack := make([]int, racks)
	for r := range zoneOfRack {
		zoneOfRack[r] = r / 2
	}
	plant := cooling.DefaultPlantConfig()
	plant.FanRatedW = 50 * float64(mgrCfg.FleetSize) // ~17 % of peak IT

	dcCfg := core.DataCenterConfig{
		Name:           "dcsim",
		ServerConfig:   srvCfg,
		ServersPerRack: perRack,
		Topology: power.TopologyConfig{
			UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: racks,
			RackRatedW: float64(perRack) * srvCfg.PeakPower * 1.1, Oversubscription: 1,
		},
		Room:        roomCfg,
		ZoneOfRack:  zoneOfRack,
		Plant:       plant,
		SampleEvery: 15 * time.Second,
	}
	dc, err := core.NewDataCenter(e, dcCfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := dc.Attach(); err != nil {
		return nil, nil, err
	}
	mgrCfg.FleetSize = dc.Fleet().Size()
	mgrCfg.Trigger.Max = dc.Fleet().Size()
	mgr, err := core.NewManagerForFleet(e, mgrCfg, dc.Fleet(), demand)
	if err != nil {
		return nil, nil, err
	}
	return dc, mgr, nil
}
