// Command dcsim runs a configurable elastic-power-management simulation:
// a server fleet under one of the five policy modes, driven by a diurnal
// demand, optionally embedded in a full facility (power tree + cooling)
// so PUE and thermal effects are reported too.
//
// Batch mode runs the horizon flat-out and prints a summary:
//
//	dcsim -mode coordinated -fleet 40 -days 3
//	dcsim -mode oblivious -fleet 40 -days 3 -csv samples.csv
//	dcsim -mode coordinated -facility -days 2
//	dcsim -sites 4 -fleet 40 -days 1          # geo-federation: one facility per site
//	                                          # behind the epoch-synchronized router
//
// Live mode (-serve) paces the same simulation against the wall clock
// and serves it over HTTP — OpenMetrics at /metrics, JSON at
// /api/v1/snapshot, SSE at /api/v1/stream:
//
//	dcsim -serve -facility -speedup 600 -listen 127.0.0.1:8080
//
// Same seed, same horizon, same flags ⇒ the live run's telemetry is
// byte-identical to the batch run's: the pacer only slices the event
// kernel's Run calls, which is outcome-neutral.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/carbon"
	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/serve"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
}

func parseMode(s string) (core.PolicyMode, error) {
	switch s {
	case "always-on":
		return core.ModeAlwaysOn, nil
	case "onoff-only":
		return core.ModeOnOffOnly, nil
	case "dvfs-only":
		return core.ModeDVFSOnly, nil
	case "oblivious":
		return core.ModeOblivious, nil
	case "coordinated":
		return core.ModeCoordinated, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (always-on|onoff-only|dvfs-only|oblivious|coordinated)", s)
	}
}

// parseRetry maps the -retry flag to a client retry policy; "none"
// disables the closed loop.
func parseRetry(s string) (workload.RetryPolicy, bool, error) {
	switch s {
	case "", "none":
		return 0, false, nil
	case "naive":
		return workload.RetryNaive, true, nil
	case "backoff":
		return workload.RetryBackoff, true, nil
	case "budget":
		return workload.RetryBudget, true, nil
	default:
		return 0, false, fmt.Errorf("unknown retry policy %q (none|naive|backoff|budget)", s)
	}
}

// options carries the parsed command line.
type options struct {
	modeStr     string
	fleet       int
	days        int
	seed        int64
	slaMS       int
	minFrac     float64
	maxFrac     float64
	csvPath     string
	facility    bool
	users       bool
	retryStr    string
	serveMode   bool
	listen      string
	speedup     float64
	carbonBase  float64
	carbonSwing float64
	workers     int
	sites       int
}

// validate collects every flag violation into one error, so a user with
// three bad flags fixes all three after one run instead of playing
// whack-a-mole. (This replaces the old early-return checks, which
// reported only the first problem — and skipped -speedup entirely.)
func (o options) validate() error {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if _, err := parseMode(o.modeStr); err != nil {
		bad("-mode: %v", err)
	}
	if o.fleet <= 0 {
		bad("-fleet %d must be positive", o.fleet)
	}
	if o.days <= 0 {
		bad("-days %d must be positive", o.days)
	}
	if o.slaMS <= 0 {
		bad("-sla %d must be positive", o.slaMS)
	}
	if o.minFrac < 0 {
		bad("-min-load %v must be non-negative", o.minFrac)
	}
	if o.maxFrac > 1 {
		bad("-max-load %v must be at most 1", o.maxFrac)
	}
	if o.minFrac >= o.maxFrac {
		bad("-min-load %v must be below -max-load %v", o.minFrac, o.maxFrac)
	}
	if o.speedup <= 0 {
		bad("-speedup %v must be positive", o.speedup)
	}
	if _, enabled, err := parseRetry(o.retryStr); err != nil {
		bad("-retry: %v", err)
	} else if enabled && !o.users && o.sites == 0 {
		// Federated sites always run admission control, so -retry stands
		// alone there; the single-site path needs -users to front the
		// fleet with it first.
		bad("-retry %q needs -users (retries close the loop around admission control)", o.retryStr)
	}
	if err := o.carbonModel().Validate(); err != nil {
		bad("-carbon/-carbon-swing: %v", err)
	}
	if o.workers < 0 {
		bad("-workers %d must be non-negative", o.workers)
	}
	if o.sites != 0 && o.sites < 2 {
		bad("-sites %d must be at least 2 (0 = single site)", o.sites)
	}
	if o.sites != 0 {
		if o.csvPath != "" {
			bad("-csv is not supported with -sites (per-decision samples are single-manager)")
		}
		if o.modeStr != "coordinated" {
			bad("-mode %q is not supported with -sites (federated sites run coordinated managers)", o.modeStr)
		}
		if o.facility && o.fleet%20 != 0 {
			bad("-facility with -sites needs -fleet %d divisible by 20 racks", o.fleet)
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("invalid flags:\n  - %s", strings.Join(problems, "\n  - "))
}

func (o options) carbonModel() carbon.Model {
	return carbon.Model{BaseGPerKWh: o.carbonBase, Swing: o.carbonSwing}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dcsim", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.modeStr, "mode", "coordinated", "policy mode")
	fs.IntVar(&o.fleet, "fleet", 40, "fleet size")
	fs.IntVar(&o.days, "days", 3, "simulated days")
	fs.Int64Var(&o.seed, "seed", 1, "deterministic seed")
	fs.IntVar(&o.slaMS, "sla", 100, "SLA response target (ms)")
	fs.Float64Var(&o.minFrac, "min-load", 0.15, "night demand as fraction of fleet capacity")
	fs.Float64Var(&o.maxFrac, "max-load", 0.50, "day demand as fraction of fleet capacity")
	fs.StringVar(&o.csvPath, "csv", "", "write per-decision samples to this CSV file")
	fs.BoolVar(&o.facility, "facility", false, "embed the fleet in a full facility (power tree + cooling)")
	fs.BoolVar(&o.users, "users", false, "run request-level admission control and report user outcomes")
	fs.StringVar(&o.retryStr, "retry", "none", "client retry policy around admission control (none|naive|backoff|budget); needs -users")
	fs.BoolVar(&o.serveMode, "serve", false, "serve the live simulation over HTTP instead of batch-running")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:0", "listen address for -serve")
	fs.Float64Var(&o.speedup, "speedup", 60, "virtual seconds per wall second for -serve")
	fs.Float64Var(&o.carbonBase, "carbon", carbon.DefaultGridGPerKWh, "grid carbon intensity base (gCO2e/kWh)")
	fs.Float64Var(&o.carbonSwing, "carbon-swing", 0.2, "diurnal carbon intensity swing fraction [0,1)")
	fs.IntVar(&o.workers, "workers", 0, "worker count for the sharded per-tick loops (0 = GOMAXPROCS, 1 = serial; any value gives identical results)")
	fs.IntVar(&o.sites, "sites", 0, "federated-site count (0 = single site; ≥2 runs one facility per site behind the epoch-synchronized global router)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := o.validate(); err != nil {
		return err
	}
	if o.sites >= 2 {
		return runGeo(o, stdout)
	}
	mode, _ := parseMode(o.modeStr)

	workers := o.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := par.New(workers)
	defer pool.Close()

	srvCfg := server.DefaultConfig()
	e := sim.NewEngine(o.seed)
	demand := func(now time.Duration) float64 {
		h := now.Hours() - 24*float64(int(now.Hours()/24))
		frac := o.minFrac + (o.maxFrac-o.minFrac)*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * float64(o.fleet) * srvCfg.Capacity
	}
	mgrCfg := core.ManagerConfig{
		ServerConfig:   srvCfg,
		FleetSize:      o.fleet,
		Queue:          workload.DefaultQueueModel(),
		SLA:            time.Duration(o.slaMS) * time.Millisecond,
		DecisionPeriod: time.Minute,
		Mode:           mode,
		DVFSTarget:     0.8,
		Trigger: onoff.DelayTrigger{
			High:   time.Duration(o.slaMS) * time.Millisecond * 6 / 10,
			Low:    time.Duration(o.slaMS) * time.Millisecond / 4,
			StepUp: 1, StepDown: 1, Min: 1, Max: o.fleet,
		},
		InitialOn: o.fleet / 2,
		Record:    o.csvPath != "",
		Pool:      pool,
	}
	if o.users {
		// Front dispatch with request-level admission: the diurnal
		// demand curve becomes per-class user arrivals (default mix),
		// and only what admission grants reaches the fleet.
		adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
		if err != nil {
			return err
		}
		classes := workload.DefaultRequestClasses()
		mix := workload.DefaultClassMix()
		if policy, enabled, _ := parseRetry(o.retryStr); enabled {
			// Close the loop: turned-away users come back under the
			// chosen policy, with the circuit breaker armed.
			rcfg := workload.DefaultRetryConfig(policy)
			rcfg.Breaker = workload.DefaultBreakerConfig()
			rl, err := workload.NewRetryLoop(rcfg, adm, e.RNG().Fork("retry"))
			if err != nil {
				return err
			}
			mgrCfg.Retry = rl
		} else {
			mgrCfg.Admission = adm
		}
		mgrCfg.ClassDemand = func(now time.Duration) [workload.NumClasses]float64 {
			erl := demand(now) / srvCfg.Capacity
			var shares, fresh [workload.NumClasses]float64
			mix.Split(erl, &shares)
			for c := range fresh {
				rate := shares[c] / classes[c].ServiceTime.Seconds()
				fresh[c] = workload.UsersPerTick(rate, mgrCfg.DecisionPeriod)
			}
			return fresh
		}
	}

	var dc *core.DataCenter
	var mgr *core.Manager
	var err error
	if o.facility {
		dc, mgr, err = buildFacility(e, srvCfg, mgrCfg, demand)
		if err != nil {
			return err
		}
	} else {
		mgr, err = core.NewManager(e, mgrCfg, demand)
		if err != nil {
			return err
		}
	}
	mgr.Start()

	horizon := time.Duration(o.days) * 24 * time.Hour
	if o.serveMode {
		return runServe(e, mgr, dc, o, horizon, stdout)
	}

	var pueSum float64
	var pueN int
	if dc != nil {
		e.Every(15*time.Minute, func(*sim.Engine) {
			if pue, _, err := dc.PUEAt(18, 0.5); err == nil {
				pueSum += pue
				pueN++
			}
		})
	}

	if err := e.Run(horizon); err != nil {
		return err
	}
	res := mgr.Result(horizon)

	fmt.Fprintf(stdout, "mode=%s fleet=%d days=%d seed=%d\n", res.Mode, o.fleet, o.days, o.seed)
	fmt.Fprintf(stdout, "IT energy:        %.2f kWh\n", res.EnergyKWh)
	fmt.Fprintf(stdout, "mean active:      %.1f servers\n", res.MeanActive)
	fmt.Fprintf(stdout, "power switches:   %d on, %d off\n", res.SwitchOns, res.SwitchOffs)
	fmt.Fprintf(stdout, "SLA violations:   %.2f%% of decisions (worst %v)\n",
		res.SLAViolationRate*100, res.WorstResponse.Round(time.Millisecond))
	fmt.Fprintf(stdout, "dropped load:     %.3f%%\n", res.DroppedFraction*100)
	if dc != nil && pueN > 0 {
		fmt.Fprintf(stdout, "mean PUE:         %.2f\n", pueSum/float64(pueN))
		fmt.Fprintf(stdout, "thermal trips:    %d\n", dc.Trips())
	}
	if u := res.Users; u != nil {
		fmt.Fprintf(stdout, "users offered:    %.0f\n", u.Offered)
		fmt.Fprintf(stdout, "users admitted:   %.0f (%.0f degraded)\n", u.Admitted, u.Degraded)
		fmt.Fprintf(stdout, "users rejected:   %.0f (+%.0f deferred)\n", u.Rejected, u.DeferredBacklog)
		for c := 0; c < workload.NumClasses; c++ {
			fmt.Fprintf(stdout, "SLO misses %-12s %.2f%% of active ticks\n",
				workload.Class(c).String()+":", u.SLOMissRate[c]*100)
		}
		if rl := mgr.Retry(); rl != nil {
			fmt.Fprintf(stdout, "users retried:    %.0f (amplification %.2fx)\n", u.Retried, u.RetryAmplification)
			fmt.Fprintf(stdout, "users abandoned:  %.0f (goodput %.0f)\n", u.Abandoned, u.Goodput)
			fmt.Fprintf(stdout, "breaker:          %s (%d trips)\n", rl.State(), u.BreakerTrips)
		}
	}

	if o.csvPath != "" {
		var b strings.Builder
		b.WriteString("seconds,offered,active,pstate,power_w,response_ms,dropped\n")
		for _, s := range res.Samples {
			fmt.Fprintf(&b, "%d,%.1f,%d,%d,%.1f,%.2f,%.1f\n",
				int64(s.At.Seconds()), s.Offered, s.Active, s.PState,
				s.PowerW, float64(s.Response)/float64(time.Millisecond), s.Dropped)
		}
		if err := os.WriteFile(o.csvPath, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", o.csvPath)
	}
	return nil
}

// runServe paces the assembled simulation against the wall clock and
// serves it over HTTP until the horizon is reached or the process gets
// SIGINT/SIGTERM.
func runServe(e *sim.Engine, mgr *core.Manager, dc *core.DataCenter, o options, horizon time.Duration, stdout io.Writer) error {
	src := serve.Source{Engine: e, Fleet: mgr.Fleet(), Manager: mgr, DC: dc}
	srv, err := serve.NewServer(src, serve.Options{
		Speedup: o.speedup,
		Horizon: horizon,
		Carbon:  o.carbonModel(),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "dcsim: serving on http://%s (mode=%s fleet=%d speedup=%gx horizon=%s)\n",
		ln.Addr(), o.modeStr, o.fleet, o.speedup, horizon)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	paceErr := srv.Run(ctx)

	// Drain order matters: first end the SSE streams (each subscriber
	// gets a final shutdown event and its handler returns), then let the
	// HTTP server wait out in-flight scrapes within the grace window.
	srv.Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)

	select {
	case err := <-httpErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	default:
	}
	if paceErr != nil && !errors.Is(paceErr, context.Canceled) {
		return paceErr
	}
	snap := srv.Snapshot()
	fmt.Fprintf(stdout, "dcsim: stopped at sim time %s (%d events, %.2f kWh, %.0f gCO2e)\n",
		time.Duration(snap.SimTimeSeconds*float64(time.Second)).Round(time.Second),
		snap.EventsProcessed, snap.EnergyJoules/3.6e6, snap.Carbon.GramsTotal)
	return nil
}

// buildFacility wraps the managed fleet in a power tree and cooling room
// sized for the fleet.
func buildFacility(e *sim.Engine, srvCfg server.Config, mgrCfg core.ManagerConfig, demand core.DemandFunc) (*core.DataCenter, *core.Manager, error) {
	perRack := 10
	racks := (mgrCfg.FleetSize + perRack - 1) / perRack
	if racks < 1 {
		racks = 1
	}
	// One zone per pair of racks, at least one.
	zones := (racks + 1) / 2
	roomCfg := cooling.RoomConfig{PhysicsTick: cooling.DefaultPhysicsTick}
	for z := 0; z < zones; z++ {
		roomCfg.Zones = append(roomCfg.Zones, cooling.DefaultZone(fmt.Sprintf("z%d", z)))
		roomCfg.Sensitivity = append(roomCfg.Sensitivity, []float64{0.9})
	}
	roomCfg.CRACs = []cooling.CRACConfig{cooling.DefaultCRAC("c0")}
	zoneOfRack := make([]int, racks)
	for r := range zoneOfRack {
		zoneOfRack[r] = r / 2
	}
	plant := cooling.DefaultPlantConfig()
	plant.FanRatedW = 50 * float64(mgrCfg.FleetSize) // ~17 % of peak IT

	dcCfg := core.DataCenterConfig{
		Name:           "dcsim",
		ServerConfig:   srvCfg,
		ServersPerRack: perRack,
		Topology: power.TopologyConfig{
			UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: racks,
			RackRatedW: float64(perRack) * srvCfg.PeakPower * 1.1, Oversubscription: 1,
		},
		Room:        roomCfg,
		ZoneOfRack:  zoneOfRack,
		Plant:       plant,
		SampleEvery: 15 * time.Second,
		Pool:        mgrCfg.Pool,
	}
	dc, err := core.NewDataCenter(e, dcCfg)
	if err != nil {
		return nil, nil, err
	}
	if _, err := dc.Attach(); err != nil {
		return nil, nil, err
	}
	mgrCfg.FleetSize = dc.Fleet().Size()
	mgrCfg.Trigger.Max = dc.Fleet().Size()
	mgr, err := core.NewManagerForFleet(e, mgrCfg, dc.Fleet(), demand)
	if err != nil {
		return nil, nil, err
	}
	return dc, mgr, nil
}
