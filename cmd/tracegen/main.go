// Command tracegen exports the synthetic workload and weather traces as
// CSV for plotting (e.g. to redraw the paper's Figure 3):
//
//	tracegen -trace messenger -out fig3   # fig3_logins.csv + fig3_connections.csv
//	tracegen -trace surge                 # animoto-style surge to stdout
//	tracegen -trace weather -seed 7
//	tracegen -trace diurnal
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	kind := fs.String("trace", "messenger", "trace kind: messenger|surge|weather|diurnal")
	seed := fs.Int64("seed", 1, "deterministic seed")
	out := fs.String("out", "", "output file prefix (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := sim.NewRNG(*seed)

	write := func(suffix, csv string) error {
		if *out == "" {
			_, err := io.WriteString(os.Stdout, csv)
			return err
		}
		name := fmt.Sprintf("%s_%s.csv", *out, suffix)
		if err := os.WriteFile(name, []byte(csv), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", name)
		return nil
	}

	switch *kind {
	case "messenger":
		m, err := trace.GenerateMessenger(trace.DefaultMessengerConfig(), rng)
		if err != nil {
			return err
		}
		if err := write("logins", m.Logins.CSV("login_rate_per_s")); err != nil {
			return err
		}
		return write("connections", m.Connections.CSV("connections"))
	case "surge":
		s, err := trace.GenerateSurge(trace.DefaultSurgeConfig(), rng)
		if err != nil {
			return err
		}
		return write("surge", s.CSV("server_equivalents"))
	case "weather":
		w, err := trace.GenerateWeather(trace.DefaultWeatherConfig(), rng)
		if err != nil {
			return err
		}
		if err := write("temp", w.TempC.CSV("outside_temp_c")); err != nil {
			return err
		}
		return write("rh", w.RH.CSV("relative_humidity"))
	case "diurnal":
		s, err := trace.GenerateDiurnal(trace.DefaultDiurnalConfig(), rng)
		if err != nil {
			return err
		}
		return write("diurnal", s.CSV("utilization"))
	default:
		return fmt.Errorf("unknown trace kind %q", *kind)
	}
}
