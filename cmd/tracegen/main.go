// Command tracegen exports the synthetic workload and weather traces as
// CSV for plotting (e.g. to redraw the paper's Figure 3):
//
//	tracegen -trace messenger -out fig3   # fig3_logins.csv + fig3_connections.csv
//	tracegen -trace surge                 # animoto-style surge to stdout
//	tracegen -trace weather -seed 7
//	tracegen -trace diurnal
//
// With -sites N (messenger only) the login series is carved into the N
// per-site home populations the geo federation would route — evenly
// spread time zones, equal shares — using the exact RNG lineage
// internal/geo uses, so the CSVs reproduce a federation's inputs:
//
//	tracegen -trace messenger -sites 4 -out geo   # geo_site0.csv … geo_site3.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	kind := fs.String("trace", "messenger", "trace kind: messenger|surge|weather|diurnal")
	seed := fs.Int64("seed", 1, "deterministic seed")
	out := fs.String("out", "", "output file prefix (default: stdout)")
	sites := fs.Int("sites", 0, "split the messenger login series into this many per-site home populations (0 = no split, minimum 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sites != 0 && *sites < 2 {
		return fmt.Errorf("-sites %d must be at least 2 (0 = no split)", *sites)
	}
	if *sites != 0 && *kind != "messenger" {
		return fmt.Errorf("-sites only applies to -trace messenger (got %q)", *kind)
	}
	rng := sim.NewRNG(*seed)

	write := func(suffix, csv string) error {
		if *out == "" {
			_, err := io.WriteString(os.Stdout, csv)
			return err
		}
		name := fmt.Sprintf("%s_%s.csv", *out, suffix)
		if err := os.WriteFile(name, []byte(csv), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", name)
		return nil
	}

	switch *kind {
	case "messenger":
		if *sites >= 2 {
			return splitSites(*seed, *sites, write)
		}
		m, err := trace.GenerateMessenger(trace.DefaultMessengerConfig(), rng)
		if err != nil {
			return err
		}
		if err := write("logins", m.Logins.CSV("login_rate_per_s")); err != nil {
			return err
		}
		return write("connections", m.Connections.CSV("connections"))
	case "surge":
		s, err := trace.GenerateSurge(trace.DefaultSurgeConfig(), rng)
		if err != nil {
			return err
		}
		return write("surge", s.CSV("server_equivalents"))
	case "weather":
		w, err := trace.GenerateWeather(trace.DefaultWeatherConfig(), rng)
		if err != nil {
			return err
		}
		if err := write("temp", w.TempC.CSV("outside_temp_c")); err != nil {
			return err
		}
		return write("rh", w.RH.CSV("relative_humidity"))
	case "diurnal":
		s, err := trace.GenerateDiurnal(trace.DefaultDiurnalConfig(), rng)
		if err != nil {
			return err
		}
		return write("diurnal", s.CSV("utilization"))
	default:
		return fmt.Errorf("unknown trace kind %q", *kind)
	}
}

// splitSites carves the messenger login series into n per-site home
// populations exactly as geo.New does: same RNG lineage (so the global
// series matches a federation's at the same seed), evenly spread
// time-zone offsets, equal population shares. Every sample of the
// global series lands in exactly one site, so the per-site CSVs sum
// back to the global trace.
func splitSites(seed int64, n int, write func(suffix, csv string) error) error {
	m, err := trace.GenerateMessenger(trace.DefaultMessengerConfig(), geo.NewTraceRNG(seed))
	if err != nil {
		return err
	}
	offsets := make([]time.Duration, n)
	shares := make([]float64, n)
	for i := range offsets {
		offsets[i] = time.Duration(i) * 24 * time.Hour / time.Duration(n)
		shares[i] = 1
	}
	homes, err := trace.CarveSites(m.Logins, offsets, shares)
	if err != nil {
		return err
	}
	for i, home := range homes {
		if err := write(fmt.Sprintf("site%d", i), home.CSV("login_rate_per_s")); err != nil {
			return err
		}
	}
	global, err := trace.SumSeries(homes...)
	if err != nil {
		return err
	}
	return write("global", global.CSV("login_rate_per_s"))
}
