package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAllKindsToFiles(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind  string
		files []string
	}{
		{"messenger", []string{"_logins.csv", "_connections.csv"}},
		{"surge", []string{"_surge.csv"}},
		{"weather", []string{"_temp.csv", "_rh.csv"}},
		{"diurnal", []string{"_diurnal.csv"}},
	}
	for _, tc := range cases {
		prefix := filepath.Join(dir, tc.kind)
		if err := run([]string{"-trace", tc.kind, "-out", prefix, "-seed", "2"}); err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		for _, suffix := range tc.files {
			data, err := os.ReadFile(prefix + suffix)
			if err != nil {
				t.Fatalf("%s: %v", tc.kind, err)
			}
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			if len(lines) < 10 {
				t.Errorf("%s%s has only %d lines", tc.kind, suffix, len(lines))
			}
			if !strings.HasPrefix(lines[0], "seconds,") {
				t.Errorf("%s%s header = %q", tc.kind, suffix, lines[0])
			}
		}
	}
}

// readCSVValues parses one tracegen CSV into its value column.
func readCSVValues(t *testing.T, path string) []float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	vals := make([]float64, 0, len(lines)-1)
	for _, line := range lines[1:] {
		var sec int64
		var v float64
		if _, err := fmt.Sscanf(line, "%d,%f", &sec, &v); err != nil {
			t.Fatalf("bad CSV line %q: %v", line, err)
		}
		vals = append(vals, v)
	}
	return vals
}

// TestSiteSplitConservesDemand pins the carve's conservation law at the
// CLI: every sample of the global login series lands in exactly one
// per-site CSV, so the site columns sum back to the global column
// sample for sample.
func TestSiteSplitConservesDemand(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "geo")
	if err := run([]string{"-trace", "messenger", "-sites", "3", "-out", prefix, "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	global := readCSVValues(t, prefix+"_global.csv")
	sum := make([]float64, len(global))
	for i := 0; i < 3; i++ {
		site := readCSVValues(t, prefix+fmt.Sprintf("_site%d.csv", i))
		if len(site) != len(global) {
			t.Fatalf("site %d has %d samples, global has %d", i, len(site), len(global))
		}
		for k, v := range site {
			sum[k] += v
		}
	}
	// The CSV encoder rounds each value independently, so the site sum
	// can differ from the global column by up to one rounding quantum
	// per site; anything beyond that is a real conservation violation.
	for k := range global {
		if diff := sum[k] - global[k]; diff > 0.01 || diff < -0.01 {
			t.Fatalf("sample %d: site sum %v != global %v", k, sum[k], global[k])
		}
	}
}

func TestSiteSplitValidation(t *testing.T) {
	if err := run([]string{"-trace", "messenger", "-sites", "1"}); err == nil {
		t.Error("-sites 1 should error")
	}
	if err := run([]string{"-trace", "surge", "-sites", "2"}); err == nil {
		t.Error("-sites with non-messenger trace should error")
	}
}

func TestUnknownKind(t *testing.T) {
	if err := run([]string{"-trace", "nope"}); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	for _, prefix := range []string{a, b} {
		if err := run([]string{"-trace", "surge", "-out", prefix, "-seed", "9"}); err != nil {
			t.Fatal(err)
		}
	}
	da, err := os.ReadFile(a + "_surge.csv")
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b + "_surge.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Error("same seed produced different CSVs")
	}
}
