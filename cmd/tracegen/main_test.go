package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAllKindsToFiles(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind  string
		files []string
	}{
		{"messenger", []string{"_logins.csv", "_connections.csv"}},
		{"surge", []string{"_surge.csv"}},
		{"weather", []string{"_temp.csv", "_rh.csv"}},
		{"diurnal", []string{"_diurnal.csv"}},
	}
	for _, tc := range cases {
		prefix := filepath.Join(dir, tc.kind)
		if err := run([]string{"-trace", tc.kind, "-out", prefix, "-seed", "2"}); err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		for _, suffix := range tc.files {
			data, err := os.ReadFile(prefix + suffix)
			if err != nil {
				t.Fatalf("%s: %v", tc.kind, err)
			}
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			if len(lines) < 10 {
				t.Errorf("%s%s has only %d lines", tc.kind, suffix, len(lines))
			}
			if !strings.HasPrefix(lines[0], "seconds,") {
				t.Errorf("%s%s header = %q", tc.kind, suffix, lines[0])
			}
		}
	}
}

func TestUnknownKind(t *testing.T) {
	if err := run([]string{"-trace", "nope"}); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	for _, prefix := range []string{a, b} {
		if err := run([]string{"-trace", "surge", "-out", prefix, "-seed", "9"}); err != nil {
			t.Fatal(err)
		}
	}
	da, err := os.ReadFile(a + "_surge.csv")
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b + "_surge.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Error("same seed produced different CSVs")
	}
}
