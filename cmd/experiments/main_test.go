package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"fig1", "fig3", "pathology", "tier2", "capping"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "idle60", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "idle60") || !strings.Contains(out, "60%") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Error("missing timing footer")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "nope"}, &b); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("bad flag should error")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-exp", "fig3", "-csv", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig3_connections.csv", "fig3_logins.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 1000 {
			t.Errorf("%s suspiciously small: %d bytes", name, len(data))
		}
	}
}
