package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"fig1", "fig3", "pathology", "tier2", "capping"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "idle60", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "idle60") || !strings.Contains(out, "60%") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Error("missing timing footer")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "nope"}, &b)
	if err == nil {
		t.Fatal("unknown experiment should error")
	}
	// The rejection happens upfront and names the valid set.
	for _, id := range []string{"nope", "fig1", "fault-outage", "tier2"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error %q does not mention %q", err, id)
		}
	}
	if b.Len() != 0 {
		t.Errorf("unknown experiment still produced output:\n%s", b.String())
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("bad flag should error")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-exp", "fig3", "-csv", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig3_connections.csv", "fig3_logins.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 1000 {
			t.Errorf("%s suspiciously small: %d bytes", name, len(data))
		}
	}
}

func TestReplicatedRunEmitsTableAndJSON(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "run.json")
	var b strings.Builder
	if err := run([]string{"-exp", "dvfs", "-reps", "3", "-parallel", "2", "-json", jsonPath}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"experiment", "events/s", "dvfs", "1 experiments × 3 seeds on 2 workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("replicated output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "completed in") {
		t.Error("replicated mode should print the aggregate table, not per-run footers")
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		BaseSeed  int64 `json:"base_seed"`
		Reps      int   `json:"reps"`
		Summaries []struct {
			ID   string `json:"id"`
			Reps []struct {
				Seed   int64  `json:"seed"`
				Events uint64 `json:"events"`
			} `json:"reps"`
		} `json:"summaries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("sidecar is not valid JSON: %v", err)
	}
	if doc.Reps != 3 || len(doc.Summaries) != 1 || len(doc.Summaries[0].Reps) != 3 {
		t.Fatalf("unexpected sidecar shape: %+v", doc)
	}
	for r, rep := range doc.Summaries[0].Reps {
		if rep.Seed != int64(1+r) {
			t.Errorf("rep %d seed = %d, want %d", r, rep.Seed, 1+r)
		}
		if rep.Events == 0 {
			t.Errorf("rep %d recorded no kernel events", r)
		}
	}
}

func TestSingleSeedOutputUnchangedByWorkerCount(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run([]string{"-exp", "capping", "-parallel", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "capping", "-parallel", "8"}, &parallel); err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		// The wall-clock footer legitimately differs; everything else
		// must be byte-identical.
		i := strings.LastIndex(s, "(capping completed in")
		if i < 0 {
			t.Fatalf("missing footer:\n%s", s)
		}
		return s[:i]
	}
	if strip(serial.String()) != strip(parallel.String()) {
		t.Error("report differs between -parallel 1 and -parallel 8")
	}
}

func TestBadRepsAndParallel(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-reps", "0"}, &b); err == nil {
		t.Error("reps 0 should error")
	}
	if err := run([]string{"-parallel", "0"}, &b); err == nil {
		t.Error("parallel 0 should error")
	}
	if err := run([]string{"-sites", "1"}, &b); err == nil {
		t.Error("sites 1 should error")
	}
}

// TestValidationReportsEverything pins the aggregated validator: a
// command line with several bad flags must come back with one error
// naming all of them, not just the first hit.
func TestValidationReportsEverything(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-reps", "0", "-parallel", "0", "-scale", "0", "-workers", "-1", "-sites", "1", "-exp", "nope"}, &b)
	if err == nil {
		t.Fatal("flag set should be rejected")
	}
	msg := err.Error()
	for _, want := range []string{"-reps 0", "-parallel 0", "-scale 0", "-workers -1", "-sites 1", "-exp"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestGeoSitesKnob runs a geo-family experiment at a non-default site
// count; the knob must flow through the harness into the federation.
func TestGeoSitesKnob(t *testing.T) {
	if testing.Short() {
		t.Skip("24h federation run")
	}
	var b strings.Builder
	if err := run([]string{"-exp", "geo-diurnal", "-sites", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "2 federated sites") {
		t.Errorf("report does not reflect -sites 2:\n%s", out)
	}
}
