// Command experiments regenerates every figure and quantitative claim of
// the paper (the index in DESIGN.md and EXPERIMENTS.md). Run all of them
// or one by id, optionally fanned out over a worker pool and replicated
// across seeds:
//
//	experiments                      # run everything
//	experiments -exp fig3            # one experiment
//	experiments -list                # list ids
//	experiments -seed 7              # change the deterministic seed
//	experiments -reps 8 -parallel 8  # 8 seed replications on 8 workers
//	experiments -json run.json       # machine-readable metrics sidecar
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/harness"
)

// csver is implemented by results that carry plottable series.
type csver interface {
	CSVs() map[string]string
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	id := fs.String("exp", "", "experiment id to run (default: all)")
	seed := fs.Int64("seed", 1, "deterministic base seed")
	list := fs.Bool("list", false, "list experiment ids and exit")
	csvDir := fs.String("csv", "", "directory to write figure series CSVs into")
	reps := fs.Int("reps", 1, "seed replications per experiment (seeds seed..seed+reps-1)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size")
	jsonOut := fs.String("json", "", "write per-job metrics and aggregates to this JSON file")
	invariants := fs.Bool("invariants", true, "assert physical-law invariants after every kernel event")
	scale := fs.Int("scale", 1, "facility size multiplier for the fig4-family experiments (servers per rack and matching ratings)")
	workers := fs.Int("workers", 0, "per-run worker count for the sharded per-tick loops (0 = GOMAXPROCS, 1 = serial; any value gives identical results)")
	sites := fs.Int("sites", 0, "federated-site count for the geo-family experiments (0 = each experiment's default of 4, minimum 2; changes the scenario)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	traceOut := fs.String("trace", "", "write a runtime execution trace of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer trace.Stop()
	}
	if *memProfile != "" {
		// The profile is written after the experiments complete (deferred
		// so every return path is covered, including harness errors).
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}
	if *list {
		fmt.Fprintln(out, strings.Join(exp.IDs(), "\n"))
		return nil
	}
	// Collect every flag violation into one error, so a command line
	// with several bad flags comes back with all of them at once (same
	// discipline as dcsim's aggregated validate).
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if *reps < 1 {
		bad("-reps %d must be at least 1", *reps)
	}
	if *parallel < 1 {
		bad("-parallel %d must be at least 1", *parallel)
	}
	if *scale < 1 {
		bad("-scale %d must be at least 1", *scale)
	}
	if *workers < 0 {
		bad("-workers %d must be non-negative", *workers)
	}
	if *sites != 0 && *sites < 2 {
		bad("-sites %d must be at least 2 (0 = default)", *sites)
	}
	if *id != "" && !exp.Known(*id) {
		bad("-exp: unknown experiment %q; valid ids: %s", *id, strings.Join(exp.IDs(), ", "))
	}
	if len(problems) > 0 {
		return fmt.Errorf("invalid flags:\n  - %s", strings.Join(problems, "\n  - "))
	}
	cfg := harness.Config{
		BaseSeed:         *seed,
		Reps:             *reps,
		Parallel:         *parallel,
		DisarmInvariants: !*invariants,
		Scale:            *scale,
		Workers:          *workers,
		Sites:            *sites,
	}
	if *id != "" {
		cfg.IDs = []string{*id}
	}
	start := time.Now()
	summaries, runErr := harness.Run(cfg)
	// Emit everything that succeeded before reporting the error: a
	// failing experiment should not hide 25 good ones.
	if *reps == 1 {
		// Single-seed mode keeps the historical per-experiment output.
		for _, s := range summaries {
			job := s.Reps[0]
			if job.Err != "" {
				continue
			}
			fmt.Fprint(out, job.Report)
			if err := writeCSVs(out, *csvDir, job.Result); err != nil {
				return err
			}
			wall := time.Duration(job.WallSeconds * float64(time.Second))
			fmt.Fprintf(out, "(%s completed in %v)\n\n", s.ID, wall.Round(time.Millisecond))
		}
	} else {
		// Replicated mode reports the aggregate table; per-seed detail
		// goes to the JSON sidecar.
		fmt.Fprint(out, harness.Table(summaries))
		fmt.Fprintf(out, "(%d experiments × %d seeds on %d workers in %v)\n",
			len(summaries), *reps, *parallel, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			for _, s := range summaries {
				if s.Reps[0].Err == "" {
					if err := writeCSVs(out, *csvDir, s.Reps[0].Result); err != nil {
						return err
					}
				}
			}
		}
	}
	if *jsonOut != "" {
		doc := struct {
			BaseSeed  int64             `json:"base_seed"`
			Reps      int               `json:"reps"`
			Parallel  int               `json:"parallel"`
			Summaries []harness.Summary `json:"summaries"`
		}{*seed, *reps, *parallel, summaries}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonOut)
	}
	return runErr
}

// writeCSVs exports a result's plottable series into dir, if requested
// and the result has any.
func writeCSVs(out io.Writer, dir string, res exp.Result) error {
	if dir == "" {
		return nil
	}
	c, ok := res.(csver)
	if !ok {
		return nil
	}
	for name, csv := range c.CSVs() {
		p := filepath.Join(dir, name+".csv")
		if err := os.WriteFile(p, []byte(csv), 0o644); err != nil {
			return fmt.Errorf("%s: %w", res.ID(), err)
		}
		fmt.Fprintf(out, "wrote %s\n", p)
	}
	return nil
}
