// Command experiments regenerates every figure and quantitative claim of
// the paper (the index in DESIGN.md and EXPERIMENTS.md). Run all of them
// or one by id:
//
//	experiments            # run everything
//	experiments -exp fig3  # one experiment
//	experiments -list      # list ids
//	experiments -seed 7    # change the deterministic seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

// csver is implemented by results that carry plottable series.
type csver interface {
	CSVs() map[string]string
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	id := fs.String("exp", "", "experiment id to run (default: all)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	list := fs.Bool("list", false, "list experiment ids and exit")
	csvDir := fs.String("csv", "", "directory to write figure series CSVs into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, strings.Join(exp.IDs(), "\n"))
		return nil
	}
	ids := exp.IDs()
	if *id != "" {
		ids = []string{*id}
	}
	for _, eid := range ids {
		start := time.Now()
		res, err := exp.Run(eid, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", eid, err)
		}
		fmt.Fprint(out, res.Report())
		if *csvDir != "" {
			if c, ok := res.(csver); ok {
				for name, csv := range c.CSVs() {
					p := filepath.Join(*csvDir, name+".csv")
					if err := os.WriteFile(p, []byte(csv), 0o644); err != nil {
						return fmt.Errorf("%s: %w", eid, err)
					}
					fmt.Fprintf(out, "wrote %s\n", p)
				}
			}
		}
		fmt.Fprintf(out, "(%s completed in %v)\n\n", eid, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
