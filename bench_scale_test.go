// Fleet-scale macro benchmarks: the full fig4-style facility — power
// tree, cooling room, thermal trips, rack caps with enforcement, the
// coordinated MRM manager, telemetry sampling — run end to end at 1k,
// 10k, and 100k servers. These measure what the paper's MRM layer (§5)
// actually costs per simulated hour at data-center scale; the per-tick
// aggregate maintenance in internal/core is what keeps the cost
// proportional to changes rather than fleet size. Only public APIs are
// used, so this file also compiles against older trees for apples-to-
// apples before/after comparisons.
package repro_test

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scaleHorizon is the simulated time each iteration covers.
const scaleHorizon = 2 * time.Hour

// scaleOpts parameterizes a scale run. The zero value is the historical
// configuration with the parallel executor at its GOMAXPROCS default.
type scaleOpts struct {
	// workers is the sharded-loop execution width: 0 means GOMAXPROCS,
	// 1 pins the inline (serial) executor. Results are identical at any
	// width; only wall time moves.
	workers int
	// cadence is the sample/decision/enforcement period (0 = 1 minute).
	// The 1M tier stretches it to bound the O(N) rounds per iteration.
	cadence time.Duration
}

// runScaleDC builds a 100-rack facility with nServers servers and runs
// the fig4 control stack over scaleHorizon: coordinated manager and cap
// enforcement on cadence-period decisions, 10 s physics ticks,
// cadence-period telemetry samples, PUE probes every 15 minutes.
func runScaleDC(b *testing.B, nServers int, o scaleOpts) {
	b.Helper()
	cadence := o.cadence
	if cadence == 0 {
		cadence = time.Minute
	}
	workers := o.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := par.New(workers)
	defer pool.Close()
	const racks = 100
	perRack := nServers / racks
	if perRack*racks != nServers {
		b.Fatalf("nServers %d not divisible by %d racks", nServers, racks)
	}
	srvCfg := server.DefaultConfig()
	// Cooling and fans carry nServers/40 times the fig4 facility's load,
	// so zone temperatures stay in the same regime at every tier.
	airScale := float64(nServers) / 40

	e := sim.NewEngine(1)
	zone := func(name string) cooling.ZoneConfig {
		z := cooling.DefaultZone(name)
		z.Airflow *= airScale
		return z
	}
	plant := cooling.DefaultPlantConfig()
	plant.FanRatedW = 2_000 * airScale
	zoneOfRack := make([]int, racks)
	for r := range zoneOfRack {
		zoneOfRack[r] = r % 4
	}
	dc, err := core.NewDataCenter(e, core.DataCenterConfig{
		Name:           "dc-scale",
		ServerConfig:   srvCfg,
		ServersPerRack: perRack,
		Topology: power.TopologyConfig{
			UPSCount: 2, PDUsPerUPS: 5, RacksPerPDU: 10,
			RackRatedW: float64(perRack) * srvCfg.PeakPower * 1.05, Oversubscription: 1,
		},
		Room: cooling.RoomConfig{
			Zones:       []cooling.ZoneConfig{zone("z0"), zone("z1"), zone("z2"), zone("z3")},
			CRACs:       []cooling.CRACConfig{cooling.DefaultCRAC("c0"), cooling.DefaultCRAC("c1")},
			Sensitivity: [][]float64{{0.6, 0.3}, {0.5, 0.4}, {0.4, 0.5}, {0.3, 0.6}},
			PhysicsTick: cooling.DefaultPhysicsTick,
		},
		ZoneOfRack:  zoneOfRack,
		Plant:       plant,
		SampleEvery: cadence,
		Pool:        pool,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dc.Attach(); err != nil {
		b.Fatal(err)
	}
	if err := dc.PreferCoolingSensitiveZones(); err != nil {
		b.Fatal(err)
	}

	rackServers := make([][]*server.Server, racks)
	for i, s := range dc.Fleet().Servers() {
		rackServers[dc.RackOfServer(i)] = append(rackServers[dc.RackOfServer(i)], s)
	}
	for _, rack := range dc.Topology().Racks {
		rack.SetCap(float64(perRack) * srvCfg.PeakPower * 0.93)
	}
	enforcer, err := core.NewCapEnforcer(dc.Topology().Racks, rackServers)
	if err != nil {
		b.Fatal(err)
	}
	e.Every(cadence, func(eng *sim.Engine) { enforcer.Enforce(eng.Now()) })

	demand := func(now time.Duration) float64 {
		h := now.Hours() - 24*float64(int(now.Hours()/24))
		frac := 0.2 + 0.55*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * float64(nServers) * srvCfg.Capacity
	}
	mgr, err := core.NewManagerForFleet(e, core.ManagerConfig{
		ServerConfig:   srvCfg,
		FleetSize:      nServers,
		Queue:          workload.DefaultQueueModel(),
		SLA:            100 * time.Millisecond,
		DecisionPeriod: cadence,
		Mode:           core.ModeCoordinated,
		InitialOn:      nServers / 2,
		Trigger:        onoff.DelayTrigger{High: 60 * time.Millisecond, Low: 25 * time.Millisecond, StepUp: 1, StepDown: 1, Min: 1, Max: nServers},
	}, dc.Fleet(), demand)
	if err != nil {
		b.Fatal(err)
	}
	mgr.Start()
	e.Every(15*time.Minute, func(eng *sim.Engine) {
		_, _, _ = dc.PUEAt(18, 0.5)
	})
	if err := e.Run(scaleHorizon); err != nil {
		b.Fatal(err)
	}
	// Touch the results so nothing is dead-code-eliminated.
	dc.Fleet().Sync(scaleHorizon)
	if dc.Fleet().EnergyJ() <= 0 {
		b.Fatal("no energy accumulated")
	}
}

// benchScaleDC reports simulated server-hours per wall second, the
// throughput metric the benchdiff gate watches at scale.
func benchScaleDC(b *testing.B, nServers int, o scaleOpts) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runScaleDC(b, nServers, o)
	}
	srvHours := float64(b.N) * float64(nServers) * scaleHorizon.Hours()
	b.ReportMetric(srvHours/b.Elapsed().Seconds(), "srv-h/sec")
}

// BenchmarkDataCenter1k is the CI-sized tier (runs in short mode).
func BenchmarkDataCenter1k(b *testing.B) { benchScaleDC(b, 1_000, scaleOpts{}) }

// BenchmarkDataCenter10k is the headline scale tier: the fig4 control
// stack over ten thousand servers.
func BenchmarkDataCenter10k(b *testing.B) {
	if testing.Short() {
		b.Skip("10k tier skipped in short mode")
	}
	benchScaleDC(b, 10_000, scaleOpts{})
}

// BenchmarkDataCenter100k demonstrates headroom at a hundred thousand
// servers — the "millions of users" operating point of the roadmap.
// Workers default to GOMAXPROCS; BenchmarkDataCenter100kWorkers1 below
// is the serial pin, so the pair measures the parallel speedup on
// whatever machine runs them.
func BenchmarkDataCenter100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k tier skipped in short mode")
	}
	benchScaleDC(b, 100_000, scaleOpts{})
}

// BenchmarkDataCenter100kWorkers1 runs the 100k tier with the sharded
// loops pinned to the inline executor — the workers=1 baseline of the
// parallel-speedup comparison. Same bits, different wall clock.
func BenchmarkDataCenter100kWorkers1(b *testing.B) {
	if testing.Short() {
		b.Skip("100k tier skipped in short mode")
	}
	benchScaleDC(b, 100_000, scaleOpts{workers: 1})
}

// BenchmarkDataCenter1M is the million-server tier: a 2-simulated-hour
// run of the full control stack at 10,000 servers per rack. Sampling and
// decisions stretch to a 15-minute cadence so each iteration stays
// bounded by the O(N) rounds rather than drowned by them; the physics
// tick and PUE probes keep their usual periods.
func BenchmarkDataCenter1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M tier skipped in short mode")
	}
	benchScaleDC(b, 1_000_000, scaleOpts{cadence: 15 * time.Minute})
}
