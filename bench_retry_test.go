// Retry-path micro benchmarks: one closed-loop client tick at fleet
// scale, and a full breaker trip/probe/recover cycle. Like the admission
// tick, the retry tick runs inside the manager's event handler every
// decision period, so the benchdiff gate watches allocs/op (must stay 0:
// the delay ring and per-class ledgers are preallocated) alongside
// users/sec throughput.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// benchRetryLoop builds a budget-policy loop with the breaker armed —
// the full production stack — fed by a deterministic RNG.
func benchRetryLoop(b *testing.B) *workload.RetryLoop {
	b.Helper()
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.DefaultRetryConfig(workload.RetryBudget)
	cfg.Breaker = workload.DefaultBreakerConfig()
	rl, err := workload.NewRetryLoop(cfg, adm, sim.NewRNG(1).Fork("bench"))
	if err != nil {
		b.Fatal(err)
	}
	return rl
}

// benchRetryTick drives the closed loop at ~1.2x the capacity of an
// nServers fleet, so rejections flow into the delay ring and replay —
// the whole feedback path, not just the admit-all fast path.
func benchRetryTick(b *testing.B, nServers int) {
	b.Helper()
	rl := benchRetryLoop(b)
	const dt = time.Minute
	mix := workload.DefaultClassMix()
	classes := rl.Admission().Config().Classes
	var erl, fresh [workload.NumClasses]float64
	mix.Split(float64(nServers)*1.2, &erl)
	for c := 0; c < workload.NumClasses; c++ {
		rate := erl[c] / classes[c].ServiceTime.Seconds()
		fresh[c] = workload.UsersPerTick(rate, dt)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var users float64
	for i := 0; i < b.N; i++ {
		out := rl.Tick(dt, &fresh, float64(nServers))
		users += out.GoodputUsers
	}
	b.ReportMetric(users/b.Elapsed().Seconds(), "users/sec")
}

// BenchmarkRetryTick1k is the CI-sized tier.
func BenchmarkRetryTick1k(b *testing.B) { benchRetryTick(b, 1_000) }

// BenchmarkRetryTick10k is the headline tier: the closed loop carrying
// tens of millions of users per tick, allocation-free.
func BenchmarkRetryTick10k(b *testing.B) { benchRetryTick(b, 10_000) }

// BenchmarkBreakerCycle measures a complete breaker excursion: a forced
// trip, the open ticks fast-failing traffic, half-open probing, and the
// recovery run back to closed. This is the state machine the degrader
// exercises on every fault notice, so it must also be allocation-free.
func BenchmarkBreakerCycle(b *testing.B) {
	rl := benchRetryLoop(b)
	const dt = time.Minute
	var fresh [workload.NumClasses]float64
	fresh[workload.ClassInteractive] = workload.UsersPerTick(100/0.02, dt)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl.Trip()
		// Plenty of capacity, so probes succeed and the breaker walks
		// open -> half-open -> closed in the minimum tick count.
		for rl.State() != workload.BreakerClosed {
			rl.Tick(dt, &fresh, 1_000)
		}
	}
	if rl.Trips() < int64(b.N) {
		b.Fatalf("trips = %d, want >= %d", rl.Trips(), b.N)
	}
}
