// Package repro is a from-scratch Go reproduction of "Challenges Towards
// Elastic Power Management in Internet Data Centers" (Liu, Zhao, Liu, He;
// ICDCS 2009 Workshops). The library lives under internal/: simulation
// kernel, workload traces, server/power/cooling substrates, DVFS and
// on/off policies, VM placement, telemetry, sensor networks,
// oversubscription analytics, and the macro-resource management layer of
// the paper's Figure 4. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the per-figure reproduction record; bench_test.go in
// this directory regenerates every figure and claim as a benchmark.
package repro
