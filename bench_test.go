// Benchmarks: one per paper figure and per quantitative claim, matching
// the experiment index in DESIGN.md. Each bench regenerates its
// figure/claim (via internal/exp) or exercises the underlying kernel at a
// measured scale. Absolute numbers are hardware-dependent; the *shape*
// assertions live in internal/exp's tests.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/telemetry"
)

// runExp runs one experiment per iteration and fails the bench on error.
func runExp(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(id, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1PowerDistribution regenerates Figure 1's tiered power
// flow: grid → UPS → PDU → racks with per-tier losses (§2.1).
func BenchmarkFig1PowerDistribution(b *testing.B) { runExp(b, "fig1") }

// BenchmarkFig2CoolingDynamics regenerates Figure 2's air-cooled room
// behaviour: slow dynamics under 15-minute CRAC control (§2.2).
func BenchmarkFig2CoolingDynamics(b *testing.B) { runExp(b, "fig2") }

// BenchmarkFig3MessengerTrace regenerates Figure 3's week of Messenger
// load: 2:1 diurnal swing, weekend dip, flash crowds (§3).
func BenchmarkFig3MessengerTrace(b *testing.B) { runExp(b, "fig3") }

// BenchmarkFig4MacroCoordination runs the Figure-4 macro-resource
// management layer end-to-end over a full facility (§3.2).
func BenchmarkFig4MacroCoordination(b *testing.B) { runExp(b, "fig4") }

// BenchmarkExpIdlePower measures the §4.3 claim: an idle server draws
// about 60 % of its peak power.
func BenchmarkExpIdlePower(b *testing.B) { runExp(b, "idle60") }

// BenchmarkExpPUEEconomizer measures the §2.2 claims: PUE close to 2 for
// chiller-only plants, large savings from air-side economizers.
func BenchmarkExpPUEEconomizer(b *testing.B) { runExp(b, "pue2") }

// BenchmarkExpAnimotoSurge replays §3's quoted 50→3500-server surge under
// elastic provisioning.
func BenchmarkExpAnimotoSurge(b *testing.B) { runExp(b, "animoto") }

// BenchmarkExpOversubscription sweeps §3.1's oversubscription ratio
// against violation probability.
func BenchmarkExpOversubscription(b *testing.B) { runExp(b, "oversub") }

// BenchmarkExpCoordinationPathology reproduces §5.1's oblivious DVFS ×
// on/off composition hazard across all five policy modes.
func BenchmarkExpCoordinationPathology(b *testing.B) { runExp(b, "pathology") }

// BenchmarkExpCRACSensitivity reproduces §5.1's CRAC-sensitivity
// migration hazard with tripping servers.
func BenchmarkExpCRACSensitivity(b *testing.B) { runExp(b, "crac") }

// BenchmarkExpConsolidation measures §3.1/§4.3 energy-aware provisioning
// against static allocation on the Figure-3 workload.
func BenchmarkExpConsolidation(b *testing.B) { runExp(b, "consolidate") }

// BenchmarkExpVMInterference measures §4.4 disk-contention interference
// and §5.2 correlation-aware co-location.
func BenchmarkExpVMInterference(b *testing.B) { runExp(b, "interfere") }

// BenchmarkExpSensorNet measures §4.5 fine-grained sensing vs coarse
// interpolation of the thermal map.
func BenchmarkExpSensorNet(b *testing.B) { runExp(b, "sensornet") }

// BenchmarkExpDVFSControl measures §4.2 control-based DVFS holding a
// response-time setpoint.
func BenchmarkExpDVFSControl(b *testing.B) { runExp(b, "dvfs") }

// BenchmarkExpTier2Availability computes §2.1's tier-2 availability from
// component reliability.
func BenchmarkExpTier2Availability(b *testing.B) { runExp(b, "tier2") }

// BenchmarkExtTiers measures §3.2 per-tier elastic scaling of a
// three-tier service (extension experiment).
func BenchmarkExtTiers(b *testing.B) { runExp(b, "tiers") }

// BenchmarkExtHeteroCMP measures §4.1 heterogeneous CMP power curves
// (extension experiment).
func BenchmarkExtHeteroCMP(b *testing.B) { runExp(b, "hetero") }

// BenchmarkExtCoreParking measures §4.3 core parking between DVFS and
// server-off (extension experiment).
func BenchmarkExtCoreParking(b *testing.B) { runExp(b, "parking") }

// BenchmarkExtDistributed compares centralized vs hierarchical MRM
// sub-layers (§3.2, extension experiment).
func BenchmarkExtDistributed(b *testing.B) { runExp(b, "distributed") }

// BenchmarkExtCapping measures the §3.1 capping safety valve over an
// oversubscribed rack (extension experiment).
func BenchmarkExtCapping(b *testing.B) { runExp(b, "capping") }

// BenchmarkExtGeoRouting measures §3.2 federation routing over a week of
// weather (extension experiment).
func BenchmarkExtGeoRouting(b *testing.B) { runExp(b, "geo") }

// BenchmarkAblateForecast compares forecaster families on the surge
// (design-choice ablation).
func BenchmarkAblateForecast(b *testing.B) { runExp(b, "ablate-forecast") }

// BenchmarkAblateLadder compares DVFS ladder depths under coordination
// (design-choice ablation).
func BenchmarkAblateLadder(b *testing.B) { runExp(b, "ablate-ladder") }

// BenchmarkAblateHysteresis compares downscale-hysteresis settings
// (design-choice ablation).
func BenchmarkAblateHysteresis(b *testing.B) { runExp(b, "ablate-hysteresis") }

// BenchmarkAblateDC compares 400V DC distribution against AC double
// conversion (design-choice ablation, after [11]).
func BenchmarkAblateDC(b *testing.B) { runExp(b, "ablate-dc") }

// suiteIDs is the full experiment suite minus telemetry: that experiment
// is itself a wall-clock microbenchmark (ingest points/min), so timing it
// inside another benchmark — or racing it against sibling jobs — measures
// interference, not the harness.
func suiteIDs() []string {
	ids := make([]string, 0, len(exp.IDs()))
	for _, id := range exp.IDs() {
		if id != "telemetry" {
			ids = append(ids, id)
		}
	}
	return ids
}

// benchSuite runs the suite once per iteration through the harness at the
// given worker count, with two seed replications so the parallel case has
// enough independent jobs to overlap the long-pole experiments.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	ids := suiteIDs()
	for i := 0; i < b.N; i++ {
		sums, err := harness.Run(harness.Config{
			IDs:      ids,
			BaseSeed: int64(i) + 1,
			Reps:     2,
			Parallel: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(sums) != len(ids) {
			b.Fatalf("got %d summaries, want %d", len(sums), len(ids))
		}
	}
}

// BenchmarkSuiteSerial is the pre-harness baseline: every (experiment ×
// seed) job on a single worker.
func BenchmarkSuiteSerial(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel fans the same jobs over GOMAXPROCS workers; the
// ratio to BenchmarkSuiteSerial is the harness speedup on this machine.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, runtime.GOMAXPROCS(0)) }

// BenchmarkExpTelemetryScale measures the §5.3 ingestion path directly:
// points/second into the multi-resolution store at the paper's sampling
// shape (the full experiment run, with its wall-clock measurements, lives
// in `cmd/experiments -exp telemetry`). The reported points/s extrapolates
// to the paper's 2.4 M points/min requirement.
func BenchmarkExpTelemetryScale(b *testing.B) {
	store, err := telemetry.NewStore(telemetry.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const keys = 100
	names := make([]string, keys)
	for k := range names {
		names[k] = fmt.Sprintf("srv%02d/cpu", k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := time.Duration(i) * 15 * time.Second
		if err := store.Append(names[i%keys], ts, float64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perSec := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(perSec*60, "points/min")
}

// BenchmarkTelemetryTrendQuery measures the multi-scale query path the
// paper's §5.3 prescribes (daily averages straight from the pyramid).
func BenchmarkTelemetryTrendQuery(b *testing.B) {
	store, err := telemetry.NewStore(telemetry.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 7*24*60*4; i++ { // one week of 15 s samples
		if err := store.Append("srv/cpu", time.Duration(i)*15*time.Second, float64(i%960)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.DailyAverages("srv/cpu"); err != nil {
			b.Fatal(err)
		}
	}
}
