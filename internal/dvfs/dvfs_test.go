package dvfs

import (
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

func TestThresholdPicksSlowestSufficientState(t *testing.T) {
	ladder := server.DefaultPStates() // freqs 1.0 … 0.6
	p, err := NewThreshold(ladder, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 1000.0
	tests := []struct {
		offered float64
		want    int
	}{
		{0, len(ladder) - 1},   // idle: slowest
		{100, len(ladder) - 1}, // light: slowest (0.6×0.8×1000=480 ≥ 100)
		{500, 3},               // 0.7×0.8×1000 = 560 ≥ 500; 0.6 state gives 480 < 500
		{700, 1},               // 0.9×0.8×1000 = 720 ≥ 700; 0.8 gives 640 < 700
		{790, 0},               // only nominal holds the target
		{2000, 0},              // overload: fastest
	}
	for _, tt := range tests {
		if got := p.Decide(tt.offered, cap); got != tt.want {
			t.Errorf("Decide(%v) = %d (freq %v), want %d",
				tt.offered, got, ladder[got].Freq, tt.want)
		}
	}
	// Degenerate inputs run fastest.
	if p.Decide(100, 0) != 0 {
		t.Error("zero capacity should run fastest")
	}
	if p.Decide(-1, cap) != 0 {
		t.Error("negative load should run fastest")
	}
}

func TestThresholdValidation(t *testing.T) {
	ladder := server.DefaultPStates()
	if _, err := NewThreshold(nil, 0.8); err == nil {
		t.Error("empty ladder should error")
	}
	if _, err := NewThreshold(ladder, 0); err == nil {
		t.Error("zero target should error")
	}
	if _, err := NewThreshold(ladder, 1.5); err == nil {
		t.Error("target > 1 should error")
	}
	unsorted := []server.PState{{Freq: 0.6, DynFactor: 0.2}, {Freq: 1, DynFactor: 1}}
	if _, err := NewThreshold(unsorted, 0.8); err == nil {
		t.Error("unsorted ladder should error")
	}
}

func TestResponseFeedbackHoldsSetpoint(t *testing.T) {
	// Closed loop with the fluid queue: the policy should settle at a
	// frequency where response sits near the setpoint, saving energy vs
	// always-fastest while meeting the SLA.
	ladder := server.DefaultPStates()
	q := workload.DefaultQueueModel()
	const sla = 100 * time.Millisecond
	p, err := NewResponseFeedback(ladder, sla, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const offered = 400.0 // on a 1000-capacity server
	const capNominal = 1000.0
	idx := 0
	var measured time.Duration
	for i := 0; i < 400; i++ {
		freq := ladder[idx].Freq
		rho := offered / (capNominal * freq)
		measured = q.Response(rho)
		idx = p.Decide(measured, time.Second)
	}
	if measured > sla {
		t.Errorf("settled response %v exceeds SLA %v", measured, sla)
	}
	if idx == 0 {
		t.Errorf("policy settled at nominal frequency — no energy saving at 40%% load")
	}
	if got := p.Target(); got != sla {
		t.Errorf("Target = %v, want %v", got, sla)
	}
}

func TestResponseFeedbackRaisesFrequencyUnderLoad(t *testing.T) {
	ladder := server.DefaultPStates()
	p, err := NewResponseFeedback(ladder, 50*time.Millisecond, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Persistent SLA violation drives the output to the fastest state.
	idx := len(ladder) - 1
	for i := 0; i < 100; i++ {
		idx = p.Decide(500*time.Millisecond, time.Second)
	}
	if idx != 0 {
		t.Errorf("persistent violation settled at state %d, want 0 (fastest)", idx)
	}
}

func TestResponseFeedbackBatchSlack(t *testing.T) {
	ladder := server.DefaultPStates()
	p, err := NewResponseFeedback(ladder, 100*time.Millisecond, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Target() != 200*time.Millisecond {
		t.Errorf("batched target = %v, want 200ms", p.Target())
	}
	if _, err := NewResponseFeedback(ladder, 100*time.Millisecond, 0.5); err == nil {
		t.Error("batch slack < 1 should error")
	}
	if _, err := NewResponseFeedback(ladder, 0, 1); err == nil {
		t.Error("zero SLA should error")
	}
	if _, err := NewResponseFeedback(nil, time.Second, 1); err == nil {
		t.Error("empty ladder should error")
	}
}

func TestIntervalPerTask(t *testing.T) {
	ladder := server.DefaultPStates()
	iv, err := NewInterval(ladder, 0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown task: fastest (safe).
	if iv.Decide("unknown") != 0 {
		t.Error("unknown task should run fastest")
	}
	// A light task converges to a slow state; a heavy one stays fast.
	for i := 0; i < 20; i++ {
		if err := iv.Observe("editor", 0.10); err != nil {
			t.Fatal(err)
		}
		if err := iv.Observe("encoder", 0.95); err != nil {
			t.Fatal(err)
		}
	}
	if got := iv.Decide("editor"); got != len(ladder)-1 {
		t.Errorf("light task state = %d, want slowest %d", got, len(ladder)-1)
	}
	if got := iv.Decide("encoder"); got != 0 {
		t.Errorf("heavy task state = %d, want fastest", got)
	}
	if iv.Tasks() != 2 {
		t.Errorf("Tasks = %d, want 2", iv.Tasks())
	}
}

func TestIntervalValidation(t *testing.T) {
	ladder := server.DefaultPStates()
	if _, err := NewInterval(nil, 0.8, 0.5); err == nil {
		t.Error("empty ladder should error")
	}
	if _, err := NewInterval(ladder, 0, 0.5); err == nil {
		t.Error("zero target should error")
	}
	if _, err := NewInterval(ladder, 0.8, 0); err == nil {
		t.Error("zero alpha should error")
	}
}
