// Package dvfs implements the dynamic voltage and frequency scaling
// policies of §4.2: a utilization-threshold governor, a control-based
// response-time policy with request batching (after Elnozahy et al. [21]),
// and an interval-based per-task governor in the spirit of Vertigo
// (Flautner & Mudge [22]). Policies are pure deciders over a P-state
// ladder; actuation belongs to the server model and coordination to the
// macro layer.
package dvfs

import (
	"fmt"
	"time"

	"repro/internal/control"
	"repro/internal/server"
)

// validLadder checks a P-state ladder (fastest first, as in
// server.Config).
func validLadder(ladder []server.PState) error {
	if len(ladder) == 0 {
		return fmt.Errorf("dvfs: empty p-state ladder")
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].Freq >= ladder[i-1].Freq {
			return fmt.Errorf("dvfs: ladder not sorted fastest-first at %d", i)
		}
	}
	return nil
}

// Threshold is the classic ondemand-style governor: choose the slowest
// P-state that keeps delivered-capacity utilization at or below the
// target. It is deliberately oblivious to response time and to the on/off
// policy — exactly the composition hazard §5.1 describes.
type Threshold struct {
	ladder []server.PState
	target float64
}

// NewThreshold builds a governor with the given ladder (fastest first)
// and utilization target in (0,1].
func NewThreshold(ladder []server.PState, target float64) (*Threshold, error) {
	if err := validLadder(ladder); err != nil {
		return nil, err
	}
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("dvfs: target utilization %v out of (0,1]", target)
	}
	cp := make([]server.PState, len(ladder))
	copy(cp, ladder)
	return &Threshold{ladder: cp, target: target}, nil
}

// Decide returns the P-state index for an offered load (capacity units/s)
// on a server with the given nominal capacity: the slowest state whose
// delivered capacity keeps utilization ≤ target; the fastest state when
// nothing suffices.
func (t *Threshold) Decide(offered, nominalCapacity float64) int {
	if nominalCapacity <= 0 || offered < 0 {
		return 0
	}
	best := 0
	for i, ps := range t.ladder {
		if offered <= nominalCapacity*ps.Freq*t.target {
			best = i // ladder is fastest-first: later = slower = better
		}
	}
	// If even the fastest state cannot hold the target, run fastest.
	if offered > nominalCapacity*t.ladder[0].Freq*t.target {
		return 0
	}
	return best
}

// ResponseFeedback is the control-based DVFS policy of [21]: a PI
// controller holds measured response time at a setpoint by moving a
// continuous frequency, which snaps to the nearest P-state. Request
// batching is modelled as tolerated slack: the setpoint is the SLA target
// scaled by BatchSlack (batching trades response margin for power).
type ResponseFeedback struct {
	ladder []server.PState
	pid    *control.PID
	target time.Duration
	freq   float64
}

// NewResponseFeedback builds the policy. batchSlack ≥ 1 inflates the
// response setpoint (1 = none).
func NewResponseFeedback(ladder []server.PState, slaTarget time.Duration, batchSlack float64) (*ResponseFeedback, error) {
	if err := validLadder(ladder); err != nil {
		return nil, err
	}
	if slaTarget <= 0 {
		return nil, fmt.Errorf("dvfs: SLA target %v must be positive", slaTarget)
	}
	if batchSlack < 1 {
		return nil, fmt.Errorf("dvfs: batch slack %v must be >= 1", batchSlack)
	}
	minFreq := ladder[len(ladder)-1].Freq
	// Output is the frequency in [minFreq, 1]. Gains are scaled to the
	// setpoint so the controller works across SLA magnitudes.
	pid, err := control.NewPID(0.5, 0.2, 0, minFreq, 1)
	if err != nil {
		return nil, err
	}
	return &ResponseFeedback{
		ladder: append([]server.PState(nil), ladder...),
		pid:    pid,
		target: time.Duration(float64(slaTarget) * batchSlack),
		freq:   1,
	}, nil
}

// Target reports the effective response-time setpoint.
func (r *ResponseFeedback) Target() time.Duration { return r.target }

// Decide folds in a response-time measurement and returns the P-state
// index. Error is normalized (measured/target − 1) so a response at twice
// the setpoint produces error −1 (need more speed).
func (r *ResponseFeedback) Decide(measured time.Duration, dt time.Duration) int {
	errNorm := float64(r.target-measured) / float64(r.target)
	// Positive error (fast responses) lowers frequency; negative raises.
	r.freq = r.pid.Update(-errNorm, dt)
	return nearest(r.ladder, r.freq)
}

// nearest maps a continuous frequency onto the closest ladder index.
func nearest(ladder []server.PState, f float64) int {
	best := 0
	bestDiff := absF(ladder[0].Freq - f)
	for i, ps := range ladder[1:] {
		if d := absF(ps.Freq - f); d < bestDiff {
			best, bestDiff = i+1, d
		}
	}
	return best
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Interval is a Weiser/Vertigo-style interval governor: it tracks recent
// utilization with an EWMA per task class and picks the slowest state
// that would have kept the observed interval below the target. Each task
// class gets its own estimator ("the DVFS policy on per-task basis",
// [22]).
type Interval struct {
	ladder []server.PState
	target float64
	alpha  float64
	tasks  map[string]*control.EWMA
}

// NewInterval builds a per-task interval governor.
func NewInterval(ladder []server.PState, target, alpha float64) (*Interval, error) {
	if err := validLadder(ladder); err != nil {
		return nil, err
	}
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("dvfs: target %v out of (0,1]", target)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("dvfs: alpha %v out of (0,1]", alpha)
	}
	return &Interval{
		ladder: append([]server.PState(nil), ladder...),
		target: target,
		alpha:  alpha,
		tasks:  make(map[string]*control.EWMA),
	}, nil
}

// Observe folds one interval's utilization (at nominal frequency) for a
// task class.
func (iv *Interval) Observe(task string, utilization float64) error {
	est, ok := iv.tasks[task]
	if !ok {
		var err error
		est, err = control.NewEWMA(iv.alpha)
		if err != nil {
			return err
		}
		iv.tasks[task] = est
	}
	est.Observe(utilization)
	return nil
}

// Decide returns the P-state index for a task class based on its smoothed
// utilization; unknown tasks run fastest (safe default).
func (iv *Interval) Decide(task string) int {
	est, ok := iv.tasks[task]
	if !ok {
		return 0
	}
	u := est.Level()
	best := 0
	for i, ps := range iv.ladder {
		if u <= ps.Freq*iv.target {
			best = i
		}
	}
	if u > iv.ladder[0].Freq*iv.target {
		return 0
	}
	return best
}

// Tasks reports the number of tracked task classes.
func (iv *Interval) Tasks() int { return len(iv.tasks) }
