package sensornet

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func truthFunc(zones int) func(int) float64 {
	return func(z int) float64 {
		// A spatial temperature gradient with a hot spot at the middle.
		mid := float64(zones-1) / 2
		return 20 + 6*math.Exp(-math.Pow(float64(z)-mid, 2)/4)
	}
}

func TestNetworkValidation(t *testing.T) {
	base := DefaultNetworkConfig(4)
	tests := []struct {
		name   string
		mutate func(*NetworkConfig)
	}{
		{"no nodes", func(c *NetworkConfig) { c.Nodes = nil }},
		{"loss 1", func(c *NetworkConfig) { c.LossPerHop = 1 }},
		{"negative loss", func(c *NetworkConfig) { c.LossPerHop = -0.1 }},
		{"negative latency", func(c *NetworkConfig) { c.HopLatency = -time.Second }},
		{"negative cost", func(c *NetworkConfig) { c.SampleCostJ = -1 }},
		{"parent out of range", func(c *NetworkConfig) { c.Nodes[0].Parent = 99 }},
		{"self parent", func(c *NetworkConfig) { c.Nodes[1].Parent = 1 }},
		{"cycle", func(c *NetworkConfig) {
			c.Nodes[1].Parent = 2
			c.Nodes[2].Parent = 1
		}},
		{"zero battery", func(c *NetworkConfig) { c.Nodes[0].BatteryJ = 0 }},
		{"negative noise", func(c *NetworkConfig) { c.Nodes[0].NoiseSD = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultNetworkConfig(4)
			tt.mutate(&cfg)
			if _, err := NewNetwork(cfg, sim.NewRNG(1)); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if _, err := NewNetwork(base, sim.NewRNG(1)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestCollectDeliversMostReadings(t *testing.T) {
	cfg := DefaultNetworkConfig(8)
	n, err := NewNetwork(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	truth := truthFunc(8)
	var total, rounds int
	for r := 0; r < 50; r++ {
		rs := n.Collect(truth)
		total += len(rs)
		rounds++
		for _, reading := range rs {
			if reading.Hops < 1 {
				t.Fatalf("reading with %d hops", reading.Hops)
			}
			if reading.Latency != time.Duration(reading.Hops)*cfg.HopLatency {
				t.Fatalf("latency %v inconsistent with %d hops", reading.Latency, reading.Hops)
			}
			if math.Abs(reading.Value-truth(reading.Zone)) > 2.0 {
				t.Fatalf("reading %v too far from truth %v", reading.Value, truth(reading.Zone))
			}
		}
	}
	delivered, lost := n.DeliveryStats()
	if delivered == 0 || lost == 0 {
		t.Errorf("delivered=%d lost=%d: expect both with 5%% per-hop loss on a line", delivered, lost)
	}
	// With a line topology the far nodes traverse many hops; still most
	// messages should arrive.
	rate := float64(delivered) / float64(delivered+lost)
	if rate < 0.5 || rate > 0.99 {
		t.Errorf("delivery rate = %v, want realistic lossy-but-working", rate)
	}
	_ = total
}

func TestBatteryDrainKillsNodes(t *testing.T) {
	cfg := DefaultNetworkConfig(4)
	for i := range cfg.Nodes {
		cfg.Nodes[i].BatteryJ = 0.01 // a handful of operations
	}
	n, err := NewNetwork(cfg, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	truth := truthFunc(4)
	if n.AliveCount() != 4 {
		t.Fatalf("AliveCount = %d, want 4", n.AliveCount())
	}
	for r := 0; r < 100; r++ {
		n.Collect(truth)
	}
	if n.AliveCount() != 0 {
		t.Errorf("nodes alive after battery exhaustion: %d", n.AliveCount())
	}
	// Dead network produces nothing.
	if rs := n.Collect(truth); len(rs) != 0 {
		t.Errorf("dead network delivered %d readings", len(rs))
	}
}

func TestDeadRelayPartitionsSubtree(t *testing.T) {
	// Node 0 is the relay for everyone in the line topology; when it
	// dies, downstream nodes cannot deliver (they still sample).
	cfg := DefaultNetworkConfig(3)
	cfg.LossPerHop = 0
	n, err := NewNetwork(cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	n.batteries[0] = 0
	rs := n.Collect(truthFunc(3))
	for _, r := range rs {
		if r.Node != 0 && r.Hops > 1 {
			t.Errorf("reading from node %d delivered through dead relay", r.Node)
		}
	}
	if len(rs) != 0 {
		t.Errorf("readings = %d, want 0 (node 0 dead, others relay through it)", len(rs))
	}
}

func TestReconstructionBeatsSparseInterpolation(t *testing.T) {
	// The paper's point: fine-grained sensing beats coarse estimates.
	const zones = 16
	truth := truthFunc(zones)
	truthMap := make([]float64, zones)
	for z := range truthMap {
		truthMap[z] = truth(z)
	}

	cfg := DefaultNetworkConfig(zones)
	cfg.LossPerHop = 0.02
	n, err := NewNetwork(cfg, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// Average several rounds to tame sensor noise.
	var all []Reading
	for r := 0; r < 10; r++ {
		all = append(all, n.Collect(truth)...)
	}
	dense, err := ReconstructMap(all, zones)
	if err != nil {
		t.Fatal(err)
	}
	denseErr, err := RMSE(dense, truthMap)
	if err != nil {
		t.Fatal(err)
	}

	// Sparse baseline: only the two end zones are known (e.g. CRAC
	// return sensors), the rest interpolated.
	sparse, err := InterpolateSparse(map[int]float64{0: truth(0), zones - 1: truth(zones - 1)}, zones)
	if err != nil {
		t.Fatal(err)
	}
	sparseErr, err := RMSE(sparse, truthMap)
	if err != nil {
		t.Fatal(err)
	}
	if denseErr >= sparseErr/2 {
		t.Errorf("dense sensing RMSE %v not well below sparse %v", denseErr, sparseErr)
	}
}

func TestReconstructMapValidation(t *testing.T) {
	if _, err := ReconstructMap(nil, 0); err == nil {
		t.Error("zero zones should error")
	}
	if _, err := ReconstructMap([]Reading{{Zone: 99, Value: 1}}, 4); err == nil {
		t.Error("out-of-range zone should error")
	}
	// No readings at all: interpolation has nothing to work from.
	if _, err := ReconstructMap(nil, 4); err == nil {
		t.Error("no readings should error")
	}
}

func TestInterpolateSparse(t *testing.T) {
	out, err := InterpolateSparse(map[int]float64{0: 10, 4: 20}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 12.5, 15, 17.5, 20}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("interpolated[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Ends extend from the single nearest known zone.
	out, err = InterpolateSparse(map[int]float64{2: 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 7 {
			t.Errorf("single-source interpolation[%d] = %v, want 7", i, v)
		}
	}
	if _, err := InterpolateSparse(nil, 5); err == nil {
		t.Error("empty known map should error")
	}
	if _, err := InterpolateSparse(map[int]float64{0: 1}, 0); err == nil {
		t.Error("zero zones should error")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("identical RMSE = %v, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v, want sqrt(12.5)", got)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty inputs should error")
	}
}
