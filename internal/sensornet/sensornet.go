// Package sensornet simulates the wireless-sensor-network instrumentation
// of §4.5 (after Project Genome [30]): battery-powered nodes sampling
// zone conditions, a multi-hop collection tree with per-hop loss and
// latency, and thermal-map reconstruction — "the ground truth data are
// more accurate than the simulation, and gathering those bridges the gaps
// between servers and CRAC systems."
package sensornet

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// NodeConfig describes one sensor node.
type NodeConfig struct {
	// Zone is the thermal zone the node instruments.
	Zone int
	// Parent is the index of the next hop toward the base station, or
	// -1 when the node transmits directly to the base.
	Parent int
	// NoiseSD is the sensor's measurement noise (°C).
	NoiseSD float64
	// BatteryJ is the starting energy budget.
	BatteryJ float64
}

// NetworkConfig describes the collection network.
type NetworkConfig struct {
	Nodes []NodeConfig
	// LossPerHop is the probability a message is lost at each hop.
	LossPerHop float64
	// HopLatency is the per-hop forwarding delay.
	HopLatency time.Duration
	// SampleCostJ and ForwardCostJ drain batteries per operation.
	SampleCostJ, ForwardCostJ float64
}

// DefaultNetworkConfig instruments each of n zones with one node chained
// in a line toward the base station (node 0 transmits directly).
func DefaultNetworkConfig(zones int) NetworkConfig {
	cfg := NetworkConfig{
		LossPerHop:   0.05,
		HopLatency:   40 * time.Millisecond,
		SampleCostJ:  0.001,
		ForwardCostJ: 0.002,
	}
	for z := 0; z < zones; z++ {
		cfg.Nodes = append(cfg.Nodes, NodeConfig{
			Zone:     z,
			Parent:   z - 1, // line topology; node 0 has parent -1 (base)
			NoiseSD:  0.3,
			BatteryJ: 10_000,
		})
	}
	return cfg
}

// Validate checks the topology (parents must form a forest toward -1).
func (c NetworkConfig) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("sensornet: need at least one node")
	}
	if c.LossPerHop < 0 || c.LossPerHop >= 1 {
		return fmt.Errorf("sensornet: loss per hop %v out of [0,1)", c.LossPerHop)
	}
	if c.HopLatency < 0 {
		return fmt.Errorf("sensornet: negative hop latency")
	}
	if c.SampleCostJ < 0 || c.ForwardCostJ < 0 {
		return fmt.Errorf("sensornet: negative energy costs")
	}
	for i, n := range c.Nodes {
		if n.Parent >= len(c.Nodes) || n.Parent < -1 {
			return fmt.Errorf("sensornet: node %d parent %d out of range", i, n.Parent)
		}
		if n.Parent == i {
			return fmt.Errorf("sensornet: node %d is its own parent", i)
		}
		if n.NoiseSD < 0 {
			return fmt.Errorf("sensornet: node %d negative noise", i)
		}
		if n.BatteryJ <= 0 {
			return fmt.Errorf("sensornet: node %d needs positive battery", i)
		}
	}
	// Cycle check: walk each node to the base within len(Nodes) hops.
	for i := range c.Nodes {
		cur, hops := i, 0
		for cur != -1 {
			cur = c.Nodes[cur].Parent
			hops++
			if hops > len(c.Nodes) {
				return fmt.Errorf("sensornet: cycle involving node %d", i)
			}
		}
	}
	return nil
}

// Reading is one delivered sensor measurement.
type Reading struct {
	// Node and Zone identify the origin.
	Node, Zone int
	// Value is the measured (noisy) temperature.
	Value float64
	// Latency is the multi-hop delivery delay.
	Latency time.Duration
	// Hops is the path length to the base.
	Hops int
}

// FaultMode is an injected sensor malfunction (§4.5 instrumentation is
// itself hardware that fails: radios die, ADCs latch).
type FaultMode int

// Sensor fault modes.
const (
	// FaultNone marks a healthy sensor.
	FaultNone FaultMode = iota
	// FaultDropout silences the node: it neither samples nor transmits
	// until repaired (a dead radio). Relays in dropout still cannot
	// forward, partitioning their subtree exactly like a dead battery.
	FaultDropout
	// FaultStuck latches the node's reading: it keeps transmitting the
	// last value it measured before the fault, regardless of the ground
	// truth (a latched ADC) — the insidious case, because the collection
	// tree still reports full delivery.
	FaultStuck
)

// Network is the runtime sensor network.
type Network struct {
	cfg       NetworkConfig
	rng       *sim.RNG
	batteries []float64
	delivered int64
	lost      int64
	faults    []FaultMode
	// lastValue is each node's most recent measurement; a stuck node
	// replays it.
	lastValue []float64
	hasValue  []bool
}

// NewNetwork builds a network with the given deterministic source.
func NewNetwork(cfg NetworkConfig, rng *sim.RNG) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	batteries := make([]float64, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		batteries[i] = n.BatteryJ
	}
	return &Network{
		cfg:       cfg,
		rng:       rng,
		batteries: batteries,
		faults:    make([]FaultMode, len(cfg.Nodes)),
		lastValue: make([]float64, len(cfg.Nodes)),
		hasValue:  make([]bool, len(cfg.Nodes)),
	}, nil
}

// SetFault injects or clears a fault on node i. Clearing restores normal
// sampling on the next Collect round.
func (n *Network) SetFault(i int, mode FaultMode) error {
	if i < 0 || i >= len(n.cfg.Nodes) {
		return fmt.Errorf("sensornet: node %d out of range", i)
	}
	switch mode {
	case FaultNone, FaultDropout, FaultStuck:
	default:
		return fmt.Errorf("sensornet: unknown fault mode %d", int(mode))
	}
	n.faults[i] = mode
	return nil
}

// Fault reports node i's current fault mode.
func (n *Network) Fault(i int) FaultMode { return n.faults[i] }

// FaultyCount reports how many nodes currently carry an injected fault.
func (n *Network) FaultyCount() int {
	count := 0
	for _, f := range n.faults {
		if f != FaultNone {
			count++
		}
	}
	return count
}

// Alive reports whether node i still has battery.
func (n *Network) Alive(i int) bool { return n.batteries[i] > 0 }

// AliveCount reports the number of live nodes.
func (n *Network) AliveCount() int {
	count := 0
	for i := range n.batteries {
		if n.Alive(i) {
			count++
		}
	}
	return count
}

// DeliveryStats reports delivered and lost message counts.
func (n *Network) DeliveryStats() (delivered, lost int64) { return n.delivered, n.lost }

// Collect runs one sensing round: every live node samples the ground
// truth for its zone (via the supplied function) and the message is
// forwarded up the tree, draining batteries and possibly being lost.
func (n *Network) Collect(truth func(zone int) float64) []Reading {
	var out []Reading
	for i, node := range n.cfg.Nodes {
		if !n.Alive(i) || n.faults[i] == FaultDropout {
			continue
		}
		n.batteries[i] -= n.cfg.SampleCostJ
		var value float64
		if n.faults[i] == FaultStuck && n.hasValue[i] {
			value = n.lastValue[i] // latched ADC replays the pre-fault sample
		} else {
			value = truth(node.Zone) + n.rng.Normal(0, node.NoiseSD)
			n.lastValue[i] = value
			n.hasValue[i] = true
		}

		// Walk to the base, draining forwarders and rolling loss dice.
		hops := 1
		cur := node.Parent
		lost := n.rng.Bernoulli(n.cfg.LossPerHop)
		for cur != -1 && !lost {
			if !n.Alive(cur) || n.faults[cur] == FaultDropout {
				lost = true // dead or silenced relay partitions the subtree
				break
			}
			n.batteries[cur] -= n.cfg.ForwardCostJ
			lost = n.rng.Bernoulli(n.cfg.LossPerHop)
			cur = n.cfg.Nodes[cur].Parent
			hops++
		}
		if lost {
			n.lost++
			continue
		}
		n.delivered++
		out = append(out, Reading{
			Node:    i,
			Zone:    node.Zone,
			Value:   value,
			Latency: time.Duration(hops) * n.cfg.HopLatency,
			Hops:    hops,
		})
	}
	return out
}

// ReconstructMap builds a per-zone temperature estimate from readings:
// zones with readings average them; zones without are filled by linear
// interpolation between the nearest instrumented zones (ends extend).
func ReconstructMap(readings []Reading, zones int) ([]float64, error) {
	if zones <= 0 {
		return nil, fmt.Errorf("sensornet: zones %d must be positive", zones)
	}
	sums := make([]float64, zones)
	counts := make([]int, zones)
	for _, r := range readings {
		if r.Zone < 0 || r.Zone >= zones {
			return nil, fmt.Errorf("sensornet: reading zone %d out of range", r.Zone)
		}
		sums[r.Zone] += r.Value
		counts[r.Zone]++
	}
	known := make(map[int]float64, zones)
	for z := 0; z < zones; z++ {
		if counts[z] > 0 {
			known[z] = sums[z] / float64(counts[z])
		}
	}
	return InterpolateSparse(known, zones)
}

// InterpolateSparse fills a per-zone map from sparse known values by
// linear interpolation over the zone index (the coarse baseline a
// facility without fine-grained sensing falls back to).
func InterpolateSparse(known map[int]float64, zones int) ([]float64, error) {
	if zones <= 0 {
		return nil, fmt.Errorf("sensornet: zones %d must be positive", zones)
	}
	if len(known) == 0 {
		return nil, fmt.Errorf("sensornet: no known zones to interpolate from")
	}
	out := make([]float64, zones)
	for z := 0; z < zones; z++ {
		if v, ok := known[z]; ok {
			out[z] = v
			continue
		}
		// Nearest known below and above.
		lo, hi := -1, -1
		for k := z - 1; k >= 0; k-- {
			if _, ok := known[k]; ok {
				lo = k
				break
			}
		}
		for k := z + 1; k < zones; k++ {
			if _, ok := known[k]; ok {
				hi = k
				break
			}
		}
		switch {
		case lo >= 0 && hi >= 0:
			frac := float64(z-lo) / float64(hi-lo)
			out[z] = known[lo]*(1-frac) + known[hi]*frac
		case lo >= 0:
			out[z] = known[lo]
		default:
			out[z] = known[hi]
		}
	}
	return out, nil
}

// RMSE computes the root-mean-square error between an estimate and the
// ground truth.
func RMSE(estimate, truth []float64) (float64, error) {
	if len(estimate) != len(truth) {
		return 0, fmt.Errorf("sensornet: length mismatch %d != %d", len(estimate), len(truth))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("sensornet: empty inputs")
	}
	var ss float64
	for i := range truth {
		d := estimate[i] - truth[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(truth))), nil
}
