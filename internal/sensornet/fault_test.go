package sensornet

import (
	"testing"

	"repro/internal/sim"
)

// lossless returns a 4-node line-topology config with no stochastic
// message loss, so fault behaviour is isolated from channel noise.
func lossless() NetworkConfig {
	cfg := DefaultNetworkConfig(4)
	cfg.LossPerHop = 0
	for i := range cfg.Nodes {
		cfg.Nodes[i].NoiseSD = 0
	}
	return cfg
}

func TestSetFaultValidation(t *testing.T) {
	n, err := NewNetwork(lossless(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFault(-1, FaultDropout); err == nil {
		t.Error("negative node accepted")
	}
	if err := n.SetFault(4, FaultDropout); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := n.SetFault(0, FaultMode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := n.SetFault(0, FaultDropout); err != nil {
		t.Fatal(err)
	}
	if n.Fault(0) != FaultDropout || n.FaultyCount() != 1 {
		t.Fatal("fault not recorded")
	}
}

func TestDropoutSilencesNodeAndPartitionsSubtree(t *testing.T) {
	n, err := NewNetwork(lossless(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	truth := func(zone int) float64 { return 20 + float64(zone) }
	if got := len(n.Collect(truth)); got != 4 {
		t.Fatalf("healthy round delivered %d readings, want 4", got)
	}
	// Node 1 relays nodes 2 and 3 in the line topology: its dropout
	// silences itself and partitions the subtree behind it.
	if err := n.SetFault(1, FaultDropout); err != nil {
		t.Fatal(err)
	}
	readings := n.Collect(truth)
	if len(readings) != 1 || readings[0].Node != 0 {
		t.Fatalf("dropout of relay 1 should leave only node 0, got %v", readings)
	}
	if err := n.SetFault(1, FaultNone); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Collect(truth)); got != 4 {
		t.Fatalf("repair should restore delivery, got %d", got)
	}
}

func TestStuckNodeReplaysPreFaultValue(t *testing.T) {
	n, err := NewNetwork(lossless(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	temp := 20.0
	truth := func(zone int) float64 { return temp }
	n.Collect(truth) // latch 20 as every node's last measurement
	if err := n.SetFault(2, FaultStuck); err != nil {
		t.Fatal(err)
	}
	temp = 30
	for round := 0; round < 3; round++ {
		readings := n.Collect(truth)
		if len(readings) != 4 {
			t.Fatalf("stuck node must keep transmitting, got %d readings", len(readings))
		}
		for _, r := range readings {
			want := 30.0
			if r.Node == 2 {
				want = 20.0
			}
			if r.Value != want {
				t.Fatalf("round %d node %d value %v, want %v", round, r.Node, r.Value, want)
			}
		}
	}
	if err := n.SetFault(2, FaultNone); err != nil {
		t.Fatal(err)
	}
	for _, r := range n.Collect(truth) {
		if r.Value != 30 {
			t.Fatalf("repaired node %d still reads %v", r.Node, r.Value)
		}
	}
}

func TestStuckBeforeFirstSampleLatchesFirstMeasurement(t *testing.T) {
	n, err := NewNetwork(lossless(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFault(0, FaultStuck); err != nil {
		t.Fatal(err)
	}
	temp := 21.0
	truth := func(zone int) float64 { return temp }
	first := n.Collect(truth)
	temp = 35
	second := n.Collect(truth)
	if first[0].Node != 0 || second[0].Node != 0 {
		t.Fatal("node 0 missing")
	}
	if first[0].Value != 21 || second[0].Value != 21 {
		t.Fatalf("stuck-at-first-sample: got %v then %v, want 21 both times",
			first[0].Value, second[0].Value)
	}
}
