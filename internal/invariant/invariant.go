// Package invariant is a pluggable runtime checker for the physical laws
// the simulation must never break, no matter which policy is driving it:
// power draw stays within provisioned tier capacity unless oversubscription
// is explicitly engaged (§3.1), energy accumulators equal the integral of
// sampled power, server state machines take only legal lifecycle
// transitions, room temperatures stay inside a physical envelope with CRAC
// setpoints clamped to their configured bounds, utilizations stay in
// [0, 1], and fleet accounting always balances.
//
// The checker rides the kernel's observation hooks: Attach registers an
// after-event callback on a sim.Engine, and after every fired event it
// scans the engine's registered components (fleets, cooling rooms, power
// topologies, and anything implementing Checkable). Checks are read-only —
// the checker never advances, syncs, or otherwise mutates a substrate — so
// an armed run is behaviourally identical to an unarmed one.
package invariant

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
)

// Checkable lets any component participate in invariant checking without
// importing this package: implement the method and register the component
// with the engine. The structural interface is matched at check time.
type Checkable interface {
	// CheckInvariants reports a violated internal invariant at the given
	// virtual time, or nil when the component is consistent.
	CheckInvariants(now time.Duration) error
}

// Violation is one failed invariant. It implements error so a single
// violation can propagate as a named failure.
type Violation struct {
	// Rule names the invariant, e.g. "server-legal-transition".
	Rule string
	// At is the virtual time of detection.
	At time.Duration
	// Detail is a human-readable description of the failure.
	Detail string
}

// Error renders the violation as "invariant <rule> violated at <t>: …".
func (v Violation) Error() string {
	return fmt.Sprintf("invariant %s violated at %v: %s", v.Rule, v.At, v.Detail)
}

// Physical sanity envelope for room temperatures: anything outside is a
// runaway integration or NaN, not weather. Deliberately generous — the
// thermal-pathology experiments legitimately push inlets far beyond the
// ASHRAE band, and catching *policy* overheating is the job of the trip
// model, not this checker.
const (
	minSaneTempC = -50
	maxSaneTempC = 150
)

// Tolerances for the energy-integral check. The checker replays the exact
// multiply-add sequence the server's own integrator performs, so the two
// agree to the last bit in practice; the tolerance absorbs pathological
// associativity differences only.
const (
	energyRelTol  = 1e-9
	energyAbsTolJ = 1e-6
)

// serverTrack is the checker's last observation of one server, used to
// validate the next one against it.
type serverTrack struct {
	state   server.State
	power   float64
	energyJ float64
	boots   int
	at      time.Duration // server's LastSyncAt at observation
}

// Checker accumulates invariant violations across every engine it is
// attached to. A checker is owned by a single run (one experiment × one
// seed) and is not safe for concurrent use — the parallel harness gives
// each job its own.
type Checker struct {
	max        int
	violations []Violation
	servers    map[*server.Server]*serverTrack
}

// NewChecker builds an armed checker.
func NewChecker() *Checker {
	return &Checker{max: 16, servers: make(map[*server.Server]*serverTrack)}
}

// Attach arms the checker on an engine: after every fired event, every
// component registered with the engine is checked. Attach may be called
// on any number of engines; violations accumulate in one place.
func (c *Checker) Attach(e *sim.Engine) {
	e.AfterEvent(func(eng *sim.Engine) {
		if len(c.violations) >= c.max {
			return
		}
		now := eng.Now()
		for _, comp := range eng.Components() {
			c.CheckComponent(now, comp)
		}
	})
}

// CheckComponent runs every applicable rule against one component at the
// given virtual time. It is exported so tests and experiments can check
// components that never ride an engine (e.g. VM hosts in analytic
// placement studies).
func (c *Checker) CheckComponent(now time.Duration, comp any) {
	switch x := comp.(type) {
	case *core.Fleet:
		c.checkFleet(now, x)
	case *cooling.Room:
		c.checkRoom(now, x)
	case *power.Topology:
		c.checkTopology(now, x)
	}
	if ck, ok := comp.(Checkable); ok {
		if err := ck.CheckInvariants(now); err != nil {
			c.report("component-invariant", now, "%v", err)
		}
	}
}

// Violations returns the accumulated violations (shared slice: do not
// mutate). Collection stops after an internal cap so a broken invariant in
// a hot loop cannot flood memory.
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil when no invariant was violated, otherwise an error whose
// chain starts with the first (named) violation.
func (c *Checker) Err() error {
	switch len(c.violations) {
	case 0:
		return nil
	case 1:
		return c.violations[0]
	default:
		return fmt.Errorf("%w (and %d more violations)", c.violations[0], len(c.violations)-1)
	}
}

// report records one violation, respecting the cap.
func (c *Checker) report(rule string, at time.Duration, format string, args ...any) {
	if len(c.violations) >= c.max {
		return
	}
	c.violations = append(c.violations, Violation{Rule: rule, At: at, Detail: fmt.Sprintf(format, args...)})
}

// legalTransition is the server lifecycle table: Off→Booting→Active→
// ShuttingDown→Off, plus Booting→ShuttingDown (aborted boot),
// Active/Booting→Off (thermal trip), and self-loops.
func legalTransition(from, to server.State) bool {
	if from == to {
		return true
	}
	switch from {
	case server.StateOff:
		return to == server.StateBooting
	case server.StateBooting:
		return to == server.StateActive || to == server.StateShuttingDown || to == server.StateOff
	case server.StateActive:
		return to == server.StateShuttingDown || to == server.StateOff
	case server.StateShuttingDown:
		return to == server.StateOff
	default:
		return false
	}
}

// checkFleet validates per-server invariants and the fleet's aggregate
// accounting: state counts partition the fleet, and the committed count
// matches its definition.
func (c *Checker) checkFleet(now time.Duration, f *core.Fleet) {
	var off, booting, active, shutting int
	for _, s := range f.Servers() {
		c.checkServer(now, s)
		switch s.State() {
		case server.StateOff:
			off++
		case server.StateBooting:
			booting++
		case server.StateActive:
			active++
		case server.StateShuttingDown:
			shutting++
		}
	}
	if total := off + booting + active + shutting; total != f.Size() {
		c.report("fleet-accounting", now,
			"state counts off=%d booting=%d active=%d shutting=%d sum to %d, fleet size %d",
			off, booting, active, shutting, total, f.Size())
	}
	if on := f.OnCount(); on != active+booting {
		c.report("fleet-accounting", now, "OnCount %d != active %d + booting %d", on, active, booting)
	}
	if a := f.ActiveCount(); a != active {
		c.report("fleet-accounting", now, "ActiveCount %d != counted active %d", a, active)
	}
	// Cross-validate the fleet's incrementally maintained aggregates
	// (SoA power plane, running totals, per-group sums) against a full
	// recompute, so a mutation path that skipped its notification — or
	// float drift escaping the rebase policy — fails loudly.
	if err := f.VerifyAggregates(); err != nil {
		c.report("fleet-aggregates", now, "%v", err)
	}
}

// checkServer validates one server's state value, lifecycle transition
// since the last observation, utilization range, power bounds, and the
// energy accumulator against the integral of the observed power history.
// The check is read-only: it reconciles against the server's own last
// sync instant instead of forcing one.
func (c *Checker) checkServer(now time.Duration, s *server.Server) {
	st := s.State()
	cfg := s.Config()

	switch st {
	case server.StateOff, server.StateBooting, server.StateActive, server.StateShuttingDown:
	default:
		c.report("server-state", now, "%s: unknown state %v", cfg.Name, st)
	}

	u := s.Utilization()
	if u < 0 || u > 1 {
		c.report("server-utilization", now, "%s: utilization %v out of [0,1]", cfg.Name, u)
	}
	if st != server.StateActive && u != 0 {
		c.report("server-utilization", now, "%s: utilization %v while %v", cfg.Name, u, st)
	}

	p := s.Power()
	if math.IsNaN(p) || p < 0 || p > cfg.PeakPower*(1+1e-9) {
		c.report("server-power-bounds", now, "%s: power %v W outside [0, peak %v W]", cfg.Name, p, cfg.PeakPower)
	}
	if st == server.StateOff && p != 0 {
		c.report("server-power-bounds", now, "%s: draws %v W while off", cfg.Name, p)
	}

	ts := s.LastSyncAt()
	en := s.EnergyJ()
	boots := s.Boots()
	tr, seen := c.servers[s]
	if !seen {
		tr = &serverTrack{}
		c.servers[s] = tr
	} else {
		if !legalTransition(tr.state, st) {
			c.report("server-legal-transition", now, "%s: illegal transition %v -> %v", cfg.Name, tr.state, st)
		}
		if ts < tr.at {
			c.report("server-energy-integral", now, "%s: sync time moved backwards %v -> %v", cfg.Name, tr.at, ts)
		} else {
			bootDelta := boots - tr.boots
			if bootDelta < 0 {
				c.report("server-legal-transition", now, "%s: boot counter decreased %d -> %d", cfg.Name, tr.boots, boots)
				bootDelta = 0
			}
			expected := tr.energyJ + tr.power*(ts-tr.at).Seconds() + float64(bootDelta)*cfg.BootEnergy
			tol := energyAbsTolJ + energyRelTol*math.Abs(expected)
			if math.Abs(en-expected) > tol {
				c.report("server-energy-integral", now,
					"%s: energy %v J != integral of sampled power %v J (Δ %v J over %v)",
					cfg.Name, en, expected, en-expected, ts-tr.at)
			}
			if en < tr.energyJ {
				c.report("server-energy-integral", now, "%s: energy decreased %v -> %v J", cfg.Name, tr.energyJ, en)
			}
		}
	}
	tr.state, tr.power, tr.energyJ, tr.boots, tr.at = st, p, en, boots, ts
}

// checkRoom validates the thermal model: CRAC setpoints clamped to their
// configured supply bounds, all temperatures finite and inside a physical
// sanity envelope, and heat loads non-negative.
func (c *Checker) checkRoom(now time.Duration, r *cooling.Room) {
	for ci := 0; ci < r.CRACs(); ci++ {
		cfg := r.UnitConfig(ci)
		sp := r.CRACSetpointC(ci)
		if math.IsNaN(sp) || sp < cfg.SupplyMinC-1e-9 || sp > cfg.SupplyMaxC+1e-9 {
			c.report("crac-setpoint-bounds", now, "%s: setpoint %v °C outside [%v, %v]",
				cfg.Name, sp, cfg.SupplyMinC, cfg.SupplyMaxC)
		}
		if t := r.CRACSupplyC(ci); !saneTemp(t) {
			c.report("room-envelope", now, "%s: supply %v °C outside physical envelope", cfg.Name, t)
		}
		if t := r.CRACReturnC(ci); !saneTemp(t) {
			c.report("room-envelope", now, "%s: return %v °C outside physical envelope", cfg.Name, t)
		}
	}
	for z := 0; z < r.Zones(); z++ {
		if t := r.ZoneInletC(z); !saneTemp(t) {
			c.report("room-envelope", now, "zone %s: inlet %v °C outside physical envelope", r.ZoneName(z), t)
		}
		if h := r.ZoneHeat(z); math.IsNaN(h) || h < 0 {
			c.report("room-heat-nonnegative", now, "zone %s: heat %v W", r.ZoneName(z), h)
		}
	}
	if l := r.CoolingLoadW(); math.IsNaN(l) || l < 0 {
		c.report("room-heat-nonnegative", now, "cooling load %v W", l)
	}
}

// saneTemp reports whether a temperature is finite and physically
// plausible for machine-room air.
func saneTemp(t float64) bool {
	return !math.IsNaN(t) && t > minSaneTempC && t < maxSaneTempC
}

// checkTopology evaluates the power tree and enforces tier capacity:
// with oversubscription ≤ 1 every tier was sized for worst case, so an
// overloaded or surge-exceeded node is a physics violation. With
// oversubscription engaged (> 1), overloads are the accepted risk the
// policy signed up for (§3.1) and only NaN/negative flows are flagged.
// Cap excursions are always allowed here — caps are advisory at the tree
// layer and enforcement is the macro layer's job.
func (c *Checker) checkTopology(now time.Duration, t *power.Topology) {
	flow := t.Feed.Evaluate()
	strict := t.Oversubscription <= 1
	c.walkFlow(now, strict, flow)
}

func (c *Checker) walkFlow(now time.Duration, strict bool, f power.Flow) {
	if math.IsNaN(f.OutW) || f.OutW < 0 || math.IsNaN(f.InW) || f.InW < f.OutW {
		c.report("power-flow-sane", now, "%s[%s]: out %v W in %v W", f.Name, f.Kind, f.OutW, f.InW)
	}
	if strict && f.Overloaded {
		c.report("power-tier-capacity", now, "%s[%s]: output %v W over rating (util %.1f%%) without oversubscription",
			f.Name, f.Kind, f.OutW, f.Utilization*100)
	}
	if strict && f.SurgeExceeded {
		c.report("power-tier-capacity", now, "%s[%s]: output %v W over surge ceiling without oversubscription",
			f.Name, f.Kind, f.OutW)
	}
	for _, ch := range f.Children {
		c.walkFlow(now, strict, ch)
	}
}
