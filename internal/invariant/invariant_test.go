package invariant

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/vm"
)

// countingCheckable proves the after-event hook actually fires.
type countingCheckable struct {
	calls int
	err   error
}

func (c *countingCheckable) CheckInvariants(time.Duration) error {
	c.calls++
	return c.err
}

func TestLegalTransitionTable(t *testing.T) {
	legal := [][2]server.State{
		{server.StateOff, server.StateBooting},
		{server.StateBooting, server.StateActive},
		{server.StateBooting, server.StateShuttingDown},
		{server.StateBooting, server.StateOff},
		{server.StateActive, server.StateShuttingDown},
		{server.StateActive, server.StateOff},
		{server.StateShuttingDown, server.StateOff},
		{server.StateOff, server.StateOff},
		{server.StateActive, server.StateActive},
	}
	for _, p := range legal {
		if !legalTransition(p[0], p[1]) {
			t.Errorf("%v -> %v should be legal", p[0], p[1])
		}
	}
	illegal := [][2]server.State{
		{server.StateOff, server.StateActive},       // no boot skipped
		{server.StateOff, server.StateShuttingDown}, // nothing to shut down
		{server.StateShuttingDown, server.StateActive},
		{server.StateShuttingDown, server.StateBooting},
		{server.StateActive, server.StateBooting}, // no double-boot
	}
	for _, p := range illegal {
		if legalTransition(p[0], p[1]) {
			t.Errorf("%v -> %v should be illegal", p[0], p[1])
		}
	}
}

// TestCleanFleetLifecycle drives a fleet through boots, load, aborted
// boots, graceful shutdowns, and a thermal trip, with the checker armed.
// A legal run must produce zero violations, and the hook must demonstrably
// fire.
func TestCleanFleetLifecycle(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewChecker()
	c.Attach(e)
	counter := &countingCheckable{}
	e.Register(counter)

	cfg := server.DefaultConfig()
	fleet, err := core.NewFleet(e, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	fleet.SetTarget(6)
	e.Every(time.Minute, func(eng *sim.Engine) {
		now := eng.Now()
		switch int(now / time.Minute) {
		case 2:
			fleet.SetTarget(3) // sheds boots in flight (abort path)
		case 4:
			fleet.SetTarget(5)
		case 6:
			// Thermal trip on the first active server.
			for _, s := range fleet.Servers() {
				if s.State() == server.StateActive {
					s.ObserveInlet(now, s.Config().TripTempC+5)
					break
				}
			}
		}
		fleet.Dispatch(now, 0.5*float64(fleet.ActiveCount())*cfg.Capacity)
	})
	if err := e.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("legal lifecycle flagged: %v", err)
	}
	if counter.calls == 0 {
		t.Fatal("after-event hook never fired; checker is inert")
	}
	if counter.calls != int(e.Processed()) {
		t.Errorf("checkable called %d times, %d events fired", counter.calls, e.Processed())
	}
}

// TestTopologyOverloadViolation: a tree sized without oversubscription
// whose rack draws more than its rating is a physics violation and must
// fail with the named rule.
func TestTopologyOverloadViolation(t *testing.T) {
	topo, err := power.NewTopology(power.TopologyConfig{
		UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: 1,
		RackRatedW: 1000, Oversubscription: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo.Racks[0].AddLoad(func() float64 { return 1500 })

	e := sim.NewEngine(1)
	c := NewChecker()
	c.Attach(e)
	e.Register(topo)
	e.ScheduleAfter(time.Second, func(*sim.Engine) {})
	if err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	verr := c.Err()
	if verr == nil {
		t.Fatal("overloaded un-oversubscribed rack not flagged")
	}
	var v Violation
	if !errors.As(verr, &v) {
		t.Fatalf("error %v does not unwrap to a Violation", verr)
	}
	if v.Rule != "power-tier-capacity" {
		t.Errorf("rule = %q, want power-tier-capacity", v.Rule)
	}
	if !strings.Contains(verr.Error(), "invariant power-tier-capacity violated") {
		t.Errorf("error %q does not name the invariant", verr)
	}
}

// TestOversubscribedTopologyAllowed: the same overload under an engaged
// oversubscription policy is an accepted risk, not a violation (§3.1).
func TestOversubscribedTopologyAllowed(t *testing.T) {
	topo, err := power.NewTopology(power.TopologyConfig{
		UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: 2,
		RackRatedW: 1000, Oversubscription: 1.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Oversubscription != 1.25 {
		t.Fatalf("Oversubscription = %v, want 1.25", topo.Oversubscription)
	}
	// Both racks at rating: the PDU (rated 2000/1.25 = 1600 W) overloads.
	for _, r := range topo.Racks {
		r.AddLoad(func() float64 { return 1000 })
	}
	if !topo.Feed.Evaluate().Children[0].Children[0].Overloaded {
		t.Fatal("test scenario should overload the PDU")
	}
	c := NewChecker()
	c.CheckComponent(0, topo)
	if err := c.Err(); err != nil {
		t.Fatalf("oversubscribed overload should be allowed, got %v", err)
	}
}

// TestCheckableViolation: a component that reports a broken internal
// invariant surfaces as a named component-invariant violation.
func TestCheckableViolation(t *testing.T) {
	c := NewChecker()
	bad := &countingCheckable{err: fmt.Errorf("synthetic breakage")}
	c.CheckComponent(3*time.Second, bad)
	verr := c.Err()
	if verr == nil {
		t.Fatal("checkable error not reported")
	}
	var v Violation
	if !errors.As(verr, &v) || v.Rule != "component-invariant" || v.At != 3*time.Second {
		t.Fatalf("got %+v, want component-invariant at 3s", verr)
	}
}

// TestHostCheckable: vm.Host participates via the structural interface,
// and an overcommitted host (capacity shrank under live placements, as a
// broken migration would produce) is caught.
func TestHostCheckable(t *testing.T) {
	var _ Checkable = (*vm.Host)(nil)

	h, err := vm.NewHost("h0", vm.Resources{CPU: 8, MemGB: 64, DiskIOPS: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Place(&vm.VM{Name: "a", Size: vm.Resources{CPU: 4, MemGB: 16}}); err != nil {
		t.Fatal(err)
	}
	c := NewChecker()
	c.CheckComponent(0, h)
	if err := c.Err(); err != nil {
		t.Fatalf("consistent host flagged: %v", err)
	}

	h.Capacity.CPU = 2 // capacity yanked out from under the placement
	c.CheckComponent(time.Minute, h)
	verr := c.Err()
	if verr == nil {
		t.Fatal("overcommitted host not flagged")
	}
	var v Violation
	if !errors.As(verr, &v) || v.Rule != "component-invariant" {
		t.Fatalf("got %+v, want component-invariant", verr)
	}
}

// TestRoomClean: an attached room under steady heat stays inside the
// envelope with clamped setpoints.
func TestRoomClean(t *testing.T) {
	room, err := cooling.TwoZoneRoom(0.9, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(1)
	c := NewChecker()
	c.Attach(e)
	room.Attach(e) // self-registers
	if err := room.SetZoneHeat(0, 20_000); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("steady room flagged: %v", err)
	}
}

// TestViolationCap: a hot loop of violations stops accumulating at the
// internal cap instead of flooding memory, and Err reports the overflow.
func TestViolationCap(t *testing.T) {
	c := NewChecker()
	bad := &countingCheckable{err: fmt.Errorf("always broken")}
	for i := 0; i < 100; i++ {
		c.CheckComponent(time.Duration(i), bad)
	}
	if n := len(c.Violations()); n > 32 {
		t.Fatalf("violations grew unbounded: %d", n)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "more violations") {
		t.Fatalf("Err() = %v, want overflow note", err)
	}
}

// TestEnergyIntegralTracksBoots: the energy rule must reconcile the boot
// impulse, not flag it — a fleet that boots repeatedly stays clean.
func TestEnergyIntegralTracksBoots(t *testing.T) {
	e := sim.NewEngine(7)
	c := NewChecker()
	c.Attach(e)
	cfg := server.DefaultConfig()
	cfg.BootDelay = 30 * time.Second
	fleet, err := core.NewFleet(e, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	on := true
	fleet.SetTarget(2)
	e.Every(2*time.Minute, func(*sim.Engine) {
		on = !on
		if on {
			fleet.SetTarget(2)
		} else {
			fleet.SetTarget(0)
		}
	})
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("boot cycling flagged: %v", err)
	}
	fleet.Sync(time.Hour)
	if fleet.Servers()[0].Boots() < 2 {
		t.Fatal("test scenario should boot repeatedly")
	}
}
