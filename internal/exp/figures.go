package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// fig1 — power distribution tiers (paper Figure 1, §2.1)
// ---------------------------------------------------------------------------

// Fig1Row is the power flow at one fleet utilization level.
type Fig1Row struct {
	Utilization    float64
	CriticalKW     float64
	UPSLossKW      float64
	OtherLossKW    float64
	FacilityInKW   float64
	DistEfficiency float64
}

// Fig1Result reproduces the structure of Figure 1: power flowing from the
// grid through UPS and PDUs to racks, with per-tier losses.
type Fig1Result struct {
	Rows []Fig1Row
	// HostableServers is the §2.1 sizing rule outcome: how many 300 W
	// servers the UPS tier can host at worst case.
	HostableServers int
	// OverloadAt reports the first utilization sweep point (×100 %)
	// at which any tier exceeded its rating under 1.25× oversubscribed
	// upstream sizing, or -1.
	OverloadAt float64
}

// ID implements Result.
func (Fig1Result) ID() string { return "fig1" }

// Report implements Result.
func (r Fig1Result) Report() string {
	var b strings.Builder
	b.WriteString(header("fig1", "power distribution tiers (Figure 1)"))
	b.WriteString("util%  critical_kW  ups_loss_kW  other_loss_kW  facility_kW  dist_eff\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5.0f  %11.1f  %11.2f  %13.2f  %11.1f  %8.3f\n",
			row.Utilization*100, row.CriticalKW, row.UPSLossKW, row.OtherLossKW,
			row.FacilityInKW, row.DistEfficiency)
	}
	fmt.Fprintf(&b, "hostable 300W servers under UPS worst-case sizing: %d\n", r.HostableServers)
	if r.OverloadAt >= 0 {
		fmt.Fprintf(&b, "with 1.25x oversubscription, first tier overload at %.0f%% fleet utilization\n", r.OverloadAt*100)
	}
	return b.String()
}

// RunFig1 sweeps fleet utilization through a canonical tree and reports
// per-tier losses and the UPS sizing rule.
func RunFig1(env *Env) (Result, error) {
	seed := env.Seed
	e := env.NewEngine(seed)
	cfg := server.DefaultConfig()
	topoCfg := power.TopologyConfig{
		UPSCount: 2, PDUsPerUPS: 2, RacksPerPDU: 4,
		RackRatedW: 12_000, Oversubscription: 1,
	}
	topo, err := power.NewTopology(topoCfg)
	if err != nil {
		return nil, err
	}
	const perRack = 30
	fleet, err := core.NewFleet(e, cfg, perRack*len(topo.Racks))
	if err != nil {
		return nil, err
	}
	for i, s := range fleet.Servers() {
		s := s
		topo.Racks[i/perRack].AddLoad(func() float64 { return s.Power() })
	}
	fleet.SetTarget(fleet.Size())
	if err := e.Run(cfg.BootDelay + time.Second); err != nil {
		return nil, err
	}

	var res Fig1Result
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		fleet.Dispatch(e.Now(), u*float64(fleet.Size())*cfg.Capacity)
		flow := topo.Feed.Evaluate()
		var upsLoss float64
		for _, uf := range flow.Children {
			upsLoss += uf.LossW
		}
		res.Rows = append(res.Rows, Fig1Row{
			Utilization:    u,
			CriticalKW:     flow.CriticalPower() / 1e3,
			UPSLossKW:      upsLoss / 1e3,
			OtherLossKW:    (flow.TotalLoss() - upsLoss) / 1e3,
			FacilityInKW:   flow.InW / 1e3,
			DistEfficiency: flow.CriticalPower() / flow.InW,
		})
	}
	res.HostableServers = topo.HostableServers(cfg.PeakPower)

	// Oversubscribed variant: find where the first tier overloads.
	res.OverloadAt = -1
	overTopo, err := power.NewTopology(power.TopologyConfig{
		UPSCount: 2, PDUsPerUPS: 2, RacksPerPDU: 4,
		RackRatedW: 12_000, Oversubscription: 1.25,
	})
	if err != nil {
		return nil, err
	}
	for i, s := range fleet.Servers() {
		s := s
		overTopo.Racks[i/perRack].AddLoad(func() float64 { return s.Power() })
	}
	for _, u := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		fleet.Dispatch(e.Now(), u*float64(fleet.Size())*cfg.Capacity)
		if len(overTopo.Feed.Evaluate().Violations()) > 0 {
			res.OverloadAt = u
			break
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// fig2 — air-cooled room dynamics (paper Figure 2, §2.2)
// ---------------------------------------------------------------------------

// Fig2Result reproduces the behaviour the paper attaches to Figure 2:
// slow thermal dynamics under 15-minute CRAC control.
type Fig2Result struct {
	// SettleAfterStep is how long zone inlets took to come within 0.5 °C
	// of their final value after a heat step.
	SettleAfterStep time.Duration
	// CRACAdjustments counts setpoint changes over the run.
	CRACAdjustments int
	// MaxInletC and MinInletC bound the observed inlets.
	MaxInletC, MinInletC float64
	// ASHRAEFraction is the share of samples inside the recommended
	// 20–25 °C band.
	ASHRAEFraction float64
	// InletTrace is the minute-sampled inlet of zone 0 (for plotting).
	InletTrace *trace.Series
}

// ID implements Result.
func (Fig2Result) ID() string { return "fig2" }

// Report implements Result.
func (r Fig2Result) Report() string {
	var b strings.Builder
	b.WriteString(header("fig2", "air-cooled room dynamics (Figure 2)"))
	fmt.Fprintf(&b, "inlet settle time after 20kW heat step: %v (paper: slow dynamics, 15-min CRAC reactions)\n", r.SettleAfterStep.Round(time.Minute))
	fmt.Fprintf(&b, "CRAC setpoint adjustments over 12h: %d\n", r.CRACAdjustments)
	fmt.Fprintf(&b, "inlet range: %.1f..%.1f degC; ASHRAE 20-25degC compliance: %.0f%%\n",
		r.MinInletC, r.MaxInletC, r.ASHRAEFraction*100)
	return b.String()
}

// CSVs exports the inlet-temperature series for replotting.
func (r Fig2Result) CSVs() map[string]string {
	return map[string]string{"fig2_inlet": r.InletTrace.CSV("zone0_inlet_c")}
}

// RunFig2 drives a 4-zone 2-CRAC room through a heat step and measures
// the slow response.
func RunFig2(env *Env) (Result, error) {
	seed := env.Seed
	e := env.NewEngine(seed)
	room, err := cooling.UniformRoom(4, 2, 0.9)
	if err != nil {
		return nil, err
	}
	room.Attach(e)
	const baseHeat = 20_000.0
	for z := 0; z < room.Zones(); z++ {
		if err := room.SetZoneHeat(z, baseHeat); err != nil {
			return nil, err
		}
	}
	var inlets []float64
	var inASHRAE, samples int
	stepAt := 6 * time.Hour
	e.Every(time.Minute, func(eng *sim.Engine) {
		v := room.ZoneInletC(0)
		inlets = append(inlets, v)
		samples++
		if v >= cooling.ASHRAEMinTempC && v <= cooling.ASHRAEMaxTempC {
			inASHRAE++
		}
	})
	e.ScheduleAt(stepAt, func(*sim.Engine) {
		for z := 0; z < room.Zones(); z++ {
			_ = room.SetZoneHeat(z, baseHeat*2)
		}
	})
	if err := e.Run(12 * time.Hour); err != nil {
		return nil, err
	}

	res := Fig2Result{
		CRACAdjustments: room.CRACAdjustments(0) + room.CRACAdjustments(1),
	}
	res.InletTrace = &trace.Series{Step: time.Minute, Values: inlets}
	res.MinInletC, res.MaxInletC = res.InletTrace.Min(), res.InletTrace.Max()
	res.ASHRAEFraction = float64(inASHRAE) / float64(samples)

	// Settle time: first minute after the step where the inlet stays
	// within 0.5 °C of the final value.
	final := inlets[len(inlets)-1]
	stepIdx := int(stepAt / time.Minute)
	settleIdx := len(inlets) - 1
	for i := len(inlets) - 1; i >= stepIdx; i-- {
		if diff := inlets[i] - final; diff > 0.5 || diff < -0.5 {
			settleIdx = i + 1
			break
		}
	}
	res.SettleAfterStep = time.Duration(settleIdx-stepIdx) * time.Minute
	return res, nil
}

// ---------------------------------------------------------------------------
// fig3 — Messenger load variation (paper Figure 3, §3)
// ---------------------------------------------------------------------------

// Fig3Result reproduces the properties the paper reads off Figure 3.
type Fig3Result struct {
	PeakConnections     float64
	PeakLoginRate       float64
	AfternoonNightRatio float64
	WeekdayWeekendRatio float64
	FlashCrowds         int
	Messenger           *trace.Messenger
}

// ID implements Result.
func (Fig3Result) ID() string { return "fig3" }

// Report implements Result.
func (r Fig3Result) Report() string {
	var b strings.Builder
	b.WriteString(header("fig3", "Messenger load variation (Figure 3)"))
	fmt.Fprintf(&b, "peak connections: %.2g (figure normalized to 1e6)\n", r.PeakConnections)
	fmt.Fprintf(&b, "peak login rate: %.0f/s (figure normalized to 1400/s)\n", r.PeakLoginRate)
	fmt.Fprintf(&b, "afternoon/after-midnight connections: %.2f (paper: \"almost twice\")\n", r.AfternoonNightRatio)
	fmt.Fprintf(&b, "weekday/weekend mean connections: %.2f (paper: weekdays higher)\n", r.WeekdayWeekendRatio)
	fmt.Fprintf(&b, "flash crowds injected: %d (paper: \"flash crowd effects\")\n", r.FlashCrowds)
	return b.String()
}

// CSVs exports the two series of Figure 3 for replotting.
func (r Fig3Result) CSVs() map[string]string {
	return map[string]string{
		"fig3_connections": r.Messenger.Connections.CSV("connections"),
		"fig3_logins":      r.Messenger.Logins.CSV("login_rate_per_s"),
	}
}

// RunFig3 generates the calibrated week-long trace and measures the
// figure's properties.
func RunFig3(env *Env) (Result, error) {
	seed := env.Seed
	m, err := trace.GenerateMessenger(trace.DefaultMessengerConfig(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	res := Fig3Result{
		PeakConnections: m.Connections.Max(),
		PeakLoginRate:   m.Logins.Max(),
		FlashCrowds:     len(m.FlashTimes),
		Messenger:       m,
	}
	day := meanInWindow(m.Connections, 13, 16, false)
	night := meanInWindow(m.Connections, 0, 4, false)
	if night > 0 {
		res.AfternoonNightRatio = day / night
	}
	wd := meanInWindow(m.Connections, 0, 24, false)
	we := meanInWindow(m.Connections, 0, 24, true)
	if we > 0 {
		res.WeekdayWeekendRatio = wd / we
	}
	return res, nil
}

// meanInWindow averages a series over an hour-of-day window, restricted
// to weekends or weekdays.
func meanInWindow(s *trace.Series, h0, h1 float64, weekend bool) float64 {
	var sum float64
	var n int
	for i := range s.Values {
		t := time.Duration(i) * s.Step
		hours := t.Hours()
		dow := int(hours/24) % 7
		isWE := dow >= 5
		h := hours - 24*float64(int(hours/24))
		if h >= h0 && h < h1 && isWE == weekend {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ---------------------------------------------------------------------------
// fig4 — macro-resource management end to end (paper Figure 4, §3.2)
// ---------------------------------------------------------------------------

// Fig4Result runs the coordinated MRM over a full facility (power tree +
// cooling + telemetry) on a diurnal demand and reports the cross-layer
// outcome — the architecture of Figure 4 exercised end to end.
type Fig4Result struct {
	EnergyKWh        float64
	MeanPUE          float64
	SLAViolationRate float64
	ThermalTrips     int
	PowerViolations  int
	CapEnforcements  int
	MeanActive       float64
	TelemetryKeys    int
}

// ID implements Result.
func (Fig4Result) ID() string { return "fig4" }

// Report implements Result.
func (r Fig4Result) Report() string {
	var b strings.Builder
	b.WriteString(header("fig4", "macro-resource management end-to-end (Figure 4)"))
	fmt.Fprintf(&b, "48h coordinated run: IT energy %.1f kWh, mean PUE %.2f\n", r.EnergyKWh, r.MeanPUE)
	fmt.Fprintf(&b, "SLA violation rate %.3f, thermal trips %d, power-tree violations %d, cap enforcements %d\n",
		r.SLAViolationRate, r.ThermalTrips, r.PowerViolations, r.CapEnforcements)
	fmt.Fprintf(&b, "mean active servers %.1f, telemetry keys collected %d\n", r.MeanActive, r.TelemetryKeys)
	return b.String()
}

// scaledZone is a DefaultZone whose airflow carries `scale` times the
// servers: the facility multiplier grows racks and the air moving
// through them together, so zone temperature dynamics stay
// representative at any scale (and identical at scale 1).
func scaledZone(name string, scale int) cooling.ZoneConfig {
	z := cooling.DefaultZone(name)
	z.Airflow *= float64(scale)
	return z
}

// RunFig4 assembles the facility and the coordinated manager together.
// Env.Scale multiplies servers per rack (and the matching power/cooling
// ratings), turning the paper-scale 40-server facility into a scale
// benchmark with identical control structure.
func RunFig4(env *Env) (Result, error) {
	seed := env.Seed
	scale := env.FleetScale()
	e := env.NewEngine(seed)
	srvCfg := server.DefaultConfig()
	room := cooling.RoomConfig{
		Zones: []cooling.ZoneConfig{
			scaledZone("z0", scale), scaledZone("z1", scale),
			scaledZone("z2", scale), scaledZone("z3", scale),
		},
		CRACs:       []cooling.CRACConfig{cooling.DefaultCRAC("c0"), cooling.DefaultCRAC("c1")},
		Sensitivity: [][]float64{{0.6, 0.3}, {0.5, 0.4}, {0.4, 0.5}, {0.3, 0.6}},
		PhysicsTick: cooling.DefaultPhysicsTick,
	}
	plant := cooling.DefaultPlantConfig()
	plant.FanRatedW = 2_000 * float64(scale)
	dcCfg := core.DataCenterConfig{
		Name:           "dc-fig4",
		ServerConfig:   srvCfg,
		ServersPerRack: 10 * scale,
		Topology: power.TopologyConfig{
			UPSCount: 1, PDUsPerUPS: 2, RacksPerPDU: 2,
			RackRatedW: 4_000 * float64(scale), Oversubscription: 1,
		},
		Room:        room,
		ZoneOfRack:  []int{0, 1, 2, 3},
		Plant:       plant,
		SampleEvery: 15 * time.Second,
		Pool:        env.Pool(),
	}
	dc, err := core.NewDataCenter(e, dcCfg)
	if err != nil {
		return nil, err
	}
	if _, err := dc.Attach(); err != nil {
		return nil, err
	}
	// Cooling-aware activation: servers in well-regulated zones come up
	// first and shed last (§5.1).
	if err := dc.PreferCoolingSensitiveZones(); err != nil {
		return nil, err
	}
	// Power caps on every rack at ~93 % of worst case, with the §3.1
	// enforcement loop as the safety valve.
	rackServers := make([][]*server.Server, len(dc.Topology().Racks))
	for i, s := range dc.Fleet().Servers() {
		rackServers[dc.RackOfServer(i)] = append(rackServers[dc.RackOfServer(i)], s)
	}
	for _, rack := range dc.Topology().Racks {
		rack.SetCap(float64(dcCfg.ServersPerRack) * srvCfg.PeakPower * 0.93)
	}
	enforcer, err := core.NewCapEnforcer(dc.Topology().Racks, rackServers)
	if err != nil {
		return nil, err
	}
	e.Every(time.Minute, func(eng *sim.Engine) { enforcer.Enforce(eng.Now()) })
	demand := func(now time.Duration) float64 {
		h := now.Hours() - 24*float64(int(now.Hours()/24))
		// Diurnal between 20 % and 75 % of fleet capacity.
		frac := 0.2 + 0.55*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * float64(dc.Fleet().Size()) * srvCfg.Capacity
	}
	mgrCfg := core.ManagerConfig{
		ServerConfig:   srvCfg,
		FleetSize:      dc.Fleet().Size(),
		Queue:          workload.DefaultQueueModel(),
		SLA:            100 * time.Millisecond,
		DecisionPeriod: time.Minute,
		Mode:           core.ModeCoordinated,
		InitialOn:      dc.Fleet().Size() / 2,
		// Steps scale with the facility so the controller's relative
		// adjustment rate is the same at every -scale.
		Trigger: onoff.DelayTrigger{High: 60 * time.Millisecond, Low: 25 * time.Millisecond, StepUp: scale, StepDown: scale, Min: 1, Max: dc.Fleet().Size()},
	}
	mgr, err := core.NewManagerForFleet(e, mgrCfg, dc.Fleet(), demand)
	if err != nil {
		return nil, err
	}
	mgr.Start()

	var pueSum float64
	var pueN, powerViol int
	e.Every(15*time.Minute, func(eng *sim.Engine) {
		pue, _, err := dc.PUEAt(18, 0.5)
		if err == nil {
			pueSum += pue
			pueN++
		}
		powerViol += len(dc.Flow().Violations())
	})
	const horizon = 48 * time.Hour
	if err := e.Run(horizon); err != nil {
		return nil, err
	}
	mres := mgr.Result(horizon)
	res := Fig4Result{
		EnergyKWh:        mres.EnergyKWh,
		SLAViolationRate: mres.SLAViolationRate,
		ThermalTrips:     dc.Trips(),
		PowerViolations:  powerViol,
		CapEnforcements:  enforcer.ThrottleEvents(),
		MeanActive:       mres.MeanActive,
		TelemetryKeys:    len(dc.Store().Keys()),
	}
	if pueN > 0 {
		res.MeanPUE = pueSum / float64(pueN)
	}
	return res, nil
}
