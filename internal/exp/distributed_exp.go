package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// distributed — hierarchical MRM sub-layers (§3.2)
// ---------------------------------------------------------------------------

// DistributedRow is one organization's outcome.
type DistributedRow struct {
	Organization string
	Clusters     int
	EnergyKWh    float64
	ViolRate     float64
	Messages     int64
}

// DistributedResult compares a centralized manager against 2- and 4-way
// distributed sub-layers on the same workload — the paper's "how to
// organize this layer to perform desired coordination with efficient
// communication among submodules".
type DistributedResult struct {
	Rows []DistributedRow
}

// ID implements Result.
func (DistributedResult) ID() string { return "distributed" }

// Report implements Result.
func (r DistributedResult) Report() string {
	var b strings.Builder
	b.WriteString(header("distributed", "hierarchical macro-resource management (§3.2)"))
	b.WriteString("organization  clusters  energy_kWh  sla_viol  messages\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s  %8d  %10.2f  %8.3f  %8d\n",
			row.Organization, row.Clusters, row.EnergyKWh, row.ViolRate, row.Messages)
	}
	b.WriteString("sub-layers with one share message per cluster per minute match centralized energy\n")
	return b.String()
}

// RunDistributed runs centralized and distributed organizations over two
// diurnal days.
func RunDistributed(env *Env) (Result, error) {
	seed := env.Seed
	const fleet = 40
	srv := server.DefaultConfig()
	demand := func(now time.Duration) float64 {
		h := math.Mod(now.Hours(), 24)
		frac := 0.15 + 0.35*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * fleet * srv.Capacity
	}
	base := core.ManagerConfig{
		ServerConfig:   srv,
		FleetSize:      fleet,
		Queue:          workload.DefaultQueueModel(),
		SLA:            100 * time.Millisecond,
		DecisionPeriod: time.Minute,
		Mode:           core.ModeCoordinated,
		InitialOn:      fleet / 4,
	}
	const horizon = 2 * 24 * time.Hour

	var res DistributedResult

	// Centralized.
	e := env.NewEngine(seed)
	central, err := core.NewManager(e, base, demand)
	if err != nil {
		return nil, err
	}
	central.Start()
	if err := e.Run(horizon); err != nil {
		return nil, err
	}
	cres := central.Result(horizon)
	res.Rows = append(res.Rows, DistributedRow{
		Organization: "centralized", Clusters: 1,
		EnergyKWh: cres.EnergyKWh, ViolRate: cres.SLAViolationRate,
	})

	for _, split := range [][]int{{20, 20}, {10, 10, 10, 10}} {
		e := env.NewEngine(seed)
		dist, err := core.NewDistributed(e, base, split, demand)
		if err != nil {
			return nil, err
		}
		dist.Start()
		if err := e.Run(horizon); err != nil {
			return nil, err
		}
		dres := dist.Result(horizon)
		res.Rows = append(res.Rows, DistributedRow{
			Organization: fmt.Sprintf("%d-way", len(split)),
			Clusters:     len(split),
			EnergyKWh:    dres.EnergyKWh,
			ViolRate:     dres.SLAViolationRate,
			Messages:     dist.Messages(),
		})
	}
	return res, nil
}
