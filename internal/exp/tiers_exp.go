package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// tiers — per-tier elastic scaling of a multi-tier service (§3.2)
// ---------------------------------------------------------------------------

// TierScaleRow summarizes one tier's week.
type TierScaleRow struct {
	Name       string
	MinServers int
	MaxServers int
	MeanFleet  float64
}

// TiersResult answers the paper's §3.2 question — "How do different
// tiers scale when user demands increase or decrease?" — on a three-tier
// service under a diurnal demand, and compares elastic against static
// energy.
type TiersResult struct {
	Rows         []TierScaleRow
	StaticKWh    float64
	ElasticKWh   float64
	Saving       float64
	SLAViolFrac  float64
	WorstRespond time.Duration
}

// ID implements Result.
func (TiersResult) ID() string { return "tiers" }

// Report implements Result.
func (r TiersResult) Report() string {
	var b strings.Builder
	b.WriteString(header("tiers", "per-tier elastic scaling of a multi-tier service (§3.2)"))
	b.WriteString("tier      min  max  mean_servers\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s  %3d  %3d  %12.1f\n", row.Name, row.MinServers, row.MaxServers, row.MeanFleet)
	}
	fmt.Fprintf(&b, "week energy: static %.0f kWh, per-tier elastic %.0f kWh (%.0f%% saved)\n",
		r.StaticKWh, r.ElasticKWh, r.Saving*100)
	fmt.Fprintf(&b, "SLA violations: %.2f%% of periods (worst %v)\n",
		r.SLAViolFrac*100, r.WorstRespond.Round(time.Millisecond))
	return b.String()
}

// RunTiers scales each tier of a web/app/storage stack independently over
// a diurnal week; the storage tier's 20× fanout makes it dominate the
// fleet — the compounding the paper warns about ("a user request can hit
// hundreds or even thousands of machines").
func RunTiers(env *Env) (Result, error) {
	seed := env.Seed
	cfg := service.DefaultThreeTier("shop")
	srv := server.DefaultConfig()
	dem := trace.DefaultDiurnalConfig()
	dem.Duration = 7 * 24 * time.Hour
	dem.Step = 5 * time.Minute
	dem.Mean = 900 // user requests/s
	dem.Swing = 0.7
	dem.NoiseSD = 0.04
	demand, err := trace.GenerateDiurnal(dem, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}

	// Static sizing: worst case with 20 % headroom at 60 % utilization.
	staticCounts, err := service.ServersFor(cfg, demand.Max()*1.2, 0.6)
	if err != nil {
		return nil, err
	}

	idleW := srv.PeakPower * srv.IdleFraction
	dynW := srv.PeakPower - idleW
	tierEnergy := func(counts []int, rep service.Report) float64 {
		var w float64
		for i, n := range counts {
			w += float64(n)*idleW + float64(n)*dynW*rep.Tiers[i].MeanUtilization
		}
		return w
	}
	capsFor := func(counts []int) [][]float64 {
		out := make([][]float64, len(cfg.Tiers))
		for i, tier := range cfg.Tiers {
			row := make([]float64, counts[i])
			for j := range row {
				row[j] = tier.OpCapacityPerServer
			}
			out[i] = row
		}
		return out
	}

	mins := make([]int, len(cfg.Tiers))
	maxs := make([]int, len(cfg.Tiers))
	sums := make([]float64, len(cfg.Tiers))
	var staticJ, elasticJ float64
	var viol, steps int
	var worst time.Duration
	for i := 0; i < demand.Len(); i++ {
		t := time.Duration(i) * dem.Step
		rps := demand.At(t)

		// Elastic: size every tier for the current demand.
		counts, err := service.ServersFor(cfg, rps, 0.6)
		if err != nil {
			return nil, err
		}
		rep, err := service.Evaluate(cfg, rps, capsFor(counts), service.PolicySpread)
		if err != nil {
			return nil, err
		}
		if rep.SLAViolated {
			viol++
		}
		if rep.Response > worst {
			worst = rep.Response
		}
		elasticJ += tierEnergy(counts, rep) * dem.Step.Seconds()
		for ti, n := range counts {
			if i == 0 || n < mins[ti] {
				mins[ti] = n
			}
			if n > maxs[ti] {
				maxs[ti] = n
			}
			sums[ti] += float64(n)
		}

		// Static: every tier at worst-case size.
		srep, err := service.Evaluate(cfg, rps, capsFor(staticCounts), service.PolicySpread)
		if err != nil {
			return nil, err
		}
		staticJ += tierEnergy(staticCounts, srep) * dem.Step.Seconds()
		steps++
	}

	res := TiersResult{
		StaticKWh:    staticJ / 3.6e6,
		ElasticKWh:   elasticJ / 3.6e6,
		SLAViolFrac:  float64(viol) / float64(steps),
		WorstRespond: worst,
	}
	if staticJ > 0 {
		res.Saving = 1 - elasticJ/staticJ
	}
	for ti, tier := range cfg.Tiers {
		res.Rows = append(res.Rows, TierScaleRow{
			Name:       tier.Name,
			MinServers: mins[ti],
			MaxServers: maxs[ti],
			MeanFleet:  sums[ti] / float64(steps),
		})
	}
	return res, nil
}
