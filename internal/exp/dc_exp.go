package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/server"
)

// ---------------------------------------------------------------------------
// ablate-dc — 400 V DC distribution vs AC double conversion (§2.1,
// after Pratt et al. [11])
// ---------------------------------------------------------------------------

// Loss models for a 400 V DC plant: one rectifier stage replaces the
// double-conversion UPS, and the PDU transformer disappears in favour of
// a lightly-resistive DC bus. Pratt et al. [11] report ~7 % facility
// savings over 208 V AC; these coefficients land in that band.
var (
	dcRectifierLoss = power.LossModel{Fixed: 0.010, Prop: 0.015, Sq: 0.010}
	dcBusLoss       = power.LossModel{Fixed: 0.001, Prop: 0.003, Sq: 0.004}
)

// AblateDCRow is one utilization point of the sweep.
type AblateDCRow struct {
	Utilization float64
	ACInKW      float64
	DCInKW      float64
	Saving      float64
}

// AblateDCResult compares facility input power for the same IT load under
// AC double-conversion and 400 V DC distribution.
type AblateDCResult struct {
	Rows []AblateDCRow
}

// ID implements Result.
func (AblateDCResult) ID() string { return "ablate-dc" }

// Report implements Result.
func (r AblateDCResult) Report() string {
	var b strings.Builder
	b.WriteString(header("ablate-dc", "400V DC distribution vs AC double conversion (§2.1, after [11])"))
	b.WriteString("util%   ac_kW   dc_kW  saving%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5.0f  %6.1f  %6.1f  %7.2f\n",
			row.Utilization*100, row.ACInKW, row.DCInKW, row.Saving*100)
	}
	b.WriteString("[11] evaluates 400V DC 'to improve energy efficiency'; expect mid-single-digit savings\n")
	return b.String()
}

// RunAblateDC sweeps fleet utilization through both plants.
func RunAblateDC(env *Env) (Result, error) {
	seed := env.Seed
	e := env.NewEngine(seed)
	cfg := server.DefaultConfig()
	const perRack = 30
	const racks = 8

	// AC: the canonical feed→UPS→PDU→rack chain.
	ac, err := power.NewTopology(power.TopologyConfig{
		UPSCount: 2, PDUsPerUPS: 2, RacksPerPDU: 2,
		RackRatedW: float64(perRack) * cfg.PeakPower * 1.2, Oversubscription: 1,
	})
	if err != nil {
		return nil, err
	}

	// DC: feed → rectifier (one conversion) → DC bus → racks.
	rackRated := float64(perRack) * cfg.PeakPower * 1.2
	dcFeed, err := power.NewNode("feed", power.KindFeed, rackRated*float64(racks)*1.2, power.DefaultFeedLoss)
	if err != nil {
		return nil, err
	}
	var dcRacks []*power.Node
	for u := 0; u < 2; u++ {
		rect, err := power.NewNode(fmt.Sprintf("rectifier-%d", u), power.KindUPS,
			rackRated*float64(racks)/2, dcRectifierLoss)
		if err != nil {
			return nil, err
		}
		dcFeed.AddChild(rect)
		for rk := 0; rk < racks/2; rk++ {
			rack, err := power.NewNode(fmt.Sprintf("dcbus-%d-%d", u, rk), power.KindRack,
				rackRated, dcBusLoss)
			if err != nil {
				return nil, err
			}
			rect.AddChild(rack)
			dcRacks = append(dcRacks, rack)
		}
	}

	fleet, err := core.NewFleet(e, cfg, perRack*racks)
	if err != nil {
		return nil, err
	}
	for i, s := range fleet.Servers() {
		s := s
		load := func() float64 { return s.Power() }
		ac.Racks[i/perRack].AddLoad(load)
		dcRacks[i/perRack].AddLoad(load)
	}
	fleet.SetTarget(fleet.Size())
	if err := e.Run(cfg.BootDelay + time.Second); err != nil {
		return nil, err
	}

	var res AblateDCResult
	for _, u := range []float64{0.25, 0.5, 0.75, 1.0} {
		fleet.Dispatch(e.Now(), u*float64(fleet.Size())*cfg.Capacity)
		acIn := ac.Feed.Evaluate().InW
		dcIn := dcFeed.Evaluate().InW
		res.Rows = append(res.Rows, AblateDCRow{
			Utilization: u,
			ACInKW:      acIn / 1e3,
			DCInKW:      dcIn / 1e3,
			Saving:      1 - dcIn/acIn,
		})
	}
	return res, nil
}
