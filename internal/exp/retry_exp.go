package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The metastability family closes the loop the request-level experiments
// leave open: turned-away users come back. A brief capacity dip seeds
// retries, retries inflate offered load, rejections burn capacity on
// error handling, and the overload outlives its trigger — the paper's
// flash-crowd pathologies (§3) with the client population in the loop.

// retryExpAdmission is the admission controller the metastability
// experiments share: interactive-only traffic, so the fair-share floor
// sits high (degraded service is barely acceptable) and rejection —
// the storm's fuel — starts near nominal capacity instead of at 2x.
func retryExpAdmission() (*workload.Admission, error) {
	cfg := workload.DefaultAdmissionConfig()
	cfg.Qmin = 0.9
	return workload.NewAdmission(cfg)
}

// retryExpConfig is the shared client population: up to 4 attempts, a
// 30 s base backoff matching the tick, and 30 % of a service time burned
// per pool rejection. SLO-retry churn is off so the ledger isolates the
// rejection feedback.
func retryExpConfig(policy workload.RetryPolicy) workload.RetryConfig {
	cfg := workload.DefaultRetryConfig(policy)
	cfg.SLORetryFrac = 0
	cfg.RejectCostFrac = 0.3
	return cfg
}

// RetryScenario is one client policy's outcome through a storm trigger.
type RetryScenario struct {
	Policy         string
	BreakerOn      bool
	GoodputFrac    float64 // completed / fresh
	AbandonedFrac  float64 // gave up / fresh
	Amplification  float64 // attempts per fresh user
	PeakOfferedErl float64
	PeakInRetry    float64
	FinalInRetry   float64
	BreakerTrips   int64
	// OverloadMinutes counts ticks (from the trigger on) where the
	// retry-inflated offered load exceeded nominal capacity.
	OverloadMinutes float64
	// RecoveryMinutes is how long past the trigger's end the system
	// kept turning users away (pool rejections or breaker fast-fails).
	RecoveryMinutes float64
}

// retryScenarioTrace drives one RetryLoop through a capacity trace and
// summarizes it. capAt returns nominal capacity at a tick; dipStart /
// dipEnd bracket the trigger in ticks.
func retryScenarioTrace(rl *workload.RetryLoop, dt time.Duration, steps int,
	freshErl float64, capAt func(i int) float64, dipStart, dipEnd int) (RetryScenario, error) {
	var s RetryScenario
	s.Policy = rl.Config().Policy.String()
	s.BreakerOn = rl.Config().Breaker.Enabled
	st := workload.DefaultRequestClasses()[workload.ClassInteractive].ServiceTime
	nominal := capAt(-1)
	overloadTicks := 0
	lastDirty := -1
	for i := 0; i < steps; i++ {
		var fresh [workload.NumClasses]float64
		fresh[workload.ClassInteractive] = workload.UsersPerTick(freshErl/st.Seconds(), dt)
		out := rl.Tick(dt, &fresh, capAt(i))
		if err := rl.CheckInvariants(time.Duration(i) * dt); err != nil {
			return s, fmt.Errorf("tick %d: %w", i, err)
		}
		if i >= dipStart && out.OfferedErl > nominal*(1+1e-9) {
			overloadTicks++
		}
		var away float64
		for c := 0; c < workload.NumClasses; c++ {
			away += out.Pool.Rejected[c] + out.FastFailed[c]
		}
		if away > 1e-6 {
			lastDirty = i
		}
		if out.OfferedErl > s.PeakOfferedErl {
			s.PeakOfferedErl = out.OfferedErl
		}
		if q := rl.InRetryTotal(); q > s.PeakInRetry {
			s.PeakInRetry = q
		}
	}
	fresh := rl.FreshUsers()
	if fresh > 0 {
		s.GoodputFrac = rl.GoodputUsers() / fresh
		s.AbandonedFrac = rl.AbandonedUsers() / fresh
	}
	s.Amplification = rl.RetryAmplification()
	s.FinalInRetry = rl.InRetryTotal()
	s.BreakerTrips = rl.Trips()
	s.OverloadMinutes = float64(overloadTicks) * dt.Minutes()
	if lastDirty >= dipEnd {
		s.RecoveryMinutes = float64(lastDirty-dipEnd+1) * dt.Minutes()
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// retry-storm — a 5-minute dip, a 10-hour outage (§3 flash-crowd feedback)
// ---------------------------------------------------------------------------

// RetryStormResult contrasts four client populations through the same
// capacity dip: naive immediate retries, a retry budget, naive clients
// behind a circuit breaker, and the budget-plus-breaker stack.
type RetryStormResult struct {
	FreshErl       float64
	CapacityErl    float64
	DipErl         float64
	TriggerMinutes float64
	Naive          RetryScenario
	Budget         RetryScenario
	Breaker        RetryScenario
	Stack          RetryScenario
}

// ID implements Result.
func (RetryStormResult) ID() string { return "retry-storm" }

// Report implements Result.
func (r RetryStormResult) Report() string {
	var b strings.Builder
	b.WriteString(header("retry-storm", "metastable retry storm: a 5-minute dip against three client populations (§3)"))
	fmt.Fprintf(&b, "fresh %.0f erl against %.0f erl; trigger: %.0f min at %.0f erl\n",
		r.FreshErl, r.CapacityErl, r.TriggerMinutes, r.DipErl)
	b.WriteString("scenario        goodput  abandoned  amplif  peak_offered  overload_min  recovery_min  trips\n")
	row := func(name string, s RetryScenario) {
		fmt.Fprintf(&b, "%-14s  %7.3f  %9.3f  %6.2f  %12.0f  %12.1f  %12.1f  %5d\n",
			name, s.GoodputFrac, s.AbandonedFrac, s.Amplification,
			s.PeakOfferedErl, s.OverloadMinutes, s.RecoveryMinutes, s.BreakerTrips)
	}
	row("naive", r.Naive)
	row("retry-budget", r.Budget)
	row("naive+breaker", r.Breaker)
	row("budget+breaker", r.Stack)
	b.WriteString("shape check: the naive storm outlives its trigger by >=10x; the budget breaks the feedback;\n")
	b.WriteString("a breaker alone caps the waste but naive clients re-trip it every close (availability duty-cycles)\n")
	return b.String()
}

// RunRetryStorm dips capacity from 100 to 30 erlangs for five minutes
// under 90 erlangs of steady interactive demand, with clients closed
// into the loop. Naive retries push rejected-work waste past the 10-erl
// headroom (the divergence threshold is headroom/RejectCostFrac ~ 33
// rejected erlangs, far exceeded during the dip), so the overload
// sustains itself for the rest of the horizon. The retry budget caps
// retry flow below the threshold and recovers within a tick. A breaker
// over naive clients converts pool rejections into cheap fast-fails —
// roughly doubling goodput — but cannot fix the clients: every time its
// probes pass and it closes, the queued naive cohorts arrive all at
// once and re-trip it, so availability duty-cycles at the breaker
// period for the rest of the run. Only the full stack (budget clients
// behind a breaker) both survives the dip and returns to clean service.
// The loop is analytic (no engine); the closed-loop conservation
// invariant is asserted every tick.
func RunRetryStorm(env *Env) (Result, error) {
	const (
		dt          = 30 * time.Second
		horizon     = 12 * time.Hour
		freshErl    = 90.0
		capacityErl = 100.0
		dipErl      = 30.0
		dipStart    = 240 // 2 h
		dipEnd      = 250 // +5 min
	)
	steps := int(horizon / dt)
	capAt := func(i int) float64 {
		if i >= dipStart && i < dipEnd {
			return dipErl
		}
		return capacityErl
	}
	res := RetryStormResult{
		FreshErl:       freshErl,
		CapacityErl:    capacityErl,
		DipErl:         dipErl,
		TriggerMinutes: float64(dipEnd-dipStart) * dt.Minutes(),
	}
	for _, sc := range []struct {
		out     *RetryScenario
		policy  workload.RetryPolicy
		breaker bool
	}{
		{&res.Naive, workload.RetryNaive, false},
		{&res.Budget, workload.RetryBudget, false},
		{&res.Breaker, workload.RetryNaive, true},
		{&res.Stack, workload.RetryBudget, true},
	} {
		adm, err := retryExpAdmission()
		if err != nil {
			return nil, err
		}
		cfg := retryExpConfig(sc.policy)
		if sc.breaker {
			cfg.Breaker = workload.DefaultBreakerConfig()
		}
		rng := sim.NewRNG(env.Seed).Fork("retry-storm/" + sc.policy.String())
		rl, err := workload.NewRetryLoop(cfg, adm, rng)
		if err != nil {
			return nil, err
		}
		s, err := retryScenarioTrace(rl, dt, steps, freshErl, capAt, dipStart, dipEnd)
		if err != nil {
			return nil, fmt.Errorf("retry-storm %s: %w", sc.policy, err)
		}
		*sc.out = s
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// retry-budget — client policy sweep through a demand spike
// ---------------------------------------------------------------------------

// RetryBudgetResult sweeps the client retry policy (no breaker) through
// one demand spike: does the client's own behaviour break the feedback?
type RetryBudgetResult struct {
	BaseErl      float64
	SpikeErl     float64
	CapacityErl  float64
	SpikeMinutes float64
	Naive        RetryScenario
	Backoff      RetryScenario
	Budget       RetryScenario
}

// ID implements Result.
func (RetryBudgetResult) ID() string { return "retry-budget" }

// Report implements Result.
func (r RetryBudgetResult) Report() string {
	var b strings.Builder
	b.WriteString(header("retry-budget", "client retry policies through a demand spike: backoff delays, budgets cap (§3)"))
	fmt.Fprintf(&b, "baseline %.0f erl, %.0f-min spike to %.0f erl, capacity %.0f erl\n",
		r.BaseErl, r.SpikeMinutes, r.SpikeErl, r.CapacityErl)
	b.WriteString("policy    goodput  abandoned  amplif  peak_in_retry  overload_min  recovery_min\n")
	row := func(name string, s RetryScenario) {
		fmt.Fprintf(&b, "%-8s  %7.3f  %9.3f  %6.2f  %13.0f  %12.1f  %12.1f\n",
			name, s.GoodputFrac, s.AbandonedFrac, s.Amplification,
			s.PeakInRetry, s.OverloadMinutes, s.RecoveryMinutes)
	}
	row("naive", r.Naive)
	row("backoff", r.Backoff)
	row("budget", r.Budget)
	b.WriteString("shape check: the budget dominates naive goodput; backoff spreads the storm without capping it\n")
	return b.String()
}

// RunRetryBudget holds interactive demand at 80 erlangs against 100 and
// spikes it to 150 for five minutes, once per client policy with the
// breaker off. The spike itself is identical; everything that differs
// afterwards is the client population's own dynamics.
func RunRetryBudget(env *Env) (Result, error) {
	const (
		dt          = 30 * time.Second
		horizon     = 6 * time.Hour
		baseErl     = 80.0
		spikeErl    = 150.0
		capacityErl = 100.0
		spikeStart  = 120 // 1 h
		spikeEnd    = 130 // +5 min
	)
	steps := int(horizon / dt)
	res := RetryBudgetResult{
		BaseErl:      baseErl,
		SpikeErl:     spikeErl,
		CapacityErl:  capacityErl,
		SpikeMinutes: float64(spikeEnd-spikeStart) * dt.Minutes(),
	}
	for _, sc := range []struct {
		out    *RetryScenario
		policy workload.RetryPolicy
	}{
		{&res.Naive, workload.RetryNaive},
		{&res.Backoff, workload.RetryBackoff},
		{&res.Budget, workload.RetryBudget},
	} {
		adm, err := retryExpAdmission()
		if err != nil {
			return nil, err
		}
		rng := sim.NewRNG(env.Seed).Fork("retry-budget/" + sc.policy.String())
		rl, err := workload.NewRetryLoop(retryExpConfig(sc.policy), adm, rng)
		if err != nil {
			return nil, err
		}
		st := workload.DefaultRequestClasses()[workload.ClassInteractive].ServiceTime
		overloadTicks := 0
		lastDirty := -1
		var peakOff, peakQ float64
		for i := 0; i < steps; i++ {
			erl := baseErl
			if i >= spikeStart && i < spikeEnd {
				erl = spikeErl
			}
			var fresh [workload.NumClasses]float64
			fresh[workload.ClassInteractive] = workload.UsersPerTick(erl/st.Seconds(), dt)
			out := rl.Tick(dt, &fresh, capacityErl)
			if err := rl.CheckInvariants(time.Duration(i) * dt); err != nil {
				return nil, fmt.Errorf("retry-budget %s: tick %d: %w", sc.policy, i, err)
			}
			if i >= spikeStart && out.OfferedErl > capacityErl*(1+1e-9) {
				overloadTicks++
			}
			var away float64
			for c := 0; c < workload.NumClasses; c++ {
				away += out.Pool.Rejected[c] + out.FastFailed[c]
			}
			if away > 1e-6 {
				lastDirty = i
			}
			if out.OfferedErl > peakOff {
				peakOff = out.OfferedErl
			}
			if q := rl.InRetryTotal(); q > peakQ {
				peakQ = q
			}
		}
		s := RetryScenario{
			Policy:          sc.policy.String(),
			Amplification:   rl.RetryAmplification(),
			PeakOfferedErl:  peakOff,
			PeakInRetry:     peakQ,
			FinalInRetry:    rl.InRetryTotal(),
			OverloadMinutes: float64(overloadTicks) * dt.Minutes(),
		}
		if fresh := rl.FreshUsers(); fresh > 0 {
			s.GoodputFrac = rl.GoodputUsers() / fresh
			s.AbandonedFrac = rl.AbandonedUsers() / fresh
		}
		if lastDirty >= spikeEnd {
			s.RecoveryMinutes = float64(lastDirty-spikeEnd+1) * dt.Minutes()
		}
		*sc.out = s
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// fault-rack — correlated rack loss vs the same downtime dispersed (§2.1)
// ---------------------------------------------------------------------------

// RackScenario is one fault pattern's user-visible outcome.
type RackScenario struct {
	Injections    int
	MinActive     int
	FinalActive   int
	GoodputFrac   float64
	AbandonedFrac float64
	Amplification float64
	RejectedUsers float64
	FastFailed    float64
	BreakerTrips  int64
	ShedTicks     int
}

// FaultRackResult compares one whole-rack failure against the identical
// server-downtime budget dispersed as independent crashes, both driven
// through the closed retry loop with the degrader's proactive breaker
// trip wired to the fault bus.
type FaultRackResult struct {
	Servers       int
	DemandErl     float64
	DownServerMin float64
	Correlated    RackScenario
	Dispersed     RackScenario
}

// ID implements Result.
func (FaultRackResult) ID() string { return "fault-rack" }

// Report implements Result.
func (r FaultRackResult) Report() string {
	var b strings.Builder
	b.WriteString(header("fault-rack", "correlated rack loss vs the same downtime dispersed (§2.1 failure domains)"))
	fmt.Fprintf(&b, "%d servers, %.1f erl demand; both patterns spend %.0f server-minutes of downtime\n",
		r.Servers, r.DemandErl, r.DownServerMin)
	b.WriteString("pattern     faults  min_on  goodput  abandoned  amplif  rejected_u  fastfail_u  trips  shed_ticks\n")
	row := func(name string, s RackScenario) {
		fmt.Fprintf(&b, "%-10s  %6d  %6d  %7.3f  %9.4f  %6.3f  %10.0f  %10.0f  %5d  %10d\n",
			name, s.Injections, s.MinActive, s.GoodputFrac, s.AbandonedFrac,
			s.Amplification, s.RejectedUsers, s.FastFailed, s.BreakerTrips, s.ShedTicks)
	}
	row("correlated", r.Correlated)
	row("dispersed", r.Dispersed)
	b.WriteString("shape check: the same downtime hurts users only when it lands in one failure domain\n")
	return b.String()
}

// RunFaultRack spends an identical server-downtime budget two ways
// against the 32-server outage facility: one RackFailure takes a whole
// 8-server rack (25 % of capacity) down for 30 minutes with a shared
// repair, versus eight independent 30-minute ServerCrash events spaced
// 45 minutes apart (never more than one down at a time). The closed
// retry loop fronts the fleet; the degrader subscribes to the fault bus,
// so the correlated loss trips the breaker proactively and holds the
// shed ladder until the breaker closes. The dispersed pattern never
// drops capacity below demand and shows how failure-domain concentration
// — not downtime itself — is what users see.
func RunFaultRack(env *Env) (Result, error) {
	const dt = 30 * time.Second
	srvCfg := server.DefaultConfig()
	scale := env.FleetScale()
	runScenario := func(correlated bool) (RackScenario, int, float64, error) {
		var s RackScenario
		e := env.NewEngine(env.Seed)
		dc, err := outageFacility(e, scale, env.Pool())
		if err != nil {
			return s, 0, 0, err
		}
		fleet := dc.Fleet()
		n := fleet.Size()
		perRack := n / 4
		demandErl := 0.85 * float64(n)
		fleet.SetTarget(n)
		if err := e.Run(srvCfg.BootDelay + time.Second); err != nil {
			return s, 0, 0, err
		}
		fleet.Dispatch(e.Now(), 0.85*float64(n)*srvCfg.Capacity)

		adm, err := retryExpAdmission()
		if err != nil {
			return s, 0, 0, err
		}
		rcfg := retryExpConfig(workload.RetryBudget)
		rcfg.Breaker = workload.DefaultBreakerConfig()
		rl, err := workload.NewRetryLoop(rcfg, adm, e.RNG().Fork("retry"))
		if err != nil {
			return s, 0, 0, err
		}
		deg, err := core.NewDegrader(e, dc, core.DegraderConfig{})
		if err != nil {
			return s, 0, 0, err
		}
		deg.SetRetry(rl)
		deg.Start()

		in := fault.NewInjector(e)
		in.WireServers(fleet.Servers())
		domains := make([][]int, 4)
		for r := range domains {
			for i := 0; i < perRack; i++ {
				domains[r] = append(domains[r], r*perRack+i)
			}
		}
		if err := in.WireDomains(domains); err != nil {
			return s, 0, 0, err
		}
		in.Subscribe(deg.OnNotice)

		var events []fault.Event
		if correlated {
			events = []fault.Event{{Kind: fault.RackFailure, At: time.Hour, Duration: 30 * time.Minute, Index: 0}}
		} else {
			// Same perRack x 30 min of downtime, one server at a time,
			// striped across racks (stride 4 visits every rack in turn).
			for i := 0; i < perRack; i++ {
				events = append(events, fault.Event{
					Kind: fault.ServerCrash, At: time.Hour + time.Duration(i)*45*time.Minute,
					Duration: 30 * time.Minute, Index: (i * 4) % n,
				})
			}
		}
		if err := in.Arm(events); err != nil {
			return s, 0, 0, err
		}

		s.MinActive = n
		st := workload.DefaultRequestClasses()[workload.ClassInteractive].ServiceTime
		var tickErr error
		e.Every(dt, func(eng *sim.Engine) {
			if tickErr != nil {
				return
			}
			active := fleet.ActiveCount()
			if active < s.MinActive {
				s.MinActive = active
			}
			var fresh [workload.NumClasses]float64
			fresh[workload.ClassInteractive] = workload.UsersPerTick(demandErl/st.Seconds(), dt)
			out := rl.Tick(dt, &fresh, float64(active))
			if err := rl.CheckInvariants(eng.Now()); err != nil {
				tickErr = err
				return
			}
			for c := 0; c < workload.NumClasses; c++ {
				s.RejectedUsers += out.Pool.Rejected[c]
				s.FastFailed += out.FastFailed[c]
			}
			if deg.AdmissionShedLevel() > 0 {
				s.ShedTicks++
			}
		})
		horizon := time.Hour + time.Duration(perRack)*45*time.Minute + time.Hour
		if err := e.Run(horizon); err != nil {
			return s, 0, 0, err
		}
		if tickErr != nil {
			return s, 0, 0, tickErr
		}
		s.Injections = in.Injected()
		s.FinalActive = fleet.ActiveCount()
		if fresh := rl.FreshUsers(); fresh > 0 {
			s.GoodputFrac = rl.GoodputUsers() / fresh
			s.AbandonedFrac = rl.AbandonedUsers() / fresh
		}
		s.Amplification = rl.RetryAmplification()
		s.BreakerTrips = rl.Trips()
		return s, n, demandErl, nil
	}
	correlated, n, demandErl, err := runScenario(true)
	if err != nil {
		return nil, err
	}
	dispersed, _, _, err := runScenario(false)
	if err != nil {
		return nil, err
	}
	return FaultRackResult{
		Servers:       n,
		DemandErl:     demandErl,
		DownServerMin: float64(n/4) * 30,
		Correlated:    correlated,
		Dispersed:     dispersed,
	}, nil
}
