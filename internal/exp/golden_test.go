package exp

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// update regenerates the golden fixtures instead of comparing against
// them: go test ./internal/exp -run Golden -update
var update = flag.Bool("update", false, "rewrite golden fixtures from current results")

// goldenRelTol is the per-metric relative tolerance. Runs are
// deterministic from the seed, so the tolerance only needs to absorb
// floating-point differences across toolchains and architectures; any
// intentional >1 % change to an experiment's output must be accompanied
// by a fixture regeneration.
const goldenRelTol = 1e-6

// goldenPath returns the fixture file for one experiment.
func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

// TestGolden pins the headline metrics of every experiment at seed 1
// against per-experiment JSON fixtures. It is the regression anchor for
// the curves in EXPERIMENTS.md: a refactor that bends any metric fails
// here even when behaviour stays "plausible".
func TestGolden(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if id == "telemetry" && testing.Short() {
				t.Skip("telemetry is a throughput measurement; skipped in -short")
			}
			t.Parallel()
			res, err := Run(id, 1)
			if err != nil {
				t.Fatalf("Run(%q, 1): %v", id, err)
			}
			got := Metrics(res)
			if len(got) == 0 {
				t.Fatalf("experiment %q produced no scalar metrics", id)
			}
			if *update {
				writeGolden(t, id, got)
				return
			}
			want := readGolden(t, id)
			compareGolden(t, id, got, want)
		})
	}
}

// writeGolden serializes metrics deterministically (json maps marshal in
// sorted key order) so -update twice in a row produces a zero diff.
func writeGolden(t *testing.T, id string, m map[string]float64) {
	t.Helper()
	for k, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("experiment %q metric %s is %v; refusing to pin a non-finite value", id, k, v)
		}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatalf("marshal %q fixture: %v", id, err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath(id)), 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := os.WriteFile(goldenPath(id), append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %q fixture: %v", id, err)
	}
}

func readGolden(t *testing.T, id string) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(goldenPath(id))
	if err != nil {
		t.Fatalf("missing golden fixture for %q (run: go test ./internal/exp -run Golden -update): %v", id, err)
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("corrupt golden fixture for %q: %v", id, err)
	}
	return m
}

func compareGolden(t *testing.T, id string, got, want map[string]float64) {
	t.Helper()
	var missing, extra, diffs []string
	for k := range want {
		if _, ok := got[k]; !ok {
			missing = append(missing, k)
		}
	}
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			extra = append(extra, k)
			continue
		}
		if !withinRelTol(g, w, goldenRelTol) {
			diffs = append(diffs, fmt.Sprintf("%s: got %v want %v (Δ %+.3g%%)", k, g, w, 100*(g-w)/nonZero(w)))
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	sort.Strings(diffs)
	for _, k := range missing {
		t.Errorf("%s: metric %s in fixture but not produced", id, k)
	}
	for _, k := range extra {
		t.Errorf("%s: metric %s produced but not in fixture (regenerate with -update)", id, k)
	}
	for _, d := range diffs {
		t.Errorf("%s: %s", id, d)
	}
}

// withinRelTol reports |a-b| <= tol * max(|a|,|b|), with an absolute
// floor near zero.
func withinRelTol(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale+1e-12
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// TestGoldenFixturesComplete fails when a fixture exists for an
// experiment that is no longer registered (the inverse direction —
// registered but no fixture — fails inside TestGolden).
func TestGoldenFixturesComplete(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden dir: %v", err)
	}
	known := make(map[string]bool)
	for _, id := range IDs() {
		known[id] = true
	}
	for _, e := range entries {
		id := e.Name()
		if filepath.Ext(id) != ".json" {
			continue
		}
		id = id[:len(id)-len(".json")]
		if !known[id] {
			t.Errorf("stale fixture %s for unregistered experiment", e.Name())
		}
	}
}

// TestMetricsExcludesVolatile guards the wall-clock exclusion list: the
// telemetry fixture must never pin machine-dependent throughput.
func TestMetricsExcludesVolatile(t *testing.T) {
	m := Metrics(TelemetryResult{PointsPerMinute: 123, QuerySpeedup: 9, TrendLen: 1})
	if _, ok := m["PointsPerMinute"]; ok {
		t.Error("PointsPerMinute should be excluded from metrics")
	}
	if _, ok := m["QuerySpeedup"]; ok {
		t.Error("QuerySpeedup should be excluded from metrics")
	}
	if got := m["TrendLen"]; got != 1 {
		t.Errorf("TrendLen = %v, want 1", got)
	}
}
