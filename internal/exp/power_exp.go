package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cooling"
	"repro/internal/oversub"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// idle60 — idle power fraction (§4.3, after Fan et al. [10])
// ---------------------------------------------------------------------------

// Idle60Result measures the idle-power claim and the energy cost of
// leaving idle servers on.
type Idle60Result struct {
	IdleW, PeakW float64
	IdleFraction float64
	// IdleDayKWh is the energy of one idle-but-on server-day; OffDayKWh
	// with a single boot cycle at the end.
	IdleDayKWh, OffDayKWh float64
}

// ID implements Result.
func (Idle60Result) ID() string { return "idle60" }

// Report implements Result.
func (r Idle60Result) Report() string {
	var b strings.Builder
	b.WriteString(header("idle60", "idle server draws ~60% of peak (§4.3)"))
	fmt.Fprintf(&b, "idle %.0f W / peak %.0f W = %.0f%% (paper: \"about 60%%\")\n",
		r.IdleW, r.PeakW, r.IdleFraction*100)
	fmt.Fprintf(&b, "24h idle-on: %.2f kWh; off with one boot cycle: %.3f kWh — \"turning these devices off is the only way to eliminate the idle power consumption\"\n",
		r.IdleDayKWh, r.OffDayKWh)
	return b.String()
}

// RunIdle60 measures the server power model directly.
func RunIdle60(env *Env) (Result, error) {
	seed := env.Seed
	e := env.NewEngine(seed)
	cfg := server.DefaultConfig()
	s, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	s.PowerOn(e)
	if err := e.Run(cfg.BootDelay); err != nil {
		return nil, err
	}
	s.Sync(e.Now())
	idle := s.Power()
	s.SetUtilization(e.Now(), 1)
	peak := s.Power()
	s.SetUtilization(e.Now(), 0)

	// One idle day.
	startJ := s.EnergyJ()
	if err := e.Run(e.Now() + 24*time.Hour); err != nil {
		return nil, err
	}
	s.Sync(e.Now())
	idleDay := (s.EnergyJ() - startJ) / 3.6e6

	// One off day with a single boot cycle (boot energy + boot-time idle).
	e2 := env.NewEngine(seed)
	s2, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	s2.PowerOn(e2)
	if err := e2.Run(cfg.BootDelay); err != nil {
		return nil, err
	}
	s2.Sync(e2.Now())
	s2.PowerOff(e2)
	if err := e2.Run(24 * time.Hour); err != nil {
		return nil, err
	}
	s2.Sync(e2.Now())

	return Idle60Result{
		IdleW:        idle,
		PeakW:        peak,
		IdleFraction: idle / peak,
		IdleDayKWh:   idleDay,
		OffDayKWh:    s2.EnergyJ() / 3.6e6,
	}, nil
}

// ---------------------------------------------------------------------------
// pue2 — PUE near 2 and air-side economizers (§2.2)
// ---------------------------------------------------------------------------

// PUE2Result compares a conservative chiller-only plant with an air-side
// economizer over a weather year, including the humidity-control cost of
// admitting outside air (§2.2: outside temperature and humidity "change
// continuously, bringing additional challenges to cooling control").
type PUE2Result struct {
	LegacyPUE     float64
	EconomizerPUE float64
	EconoHours    float64 // fraction of the year in free cooling
	CoolingSaving float64 // fractional plant-energy saving
	// HumidityKWh is the extra humidifier/dehumidifier energy the
	// economizer pays for conditioning outside air over the year.
	HumidityKWh float64
}

// ID implements Result.
func (PUE2Result) ID() string { return "pue2" }

// Report implements Result.
func (r PUE2Result) Report() string {
	var b strings.Builder
	b.WriteString(header("pue2", "PUE close to 2; air-side economizers (§2.2)"))
	fmt.Fprintf(&b, "conservative chiller-only plant: annual mean PUE %.2f (paper: \"close to 2\")\n", r.LegacyPUE)
	fmt.Fprintf(&b, "with air-side economizer:        annual mean PUE %.2f\n", r.EconomizerPUE)
	fmt.Fprintf(&b, "free-cooling hours: %.0f%% of the year; plant energy saved: %.0f%%\n",
		r.EconoHours*100, r.CoolingSaving*100)
	fmt.Fprintf(&b, "humidity-control cost of outside air: %.0f kWh/year (the paper's §2.2 caveat)\n",
		r.HumidityKWh)
	return b.String()
}

// RunPUE2 evaluates both plants hourly over a synthetic weather year with
// a fixed 100 kW IT load and a lightly-loaded distribution path.
func RunPUE2(env *Env) (Result, error) {
	seed := env.Seed
	weather, err := trace.GenerateWeather(trace.DefaultWeatherConfig(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	const itW = 100_000.0
	// Conservative legacy plant: poor COP (overcooling, humidification),
	// big always-on fans.
	legacy := cooling.PlantConfig{
		COPNominal: 2.4, COPRefC: 15, COPSlope: 0.06, COPMin: 1.8,
		FanRatedW: 18_000, FanFlowFraction: 1, PumpOverheadFrac: 0.15,
		EconoMinTempC: -10, EconoMaxTempC: 18, EconoMinRH: 0.2, EconoMaxRH: 0.8,
	}
	econo := legacy
	econo.Economizer = true
	if err := legacy.Validate(); err != nil {
		return nil, err
	}
	// Distribution losses at a typical 40 % loaded path plus fixed
	// lighting/misc overhead — the "close to 2" era breakdown.
	distLossW := itW * 0.14
	miscW := itW * 0.06
	coolingLoadW := itW * 1.05 // overcooling margin

	// Humidity loops: the legacy plant sees conditioned supply air; the
	// economizer ingests outside air whenever it is active.
	legacyHum, err := cooling.NewHumidifier(cooling.DefaultHumidifierConfig())
	if err != nil {
		return nil, err
	}
	econoHum, err := cooling.NewHumidifier(cooling.DefaultHumidifierConfig())
	if err != nil {
		return nil, err
	}

	var legacySum, econoSum, legacyPlantJ, econoPlantJ float64
	var hours, freeHours int
	for i := 0; i < weather.TempC.Len(); i++ {
		tC := weather.TempC.Values[i]
		rh := weather.RH.Values[i]
		lp, err := legacy.Power(coolingLoadW, tC, rh)
		if err != nil {
			return nil, err
		}
		ep, err := econo.Power(coolingLoadW, tC, rh)
		if err != nil {
			return nil, err
		}
		lHumW := legacyHum.Step(0.38, time.Hour)
		driving := 0.38
		if ep.EconomizerActive {
			driving = rh
		}
		eHumW := econoHum.Step(driving, time.Hour)

		lpue, err := cooling.PUE(itW, distLossW, lp.TotalW()+miscW+lHumW)
		if err != nil {
			return nil, err
		}
		epue, err := cooling.PUE(itW, distLossW, ep.TotalW()+miscW+eHumW)
		if err != nil {
			return nil, err
		}
		legacySum += lpue
		econoSum += epue
		legacyPlantJ += (lp.TotalW() + lHumW) * 3600
		econoPlantJ += (ep.TotalW() + eHumW) * 3600
		if ep.EconomizerActive {
			freeHours++
		}
		hours++
	}
	res := PUE2Result{
		LegacyPUE:     legacySum / float64(hours),
		EconomizerPUE: econoSum / float64(hours),
		EconoHours:    float64(freeHours) / float64(hours),
		HumidityKWh:   (econoHum.EnergyJ() - legacyHum.EnergyJ()) / 3.6e6,
	}
	if legacyPlantJ > 0 {
		res.CoolingSaving = 1 - econoPlantJ/legacyPlantJ
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// tier2 — tier-2 availability (§2.1, after [6])
// ---------------------------------------------------------------------------

// Tier2Result computes composite availability from the component model
// and cross-validates it with failure-injection simulation.
type Tier2Result struct {
	Availability float64
	Simulated    float64
	Tier         power.Tier
	Downtime     time.Duration
}

// ID implements Result.
func (Tier2Result) ID() string { return "tier2" }

// Report implements Result.
func (r Tier2Result) Report() string {
	var b strings.Builder
	b.WriteString(header("tier2", "tier-2 facility availability (§2.1)"))
	fmt.Fprintf(&b, "composite availability: %.5f analytic, %.5f over 200 simulated years (paper: tier-2 = 99.741%%)\n",
		r.Availability, r.Simulated)
	fmt.Fprintf(&b, "classification: %v; expected downtime: %v/year\n", r.Tier, r.Downtime.Round(time.Minute))
	return b.String()
}

// RunTier2 evaluates the default tier-2 design analytically and by
// failure injection.
func RunTier2(env *Env) (Result, error) {
	seed := env.Seed
	d := power.DefaultTier2Design()
	a, err := d.Availability()
	if err != nil {
		return nil, err
	}
	// Thread the run environment's engine into the failure-injection
	// simulation so its events count in harness stats and the invariant
	// checker observes it. Burn one Int63 draw on the engine seed exactly
	// as the SimulateAvailability wrapper would, keeping the random
	// stream (and therefore the measured availability) identical.
	rng := sim.NewRNG(seed)
	simA, err := power.SimulateAvailabilityOn(env.NewEngine(rng.Int63()), d, 200*365*24*time.Hour, rng)
	if err != nil {
		return nil, err
	}
	return Tier2Result{
		Availability: a,
		Simulated:    simA,
		Tier:         power.ClassifyTier(a),
		Downtime:     power.DowntimePerYear(a),
	}, nil
}

// ---------------------------------------------------------------------------
// oversub — oversubscription of resources (§3.1)
// ---------------------------------------------------------------------------

// OversubRow is one point of the ratio sweep.
type OversubRow struct {
	Ratio     float64
	Violation float64
}

// OversubResult sweeps oversubscription ratios over a trace-driven tenant
// mix and reports the safe ratio and utilization gain.
type OversubResult struct {
	Rows        []OversubRow
	SafeRatio   float64 // at 1e-3 tolerance
	StaticUtil  float64
	OversubUtil float64
}

// ID implements Result.
func (OversubResult) ID() string { return "oversub" }

// Report implements Result.
func (r OversubResult) Report() string {
	var b strings.Builder
	b.WriteString(header("oversub", "oversubscription of resources (§3.1)"))
	b.WriteString("ratio  violation_fraction\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5.2f  %.5f\n", row.Ratio, row.Violation)
	}
	fmt.Fprintf(&b, "safe oversubscription ratio at 1e-3 tolerance: %.2f\n", r.SafeRatio)
	fmt.Fprintf(&b, "facility utilization: static worst-case %.0f%% -> oversubscribed %.0f%%\n",
		r.StaticUtil*100, r.OversubUtil*100)
	return b.String()
}

// RunOversub builds a 12-tenant mix with staggered peak hours and sweeps
// capacity.
func RunOversub(env *Env) (Result, error) {
	seed := env.Seed
	rng := sim.NewRNG(seed)
	var tenants []*trace.Series
	for i := 0; i < 12; i++ {
		cfg := trace.DefaultDiurnalConfig()
		cfg.Duration = 14 * 24 * time.Hour
		cfg.Step = 5 * time.Minute
		cfg.PeakHour = float64((i * 5) % 24) // staggered peaks
		cfg.Mean = 0.35 + 0.05*rng.Float64()
		cfg.NoiseSD = 0.05
		s, err := trace.GenerateDiurnal(cfg, rng.Fork(fmt.Sprintf("tenant-%d", i)))
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, s)
	}
	e, err := oversub.NewEmpirical(tenants)
	if err != nil {
		return nil, err
	}
	var res OversubResult
	worst := e.SumOfPeaks()
	for _, ratio := range []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0} {
		res.Rows = append(res.Rows, OversubRow{
			Ratio:     ratio,
			Violation: e.ViolationFraction(worst / ratio),
		})
	}
	res.SafeRatio, err = e.SafeRatio(0.001)
	if err != nil {
		return nil, err
	}
	res.StaticUtil, res.OversubUtil, err = e.UtilizationGain(0.001)
	if err != nil {
		return nil, err
	}
	return res, nil
}
