package exp

import (
	"fmt"
	"reflect"
	"time"
)

// volatileMetrics lists metric keys that depend on wall-clock measurement
// rather than virtual time, per experiment id. They are excluded from
// Metrics so golden fixtures stay machine-independent. The telemetry
// experiment is the only one whose *reported metrics* use the wall clock
// (ingest rate, query speedup); its simulated behaviour is still seeded.
var volatileMetrics = map[string][]string{
	"telemetry": {"PointsPerMinute", "QuerySpeedup"},
}

// Metrics flattens a Result into named scalar metrics for regression
// comparison: every exported numeric field, recursively, keyed by its
// field path (slice elements by index). Durations are reported in
// seconds, booleans as 0/1. Strings, maps, and anything behind a pointer
// or interface (e.g. full trace series) are excluded — fixtures capture
// headline numbers, not bulk data. Wall-clock-dependent metrics listed in
// volatileMetrics are removed.
func Metrics(r Result) map[string]float64 {
	out := make(map[string]float64)
	v := reflect.ValueOf(r)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return out
		}
		v = v.Elem()
	}
	flattenMetrics(v, "", out)
	for _, k := range volatileMetrics[r.ID()] {
		delete(out, k)
	}
	return out
}

var durationType = reflect.TypeOf(time.Duration(0))

// flattenMetrics walks v, appending scalar leaves to out under prefix.
func flattenMetrics(v reflect.Value, prefix string, out map[string]float64) {
	if v.Type() == durationType {
		out[prefix] = time.Duration(v.Int()).Seconds()
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		out[prefix] = float64(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		out[prefix] = float64(v.Uint())
	case reflect.Float32, reflect.Float64:
		out[prefix] = v.Float()
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			flattenMetrics(v.Field(i), joinMetricKey(prefix, f.Name), out)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			flattenMetrics(v.Index(i), joinMetricKey(prefix, fmt.Sprintf("%d", i)), out)
		}
	default:
		// Pointers, interfaces, strings, maps, funcs: not fixture data.
	}
}

// joinMetricKey joins a path prefix and a component with a dot.
func joinMetricKey(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}
