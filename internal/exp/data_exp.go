package exp

import (
	"fmt"
	"math"
	"strings"
	stdtime "time"

	"repro/internal/sensornet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ---------------------------------------------------------------------------
// telemetry — data management at fleet scale (§5.3)
// ---------------------------------------------------------------------------

// TelemetryResult measures the §5.3 scenario: ingestion rate at paper
// scale, the multi-scale query speedup, and band-retention storage
// reduction.
type TelemetryResult struct {
	// PointsPerMinute is the measured sustained ingest rate.
	PointsPerMinute float64
	// PaperPointsPerMinute is the 2.4 M/min requirement.
	PaperPointsPerMinute float64
	// QuerySpeedup is raw-scan time over pyramid-query time for the
	// daily-trend query.
	QuerySpeedup float64
	// StorageReduction is raw points appended over (retained raw +
	// aggregate buckets).
	StorageReduction float64
	// TrendLen is the number of daily averages produced (sanity).
	TrendLen int
}

// ID implements Result.
func (TelemetryResult) ID() string { return "telemetry" }

// Report implements Result.
func (r TelemetryResult) Report() string {
	var b strings.Builder
	b.WriteString(header("telemetry", "multi-scale telemetry at fleet scale (§5.3)"))
	fmt.Fprintf(&b, "sustained ingest: %.2g points/min (paper scenario needs %.2g points/min)\n",
		r.PointsPerMinute, r.PaperPointsPerMinute)
	fmt.Fprintf(&b, "daily-trend query speedup from the pyramid: %.0fx vs raw scan\n", r.QuerySpeedup)
	fmt.Fprintf(&b, "storage reduction from band retention + aggregation: %.0fx\n", r.StorageReduction)
	return b.String()
}

// RunTelemetry ingests a scaled copy of the paper's 10,000-server ×
// 100-counter × 15-second scenario and measures rates with the wall
// clock (the only experiment where wall time, not virtual time, is the
// metric).
func RunTelemetry(env *Env) (Result, error) {
	seed := env.Seed
	_ = seed // deterministic synthetic values; no randomness needed
	store, err := telemetry.NewStore(telemetry.Config{
		RawInterval:  15 * stdtime.Second,
		RawRetention: stdtime.Hour,
		Shards:       32,
	})
	if err != nil {
		return nil, err
	}
	// Scaled scenario: 200 servers × 20 counters × 2 simulated days of
	// 15 s samples = 46.08 M points is too slow for a default run; use
	// 200×10×1day = 5.76 M points and measure the rate.
	const (
		servers  = 200
		counters = 10
		day      = 24 * 60 * 4 // 15s samples per day
	)
	// Resolve one Appender per key up front: the collector pipeline pays
	// the key hash and map lookup once at registration, not per point.
	keys := make([]string, 0, servers*counters)
	apps := make([]*telemetry.Appender, 0, servers*counters)
	for s := 0; s < servers; s++ {
		for c := 0; c < counters; c++ {
			k := fmt.Sprintf("srv%04d/c%02d", s, c)
			keys = append(keys, k)
			apps = append(apps, store.Appender(k))
		}
	}
	start := stdtime.Now()
	total := 0
	for i := 0; i < day; i++ {
		ts := stdtime.Duration(i) * 15 * stdtime.Second
		v := float64(i % 960)
		for _, a := range apps {
			if err := a.Append(ts, v); err != nil {
				return nil, err
			}
			total++
		}
	}
	elapsed := stdtime.Since(start)
	perMin := float64(total) / elapsed.Minutes()

	// Query speedup: daily trend via the pyramid vs scanning raw-rate
	// data reconstructed from minute buckets (raw band was dropped —
	// that IS the design; compare against an un-aggregated store).
	flat, err := telemetry.NewStore(telemetry.Config{
		RawInterval: 15 * stdtime.Second, RawRetention: 0, Shards: 4,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < day; i++ {
		ts := stdtime.Duration(i) * 15 * stdtime.Second
		if err := flat.Append("one", ts, float64(i%960)); err != nil {
			return nil, err
		}
	}
	const reps = 200
	key := keys[0]
	qStart := stdtime.Now()
	var trend []float64
	for r := 0; r < reps; r++ {
		trend, err = store.DailyAverages(key)
		if err != nil {
			return nil, err
		}
	}
	pyramidTime := stdtime.Since(qStart)

	qStart = stdtime.Now()
	for r := 0; r < reps; r++ {
		bs, err := flat.Query("one", 0, 1<<62, telemetry.ResRaw)
		if err != nil {
			return nil, err
		}
		var sum float64
		var n int
		for _, bkt := range bs {
			sum += bkt.Sum
			n += int(bkt.Count)
		}
		if n == 0 {
			return nil, fmt.Errorf("exp: raw scan found nothing")
		}
	}
	rawTime := stdtime.Since(qStart)

	st := store.Stats()
	appended := float64(total)
	kept := float64(st.RawPoints + st.AggBuckets)
	res := TelemetryResult{
		PointsPerMinute:      perMin,
		PaperPointsPerMinute: 2.4e6,
		TrendLen:             len(trend),
	}
	if pyramidTime > 0 {
		res.QuerySpeedup = float64(rawTime) / float64(pyramidTime)
	}
	if kept > 0 {
		res.StorageReduction = appended / kept
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// sensornet — fine-grained sensing beats coarse estimation (§4.5)
// ---------------------------------------------------------------------------

// SensorNetResult compares dense WSN reconstruction with sparse
// interpolation against a known thermal field, and reports network
// health.
type SensorNetResult struct {
	DenseRMSE    float64
	SparseRMSE   float64
	Improvement  float64
	DeliveryRate float64
	LifetimeRnds int
}

// ID implements Result.
func (SensorNetResult) ID() string { return "sensornet" }

// Report implements Result.
func (r SensorNetResult) Report() string {
	var b strings.Builder
	b.WriteString(header("sensornet", "wireless sensing of the thermal map (§4.5, after [30])"))
	fmt.Fprintf(&b, "thermal-map RMSE: dense WSN %.2f degC vs sparse interpolation %.2f degC (%.0fx better)\n",
		r.DenseRMSE, r.SparseRMSE, r.Improvement)
	fmt.Fprintf(&b, "collection-tree delivery rate: %.0f%%; battery lifetime: %d rounds\n",
		r.DeliveryRate*100, r.LifetimeRnds)
	return b.String()
}

// RunSensorNet senses a synthetic hot-spot field.
func RunSensorNet(env *Env) (Result, error) {
	seed := env.Seed
	const zones = 24
	truth := func(z int) float64 {
		// Two hot spots over a 21 °C floor.
		d1 := float64(z - 6)
		d2 := float64(z - 17)
		return 21 + 7*math.Exp(-d1*d1/3) + 5*math.Exp(-d2*d2/5)
	}
	truthMap := make([]float64, zones)
	for z := range truthMap {
		truthMap[z] = truth(z)
	}

	cfg := sensornet.DefaultNetworkConfig(zones)
	net, err := sensornet.NewNetwork(cfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	var all []sensornet.Reading
	for r := 0; r < 20; r++ {
		all = append(all, net.Collect(truth)...)
	}
	dense, err := sensornet.ReconstructMap(all, zones)
	if err != nil {
		return nil, err
	}
	denseRMSE, err := sensornet.RMSE(dense, truthMap)
	if err != nil {
		return nil, err
	}
	// Sparse baseline: CRAC return sensors only (ends + middle).
	sparse, err := sensornet.InterpolateSparse(map[int]float64{
		0: truth(0), zones / 2: truth(zones / 2), zones - 1: truth(zones - 1),
	}, zones)
	if err != nil {
		return nil, err
	}
	sparseRMSE, err := sensornet.RMSE(sparse, truthMap)
	if err != nil {
		return nil, err
	}
	delivered, lost := net.DeliveryStats()
	rate := float64(delivered) / float64(delivered+lost)

	// Lifetime: rounds until half the nodes are dead, on a fresh network
	// with small batteries.
	lifeCfg := sensornet.DefaultNetworkConfig(zones)
	for i := range lifeCfg.Nodes {
		lifeCfg.Nodes[i].BatteryJ = 2.0
	}
	lifeNet, err := sensornet.NewNetwork(lifeCfg, sim.NewRNG(seed+1))
	if err != nil {
		return nil, err
	}
	rounds := 0
	for lifeNet.AliveCount() > zones/2 && rounds < 1_000_000 {
		lifeNet.Collect(truth)
		rounds++
	}

	res := SensorNetResult{
		DenseRMSE:    denseRMSE,
		SparseRMSE:   sparseRMSE,
		DeliveryRate: rate,
		LifetimeRnds: rounds,
	}
	if denseRMSE > 0 {
		res.Improvement = sparseRMSE / denseRMSE
	}
	return res, nil
}
