package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/sensornet"
	"repro/internal/server"
	"repro/internal/sim"
)

// ---------------------------------------------------------------------------
// fault-outage — utility-outage ride-through (§2.1 backup chain)
// ---------------------------------------------------------------------------

// OutageScenario is one utility-outage run's outcome.
type OutageScenario struct {
	BridgedKWh     float64
	UnservedKWh    float64
	GenAttempts    int
	GenFailures    int
	SurvivalSheds  int
	ShedServers    int
	CapEvents      int
	ThrottleEvents int
	FinalOn        int
	BatteryMinFrac float64
}

// FaultOutageResult contrasts an outage the generator bridges with one
// where every start attempt fails and the UPS runs dry.
type FaultOutageResult struct {
	RideThrough OutageScenario
	GenFail     OutageScenario
}

// ID implements Result.
func (FaultOutageResult) ID() string { return "fault-outage" }

// Report implements Result.
func (r FaultOutageResult) Report() string {
	var b strings.Builder
	b.WriteString(header("fault-outage", "utility outage: UPS bridge, generator start, graceful shedding (§2.1)"))
	row := func(name string, s OutageScenario) {
		fmt.Fprintf(&b, "%-12s bridged %.3f kWh, unserved %.3f kWh, gen %d/%d starts failed, "+
			"sheds %d (%d servers), caps %d (%d throttles), %d on at end, battery min %.0f%%\n",
			name, s.BridgedKWh, s.UnservedKWh, s.GenFailures, s.GenAttempts,
			s.SurvivalSheds, s.ShedServers, s.CapEvents, s.ThrottleEvents, s.FinalOn,
			s.BatteryMinFrac*100)
	}
	row("gen-starts:", r.RideThrough)
	row("gen-fails:", r.GenFail)
	b.WriteString("shape check: shedding and unserved load only when the generator never starts\n")
	return b.String()
}

// outageFacility is the 32·scale-server facility the outage scenarios
// share (scale 1 = the paper-scale 32 servers). pool, when non-nil,
// drives the facility's sharded per-tick loops.
func outageFacility(e *sim.Engine, scale int, pool *par.Pool) (*core.DataCenter, error) {
	if scale < 1 {
		scale = 1
	}
	srvCfg := server.DefaultConfig()
	plant := cooling.DefaultPlantConfig()
	plant.FanRatedW = 2_000 * float64(scale)
	dc, err := core.NewDataCenter(e, core.DataCenterConfig{
		Name:           "dc-outage",
		ServerConfig:   srvCfg,
		ServersPerRack: 8 * scale,
		Topology: power.TopologyConfig{
			UPSCount: 1, PDUsPerUPS: 2, RacksPerPDU: 2,
			RackRatedW: 2_900 * float64(scale), Oversubscription: 1,
		},
		Room: cooling.RoomConfig{
			Zones: []cooling.ZoneConfig{
				scaledZone("z0", scale), scaledZone("z1", scale),
				scaledZone("z2", scale), scaledZone("z3", scale),
			},
			CRACs:       []cooling.CRACConfig{cooling.DefaultCRAC("c0"), cooling.DefaultCRAC("c1")},
			Sensitivity: [][]float64{{0.6, 0.3}, {0.5, 0.4}, {0.4, 0.5}, {0.3, 0.6}},
			PhysicsTick: cooling.DefaultPhysicsTick,
		},
		ZoneOfRack: []int{0, 1, 2, 3},
		Plant:      plant,
		Pool:       pool,
	})
	if err != nil {
		return nil, err
	}
	if _, err := dc.Attach(); err != nil {
		return nil, err
	}
	return dc, nil
}

// RunFaultOutage runs the §2.1 backup chain end to end, twice.
func RunFaultOutage(env *Env) (Result, error) {
	runScenario := func(genFails bool) (OutageScenario, error) {
		var s OutageScenario
		e := env.NewEngine(env.Seed)
		dc, err := outageFacility(e, env.FleetScale(), env.Pool())
		if err != nil {
			return s, err
		}
		srvCfg := server.DefaultConfig()
		dc.Fleet().SetTarget(dc.Fleet().Size())
		if err := e.Run(srvCfg.BootDelay + time.Second); err != nil {
			return s, err
		}
		dc.Fleet().Dispatch(e.Now(), 0.75*float64(dc.Fleet().Size())*srvCfg.Capacity)

		// Emergency caps at 55 % of rack rating sit below the 75 %
		// dispatch draw, so redundancy loss forces real throttling.
		deg, err := core.NewDegrader(e, dc, core.DegraderConfig{EmergencyCapFrac: 0.55})
		if err != nil {
			return s, err
		}
		deg.Start()

		in := fault.NewInjector(e)
		in.WireRoom(dc.Room())
		in.WireServers(dc.Fleet().Servers())
		bat, err := power.BatteryForAutonomy(dc.Flow().OutW, 6*time.Minute, 0.94)
		if err != nil {
			return s, err
		}
		failProb := 0.0
		if genFails {
			failProb = 1.0
		}
		u, err := in.WireUtility(fault.UtilityConfig{
			Battery:          bat,
			LoadW:            func() float64 { return dc.Flow().OutW },
			GenStartDelay:    2 * time.Minute,
			GenStartFailProb: failProb,
			GenRetries:       2,
			GenRetryBackoff:  90 * time.Second,
			Tick:             5 * time.Second,
		})
		if err != nil {
			return s, err
		}
		in.Subscribe(deg.OnNotice)
		if err := in.Arm([]fault.Event{
			{Kind: fault.UtilityOutage, At: time.Hour, Duration: 45 * time.Minute},
		}); err != nil {
			return s, err
		}
		s.BatteryMinFrac = 1
		e.Every(30*time.Second, func(*sim.Engine) {
			s.BatteryMinFrac = math.Min(s.BatteryMinFrac, bat.ChargeFraction())
		})
		if err := e.Run(3 * time.Hour); err != nil {
			return s, err
		}
		s.BridgedKWh = u.BridgedJ() / 3.6e6
		s.UnservedKWh = u.UnservedJ() / 3.6e6
		s.GenAttempts = u.GenAttempts()
		s.GenFailures = u.GenFailures()
		s.SurvivalSheds = deg.SurvivalSheds()
		s.ShedServers = deg.ShedServers()
		s.CapEvents = deg.CapEvents()
		s.ThrottleEvents = deg.Enforcer().ThrottleEvents()
		s.FinalOn = dc.Fleet().OnCount()
		return s, nil
	}
	ok, err := runScenario(false)
	if err != nil {
		return nil, err
	}
	bad, err := runScenario(true)
	if err != nil {
		return nil, err
	}
	return FaultOutageResult{RideThrough: ok, GenFail: bad}, nil
}

// ---------------------------------------------------------------------------
// fault-crac — CRAC failure with and without graceful shedding (§2.2, §5.1)
// ---------------------------------------------------------------------------

// CRACFailScenario is one CRAC-failure run's outcome.
type CRACFailScenario struct {
	Trips       int
	MaxInletC   float64
	FinalActive int
	EnergyKWh   float64
}

// FaultCRACResult contrasts thermal protection (trips) with the MRM
// shedding ladder under the same six-hour CRAC outage.
type FaultCRACResult struct {
	Unmanaged      CRACFailScenario
	Managed        CRACFailScenario
	DVFSDowns      int
	Consolidations int
	ZoneSheds      int
	ShedServers    int
}

// ID implements Result.
func (FaultCRACResult) ID() string { return "fault-crac" }

// Report implements Result.
func (r FaultCRACResult) Report() string {
	var b strings.Builder
	b.WriteString(header("fault-crac", "CRAC unit failure: protection trips vs graceful shedding ladder (§2.2)"))
	fmt.Fprintf(&b, "unmanaged: %d thermal trips, hottest inlet %.1f degC, %d active at end, %.1f kWh\n",
		r.Unmanaged.Trips, r.Unmanaged.MaxInletC, r.Unmanaged.FinalActive, r.Unmanaged.EnergyKWh)
	fmt.Fprintf(&b, "managed:   %d thermal trips, hottest inlet %.1f degC, %d active at end, %.1f kWh\n",
		r.Managed.Trips, r.Managed.MaxInletC, r.Managed.FinalActive, r.Managed.EnergyKWh)
	fmt.Fprintf(&b, "ladder: %d dvfs-down, %d consolidations, %d zone sheds (%d servers)\n",
		r.DVFSDowns, r.Consolidations, r.ZoneSheds, r.ShedServers)
	b.WriteString("shape check: the ladder trades capacity for fewer protective trips\n")
	return b.String()
}

// RunFaultCRAC fails one of two CRAC units for six hours under heavy
// load.
func RunFaultCRAC(env *Env) (Result, error) {
	srvCfg := server.DefaultConfig()
	srvCfg.TripTempC = 33 // protection engages above the ASHRAE envelope
	scale := env.FleetScale()
	runScenario := func(managed bool) (CRACFailScenario, *core.Degrader, error) {
		var s CRACFailScenario
		e := env.NewEngine(env.Seed)
		plant := cooling.DefaultPlantConfig()
		plant.FanRatedW = 6_000 * float64(scale)
		dc, err := core.NewDataCenter(e, core.DataCenterConfig{
			Name:           "dc-cracfail",
			ServerConfig:   srvCfg,
			ServersPerRack: 80 * scale,
			Topology: power.TopologyConfig{
				UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: 2,
				RackRatedW: 26_400 * float64(scale), Oversubscription: 1,
			},
			Room: cooling.RoomConfig{
				Zones: []cooling.ZoneConfig{scaledZone("za", scale), scaledZone("zb", scale)},
				CRACs: []cooling.CRACConfig{cooling.DefaultCRAC("c0"), cooling.DefaultCRAC("c1")},
				// Each unit dominates one zone: losing c0 starves za.
				Sensitivity: [][]float64{{0.75, 0.15}, {0.15, 0.75}},
				PhysicsTick: cooling.DefaultPhysicsTick,
			},
			ZoneOfRack: []int{0, 1},
			Plant:      plant,
			Pool:       env.Pool(),
		})
		if err != nil {
			return s, nil, err
		}
		if _, err := dc.Attach(); err != nil {
			return s, nil, err
		}
		dc.Fleet().SetTarget(dc.Fleet().Size())
		if err := e.Run(srvCfg.BootDelay + time.Second); err != nil {
			return s, nil, err
		}
		dc.Fleet().Dispatch(e.Now(), 0.85*float64(dc.Fleet().Size())*srvCfg.Capacity)

		var deg *core.Degrader
		in := fault.NewInjector(e)
		in.WireRoom(dc.Room())
		in.WireServers(dc.Fleet().Servers())
		if managed {
			deg, err = core.NewDegrader(e, dc, core.DegraderConfig{
				CheckPeriod: time.Minute, ShedInletC: 30, RecoverInletC: 26,
			})
			if err != nil {
				return s, nil, err
			}
			in.Subscribe(deg.OnNotice)
			deg.Start()
		}
		if err := in.Arm([]fault.Event{
			{Kind: fault.CRACFailure, At: 2 * time.Hour, Duration: 6 * time.Hour, Index: 0},
		}); err != nil {
			return s, nil, err
		}
		e.Every(dc.Room().PhysicsTick(), func(*sim.Engine) {
			for z := 0; z < dc.Room().Zones(); z++ {
				s.MaxInletC = math.Max(s.MaxInletC, dc.Room().ZoneInletC(z))
			}
		})
		const horizon = 10 * time.Hour
		if err := e.Run(horizon); err != nil {
			return s, nil, err
		}
		dc.Fleet().Sync(horizon)
		s.Trips = dc.Trips()
		s.FinalActive = dc.Fleet().ActiveCount()
		s.EnergyKWh = dc.Fleet().EnergyJ() / 3.6e6
		return s, deg, nil
	}
	unmanaged, _, err := runScenario(false)
	if err != nil {
		return nil, err
	}
	managed, deg, err := runScenario(true)
	if err != nil {
		return nil, err
	}
	return FaultCRACResult{
		Unmanaged:      unmanaged,
		Managed:        managed,
		DVFSDowns:      deg.DVFSDowns(),
		Consolidations: deg.Consolidations(),
		ZoneSheds:      deg.ZoneSheds(),
		ShedServers:    deg.ShedServers(),
	}, nil
}

// ---------------------------------------------------------------------------
// fault-sensor — sensor blackout and control degradation (§4.5)
// ---------------------------------------------------------------------------

// SensorScenario is one supervisor mode's outcome.
type SensorScenario struct {
	MaxInletC   float64
	AlarmRounds int // supervisor rounds with a zone above the alarm line
	FreshRounds int // rounds controlled from fresh telemetry
	BlindRounds int // rounds with no readings delivered
}

// FaultSensorResult contrasts a supervisor that goes blind during a
// sensor blackout with one that falls back to last-good telemetry and a
// fail-safe cooling posture.
type FaultSensorResult struct {
	Naive          SensorScenario
	Guarded        SensorScenario
	FailsafeRounds int
	FallbackRounds int
	HealthyRMSE    float64
	StuckRMSE      float64
}

// ID implements Result.
func (FaultSensorResult) ID() string { return "fault-sensor" }

// Report implements Result.
func (r FaultSensorResult) Report() string {
	var b strings.Builder
	b.WriteString(header("fault-sensor", "sensor blackout: blind control vs last-good fallback + fail-safe (§4.5)"))
	fmt.Fprintf(&b, "naive:   hottest inlet %.1f degC, %d alarm rounds, %d fresh / %d blind rounds\n",
		r.Naive.MaxInletC, r.Naive.AlarmRounds, r.Naive.FreshRounds, r.Naive.BlindRounds)
	fmt.Fprintf(&b, "guarded: hottest inlet %.1f degC, %d alarm rounds, %d fresh / %d blind rounds\n",
		r.Guarded.MaxInletC, r.Guarded.AlarmRounds, r.Guarded.FreshRounds, r.Guarded.BlindRounds)
	fmt.Fprintf(&b, "guard: %d fail-safe rounds, %d fallback rounds\n", r.FailsafeRounds, r.FallbackRounds)
	fmt.Fprintf(&b, "reconstruction RMSE: %.2f degC healthy, %.2f degC with stuck sensors\n",
		r.HealthyRMSE, r.StuckRMSE)
	b.WriteString("shape check: fail-safe cooling keeps the blind window cooler than coasting\n")
	return b.String()
}

// RunFaultSensor runs a supervisor-controlled room through a full sensor
// blackout (all nodes dark for two hours, spanning a load surge) and a
// stuck-sensor window, in naive and guarded modes.
func RunFaultSensor(env *Env) (Result, error) {
	const (
		zones      = 4
		perZone    = 50
		supPeriod  = 2 * time.Minute
		alarmC     = 28.0
		targetC    = 26.0
		surgeStart = 2*time.Hour + 20*time.Minute
		surgeEnd   = 5*time.Hour + 10*time.Minute
		stuckAt    = 5 * time.Hour
		horizon    = 7 * time.Hour
	)
	supCRAC := func(name string) cooling.CRACConfig {
		c := cooling.DefaultCRAC(name)
		c.SupplyMaxC = 28
		// The supervisor owns the setpoint: push the unit's internal
		// return-air controller beyond the horizon.
		c.ControlPeriod = 1000 * time.Hour
		return c
	}
	runScenario := func(guarded bool) (SensorScenario, *core.TelemetryGuard, int, float64, float64, error) {
		var s SensorScenario
		var failsafe int
		e := env.NewEngine(env.Seed)
		roomCfg := cooling.RoomConfig{
			CRACs:       []cooling.CRACConfig{supCRAC("c0"), supCRAC("c1")},
			PhysicsTick: cooling.DefaultPhysicsTick,
		}
		for z := 0; z < zones; z++ {
			roomCfg.Zones = append(roomCfg.Zones, cooling.DefaultZone(fmt.Sprintf("z%d", z)))
			// High recirculation (0.65) makes inlets sensitive to load,
			// so blind control has something to get wrong.
			roomCfg.Sensitivity = append(roomCfg.Sensitivity, []float64{0.175, 0.175})
		}
		room, err := cooling.NewRoom(roomCfg)
		if err != nil {
			return s, nil, 0, 0, 0, err
		}
		room.Attach(e)
		srvCfg := server.DefaultConfig()
		var servers []*server.Server
		for i := 0; i < zones*perZone; i++ {
			c := srvCfg
			c.Name = fmt.Sprintf("srv-%03d", i)
			sv, err := server.New(c)
			if err != nil {
				return s, nil, 0, 0, 0, err
			}
			sv.PowerOn(e)
			servers = append(servers, sv)
		}
		net, err := sensornet.NewNetwork(sensornet.DefaultNetworkConfig(zones), e.RNG().Fork("sensors"))
		if err != nil {
			return s, nil, 0, 0, 0, err
		}
		if err := e.Run(srvCfg.BootDelay + time.Second); err != nil {
			return s, nil, 0, 0, 0, err
		}
		setUtil := func(u float64) {
			now := e.Now()
			for _, sv := range servers {
				sv.SetUtilization(now, u)
			}
		}
		setUtil(0.35)
		e.ScheduleAt(surgeStart, func(*sim.Engine) { setUtil(0.95) })
		e.ScheduleAt(surgeEnd, func(*sim.Engine) { setUtil(0.35) })

		// Physics coupling: heat in, trip protection out.
		s.MaxInletC = math.Inf(-1)
		e.Every(room.PhysicsTick(), func(eng *sim.Engine) {
			now := eng.Now()
			heat := make([]float64, zones)
			for i, sv := range servers {
				sv.Sync(now)
				heat[i/perZone] += sv.Power()
			}
			for z := 0; z < zones; z++ {
				_ = room.SetZoneHeat(z, heat[z])
			}
			for i, sv := range servers {
				sv.ObserveInlet(now, room.ZoneInletC(i/perZone))
			}
			for z := 0; z < zones; z++ {
				s.MaxInletC = math.Max(s.MaxInletC, room.ZoneInletC(z))
			}
		})

		in := fault.NewInjector(e)
		in.WireSensors(net)
		events := make([]fault.Event, 0, zones+2)
		for node := 0; node < zones; node++ {
			events = append(events, fault.Event{
				Kind: fault.SensorDropout, At: 2 * time.Hour, Duration: 2 * time.Hour, Index: node,
			})
		}
		// A later stuck window on half the nodes: delivery looks healthy
		// while the values go stale.
		events = append(events,
			fault.Event{Kind: fault.SensorStuck, At: stuckAt, Duration: 90 * time.Minute, Index: 0},
			fault.Event{Kind: fault.SensorStuck, At: stuckAt, Duration: 90 * time.Minute, Index: 1},
		)
		if err := in.Arm(events); err != nil {
			return s, nil, 0, 0, 0, err
		}

		guard, err := core.NewTelemetryGuard(3)
		if err != nil {
			return s, nil, 0, 0, 0, err
		}
		control := func(estimate []float64) {
			estMax := estimate[0]
			for _, v := range estimate[1:] {
				estMax = math.Max(estMax, v)
			}
			for c := 0; c < room.CRACs(); c++ {
				_ = room.SetCRACSetpoint(c, room.CRACSetpointC(c)+0.6*(targetC-estMax))
			}
		}
		var healthySum, stuckSum float64
		var healthyN, stuckN int
		e.Every(supPeriod, func(eng *sim.Engine) {
			now := eng.Now()
			truth := make([]float64, zones)
			for z := 0; z < zones; z++ {
				truth[z] = room.ZoneInletC(z)
			}
			readings := net.Collect(func(z int) float64 { return truth[z] })
			est, rerr := sensornet.ReconstructMap(readings, zones)
			ok := rerr == nil && len(readings) > 0
			if ok {
				if rmse, err := sensornet.RMSE(est, truth); err == nil {
					switch {
					case now >= time.Hour && now < 2*time.Hour:
						healthySum += rmse
						healthyN++
					case now >= stuckAt+supPeriod && now < stuckAt+90*time.Minute:
						stuckSum += rmse
						stuckN++
					}
				}
			}
			for z := 0; z < zones; z++ {
				if truth[z] > alarmC {
					s.AlarmRounds++
					break
				}
			}
			if guarded {
				m, degraded := guard.Observe(est, ok)
				switch {
				case degraded:
					// Sensors dark too long: fail safe to maximum cooling
					// rather than coasting on a stale picture.
					for c := 0; c < room.CRACs(); c++ {
						_ = room.SetCRACSetpoint(c, supCRAC("").SupplyMinC)
					}
					failsafe++
					s.BlindRounds++
				case ok:
					control(m)
					s.FreshRounds++
				case m != nil:
					control(m)
					s.BlindRounds++
				}
				return
			}
			if ok {
				control(est)
				s.FreshRounds++
			} else {
				s.BlindRounds++ // blind: coast on whatever the setpoints were
			}
		})
		if err := e.Run(horizon); err != nil {
			return s, nil, 0, 0, 0, err
		}
		healthy, stuck := 0.0, 0.0
		if healthyN > 0 {
			healthy = healthySum / float64(healthyN)
		}
		if stuckN > 0 {
			stuck = stuckSum / float64(stuckN)
		}
		return s, guard, failsafe, healthy, stuck, nil
	}
	naive, _, _, healthy, stuck, err := runScenario(false)
	if err != nil {
		return nil, err
	}
	guardedS, guard, failsafe, _, _, err := runScenario(true)
	if err != nil {
		return nil, err
	}
	return FaultSensorResult{
		Naive:          naive,
		Guarded:        guardedS,
		FailsafeRounds: failsafe,
		FallbackRounds: guard.Fallbacks(),
		HealthyRMSE:    healthy,
		StuckRMSE:      stuck,
	}, nil
}
