package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The request-level family puts users, not watts, on the y-axis: the
// same elastic machinery the fluid experiments exercise, but measured by
// what the customer sees — admissions, rejections, degraded service, and
// SLO misses per class — as the paper's §3 framing of elasticity as a
// user-visible property demands.

// classMixShares adapts the default class mix to the trace splitter.
func classMixShares() []float64 {
	mix := workload.DefaultClassMix()
	return mix[:]
}

// ---------------------------------------------------------------------------
// users-surge — user outcomes through an Animoto surge under power budgets
// ---------------------------------------------------------------------------

// UsersSurgeRow is one power budget's outcome through the surge.
type UsersSurgeRow struct {
	FleetCap      int
	EnergyKWh     float64
	MeanActive    float64
	OfferedUsers  float64
	AdmittedUsers float64
	RejectedUsers float64
	DegradedUsers float64
	RejectedFrac  float64
	FinalQ        float64
	SLOMiss       [workload.NumClasses]float64
}

// UsersSurgeResult sweeps the fleet power budget through the surge.
type UsersSurgeResult struct {
	PeakDemandErl float64
	Rows          []UsersSurgeRow
}

// ID implements Result.
func (UsersSurgeResult) ID() string { return "users-surge" }

// Report implements Result.
func (r UsersSurgeResult) Report() string {
	var b strings.Builder
	b.WriteString(header("users-surge", "user outcomes through an Animoto-style surge under power budgets"))
	fmt.Fprintf(&b, "peak demand %.0f server-equivalents; budgets are fleet-size caps\n", r.PeakDemandErl)
	b.WriteString("budget  energy_kWh  mean_on   offered_u   rejected   rej_frac  degraded    Q_end  slo_miss(i/b/g)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d  %10.1f  %7.1f  %10.0f  %9.0f  %8.4f  %8.0f  %7.3f  %.3f/%.3f/%.3f\n",
			row.FleetCap, row.EnergyKWh, row.MeanActive, row.OfferedUsers,
			row.RejectedUsers, row.RejectedFrac, row.DegradedUsers, row.FinalQ,
			row.SLOMiss[workload.ClassInteractive], row.SLOMiss[workload.ClassBatch],
			row.SLOMiss[workload.ClassBackground])
	}
	b.WriteString("shape check: shrinking the budget trades energy for rejections and degradation\n")
	return b.String()
}

// RunUsersSurge drives a scaled-down Animoto surge through the
// coordinated manager with batched admission control in front of
// dispatch, at three fleet power budgets (full, 75 %, 50 %). The demand
// trace is generated once and split per class; every budget sees the
// identical user stream. Env.Scale multiplies the fleet, the surge
// magnitudes, and the controller's step sizes together, so scaled runs
// keep the paper run's relative dynamics (scale 1 is byte-identical to
// the pre-knob experiment).
func RunUsersSurge(env *Env) (Result, error) {
	seed := env.Seed
	scale := env.FleetScale()
	fullFleet := 64 * scale
	surgeCfg := trace.SurgeConfig{
		Duration:     4 * 24 * time.Hour,
		Step:         10 * time.Minute,
		Baseline:     4 * float64(scale),
		Peak:         48 * float64(scale),
		SurgeStart:   12 * time.Hour,
		RampDuration: 24 * time.Hour,
		HoldDuration: 6 * time.Hour,
		DecayTime:    12 * time.Hour,
		Settle:       10,
		NoiseSD:      0.03,
	}
	classes, err := trace.GenerateSurgeClasses(surgeCfg, classMixShares(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	var peak float64
	for _, s := range classes {
		peak += s.Max()
	}

	srv := server.DefaultConfig()
	reqClasses := workload.DefaultRequestClasses()
	horizon := surgeCfg.Duration
	res := UsersSurgeResult{PeakDemandErl: peak}
	for _, budget := range []int{fullFleet, fullFleet * 3 / 4, fullFleet / 2} {
		adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
		if err != nil {
			return nil, err
		}
		e := env.NewEngine(seed)
		const decision = time.Minute
		m, err := core.NewManager(e, core.ManagerConfig{
			ServerConfig:   srv,
			FleetSize:      budget,
			Queue:          workload.DefaultQueueModel(),
			SLA:            100 * time.Millisecond,
			DecisionPeriod: decision,
			Mode:           core.ModeCoordinated,
			Trigger: onoff.DelayTrigger{
				High: 60 * time.Millisecond, Low: 25 * time.Millisecond,
				StepUp: scale, StepDown: scale, Min: 1, Max: budget,
			},
			InitialOn: 8 * scale,
			Admission: adm,
			Pool:      env.Pool(),
			ClassDemand: func(now time.Duration) [workload.NumClasses]float64 {
				var fresh [workload.NumClasses]float64
				for c := 0; c < workload.NumClasses; c++ {
					// Class demand arrives in server-equivalents; one
					// user holds a server-equivalent for its service
					// time, so erlangs/ServiceTime is the arrival rate.
					rate := classes[c].At(now) / reqClasses[c].ServiceTime.Seconds()
					fresh[c] = workload.UsersPerTick(rate, decision)
				}
				return fresh
			},
		}, nil)
		if err != nil {
			return nil, err
		}
		m.Start()
		if err := e.Run(horizon); err != nil {
			return nil, err
		}
		rr := m.Result(horizon)
		row := UsersSurgeRow{
			FleetCap:      budget,
			EnergyKWh:     rr.EnergyKWh,
			MeanActive:    rr.MeanActive,
			OfferedUsers:  adm.OfferedUsers(),
			AdmittedUsers: adm.AdmittedUsers(),
			RejectedUsers: adm.RejectedUsers(),
			DegradedUsers: adm.DegradedUsers(),
			FinalQ:        adm.Q(),
		}
		if row.OfferedUsers > 0 {
			row.RejectedFrac = row.RejectedUsers / row.OfferedUsers
		}
		for c := 0; c < workload.NumClasses; c++ {
			row.SLOMiss[c] = adm.SLOMissRate(workload.Class(c))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// users-flash — flash crowds against a fixed fleet, per-class outcomes
// ---------------------------------------------------------------------------

// UsersFlashResult summarizes a Messenger week of request-level admission
// against a statically-sized fleet.
type UsersFlashResult struct {
	CapacityErl    float64
	FlashCrowds    int
	OfferedUsers   float64
	AdmittedUsers  float64
	RejectedUsers  float64
	DegradedUsers  float64
	DeferredEnd    float64
	PeakBacklog    float64
	MinQ           float64
	RejectTickFrac float64
	SLOMiss        [workload.NumClasses]float64
}

// ID implements Result.
func (UsersFlashResult) ID() string { return "users-flash" }

// Report implements Result.
func (r UsersFlashResult) Report() string {
	var b strings.Builder
	b.WriteString(header("users-flash", "login flash crowds against a fixed fleet (§3, Figure 3 workload)"))
	fmt.Fprintf(&b, "capacity %.0f server-equivalents; %d flash crowds in the week\n",
		r.CapacityErl, r.FlashCrowds)
	fmt.Fprintf(&b, "users offered %.0f: admitted %.0f (%.0f degraded), rejected %.0f, deferred backlog %.0f at end\n",
		r.OfferedUsers, r.AdmittedUsers, r.DegradedUsers, r.RejectedUsers, r.DeferredEnd)
	fmt.Fprintf(&b, "worst fair share Q %.3f; peak deferred backlog %.0f users; %.2f%% of ticks rejected someone\n",
		r.MinQ, r.PeakBacklog, r.RejectTickFrac*100)
	fmt.Fprintf(&b, "SLO misses: interactive %.1f%%, batch %.1f%%, background %.1f%% of active ticks\n",
		r.SLOMiss[workload.ClassInteractive]*100, r.SLOMiss[workload.ClassBatch]*100,
		r.SLOMiss[workload.ClassBackground]*100)
	return b.String()
}

// RunUsersFlash replays the Figure-3 Messenger week — diurnal swing plus
// login flash crowds — through the admission controller in front of a
// fixed fleet sized below the peak, so flash crowds force the fair-share
// floor to bite. The loop is analytic (no engine); the controller's own
// conservation invariant is asserted every tick.
func RunUsersFlash(env *Env) (Result, error) {
	seed := env.Seed
	mcfg := trace.DefaultMessengerConfig()
	m, classes, err := trace.GenerateMessengerClasses(mcfg, classMixShares(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		return nil, err
	}

	// Peak offered load is ~121 server-equivalents (1400 logins/s split
	// 60/25/15 across the class service times, with batch's 250 ms jobs
	// dominating). 50 keeps quiet hours comfortable but drives the peak
	// below the Qmin floor, so crunches shed background users outright
	// and push batch work into the deferred backlog.
	const capacityErl = 50.0
	step := mcfg.Step
	steps := int(mcfg.Duration / step)

	res := UsersFlashResult{
		CapacityErl: capacityErl,
		FlashCrowds: len(m.FlashTimes),
		MinQ:        1,
	}
	rejectTicks := 0
	for i := 0; i < steps; i++ {
		t := time.Duration(i) * step
		var fresh [workload.NumClasses]float64
		for c := 0; c < workload.NumClasses; c++ {
			fresh[c] = workload.UsersPerTick(classes[c].At(t), step)
		}
		out := adm.Tick(step, &fresh, capacityErl)
		if err := adm.CheckInvariants(t); err != nil {
			return nil, fmt.Errorf("users-flash: tick %d: %w", i, err)
		}
		if out.Q < res.MinQ {
			res.MinQ = out.Q
		}
		var rej, backlog float64
		for c := 0; c < workload.NumClasses; c++ {
			rej += out.Rejected[c]
			backlog += adm.Backlog(workload.Class(c))
		}
		if rej > 0 {
			rejectTicks++
		}
		if backlog > res.PeakBacklog {
			res.PeakBacklog = backlog
		}
	}

	res.OfferedUsers = adm.OfferedUsers()
	res.AdmittedUsers = adm.AdmittedUsers()
	res.RejectedUsers = adm.RejectedUsers()
	res.DegradedUsers = adm.DegradedUsers()
	res.DeferredEnd = adm.DeferredBacklog()
	res.RejectTickFrac = float64(rejectTicks) / float64(steps)
	for c := 0; c < workload.NumClasses; c++ {
		res.SLOMiss[c] = adm.SLOMissRate(workload.Class(c))
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// users-qmin — the Qmin knob: rejection versus degradation under crunch
// ---------------------------------------------------------------------------

// UsersQminRow is one Qmin setting's steady-state outcome.
type UsersQminRow struct {
	Qmin          float64
	MeanQ         float64
	AdmittedFrac  float64
	RejectedFrac  float64
	DegradedFrac  float64 // of admitted users
	EndBacklog    float64
	InteractiveOK float64 // interactive admitted / interactive offered
}

// UsersQminResult sweeps the fair-share floor under a fixed 1.5× crunch.
type UsersQminResult struct {
	DemandErl   float64
	CapacityErl float64
	Rows        []UsersQminRow
}

// ID implements Result.
func (UsersQminResult) ID() string { return "users-qmin" }

// Report implements Result.
func (r UsersQminResult) Report() string {
	var b strings.Builder
	b.WriteString(header("users-qmin", "fair-share floor Qmin: reject users or degrade everyone (Snippets 1-2 rule)"))
	fmt.Fprintf(&b, "steady crunch: %.0f erlangs offered against %.0f erlangs of capacity\n",
		r.DemandErl, r.CapacityErl)
	b.WriteString("qmin   mean_Q  admitted  rejected  degraded/adm  interactive_ok  end_backlog\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%4.2f  %7.3f  %8.3f  %8.3f  %12.3f  %14.3f  %11.0f\n",
			row.Qmin, row.MeanQ, row.AdmittedFrac, row.RejectedFrac,
			row.DegradedFrac, row.InteractiveOK, row.EndBacklog)
	}
	b.WriteString("shape check: raising Qmin converts degradation into rejection, shedding low classes first\n")
	return b.String()
}

// RunUsersQmin holds offered load at 1.5× capacity and sweeps the
// fair-share floor. Low Qmin admits everyone at a thin share (all
// degraded, none rejected); high Qmin protects the survivors' experience
// by shedding background and batch users. The loop is deterministic —
// the tradeoff curve is a property of the admission rule, not the noise.
func RunUsersQmin(env *Env) (Result, error) {
	const (
		capacityErl = 40.0
		demandErl   = 60.0
		dt          = time.Minute
		steps       = 6 * 60 // six hours reaches backlog steady state
	)
	mix := workload.DefaultClassMix()
	var erl [workload.NumClasses]float64
	mix.Split(demandErl, &erl)

	res := UsersQminResult{DemandErl: demandErl, CapacityErl: capacityErl}
	for _, qmin := range []float64{0.25, 0.5, 0.75, 0.95} {
		cfg := workload.DefaultAdmissionConfig()
		cfg.Qmin = qmin
		adm, err := workload.NewAdmission(cfg)
		if err != nil {
			return nil, err
		}
		var fresh [workload.NumClasses]float64
		for c := 0; c < workload.NumClasses; c++ {
			rate := erl[c] / cfg.Classes[c].ServiceTime.Seconds()
			fresh[c] = workload.UsersPerTick(rate, dt)
		}
		var qSum float64
		for i := 0; i < steps; i++ {
			arrivals := fresh // Tick mutates nothing, but keep per-call copy explicit
			out := adm.Tick(dt, &arrivals, capacityErl)
			qSum += out.Q
			if err := adm.CheckInvariants(time.Duration(i) * dt); err != nil {
				return nil, fmt.Errorf("users-qmin: qmin %.2f tick %d: %w", qmin, i, err)
			}
		}
		offered := adm.OfferedUsers()
		row := UsersQminRow{
			Qmin:       qmin,
			MeanQ:      qSum / steps,
			EndBacklog: adm.DeferredBacklog(),
		}
		if offered > 0 {
			row.AdmittedFrac = adm.AdmittedUsers() / offered
			row.RejectedFrac = adm.RejectedUsers() / offered
		}
		if adm.AdmittedUsers() > 0 {
			row.DegradedFrac = adm.DegradedUsers() / adm.AdmittedUsers()
		}
		offInt := adm.ClassAdmitted(workload.ClassInteractive) + adm.ClassRejected(workload.ClassInteractive)
		if offInt > 0 {
			row.InteractiveOK = adm.ClassAdmitted(workload.ClassInteractive) / offInt
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
