package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/carbon"
	"repro/internal/fault"
	"repro/internal/geo"
)

// The geo-federation family runs the paper's "Internet data centers"
// plural: N regional facilities with time-zone-shifted user populations
// behind a global router (internal/geo). The single-facility experiments
// show elastic management inside one building; these show the inter-site
// degrees of freedom — pooling offset diurnals flattens global demand,
// regional brownouts drain to healthy siblings instead of melting down,
// and load follows the greenest grid hour by hour.

// geoRegionNames seeds site naming for the federation experiments.
var geoRegionNames = []string{
	"us-east", "eu-west", "ap-south", "us-west",
	"eu-north", "ap-east", "sa-east", "af-south",
}

// geoExpPeakLoginRate doubles the paper's Messenger peak so the site
// fleets below run tight: a site serving its home diurnal alone
// saturates at peak, while the pooled (flatter) global demand fits the
// pooled capacity — the flattening is the experiment's subject.
const geoExpPeakLoginRate = 2800

// geoFederationConfig builds the shared federation: env.Sites regions
// (default 4) spread evenly around the clock with uneven population
// shares, a full facility substrate under site 0, lean fleets, and
// closed-loop retry clients everywhere.
func geoFederationConfig(env *Env, mode geo.RouteMode) geo.Config {
	n := env.FederationSites()
	cfg := geo.Config{
		Seed:          env.Seed,
		Epoch:         30 * time.Minute,
		Tick:          time.Minute,
		Horizon:       24 * time.Hour,
		Mode:          mode,
		PeakLoginRate: geoExpPeakLoginRate,
		Parallel:      true,
		Invariants:    env.InvariantsArmed(),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("site-%d", i)
		if i < len(geoRegionNames) {
			name = geoRegionNames[i]
		}
		sc := geo.SiteConfig{
			Name:            name,
			TZOffset:        time.Duration(i) * 24 * time.Hour / time.Duration(n),
			PopulationShare: float64(2 + i%3),
			FleetSize:       48,
			Retry:           true,
		}
		if i == 0 {
			sc.Facility = true
			sc.FleetSize = 40
		}
		cfg.Sites = append(cfg.Sites, sc)
	}
	return cfg
}

// runGeo executes one federation configuration to its horizon and rolls
// it up. The federation builds its own engines, so its invariant
// checkers are surfaced here rather than through env's probe.
func runGeo(cfg geo.Config) (geo.Result, []geo.SiteResult, error) {
	f, err := geo.New(cfg)
	if err != nil {
		return geo.Result{}, nil, err
	}
	defer f.Close()
	if err := f.Run(); err != nil {
		return geo.Result{}, nil, err
	}
	if err := f.InvariantErr(); err != nil {
		return geo.Result{}, nil, err
	}
	res := f.Result()
	return res, res.Sites, nil
}

// GeoModeRow summarizes one routing mode's federation-wide outcome.
type GeoModeRow struct {
	Mode                string
	EnergyKWh           float64
	PeakPowerKW         float64
	OfferedUsers        float64
	GoodputUsers        float64
	RejectedFrac        float64
	MaxSiteRejectedFrac float64
	BreakerTrips        int64
	GramsCO2e           float64
}

func geoModeRow(res geo.Result) GeoModeRow {
	row := GeoModeRow{
		Mode:         res.Mode,
		EnergyKWh:    res.GlobalEnergyKWh,
		PeakPowerKW:  res.GlobalPeakPowerW / 1e3,
		OfferedUsers: res.OfferedUsers,
		GoodputUsers: res.GoodputUsers,
		RejectedFrac: res.RejectedFrac,
		GramsCO2e:    res.GramsCO2e,
	}
	for _, sr := range res.Sites {
		if sr.RejectedFrac > row.MaxSiteRejectedFrac {
			row.MaxSiteRejectedFrac = sr.RejectedFrac
		}
		row.BreakerTrips += sr.BreakerTrips
	}
	return row
}

func (r GeoModeRow) render() string {
	return fmt.Sprintf("%-9s %9.1f kWh  peak %7.1f kW  rejected %6.2f%% (worst site %6.2f%%)  goodput %10.0f  trips %3d",
		r.Mode, r.EnergyKWh, r.PeakPowerKW, 100*r.RejectedFrac, 100*r.MaxSiteRejectedFrac, r.GoodputUsers, r.BreakerTrips)
}

// ---------------------------------------------------------------------------
// geo-diurnal — pooled time zones flatten global demand (§2, "Internet
// data centers" as a federated system)
// ---------------------------------------------------------------------------

// GeoDiurnalResult contrasts three routing modes over one day of
// time-zone-offset diurnals: home-only serving (no federation), static
// population-share carving, and state-weighted carving.
type GeoDiurnalResult struct {
	SiteCount int
	Home      GeoModeRow
	Static    GeoModeRow
	Weighted  GeoModeRow
	// RejectionCutFrac is the fraction of home-mode rejections the
	// weighted router eliminates by pooling offset peaks.
	RejectionCutFrac float64
	// GoodputGainFrac is the weighted router's goodput gain over home.
	GoodputGainFrac float64
}

// ID implements Result.
func (r *GeoDiurnalResult) ID() string { return "geo-diurnal" }

// Report implements Result.
func (r *GeoDiurnalResult) Report() string {
	var b strings.Builder
	b.WriteString(header("geo-diurnal", fmt.Sprintf("%d federated sites, one day of offset diurnals", r.SiteCount)))
	for _, row := range []GeoModeRow{r.Home, r.Static, r.Weighted} {
		b.WriteString("  " + row.render() + "\n")
	}
	fmt.Fprintf(&b, "  weighted vs home: rejections cut %.1f%%, goodput +%.2f%%\n",
		100*r.RejectionCutFrac, 100*r.GoodputGainFrac)
	return b.String()
}

// RunGeoDiurnal runs the diurnal-flattening comparison.
func RunGeoDiurnal(env *Env) (Result, error) {
	res := &GeoDiurnalResult{SiteCount: env.FederationSites()}
	for _, m := range []struct {
		mode geo.RouteMode
		row  *GeoModeRow
	}{
		{geo.RouteHome, &res.Home},
		{geo.RouteStatic, &res.Static},
		{geo.RouteWeighted, &res.Weighted},
	} {
		out, _, err := runGeo(geoFederationConfig(env, m.mode))
		if err != nil {
			return nil, fmt.Errorf("geo-diurnal %s: %w", m.mode, err)
		}
		*m.row = geoModeRow(out)
	}
	if res.Home.RejectedFrac > 0 {
		res.RejectionCutFrac = 1 - res.Weighted.RejectedFrac/res.Home.RejectedFrac
	}
	if res.Home.GoodputUsers > 0 {
		res.GoodputGainFrac = res.Weighted.GoodputUsers/res.Home.GoodputUsers - 1
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// geo-brownout — a regional capacity dip drains to siblings (§3
// pathologies, federated)
// ---------------------------------------------------------------------------

// GeoSiteRow summarizes the dipped site's outcome under one mode.
type GeoSiteRow struct {
	RejectedFrac float64
	GoodputUsers float64
	BreakerTrips int64
	MeanWeight   float64
	MinWeight    float64
}

// GeoBrownoutResult contrasts a static-share control against the
// weighted router through the same regional brownout: a 70 % capacity
// dip at one site for four hours. The control keeps shoveling the full
// population share at the dipped site — rejections and breaker trips —
// while the router drains the share toward healthy siblings.
type GeoBrownoutResult struct {
	SiteCount  int
	DippedSite int
	DipFrac    float64
	DipHours   float64
	Static     GeoModeRow
	Weighted   GeoModeRow
	// DippedStatic / DippedWeighted are the dipped site's own outcomes.
	DippedStatic   GeoSiteRow
	DippedWeighted GeoSiteRow
	// DrainedShareFrac is how far below its static share the router
	// pushed the dipped site's weight at the dip's deepest point.
	DrainedShareFrac float64
	// GoodputSavedUsers is the extra goodput weighted routing delivered.
	GoodputSavedUsers float64
	// RejectionCutFrac is the fraction of control rejections avoided.
	RejectionCutFrac float64
}

// ID implements Result.
func (r *GeoBrownoutResult) ID() string { return "geo-brownout" }

// Report implements Result.
func (r *GeoBrownoutResult) Report() string {
	var b strings.Builder
	b.WriteString(header("geo-brownout", fmt.Sprintf("%.0f%% capacity dip at site %d for %.0f h",
		100*r.DipFrac, r.DippedSite, r.DipHours)))
	for _, row := range []GeoModeRow{r.Static, r.Weighted} {
		b.WriteString("  " + row.render() + "\n")
	}
	fmt.Fprintf(&b, "  dipped site: static rejected %.1f%% (%d trips), weighted rejected %.1f%% (%d trips)\n",
		100*r.DippedStatic.RejectedFrac, r.DippedStatic.BreakerTrips,
		100*r.DippedWeighted.RejectedFrac, r.DippedWeighted.BreakerTrips)
	fmt.Fprintf(&b, "  router drained %.0f%% of the dipped site's share; goodput saved %.0f users (rejections cut %.1f%%)\n",
		100*r.DrainedShareFrac, r.GoodputSavedUsers, 100*r.RejectionCutFrac)
	return b.String()
}

// RunGeoBrownout runs the regional-brownout comparison.
func RunGeoBrownout(env *Env) (Result, error) {
	res := &GeoBrownoutResult{
		SiteCount:  env.FederationSites(),
		DippedSite: 1,
		DipFrac:    0.7,
		DipHours:   4,
	}
	dip := []fault.Event{{
		Kind:     fault.CapacityDip,
		At:       8 * time.Hour,
		Duration: time.Duration(res.DipHours * float64(time.Hour)),
		Frac:     res.DipFrac,
	}}
	for _, m := range []struct {
		mode geo.RouteMode
		row  *GeoModeRow
		site *GeoSiteRow
	}{
		{geo.RouteStatic, &res.Static, &res.DippedStatic},
		{geo.RouteWeighted, &res.Weighted, &res.DippedWeighted},
	} {
		cfg := geoFederationConfig(env, m.mode)
		cfg.Sites[res.DippedSite].Faults = dip
		out, sites, err := runGeo(cfg)
		if err != nil {
			return nil, fmt.Errorf("geo-brownout %s: %w", m.mode, err)
		}
		*m.row = geoModeRow(out)
		d := sites[res.DippedSite]
		*m.site = GeoSiteRow{
			RejectedFrac: d.RejectedFrac,
			GoodputUsers: d.GoodputUsers,
			BreakerTrips: d.BreakerTrips,
			MeanWeight:   d.MeanWeight,
			MinWeight:    d.MinWeight,
		}
	}
	if s := res.DippedStatic.MeanWeight; s > 0 {
		res.DrainedShareFrac = 1 - res.DippedWeighted.MinWeight/s
	}
	res.GoodputSavedUsers = res.Weighted.GoodputUsers - res.Static.GoodputUsers
	if res.Static.RejectedFrac > 0 {
		res.RejectionCutFrac = 1 - res.Weighted.RejectedFrac/res.Static.RejectedFrac
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// geo-carbon — load follows the greenest grid (§6 cost adaptation,
// carbon as the cost)
// ---------------------------------------------------------------------------

// GeoCarbonResult contrasts carbon-blind and carbon-aware weighted
// routing over grids with different mixes and solar phases: site-local
// solar minima occur at different global hours, so a carbon-aware
// router can chase the dip around the planet.
type GeoCarbonResult struct {
	SiteCount int
	Blind     GeoModeRow
	Aware     GeoModeRow
	// GramsSavedFrac is the emission cut at near-equal goodput.
	GramsSavedFrac float64
	// GoodputCostFrac is the goodput given up for the cut (positive =
	// aware routing delivered less).
	GoodputCostFrac float64
	// GreenestShareGain is the mean-weight gain of the lowest-carbon
	// site when awareness turns on.
	GreenestShareGain float64
}

// ID implements Result.
func (r *GeoCarbonResult) ID() string { return "geo-carbon" }

// Report implements Result.
func (r *GeoCarbonResult) Report() string {
	var b strings.Builder
	b.WriteString(header("geo-carbon", fmt.Sprintf("%d sites, heterogeneous grids, carbon-aware routing", r.SiteCount)))
	for _, it := range []struct {
		label string
		row   GeoModeRow
	}{{"blind", r.Blind}, {"aware", r.Aware}} {
		fmt.Fprintf(&b, "  %-9s %9.1f kWh  %10.0f gCO2e  rejected %6.2f%%  goodput %10.0f\n",
			it.label, it.row.EnergyKWh, it.row.GramsCO2e, 100*it.row.RejectedFrac, it.row.GoodputUsers)
	}
	fmt.Fprintf(&b, "  emissions cut %.2f%% at %.2f%% goodput cost; greenest site's share +%.1f points\n",
		100*r.GramsSavedFrac, 100*r.GoodputCostFrac, 100*r.GreenestShareGain)
	return b.String()
}

// geoCarbonGrids assigns heterogeneous grid mixes: a coal-heavy grid, a
// world-average grid, and a renewables-heavy grid, cycling by site.
func geoCarbonGrids(cfg *geo.Config) {
	grids := []carbon.Model{
		{BaseGPerKWh: 680, Swing: 0.1},
		{BaseGPerKWh: carbon.DefaultGridGPerKWh, Swing: 0.2},
		{BaseGPerKWh: 120, Swing: 0.45},
	}
	for i := range cfg.Sites {
		cfg.Sites[i].Carbon = grids[i%len(grids)]
	}
}

// RunGeoCarbon runs the carbon-aware routing comparison.
func RunGeoCarbon(env *Env) (Result, error) {
	res := &GeoCarbonResult{SiteCount: env.FederationSites()}
	var blindSites, awareSites []geo.SiteResult
	for _, m := range []struct {
		aware bool
		row   *GeoModeRow
		sites *[]geo.SiteResult
	}{
		{false, &res.Blind, &blindSites},
		{true, &res.Aware, &awareSites},
	} {
		cfg := geoFederationConfig(env, geo.RouteWeighted)
		geoCarbonGrids(&cfg)
		cfg.CarbonAware = m.aware
		out, sites, err := runGeo(cfg)
		if err != nil {
			return nil, fmt.Errorf("geo-carbon aware=%v: %w", m.aware, err)
		}
		*m.row = geoModeRow(out)
		*m.sites = sites
	}
	if res.Blind.GramsCO2e > 0 {
		res.GramsSavedFrac = 1 - res.Aware.GramsCO2e/res.Blind.GramsCO2e
	}
	if res.Blind.GoodputUsers > 0 {
		res.GoodputCostFrac = 1 - res.Aware.GoodputUsers/res.Blind.GoodputUsers
	}
	// The greenest grid cycles in at index 2 (and every third site).
	greenest := 2 % len(blindSites)
	res.GreenestShareGain = awareSites[greenest].MeanWeight - blindSites[greenest].MeanWeight
	return res, nil
}
