package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/control"
	"repro/internal/onoff"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// animoto — elastic scale-out through a demand surge (§3, after [5])
// ---------------------------------------------------------------------------

// AnimotoResult compares elastic provisioning against static sizing
// through the quoted 50→3500-server surge.
type AnimotoResult struct {
	PeakDemand     float64
	PeakFleet      int
	ElasticKWh     float64
	StaticPeakKWh  float64
	StaticBaseKWh  float64
	ElasticSaving  float64 // vs static peak provisioning
	ElasticDropped float64 // unmet demand fraction under elastic
	StaticBaseDrop float64 // unmet demand fraction when sized for baseline
}

// ID implements Result.
func (AnimotoResult) ID() string { return "animoto" }

// Report implements Result.
func (r AnimotoResult) Report() string {
	var b strings.Builder
	b.WriteString(header("animoto", "50 -> 3500 server surge in three days (§3, after [5])"))
	fmt.Fprintf(&b, "peak demand: %.0f server-equivalents; elastic fleet peaked at %d servers\n",
		r.PeakDemand, r.PeakFleet)
	fmt.Fprintf(&b, "energy over 10 days: elastic %.0f kWh, static-at-peak %.0f kWh (%.0f%% saved), static-at-baseline %.0f kWh\n",
		r.ElasticKWh, r.StaticPeakKWh, r.ElasticSaving*100, r.StaticBaseKWh)
	fmt.Fprintf(&b, "unmet demand: elastic %.2f%%, static-at-baseline %.0f%% (the non-elastic failure mode)\n",
		r.ElasticDropped*100, r.StaticBaseDrop*100)
	return b.String()
}

// RunAnimoto drives the surge trace through the forecast provisioner.
func RunAnimoto(env *Env) (Result, error) {
	seed := env.Seed
	surge, err := trace.GenerateSurge(trace.DefaultSurgeConfig(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	srv := server.DefaultConfig()
	const decision = 10 * time.Minute
	maxFleet := 4000

	forecaster, err := control.NewHolt(0.6, 0.3)
	if err != nil {
		return nil, err
	}
	prov, err := onoff.NewProvisioner(onoff.ProvisionerConfig{
		CapacityPerServer: 1, // demand is in server-equivalents
		TargetUtil:        0.9,
		Spares:            10,
		Min:               20,
		Max:               maxFleet,
		DownscaleAfter:    6, // an hour of low demand before shrinking
		LookaheadSteps:    2,
		Forecaster:        forecaster,
	})
	if err != nil {
		return nil, err
	}

	idleW := srv.PeakPower * srv.IdleFraction
	dynW := srv.PeakPower - idleW
	var elasticJ float64
	var unmet, offeredTotal float64
	fleetOn := 50
	peakFleet := fleetOn
	bootsPending := 0 // servers whose boot energy we charge
	steps := int(surge.Duration() / decision)
	for i := 0; i < steps; i++ {
		t := time.Duration(i) * decision
		demand := surge.At(t)
		offeredTotal += demand
		served := demand
		if served > float64(fleetOn)*0.98 { // ~full fleet saturation
			served = float64(fleetOn) * 0.98
			unmet += demand - served
		}
		// Energy this step: on-servers at idle + dynamic ∝ served work.
		util := 0.0
		if fleetOn > 0 {
			util = served / float64(fleetOn)
		}
		powerW := float64(fleetOn)*idleW + float64(fleetOn)*dynW*util
		elasticJ += powerW * decision.Seconds()
		elasticJ += float64(bootsPending) * srv.BootEnergy
		bootsPending = 0

		prov.Observe(demand)
		next := prov.Desired(fleetOn)
		if next > fleetOn {
			bootsPending = next - fleetOn
		}
		fleetOn = next
		if fleetOn > peakFleet {
			peakFleet = fleetOn
		}
	}

	// Static baselines: fixed fleets at peak sizing and baseline sizing.
	staticEnergy := func(n int) (joules, dropped float64) {
		for i := 0; i < steps; i++ {
			t := time.Duration(i) * decision
			demand := surge.At(t)
			served := demand
			if served > float64(n)*0.98 {
				served = float64(n) * 0.98
				dropped += demand - served
			}
			util := served / float64(n)
			joules += (float64(n)*idleW + float64(n)*dynW*util) * decision.Seconds()
		}
		return joules, dropped
	}
	peakJ, _ := staticEnergy(int(surge.Max()/0.9) + 1)
	baseJ, baseDrop := staticEnergy(55)

	res := AnimotoResult{
		PeakDemand:     surge.Max(),
		PeakFleet:      peakFleet,
		ElasticKWh:     elasticJ / 3.6e6,
		StaticPeakKWh:  peakJ / 3.6e6,
		StaticBaseKWh:  baseJ / 3.6e6,
		ElasticDropped: unmet / offeredTotal,
		StaticBaseDrop: baseDrop / offeredTotal,
	}
	if peakJ > 0 {
		res.ElasticSaving = 1 - elasticJ/peakJ
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// consolidate — energy-aware provisioning for connection services
// (§3.1/§4.3, after Chen et al. [18])
// ---------------------------------------------------------------------------

// ConsolidateResult compares static peak sizing against forecast-driven
// provisioning on a Messenger-like week.
type ConsolidateResult struct {
	StaticServers int
	StaticKWh     float64
	ElasticKWh    float64
	Saving        float64
	MeanFleet     float64
	OverloadFrac  float64 // decision periods where capacity < demand
}

// ID implements Result.
func (ConsolidateResult) ID() string { return "consolidate" }

// Report implements Result.
func (r ConsolidateResult) Report() string {
	var b strings.Builder
	b.WriteString(header("consolidate", "energy-aware server provisioning (§3.1/§4.3, after [18])"))
	fmt.Fprintf(&b, "static fleet: %d servers, %.0f kWh/week\n", r.StaticServers, r.StaticKWh)
	fmt.Fprintf(&b, "elastic fleet: mean %.1f servers, %.0f kWh/week (%.0f%% saved)\n",
		r.MeanFleet, r.ElasticKWh, r.Saving*100)
	fmt.Fprintf(&b, "decision periods with insufficient capacity: %.2f%%\n", r.OverloadFrac*100)
	return b.String()
}

// RunConsolidate drives the Figure-3 workload through the connection
// service model.
func RunConsolidate(env *Env) (Result, error) {
	seed := env.Seed
	m, err := trace.GenerateMessenger(trace.DefaultMessengerConfig(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	svc := workload.DefaultConnectionService()
	srv := server.DefaultConfig()
	idleW := srv.PeakPower * srv.IdleFraction
	dynW := srv.PeakPower - idleW
	const decision = 5 * time.Minute
	steps := int(m.Connections.Duration() / decision)

	// Static sizing: peak connections and peak logins with 20 % headroom.
	staticN := svc.ServersNeeded(m.Connections.Max()*1.2, m.Logins.Max()*1.2)

	prov, err := onoff.NewProvisioner(onoff.ProvisionerConfig{
		CapacityPerServer: svc.ConnsPerServer,
		TargetUtil:        0.75,
		Spares:            3,
		Min:               4,
		Max:               staticN,
		DownscaleAfter:    6,
		LookaheadSteps:    2,
	})
	if err != nil {
		return nil, err
	}

	var staticJ, elasticJ float64
	var overload int
	fleetOn := staticN / 2
	var fleetSum float64
	for i := 0; i < steps; i++ {
		t := time.Duration(i) * decision
		conns := m.Connections.At(t)
		logins := m.Logins.At(t)

		// Static: all servers on, load spread.
		uStatic := svc.Utilization(conns, logins, staticN)
		staticJ += (float64(staticN)*idleW + float64(staticN)*dynW*uStatic) * decision.Seconds()

		// Elastic: current fleet carries the load (or overloads).
		need := svc.ServersNeeded(conns, logins)
		if fleetOn < need {
			overload++
		}
		uElastic := svc.Utilization(conns, logins, fleetOn)
		elasticJ += (float64(fleetOn)*idleW + float64(fleetOn)*dynW*uElastic) * decision.Seconds()
		fleetSum += float64(fleetOn)

		// Provision on combined constraint: convert login pressure into
		// connection-equivalents so one forecast drives both.
		loginEquiv := logins / svc.LoginsPerServerSec * svc.ConnsPerServer
		loadEquiv := conns
		if loginEquiv > loadEquiv {
			loadEquiv = loginEquiv
		}
		prov.Observe(loadEquiv)
		next := prov.Desired(fleetOn)
		if next > fleetOn {
			elasticJ += float64(next-fleetOn) * srv.BootEnergy
		}
		fleetOn = next
	}

	res := ConsolidateResult{
		StaticServers: staticN,
		StaticKWh:     staticJ / 3.6e6,
		ElasticKWh:    elasticJ / 3.6e6,
		MeanFleet:     fleetSum / float64(steps),
		OverloadFrac:  float64(overload) / float64(steps),
	}
	if staticJ > 0 {
		res.Saving = 1 - elasticJ/staticJ
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// interfere — VM interference and correlation-aware co-location
// (§4.4, §5.2)
// ---------------------------------------------------------------------------

// InterfereResult quantifies both placement phenomena.
type InterfereResult struct {
	// Disk contention (§4.4).
	NaiveIOPS, AwareIOPS float64
	ThroughputLoss       float64
	// Power-peak stacking (§5.2).
	NaiveWorstPeak float64
	SmartWorstPeak float64
	NaiveCapFrac   float64
	SmartCapFrac   float64
}

// ID implements Result.
func (InterfereResult) ID() string { return "interfere" }

// Report implements Result.
func (r InterfereResult) Report() string {
	var b strings.Builder
	b.WriteString(header("interfere", "VM interference and anti-correlated co-location (§4.4, §5.2)"))
	fmt.Fprintf(&b, "disk: naive packing effective IOPS %.0f vs interference-aware %.0f (%.0f%% throughput lost)\n",
		r.NaiveIOPS, r.AwareIOPS, r.ThroughputLoss*100)
	fmt.Fprintf(&b, "power: worst host CPU peak naive %.1f vs correlation-aware %.1f cores\n",
		r.NaiveWorstPeak, r.SmartWorstPeak)
	fmt.Fprintf(&b, "time above 80%%-of-capacity power cap: naive %.1f%% vs correlation-aware %.1f%%\n",
		r.NaiveCapFrac*100, r.SmartCapFrac*100)
	return b.String()
}

// RunInterfere runs both placements.
func RunInterfere(env *Env) (Result, error) {
	seed := env.Seed
	rng := sim.NewRNG(seed)

	// --- Disk contention: 8 disk-heavy VMs over 8 hosts. ---
	mkHosts := func() []*vm.Host {
		var hs []*vm.Host
		for i := 0; i < 8; i++ {
			h, err := vm.NewHost(fmt.Sprintf("h%d", i),
				vm.Resources{CPU: 16, MemGB: 64, DiskIOPS: 1000})
			if err != nil {
				panic(err) // static valid config
			}
			hs = append(hs, h)
		}
		return hs
	}
	mkIOVMs := func() []*vm.VM {
		var vms []*vm.VM
		for i := 0; i < 8; i++ {
			vms = append(vms, &vm.VM{
				Name: fmt.Sprintf("io%d", i),
				Size: vm.Resources{CPU: 2, MemGB: 8, DiskIOPS: 400},
			})
		}
		return vms
	}
	naiveHosts := mkHosts()
	if _, err := vm.Place(mkIOVMs(), naiveHosts, vm.BestFit); err != nil {
		return nil, err
	}
	awareHosts := mkHosts()
	if _, err := vm.Place(mkIOVMs(), awareHosts, vm.InterferenceAware); err != nil {
		return nil, err
	}
	sumIOPS := func(hs []*vm.Host) float64 {
		var total float64
		for _, h := range hs {
			if len(h.VMs()) > 0 {
				total += h.EffectiveDiskIOPS()
			}
		}
		return total
	}
	naiveIOPS, awareIOPS := sumIOPS(naiveHosts), sumIOPS(awareHosts)

	// --- Power-peak stacking: 16 diurnal VMs, half day- half night-
	// peaking, over 8 hosts with a CPU-peak "cap" at 80 % of capacity. ---
	mkDiurnalVMs := func() []*vm.VM {
		var vms []*vm.VM
		for i := 0; i < 16; i++ {
			// First eight VMs peak in the day, the rest at night, so a
			// placement that ignores correlation (first-fit in arrival
			// order) stacks same-phase VMs together.
			peak := 14.0
			if i >= 8 {
				peak = 2.0
			}
			cfg := trace.DefaultDiurnalConfig()
			cfg.Duration = 48 * time.Hour
			cfg.Step = 10 * time.Minute
			cfg.PeakHour = peak
			cfg.Mean = 0.45
			cfg.Swing = 0.9
			cfg.NoiseSD = 0.03
			cfg.BurstRate = 0
			s, err := trace.GenerateDiurnal(cfg, rng.Fork(fmt.Sprintf("vm%d", i)))
			if err != nil {
				panic(err) // valid static config
			}
			// Normalize so each VM peaks near its full reservation.
			s.Normalize(1.0)
			vms = append(vms, &vm.VM{
				Name:      fmt.Sprintf("v%d", i),
				Size:      vm.Resources{CPU: 8, MemGB: 16, DiskIOPS: 50},
				CPUDemand: s,
			})
		}
		return vms
	}
	naive2 := mkHosts()
	if _, err := vm.Place(mkDiurnalVMs(), naive2, vm.FirstFit); err != nil {
		return nil, err
	}
	smart2 := mkHosts()
	if _, err := vm.Place(mkDiurnalVMs(), smart2, vm.CorrelationAware); err != nil {
		return nil, err
	}
	worstPeak := func(hs []*vm.Host) float64 {
		var w float64
		for _, h := range hs {
			if p := h.CPUPeak(); p > w {
				w = p
			}
		}
		return w
	}
	capFrac := func(hs []*vm.Host) float64 {
		// Fraction of (host, time) samples above the 80 % CPU cap.
		const capLevel = 16 * 0.8
		var over, total int
		for _, h := range hs {
			if len(h.VMs()) == 0 {
				continue
			}
			for i := 0; i < 48*6; i++ {
				t := time.Duration(i) * 10 * time.Minute
				if h.CPUDemandAt(t) > capLevel {
					over++
				}
				total++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(over) / float64(total)
	}

	res := InterfereResult{
		NaiveIOPS:      naiveIOPS,
		AwareIOPS:      awareIOPS,
		NaiveWorstPeak: worstPeak(naive2),
		SmartWorstPeak: worstPeak(smart2),
		NaiveCapFrac:   capFrac(naive2),
		SmartCapFrac:   capFrac(smart2),
	}
	if awareIOPS > 0 {
		res.ThroughputLoss = 1 - naiveIOPS/awareIOPS
	}

	return res, nil
}
