// Package exp contains one runnable experiment per figure and per
// quantitative claim of the paper (the index in DESIGN.md §3). Each
// experiment builds its scenario from the library's substrates, runs it
// deterministically from a seed, and returns a typed result whose Report
// prints the rows/series the paper's figure or claim corresponds to.
// EXPERIMENTS.md records paper-claimed vs measured values per experiment.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/invariant"
	"repro/internal/par"
	"repro/internal/sim"
)

// Result is one experiment's outcome.
type Result interface {
	// ID is the experiment identifier (fig1 … tier2).
	ID() string
	// Report renders the human-readable rows for the experiment.
	Report() string
}

// Env is the per-run environment handed to every experiment runner: the
// deterministic seed plus a kernel probe through which the parallel
// harness observes engine-level statistics (events fired, peak queue
// depth). Experiments create engines via Env.NewEngine so the probe sees
// every engine a run constructs; determinism is untouched because the
// engine is still seeded exactly as before.
type Env struct {
	// Seed is the run's deterministic seed.
	Seed int64
	// Scale multiplies the facility size of the fig4-family experiments
	// (servers per rack, rack power ratings, zone airflow, plant fans),
	// so scale runs are reproducible from the CLI. 0 or 1 is the paper's
	// scale and produces byte-identical results to the pre-knob runs.
	Scale int
	// Workers sets the execution width of the sharded per-tick loops:
	// 0 means GOMAXPROCS, 1 forces inline execution. Any value produces
	// identical results — shard structure depends only on fleet size —
	// so the knob trades wall-clock time only.
	Workers int
	// Sites sets the federated-site count of the geo-family experiments
	// (0 → each experiment's default of 4; minimum 2). Unlike Workers,
	// this changes the scenario, so golden comparisons hold only at the
	// default.
	Sites   int
	pool    *par.Pool
	poolSet bool
	probe   sim.Probe
	// checker asserts physical-law invariants after every event of every
	// engine this run creates. Armed by default; DisarmInvariants turns
	// it off (e.g. for overhead-sensitive benchmarks).
	checker *invariant.Checker
}

// NewEnv builds a run environment for the given seed with invariant
// checking armed.
func NewEnv(seed int64) *Env {
	return &Env{Seed: seed, checker: invariant.NewChecker()}
}

// FederationSites reports the effective federated-site count for the
// geo-family experiments (default 4, minimum 2).
func (v *Env) FederationSites() int {
	if v.Sites >= 2 {
		return v.Sites
	}
	return 4
}

// FleetScale reports the effective facility multiplier (minimum 1).
func (v *Env) FleetScale() int {
	if v.Scale < 1 {
		return 1
	}
	return v.Scale
}

// Pool returns the run's shared worker pool, creating it on first use
// from the Workers knob (nil when the effective width is 1 — inline
// execution). Callers pass it into DataCenterConfig/ManagerConfig; Close
// releases it.
func (v *Env) Pool() *par.Pool {
	if !v.poolSet {
		w := v.Workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		v.pool = par.New(w)
		v.poolSet = true
	}
	return v.pool
}

// Close releases the run's worker pool (idempotent; safe when no pool
// was ever created). Pool() after Close would leak, so don't.
func (v *Env) Close() {
	v.pool.Close()
	v.pool = nil
	v.poolSet = true
}

// DisarmInvariants turns off runtime invariant checking for engines
// created after the call.
func (v *Env) DisarmInvariants() { v.checker = nil }

// InvariantsArmed reports whether runtime invariant checking is on.
func (v *Env) InvariantsArmed() bool { return v.checker != nil }

// NewEngine constructs an engine seeded with seed and registers it with
// the run's probe. Experiments that build several engines (e.g. one per
// policy mode) call it once per engine, usually with env.Seed so the
// modes see identical stochastic inputs. When invariants are armed the
// checker rides the engine's after-event hook.
func (v *Env) NewEngine(seed int64) *sim.Engine {
	e := v.probe.Observe(sim.NewEngine(seed))
	if v.checker != nil {
		v.checker.Attach(e)
	}
	return e
}

// Stats snapshots the kernel counters of every engine this run created.
func (v *Env) Stats() sim.Stats { return v.probe.Stats() }

// InvariantErr reports the first named invariant violation observed by
// this run's checker (nil when disarmed or clean).
func (v *Env) InvariantErr() error {
	if v.checker == nil {
		return nil
	}
	return v.checker.Err()
}

// InvariantViolations returns the accumulated violations (empty when
// disarmed or clean).
func (v *Env) InvariantViolations() []invariant.Violation {
	if v.checker == nil {
		return nil
	}
	return v.checker.Violations()
}

// Runner executes an experiment in a run environment.
type Runner func(env *Env) (Result, error)

// registry maps experiment ids to runners. Populated by Register calls
// from each experiment file's declarations (explicit, not init()).
func registry() map[string]Runner {
	return map[string]Runner{
		"fig1":        RunFig1,
		"fig2":        RunFig2,
		"fig3":        RunFig3,
		"fig4":        RunFig4,
		"idle60":      RunIdle60,
		"pue2":        RunPUE2,
		"animoto":     RunAnimoto,
		"oversub":     RunOversub,
		"pathology":   RunPathology,
		"crac":        RunCRAC,
		"consolidate": RunConsolidate,
		"interfere":   RunInterfere,
		"telemetry":   RunTelemetry,
		"sensornet":   RunSensorNet,
		"dvfs":        RunDVFS,
		"tier2":       RunTier2,
		// Extensions: research directions the paper sketches plus
		// ablations of this library's design choices.
		"capping":           RunCapping,
		"tiers":             RunTiers,
		"parking":           RunParking,
		"distributed":       RunDistributed,
		"hetero":            RunHetero,
		"geo":               RunGeo,
		"ablate-dc":         RunAblateDC,
		"ablate-forecast":   RunAblateForecast,
		"ablate-ladder":     RunAblateLadder,
		"ablate-hysteresis": RunAblateHysteresis,
		// Fault-response family: injected failures against the
		// graceful-degradation layer.
		"fault-outage": RunFaultOutage,
		"fault-crac":   RunFaultCRAC,
		"fault-sensor": RunFaultSensor,
		// Request-level family: batched admission control measured by
		// user-visible outcomes (rejections, degradation, SLO misses).
		"users-surge": RunUsersSurge,
		"users-flash": RunUsersFlash,
		"users-qmin":  RunUsersQmin,
		// Metastability family: closed-loop client retries, circuit
		// breaking, and correlated power-domain faults.
		"retry-storm":  RunRetryStorm,
		"retry-budget": RunRetryBudget,
		"fault-rack":   RunFaultRack,
		// Geo-federation: N regional facilities behind the deterministic
		// global router (internal/geo).
		"geo-diurnal":  RunGeoDiurnal,
		"geo-brownout": RunGeoBrownout,
		"geo-carbon":   RunGeoCarbon,
	}
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	reg := registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Known reports whether id names a registered experiment.
func Known(id string) bool {
	_, ok := registry()[id]
	return ok
}

// Run executes one experiment by id from a seed.
func Run(id string, seed int64) (Result, error) {
	env := NewEnv(seed)
	defer env.Close()
	return RunEnv(id, env)
}

// RunEnv executes one experiment by id in a caller-supplied environment.
// The harness uses this form so it can read env.Stats() afterwards.
func RunEnv(id string, env *Env) (Result, error) {
	r, ok := registry()[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	res, err := r(env)
	if err != nil {
		return res, err
	}
	if verr := env.InvariantErr(); verr != nil {
		return res, fmt.Errorf("exp %s: %w", id, verr)
	}
	return res, nil
}

// header renders a report header line.
func header(id, title string) string {
	return fmt.Sprintf("=== %s — %s ===\n", id, title)
}
