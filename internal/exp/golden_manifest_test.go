package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// preRequestGoldenSHA256 pins the byte content of every golden fixture
// that predates the geo-federation experiment family. Each new opt-in
// layer — request-level admission, the closed retry loop, and now the
// federated router — must leave every pre-existing experiment
// byte-identical: the machinery is opt-in per experiment, so adding it
// cannot legally perturb an experiment that never wired it. If one of
// these changes intentionally, regenerate with -update and update the
// hash here in the same commit, with the reason in the message.
var preRequestGoldenSHA256 = map[string]string{
	"ablate-dc.json":         "ce720da644369646b8f7cc4ee8f8be73be82b64547a3a313cbf5b2dd64201e7e",
	"ablate-forecast.json":   "c46e11317acbf91f05516fe82ec3d8c6ae89de7a246ea86310e309e9ac27ad71",
	"ablate-hysteresis.json": "ff498c71cf3d52c02410f979a907d4dea339f394a259fc0c65e171655f061dac",
	"ablate-ladder.json":     "fea9c49f2fc4ea0425c72c40d8e57da9622a6bbc1839c11941972c4f484ee6f2",
	"animoto.json":           "3e0b742f4325471b8ec90c0c52972edd9e68bc0ec7459c8f3bbf1f04f4bc6e09",
	"capping.json":           "b5f83e309e8db266d332085afb69745e440a491e0a0ae47b68750a82321ded03",
	"consolidate.json":       "6124206359be8d0c30fd55ee1c7acc631f69e7d85217ccd4f8bf868d495e217d",
	"crac.json":              "662e19dbf4240260a4309f0c93a0be896f0c4653ec5c57c6d23a594d7f609b41",
	"distributed.json":       "d5e038da2861131be8742dc3c3c7b8adb138ee75fc3bf97913bf91d022b765bf",
	"dvfs.json":              "2d78e6a2ca5bf82bd4ed356f6b062e1c2b772ffeb7c9bf3b1694d6e640c3b244",
	"fault-crac.json":        "ea14ffda9eac0f30231adba7000cd436c59129135a0fb16c46b111637423069b",
	"fault-outage.json":      "708e36122c39b9c4ae2c48f85636c3c66bad93987a94c859ebfa8d3236cdff13",
	"fault-sensor.json":      "1adf98b2a6fe58975fb68eb347d5790a9d311386d9f0b86020985687b18b0a82",
	"fig1.json":              "85059953f3c1e75af0c1d193098df76ea777897b33e5dfce928d19d32c5d6d96",
	"fig2.json":              "508351a724c9901b001bb3ef65eeda205763f0cd31e9eacb21cce61dadd94f81",
	"fig3.json":              "c7a97a2c6698fa87cdb06ab9882b3995792a31e5ea41cf199bf1c92621c86f05",
	"fig4.json":              "76dde63bf65e8030b0f10d2c637bc43a4a344c20ac3147d3ac53d3c932fa7bde",
	"geo.json":               "4d37120bde4171e01109180ddad670e1e876a068cd268eb2596963940f3dd26f",
	"hetero.json":            "94d852845fb26c57666341caffaf8889e5b8a096be696ca25183412016e137cf",
	"idle60.json":            "5380c24653aa73270b46f73535faee87cef86223378e42d8c51c9b56608e1762",
	"interfere.json":         "340b5179f7eed3c0d46e6d3d478bbcdb7c0de0f19e451c230111ef4a7b354f39",
	"oversub.json":           "18bb6bd01c54b8d74e313dc0851adddff3fb7848721f1412fcc10afbb591f514",
	"parking.json":           "3a53f9c39d2fc86870fdd3e4c946b3cb690d41b4c6a814d197d3e6c14e25fb50",
	"pathology.json":         "73cf2cf5813cc520d242356ce44de1221063c0b549ac7f3153e36d4c9f4638fd",
	"pue2.json":              "985314d5c4bfd531821120ea05f1d0ecabb430c448318b1141b547881f91eace",
	"retry-budget.json":      "a70ae2c1457d832bb31bd4a2bfe67ae69bfb20475347b1c0b875e8f36c02642a",
	"retry-storm.json":       "5fb714f76fe61653abecafe35cc491f26a67f636070ebe16e0e61ef4280eac50",
	"fault-rack.json":        "03c36428837334373085f36bc0d4c891d7c9321a655d6045d02e185aa5f57dde",
	"sensornet.json":         "fdf334734b4c3ce3eed3edabbd753a7b95e343e8be6a7cb11d6163ed63049b2b",
	"telemetry.json":         "395bc553980c1b09abae532db32f3e05859b1109afb100b7745aff89da81efa6",
	"tier2.json":             "9aaf6ebe7cafc1714eb291f27afff5635bcec09f89366dbc429d71b7fda119f5",
	"tiers.json":             "73938b7d1018ff7f3868b4e976affdf78c9a30574152590eeddf7f158212a997",
	"users-flash.json":       "c1a193346c53c63baa5a2b5e1b18e355a5b40b87f26bd3af8ba46057d570a97d",
	"users-qmin.json":        "70cd8c37e7b87a1ddd59507e2770430314968d456b11744aacc57c9f646ac258",
	"users-surge.json":       "dccf919852bf24f2579722bd017c00dc94b3090f1bd4dafed0f56bc3cd5f80e3",
}

// TestFluidGoldensByteIdentical is the differential pin: the fixtures of
// every pre-existing experiment must remain byte-for-byte what they were
// before the newest opt-in family landed.
func TestFluidGoldensByteIdentical(t *testing.T) {
	for name, want := range preRequestGoldenSHA256 {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != want {
			t.Errorf("%s: fixture bytes changed (sha256 %s, pinned %s) — fluid-only goldens must stay byte-identical",
				name, got, want)
		}
	}
}
