package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/onoff"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// pathology — oblivious DVFS × on/off composition (§5.1, after [29])
// ---------------------------------------------------------------------------

// PathologyRow is one policy mode's outcome.
type PathologyRow struct {
	Mode          core.PolicyMode
	EnergyKWh     float64
	MeanActive    float64
	Switches      int
	ViolationRate float64
	WorstResponse time.Duration
}

// PathologyResult compares the five policy compositions on the same
// diurnal workload.
type PathologyResult struct {
	Rows []PathologyRow
}

// ID implements Result.
func (PathologyResult) ID() string { return "pathology" }

// Report implements Result.
func (r PathologyResult) Report() string {
	var b strings.Builder
	b.WriteString(header("pathology", "oblivious DVFS+on/off composition wastes energy (§5.1)"))
	b.WriteString("mode         energy_kWh  mean_active  switches  sla_viol  worst_resp\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10.2f  %11.1f  %8d  %8.3f  %10v\n",
			row.Mode, row.EnergyKWh, row.MeanActive, row.Switches,
			row.ViolationRate, row.WorstResponse.Round(time.Millisecond))
	}
	b.WriteString("shape check: oblivious > {dvfs-only, onoff-only}; coordinated <= all\n")
	return b.String()
}

// pathologyManagerConfig is the shared scenario for all modes. initialOn
// is the starting (and, for DVFS-only, permanent) active count.
func pathologyManagerConfig(mode core.PolicyMode, fleet, initialOn int) core.ManagerConfig {
	return core.ManagerConfig{
		ServerConfig:   server.DefaultConfig(),
		FleetSize:      fleet,
		Queue:          workload.DefaultQueueModel(),
		SLA:            100 * time.Millisecond,
		DecisionPeriod: time.Minute,
		Mode:           mode,
		DVFSTarget:     0.8,
		Trigger: onoff.DelayTrigger{
			High: 60 * time.Millisecond, Low: 25 * time.Millisecond,
			StepUp: 1, StepDown: 1, Min: 1, Max: fleet,
		},
		InitialOn: initialOn,
	}
}

// RunPathology runs all five modes on a 3-day diurnal demand.
func RunPathology(env *Env) (Result, error) {
	seed := env.Seed
	const fleet = 40
	srv := server.DefaultConfig()
	demand := func(now time.Duration) float64 {
		h := now.Hours() - 24*float64(int(now.Hours()/24))
		frac := 0.15 + 0.35*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * fleet * srv.Capacity
	}
	// DVFS-only keeps a fixed fleet, so it must be sized for the peak
	// (ceil(peak / (capacity × 0.8)) with the 100 ms SLA's ρmax = 0.8);
	// the elastic modes start at a quarter of the fleet.
	peakOffered := 0.5 * fleet * srv.Capacity
	peakSized := int(math.Ceil(peakOffered / (srv.Capacity * 0.8)))
	var res PathologyResult
	for _, mode := range []core.PolicyMode{
		core.ModeAlwaysOn, core.ModeOnOffOnly, core.ModeDVFSOnly,
		core.ModeOblivious, core.ModeCoordinated,
	} {
		initialOn := fleet / 4
		if mode == core.ModeDVFSOnly {
			initialOn = peakSized
		}
		e := env.NewEngine(seed)
		m, err := core.NewManager(e, pathologyManagerConfig(mode, fleet, initialOn), demand)
		if err != nil {
			return nil, err
		}
		m.Start()
		const horizon = 3 * 24 * time.Hour
		if err := e.Run(horizon); err != nil {
			return nil, err
		}
		rr := m.Result(horizon)
		res.Rows = append(res.Rows, PathologyRow{
			Mode:          mode,
			EnergyKWh:     rr.EnergyKWh,
			MeanActive:    rr.MeanActive,
			Switches:      rr.SwitchOns + rr.SwitchOffs,
			ViolationRate: rr.SLAViolationRate,
			WorstResponse: rr.WorstResponse,
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// dvfs — control-based DVFS holds response time (§4.2, after [21])
// ---------------------------------------------------------------------------

// DVFSResult compares feedback DVFS against always-fastest on one server
// under a diurnal load.
type DVFSResult struct {
	BaselineKWh   float64
	FeedbackKWh   float64
	EnergySaving  float64
	ViolationRate float64
	MeanPState    float64
}

// ID implements Result.
func (DVFSResult) ID() string { return "dvfs" }

// Report implements Result.
func (r DVFSResult) Report() string {
	var b strings.Builder
	b.WriteString(header("dvfs", "control-based DVFS with response-time setpoint (§4.2)"))
	fmt.Fprintf(&b, "always-fastest: %.3f kWh; feedback DVFS: %.3f kWh (%.0f%% saved)\n",
		r.BaselineKWh, r.FeedbackKWh, r.EnergySaving*100)
	fmt.Fprintf(&b, "SLA violation rate under feedback: %.3f; mean p-state index: %.2f\n",
		r.ViolationRate, r.MeanPState)
	return b.String()
}

// RunDVFS runs a single server's closed loop for 24 hours.
func RunDVFS(env *Env) (Result, error) {
	seed := env.Seed
	cfg := server.DefaultConfig()
	q := workload.DefaultQueueModel()
	const sla = 120 * time.Millisecond
	load := func(now time.Duration) float64 {
		h := now.Hours() - 24*float64(int(now.Hours()/24))
		return cfg.Capacity * (0.15 + 0.35*0.5*(1+math.Cos(2*math.Pi*(h-14)/24)))
	}

	run := func(useFeedback bool) (kwh float64, violRate float64, meanPState float64, err error) {
		e := env.NewEngine(seed)
		s, err := server.New(cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		s.PowerOn(e)
		if err := e.Run(cfg.BootDelay); err != nil {
			return 0, 0, 0, err
		}
		var policy *dvfs.ResponseFeedback
		if useFeedback {
			policy, err = dvfs.NewResponseFeedback(cfg.PStates, sla, 1.0)
			if err != nil {
				return 0, 0, 0, err
			}
		}
		var viol, ticks, stateSum int
		e.Every(time.Minute, func(eng *sim.Engine) {
			now := eng.Now()
			offered := load(now)
			cap := s.AvailableCapacity()
			rho := 1.0
			if cap > 0 {
				rho = math.Min(1, offered/cap)
			}
			s.SetUtilization(now, rho)
			resp := q.Response(rho)
			if resp > sla {
				viol++
			}
			ticks++
			stateSum += s.PStateIndex()
			if policy != nil {
				idx := policy.Decide(resp, time.Minute)
				if err := s.SetPState(now, idx); err != nil {
					panic(err) // ladder indexes are valid by construction
				}
			}
		})
		horizon := 24*time.Hour + cfg.BootDelay
		if err := e.Run(horizon); err != nil {
			return 0, 0, 0, err
		}
		s.Sync(horizon)
		return s.EnergyJ() / 3.6e6, float64(viol) / float64(ticks), float64(stateSum) / float64(ticks), nil
	}

	baseKWh, _, _, err := run(false)
	if err != nil {
		return nil, err
	}
	fbKWh, viol, meanPS, err := run(true)
	if err != nil {
		return nil, err
	}
	return DVFSResult{
		BaselineKWh:   baseKWh,
		FeedbackKWh:   fbKWh,
		EnergySaving:  1 - fbKWh/baseKWh,
		ViolationRate: viol,
		MeanPState:    meanPS,
	}, nil
}

// ---------------------------------------------------------------------------
// crac — CRAC sensitivity migration hazard (§5.1, after [30])
// ---------------------------------------------------------------------------

// CRACResult contrasts a sensitivity-oblivious migration (shift all load
// to the poorly-regulated zone B and shut zone A down) with a
// sensitivity-aware MRM decision (keep the load in the well-regulated
// zone A).
type CRACResult struct {
	NaiveMaxInletB float64
	NaiveTrips     int
	AwareMaxInlet  float64
	AwareTrips     int
	SupplyRiseC    float64 // how much the CRAC relaxed after A emptied
}

// ID implements Result.
func (CRACResult) ID() string { return "crac" }

// Report implements Result.
func (r CRACResult) Report() string {
	var b strings.Builder
	b.WriteString(header("crac", "CRAC-sensitivity-oblivious migration risks thermal alarms (§5.1)"))
	fmt.Fprintf(&b, "naive migration A->B:  zone-B inlet peaks %.1f degC, thermal trips: %d\n",
		r.NaiveMaxInletB, r.NaiveTrips)
	fmt.Fprintf(&b, "sensitivity-aware MRM: hottest inlet %.1f degC, thermal trips: %d\n",
		r.AwareMaxInlet, r.AwareTrips)
	fmt.Fprintf(&b, "CRAC supply relaxed by %.1f degC after its sensitive zone emptied\n", r.SupplyRiseC)
	return b.String()
}

// crackServers builds 2×n servers, n per zone, and returns them. The
// protective trip threshold is a realistic 33 °C inlet (ASHRAE max is
// 25 °C; protection engages well above the envelope).
func crackServers(e *sim.Engine, n int) ([]*server.Server, error) {
	cfg := server.DefaultConfig()
	cfg.TripTempC = 33
	out := make([]*server.Server, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		c := cfg
		c.Name = fmt.Sprintf("srv-%02d", i)
		s, err := server.New(c)
		if err != nil {
			return nil, err
		}
		s.PowerOn(e)
		out = append(out, s)
	}
	return out, nil
}

// RunCRAC reproduces the §5.1 scenario end to end with real servers that
// trip.
func RunCRAC(env *Env) (Result, error) {
	seed := env.Seed
	const perZone = 100
	runScenario := func(migrate bool) (maxInletB, maxInletAny, supplyRise float64, trips int, err error) {
		e := env.NewEngine(seed)
		room, err := cooling.TwoZoneRoom(0.85, 0.35)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		room.Attach(e)
		servers, err := crackServers(e, perZone)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if err := e.Run(2 * time.Minute); err != nil { // boot
			return 0, 0, 0, 0, err
		}
		// Phase 1: heavy load in zone A (servers 0..perZone-1), light in B.
		setLoad := func(now time.Duration, aU, bU float64) {
			for i, s := range servers {
				if i < perZone {
					s.SetUtilization(now, aU)
				} else {
					s.SetUtilization(now, bU)
				}
			}
		}
		setLoad(e.Now(), 0.9, 0.10)
		migrated := false
		supplyBefore := 0.0
		// Coupling loop: heat in, inlets out, trips counted.
		e.Every(room.PhysicsTick(), func(eng *sim.Engine) {
			now := eng.Now()
			var heatA, heatB float64
			for i, s := range servers {
				s.Sync(now)
				if i < perZone {
					heatA += s.Power()
				} else {
					heatB += s.Power()
				}
			}
			_ = room.SetZoneHeat(0, heatA)
			_ = room.SetZoneHeat(1, heatB)
			for i, s := range servers {
				zone := 0
				if i >= perZone {
					zone = 1
				}
				if s.ObserveInlet(now, room.ZoneInletC(zone)) {
					trips++
				}
			}
			inB := room.ZoneInletC(1)
			if inB > maxInletB {
				maxInletB = inB
			}
			if inA := room.ZoneInletC(0); inA > maxInletAny {
				maxInletAny = inA
			}
			if inB > maxInletAny {
				maxInletAny = inB
			}
		})
		// Phase 2 at t=4h: the migration decision.
		e.ScheduleAt(4*time.Hour, func(eng *sim.Engine) {
			supplyBefore = room.CRACSetpointC(0)
			if migrate {
				// Naive: move everything to B, shut A down.
				now := eng.Now()
				for i, s := range servers {
					if i < perZone {
						s.SetUtilization(now, 0)
						s.PowerOff(eng)
					} else {
						s.SetUtilization(now, 0.95)
					}
				}
				migrated = true
			}
			// Aware: keep load in the well-regulated zone A (no-op).
		})
		if err := e.Run(12 * time.Hour); err != nil {
			return 0, 0, 0, 0, err
		}
		_ = migrated
		supplyRise = room.CRACSetpointC(0) - supplyBefore
		return maxInletB, maxInletAny, supplyRise, trips, nil
	}

	nb, _, rise, ntrips, err := runScenario(true)
	if err != nil {
		return nil, err
	}
	_, aAny, _, atrips, err := runScenario(false)
	if err != nil {
		return nil, err
	}
	return CRACResult{
		NaiveMaxInletB: nb,
		NaiveTrips:     ntrips,
		AwareMaxInlet:  aAny,
		AwareTrips:     atrips,
		SupplyRiseC:    rise,
	}, nil
}
