package exp

import (
	"testing"
)

func TestCappingExp(t *testing.T) {
	res := run(t, "capping").(CappingResult)
	if res.UnprotectedOverCap <= 0.05 {
		t.Errorf("unprotected over-cap time = %v, want substantial (oversubscribed rack)",
			res.UnprotectedOverCap)
	}
	if res.ProtectedOverCap > 0.02 {
		t.Errorf("protected over-cap time = %v, want near zero", res.ProtectedOverCap)
	}
	if res.ThroughputKept < 0.95 || res.ThroughputKept > 1.0+1e-9 {
		t.Errorf("throughput kept = %v, want most of it", res.ThroughputKept)
	}
	if res.ThrottleEvents == 0 {
		t.Error("no throttle events despite enforcement")
	}
}

func TestGeoExp(t *testing.T) {
	res := run(t, "geo").(GeoResult)
	if res.RoutedKWh >= res.HomeKWh {
		t.Errorf("routing %v kWh not below home-only %v kWh", res.RoutedKWh, res.HomeKWh)
	}
	if res.Saving < 0.05 {
		t.Errorf("geo saving = %v, want meaningful", res.Saving)
	}
	if res.Unplaced > 0 {
		t.Errorf("unplaced work = %v, want 0 (capacity suffices)", res.Unplaced)
	}
	if res.EconoShare <= 0 {
		t.Error("no work served with free cooling")
	}
}

func TestAblateForecastExp(t *testing.T) {
	res := run(t, "ablate-forecast").(AblateForecastResult)
	byName := map[string]AblateForecastRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	if len(byName) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// The trend-following forecaster must ride the exponential ramp at
	// least as well as the flat EWMA.
	if byName["holt"].Shortfall > byName["ewma"].Shortfall {
		t.Errorf("holt shortfall %v above ewma %v on a ramp",
			byName["holt"].Shortfall, byName["ewma"].Shortfall)
	}
	for name, row := range byName {
		if row.MeanFleet <= 0 {
			t.Errorf("%s mean fleet = %v", name, row.MeanFleet)
		}
	}
}

func TestAblateLadderExp(t *testing.T) {
	res := run(t, "ablate-ladder").(AblateLadderResult)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	byName := map[string]AblateLadderRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	// A deeper ladder can only help the coordinated optimizer (it
	// enumerates the ladder and keeps the cheapest feasible point).
	if byName["default-5"].EnergyKWh > byName["none"].EnergyKWh*1.01 {
		t.Errorf("5-state ladder %v kWh above no-DVFS %v kWh",
			byName["default-5"].EnergyKWh, byName["none"].EnergyKWh)
	}
	if byName["fine-9"].EnergyKWh > byName["default-5"].EnergyKWh*1.01 {
		t.Errorf("9-state ladder %v kWh above 5-state %v kWh",
			byName["fine-9"].EnergyKWh, byName["default-5"].EnergyKWh)
	}
}

func TestAblateHysteresisExp(t *testing.T) {
	res := run(t, "ablate-hysteresis").(AblateHysteresisResult)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// More hysteresis → no more scale-up events (monotone down the
	// table), and strictly fewer from the first to the last setting.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].UpSwitches > res.Rows[i-1].UpSwitches {
			t.Errorf("hysteresis %d has more scale-ups (%d) than %d (%d)",
				res.Rows[i].DownscaleAfter, res.Rows[i].UpSwitches,
				res.Rows[i-1].DownscaleAfter, res.Rows[i-1].UpSwitches)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.UpSwitches >= first.UpSwitches {
		t.Errorf("max hysteresis scale-ups %d not below min hysteresis %d",
			last.UpSwitches, first.UpSwitches)
	}
	if last.BootKWh >= first.BootKWh {
		t.Errorf("max hysteresis boot energy %v not below min %v",
			last.BootKWh, first.BootKWh)
	}
	// The price of hysteresis: a (slightly) larger mean fleet.
	if last.MeanFleet < first.MeanFleet {
		t.Errorf("hysteresis should not shrink the mean fleet: %v vs %v",
			last.MeanFleet, first.MeanFleet)
	}
}

func TestAblateDCExp(t *testing.T) {
	res := run(t, "ablate-dc").(AblateDCResult)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for _, row := range res.Rows {
		// DC distribution should save mid-single-digit percent at every
		// load point ([11] reports ~7%).
		if row.Saving < 0.02 || row.Saving > 0.15 {
			t.Errorf("util %v: DC saving = %v, want a few percent", row.Utilization, row.Saving)
		}
		if row.DCInKW >= row.ACInKW {
			t.Errorf("util %v: DC input %v not below AC %v", row.Utilization, row.DCInKW, row.ACInKW)
		}
	}
}

func TestTiersExp(t *testing.T) {
	res := run(t, "tiers").(TiersResult)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	byName := map[string]TierScaleRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	// The storage tier's 20x fanout means it runs the largest fleet.
	if byName["storage"].MeanFleet <= byName["web"].MeanFleet {
		t.Errorf("storage mean fleet %v not above web %v",
			byName["storage"].MeanFleet, byName["web"].MeanFleet)
	}
	// Every tier actually scaled (max above min), and respected its floor.
	for name, row := range byName {
		if row.MaxServers <= row.MinServers {
			t.Errorf("tier %s never scaled: min %d max %d", name, row.MinServers, row.MaxServers)
		}
		if row.MinServers < 1 {
			t.Errorf("tier %s fell below one server", name)
		}
	}
	if res.Saving < 0.2 {
		t.Errorf("per-tier elasticity saved only %v", res.Saving)
	}
	if res.SLAViolFrac > 0.01 {
		t.Errorf("elastic tiers violated SLA %v of periods", res.SLAViolFrac)
	}
}

func TestParkingExp(t *testing.T) {
	res := run(t, "parking").(ParkingResult)
	byName := map[string]ParkingRow{}
	for _, row := range res.Rows {
		byName[row.Strategy] = row
	}
	on, park, off := byName["always-on"], byName["core-parking"], byName["server-off"]
	if !(off.EnergyKWh < park.EnergyKWh && park.EnergyKWh < on.EnergyKWh) {
		t.Errorf("ordering violated: off %.2f, parking %.2f, on %.2f",
			off.EnergyKWh, park.EnergyKWh, on.EnergyKWh)
	}
	// Parking captures a real but partial share of the off saving.
	if park.SavingVsOff < 0.05 || park.SavingVsOff > 0.8 {
		t.Errorf("parking captured %v of the off saving, want a partial share", park.SavingVsOff)
	}
}

func TestDistributedExp(t *testing.T) {
	res := run(t, "distributed").(DistributedResult)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	central := res.Rows[0]
	for _, row := range res.Rows[1:] {
		rel := (row.EnergyKWh - central.EnergyKWh) / central.EnergyKWh
		if rel < -0.02 || rel > 0.15 {
			t.Errorf("%s energy %.1f kWh vs centralized %.1f (%.1f%%)",
				row.Organization, row.EnergyKWh, central.EnergyKWh, rel*100)
		}
		if row.ViolRate > 0.1 {
			t.Errorf("%s violation rate %.3f", row.Organization, row.ViolRate)
		}
		if row.Messages <= 0 {
			t.Errorf("%s recorded no coordination messages", row.Organization)
		}
	}
}

func TestHeteroExp(t *testing.T) {
	res := run(t, "hetero").(HeteroResult)
	if res.BigLittleKWh >= res.HomogeneousKWh {
		t.Errorf("big.LITTLE %v kWh not below homogeneous %v", res.BigLittleKWh, res.HomogeneousKWh)
	}
	if res.Saving < 0.03 {
		t.Errorf("daily saving = %v, want a few percent (dynamic share only)", res.Saving)
	}
	if res.LightLoadSaving < 0.4 {
		t.Errorf("light-load dynamic saving = %v, want large", res.LightLoadSaving)
	}
}
