package exp

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestUsersSurgeExp(t *testing.T) {
	res := run(t, "users-surge").(UsersSurgeResult)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 budgets", len(res.Rows))
	}
	if res.PeakDemandErl < 40 || res.PeakDemandErl > 60 {
		t.Errorf("peak demand = %v server-equivalents, want ~48", res.PeakDemandErl)
	}
	for i, row := range res.Rows {
		if row.OfferedUsers <= 0 {
			t.Fatalf("budget %d saw no users", row.FleetCap)
		}
		// Every budget sees the identical user stream.
		if d := math.Abs(row.OfferedUsers - res.Rows[0].OfferedUsers); d > 1e-6*res.Rows[0].OfferedUsers {
			t.Errorf("budget %d offered %v users, budget %d offered %v — streams differ",
				row.FleetCap, row.OfferedUsers, res.Rows[0].FleetCap, res.Rows[0].OfferedUsers)
		}
		if row.AdmittedUsers > row.OfferedUsers {
			t.Errorf("budget %d admitted more than offered: %+v", row.FleetCap, row)
		}
		if i > 0 {
			prev := res.Rows[i-1]
			if row.FleetCap >= prev.FleetCap {
				t.Fatalf("budgets not descending: %d then %d", prev.FleetCap, row.FleetCap)
			}
			if row.EnergyKWh > prev.EnergyKWh+1e-9 {
				t.Errorf("smaller budget %d used more energy (%.1f) than %d (%.1f)",
					row.FleetCap, row.EnergyKWh, prev.FleetCap, prev.EnergyKWh)
			}
			if row.RejectedFrac < prev.RejectedFrac-1e-9 {
				t.Errorf("smaller budget %d rejected less (%.4f) than %d (%.4f)",
					row.FleetCap, row.RejectedFrac, prev.FleetCap, prev.RejectedFrac)
			}
		}
	}
	// The halved budget cannot carry the surge peak: users must be turned
	// away, which is the user-visible cost the experiment exists to show.
	if tight := res.Rows[len(res.Rows)-1]; tight.RejectedUsers <= 0 {
		t.Errorf("50%% budget rejected nobody through the surge: %+v", tight)
	}
}

func TestUsersFlashExp(t *testing.T) {
	res := run(t, "users-flash").(UsersFlashResult)
	if res.FlashCrowds <= 0 {
		t.Error("no flash crowds drawn in the week")
	}
	if res.OfferedUsers <= 0 {
		t.Fatal("no users offered")
	}
	got := res.AdmittedUsers + res.RejectedUsers + res.DeferredEnd
	if math.Abs(got-res.OfferedUsers) > 1e-6*res.OfferedUsers {
		t.Errorf("user conservation broken: admitted %v + rejected %v + deferred %v != offered %v",
			res.AdmittedUsers, res.RejectedUsers, res.DeferredEnd, res.OfferedUsers)
	}
	qmin := workload.DefaultAdmissionConfig().Qmin
	if res.MinQ < qmin-1e-9 || res.MinQ > 1 {
		t.Errorf("worst Q = %v outside [Qmin=%v, 1]", res.MinQ, qmin)
	}
	if res.MinQ >= 1 {
		t.Error("fair share never dropped below 1 — capacity crunch not reproduced")
	}
	if res.PeakBacklog <= 0 {
		t.Error("deferrable batch work never backed up")
	}
}

func TestUsersQminExp(t *testing.T) {
	res := run(t, "users-qmin").(UsersQminResult)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 Qmin settings", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.MeanQ < row.Qmin-1e-9 || row.MeanQ > 1+1e-9 {
			t.Errorf("qmin %.2f: mean Q %v outside [Qmin, 1]", row.Qmin, row.MeanQ)
		}
		if i == 0 {
			continue
		}
		prev := res.Rows[i-1]
		if row.Qmin <= prev.Qmin {
			t.Fatalf("Qmin sweep not increasing")
		}
		// The knob's tradeoff: a higher floor rejects more users to keep
		// the survivors' share up.
		if row.RejectedFrac < prev.RejectedFrac-1e-9 {
			t.Errorf("qmin %.2f rejected less (%.3f) than qmin %.2f (%.3f)",
				row.Qmin, row.RejectedFrac, prev.Qmin, prev.RejectedFrac)
		}
		if row.MeanQ < prev.MeanQ-1e-9 {
			t.Errorf("qmin %.2f mean Q %.3f below qmin %.2f's %.3f",
				row.Qmin, row.MeanQ, prev.Qmin, prev.MeanQ)
		}
	}
	// Under permanent 1.5x overload the lowest floor admits nearly
	// everyone degraded; interactive users outlive the shed classes.
	loose := res.Rows[0]
	if loose.RejectedFrac > 0.2 {
		t.Errorf("qmin %.2f rejected %.3f of users; a loose floor should mostly degrade instead",
			loose.Qmin, loose.RejectedFrac)
	}
	for _, row := range res.Rows {
		if row.InteractiveOK < row.AdmittedFrac-1e-9 {
			t.Errorf("qmin %.2f: interactive admitted %.3f below overall %.3f — shed order broken",
				row.Qmin, row.InteractiveOK, row.AdmittedFrac)
		}
	}
}

func TestUsersDeterminism(t *testing.T) {
	for _, id := range []string{"users-surge", "users-flash", "users-qmin"} {
		a, err := Run(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		if a.Report() != b.Report() {
			t.Errorf("%s: same seed produced different reports", id)
		}
	}
}
