package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
)

// ---------------------------------------------------------------------------
// hetero — heterogeneous CMP power curves (§4.1)
// ---------------------------------------------------------------------------

// HeteroResult compares homogeneous and big.LITTLE servers on the same
// diurnal day — "heterogeneous CMPs has further potentials to selectively
// use cores with different power and performance trade-offs to meet
// workload variation" (§4.1).
type HeteroResult struct {
	HomogeneousKWh float64
	BigLittleKWh   float64
	Saving         float64
	// LightLoadSaving is the instantaneous power saving at 30 % load.
	LightLoadSaving float64
}

// ID implements Result.
func (HeteroResult) ID() string { return "hetero" }

// Report implements Result.
func (r HeteroResult) Report() string {
	var b strings.Builder
	b.WriteString(header("hetero", "heterogeneous CMP power/performance trade-offs (§4.1)"))
	fmt.Fprintf(&b, "one diurnal day, 10 servers: homogeneous %.2f kWh, big.LITTLE %.2f kWh (%.0f%% saved)\n",
		r.HomogeneousKWh, r.BigLittleKWh, r.Saving*100)
	fmt.Fprintf(&b, "instantaneous dynamic-power saving at 30%% load: %.0f%%\n", r.LightLoadSaving*100)
	b.WriteString("savings concentrate at light load, where efficient cores carry the work\n")
	return b.String()
}

// RunHetero runs both fleets through the same day.
func RunHetero(env *Env) (Result, error) {
	seed := env.Seed
	const n = 10
	demandFrac := func(now time.Duration) float64 {
		h := math.Mod(now.Hours(), 24)
		return 0.15 + 0.45*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
	}
	runFleet := func(curve []server.CurvePoint) (float64, error) {
		e := env.NewEngine(seed)
		cfg := server.DefaultConfig()
		cfg.PowerCurve = curve
		servers := make([]*server.Server, 0, n)
		for i := 0; i < n; i++ {
			c := cfg
			c.Name = fmt.Sprintf("srv-%02d", i)
			s, err := server.New(c)
			if err != nil {
				return 0, err
			}
			s.PowerOn(e)
			servers = append(servers, s)
		}
		if err := e.Run(cfg.BootDelay); err != nil {
			return 0, err
		}
		e.Every(time.Minute, func(eng *sim.Engine) {
			frac := demandFrac(eng.Now())
			for _, s := range servers {
				s.SetUtilization(eng.Now(), frac)
			}
		})
		horizon := cfg.BootDelay + 24*time.Hour
		if err := e.Run(horizon); err != nil {
			return 0, err
		}
		var joules float64
		for _, s := range servers {
			s.Sync(horizon)
			joules += s.EnergyJ()
		}
		return joules / 3.6e6, nil
	}

	homo, err := runFleet(nil)
	if err != nil {
		return nil, err
	}
	het, err := runFleet(server.BigLittleCurve())
	if err != nil {
		return nil, err
	}

	// Instantaneous dynamic saving at 30 % load, straight from the model.
	cfg := server.DefaultConfig()
	idle := cfg.PeakPower * cfg.IdleFraction
	dyn := cfg.PeakPower - idle
	homoDyn := dyn * 0.3
	// On BigLittleCurve, u=0.3 sits between (0,0) and (0.4,0.15):
	// fraction 0.1125 of full dynamic power.
	hetDyn := dyn * 0.1125

	res := HeteroResult{
		HomogeneousKWh: homo,
		BigLittleKWh:   het,
	}
	if homo > 0 {
		res.Saving = 1 - het/homo
	}
	if homoDyn > 0 {
		res.LightLoadSaving = 1 - hetDyn/homoDyn
	}
	return res, nil
}
