package exp

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/sensornet"
	"repro/internal/sim"
)

// sweepWorkers returns the worker widths the determinism sweeps cover:
// inline, 2, 4, and the GOMAXPROCS default, deduplicated by effective
// width so single-core machines don't rerun the inline case.
func sweepWorkers() []int {
	ws := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := ws[:0]
	for _, w := range ws {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestWorkerCountInvarianceAtScale is the satellite determinism sweep:
// three experiment stacks scaled past parCutoff (so the sharded
// dispatch, physics-scan, and sampling paths are all armed), swept over
// workers × seeds, must produce exactly equal metrics and reports at
// every width. Invariants are disarmed because the checker is O(N) per
// event and the sweep reruns each scaled facility several times.
func TestWorkerCountInvarianceAtScale(t *testing.T) {
	cases := []struct {
		id    string
		scale int // chosen so the fleet exceeds the 1024-server cutoff
	}{
		{"fig4", 26},         // 40·scale = 1040 servers
		{"fault-outage", 33}, // 32·scale = 1056 servers
		{"users-surge", 17},  // 64·scale = 1088 servers
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		cases = cases[:1]
		seeds = seeds[:1]
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				var refMetrics map[string]float64
				var refReport string
				for _, w := range sweepWorkers() {
					env := NewEnv(seed)
					env.Scale = tc.scale
					env.Workers = w
					env.DisarmInvariants()
					res, err := RunEnv(tc.id, env)
					env.Close()
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, w, err)
					}
					m, rep := Metrics(res), res.Report()
					if refMetrics == nil {
						refMetrics, refReport = m, rep
						continue
					}
					if !reflect.DeepEqual(m, refMetrics) {
						t.Errorf("seed %d workers %d: metrics diverged from workers=1:\n got %v\nwant %v",
							seed, w, m, refMetrics)
					}
					if rep != refReport {
						t.Errorf("seed %d workers %d: report diverged from workers=1", seed, w)
					}
				}
			}
		})
	}
}

// TestGoldenWorkerInvariance reruns every registered experiment at
// several worker widths and requires exactly equal metrics across the
// sweep, plus agreement with the committed golden fixture. Combined
// with the sha256 manifest test this pins the acceptance contract: the
// fixtures are byte-identical at workers 1, 2, 4, and GOMAXPROCS.
func TestGoldenWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden sweep skipped in -short (runs every experiment 3×)")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var ref map[string]float64
			var refReport string
			for _, w := range []int{1, 2, 4} {
				env := NewEnv(1)
				env.Workers = w
				res, err := RunEnv(id, env)
				env.Close()
				if err != nil {
					t.Fatalf("workers %d: %v", w, err)
				}
				m, rep := Metrics(res), res.Report()
				if ref == nil {
					ref, refReport = m, rep
					continue
				}
				if !reflect.DeepEqual(m, ref) {
					t.Errorf("workers %d: metrics diverged:\n got %v\nwant %v", w, m, ref)
				}
				// The telemetry experiment's report includes wall-clock
				// throughput, which legitimately varies between runs.
				if id != "telemetry" && rep != refReport {
					t.Errorf("workers %d: report diverged", w)
				}
			}
			compareGolden(t, id, ref, readGolden(t, id))
		})
	}
}

// TestChaosSoakParallel is the racing variant of TestChaosSoak: the same
// randomized multi-fault program, but against a facility scaled past
// parCutoff with a 4-wide pool armed, so outages, trips, crashes, and
// recoveries all route through the sharded concurrent paths while the
// physical-law invariants assert after every kernel event. Run with
// -race this is the data-race gate for the parallel executor.
func TestChaosSoakParallel(t *testing.T) {
	const (
		horizon = 3 * time.Hour
		scale   = 33 // 32·scale = 1056 servers > parCutoff
	)
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		env := NewEnv(seed)
		env.Workers = 4
		e := env.NewEngine(seed)
		dc, err := outageFacility(e, scale, env.Pool())
		if err != nil {
			t.Fatal(err)
		}
		dc.Fleet().SetTarget(dc.Fleet().Size())
		if err := e.Run(2 * time.Minute); err != nil {
			t.Fatal(err)
		}
		dc.Fleet().Dispatch(e.Now(), 0.6*float64(dc.Fleet().Size())*1000)
		deg, err := core.NewDegrader(e, dc, core.DegraderConfig{})
		if err != nil {
			t.Fatal(err)
		}
		deg.Start()
		net, err := sensornet.NewNetwork(
			sensornet.DefaultNetworkConfig(dc.Room().Zones()), e.RNG().Fork("sensors"))
		if err != nil {
			t.Fatal(err)
		}
		e.Every(time.Minute, func(eng *sim.Engine) {
			net.Collect(func(z int) float64 { return dc.Room().ZoneInletC(z) })
		})
		in := fault.NewInjector(e)
		in.WireRoom(dc.Room())
		in.WireServers(dc.Fleet().Servers())
		in.WireSensors(net)
		bat, err := power.BatteryForAutonomy(dc.ITPowerW(), 5*time.Minute, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.WireUtility(fault.UtilityConfig{
			Battery:          bat,
			LoadW:            func() float64 { return dc.Flow().OutW },
			GenStartDelay:    2 * time.Minute,
			GenStartFailProb: 0.3,
			GenRetries:       2,
			GenRetryBackoff:  time.Minute,
			Tick:             10 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
		in.Subscribe(deg.OnNotice)
		events, err := fault.GenerateSchedule(e.RNG().Fork("chaos"), fault.ScheduleConfig{
			Horizon:     horizon,
			OutageEvery: time.Hour, OutageFor: 15 * time.Minute,
			CRACEvery: 45 * time.Minute, CRACFor: 30 * time.Minute,
			CrashEvery: 20 * time.Minute, CrashFor: 10 * time.Minute,
			SensorEvery: 15 * time.Minute, SensorFor: 20 * time.Minute,
			CRACs:   dc.Room().CRACs(),
			Servers: dc.Fleet().Size(),
			Sensors: dc.Room().Zones(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Arm(events); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(horizon); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.Injected() == 0 {
			t.Errorf("seed %d: chaos schedule injected nothing", seed)
		}
		if err := env.InvariantErr(); err != nil {
			t.Errorf("seed %d: invariant violated under parallel chaos: %v", seed, err)
		}
		if err := dc.Fleet().VerifyAggregates(); err != nil {
			t.Errorf("seed %d: aggregates diverged under parallel chaos: %v", seed, err)
		}
		env.Close()
	}
}
