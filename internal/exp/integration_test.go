package exp

// Cross-package integration tests: pipelines that span several substrates
// the way a production deployment would.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestAnomalyDetectionFindsFlashCrowds closes the loop between the
// workload generator and the telemetry store: ingest the Figure-3 login
// series and check that the §5.3 anomaly query surfaces the injected
// flash crowds (and nothing drowning them out).
func TestAnomalyDetectionFindsFlashCrowds(t *testing.T) {
	cfg := trace.DefaultMessengerConfig()
	cfg.FlashCrowds = 4
	cfg.FlashMagnitude = 4
	m, err := trace.GenerateMessenger(cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.FlashTimes) == 0 {
		t.Skip("no flash crowds drawn for this seed")
	}
	store, err := telemetry.NewStore(telemetry.Config{
		RawInterval: time.Minute, RawRetention: 0, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Logins.Values {
		if err := store.Append("logins", time.Duration(i)*time.Minute, v); err != nil {
			t.Fatal(err)
		}
	}
	anomalies, err := store.Anomalies("logins", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) == 0 {
		t.Fatal("no anomalies detected despite injected flash crowds")
	}
	// Every injected flash crowd should have an anomaly within a few
	// minutes of its onset.
	for _, ft := range m.FlashTimes {
		found := false
		for _, a := range anomalies {
			if a.At >= ft-time.Minute && a.At <= ft+10*time.Minute {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("flash crowd at %v not detected", ft)
		}
	}
	// Anomalies should be concentrated near flash crowds, not uniform:
	// most flagged minutes fall within 15 minutes of some flash.
	near := 0
	for _, a := range anomalies {
		for _, ft := range m.FlashTimes {
			if a.At >= ft-time.Minute && a.At <= ft+15*time.Minute {
				near++
				break
			}
		}
	}
	if frac := float64(near) / float64(len(anomalies)); frac < 0.7 {
		t.Errorf("only %.0f%% of anomalies near flash crowds (%d/%d) — detector too noisy",
			frac*100, near, len(anomalies))
	}
}

// TestTelemetryCorrelationSeparatesBalancedServers checks the §5.3
// load-balancer query end to end: two servers behind a balancer share the
// diurnal trend; after detrending, the residuals of a round-robin pair
// correlate positively while a failover pair (one takes what the other
// drops) correlates negatively.
func TestTelemetryCorrelationSeparatesBalancedServers(t *testing.T) {
	store, err := telemetry.NewStore(telemetry.Config{
		RawInterval: time.Minute, RawRetention: 0, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultDiurnalConfig()
	cfg.Duration = 48 * time.Hour
	cfg.NoiseSD = 0.08
	cfg.BurstRate = 0
	total, err := trace.GenerateDiurnal(cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(6)
	for i, v := range total.Values {
		ts := time.Duration(i) * time.Minute
		// Round-robin pair: each takes half plus small independent noise.
		if err := store.Append("rr-a", ts, v/2+rng.Normal(0, 0.002)); err != nil {
			t.Fatal(err)
		}
		if err := store.Append("rr-b", ts, v/2+rng.Normal(0, 0.002)); err != nil {
			t.Fatal(err)
		}
		// Failover pair: a jittery split where one's gain is the other's
		// loss.
		split := 0.5 + rng.Normal(0, 0.1)
		if err := store.Append("fo-a", ts, v*split); err != nil {
			t.Fatal(err)
		}
		if err := store.Append("fo-b", ts, v*(1-split)); err != nil {
			t.Fatal(err)
		}
	}
	rr, err := store.CorrelateDetrended("rr-a", "rr-b", telemetry.ResMinute, 61)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := store.CorrelateDetrended("fo-a", "fo-b", telemetry.ResMinute, 61)
	if err != nil {
		t.Fatal(err)
	}
	if rr <= 0.5 {
		t.Errorf("round-robin residual correlation = %v, want strongly positive", rr)
	}
	if fo >= -0.5 {
		t.Errorf("failover residual correlation = %v, want strongly negative", fo)
	}
}

// TestDataCenterTelemetryFeedsQueries drives the fig4 facility for a few
// hours and runs §5.3 queries against what it collected — the monitoring
// half of the Figure-4 loop.
func TestDataCenterTelemetryFeedsQueries(t *testing.T) {
	res, err := Run("fig4", 2)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(Fig4Result)
	if r.TelemetryKeys < 10 {
		t.Fatalf("too few telemetry keys: %d", r.TelemetryKeys)
	}
}

// TestSeedSweepStability guards against seed-specific tuning: the core
// shape claims must hold across several seeds, not just the default.
func TestSeedSweepStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(2); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			res, err := Run("pathology", seed)
			if err != nil {
				t.Fatal(err)
			}
			rows := res.(PathologyResult).Rows
			byMode := map[string]PathologyRow{}
			for _, row := range rows {
				byMode[row.Mode.String()] = row
			}
			if byMode["oblivious"].EnergyKWh <= byMode["dvfs-only"].EnergyKWh {
				t.Errorf("seed %d: oblivious not above dvfs-only", seed)
			}
			if byMode["coordinated"].EnergyKWh > byMode["oblivious"].EnergyKWh {
				t.Errorf("seed %d: coordinated above oblivious", seed)
			}

			f3, err := Run("fig3", seed)
			if err != nil {
				t.Fatal(err)
			}
			ratio := f3.(Fig3Result).AfternoonNightRatio
			if ratio < 1.5 || ratio > 2.8 {
				t.Errorf("seed %d: afternoon/night ratio %v out of band", seed, ratio)
			}

			cr, err := Run("crac", seed)
			if err != nil {
				t.Fatal(err)
			}
			c := cr.(CRACResult)
			if c.NaiveTrips == 0 || c.AwareTrips != 0 {
				t.Errorf("seed %d: crac trips naive=%d aware=%d", seed, c.NaiveTrips, c.AwareTrips)
			}
		})
	}
}
