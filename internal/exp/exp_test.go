package exp

import (
	"strings"
	"testing"
	"time"
)

const testSeed = 1

func run(t *testing.T, id string) Result {
	t.Helper()
	res, err := Run(id, testSeed)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if res.ID() != id {
		t.Fatalf("result ID = %q, want %q", res.ID(), id)
	}
	if rep := res.Report(); !strings.Contains(rep, id) {
		t.Errorf("report does not mention its id:\n%s", rep)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablate-dc", "ablate-forecast", "ablate-hysteresis", "ablate-ladder",
		"animoto", "capping", "consolidate", "crac", "distributed", "dvfs",
		"fault-crac", "fault-outage", "fault-rack", "fault-sensor", "fig1",
		"fig2", "fig3", "fig4", "geo", "geo-brownout", "geo-carbon",
		"geo-diurnal", "hetero", "idle60", "interfere", "oversub",
		"parking", "pathology", "pue2", "retry-budget", "retry-storm",
		"sensornet", "telemetry", "tier2",
		"tiers", "users-flash", "users-qmin", "users-surge",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	if _, err := Run("nonsense", 1); err == nil {
		t.Error("unknown id should error")
	}
}

func TestFig1(t *testing.T) {
	res := run(t, "fig1").(Fig1Result)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Facility input grows with utilization; efficiency improves.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].FacilityInKW <= res.Rows[i-1].FacilityInKW {
			t.Error("facility power not increasing with utilization")
		}
	}
	if res.Rows[1].DistEfficiency >= res.Rows[4].DistEfficiency {
		t.Errorf("distribution efficiency at 25%% (%v) not below 100%% (%v) — fixed losses should amortize",
			res.Rows[1].DistEfficiency, res.Rows[4].DistEfficiency)
	}
	// Full fleet at peak = 480 servers × 300 W = 144 kW critical.
	if res.Rows[4].CriticalKW < 140 || res.Rows[4].CriticalKW > 148 {
		t.Errorf("full-load critical power = %v kW, want ~144", res.Rows[4].CriticalKW)
	}
	if res.HostableServers <= 0 {
		t.Error("no hostable servers computed")
	}
	// With 1.25x oversubscription and a fleet sized for 1.0x, some
	// sweep point must overload.
	if res.OverloadAt < 0 {
		t.Error("oversubscribed tree never overloaded in the sweep")
	}
}

func TestFig2(t *testing.T) {
	res := run(t, "fig2").(Fig2Result)
	// Slow dynamics: settling takes at least several minutes.
	if res.SettleAfterStep < 5*time.Minute {
		t.Errorf("settle time %v too fast for the paper's slow-dynamics claim", res.SettleAfterStep)
	}
	if res.CRACAdjustments == 0 {
		t.Error("CRACs never adjusted")
	}
	if res.MaxInletC <= res.MinInletC {
		t.Error("inlet trace is flat")
	}
	if res.InletTrace.Len() != 12*60 {
		t.Errorf("trace samples = %d, want 720", res.InletTrace.Len())
	}
}

func TestFig3(t *testing.T) {
	res := run(t, "fig3").(Fig3Result)
	if res.AfternoonNightRatio < 1.6 || res.AfternoonNightRatio > 2.6 {
		t.Errorf("afternoon/night ratio = %v, want ~2", res.AfternoonNightRatio)
	}
	if res.WeekdayWeekendRatio <= 1 {
		t.Errorf("weekday/weekend ratio = %v, want > 1", res.WeekdayWeekendRatio)
	}
	if res.PeakConnections < 0.99e6 || res.PeakConnections > 1.01e6 {
		t.Errorf("peak connections = %v, want ~1e6", res.PeakConnections)
	}
	if res.PeakLoginRate < 1399 || res.PeakLoginRate > 1401 {
		t.Errorf("peak login rate = %v, want 1400", res.PeakLoginRate)
	}
}

func TestFig4(t *testing.T) {
	res := run(t, "fig4").(Fig4Result)
	if res.EnergyKWh <= 0 {
		t.Error("no energy accounted")
	}
	if res.MeanPUE < 1.05 || res.MeanPUE > 2.5 {
		t.Errorf("mean PUE = %v implausible", res.MeanPUE)
	}
	if res.SLAViolationRate > 0.1 {
		t.Errorf("coordinated run violated SLA %.1f%% of the time", res.SLAViolationRate*100)
	}
	if res.ThermalTrips != 0 {
		t.Errorf("coordinated run tripped %d servers", res.ThermalTrips)
	}
	if res.TelemetryKeys == 0 {
		t.Error("no telemetry collected")
	}
	if res.MeanActive <= 0 || res.MeanActive >= 40 {
		t.Errorf("mean active = %v, want elastic operation within the 40-server fleet", res.MeanActive)
	}
}

func TestIdle60(t *testing.T) {
	res := run(t, "idle60").(Idle60Result)
	if res.IdleFraction < 0.55 || res.IdleFraction > 0.65 {
		t.Errorf("idle fraction = %v, want ~0.60", res.IdleFraction)
	}
	// 24 h at 180 W = 4.32 kWh; one boot cycle is tiny by comparison.
	if res.IdleDayKWh < 4 || res.IdleDayKWh > 5 {
		t.Errorf("idle day = %v kWh, want ~4.3", res.IdleDayKWh)
	}
	if res.OffDayKWh > res.IdleDayKWh/10 {
		t.Errorf("off day %v kWh not far below idle day %v kWh", res.OffDayKWh, res.IdleDayKWh)
	}
}

func TestPUE2(t *testing.T) {
	res := run(t, "pue2").(PUE2Result)
	if res.LegacyPUE < 1.7 || res.LegacyPUE > 2.2 {
		t.Errorf("legacy PUE = %v, want close to 2", res.LegacyPUE)
	}
	if res.EconomizerPUE >= res.LegacyPUE {
		t.Errorf("economizer PUE %v not below legacy %v", res.EconomizerPUE, res.LegacyPUE)
	}
	if res.EconoHours < 0.2 {
		t.Errorf("free-cooling hours = %v, want meaningful fraction in a temperate climate", res.EconoHours)
	}
	if res.CoolingSaving <= 0.1 {
		t.Errorf("cooling saving = %v, want substantial", res.CoolingSaving)
	}
}

func TestAnimoto(t *testing.T) {
	res := run(t, "animoto").(AnimotoResult)
	if res.PeakDemand < 3000 || res.PeakDemand > 4000 {
		t.Errorf("peak demand = %v, want ~3500", res.PeakDemand)
	}
	if res.PeakFleet < 3000 {
		t.Errorf("elastic fleet peaked at %d, never scaled out", res.PeakFleet)
	}
	if res.ElasticSaving < 0.3 {
		t.Errorf("elastic saving vs static-at-peak = %v, want large", res.ElasticSaving)
	}
	if res.ElasticDropped > 0.08 {
		t.Errorf("elastic unmet demand = %v, want small", res.ElasticDropped)
	}
	if res.StaticBaseDrop < 0.5 {
		t.Errorf("baseline-sized static dropped only %v — surge should overwhelm it", res.StaticBaseDrop)
	}
}

func TestOversubExp(t *testing.T) {
	res := run(t, "oversub").(OversubResult)
	// Violation grows with ratio.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Violation < res.Rows[i-1].Violation-1e-12 {
			t.Error("violation not monotone in oversubscription ratio")
		}
	}
	if res.Rows[0].Violation != 0 {
		t.Errorf("ratio 1.0 violation = %v, want 0", res.Rows[0].Violation)
	}
	if res.SafeRatio <= 1.1 {
		t.Errorf("safe ratio = %v, want meaningfully above 1", res.SafeRatio)
	}
	if res.OversubUtil <= res.StaticUtil {
		t.Error("oversubscription did not improve utilization")
	}
}

func TestPathologyExp(t *testing.T) {
	res := run(t, "pathology").(PathologyResult)
	byMode := map[string]PathologyRow{}
	for _, row := range res.Rows {
		byMode[row.Mode.String()] = row
	}
	obl := byMode["oblivious"]
	if obl.EnergyKWh <= byMode["onoff-only"].EnergyKWh {
		t.Errorf("oblivious %.1f kWh not above onoff-only %.1f", obl.EnergyKWh, byMode["onoff-only"].EnergyKWh)
	}
	if obl.EnergyKWh <= byMode["dvfs-only"].EnergyKWh {
		t.Errorf("oblivious %.1f kWh not above dvfs-only %.1f", obl.EnergyKWh, byMode["dvfs-only"].EnergyKWh)
	}
	coord := byMode["coordinated"]
	for name, row := range byMode {
		if coord.EnergyKWh > row.EnergyKWh+1e-9 {
			t.Errorf("coordinated %.1f kWh above %s %.1f", coord.EnergyKWh, name, row.EnergyKWh)
		}
	}
	if byMode["always-on"].EnergyKWh <= obl.EnergyKWh {
		t.Error("always-on should be the most expensive")
	}
}

func TestCRACExp(t *testing.T) {
	res := run(t, "crac").(CRACResult)
	if res.NaiveTrips == 0 {
		t.Error("naive migration produced no thermal trips — pathology not reproduced")
	}
	if res.AwareTrips != 0 {
		t.Errorf("sensitivity-aware operation tripped %d servers", res.AwareTrips)
	}
	if res.NaiveMaxInletB <= res.AwareMaxInlet {
		t.Errorf("naive zone-B peak %v not above aware peak %v", res.NaiveMaxInletB, res.AwareMaxInlet)
	}
	if res.SupplyRiseC <= 0 {
		t.Errorf("CRAC did not relax after its sensitive zone emptied (rise %v)", res.SupplyRiseC)
	}
}

func TestConsolidateExp(t *testing.T) {
	res := run(t, "consolidate").(ConsolidateResult)
	if res.Saving < 0.2 {
		t.Errorf("provisioning saving = %v, want >= 20%% (ref [18] reports ~30%%)", res.Saving)
	}
	if res.OverloadFrac > 0.02 {
		t.Errorf("overload fraction = %v, want rare", res.OverloadFrac)
	}
	if res.MeanFleet >= float64(res.StaticServers) {
		t.Error("elastic fleet not smaller than static on average")
	}
}

func TestInterfereExp(t *testing.T) {
	res := run(t, "interfere").(InterfereResult)
	if res.NaiveIOPS >= res.AwareIOPS {
		t.Errorf("naive IOPS %v not below interference-aware %v", res.NaiveIOPS, res.AwareIOPS)
	}
	if res.SmartWorstPeak >= res.NaiveWorstPeak {
		t.Errorf("correlation-aware worst peak %v not below naive %v", res.SmartWorstPeak, res.NaiveWorstPeak)
	}
	if res.SmartCapFrac >= res.NaiveCapFrac {
		t.Errorf("correlation-aware cap time %v not below naive %v", res.SmartCapFrac, res.NaiveCapFrac)
	}
}

func TestTelemetryExp(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock heavy")
	}
	res := run(t, "telemetry").(TelemetryResult)
	// Even a laptop should beat the paper's 2.4M points/min by a wide
	// margin; require at least meeting it.
	if res.PointsPerMinute < res.PaperPointsPerMinute {
		t.Errorf("ingest %.3g points/min below paper requirement %.3g",
			res.PointsPerMinute, res.PaperPointsPerMinute)
	}
	if res.QuerySpeedup < 5 {
		t.Errorf("pyramid speedup = %vx, want substantial", res.QuerySpeedup)
	}
	if res.StorageReduction < 3 {
		t.Errorf("storage reduction = %vx, want substantial", res.StorageReduction)
	}
	if res.TrendLen != 1 {
		t.Errorf("daily trend length = %d, want 1 (one simulated day)", res.TrendLen)
	}
}

func TestSensorNetExp(t *testing.T) {
	res := run(t, "sensornet").(SensorNetResult)
	if res.DenseRMSE >= res.SparseRMSE {
		t.Errorf("dense RMSE %v not below sparse %v", res.DenseRMSE, res.SparseRMSE)
	}
	if res.Improvement < 2 {
		t.Errorf("improvement = %vx, want at least 2x", res.Improvement)
	}
	if res.DeliveryRate < 0.3 || res.DeliveryRate > 1 {
		t.Errorf("delivery rate = %v implausible", res.DeliveryRate)
	}
	if res.LifetimeRnds <= 0 {
		t.Error("no lifetime measured")
	}
}

func TestDVFSExp(t *testing.T) {
	res := run(t, "dvfs").(DVFSResult)
	if res.EnergySaving <= 0.01 {
		t.Errorf("feedback DVFS saved %v, want positive", res.EnergySaving)
	}
	if res.ViolationRate > 0.05 {
		t.Errorf("feedback DVFS violated SLA %v of the time", res.ViolationRate)
	}
	if res.MeanPState <= 0 {
		t.Error("policy never left the fastest state")
	}
}

func TestTier2Exp(t *testing.T) {
	res := run(t, "tier2").(Tier2Result)
	if res.Tier.String() != "tier-2" {
		t.Errorf("classified %v, want tier-2", res.Tier)
	}
	if res.Availability < 0.99741 || res.Availability >= 0.99982 {
		t.Errorf("availability = %v outside the tier-2 band", res.Availability)
	}
	if res.Downtime < 2*time.Hour || res.Downtime > 23*time.Hour {
		t.Errorf("downtime = %v implausible for tier-2", res.Downtime)
	}
	// Failure injection agrees with the analytic structure function.
	ua, us := 1-res.Availability, 1-res.Simulated
	if us < ua*0.7 || us > ua*1.3 {
		t.Errorf("simulated unavailability %.5f disagrees with analytic %.5f", us, ua)
	}
}

func TestDeterminism(t *testing.T) {
	// Same seed, same report, for a virtual-time experiment.
	a, err := Run("pathology", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("pathology", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Error("same seed produced different pathology reports")
	}
}
