package exp

// Extension experiments: beyond the paper's figures and explicit claims,
// these exercise the research directions it sketches (§3.2 geo-routing,
// §3.1 capping as the oversubscription safety valve) and ablate the
// design choices DESIGN.md calls out (forecaster family, DVFS ladder
// depth, downscale hysteresis).

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// capping — power capping keeps oversubscription safe (§3.1, §5.2)
// ---------------------------------------------------------------------------

// CappingResult compares an oversubscribed rack with and without cap
// enforcement.
type CappingResult struct {
	CapW               float64
	UnprotectedOverCap float64 // fraction of decisions over cap
	ProtectedOverCap   float64
	ThroughputKept     float64 // delivered/demanded work under enforcement
	ThrottleEvents     int
}

// ID implements Result.
func (CappingResult) ID() string { return "capping" }

// Report implements Result.
func (r CappingResult) Report() string {
	var b strings.Builder
	b.WriteString(header("capping", "power capping as the oversubscription safety valve (§3.1)"))
	fmt.Fprintf(&b, "rack cap %.0f W over a 3000 W worst-case fleet (oversubscribed)\n", r.CapW)
	fmt.Fprintf(&b, "time over cap: unprotected %.1f%%, with enforcement %.1f%%\n",
		r.UnprotectedOverCap*100, r.ProtectedOverCap*100)
	fmt.Fprintf(&b, "throughput kept under enforcement: %.1f%% (%d throttle events)\n",
		r.ThroughputKept*100, r.ThrottleEvents)
	return b.String()
}

// RunCapping drives a diurnal load through an oversubscribed rack.
func RunCapping(env *Env) (Result, error) {
	seed := env.Seed
	const n = 10
	// Cap at 2800 W against a 3000 W worst case: the oversubscription bet
	// is that simultaneous full utilization is rare — here a two-hour
	// afternoon burst.
	const capW = 2800.0
	srvCfg := server.DefaultConfig()

	runOnce := func(protect bool) (overFrac, kept float64, throttles int, err error) {
		e := env.NewEngine(seed)
		rack, err := power.NewNode("rack", power.KindRack, 10_000, power.DefaultRackLoss)
		if err != nil {
			return 0, 0, 0, err
		}
		fleet, err := core.NewFleet(e, srvCfg, n)
		if err != nil {
			return 0, 0, 0, err
		}
		for _, s := range fleet.Servers() {
			s := s
			rack.AddLoad(func() float64 { return s.Power() })
		}
		rack.SetCap(capW)
		fleet.SetTarget(n)
		if err := e.Run(srvCfg.BootDelay + time.Second); err != nil {
			return 0, 0, 0, err
		}
		var enf *core.CapEnforcer
		if protect {
			enf, err = core.NewCapEnforcer([]*power.Node{rack},
				[][]*server.Server{fleet.Servers()})
			if err != nil {
				return 0, 0, 0, err
			}
		}
		var over, ticks int
		var demanded, delivered float64
		e.Every(time.Minute, func(eng *sim.Engine) {
			now := eng.Now()
			h := math.Mod(now.Hours(), 24)
			frac := 0.35 + 0.45*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
			if h >= 13 && h < 15 {
				frac += 0.17 // afternoon burst pushes past the cap
			}
			offered := frac * n * srvCfg.Capacity
			d, _ := fleet.Dispatch(now, offered)
			demanded += offered
			delivered += offered - d.Dropped
			if rack.Evaluate().OutW > capW {
				over++
			}
			ticks++
			if enf != nil {
				enf.Enforce(now)
			}
		})
		if err := e.Run(srvCfg.BootDelay + time.Second + 24*time.Hour); err != nil {
			return 0, 0, 0, err
		}
		if enf != nil {
			throttles = enf.ThrottleEvents()
		}
		return float64(over) / float64(ticks), delivered / demanded, throttles, nil
	}

	unprotOver, _, _, err := runOnce(false)
	if err != nil {
		return nil, err
	}
	protOver, kept, throttles, err := runOnce(true)
	if err != nil {
		return nil, err
	}
	return CappingResult{
		CapW:               capW,
		UnprotectedOverCap: unprotOver,
		ProtectedOverCap:   protOver,
		ThroughputKept:     kept,
		ThrottleEvents:     throttles,
	}, nil
}

// ---------------------------------------------------------------------------
// geo — route load to efficient sites (§3.2)
// ---------------------------------------------------------------------------

// GeoResult compares single-site operation against federation-aware
// routing over a week of weather.
type GeoResult struct {
	HomeKWh   float64
	RoutedKWh float64
	Saving    float64
	// EconoShare is the fraction of routed work served by economized
	// sites.
	EconoShare float64
	Unplaced   float64
}

// ID implements Result.
func (GeoResult) ID() string { return "geo" }

// Report implements Result.
func (r GeoResult) Report() string {
	var b strings.Builder
	b.WriteString(header("geo", "migrate work to efficient sites across the federation (§3.2)"))
	fmt.Fprintf(&b, "one week, all load at the home (chiller) site: %.0f kWh\n", r.HomeKWh)
	fmt.Fprintf(&b, "geo-routed by marginal efficiency under a latency bound: %.0f kWh (%.0f%% saved)\n",
		r.RoutedKWh, r.Saving*100)
	fmt.Fprintf(&b, "share of work served with free cooling: %.0f%%; unplaced: %.2f%%\n",
		r.EconoShare*100, r.Unplaced*100)
	return b.String()
}

// RunGeo routes a diurnal demand across three sites whose marginal PUE
// follows their weather (economizers engage when their outside air
// allows).
func RunGeo(env *Env) (Result, error) {
	seed := env.Seed
	rng := sim.NewRNG(seed)
	mkWeather := func(label string, mean float64) (*trace.Weather, error) {
		cfg := trace.DefaultWeatherConfig()
		cfg.Duration = 7 * 24 * time.Hour
		cfg.MeanTempC = mean
		return trace.GenerateWeather(cfg, rng.Fork(label))
	}
	cool, err := mkWeather("cool", 8)
	if err != nil {
		return nil, err
	}
	warm, err := mkWeather("warm", 24)
	if err != nil {
		return nil, err
	}
	econoOK := func(w *trace.Weather, t time.Duration) bool {
		return w.TempC.At(t) <= 18 && w.RH.At(t) >= 0.2 && w.RH.At(t) <= 0.8
	}

	const wattsPerUnit = 0.3
	demandAt := func(t time.Duration) float64 {
		h := math.Mod(t.Hours(), 24)
		return 600 + 700*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
	}

	var homeJ, routedJ, econoUnits, totalUnits, unplacedUnits float64
	for hr := 0; hr < 7*24; hr++ {
		t := time.Duration(hr) * time.Hour
		demand := demandAt(t)
		totalUnits += demand

		// Home-only operation: the warm chiller-bound site.
		homePUE := 1.9
		if econoOK(warm, t) {
			homePUE = 1.3
		}
		homeJ += demand * wattsPerUnit * homePUE * 3600

		// Federation: home + a cool economized site + a far site out of
		// the latency bound.
		coolPUE := 1.9
		if econoOK(cool, t) {
			coolPUE = 1.25
		}
		sites := []core.Site{
			{Name: "home-warm", CapacityUnits: 1400, MarginalPUE: homePUE, WattsPerUnit: wattsPerUnit, Latency: 20 * time.Millisecond},
			{Name: "north-cool", CapacityUnits: 900, MarginalPUE: coolPUE, WattsPerUnit: wattsPerUnit, Latency: 70 * time.Millisecond},
			{Name: "far-arctic", CapacityUnits: 2000, MarginalPUE: 1.15, WattsPerUnit: wattsPerUnit, Latency: 250 * time.Millisecond},
		}
		allocs, powerW, unplaced, err := core.GeoRoute(demand, sites, 100*time.Millisecond)
		if err != nil {
			return nil, err
		}
		routedJ += powerW * 3600
		unplacedUnits += unplaced
		for _, a := range allocs {
			if a.Site == "north-cool" && coolPUE < 1.5 {
				econoUnits += a.Units
			}
			if a.Site == "home-warm" && homePUE < 1.5 {
				econoUnits += a.Units
			}
		}
	}
	res := GeoResult{
		HomeKWh:    homeJ / 3.6e6,
		RoutedKWh:  routedJ / 3.6e6,
		EconoShare: econoUnits / totalUnits,
		Unplaced:   unplacedUnits / totalUnits,
	}
	if homeJ > 0 {
		res.Saving = 1 - routedJ/homeJ
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// ablate-forecast — forecaster family vs flash-crowd ramps
// ---------------------------------------------------------------------------

// AblateForecastRow is one forecaster's outcome on the surge.
type AblateForecastRow struct {
	Name      string
	Shortfall float64 // fraction of periods with capacity < demand
	MeanFleet float64
}

// AblateForecastResult compares provisioner forecasters on the Animoto
// surge.
type AblateForecastResult struct {
	Rows []AblateForecastRow
}

// ID implements Result.
func (AblateForecastResult) ID() string { return "ablate-forecast" }

// Report implements Result.
func (r AblateForecastResult) Report() string {
	var b strings.Builder
	b.WriteString(header("ablate-forecast", "forecaster ablation on the surge (design choice)"))
	b.WriteString("forecaster      shortfall%  mean_fleet\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s  %9.2f  %10.1f\n", row.Name, row.Shortfall*100, row.MeanFleet)
	}
	b.WriteString("trend-following (Holt) should ride the exponential ramp best\n")
	return b.String()
}

// RunAblateForecast runs the surge under three forecaster families. The
// scenario is deliberately tight — a one-day ramp, no spare servers, 95 %
// target utilization — so forecaster quality is the only safety margin.
func RunAblateForecast(env *Env) (Result, error) {
	seed := env.Seed
	cfg := trace.DefaultSurgeConfig()
	cfg.RampDuration = 24 * time.Hour // steeper than the 3-day Animoto ramp
	surge, err := trace.GenerateSurge(cfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	mk := func(name string) (control.Forecaster, error) {
		switch name {
		case "ewma":
			return control.NewEWMA(0.4)
		case "holt":
			return control.NewHolt(0.6, 0.3)
		case "window+2sd":
			return control.NewMovingWindow(12, 2)
		default:
			return nil, fmt.Errorf("exp: unknown forecaster %q", name)
		}
	}
	var res AblateForecastResult
	for _, name := range []string{"ewma", "holt", "window+2sd"} {
		f, err := mk(name)
		if err != nil {
			return nil, err
		}
		prov, err := onoff.NewProvisioner(onoff.ProvisionerConfig{
			CapacityPerServer: 1,
			TargetUtil:        0.95,
			Spares:            0,
			Min:               20,
			Max:               4000,
			DownscaleAfter:    6,
			LookaheadSteps:    2,
			Forecaster:        f,
		})
		if err != nil {
			return nil, err
		}
		const step = 10 * time.Minute
		fleet := 50
		var short int
		var fleetSum float64
		steps := int(surge.Duration() / step)
		for i := 0; i < steps; i++ {
			t := time.Duration(i) * step
			demand := surge.At(t)
			if float64(fleet) < demand {
				short++
			}
			fleetSum += float64(fleet)
			prov.Observe(demand)
			fleet = prov.Desired(fleet)
		}
		res.Rows = append(res.Rows, AblateForecastRow{
			Name:      name,
			Shortfall: float64(short) / float64(steps),
			MeanFleet: fleetSum / float64(steps),
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// ablate-ladder — DVFS ladder depth under coordination
// ---------------------------------------------------------------------------

// AblateLadderRow is one ladder's coordinated-run outcome.
type AblateLadderRow struct {
	Name      string
	States    int
	EnergyKWh float64
}

// AblateLadderResult measures how much the DVFS ladder depth matters once
// on/off coordination exists — at 60 % idle power, consolidation
// dominates, which is exactly the energy-proportionality argument of [9].
type AblateLadderResult struct {
	Rows []AblateLadderRow
}

// ID implements Result.
func (AblateLadderResult) ID() string { return "ablate-ladder" }

// Report implements Result.
func (r AblateLadderResult) Report() string {
	var b strings.Builder
	b.WriteString(header("ablate-ladder", "DVFS ladder depth under coordination (design choice)"))
	b.WriteString("ladder        states  energy_kWh\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s  %6d  %10.2f\n", row.Name, row.States, row.EnergyKWh)
	}
	b.WriteString("with 60% idle power, coordination gains come mostly from on/off, not ladder depth\n")
	return b.String()
}

// RunAblateLadder runs the coordinated manager with three ladders.
func RunAblateLadder(env *Env) (Result, error) {
	seed := env.Seed
	fine := make([]server.PState, 0, 9)
	for f := 1.0; f > 0.55; f -= 0.05 {
		fine = append(fine, server.PState{Freq: f, DynFactor: f * f * f})
	}
	ladders := []struct {
		name   string
		states []server.PState
	}{
		{"none", []server.PState{{Freq: 1, DynFactor: 1}}},
		{"default-5", server.DefaultPStates()},
		{"fine-9", fine},
	}
	const fleet = 40
	var res AblateLadderResult
	for _, lad := range ladders {
		srv := server.DefaultConfig()
		srv.PStates = lad.states
		demand := func(now time.Duration) float64 {
			h := math.Mod(now.Hours(), 24)
			frac := 0.15 + 0.35*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
			return frac * fleet * srv.Capacity
		}
		e := env.NewEngine(seed)
		m, err := core.NewManager(e, core.ManagerConfig{
			ServerConfig:   srv,
			FleetSize:      fleet,
			Queue:          workload.DefaultQueueModel(),
			SLA:            100 * time.Millisecond,
			DecisionPeriod: time.Minute,
			Mode:           core.ModeCoordinated,
			InitialOn:      fleet / 4,
		}, demand)
		if err != nil {
			return nil, err
		}
		m.Start()
		const horizon = 2 * 24 * time.Hour
		if err := e.Run(horizon); err != nil {
			return nil, err
		}
		rr := m.Result(horizon)
		res.Rows = append(res.Rows, AblateLadderRow{
			Name:      lad.name,
			States:    len(lad.states),
			EnergyKWh: rr.EnergyKWh,
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// ablate-hysteresis — downscale hysteresis vs machine cycling
// ---------------------------------------------------------------------------

// AblateHysteresisRow is one hysteresis setting's outcome.
type AblateHysteresisRow struct {
	DownscaleAfter int
	UpSwitches     int
	BootKWh        float64
	MeanFleet      float64
}

// AblateHysteresisResult measures how downscale hysteresis suppresses
// boot-energy-wasting cycles on a noisy workload (§4.3: "this wakeup
// process may consume more energy and offset the benefit of sleeping").
type AblateHysteresisResult struct {
	Rows []AblateHysteresisRow
}

// ID implements Result.
func (AblateHysteresisResult) ID() string { return "ablate-hysteresis" }

// Report implements Result.
func (r AblateHysteresisResult) Report() string {
	var b strings.Builder
	b.WriteString(header("ablate-hysteresis", "downscale hysteresis vs machine cycling (design choice)"))
	b.WriteString("downscale_after  scale_ups  boot_kWh  mean_fleet\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%15d  %9d  %8.2f  %10.1f\n",
			row.DownscaleAfter, row.UpSwitches, row.BootKWh, row.MeanFleet)
	}
	return b.String()
}

// RunAblateHysteresis drives a noisy diurnal trace through provisioners
// with increasing hysteresis.
func RunAblateHysteresis(env *Env) (Result, error) {
	seed := env.Seed
	cfg := trace.DefaultDiurnalConfig()
	cfg.Duration = 3 * 24 * time.Hour
	cfg.Step = 5 * time.Minute
	cfg.NoiseSD = 0.12 // noisy: tempts a naive policy into cycling
	cfg.Mean = 500
	cfg.Swing = 0.6
	demand, err := trace.GenerateDiurnal(cfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	srv := server.DefaultConfig()
	var res AblateHysteresisResult
	for _, after := range []int{1, 3, 6, 12} {
		prov, err := onoff.NewProvisioner(onoff.ProvisionerConfig{
			CapacityPerServer: 10, // demand units per server
			TargetUtil:        0.8,
			Spares:            2,
			Min:               4,
			Max:               200,
			DownscaleAfter:    after,
			LookaheadSteps:    2,
		})
		if err != nil {
			return nil, err
		}
		fleet := 50
		var ups int
		var bootJ, fleetSum float64
		steps := demand.Len()
		for i := 0; i < steps; i++ {
			t := time.Duration(i) * cfg.Step
			prov.Observe(demand.At(t))
			next := prov.Desired(fleet)
			if next > fleet {
				ups++
				bootJ += float64(next-fleet) * srv.BootEnergy
			}
			fleet = next
			fleetSum += float64(fleet)
		}
		res.Rows = append(res.Rows, AblateHysteresisRow{
			DownscaleAfter: after,
			UpSwitches:     ups,
			BootKWh:        bootJ / 3.6e6,
			MeanFleet:      fleetSum / float64(steps),
		})
	}
	return res, nil
}
