package exp

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRetryStormShape(t *testing.T) {
	r := run(t, "retry-storm").(RetryStormResult)
	// The defining property of a metastable failure: the overload
	// outlives its trigger by an order of magnitude under naive retries.
	if r.Naive.OverloadMinutes < 10*r.TriggerMinutes {
		t.Errorf("naive overload %.1f min after a %.0f-min trigger, want >= 10x",
			r.Naive.OverloadMinutes, r.TriggerMinutes)
	}
	if r.Naive.RecoveryMinutes < 10*r.TriggerMinutes {
		t.Errorf("naive recovery %.1f min, want the storm to outlive the trigger >= 10x",
			r.Naive.RecoveryMinutes)
	}
	// The retry budget caps retry flow below the divergence threshold.
	if r.Budget.RecoveryMinutes > 2*r.TriggerMinutes {
		t.Errorf("budget recovery %.1f min after a %.0f-min trigger, want <= 2x",
			r.Budget.RecoveryMinutes, r.TriggerMinutes)
	}
	if r.Budget.AbandonedFrac > 1e-9 {
		t.Errorf("budget abandoned %.3g of fresh users, want none", r.Budget.AbandonedFrac)
	}
	if r.Budget.GoodputFrac <= r.Naive.GoodputFrac {
		t.Errorf("budget goodput %.3f vs naive %.3f, want better",
			r.Budget.GoodputFrac, r.Naive.GoodputFrac)
	}
	// A breaker over naive clients caps the rejection waste (better
	// goodput than bare naive) but the clients re-trip it on every
	// close, so it keeps cycling instead of recovering.
	if r.Breaker.GoodputFrac <= r.Naive.GoodputFrac {
		t.Errorf("breaker goodput %.3f vs naive %.3f, want better",
			r.Breaker.GoodputFrac, r.Naive.GoodputFrac)
	}
	if r.Breaker.BreakerTrips <= 1 {
		t.Errorf("breaker trips %d, want duty-cycling (naive clients re-trip on close)",
			r.Breaker.BreakerTrips)
	}
	// The full stack trips exactly once for the dip and returns to
	// clean service.
	if r.Stack.BreakerTrips != 1 {
		t.Errorf("stack trips %d, want exactly 1", r.Stack.BreakerTrips)
	}
	if r.Stack.RecoveryMinutes > 2*r.TriggerMinutes {
		t.Errorf("stack recovery %.1f min, want <= 2x trigger", r.Stack.RecoveryMinutes)
	}
	if r.Stack.GoodputFrac < 0.99 {
		t.Errorf("stack goodput %.3f, want >= 0.99", r.Stack.GoodputFrac)
	}
	// Amplification separates storming clients from throttled ones.
	if r.Naive.Amplification < 3 {
		t.Errorf("naive amplification %.2f, want a storm (>= 3 attempts/user)", r.Naive.Amplification)
	}
	if r.Budget.Amplification > 1.1 {
		t.Errorf("budget amplification %.2f, want near 1", r.Budget.Amplification)
	}
}

func TestRetryBudgetShape(t *testing.T) {
	r := run(t, "retry-budget").(RetryBudgetResult)
	// Goodput orders by how hard the policy throttles the feedback:
	// budget > backoff > naive. Backoff spreads retries over time —
	// which admits more users than hammering — but the steady-state
	// retry rate is unchanged, so it cannot break the loop.
	if r.Budget.GoodputFrac <= r.Backoff.GoodputFrac {
		t.Errorf("budget goodput %.3f vs backoff %.3f, want better",
			r.Budget.GoodputFrac, r.Backoff.GoodputFrac)
	}
	if r.Backoff.GoodputFrac <= r.Naive.GoodputFrac {
		t.Errorf("backoff goodput %.3f vs naive %.3f, want better",
			r.Backoff.GoodputFrac, r.Naive.GoodputFrac)
	}
	if r.Naive.OverloadMinutes < 10*r.SpikeMinutes {
		t.Errorf("naive overload %.1f min after a %.0f-min spike, want a sustained storm",
			r.Naive.OverloadMinutes, r.SpikeMinutes)
	}
	if r.Budget.OverloadMinutes > 2*r.SpikeMinutes {
		t.Errorf("budget overload %.1f min, want bounded by the spike", r.Budget.OverloadMinutes)
	}
	if r.Budget.RecoveryMinutes >= r.Naive.RecoveryMinutes {
		t.Errorf("budget recovery %.1f min vs naive %.1f, want faster",
			r.Budget.RecoveryMinutes, r.Naive.RecoveryMinutes)
	}
	if r.Budget.AbandonedFrac > 1e-9 {
		t.Errorf("budget abandoned %.3g of fresh users, want none", r.Budget.AbandonedFrac)
	}
}

func TestFaultRackShape(t *testing.T) {
	r := run(t, "fault-rack").(FaultRackResult)
	perRack := r.Servers / 4
	if r.Correlated.Injections != 1 {
		t.Errorf("correlated injections %d, want 1 rack failure", r.Correlated.Injections)
	}
	if r.Dispersed.Injections != perRack {
		t.Errorf("dispersed injections %d, want %d crashes", r.Dispersed.Injections, perRack)
	}
	// Same downtime budget, different concentration.
	if r.Correlated.MinActive != r.Servers-perRack {
		t.Errorf("correlated min active %d, want %d (whole rack down)",
			r.Correlated.MinActive, r.Servers-perRack)
	}
	if r.Dispersed.MinActive != r.Servers-1 {
		t.Errorf("dispersed min active %d, want %d (one at a time)",
			r.Dispersed.MinActive, r.Servers-1)
	}
	// The rack notice trips the breaker proactively and holds the shed
	// ladder; users see rejections, fast-fails, and abandonment.
	if r.Correlated.BreakerTrips < 1 {
		t.Error("correlated rack loss never tripped the breaker")
	}
	if r.Correlated.FastFailed <= 0 || r.Correlated.RejectedUsers <= 0 {
		t.Errorf("correlated loss must turn users away: fastfail %.0f rejected %.0f",
			r.Correlated.FastFailed, r.Correlated.RejectedUsers)
	}
	if r.Correlated.ShedTicks == 0 {
		t.Error("correlated loss never held the admission shed ladder")
	}
	// Dispersed, the same server-minutes disappear into fleet headroom.
	if r.Dispersed.BreakerTrips != 0 {
		t.Errorf("dispersed trips %d, want 0", r.Dispersed.BreakerTrips)
	}
	if r.Dispersed.RejectedUsers != 0 || r.Dispersed.FastFailed != 0 {
		t.Errorf("dispersed crashes turned users away: rejected %.0f fastfail %.0f",
			r.Dispersed.RejectedUsers, r.Dispersed.FastFailed)
	}
	if r.Dispersed.GoodputFrac < 1-1e-9 {
		t.Errorf("dispersed goodput %.6f, want 1", r.Dispersed.GoodputFrac)
	}
	if r.Correlated.GoodputFrac >= r.Dispersed.GoodputFrac {
		t.Errorf("correlated goodput %.6f vs dispersed %.6f, want worse",
			r.Correlated.GoodputFrac, r.Dispersed.GoodputFrac)
	}
	// Repairs bring everything back.
	if r.Correlated.FinalActive != r.Servers || r.Dispersed.FinalActive != r.Servers {
		t.Errorf("final active %d/%d, want full fleet %d back",
			r.Correlated.FinalActive, r.Dispersed.FinalActive, r.Servers)
	}
}

func TestRetryExperimentsDeterminism(t *testing.T) {
	for _, id := range []string{"retry-storm", "fault-rack"} {
		a, err := Run(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, 7)
		if err != nil {
			t.Fatal(err)
		}
		if a.Report() != b.Report() {
			t.Errorf("same seed produced different %s reports", id)
		}
	}
}

// TestChaosSoakRetries layers the closed retry loop and the degrader's
// breaker hook over a randomized multi-fault program — rack failures,
// capacity dips, independent crashes — and asserts both the engine's
// physical-law invariants and the retry loop's conservation ledger hold
// all the way through.
func TestChaosSoakRetries(t *testing.T) {
	const (
		horizon = 12 * time.Hour
		dt      = time.Minute
	)
	srvCfg := server.DefaultConfig()
	for seed := int64(1); seed <= 3; seed++ {
		env := NewEnv(seed)
		e := env.NewEngine(seed)
		dc, err := outageFacility(e, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		fleet := dc.Fleet()
		n := fleet.Size()
		fleet.SetTarget(n)
		if err := e.Run(srvCfg.BootDelay + time.Second); err != nil {
			t.Fatal(err)
		}
		fleet.Dispatch(e.Now(), 0.8*float64(n)*srvCfg.Capacity)

		adm, err := retryExpAdmission()
		if err != nil {
			t.Fatal(err)
		}
		rcfg := retryExpConfig(workload.RetryBudget)
		rcfg.Breaker = workload.DefaultBreakerConfig()
		rl, err := workload.NewRetryLoop(rcfg, adm, e.RNG().Fork("retry"))
		if err != nil {
			t.Fatal(err)
		}
		deg, err := core.NewDegrader(e, dc, core.DegraderConfig{})
		if err != nil {
			t.Fatal(err)
		}
		deg.SetRetry(rl)
		deg.Start()

		in := fault.NewInjector(e)
		in.WireServers(fleet.Servers())
		perRack := n / 4
		domains := make([][]int, 4)
		for r := range domains {
			for i := 0; i < perRack; i++ {
				domains[r] = append(domains[r], r*perRack+i)
			}
		}
		if err := in.WireDomains(domains); err != nil {
			t.Fatal(err)
		}
		in.Subscribe(deg.OnNotice)
		events, err := fault.GenerateSchedule(e.RNG().Fork("chaos"), fault.ScheduleConfig{
			Horizon:    horizon,
			CrashEvery: time.Hour, CrashFor: 30 * time.Minute,
			RackEvery: 3 * time.Hour, RackFor: 20 * time.Minute,
			DipEvery: 4 * time.Hour, DipFor: 15 * time.Minute,
			Servers: n,
			Racks:   len(domains),
			DipFrac: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Arm(events); err != nil {
			t.Fatal(err)
		}

		st := workload.DefaultRequestClasses()[workload.ClassInteractive].ServiceTime
		demandErl := 0.8 * float64(n)
		var tickErr error
		e.Every(dt, func(eng *sim.Engine) {
			if tickErr != nil {
				return
			}
			cap := float64(fleet.ActiveCount()) * (1 - in.ActiveDip())
			var fresh [workload.NumClasses]float64
			fresh[workload.ClassInteractive] = workload.UsersPerTick(demandErl/st.Seconds(), dt)
			rl.Tick(dt, &fresh, cap)
			tickErr = rl.CheckInvariants(eng.Now())
		})
		if err := e.Run(horizon); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tickErr != nil {
			t.Errorf("seed %d: retry ledger broken under chaos: %v", seed, tickErr)
		}
		if in.Injected() == 0 {
			t.Errorf("seed %d: chaos schedule injected nothing", seed)
		}
		if rl.FreshUsers() <= 0 {
			t.Errorf("seed %d: no traffic flowed", seed)
		}
		if err := env.InvariantErr(); err != nil {
			t.Errorf("seed %d: invariant violated under chaos: %v", seed, err)
		}
	}
}
