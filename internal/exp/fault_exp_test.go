package exp

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/sensornet"
	"repro/internal/sim"
)

func TestFaultOutageShape(t *testing.T) {
	r := run(t, "fault-outage").(FaultOutageResult)
	// With the generator starting on the first try the UPS bridges the
	// start delay and nothing is lost or shed.
	if r.RideThrough.BridgedKWh <= 0 {
		t.Error("ride-through must draw bridge energy from the UPS")
	}
	if r.RideThrough.UnservedKWh != 0 {
		t.Errorf("ride-through unserved %.3f kWh, want 0", r.RideThrough.UnservedKWh)
	}
	if r.RideThrough.SurvivalSheds != 0 || r.RideThrough.ShedServers != 0 {
		t.Error("ride-through must not shed load")
	}
	if r.RideThrough.GenAttempts != 1 || r.RideThrough.GenFailures != 0 {
		t.Errorf("ride-through generator %d/%d failed/attempts, want 0/1",
			r.RideThrough.GenFailures, r.RideThrough.GenAttempts)
	}
	// Redundancy loss engages emergency caps in both scenarios, and the
	// caps sit below the dispatch draw so throttling must bite.
	if r.RideThrough.CapEvents != 1 || r.GenFail.CapEvents != 1 {
		t.Errorf("cap events %d/%d, want 1 each", r.RideThrough.CapEvents, r.GenFail.CapEvents)
	}
	if r.RideThrough.ThrottleEvents == 0 {
		t.Error("emergency caps engaged but nothing throttled")
	}
	// When every start attempt fails the store runs dry: load is shed
	// to the survival fraction and the remainder goes unserved.
	if r.GenFail.GenAttempts != 3 || r.GenFail.GenFailures != 3 {
		t.Errorf("gen-fail generator %d/%d failed/attempts, want 3/3",
			r.GenFail.GenFailures, r.GenFail.GenAttempts)
	}
	if r.GenFail.UnservedKWh <= 0 {
		t.Error("gen-fail scenario must record unserved energy")
	}
	if r.GenFail.SurvivalSheds != 1 || r.GenFail.ShedServers == 0 {
		t.Errorf("gen-fail sheds %d (%d servers), want a survival shed",
			r.GenFail.SurvivalSheds, r.GenFail.ShedServers)
	}
	if r.GenFail.FinalOn >= r.RideThrough.FinalOn {
		t.Errorf("gen-fail ends with %d on vs ride-through %d, want fewer",
			r.GenFail.FinalOn, r.RideThrough.FinalOn)
	}
	if r.GenFail.BatteryMinFrac > 1e-6 {
		t.Errorf("gen-fail battery min fraction %.3f, want depleted", r.GenFail.BatteryMinFrac)
	}
	if r.RideThrough.BatteryMinFrac <= 0.1 {
		t.Errorf("ride-through battery min fraction %.3f, want a healthy reserve",
			r.RideThrough.BatteryMinFrac)
	}
}

func TestFaultCRACShape(t *testing.T) {
	r := run(t, "fault-crac").(FaultCRACResult)
	if r.Unmanaged.Trips == 0 {
		t.Error("unmanaged CRAC failure must trip thermal protection")
	}
	if r.Managed.Trips >= r.Unmanaged.Trips {
		t.Errorf("managed trips %d vs unmanaged %d, want fewer", r.Managed.Trips, r.Unmanaged.Trips)
	}
	if r.Managed.MaxInletC >= r.Unmanaged.MaxInletC {
		t.Errorf("managed max inlet %.1f vs unmanaged %.1f, want cooler",
			r.Managed.MaxInletC, r.Unmanaged.MaxInletC)
	}
	if r.DVFSDowns == 0 {
		t.Error("shedding ladder never engaged DVFS")
	}
	if r.ShedServers == 0 && r.Consolidations > 0 {
		t.Error("consolidation counted but no servers shed")
	}
}

func TestFaultSensorShape(t *testing.T) {
	r := run(t, "fault-sensor").(FaultSensorResult)
	if r.Naive.BlindRounds == 0 || r.Guarded.BlindRounds == 0 {
		t.Error("the blackout window must produce blind rounds in both modes")
	}
	if r.FailsafeRounds == 0 {
		t.Error("guarded mode never reached the fail-safe posture")
	}
	if r.FallbackRounds == 0 {
		t.Error("guard never replayed last-good telemetry")
	}
	// Fail-safe cooling keeps the blind surge cooler than coasting.
	if r.Guarded.MaxInletC >= r.Naive.MaxInletC {
		t.Errorf("guarded max inlet %.1f vs naive %.1f, want cooler",
			r.Guarded.MaxInletC, r.Naive.MaxInletC)
	}
	if r.Guarded.AlarmRounds > r.Naive.AlarmRounds {
		t.Errorf("guarded alarm rounds %d vs naive %d", r.Guarded.AlarmRounds, r.Naive.AlarmRounds)
	}
	// Stuck sensors deliver on time but lie: reconstruction error must
	// be visibly worse than the healthy noise floor.
	if r.StuckRMSE <= r.HealthyRMSE {
		t.Errorf("stuck RMSE %.2f vs healthy %.2f, want worse", r.StuckRMSE, r.HealthyRMSE)
	}
}

func TestFaultDeterminism(t *testing.T) {
	for _, id := range []string{"fault-outage", "fault-sensor"} {
		a, err := Run(id, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, 5)
		if err != nil {
			t.Fatal(err)
		}
		if a.Report() != b.Report() {
			t.Errorf("same seed produced different %s reports", id)
		}
	}
}

// TestChaosSoak arms a randomized fault program — outages, CRAC
// failures, crashes, sensor faults — against a managed facility and
// asserts the physical-law invariants hold all the way through, for
// several seeds.
func TestChaosSoak(t *testing.T) {
	const horizon = 12 * time.Hour
	for seed := int64(1); seed <= 5; seed++ {
		env := NewEnv(seed)
		e := env.NewEngine(seed)
		dc, err := outageFacility(e, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		dc.Fleet().SetTarget(dc.Fleet().Size())
		if err := e.Run(2 * time.Minute); err != nil {
			t.Fatal(err)
		}
		dc.Fleet().Dispatch(e.Now(), 0.6*float64(dc.Fleet().Size())*1000)
		deg, err := core.NewDegrader(e, dc, core.DegraderConfig{})
		if err != nil {
			t.Fatal(err)
		}
		deg.Start()
		net, err := sensornet.NewNetwork(
			sensornet.DefaultNetworkConfig(dc.Room().Zones()), e.RNG().Fork("sensors"))
		if err != nil {
			t.Fatal(err)
		}
		e.Every(time.Minute, func(eng *sim.Engine) {
			net.Collect(func(z int) float64 { return dc.Room().ZoneInletC(z) })
		})
		in := fault.NewInjector(e)
		in.WireRoom(dc.Room())
		in.WireServers(dc.Fleet().Servers())
		in.WireSensors(net)
		bat, err := power.BatteryForAutonomy(dc.ITPowerW(), 5*time.Minute, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.WireUtility(fault.UtilityConfig{
			Battery:          bat,
			LoadW:            func() float64 { return dc.Flow().OutW },
			GenStartDelay:    2 * time.Minute,
			GenStartFailProb: 0.3,
			GenRetries:       2,
			GenRetryBackoff:  time.Minute,
			Tick:             10 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
		in.Subscribe(deg.OnNotice)
		events, err := fault.GenerateSchedule(e.RNG().Fork("chaos"), fault.ScheduleConfig{
			Horizon:     horizon,
			OutageEvery: 4 * time.Hour, OutageFor: 30 * time.Minute,
			CRACEvery: 3 * time.Hour, CRACFor: time.Hour,
			CrashEvery: time.Hour, CrashFor: 30 * time.Minute,
			SensorEvery: 45 * time.Minute, SensorFor: time.Hour,
			CRACs:   dc.Room().CRACs(),
			Servers: dc.Fleet().Size(),
			Sensors: dc.Room().Zones(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Arm(events); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(horizon); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.Injected() == 0 {
			t.Errorf("seed %d: chaos schedule injected nothing", seed)
		}
		if err := env.InvariantErr(); err != nil {
			t.Errorf("seed %d: invariant violated under chaos: %v", seed, err)
		}
	}
}
