package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
)

// ---------------------------------------------------------------------------
// parking — core parking between DVFS and server-off (§4.3)
// ---------------------------------------------------------------------------

// ParkingRow is one strategy's day.
type ParkingRow struct {
	Strategy    string
	EnergyKWh   float64
	SavingVsOff float64 // fraction of the server-off saving captured
}

// ParkingResult compares three ways to handle a half-idle fleet overnight:
// leave servers fully on, park unused cores ("core parking is a technique
// to selectively turn off cores to reduce CPU power consumption"), or turn
// whole servers off ("the most effective and aggressive power saving").
type ParkingResult struct {
	Rows []ParkingRow
}

// ID implements Result.
func (ParkingResult) ID() string { return "parking" }

// Report implements Result.
func (r ParkingResult) Report() string {
	var b strings.Builder
	b.WriteString(header("parking", "core parking sits between DVFS and server-off (§4.3)"))
	b.WriteString("strategy      energy_kWh  of_off_saving%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s  %10.2f  %14.0f\n", row.Strategy, row.EnergyKWh, row.SavingVsOff*100)
	}
	b.WriteString("ordering check: server-off < core-parking < always-on (paper §4.3)\n")
	return b.String()
}

// RunParking runs a 10-server fleet through a diurnal day under the three
// strategies. Demand is dispatched evenly; the parking strategy parks the
// cores the demand does not need, and the off strategy consolidates onto
// the fewest servers and powers off the rest.
func RunParking(env *Env) (Result, error) {
	seed := env.Seed
	const n = 10
	cfg := server.DefaultConfig()
	demandFrac := func(now time.Duration) float64 {
		h := math.Mod(now.Hours(), 24)
		return 0.15 + 0.45*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
	}

	runStrategy := func(strategy string) (float64, error) {
		e := env.NewEngine(seed)
		servers := make([]*server.Server, 0, n)
		for i := 0; i < n; i++ {
			c := cfg
			c.Name = fmt.Sprintf("srv-%02d", i)
			s, err := server.New(c)
			if err != nil {
				return 0, err
			}
			s.PowerOn(e)
			servers = append(servers, s)
		}
		if err := e.Run(cfg.BootDelay); err != nil {
			return 0, err
		}
		e.Every(time.Minute, func(eng *sim.Engine) {
			now := eng.Now()
			frac := demandFrac(now)
			offered := frac * n * cfg.Capacity
			switch strategy {
			case "always-on":
				for _, s := range servers {
					s.SetUtilization(now, frac)
				}
			case "core-parking":
				// Every server stays on, spreads the load, and parks
				// the cores headroom allows (keep 1/Cores granularity
				// plus one core of slack).
				for _, s := range servers {
					s.SetUtilization(now, frac)
					needCores := int(math.Ceil(frac*float64(cfg.Cores))) + 1
					if needCores > cfg.Cores {
						needCores = cfg.Cores
					}
					if err := s.ParkCores(now, cfg.Cores-needCores); err != nil {
						panic(err) // bounds guaranteed above
					}
				}
			case "server-off":
				// Keep just enough servers for the load at 90 % target.
				need := int(math.Ceil(offered / (cfg.Capacity * 0.9)))
				if need < 1 {
					need = 1
				}
				if need > n {
					need = n
				}
				for i, s := range servers {
					switch {
					case i < need:
						if s.State() == server.StateOff {
							s.PowerOn(eng)
						}
						if s.State() == server.StateActive {
							s.SetUtilization(now, offered/float64(need)/cfg.Capacity)
						}
					default:
						if s.State() == server.StateActive {
							s.PowerOff(eng)
						}
					}
				}
			}
		})
		horizon := cfg.BootDelay + 24*time.Hour
		if err := e.Run(horizon); err != nil {
			return 0, err
		}
		var joules float64
		for _, s := range servers {
			s.Sync(horizon)
			joules += s.EnergyJ()
		}
		return joules / 3.6e6, nil
	}

	strategies := []string{"always-on", "core-parking", "server-off"}
	energies := make(map[string]float64, len(strategies))
	for _, st := range strategies {
		kwh, err := runStrategy(st)
		if err != nil {
			return nil, err
		}
		energies[st] = kwh
	}
	baseline := energies["always-on"]
	offSaving := baseline - energies["server-off"]
	var res ParkingResult
	for _, st := range strategies {
		row := ParkingRow{Strategy: st, EnergyKWh: energies[st]}
		if offSaving > 0 {
			row.SavingVsOff = (baseline - energies[st]) / offSaving
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
