package onoff

import (
	"testing"
	"time"
)

func mustProvisioner(t *testing.T, cfg ProvisionerConfig) *Provisioner {
	t.Helper()
	p, err := NewProvisioner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func baseConfig() ProvisionerConfig {
	return ProvisionerConfig{
		CapacityPerServer: 100,
		TargetUtil:        0.8,
		Spares:            1,
		Min:               1,
		Max:               100,
		DownscaleAfter:    3,
		LookaheadSteps:    2,
	}
}

func TestProvisionerScalesWithLoad(t *testing.T) {
	p := mustProvisioner(t, baseConfig())
	for i := 0; i < 10; i++ {
		p.Observe(400) // needs ceil(400/80)=5 + 1 spare = 6
	}
	if got := p.Desired(3); got != 6 {
		t.Errorf("Desired at steady 400 load = %d, want 6", got)
	}
}

func TestProvisionerAnticipatesRamp(t *testing.T) {
	// With a Holt forecaster and lookahead, a steady ramp should
	// provision above the current instantaneous requirement — the
	// boot-delay-aware behaviour of [18].
	p := mustProvisioner(t, baseConfig())
	var load float64
	for i := 0; i < 30; i++ {
		load = 100 + 50*float64(i) // strong ramp
		p.Observe(load)
	}
	nowNeed := int(load/80) + 1 + 1
	if got := p.Desired(nowNeed); got <= nowNeed {
		t.Errorf("ramp-aware Desired = %d, want above instantaneous need %d", got, nowNeed)
	}
}

func TestProvisionerDownscaleHysteresis(t *testing.T) {
	p := mustProvisioner(t, baseConfig())
	for i := 0; i < 10; i++ {
		p.Observe(800)
	}
	high := p.Desired(1) // scale up immediately
	if high < 10 {
		t.Fatalf("high-load fleet = %d, want >= 10", high)
	}
	// Load collapses; the fleet must hold for DownscaleAfter decisions.
	current := high
	for i := 0; i < 10; i++ {
		p.Observe(80)
	}
	first := p.Desired(current)
	if first != current {
		t.Fatalf("downscaled on first low decision: %d -> %d", current, first)
	}
	second := p.Desired(current)
	if second != current {
		t.Fatalf("downscaled on second low decision")
	}
	third := p.Desired(current)
	if third >= current {
		t.Fatalf("did not downscale after hysteresis window: %d", third)
	}
}

func TestProvisionerUpscaleIsImmediate(t *testing.T) {
	p := mustProvisioner(t, baseConfig())
	for i := 0; i < 5; i++ {
		p.Observe(100)
	}
	low := p.Desired(2)
	for i := 0; i < 2; i++ {
		p.Observe(2000)
	}
	if got := p.Desired(low); got <= low {
		t.Errorf("upscale not immediate: %d -> %d", low, got)
	}
}

func TestProvisionerBounds(t *testing.T) {
	cfg := baseConfig()
	cfg.Min = 4
	cfg.Max = 8
	p := mustProvisioner(t, cfg)
	p.Observe(0)
	// Hysteresis must not block the floor: run enough decisions.
	got := 8
	for i := 0; i < 5; i++ {
		p.Observe(0)
		got = p.Desired(got)
	}
	if got != 4 {
		t.Errorf("zero-load fleet = %d, want floor 4", got)
	}
	for i := 0; i < 5; i++ {
		p.Observe(1e9)
	}
	if got := p.Desired(4); got != 8 {
		t.Errorf("huge-load fleet = %d, want ceiling 8", got)
	}
}

func TestProvisionerNegativeLoadClamped(t *testing.T) {
	p := mustProvisioner(t, baseConfig())
	for i := 0; i < 5; i++ {
		p.Observe(-100)
	}
	got := 5
	for i := 0; i < 5; i++ {
		p.Observe(-100)
		got = p.Desired(got)
	}
	if got != baseConfig().Min+baseConfig().Spares && got != baseConfig().Min {
		t.Errorf("negative-load fleet = %d, want near floor", got)
	}
}

func TestProvisionerValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*ProvisionerConfig)
	}{
		{"zero capacity", func(c *ProvisionerConfig) { c.CapacityPerServer = 0 }},
		{"zero target", func(c *ProvisionerConfig) { c.TargetUtil = 0 }},
		{"target > 1", func(c *ProvisionerConfig) { c.TargetUtil = 1.5 }},
		{"negative spares", func(c *ProvisionerConfig) { c.Spares = -1 }},
		{"max below min", func(c *ProvisionerConfig) { c.Min = 10; c.Max = 5 }},
		{"zero max", func(c *ProvisionerConfig) { c.Min = 0; c.Max = 0 }},
		{"zero hysteresis", func(c *ProvisionerConfig) { c.DownscaleAfter = 0 }},
		{"zero lookahead", func(c *ProvisionerConfig) { c.LookaheadSteps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig()
			tt.mutate(&cfg)
			if _, err := NewProvisioner(cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestDelayTrigger(t *testing.T) {
	d := DelayTrigger{
		High: 100 * time.Millisecond, Low: 30 * time.Millisecond,
		StepUp: 2, StepDown: 1, Min: 1, Max: 10,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Desired(5, 200*time.Millisecond); got != 7 {
		t.Errorf("slow delay: %d, want 7", got)
	}
	if got := d.Desired(5, 10*time.Millisecond); got != 4 {
		t.Errorf("fast delay: %d, want 4", got)
	}
	if got := d.Desired(5, 50*time.Millisecond); got != 5 {
		t.Errorf("in-band delay: %d, want unchanged 5", got)
	}
	if got := d.Desired(10, 200*time.Millisecond); got != 10 {
		t.Errorf("ceiling: %d, want 10", got)
	}
	if got := d.Desired(1, 10*time.Millisecond); got != 1 {
		t.Errorf("floor: %d, want 1", got)
	}
}

func TestDelayTriggerValidation(t *testing.T) {
	base := DelayTrigger{High: 100 * time.Millisecond, Low: 30 * time.Millisecond, StepUp: 1, StepDown: 1, Min: 1, Max: 10}
	tests := []struct {
		name   string
		mutate func(*DelayTrigger)
	}{
		{"high below low", func(d *DelayTrigger) { d.High = d.Low / 2 }},
		{"zero low", func(d *DelayTrigger) { d.Low = 0 }},
		{"zero step up", func(d *DelayTrigger) { d.StepUp = 0 }},
		{"zero step down", func(d *DelayTrigger) { d.StepDown = 0 }},
		{"zero max", func(d *DelayTrigger) { d.Min = 0; d.Max = 0 }},
		{"max below min", func(d *DelayTrigger) { d.Min = 5; d.Max = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := base
			tt.mutate(&d)
			if err := d.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}
