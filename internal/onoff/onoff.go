// Package onoff implements sleep (on/off) scheduling policies (§4.3):
// forecast-driven energy-aware server provisioning with wake-up-delay
// awareness and hysteresis (after Chen et al. [18]), and the naive
// delay-triggered policy whose oblivious composition with DVFS produces
// the oscillation pathology of §5.1 (after Heo et al. [29]).
package onoff

import (
	"fmt"
	"time"

	"repro/internal/control"
)

// Provisioner decides how many servers should be awake for a forecast
// load. It looks ahead by the boot delay (a server turned on now helps
// only after it boots), adds spares against flash crowds, and applies
// downscale hysteresis so short dips do not cycle machines — cycling
// wastes boot energy ("sometime, this wakeup process may consume more
// energy and offset the benefit of sleeping").
type Provisioner struct {
	forecaster        control.Forecaster
	capacityPerServer float64
	targetUtil        float64
	spares            int
	min, max          int
	downscaleAfter    int
	lookaheadSteps    int

	// belowFor counts consecutive decisions where the demand-implied
	// count was below the current count.
	belowFor int
}

// ProvisionerConfig configures a Provisioner.
type ProvisionerConfig struct {
	// CapacityPerServer is the load one awake server carries at
	// utilization 1 (connections, requests/s — caller's unit).
	CapacityPerServer float64
	// TargetUtil is the planned per-server utilization (headroom below
	// 1 keeps response time sane).
	TargetUtil float64
	// Spares is the extra server count held against login spikes.
	Spares int
	// Min and Max bound the fleet.
	Min, Max int
	// DownscaleAfter is how many consecutive low decisions are needed
	// before shrinking (hysteresis).
	DownscaleAfter int
	// LookaheadSteps is how many decision periods ahead the forecast
	// must cover — set it to ceil(bootDelay / decisionPeriod).
	LookaheadSteps int
	// Forecaster predicts load; nil defaults to a Holt linear-trend
	// forecaster, which tracks ramps like flash-crowd onsets.
	Forecaster control.Forecaster
}

// NewProvisioner builds the policy.
func NewProvisioner(cfg ProvisionerConfig) (*Provisioner, error) {
	if cfg.CapacityPerServer <= 0 {
		return nil, fmt.Errorf("onoff: capacity per server %v must be positive", cfg.CapacityPerServer)
	}
	if cfg.TargetUtil <= 0 || cfg.TargetUtil > 1 {
		return nil, fmt.Errorf("onoff: target utilization %v out of (0,1]", cfg.TargetUtil)
	}
	if cfg.Spares < 0 {
		return nil, fmt.Errorf("onoff: spares %d must be non-negative", cfg.Spares)
	}
	if cfg.Min < 0 || cfg.Max < cfg.Min || cfg.Max == 0 {
		return nil, fmt.Errorf("onoff: bounds [%d,%d] invalid", cfg.Min, cfg.Max)
	}
	if cfg.DownscaleAfter < 1 {
		return nil, fmt.Errorf("onoff: downscale hysteresis %d must be >= 1", cfg.DownscaleAfter)
	}
	if cfg.LookaheadSteps < 1 {
		return nil, fmt.Errorf("onoff: lookahead %d must be >= 1", cfg.LookaheadSteps)
	}
	f := cfg.Forecaster
	if f == nil {
		var err error
		f, err = control.NewHolt(0.5, 0.3)
		if err != nil {
			return nil, err
		}
	}
	return &Provisioner{
		forecaster:        f,
		capacityPerServer: cfg.CapacityPerServer,
		targetUtil:        cfg.TargetUtil,
		spares:            cfg.Spares,
		min:               cfg.Min,
		max:               cfg.Max,
		downscaleAfter:    cfg.DownscaleAfter,
		lookaheadSteps:    cfg.LookaheadSteps,
	}, nil
}

// Observe folds in a load measurement (call once per decision period,
// before Desired).
func (p *Provisioner) Observe(load float64) {
	if load < 0 {
		load = 0
	}
	p.forecaster.Observe(load)
}

// Desired returns the server count to run next period given the current
// count. Scale-ups apply immediately (capacity lags by the boot delay,
// which the lookahead anticipated); scale-downs wait out the hysteresis.
func (p *Provisioner) Desired(current int) int {
	forecast := p.forecaster.Forecast(p.lookaheadSteps)
	if forecast < 0 {
		forecast = 0
	}
	need := int(ceilDiv(forecast, p.capacityPerServer*p.targetUtil)) + p.spares
	if need < p.min {
		need = p.min
	}
	if need > p.max {
		need = p.max
	}
	switch {
	case need > current:
		p.belowFor = 0
		return need
	case need < current:
		p.belowFor++
		if p.belowFor >= p.downscaleAfter {
			p.belowFor = 0
			return need
		}
		return current
	default:
		p.belowFor = 0
		return current
	}
}

func ceilDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	n := a / b
	if n != float64(int(n)) {
		return float64(int(n) + 1)
	}
	return n
}

// DelayTrigger is the naive delay-thresholded on/off policy of the §5.1
// pathology: add servers when measured delay exceeds High, remove when it
// falls below Low. It knows nothing about DVFS — when a frequency governor
// slows servers and delay rises, this policy concludes the system is
// overloaded and wakes more machines.
type DelayTrigger struct {
	// High and Low are the delay thresholds (High > Low).
	High, Low time.Duration
	// StepUp and StepDown are the count adjustments per trigger.
	StepUp, StepDown int
	// Min and Max bound the fleet.
	Min, Max int
}

// Validate checks the trigger.
func (d DelayTrigger) Validate() error {
	if d.High <= d.Low || d.Low <= 0 {
		return fmt.Errorf("onoff: delay thresholds low=%v high=%v invalid", d.Low, d.High)
	}
	if d.StepUp < 1 || d.StepDown < 1 {
		return fmt.Errorf("onoff: steps must be >= 1")
	}
	if d.Min < 0 || d.Max < d.Min || d.Max == 0 {
		return fmt.Errorf("onoff: bounds [%d,%d] invalid", d.Min, d.Max)
	}
	return nil
}

// Desired returns the next server count for a measured delay.
func (d DelayTrigger) Desired(current int, delay time.Duration) int {
	next := current
	switch {
	case delay > d.High:
		next = current + d.StepUp
	case delay < d.Low:
		next = current - d.StepDown
	}
	if next < d.Min {
		next = d.Min
	}
	if next > d.Max {
		next = d.Max
	}
	return next
}
