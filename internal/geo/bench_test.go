package geo

import (
	"testing"
	"time"
)

// geoHorizon is the simulated span each benchmark iteration covers.
const geoHorizon = 2 * time.Hour

// benchGeoConfig builds a sites × perSite federation with the full
// request stack (admission everywhere, retry loops on odd sites) but no
// facility substrate, so the numbers isolate what federation itself
// costs: per-site engines, the epoch barrier, and the router.
func benchGeoConfig(sites, perSite int, parallel bool) Config {
	cfg := Config{
		Seed:     1,
		Epoch:    15 * time.Minute,
		Tick:     time.Minute,
		Horizon:  geoHorizon,
		Mode:     RouteWeighted,
		Parallel: parallel,
	}
	for i := 0; i < sites; i++ {
		cfg.Sites = append(cfg.Sites, SiteConfig{
			Name:            "s" + string(rune('a'+i)),
			TZOffset:        time.Duration(i) * 24 * time.Hour / time.Duration(sites),
			PopulationShare: 1,
			FleetSize:       perSite,
			Retry:           i%2 == 1,
		})
	}
	return cfg
}

// benchGeo reports simulated server-hours per wall second across the
// whole federation — the same throughput metric the benchdiff gate
// watches for the single-facility scale suite. Construction (trace
// generation, fleet boot wiring) runs off the clock so the number
// measures federated execution, which is what Parallel moves.
func benchGeo(b *testing.B, sites, perSite int, parallel bool) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := New(benchGeoConfig(sites, perSite, parallel))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := f.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if f.Result().GlobalEnergyKWh <= 0 {
			b.Fatal("no energy accumulated")
		}
		f.Close()
		b.StartTimer()
	}
	srvHours := float64(b.N) * float64(sites*perSite) * geoHorizon.Hours()
	b.ReportMetric(srvHours/b.Elapsed().Seconds(), "srv-h/sec")
}

// BenchmarkGeo4Sites1k and its serial pin are the CI-sized pair (run in
// short mode): same bits, goroutine-per-site vs one thread, so the
// benchdiff baseline records the federation speedup on every run.
func BenchmarkGeo4Sites1k(b *testing.B) { benchGeo(b, 4, 1_000, true) }

// BenchmarkGeo4Sites1kSerial is the sites-on-one-thread pin of the tier
// above — the denominator of the parallel-speedup comparison.
func BenchmarkGeo4Sites1kSerial(b *testing.B) { benchGeo(b, 4, 1_000, false) }

// BenchmarkGeo2Sites10k is the smallest developer-scale tier.
func BenchmarkGeo2Sites10k(b *testing.B) {
	if testing.Short() {
		b.Skip("10k tier skipped in short mode")
	}
	benchGeo(b, 2, 10_000, true)
}

// BenchmarkGeo4Sites10k is the headline tier: four 10k-server regions
// federated behind the router.
func BenchmarkGeo4Sites10k(b *testing.B) {
	if testing.Short() {
		b.Skip("10k tier skipped in short mode")
	}
	benchGeo(b, 4, 10_000, true)
}

// BenchmarkGeo4Sites10kSerial pins the headline tier to serial site
// execution for the speedup comparison.
func BenchmarkGeo4Sites10kSerial(b *testing.B) {
	if testing.Short() {
		b.Skip("10k tier skipped in short mode")
	}
	benchGeo(b, 4, 10_000, false)
}

// BenchmarkGeo8Sites10k widens the federation to eight regions.
func BenchmarkGeo8Sites10k(b *testing.B) {
	if testing.Short() {
		b.Skip("10k tier skipped in short mode")
	}
	benchGeo(b, 8, 10_000, true)
}

// BenchmarkGeo4Sites100k is the upper operating point: four 100k-server
// regions — 400k servers and a multi-million-user demand trace.
func BenchmarkGeo4Sites100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k tier skipped in short mode")
	}
	benchGeo(b, 4, 100_000, true)
}
