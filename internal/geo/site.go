package geo

import (
	"fmt"
	"time"

	"repro/internal/carbon"
	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Site is one federated facility: a complete simulation stack on its
// own engine. Between barriers a site is touched only by its own
// goroutine (or by the serial loop); at barriers the federation reads
// its aggregates single-threaded.
type Site struct {
	cfg SiteConfig
	idx int
	fed *Federation

	engine  *sim.Engine
	checker *invariant.Checker
	pool    *par.Pool
	mgr     *core.Manager
	dc      *core.DataCenter
	adm     *workload.Admission
	retry   *workload.RetryLoop
	inj     *fault.Injector
	meter   *carbon.Meter
	srvCfg  server.Config

	// home is the site's home-population login-rate series (users/sec),
	// already scaled by the normalized population share.
	home *trace.Series
	// weight is the routing weight for the current epoch. Written only
	// at barriers (all engines paused), read inside manager ticks; the
	// goroutine join/launch around each epoch orders the accesses.
	weight float64
	// staticW is the fixed population-share weight (RouteStatic).
	staticW float64
	// lastEnergyJ remembers the previous barrier's cumulative energy so
	// stats can report per-epoch deltas.
	lastEnergyJ float64

	// cmds/errs connect the site to its dedicated goroutine when the
	// federation runs Parallel: the barrier loop sends a target time,
	// the goroutine answers with the advance's error.
	cmds chan time.Duration
	errs chan error
}

// newSite builds one site's full stack. Seeds derive from the
// federation seed through a labelled RNG fork per site name, so site
// streams are independent of each other and of the global trace.
func newSite(fed *Federation, idx int, cfg SiteConfig, home *trace.Series, staticW float64) (*Site, error) {
	seed := sim.NewRNG(fed.cfg.Seed).Fork("geo/site/" + cfg.Name).Int63()
	s := &Site{
		cfg:     cfg,
		idx:     idx,
		fed:     fed,
		engine:  sim.NewEngine(seed),
		home:    home,
		weight:  staticW,
		staticW: staticW,
		srvCfg:  server.DefaultConfig(),
	}
	if fed.cfg.Invariants {
		s.checker = invariant.NewChecker()
		s.checker.Attach(s.engine)
	}
	s.pool = par.New(fed.cfg.SiteWorkers)

	mcfg := core.ManagerConfig{
		ServerConfig:   s.srvCfg,
		FleetSize:      cfg.FleetSize,
		Queue:          workload.DefaultQueueModel(),
		SLA:            100 * time.Millisecond,
		DecisionPeriod: fed.cfg.Tick,
		Mode:           core.ModeCoordinated,
		InitialOn:      cfg.InitialOn,
		ClassDemand:    s.classDemand,
		Pool:           s.pool,
	}
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
	}
	s.adm = adm
	if cfg.Retry {
		rcfg := workload.DefaultRetryConfig(workload.RetryBudget)
		rcfg.Breaker = workload.DefaultBreakerConfig()
		if cfg.RetryConfig != nil {
			rcfg = *cfg.RetryConfig
		}
		rl, err := workload.NewRetryLoop(rcfg, adm, s.engine.RNG().Fork("geo/retry"))
		if err != nil {
			return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
		}
		s.retry = rl
		mcfg.Retry = rl
	} else {
		mcfg.Admission = adm
	}

	if cfg.Facility {
		dc, err := buildFacility(s.engine, cfg.Name, s.srvCfg, cfg.FleetSize, fed.cfg.Epoch, s.pool)
		if err != nil {
			return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
		}
		if _, err := dc.Attach(); err != nil {
			return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
		}
		s.dc = dc
		s.mgr, err = core.NewManagerForFleet(s.engine, mcfg, dc.Fleet(), nil)
		if err != nil {
			return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
		}
	} else {
		s.mgr, err = core.NewManager(s.engine, mcfg, nil)
		if err != nil {
			return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
		}
	}
	s.mgr.Start()

	if len(cfg.Faults) > 0 {
		s.inj = fault.NewInjector(s.engine)
		s.inj.Subscribe(s.mgr.OnNotice)
		if err := s.inj.Arm(cfg.Faults); err != nil {
			return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
		}
	}

	meter, err := carbon.NewMeter(cfg.Carbon)
	if err != nil {
		return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
	}
	s.meter = meter
	// Anchor the meter at local time zero so the first barrier accrues
	// from the run start.
	if err := meter.Observe(cfg.TZOffset, 0); err != nil {
		return nil, fmt.Errorf("geo: site %s: %w", cfg.Name, err)
	}
	return s, nil
}

// classDemand is the site manager's fresh-arrival source: the routed
// share of the pooled global login rate (or the home series under
// RouteHome), batched into the tick and split across classes.
func (s *Site) classDemand(now time.Duration) [workload.NumClasses]float64 {
	var rate float64
	switch s.fed.cfg.Mode {
	case RouteHome:
		rate = s.home.At(now)
	case RouteStatic:
		rate = s.staticW * s.fed.global.At(now)
	default: // RouteWeighted
		rate = s.weight * s.fed.global.At(now)
	}
	var fresh [workload.NumClasses]float64
	s.fed.cfg.Mix.Split(workload.UsersPerTick(rate, s.fed.cfg.Tick), &fresh)
	return fresh
}

// runTo advances the site's engine to target, converting panics from
// the stack under it into errors so a parallel federation fails
// cleanly rather than crashing the process.
func (s *Site) runTo(target time.Duration) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("geo: site %s panicked: %v", s.cfg.Name, r)
		}
	}()
	if err := s.engine.Run(target); err != nil {
		return fmt.Errorf("geo: site %s: %w", s.cfg.Name, err)
	}
	return nil
}

// nominalInletC anchors the thermal-headroom scale: headroom is 1 at or
// below this supply temperature and 0 at the server trip threshold.
const nominalInletC = 25.0

// stats snapshots the site's barrier aggregates at time now. Called
// single-threaded at barriers, after the engine has reached now.
func (s *Site) stats(now time.Duration) SiteStats {
	fleet := s.mgr.Fleet()
	fleet.Sync(now)
	st := SiteStats{
		Name:            s.cfg.Name,
		Weight:          s.routeWeight(),
		PowerW:          fleet.PowerW(),
		EnergyJ:         fleet.EnergyJ(),
		FleetSize:       fleet.Size(),
		On:              fleet.OnCount(),
		Active:          fleet.ActiveCount(),
		Q:               s.adm.Q(),
		ShedLevel:       s.adm.ShedLevel(),
		CapFactor:       s.mgr.CapacityFactor(),
		ThermalHeadroom: 1,
		CarbonIntensity: s.cfg.Carbon.IntensityAt(now + s.cfg.TZOffset),
		Offered:         s.adm.OfferedUsers(),
		Rejected:        s.adm.RejectedUsers(),
		Trips:           fleet.Trips(),
		At:              now,
	}
	st.EpochEnergyJ = st.EnergyJ - s.lastEnergyJ
	s.lastEnergyJ = st.EnergyJ
	if s.retry != nil {
		st.Breaker = s.retry.State()
		st.Goodput = s.retry.GoodputUsers()
		st.InRetry = s.retry.InRetryTotal()
		st.BreakerTrips = s.retry.Trips()
	} else {
		st.Goodput = s.adm.AdmittedUsers()
	}
	if s.dc != nil {
		room := s.dc.Room()
		maxInlet := 0.0
		for z := 0; z < room.Zones(); z++ {
			if c := room.ZoneInletC(z); c > maxInlet {
				maxInlet = c
			}
		}
		trip := s.srvCfg.TripTempC
		st.ThermalHeadroom = clamp01((trip - maxInlet) / (trip - nominalInletC))
	}
	return st
}

// routeWeight is the effective share of pooled demand this site serves
// under the federation's mode.
func (s *Site) routeWeight() float64 {
	switch s.fed.cfg.Mode {
	case RouteStatic:
		return s.staticW
	case RouteWeighted:
		return s.weight
	default:
		return s.staticW // RouteHome: the home share, for reporting
	}
}

// Accessors for telemetry surfaces (internal/serve) and tests. All are
// safe only while the federation is paused (between AdvanceTo calls).

// Name returns the site name.
func (s *Site) Name() string { return s.cfg.Name }

// Engine returns the site's event kernel.
func (s *Site) Engine() *sim.Engine { return s.engine }

// Manager returns the site's MRM manager.
func (s *Site) Manager() *core.Manager { return s.mgr }

// Fleet returns the site's server pool.
func (s *Site) Fleet() *core.Fleet { return s.mgr.Fleet() }

// DC returns the site's facility substrate (nil without Facility).
func (s *Site) DC() *core.DataCenter { return s.dc }

// Admission returns the site's admission controller.
func (s *Site) Admission() *workload.Admission { return s.adm }

// Retry returns the site's retry loop (nil without Retry).
func (s *Site) Retry() *workload.RetryLoop { return s.retry }

// Weight reports the site's current routing weight.
func (s *Site) Weight() float64 { return s.routeWeight() }

// Grams reports the site's cumulative emissions (gCO2e).
func (s *Site) Grams() float64 { return s.meter.Grams() }

// CarbonModel returns the site's grid-intensity model.
func (s *Site) CarbonModel() carbon.Model { return s.cfg.Carbon }

// TZOffset returns the site's time-zone offset.
func (s *Site) TZOffset() time.Duration { return s.cfg.TZOffset }

// buildFacility constructs the standard federated-site facility: 20
// racks over 2 UPS × 2 PDU × 5 racks, four cooling zones with two CRAC
// units, airflow scaled to the fleet, and telemetry sampling on the
// epoch cadence.
func buildFacility(e *sim.Engine, name string, srvCfg server.Config, fleetSize int, sampleEvery time.Duration, pool *par.Pool) (*core.DataCenter, error) {
	perRack := fleetSize / facilityRacks
	airScale := float64(fleetSize) / 40
	zone := func(z string) cooling.ZoneConfig {
		zc := cooling.DefaultZone(z)
		zc.Airflow *= airScale
		return zc
	}
	plant := cooling.DefaultPlantConfig()
	plant.FanRatedW = 2_000 * airScale
	zoneOfRack := make([]int, facilityRacks)
	for r := range zoneOfRack {
		zoneOfRack[r] = r % 4
	}
	return core.NewDataCenter(e, core.DataCenterConfig{
		Name:           "geo-" + name,
		ServerConfig:   srvCfg,
		ServersPerRack: perRack,
		Topology: power.TopologyConfig{
			UPSCount: 2, PDUsPerUPS: 2, RacksPerPDU: 5,
			RackRatedW: float64(perRack) * srvCfg.PeakPower * 1.05, Oversubscription: 1,
		},
		Room: cooling.RoomConfig{
			Zones:       []cooling.ZoneConfig{zone("z0"), zone("z1"), zone("z2"), zone("z3")},
			CRACs:       []cooling.CRACConfig{cooling.DefaultCRAC("c0"), cooling.DefaultCRAC("c1")},
			Sensitivity: [][]float64{{0.6, 0.3}, {0.5, 0.4}, {0.4, 0.5}, {0.3, 0.6}},
			PhysicsTick: cooling.DefaultPhysicsTick,
		},
		ZoneOfRack:  zoneOfRack,
		Plant:       plant,
		SampleEvery: sampleEvery,
		Pool:        pool,
	})
}
