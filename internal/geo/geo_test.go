package geo

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/workload"
)

// testConfig builds an n-site federation exercising the full stack:
// staggered time zones, uneven population shares, a facility substrate
// on site 0, and retry loops on every odd site.
func testConfig(seed int64, n int) Config {
	cfg := Config{
		Seed:       seed,
		Epoch:      30 * time.Minute,
		Tick:       time.Minute,
		Horizon:    6 * time.Hour,
		Mode:       RouteWeighted,
		Invariants: true,
	}
	for i := 0; i < n; i++ {
		sc := SiteConfig{
			Name:            "s" + string(rune('a'+i)),
			TZOffset:        time.Duration(i) * 24 * time.Hour / time.Duration(n),
			PopulationShare: float64(2 + i%3),
			FleetSize:       24,
			Retry:           i%2 == 1,
		}
		if i == 0 {
			sc.Facility = true
			sc.FleetSize = 40
		}
		cfg.Sites = append(cfg.Sites, sc)
	}
	return cfg
}

func runFederation(t *testing.T, cfg Config) (Result, []float64) {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if err := f.InvariantErr(); err != nil {
		t.Fatal(err)
	}
	return f.Result(), f.Weights()
}

// TestFederationBitIdentity pins the determinism contract: serial and
// goroutine-per-site execution produce bit-identical results — exact
// float equality on every rolled-up field and every routing weight —
// across site counts and seeds.
func TestFederationBitIdentity(t *testing.T) {
	for _, n := range []int{2, 4} {
		for _, seed := range []int64{1, 7} {
			cfg := testConfig(seed, n)
			serial, wSerial := runFederation(t, cfg)

			par := cfg
			par.Parallel = true
			parallel, wPar := runFederation(t, par)

			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("sites=%d seed=%d: serial and parallel results diverge:\n  serial:   %+v\n  parallel: %+v", n, seed, serial, parallel)
			}
			if !reflect.DeepEqual(wSerial, wPar) {
				t.Errorf("sites=%d seed=%d: final weights diverge: %v vs %v", n, seed, wSerial, wPar)
			}
		}
	}
}

// TestFederationSliceNeutral checks that driving AdvanceTo in arbitrary
// slices (the serve pacer's access pattern) is outcome-neutral: only
// epoch barriers exchange state, so slicing cannot move any event.
func TestFederationSliceNeutral(t *testing.T) {
	cfg := testConfig(3, 3)
	whole, wWhole := runFederation(t, cfg)

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for at := 7 * time.Minute; f.Now() < cfg.Horizon; at += 23 * time.Minute {
		if err := f.AdvanceTo(at); err != nil {
			t.Fatal(err)
		}
	}
	if f.Now() != cfg.Horizon {
		t.Fatalf("sliced run stopped at %v", f.Now())
	}
	if got, want := f.Result(), whole; !reflect.DeepEqual(got, want) {
		t.Errorf("sliced run diverges from whole run:\n  sliced: %+v\n  whole:  %+v", got, want)
	}
	if !reflect.DeepEqual(f.Weights(), wWhole) {
		t.Errorf("sliced weights %v != whole %v", f.Weights(), wWhole)
	}
}

// TestFederationRunsWork sanity-checks that a federation actually moves
// demand and energy: epochs advance, users are offered at every site,
// and routing weights stay a valid distribution above the floor.
func TestFederationRunsWork(t *testing.T) {
	cfg := testConfig(5, 4)
	res, weights := runFederation(t, cfg)
	if res.Epochs != int64(cfg.Horizon/cfg.Epoch) {
		t.Fatalf("epochs = %d, want %d", res.Epochs, cfg.Horizon/cfg.Epoch)
	}
	if res.GlobalEnergyKWh <= 0 || res.GlobalPeakPowerW <= 0 {
		t.Fatalf("no energy flowed: %+v", res)
	}
	if res.OfferedUsers <= 0 || res.GoodputUsers <= 0 {
		t.Fatalf("no users flowed: %+v", res)
	}
	var sum float64
	for i, w := range weights {
		if w < 0.02-1e-12 {
			t.Errorf("site %d weight %v below MinShare floor", i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	for _, sr := range res.Sites {
		if sr.OfferedUsers <= 0 {
			t.Errorf("site %s saw no demand: %+v", sr.Name, sr)
		}
	}
}

// TestFederationBrownoutDrains checks the routing story end to end: a
// CapacityDip at one site makes the weighted router drain its share
// toward the healthy siblings, while the static control keeps shoveling
// the full share at the dipped site and rejects more globally.
func TestFederationBrownoutDrains(t *testing.T) {
	base := testConfig(11, 3)
	base.Sites[1].Faults = []fault.Event{{
		Kind:     fault.CapacityDip,
		At:       time.Hour,
		Duration: 4 * time.Hour,
		Frac:     0.7,
	}}

	weighted := base
	weighted.Mode = RouteWeighted
	wres, _ := runFederation(t, weighted)

	static := base
	static.Mode = RouteStatic
	sres, _ := runFederation(t, static)

	dipped := wres.Sites[1]
	if dipped.MinWeight >= dipped.MaxWeight {
		t.Fatalf("dipped site weight never moved: %+v", dipped)
	}
	staticShare := sres.Sites[1].MeanWeight
	if dipped.MinWeight >= staticShare {
		t.Errorf("weighted router never drained the dipped site below its static share %v: min weight %v", staticShare, dipped.MinWeight)
	}
	if wres.RejectedFrac >= sres.RejectedFrac {
		t.Errorf("weighted routing rejected %v of users, static control %v — routing should absorb the dip", wres.RejectedFrac, sres.RejectedFrac)
	}
}

// TestFederationHomeIgnoresWeights checks the control mode: RouteHome
// never reroutes, so weights stay at the static population shares.
func TestFederationHomeIgnoresWeights(t *testing.T) {
	cfg := testConfig(2, 3)
	cfg.Mode = RouteHome
	_, weights := runFederation(t, cfg)
	want := []float64{2.0 / 9, 3.0 / 9, 4.0 / 9}
	for i := range want {
		if math.Abs(weights[i]-want[i]) > 1e-12 {
			t.Fatalf("home-mode weights moved: %v, want %v", weights, want)
		}
	}
}

func TestConfigValidateAggregates(t *testing.T) {
	cfg := Config{
		Seed: 1,
		Sites: []SiteConfig{
			{Name: "", PopulationShare: -1, FleetSize: 0},
			{Name: "dup", PopulationShare: 1, FleetSize: 30, Facility: true},
			{Name: "dup", PopulationShare: 1, FleetSize: 10, InitialOn: 20, TZOffset: -time.Hour},
		},
		Epoch:   -time.Minute,
		Tick:    0,
		Horizon: 0,
		Mode:    RouteMode(99),
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		"needs a name",
		"population share",
		"fleet size 0",
		"duplicate site name",
		"divisible by 20 racks",
		"initial on 20",
		"negative tz offset",
		"epoch -1m0s",
		"tick 0s",
		"horizon 0s",
		"unknown route mode 99",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error missing %q:\n%s", want, msg)
		}
	}
	if got := strings.Count(msg, "\n  - "); got < 10 {
		t.Errorf("expected >= 10 aggregated problems, got %d:\n%s", got, msg)
	}
}

func TestConfigValidateMinShare(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.MinShare = 0.3
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "leaves no weight") {
		t.Fatalf("minshare*n >= 1 accepted: %v", err)
	}
}

func healthyStats(n int) []SiteStats {
	stats := make([]SiteStats, n)
	for i := range stats {
		stats[i] = SiteStats{
			FleetSize:       100,
			Active:          50,
			Q:               1,
			CapFactor:       1,
			ThermalHeadroom: 1,
			CarbonIntensity: 400,
		}
	}
	return stats
}

func TestComputeWeightsEqualSites(t *testing.T) {
	cfg := Config{MinShare: 0.02}
	stats := healthyStats(4)
	dst := make([]float64, 4)
	computeWeights(&cfg, stats, dst)
	for i, w := range dst {
		if math.Abs(w-0.25) > 1e-12 {
			t.Fatalf("equal sites got unequal weight %d: %v", i, dst)
		}
	}
}

func TestComputeWeightsDrainsPressure(t *testing.T) {
	cfg := Config{MinShare: 0.02}
	for _, tc := range []struct {
		name string
		hurt func(*SiteStats)
	}{
		{"capacity dip", func(s *SiteStats) { s.CapFactor = 0.2 }},
		{"low fair share", func(s *SiteStats) { s.Q = 0.1 }},
		{"open breaker", func(s *SiteStats) { s.Breaker = workload.BreakerOpen }},
		{"hot facility", func(s *SiteStats) { s.ThermalHeadroom = 0.05 }},
		{"saturated", func(s *SiteStats) { s.Active = 100 }},
	} {
		stats := healthyStats(3)
		tc.hurt(&stats[1])
		dst := make([]float64, 3)
		computeWeights(&cfg, stats, dst)
		if !(dst[1] < dst[0] && dst[1] < dst[2]) {
			t.Errorf("%s: hurt site not drained: %v", tc.name, dst)
		}
		if dst[1] < cfg.MinShare-1e-15 {
			t.Errorf("%s: weight %v fell through the MinShare floor", tc.name, dst[1])
		}
		var sum float64
		for _, w := range dst {
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%s: weights sum to %v", tc.name, sum)
		}
	}
}

func TestComputeWeightsCarbonAware(t *testing.T) {
	cfg := Config{MinShare: 0.02, CarbonAware: true, CarbonGain: 0.5}
	stats := healthyStats(2)
	stats[0].CarbonIntensity = 200
	stats[1].CarbonIntensity = 600
	dst := make([]float64, 2)
	computeWeights(&cfg, stats, dst)
	if !(dst[0] > dst[1]) {
		t.Fatalf("carbon-aware router did not favor the greener site: %v", dst)
	}
	// Without the carbon term the same sites are symmetric.
	cfg.CarbonAware = false
	computeWeights(&cfg, stats, dst)
	if math.Abs(dst[0]-dst[1]) > 1e-12 {
		t.Fatalf("carbon term leaked into carbon-blind scoring: %v", dst)
	}
}
