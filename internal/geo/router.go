package geo

import (
	"time"

	"repro/internal/workload"
)

// SiteStats is one site's barrier aggregate: the O(1) numbers the
// router reads at every epoch boundary. All fields come from maintained
// counters — no per-server scan happens at the barrier.
type SiteStats struct {
	// Name and Weight echo the site's identity and the weight it served
	// the just-finished epoch with.
	Name   string
	Weight float64
	// PowerW is the instantaneous IT draw at the boundary; EnergyJ the
	// cumulative fleet energy; EpochEnergyJ the delta over the epoch.
	PowerW, EnergyJ, EpochEnergyJ float64
	// FleetSize, On, Active describe the server pool.
	FleetSize, On, Active int
	// Q is the latest fair-share grant; ShedLevel the admission ladder.
	Q         float64
	ShedLevel int
	// Breaker is the retry circuit-breaker state (BreakerClosed when
	// the site runs without a retry loop).
	Breaker workload.BreakerState
	// CapFactor is the manager's serving-capacity factor (< 1 during a
	// regional CapacityDip).
	CapFactor float64
	// ThermalHeadroom is 1 when the hottest zone inlet sits at or below
	// the nominal supply and 0 at the protective trip threshold
	// (facility sites; 1 without a facility substrate).
	ThermalHeadroom float64
	// CarbonIntensity is the site-local grid intensity (gCO2e/kWh) at
	// the boundary.
	CarbonIntensity float64
	// Offered, Rejected, Goodput, InRetry are cumulative user counters.
	Offered, Rejected, Goodput, InRetry float64
	// BreakerTrips and Trips count breaker openings and thermal trips.
	BreakerTrips int64
	Trips        int
	// At is the boundary's virtual time.
	At time.Duration
}

// computeWeights derives the next epoch's routing weights from the
// barrier aggregates, writing into dst (len == len(stats)). It is a
// pure function evaluated in fixed site order, which is what makes the
// federation bit-identical under serial and parallel execution.
//
// Each site's raw score is its capacity share damped by multiplicative
// pressure terms — regional capacity loss, admission pressure (low fair
// share), breaker state, utilization headroom, thermal headroom, and
// (optionally) relative carbon intensity. Scores are then floored at
// MinShare and normalized.
func computeWeights(cfg *Config, stats []SiteStats, dst []float64) {
	var fleetTotal int
	for i := range stats {
		fleetTotal += stats[i].FleetSize
	}
	var meanCarbon float64
	if cfg.CarbonAware {
		for i := range stats {
			meanCarbon += stats[i].CarbonIntensity
		}
		meanCarbon /= float64(len(stats))
	}
	var sum float64
	for i := range stats {
		st := &stats[i]
		score := float64(st.FleetSize) / float64(fleetTotal)
		// Regional capacity loss drains immediately and proportionally.
		score *= clamp01(st.CapFactor)
		// Admission pressure: a site granting Q below 1 is saturated.
		score *= 0.25 + 0.75*clamp01(st.Q)
		// Breaker state: an open breaker is a metastable site — keep
		// only a probe share; half-open recovers gently.
		switch st.Breaker {
		case workload.BreakerOpen:
			score *= 0.1
		case workload.BreakerHalfOpen:
			score *= 0.55
		}
		// Utilization headroom: prefer sites with idle capacity.
		util := 0.0
		if st.FleetSize > 0 {
			util = float64(st.Active) / float64(st.FleetSize)
		}
		score *= 0.25 + 0.75*(1-clamp01(util))
		// Thermal headroom: back off a facility running hot.
		score *= 0.2 + 0.8*clamp01(st.ThermalHeadroom)
		// Carbon: shift load toward the grid that is greenest right now.
		if cfg.CarbonAware && meanCarbon > 0 {
			f := 1 + cfg.CarbonGain*(meanCarbon-st.CarbonIntensity)/meanCarbon
			if f < 0.05 {
				f = 0.05
			}
			score *= f
		}
		dst[i] = score
		sum += score
	}
	n := float64(len(stats))
	routable := 1 - cfg.MinShare*n
	for i := range dst {
		if sum > 0 {
			dst[i] = cfg.MinShare + routable*dst[i]/sum
		} else {
			dst[i] = 1 / n
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
