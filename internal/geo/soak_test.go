package geo

import (
	"testing"
	"time"

	"repro/internal/fault"
)

// TestGeoSoak is the federation chaos soak CI runs under -race: four
// parallel sites with retry loops and intra-site worker pools, armed
// invariant checkers, and staggered regional capacity dips deep enough
// to trip breakers — the densest cross-goroutine traffic the federation
// can generate. Any data race between site goroutines, pool workers,
// and the barrier shows up here.
func TestGeoSoak(t *testing.T) {
	cfg := testConfig(42, 4)
	cfg.Parallel = true
	cfg.SiteWorkers = 2
	cfg.CarbonAware = true
	for i := range cfg.Sites {
		cfg.Sites[i].Retry = true
		cfg.Sites[i].Faults = []fault.Event{{
			Kind:     fault.CapacityDip,
			At:       time.Duration(i+1) * time.Hour,
			Duration: 90 * time.Minute,
			Frac:     0.75,
		}}
	}

	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Drive in serve-style slices so barriers interleave with partial
	// advances while the site goroutines stay parked in between.
	for at := 11 * time.Minute; f.Now() < cfg.Horizon; at += 47 * time.Minute {
		if err := f.AdvanceTo(at); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AdvanceTo(cfg.Horizon); err != nil {
		t.Fatal(err)
	}
	if err := f.InvariantErr(); err != nil {
		t.Fatalf("physical-law violation under chaos: %v", err)
	}

	res := f.Result()
	if res.GoodputUsers <= 0 {
		t.Fatalf("soak produced no goodput: %+v", res)
	}
	var moved bool
	for _, sr := range res.Sites {
		if sr.MaxWeight-sr.MinWeight > 1e-9 {
			moved = true
		}
	}
	if !moved {
		t.Error("four staggered dips never moved a routing weight")
	}
}
