// Package geo federates N complete facilities — each with its own event
// kernel, fleet, admission/retry stack, and optionally a full
// power-and-cooling substrate — behind a deterministic global request
// router. It is the inter-site half of the parallelism story (ROADMAP
// item 4): PR 9's internal/par shards the per-tick loops inside one
// facility; this package runs whole facilities on dedicated goroutines.
//
// # Epoch-synchronized execution
//
// Sites share no simulation state, so within one routing epoch each
// site's engine advances completely independently — serially in site
// order, or one goroutine per site. At every epoch boundary all sites
// meet at a barrier: the federation reads each site's O(1) aggregates
// (power, active servers, fair-share Q, breaker state, thermal
// headroom, carbon intensity) in fixed site order, feeds them to the
// router, and publishes the next epoch's routing weights before any
// engine moves again.
//
// # Determinism contract
//
// Results are bit-identical whether sites run serially or on N cores:
// a site's epoch is a pure function of (its seed, its weight history),
// weights are a pure function of the barrier aggregates computed in
// fixed site order, and the barrier itself runs single-threaded. The
// goroutines only move wall-clock work; they never reorder events,
// floats, or RNG draws. TestFederationBitIdentity pins this.
//
// # Demand model
//
// One global Messenger-style login trace is generated from the seed;
// each site's home population follows that shape rotated by the site's
// time-zone offset (trace.TimeShift) and scaled by its population
// share. The pooled global demand is the pointwise sum of the home
// series — flatter than any single site's diurnal, which is what the
// router exploits. RouteHome serves every population at its home site
// (the no-federation control); RouteStatic carves the pooled demand by
// fixed population shares; RouteWeighted carves it by the barrier
// scoring rule, draining load away from saturated, dipped, hot, or
// carbon-heavy sites.
package geo

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/carbon"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RouteMode selects how the global router carves demand across sites.
type RouteMode int

const (
	// RouteHome serves each site's home population locally: no pooling,
	// no routing — the control every federated mode is measured against.
	RouteHome RouteMode = iota + 1
	// RouteStatic pools the global demand and carves it by fixed
	// population shares, ignoring site state.
	RouteStatic
	// RouteWeighted pools the global demand and carves it by the
	// deterministic barrier scoring rule over per-site aggregates.
	RouteWeighted
)

// String renders the mode.
func (m RouteMode) String() string {
	switch m {
	case RouteHome:
		return "home"
	case RouteStatic:
		return "static"
	case RouteWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("route(%d)", int(m))
	}
}

// SiteConfig describes one federated facility.
type SiteConfig struct {
	// Name identifies the site in reports, metrics labels, and errors.
	Name string
	// TZOffset shifts the site's local diurnal east of the reference
	// clock (its population peaks TZOffset earlier in global time).
	// Must be non-negative.
	TZOffset time.Duration
	// PopulationShare is the site's share of the global user population
	// (normalized across sites; must be positive).
	PopulationShare float64
	// FleetSize is the site's server count.
	FleetSize int
	// InitialOn is the starting active count (0 → FleetSize/2).
	InitialOn int
	// Retry closes the request loop at this site: rejected users come
	// back through a budget-policy retry loop with a circuit breaker.
	Retry bool
	// RetryConfig overrides the default budget retry configuration
	// (ignored unless Retry is set).
	RetryConfig *workload.RetryConfig
	// Facility builds the full power-tree + cooling substrate under the
	// fleet (20 racks, 4 zones, telemetry frames). Requires FleetSize
	// divisible by 20. Without it the site runs the fleet-only stack.
	Facility bool
	// Carbon is the site's grid-intensity model (zero → DefaultModel).
	// The curve is evaluated in site-local time: IntensityAt(t+TZOffset).
	Carbon carbon.Model
	// Faults is a regional fault program armed on this site's engine
	// (e.g. a CapacityDip for a utility-feed brownout). The site's
	// manager subscribes, so dips scale its admission capacity.
	Faults []fault.Event
}

// Config describes one federation run.
type Config struct {
	// Seed derives every stochastic input: the global trace, per-site
	// engine seeds, and retry jitter.
	Seed int64
	// Sites are the federated facilities, in fixed router order.
	Sites []SiteConfig
	// Epoch is the barrier cadence: sites run independently for one
	// epoch, then exchange aggregates and routing weights.
	Epoch time.Duration
	// Tick is each site manager's decision period (≤ Epoch).
	Tick time.Duration
	// Horizon is the simulated span of Run.
	Horizon time.Duration
	// Mode selects the routing rule (default RouteWeighted).
	Mode RouteMode
	// CarbonAware adds the carbon-intensity term to the weighted
	// scoring rule (RouteWeighted only).
	CarbonAware bool
	// CarbonGain scales the carbon term (default 0.5): a site whose
	// local intensity sits fraction f below the federation mean gets a
	// 1+CarbonGain*f score boost.
	CarbonGain float64
	// MinShare floors every site's routing weight (default 0.02) so
	// home users keep a latency-respecting local share even when the
	// router drains a site. Requires MinShare*len(Sites) < 1.
	MinShare float64
	// PeakLoginRate normalizes the global trace's peak (users/second;
	// default 1400 — the paper's Messenger figure).
	PeakLoginRate float64
	// Trace overrides the Messenger trace shape (zero → defaults with
	// Duration stretched to cover Horizon).
	Trace trace.MessengerConfig
	// Mix is the per-class split of arrivals (zero → DefaultClassMix).
	Mix workload.ClassMix
	// Parallel runs each site on its own goroutine between barriers.
	// Results are bit-identical either way; only wall time moves.
	Parallel bool
	// SiteWorkers is each site's intra-site shard-loop width (see
	// internal/par): 0 or 1 means inline. The two axes compose:
	// sites × workers.
	SiteWorkers int
	// Invariants attaches a per-site physical-law checker to every
	// engine (one checker per site, so checking stays race-free under
	// Parallel).
	Invariants bool
}

// withDefaults fills derived defaults; call after Validate.
func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = RouteWeighted
	}
	if c.MinShare == 0 {
		c.MinShare = 0.02
	}
	if c.CarbonGain == 0 {
		c.CarbonGain = 0.5
	}
	if c.PeakLoginRate == 0 {
		c.PeakLoginRate = 1400
	}
	if c.Trace == (trace.MessengerConfig{}) {
		c.Trace = trace.DefaultMessengerConfig()
		if c.Trace.Duration < c.Horizon {
			c.Trace.Duration = c.Horizon
		}
	}
	c.Trace.PeakLoginRate = c.PeakLoginRate
	if c.Mix == (workload.ClassMix{}) {
		c.Mix = workload.DefaultClassMix()
	}
	for i := range c.Sites {
		if c.Sites[i].Carbon == (carbon.Model{}) {
			c.Sites[i].Carbon = carbon.DefaultModel()
		}
		if c.Sites[i].InitialOn == 0 {
			c.Sites[i].InitialOn = c.Sites[i].FleetSize / 2
		}
	}
	return c
}

// facilityRacks is the rack count of the built-in facility topology.
const facilityRacks = 20

// Validate checks the configuration, reporting every violation in one
// aggregated error (the cmd/dcsim flag-validation style).
func (c Config) Validate() error {
	var problems []string
	add := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if len(c.Sites) == 0 {
		add("at least one site is required")
	}
	names := make(map[string]bool, len(c.Sites))
	for i, s := range c.Sites {
		if s.Name == "" {
			add("site %d needs a name", i)
		} else if names[s.Name] {
			add("duplicate site name %q", s.Name)
		}
		names[s.Name] = true
		if s.TZOffset < 0 {
			add("site %d (%s): negative tz offset %v", i, s.Name, s.TZOffset)
		}
		if !(s.PopulationShare > 0) || math.IsNaN(s.PopulationShare) {
			add("site %d (%s): population share %v must be positive", i, s.Name, s.PopulationShare)
		}
		if s.FleetSize <= 0 {
			add("site %d (%s): fleet size %d must be positive", i, s.Name, s.FleetSize)
		}
		if s.InitialOn < 0 || s.InitialOn > s.FleetSize {
			add("site %d (%s): initial on %d out of [0,%d]", i, s.Name, s.InitialOn, s.FleetSize)
		}
		if s.Facility && s.FleetSize%facilityRacks != 0 {
			add("site %d (%s): facility fleet %d must be divisible by %d racks", i, s.Name, s.FleetSize, facilityRacks)
		}
		if s.Carbon != (carbon.Model{}) {
			if err := s.Carbon.Validate(); err != nil {
				add("site %d (%s): %v", i, s.Name, err)
			}
		}
	}
	if c.Epoch <= 0 {
		add("epoch %v must be positive", c.Epoch)
	}
	if c.Tick <= 0 {
		add("tick %v must be positive", c.Tick)
	}
	if c.Epoch > 0 && c.Tick > 0 && c.Tick > c.Epoch {
		add("tick %v exceeds epoch %v", c.Tick, c.Epoch)
	}
	if c.Horizon <= 0 {
		add("horizon %v must be positive", c.Horizon)
	}
	switch c.Mode {
	case 0, RouteHome, RouteStatic, RouteWeighted:
	default:
		add("unknown route mode %d", int(c.Mode))
	}
	if c.MinShare < 0 {
		add("min share %v must be non-negative", c.MinShare)
	}
	min := c.MinShare
	if min == 0 {
		min = 0.02
	}
	if n := len(c.Sites); n > 0 && min*float64(n) >= 1 {
		add("min share %v × %d sites leaves no weight to route", min, n)
	}
	if c.CarbonGain < 0 {
		add("carbon gain %v must be non-negative", c.CarbonGain)
	}
	if c.PeakLoginRate < 0 {
		add("peak login rate %v must be non-negative", c.PeakLoginRate)
	}
	if c.SiteWorkers < 0 {
		add("site workers %d must be non-negative", c.SiteWorkers)
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("geo: invalid federation config:\n  - %s", strings.Join(problems, "\n  - "))
}
