package geo

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Federation runs N sites in lockstep epochs behind the deterministic
// global router. Construct with New, drive with Run or AdvanceTo, and
// release the site goroutines and pools with Close.
type Federation struct {
	cfg    Config
	sites  []*Site
	global *trace.Series

	now         time.Duration
	nextBarrier time.Duration
	epochs      int64
	weights     []float64
	stats       []SiteStats
	closed      bool

	// Roll-up accumulators, maintained at barriers in site order.
	peakPowerW        float64
	weightSum         []float64
	weightMin         []float64
	weightMax         []float64
	breakerOpenEpochs []int64
}

// New validates cfg, generates the global demand, and builds every
// site. When cfg.Parallel is set each site gets a dedicated goroutine
// that parks between epochs.
func New(cfg Config) (*Federation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	f := &Federation{cfg: cfg, nextBarrier: cfg.Epoch}

	// One global Messenger trace; each site's home population follows
	// it rotated by the site's time-zone offset and scaled by its
	// normalized population share. The pooled demand is the sum.
	base, err := trace.GenerateMessenger(cfg.Trace, NewTraceRNG(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	offsets := make([]time.Duration, len(cfg.Sites))
	shares := make([]float64, len(cfg.Sites))
	for i, sc := range cfg.Sites {
		offsets[i] = sc.TZOffset
		shares[i] = sc.PopulationShare
	}
	homes, err := trace.CarveSites(base.Logins, offsets, shares)
	if err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	f.global, err = trace.SumSeries(homes...)
	if err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}

	var shareSum float64
	for _, sh := range shares {
		shareSum += sh
	}
	f.sites = make([]*Site, len(cfg.Sites))
	f.weights = make([]float64, len(cfg.Sites))
	f.stats = make([]SiteStats, len(cfg.Sites))
	f.weightSum = make([]float64, len(cfg.Sites))
	f.weightMin = make([]float64, len(cfg.Sites))
	f.weightMax = make([]float64, len(cfg.Sites))
	f.breakerOpenEpochs = make([]int64, len(cfg.Sites))
	for i, sc := range cfg.Sites {
		staticW := sc.PopulationShare / shareSum
		s, err := newSite(f, i, sc, homes[i], staticW)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.sites[i] = s
		f.weights[i] = staticW
		f.weightMin[i] = staticW
		f.weightMax[i] = staticW
	}
	if cfg.Parallel {
		for _, s := range f.sites {
			s.cmds = make(chan time.Duration)
			s.errs = make(chan error)
			go func(s *Site) {
				for target := range s.cmds {
					s.errs <- s.runTo(target)
				}
			}(s)
		}
	}
	return f, nil
}

// NewTraceRNG returns the RNG stream the federation draws its global
// trace from; cmd/tracegen uses the same fork so CLI-carved site traces
// match in-simulation demand for a seed.
func NewTraceRNG(seed int64) *sim.RNG {
	return sim.NewRNG(seed).Fork("geo/demand")
}

// Run advances the federation to its configured horizon.
func (f *Federation) Run() error { return f.AdvanceTo(f.cfg.Horizon) }

// AdvanceTo drives every site to target, pausing at each epoch barrier
// to exchange aggregates and routing weights. Calling it in arbitrary
// slices is outcome-neutral: barriers always happen at exact epoch
// boundaries and are the only points where cross-site state moves.
func (f *Federation) AdvanceTo(target time.Duration) error {
	if target > f.cfg.Horizon {
		target = f.cfg.Horizon
	}
	for f.now < target {
		next := f.nextBarrier
		if next > target {
			next = target
		}
		if err := f.advanceSites(next); err != nil {
			return err
		}
		f.now = next
		if f.now == f.nextBarrier {
			f.barrier()
			f.nextBarrier += f.cfg.Epoch
		}
	}
	return nil
}

// advanceSites runs every engine to next — concurrently when the
// federation is parallel, in site order otherwise. Either way no two
// sites' events interleave on shared state (there is none), so the
// outcome is identical.
func (f *Federation) advanceSites(next time.Duration) error {
	if f.cfg.Parallel {
		for _, s := range f.sites {
			s.cmds <- next
		}
		errs := make([]error, 0, len(f.sites))
		for _, s := range f.sites {
			if err := <-s.errs; err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	for _, s := range f.sites {
		if err := s.runTo(next); err != nil {
			return err
		}
	}
	return nil
}

// barrier is the epoch-boundary exchange: read every site's aggregates
// in fixed site order, integrate emissions, update the roll-up, and
// publish the next epoch's weights. Runs single-threaded while every
// engine is paused at the boundary.
func (f *Federation) barrier() {
	var totalPowerW float64
	for i, s := range f.sites {
		st := s.stats(f.now)
		f.stats[i] = st
		totalPowerW += st.PowerW
		// Emissions integrate in site-local time so each site's diurnal
		// intensity curve lines up with its population's day.
		_ = s.meter.Observe(f.now+s.cfg.TZOffset, st.EnergyJ)
		if st.Breaker != workload.BreakerClosed {
			f.breakerOpenEpochs[i]++
		}
	}
	if totalPowerW > f.peakPowerW {
		f.peakPowerW = totalPowerW
	}
	if f.cfg.Mode == RouteWeighted {
		computeWeights(&f.cfg, f.stats, f.weights)
		for i, s := range f.sites {
			s.weight = f.weights[i]
		}
	}
	for i, w := range f.weights {
		f.weightSum[i] += w
		if w < f.weightMin[i] {
			f.weightMin[i] = w
		}
		if w > f.weightMax[i] {
			f.weightMax[i] = w
		}
	}
	f.epochs++
}

// Close releases the site goroutines and worker pools. Idempotent.
func (f *Federation) Close() {
	if f.closed {
		return
	}
	f.closed = true
	for _, s := range f.sites {
		if s == nil {
			continue
		}
		if s.cmds != nil {
			close(s.cmds)
		}
		s.pool.Close()
	}
}

// Now reports the federation's virtual time.
func (f *Federation) Now() time.Duration { return f.now }

// Epochs reports how many barriers have completed.
func (f *Federation) Epochs() int64 { return f.epochs }

// Sites returns the federated sites in router order.
func (f *Federation) Sites() []*Site { return f.sites }

// Config returns the effective configuration after defaulting.
func (f *Federation) Config() Config { return f.cfg }

// Weights returns the current routing weights in site order.
func (f *Federation) Weights() []float64 {
	out := make([]float64, len(f.weights))
	copy(out, f.weights)
	return out
}

// LastStats returns the aggregates read at the most recent barrier, in
// site order (zero values before the first barrier).
func (f *Federation) LastStats() []SiteStats {
	out := make([]SiteStats, len(f.stats))
	copy(out, f.stats)
	return out
}

// InvariantErr reports the first physical-law violation observed by
// any site's checker, scanning sites in fixed order (nil when checking
// is off or every site is clean).
func (f *Federation) InvariantErr() error {
	for _, s := range f.sites {
		if s.checker == nil {
			continue
		}
		if err := s.checker.Err(); err != nil {
			return fmt.Errorf("site %s: %w", s.cfg.Name, err)
		}
	}
	return nil
}

// SiteResult is one site's roll-up over the run.
type SiteResult struct {
	Name              string
	EnergyKWh         float64
	MeanActive        float64
	OfferedUsers      float64
	RejectedUsers     float64
	GoodputUsers      float64
	RejectedFrac      float64
	BreakerTrips      int64
	BreakerOpenEpochs int64
	ThermalTrips      int
	GramsCO2e         float64
	MeanWeight        float64
	MinWeight         float64
	MaxWeight         float64
	FinalQ            float64
	FinalCapFactor    float64
}

// Result is the federation-wide roll-up over the run.
type Result struct {
	Mode             string
	Epochs           int64
	GlobalEnergyKWh  float64
	GlobalPeakPowerW float64
	OfferedUsers     float64
	RejectedUsers    float64
	GoodputUsers     float64
	RejectedFrac     float64
	GramsCO2e        float64
	Sites            []SiteResult
}

// Result rolls the run up: per-site outcomes (in site order) and the
// federation totals. Call after Run/AdvanceTo has reached the horizon.
func (f *Federation) Result() Result {
	res := Result{Mode: f.cfg.Mode.String(), Epochs: f.epochs, GlobalPeakPowerW: f.peakPowerW}
	nEpochs := f.epochs
	if nEpochs == 0 {
		nEpochs = 1
	}
	for i, s := range f.sites {
		rr := s.mgr.Result(f.now)
		sr := SiteResult{
			Name:              s.cfg.Name,
			EnergyKWh:         rr.EnergyKWh,
			MeanActive:        rr.MeanActive,
			OfferedUsers:      s.adm.OfferedUsers(),
			RejectedUsers:     s.adm.RejectedUsers(),
			BreakerOpenEpochs: f.breakerOpenEpochs[i],
			ThermalTrips:      s.mgr.Fleet().Trips(),
			GramsCO2e:         s.meter.Grams(),
			MeanWeight:        f.weightSum[i] / float64(nEpochs),
			MinWeight:         f.weightMin[i],
			MaxWeight:         f.weightMax[i],
			FinalQ:            s.adm.Q(),
			FinalCapFactor:    s.mgr.CapacityFactor(),
		}
		if f.epochs == 0 {
			sr.MeanWeight = f.weights[i]
		}
		if s.retry != nil {
			sr.GoodputUsers = s.retry.GoodputUsers()
			sr.BreakerTrips = s.retry.Trips()
		} else {
			sr.GoodputUsers = s.adm.AdmittedUsers()
		}
		if sr.OfferedUsers > 0 {
			sr.RejectedFrac = sr.RejectedUsers / sr.OfferedUsers
		}
		res.GlobalEnergyKWh += sr.EnergyKWh
		res.OfferedUsers += sr.OfferedUsers
		res.RejectedUsers += sr.RejectedUsers
		res.GoodputUsers += sr.GoodputUsers
		res.GramsCO2e += sr.GramsCO2e
		res.Sites = append(res.Sites, sr)
	}
	if res.OfferedUsers > 0 {
		res.RejectedFrac = res.RejectedUsers / res.OfferedUsers
	}
	return res
}
