package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSeriesAtInterpolates(t *testing.T) {
	s, err := NewSeries(time.Minute, []float64{0, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{-time.Minute, 0}, // clamp below
		{0, 0},
		{30 * time.Second, 5},
		{time.Minute, 10},
		{90 * time.Second, 15},
		{2 * time.Minute, 20},
		{time.Hour, 20}, // clamp above
	}
	for _, tt := range tests {
		if got := s.At(tt.at); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestSeriesEmptyAt(t *testing.T) {
	s := &Series{Step: time.Second}
	if s.At(time.Second) != 0 {
		t.Error("empty series At should be 0")
	}
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Error("empty series aggregates should be 0")
	}
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries(0, nil); err == nil {
		t.Error("zero step should error")
	}
	if _, err := NewSeries(-time.Second, nil); err == nil {
		t.Error("negative step should error")
	}
}

func TestSeriesAggregates(t *testing.T) {
	s := &Series{Step: time.Second, Values: []float64{3, -1, 4, 1, 5}}
	if s.Max() != 5 || s.Min() != -1 {
		t.Errorf("Max/Min = %v/%v", s.Max(), s.Min())
	}
	if math.Abs(s.Mean()-2.4) > 1e-12 {
		t.Errorf("Mean = %v, want 2.4", s.Mean())
	}
	if s.Duration() != 5*time.Second {
		t.Errorf("Duration = %v, want 5s", s.Duration())
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}

func TestSeriesScaleNormalize(t *testing.T) {
	s := &Series{Step: time.Second, Values: []float64{1, 2, 4}}
	s.Scale(2)
	if s.Values[2] != 8 {
		t.Errorf("Scale: %v", s.Values)
	}
	s.Normalize(100)
	if s.Max() != 100 || s.Values[0] != 25 {
		t.Errorf("Normalize: %v", s.Values)
	}
	zero := &Series{Step: time.Second, Values: []float64{0, 0}}
	zero.Normalize(5) // must not divide by zero
	if zero.Values[0] != 0 {
		t.Error("Normalize of zero series changed values")
	}
}

func TestSeriesWindow(t *testing.T) {
	s := &Series{Step: time.Minute, Values: []float64{0, 1, 2, 3, 4, 5}}
	w := s.Window(time.Minute, 4*time.Minute)
	if w.Len() != 3 || w.Values[0] != 1 || w.Values[2] != 3 {
		t.Errorf("Window = %v", w.Values)
	}
	// Mutating the window must not touch the parent.
	w.Values[0] = 99
	if s.Values[1] == 99 {
		t.Error("Window aliases parent storage")
	}
	if out := s.Window(10*time.Minute, 20*time.Minute); out.Len() != 0 {
		t.Errorf("out-of-range window has %d samples", out.Len())
	}
	if inv := s.Window(4*time.Minute, time.Minute); inv.Len() != 0 {
		t.Errorf("inverted window has %d samples", inv.Len())
	}
}

func TestSeriesCSV(t *testing.T) {
	s := &Series{Step: time.Second, Values: []float64{1.5, 2.5}}
	csv := s.CSV("load")
	if !strings.HasPrefix(csv, "seconds,load\n") {
		t.Errorf("CSV header missing: %q", csv)
	}
	if !strings.Contains(csv, "0,1.5\n") || !strings.Contains(csv, "1,2.5\n") {
		t.Errorf("CSV rows wrong: %q", csv)
	}
}

func TestCalendarHelpers(t *testing.T) {
	if h := hourOfDay(26 * time.Hour); math.Abs(h-2) > 1e-9 {
		t.Errorf("hourOfDay(26h) = %v, want 2", h)
	}
	if d := dayOfWeek(0); d != 0 {
		t.Errorf("dayOfWeek(0) = %d, want 0 (Monday)", d)
	}
	if d := dayOfWeek(5 * 24 * time.Hour); d != 5 {
		t.Errorf("dayOfWeek(+5d) = %d, want 5 (Saturday)", d)
	}
	if !isWeekend(5*24*time.Hour) || !isWeekend(6*24*time.Hour) {
		t.Error("Saturday/Sunday should be weekend")
	}
	if isWeekend(4 * 24 * time.Hour) {
		t.Error("Friday should not be weekend")
	}
	if isWeekend(7 * 24 * time.Hour) {
		t.Error("the following Monday should not be weekend")
	}
}
