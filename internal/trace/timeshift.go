package trace

import (
	"fmt"
	"math"
	"time"
)

// TimeShift returns a copy of the series advanced by offset: the value
// the shifted series reports at time t is the value the original holds
// at t+offset, wrapping circularly over the series extent. A site whose
// population lives offset east of the reference clock experiences its
// local diurnal shape that much earlier in reference time, which is
// exactly this rotation. The offset is rounded to the nearest whole
// step; because a rotation is a permutation of the samples, the total
// (and therefore the mean) demand of the series is conserved exactly.
func (s *Series) TimeShift(offset time.Duration) *Series {
	n := len(s.Values)
	out := &Series{Step: s.Step, Values: make([]float64, n)}
	if n == 0 {
		return out
	}
	k := int(math.Round(float64(offset) / float64(s.Step)))
	k %= n
	if k < 0 {
		k += n
	}
	for i := range out.Values {
		out.Values[i] = s.Values[(i+k)%n]
	}
	return out
}

// CarveSites splits one global series into per-site series: site i gets
// the global shape rotated by offsets[i] (see TimeShift) and scaled by
// its normalized share. Shares must be non-negative with a positive
// sum; zero is a valid empty site. The carve conserves demand: summed
// over sites, the per-step totals of the outputs add back up to the
// input's total (each rotation is a permutation, and the normalized
// shares sum to one).
func CarveSites(s *Series, offsets []time.Duration, shares []float64) ([]*Series, error) {
	if len(offsets) != len(shares) {
		return nil, fmt.Errorf("trace: %d offsets but %d shares", len(offsets), len(shares))
	}
	if len(offsets) == 0 {
		return nil, fmt.Errorf("trace: no sites to carve")
	}
	var sum float64
	for i, sh := range shares {
		if sh < 0 || math.IsNaN(sh) {
			return nil, fmt.Errorf("trace: site %d share %v must be non-negative", i, sh)
		}
		sum += sh
	}
	if !(sum > 0) {
		return nil, fmt.Errorf("trace: site shares sum to %v, need > 0", sum)
	}
	out := make([]*Series, len(offsets))
	for i := range offsets {
		out[i] = s.TimeShift(offsets[i]).Scale(shares[i] / sum)
	}
	return out, nil
}

// SumSeries adds series pointwise into a new series. All inputs must
// share the step and length of the first.
func SumSeries(parts ...*Series) (*Series, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: nothing to sum")
	}
	first := parts[0]
	out := &Series{Step: first.Step, Values: make([]float64, len(first.Values))}
	for i, p := range parts {
		if p.Step != first.Step || len(p.Values) != len(first.Values) {
			return nil, fmt.Errorf("trace: series %d shape (%v × %d) differs from first (%v × %d)",
				i, p.Step, len(p.Values), first.Step, len(first.Values))
		}
		for j, v := range p.Values {
			out.Values[j] += v
		}
	}
	return out, nil
}

// Sum returns the total of all samples (the conserved quantity under
// TimeShift and CarveSites).
func (s *Series) Sum() float64 {
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum
}
