package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTimeShiftRotates(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{1, 2, 3, 4}}
	got := s.TimeShift(2 * time.Hour)
	want := []float64{3, 4, 1, 2}
	for i := range want {
		if got.Values[i] != want[i] {
			t.Fatalf("shift +2h sample %d = %v, want %v", i, got.Values[i], want[i])
		}
	}
	// A negative shift rotates the other way.
	got = s.TimeShift(-time.Hour)
	want = []float64{4, 1, 2, 3}
	for i := range want {
		if got.Values[i] != want[i] {
			t.Fatalf("shift -1h sample %d = %v, want %v", i, got.Values[i], want[i])
		}
	}
	// Offsets round to the nearest step and wrap over the extent.
	got = s.TimeShift(5*time.Hour + 20*time.Minute)
	want = []float64{2, 3, 4, 1}
	for i := range want {
		if got.Values[i] != want[i] {
			t.Fatalf("shift +5h20m sample %d = %v, want %v", i, got.Values[i], want[i])
		}
	}
}

// TestTimeShiftConservesTotal pins the satellite contract: a time-zone
// shift is a permutation of the samples — every sample survives
// bit-for-bit, so total demand is conserved up to summation order — on
// a realistic noisy trace.
func TestTimeShiftConservesTotal(t *testing.T) {
	m, err := GenerateMessenger(DefaultMessengerConfig(), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	base := m.Logins
	n := base.Len()
	for _, off := range []time.Duration{0, time.Hour, 8 * time.Hour, -5 * time.Hour, 23 * time.Hour} {
		shifted := base.TimeShift(off)
		if shifted.Len() != n || shifted.Step != base.Step {
			t.Fatalf("shift %v changed shape", off)
		}
		k := int(math.Round(float64(off)/float64(base.Step))) % n
		if k < 0 {
			k += n
		}
		for i := 0; i < n; i++ {
			if shifted.Values[i] != base.Values[(i+k)%n] {
				t.Fatalf("shift %v sample %d not a pure rotation", off, i)
			}
		}
		if got, want := shifted.Sum(), base.Sum(); math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("shift %v: total %v != original %v", off, got, want)
		}
	}
}

// TestCarveSitesConservesTotal checks that carving a global trace into
// per-site diurnals conserves total demand across the sites.
func TestCarveSitesConservesTotal(t *testing.T) {
	m, err := GenerateMessenger(DefaultMessengerConfig(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	base := m.Logins
	offsets := []time.Duration{0, 6 * time.Hour, 12 * time.Hour, 18 * time.Hour}
	shares := []float64{3, 2, 2, 1}
	sites, err := CarveSites(base, offsets, shares)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range sites {
		total += s.Sum()
	}
	want := base.Sum()
	if rel := math.Abs(total-want) / want; rel > 1e-12 {
		t.Fatalf("carved total %v vs original %v (rel err %g)", total, want, rel)
	}
	// Per-site totals follow the normalized shares.
	for i, s := range sites {
		wantShare := shares[i] / 8
		if rel := math.Abs(s.Sum()-want*wantShare) / want; rel > 1e-12 {
			t.Fatalf("site %d total %v, want share %v of %v", i, s.Sum(), wantShare, want)
		}
	}
}

func TestCarveSitesValidation(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{1, 2}}
	if _, err := CarveSites(s, []time.Duration{0}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := CarveSites(s, nil, nil); err == nil {
		t.Fatal("empty carve accepted")
	}
	if _, err := CarveSites(s, []time.Duration{0}, []float64{-1}); err == nil {
		t.Fatal("negative share accepted")
	}
	if _, err := CarveSites(s, []time.Duration{0, 0}, []float64{0, 0}); err == nil {
		t.Fatal("zero share sum accepted")
	}
}

func TestSumSeries(t *testing.T) {
	a := &Series{Step: time.Minute, Values: []float64{1, 2}}
	b := &Series{Step: time.Minute, Values: []float64{10, 20}}
	got, err := SumSeries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[0] != 11 || got.Values[1] != 22 {
		t.Fatalf("sum = %v", got.Values)
	}
	if _, err := SumSeries(a, &Series{Step: time.Hour, Values: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched step accepted")
	}
	if _, err := SumSeries(); err == nil {
		t.Fatal("empty sum accepted")
	}
}
