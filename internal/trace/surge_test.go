package trace

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSurgeReproducesAnimotoNumbers(t *testing.T) {
	cfg := DefaultSurgeConfig()
	s, err := GenerateSurge(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Before the surge: around 50 server-equivalents.
	pre := s.Window(0, cfg.SurgeStart).Mean()
	if pre < 40 || pre > 60 {
		t.Errorf("pre-surge demand = %v, want ~50", pre)
	}
	// At the end of the three-day ramp: around 3500.
	peakAt := cfg.SurgeStart + cfg.RampDuration + cfg.HoldDuration/2
	peak := s.At(peakAt)
	if peak < 3000 || peak > 4000 {
		t.Errorf("peak demand = %v, want ~3500", peak)
	}
	// The ramp takes three days: halfway through, demand is near the
	// geometric mean (exponential growth), far below the peak.
	mid := s.At(cfg.SurgeStart + cfg.RampDuration/2)
	if mid > peak/2 {
		t.Errorf("mid-ramp demand %v too high for exponential growth (peak %v)", mid, peak)
	}
	if mid < pre {
		t.Errorf("mid-ramp demand %v below baseline", mid)
	}
	// "After the peak subsided, traffic fell to a level that was well
	// below the peak."
	tail := s.At(s.Duration() - time.Hour)
	if tail > peak/4 {
		t.Errorf("post-surge demand %v not well below peak %v", tail, peak)
	}
	if tail < cfg.Baseline {
		t.Errorf("post-surge demand %v settled below original baseline", tail)
	}
}

func TestSurgeMonotoneRamp(t *testing.T) {
	cfg := DefaultSurgeConfig()
	cfg.NoiseSD = 0 // deterministic shape
	s, err := GenerateSurge(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rampLo := int(cfg.SurgeStart / cfg.Step)
	rampHi := int((cfg.SurgeStart + cfg.RampDuration) / cfg.Step)
	for i := rampLo + 1; i < rampHi; i++ {
		if s.Values[i] < s.Values[i-1] {
			t.Fatalf("noise-free ramp not monotone at sample %d", i)
		}
	}
}

func TestSurgeValidation(t *testing.T) {
	base := DefaultSurgeConfig()
	tests := []struct {
		name   string
		mutate func(*SurgeConfig)
	}{
		{"zero duration", func(c *SurgeConfig) { c.Duration = 0 }},
		{"zero step", func(c *SurgeConfig) { c.Step = 0 }},
		{"peak below baseline", func(c *SurgeConfig) { c.Peak = c.Baseline / 2 }},
		{"zero ramp", func(c *SurgeConfig) { c.RampDuration = 0 }},
		{"zero decay", func(c *SurgeConfig) { c.DecayTime = 0 }},
		{"negative settle", func(c *SurgeConfig) { c.Settle = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := GenerateSurge(cfg, sim.NewRNG(1)); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestWeatherProperties(t *testing.T) {
	cfg := DefaultWeatherConfig()
	w, err := GenerateWeather(cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if w.TempC.Len() != w.RH.Len() {
		t.Fatal("temperature and humidity lengths differ")
	}
	// Annual mean near configured mean.
	mean := w.TempC.Mean()
	if mean < cfg.MeanTempC-3 || mean > cfg.MeanTempC+3 {
		t.Errorf("annual mean temp = %v, want ~%v", mean, cfg.MeanTempC)
	}
	// Humidity stays within physical bounds.
	for i, rh := range w.RH.Values {
		if rh < 0 || rh > 1 {
			t.Fatalf("RH out of [0,1] at sample %d: %v", i, rh)
		}
	}
	// Summer (around day 182) warmer than winter (around day 0) for a
	// northern-hemisphere phase.
	winter := w.TempC.Window(0, 30*24*time.Hour).Mean()
	summer := w.TempC.Window(170*24*time.Hour, 200*24*time.Hour).Mean()
	if summer <= winter {
		t.Errorf("summer %v not warmer than winter %v", summer, winter)
	}
	// Afternoons warmer than nights on average.
	aft := windowMean(w.TempC, 13, 17, 0, 1, 2, 3, 4, 5, 6)
	night := windowMean(w.TempC, 2, 6, 0, 1, 2, 3, 4, 5, 6)
	if aft <= night {
		t.Errorf("afternoon %v not warmer than night %v", aft, night)
	}
}

func TestWeatherValidation(t *testing.T) {
	cfg := DefaultWeatherConfig()
	cfg.Duration = 0
	if _, err := GenerateWeather(cfg, sim.NewRNG(1)); err == nil {
		t.Error("zero duration should error")
	}
	cfg = DefaultWeatherConfig()
	cfg.MeanRH = 1.5
	if _, err := GenerateWeather(cfg, sim.NewRNG(1)); err == nil {
		t.Error("invalid RH should error")
	}
}

func TestDiurnalAntiCorrelation(t *testing.T) {
	// Two services with peak hours 12 apart should be strongly
	// anti-correlated — the premise of the paper's co-location argument.
	a := DefaultDiurnalConfig()
	a.BurstRate = 0
	a.NoiseSD = 0
	b := a
	b.PeakHour = a.PeakHour + 12
	sa, err := GenerateDiurnal(a, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := GenerateDiurnal(b, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var num, da, db float64
	ma, mb := sa.Mean(), sb.Mean()
	for i := range sa.Values {
		xa, xb := sa.Values[i]-ma, sb.Values[i]-mb
		num += xa * xb
		da += xa * xa
		db += xb * xb
	}
	corr := num / (sqrtOr1(da) * sqrtOr1(db))
	if corr > -0.8 {
		t.Errorf("opposite-phase correlation = %v, want strongly negative", corr)
	}
}

func sqrtOr1(x float64) float64 {
	if x <= 0 {
		return 1
	}
	// local sqrt to avoid importing math for one call in tests
	lo, hi := 0.0, x+1
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if mid*mid < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func TestDiurnalValidation(t *testing.T) {
	base := DefaultDiurnalConfig()
	tests := []struct {
		name   string
		mutate func(*DiurnalConfig)
	}{
		{"zero duration", func(c *DiurnalConfig) { c.Duration = 0 }},
		{"negative mean", func(c *DiurnalConfig) { c.Mean = -1 }},
		{"swing >1", func(c *DiurnalConfig) { c.Swing = 2 }},
		{"weekend 0", func(c *DiurnalConfig) { c.WeekendFactor = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := GenerateDiurnal(cfg, sim.NewRNG(1)); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestDiurnalNonNegative(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	cfg.NoiseSD = 0.2 // aggressive noise must still clamp at zero
	s, err := GenerateDiurnal(cfg, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Values {
		if v < 0 {
			t.Fatalf("negative demand at %d: %v", i, v)
		}
	}
}
