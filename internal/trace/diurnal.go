package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// DiurnalConfig parameterizes a generic diurnal demand profile used for
// per-service utilization traces — in particular for studying which
// applications are best co-located (paper §3.2, §5.2: "two processes, or
// VMs, from different applications are unlikely to generate power spikes
// at the same time").
type DiurnalConfig struct {
	// Duration is the span to generate.
	Duration time.Duration
	// Step is the sampling interval.
	Step time.Duration
	// Mean is the average demand level.
	Mean float64
	// Swing is the peak-to-mean diurnal excursion (0..1 relative).
	Swing float64
	// PeakHour is the local hour of maximum demand; two services with
	// peak hours 12 apart are maximally anti-correlated.
	PeakHour float64
	// WeekendFactor scales weekend demand.
	WeekendFactor float64
	// BurstRate is the expected number of short demand bursts per day.
	BurstRate float64
	// BurstMagnitude is the relative height of a burst.
	BurstMagnitude float64
	// NoiseSD is relative AR(1) noise.
	NoiseSD float64
}

// DefaultDiurnalConfig returns a mid-swing daytime-peaking profile.
func DefaultDiurnalConfig() DiurnalConfig {
	return DiurnalConfig{
		Duration:       7 * 24 * time.Hour,
		Step:           time.Minute,
		Mean:           0.4,
		Swing:          0.5,
		PeakHour:       14,
		WeekendFactor:  0.9,
		BurstRate:      2,
		BurstMagnitude: 0.5,
		NoiseSD:        0.03,
	}
}

// GenerateDiurnal synthesizes a utilization-style demand profile in
// arbitrary units (typically fraction of capacity).
func GenerateDiurnal(cfg DiurnalConfig, rng *sim.RNG) (*Series, error) {
	switch {
	case cfg.Duration <= 0 || cfg.Step <= 0:
		return nil, fmt.Errorf("trace: diurnal duration/step must be positive")
	case cfg.Mean < 0:
		return nil, fmt.Errorf("trace: diurnal mean %v must be non-negative", cfg.Mean)
	case cfg.Swing < 0 || cfg.Swing > 1:
		return nil, fmt.Errorf("trace: diurnal swing %v out of [0,1]", cfg.Swing)
	case cfg.WeekendFactor <= 0 || cfg.WeekendFactor > 1:
		return nil, fmt.Errorf("trace: weekend factor %v out of (0,1]", cfg.WeekendFactor)
	}
	n := int(cfg.Duration / cfg.Step)
	vals := make([]float64, n)

	// Pre-draw burst instants.
	days := cfg.Duration.Hours() / 24
	nBursts := rng.Poisson(cfg.BurstRate * days)
	bursts := make([]time.Duration, nBursts)
	for i := range bursts {
		bursts[i] = time.Duration(rng.Float64() * float64(cfg.Duration))
	}
	const burstTau = 10 * time.Minute

	noise := newARNoise(0.9, cfg.NoiseSD)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * cfg.Step
		h := hourOfDay(t)
		v := cfg.Mean * (1 + cfg.Swing*math.Cos(2*math.Pi*(h-cfg.PeakHour)/24))
		if isWeekend(t) {
			v *= cfg.WeekendFactor
		}
		for _, bt := range bursts {
			if t >= bt {
				age := (t - bt).Seconds()
				v += cfg.Mean * cfg.BurstMagnitude * math.Exp(-age/burstTau.Seconds())
			}
		}
		v *= noise.next(rng.Normal)
		if v < 0 {
			v = 0
		}
		vals[i] = v
	}
	return &Series{Step: cfg.Step, Values: vals}, nil
}
