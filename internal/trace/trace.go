// Package trace generates the workload and environment time series that
// drive every experiment: diurnal/weekly demand with flash crowds
// (reproducing the Windows Live Messenger load of the paper's Figure 3),
// the Animoto-style scale-out surge quoted in §3, and outside-air weather
// traces for air-side economizer studies (§2.2).
//
// The paper uses production traces that are not public; these generators
// synthesize series with exactly the properties the paper cites — a 2:1
// afternoon-to-midnight swing, weekday demand above weekend demand, and
// short login flash crowds — from a seeded random source, so every run is
// reproducible.
package trace

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Series is a regularly-sampled time series starting at simulated time 0.
type Series struct {
	// Step is the sampling interval between consecutive values.
	Step time.Duration
	// Values holds one sample per step, Values[i] being the value at
	// time i*Step.
	Values []float64
}

// NewSeries builds a series with the given step and values.
func NewSeries(step time.Duration, values []float64) (*Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trace: step %v must be positive", step)
	}
	return &Series{Step: step, Values: values}, nil
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Duration reports the time span covered by the series.
func (s *Series) Duration() time.Duration {
	return time.Duration(len(s.Values)) * s.Step
}

// At returns the value at time t using linear interpolation between
// samples. Times before the start clamp to the first sample; times at or
// beyond the end clamp to the last.
func (s *Series) At(t time.Duration) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	if t <= 0 {
		return s.Values[0]
	}
	pos := float64(t) / float64(s.Step)
	i := int(pos)
	if i >= len(s.Values)-1 {
		return s.Values[len(s.Values)-1]
	}
	frac := pos - float64(i)
	return s.Values[i]*(1-frac) + s.Values[i+1]*frac
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	var m float64
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	var m float64
	for i, v := range s.Values {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of the samples.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Scale multiplies every sample by k in place and returns the series.
func (s *Series) Scale(k float64) *Series {
	for i := range s.Values {
		s.Values[i] *= k
	}
	return s
}

// Normalize rescales the series so its maximum equals max. A series whose
// maximum is zero is left unchanged.
func (s *Series) Normalize(max float64) *Series {
	m := s.Max()
	if m == 0 {
		return s
	}
	return s.Scale(max / m)
}

// Window extracts the sub-series covering [from, to). Bounds are clamped
// to the series extent.
func (s *Series) Window(from, to time.Duration) *Series {
	lo := int(from / s.Step)
	hi := int(to / s.Step)
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if lo > hi {
		lo = hi
	}
	vals := make([]float64, hi-lo)
	copy(vals, s.Values[lo:hi])
	return &Series{Step: s.Step, Values: vals}
}

// CSV renders the series as "seconds,value" lines with a header, suitable
// for plotting the reproduced figures.
func (s *Series) CSV(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seconds,%s\n", name)
	for i, v := range s.Values {
		fmt.Fprintf(&b, "%d,%.6g\n", int64((time.Duration(i) * s.Step).Seconds()), v)
	}
	return b.String()
}

// hourOfDay returns the fractional hour of day [0,24) for elapsed time t,
// assuming the trace starts at midnight on a Monday.
func hourOfDay(t time.Duration) float64 {
	h := math.Mod(t.Hours(), 24)
	if h < 0 {
		h += 24
	}
	return h
}

// dayOfWeek returns 0 (Monday) … 6 (Sunday) for elapsed time t, assuming
// the trace starts at midnight on a Monday.
func dayOfWeek(t time.Duration) int {
	d := int(t.Hours()/24) % 7
	if d < 0 {
		d += 7
	}
	return d
}

// isWeekend reports whether elapsed time t falls on Saturday or Sunday.
func isWeekend(t time.Duration) bool { return dayOfWeek(t) >= 5 }

// arNoise is a mean-one AR(1) multiplicative noise process whose
// stationary standard deviation equals sd exactly, so generator configs
// can state noise levels directly.
type arNoise struct {
	rho   float64
	innov float64 // innovation sd = sd*sqrt(1-rho²)
	state float64 // deviation from 1
}

func newARNoise(rho, sd float64) *arNoise {
	return &arNoise{rho: rho, innov: sd * math.Sqrt(1-rho*rho)}
}

// next advances the process one step and returns the multiplicative
// factor, clamped at zero.
func (a *arNoise) next(draw func(mean, sd float64) float64) float64 {
	a.state = a.rho*a.state + draw(0, a.innov)
	f := 1 + a.state
	if f < 0 {
		return 0
	}
	return f
}
