package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSplitSharesConserves(t *testing.T) {
	s := &Series{Step: time.Minute, Values: []float64{10, 0, 3.5, 100, 42}}
	parts, err := s.SplitShares([]float64{3, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	for i, p := range parts {
		if p.Step != s.Step {
			t.Errorf("part %d step = %v", i, p.Step)
		}
		if p.Len() != s.Len() {
			t.Errorf("part %d len = %d, want %d", i, p.Len(), s.Len())
		}
	}
	for j := range s.Values {
		var sum float64
		for _, p := range parts {
			sum += p.Values[j]
		}
		if math.Abs(sum-s.Values[j]) > 1e-12*math.Max(1, s.Values[j]) {
			t.Errorf("sample %d: class sum %v != original %v", j, sum, s.Values[j])
		}
	}
	// 3:1:1 shares → 60/20/20 percent.
	if got := parts[0].Values[3]; math.Abs(got-60) > 1e-9 {
		t.Errorf("dominant class sample = %v, want 60", got)
	}
}

func TestSplitSharesZeroPopulationClass(t *testing.T) {
	s := &Series{Step: time.Minute, Values: []float64{5, 7, 9}}
	parts, err := s.SplitShares([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range parts[1].Values {
		if v != 0 {
			t.Errorf("zero-share class sample %d = %v, want 0", j, v)
		}
	}
	for j := range s.Values {
		if got, want := parts[0].Values[j]+parts[2].Values[j], s.Values[j]; math.Abs(got-want) > 1e-12 {
			t.Errorf("sample %d not conserved across live classes: %v vs %v", j, got, want)
		}
	}
}

func TestSplitSharesRejectsBadInput(t *testing.T) {
	s := &Series{Step: time.Minute, Values: []float64{1}}
	for _, shares := range [][]float64{
		nil,
		{},
		{-1, 2},
		{math.NaN(), 1},
		{math.Inf(1)},
		{0, 0, 0},
	} {
		if _, err := s.SplitShares(shares); err == nil {
			t.Errorf("SplitShares(%v) should error", shares)
		}
	}
}

func TestGenerateSurgeClassesMatchesUnsplit(t *testing.T) {
	cfg := DefaultSurgeConfig()
	base, err := GenerateSurge(cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := GenerateSurgeClasses(cfg, []float64{0.6, 0.25, 0.15}, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for j := range base.Values {
		var sum float64
		for _, p := range parts {
			sum += p.Values[j]
		}
		if math.Abs(sum-base.Values[j]) > 1e-9*math.Max(1, base.Values[j]) {
			t.Fatalf("sample %d: split sum %v != unsplit %v — splitting changed RNG consumption",
				j, sum, base.Values[j])
		}
	}
}

func TestGenerateMessengerClassesMatchesUnsplit(t *testing.T) {
	cfg := DefaultMessengerConfig()
	cfg.Duration = 24 * time.Hour
	base, err := GenerateMessenger(cfg, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	m, parts, err := GenerateMessengerClasses(cfg, []float64{2, 1, 0}, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.FlashTimes) != len(base.FlashTimes) {
		t.Fatalf("flash crowds differ: %d vs %d", len(m.FlashTimes), len(base.FlashTimes))
	}
	for j := range base.Logins.Values {
		var sum float64
		for _, p := range parts {
			sum += p.Values[j]
		}
		if math.Abs(sum-base.Logins.Values[j]) > 1e-9*math.Max(1, base.Logins.Values[j]) {
			t.Fatalf("sample %d: split logins %v != unsplit %v", j, sum, base.Logins.Values[j])
		}
		if parts[2].Values[j] != 0 {
			t.Fatalf("zero-share class has logins at sample %d", j)
		}
	}
}

func TestGenerateClassesPropagateErrors(t *testing.T) {
	if _, err := GenerateSurgeClasses(SurgeConfig{}, []float64{1}, sim.NewRNG(1)); err == nil {
		t.Error("invalid surge config should error")
	}
	if _, err := GenerateSurgeClasses(DefaultSurgeConfig(), []float64{-1}, sim.NewRNG(1)); err == nil {
		t.Error("negative share should error")
	}
	if _, _, err := GenerateMessengerClasses(MessengerConfig{}, []float64{1}, sim.NewRNG(1)); err == nil {
		t.Error("invalid messenger config should error")
	}
	if _, _, err := GenerateMessengerClasses(DefaultMessengerConfig(), nil, sim.NewRNG(1)); err == nil {
		t.Error("empty shares should error")
	}
}
