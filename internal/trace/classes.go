package trace

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// SplitShares partitions the series into one sub-series per share,
// scaling every sample by share[i]/sum(shares). The split is applied
// after generation, so splitting never changes how much randomness a
// generator consumes: the sum of the returned series reproduces the
// original series exactly (up to float rounding), and a zero share
// yields an all-zero series of the same shape — a legal "class with no
// population".
func (s *Series) SplitShares(shares []float64) ([]*Series, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("trace: split needs at least one share")
	}
	var sum float64
	for i, sh := range shares {
		if math.IsNaN(sh) || math.IsInf(sh, 0) || sh < 0 {
			return nil, fmt.Errorf("trace: share[%d] = %v must be finite and non-negative", i, sh)
		}
		sum += sh
	}
	if sum <= 0 {
		return nil, fmt.Errorf("trace: shares must sum to a positive value")
	}
	out := make([]*Series, len(shares))
	for i, sh := range shares {
		frac := sh / sum
		vals := make([]float64, len(s.Values))
		if frac != 0 {
			for j, v := range s.Values {
				vals[j] = v * frac
			}
		}
		out[i] = &Series{Step: s.Step, Values: vals}
	}
	return out, nil
}

// GenerateSurgeClasses synthesizes an Animoto-style surge and splits the
// demand across request classes by the given shares. The underlying
// generator consumes the RNG exactly as GenerateSurge does, so a split
// run and an unsplit run from the same seed describe the same event.
func GenerateSurgeClasses(cfg SurgeConfig, shares []float64, rng *sim.RNG) ([]*Series, error) {
	s, err := GenerateSurge(cfg, rng)
	if err != nil {
		return nil, err
	}
	return s.SplitShares(shares)
}

// GenerateMessengerClasses synthesizes a Messenger workload and splits
// its login-rate series across request classes by the given shares. The
// Messenger (with its aggregate Logins/Connections series and flash
// instants) is returned alongside the per-class login rates.
func GenerateMessengerClasses(cfg MessengerConfig, shares []float64, rng *sim.RNG) (*Messenger, []*Series, error) {
	m, err := GenerateMessenger(cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	classes, err := m.Logins.SplitShares(shares)
	if err != nil {
		return nil, nil, err
	}
	return m, classes, nil
}
