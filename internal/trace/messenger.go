package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// MessengerConfig parameterizes the synthetic Windows-Live-Messenger-style
// workload of the paper's Figure 3: total connected users and new-user
// login rate over a week, with diurnal swing, weekday/weekend contrast,
// and flash crowds.
type MessengerConfig struct {
	// Duration is the span to generate (the paper shows one week).
	Duration time.Duration
	// Step is the sampling interval.
	Step time.Duration
	// PeakLoginRate is the normalization of the login-rate series
	// (users/second; the figure normalizes to 1400/s).
	PeakLoginRate float64
	// PeakConnections is the normalization of the connection-count
	// series (the figure text normalizes to 1e6 users).
	PeakConnections float64
	// NightFraction is the fraction of the peak login rate that remains
	// in the deepest night trough. The paper observes early-afternoon
	// connection counts "almost twice as much as those after midnight";
	// a trough of ~0.35 on login rate yields that 2:1 swing on
	// connections after session smoothing.
	NightFraction float64
	// WeekendFactor scales demand on Saturday and Sunday (< 1; the
	// paper observes weekday demand above weekend demand).
	WeekendFactor float64
	// PeakHour is the local hour of maximum demand (the paper's figure
	// peaks in the early afternoon).
	PeakHour float64
	// SessionMean is the mean connection lifetime, which converts login
	// rate into connection count (C' = λ − C/τ).
	SessionMean time.Duration
	// FlashCrowds is the expected number of login flash crowds per week
	// ("a large number of users login in a short period of time").
	FlashCrowds float64
	// FlashMagnitude is the multiplicative login-rate spike height.
	FlashMagnitude float64
	// FlashDuration is the time constant of one flash crowd.
	FlashDuration time.Duration
	// NoiseSD is the relative standard deviation of multiplicative
	// sampling noise (AR(1)-smoothed).
	NoiseSD float64
}

// DefaultMessengerConfig returns the configuration calibrated to the
// properties the paper states for Figure 3.
func DefaultMessengerConfig() MessengerConfig {
	return MessengerConfig{
		Duration:        7 * 24 * time.Hour,
		Step:            time.Minute,
		PeakLoginRate:   1400,
		PeakConnections: 1e6,
		NightFraction:   0.35,
		WeekendFactor:   0.82,
		PeakHour:        14,
		SessionMean:     90 * time.Minute,
		FlashCrowds:     3,
		FlashMagnitude:  3.5,
		FlashDuration:   8 * time.Minute,
		NoiseSD:         0.02,
	}
}

// Messenger is the generated pair of series for Figure 3.
type Messenger struct {
	// Logins is the new-user login rate (users/second).
	Logins *Series
	// Connections is the total number of connected users.
	Connections *Series
	// FlashTimes records when flash crowds were injected.
	FlashTimes []time.Duration
}

// GenerateMessenger synthesizes a Messenger workload from cfg using rng.
func GenerateMessenger(cfg MessengerConfig, rng *sim.RNG) (*Messenger, error) {
	if err := validateMessenger(cfg); err != nil {
		return nil, err
	}
	n := int(cfg.Duration / cfg.Step)
	logins := make([]float64, n)
	conns := make([]float64, n)

	// Draw flash-crowd instants uniformly over the horizon.
	weeks := cfg.Duration.Hours() / (7 * 24)
	nFlash := rng.Poisson(cfg.FlashCrowds * weeks)
	flashTimes := make([]time.Duration, 0, nFlash)
	for i := 0; i < nFlash; i++ {
		flashTimes = append(flashTimes,
			time.Duration(rng.Float64()*float64(cfg.Duration)))
	}

	noise := newARNoise(0.9, cfg.NoiseSD)
	dt := cfg.Step.Seconds()
	tau := cfg.SessionMean.Seconds()
	// Start connections at the steady state implied by the initial rate
	// so the first day is not a transient.
	c := baseRate(cfg, 0) * tau
	for i := 0; i < n; i++ {
		t := time.Duration(i) * cfg.Step
		lambda := baseRate(cfg, t)

		// Flash crowds: sharp rise, exponential decay on login rate.
		for _, ft := range flashTimes {
			if t >= ft {
				age := (t - ft).Seconds()
				lambda *= 1 + (cfg.FlashMagnitude-1)*math.Exp(-age/cfg.FlashDuration.Seconds())
			}
		}

		// AR(1) multiplicative noise keeps neighbouring samples coherent.
		lambda *= noise.next(rng.Normal)

		logins[i] = lambda
		// Connection dynamics: arrivals minus departures.
		c += (lambda - c/tau) * dt
		if c < 0 {
			c = 0
		}
		conns[i] = c
	}

	loginSeries := &Series{Step: cfg.Step, Values: logins}
	connSeries := &Series{Step: cfg.Step, Values: conns}
	loginSeries.Normalize(cfg.PeakLoginRate)
	connSeries.Normalize(cfg.PeakConnections)
	return &Messenger{
		Logins:      loginSeries,
		Connections: connSeries,
		FlashTimes:  flashTimes,
	}, nil
}

func validateMessenger(cfg MessengerConfig) error {
	switch {
	case cfg.Duration <= 0:
		return fmt.Errorf("trace: messenger duration %v must be positive", cfg.Duration)
	case cfg.Step <= 0:
		return fmt.Errorf("trace: messenger step %v must be positive", cfg.Step)
	case cfg.Step > cfg.Duration:
		return fmt.Errorf("trace: step %v exceeds duration %v", cfg.Step, cfg.Duration)
	case cfg.NightFraction <= 0 || cfg.NightFraction > 1:
		return fmt.Errorf("trace: night fraction %v out of (0,1]", cfg.NightFraction)
	case cfg.WeekendFactor <= 0 || cfg.WeekendFactor > 1:
		return fmt.Errorf("trace: weekend factor %v out of (0,1]", cfg.WeekendFactor)
	case cfg.SessionMean <= 0:
		return fmt.Errorf("trace: session mean %v must be positive", cfg.SessionMean)
	case cfg.FlashMagnitude < 1:
		return fmt.Errorf("trace: flash magnitude %v must be >= 1", cfg.FlashMagnitude)
	case cfg.FlashDuration <= 0:
		return fmt.Errorf("trace: flash duration %v must be positive", cfg.FlashDuration)
	case cfg.NoiseSD < 0:
		return fmt.Errorf("trace: noise sd %v must be non-negative", cfg.NoiseSD)
	}
	return nil
}

// baseRate evaluates the deterministic diurnal+weekly login-rate shape at
// t, in relative units with daytime peak 1.0 on weekdays.
func baseRate(cfg MessengerConfig, t time.Duration) float64 {
	h := hourOfDay(t)
	// Raised cosine centred on the peak hour, compressed so the trough
	// is wide (nights are uniformly quiet) — closer to observed load
	// shapes than a pure sinusoid.
	phase := 2 * math.Pi * (h - cfg.PeakHour) / 24
	s := 0.5 * (1 + math.Cos(phase))
	s = math.Pow(s, 1.4) // sharpen the peak, widen the trough
	v := cfg.NightFraction + (1-cfg.NightFraction)*s
	if isWeekend(t) {
		v *= cfg.WeekendFactor
	}
	return v
}
