package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// SurgeConfig parameterizes an Animoto-style demand surge (paper §3,
// quoting Armbrust et al. [5]): "growing from 50 servers to 3500 servers
// in three days... After the peak subsided, traffic fell to a level that
// was well below the peak."
type SurgeConfig struct {
	// Duration is the total span to generate.
	Duration time.Duration
	// Step is the sampling interval.
	Step time.Duration
	// Baseline is the pre-surge demand in server-equivalents.
	Baseline float64
	// Peak is the demand at the height of the surge.
	Peak float64
	// SurgeStart is when growth begins.
	SurgeStart time.Duration
	// RampDuration is how long the climb to the peak takes (3 days for
	// the quoted Animoto event).
	RampDuration time.Duration
	// HoldDuration is how long demand stays at the peak.
	HoldDuration time.Duration
	// DecayTime is the exponential time constant of the fall-off.
	DecayTime time.Duration
	// Settle is the long-run post-surge demand ("well below the peak",
	// but above the original baseline).
	Settle float64
	// NoiseSD is relative multiplicative noise.
	NoiseSD float64
}

// DefaultSurgeConfig reproduces the quoted Animoto numbers: 50 → 3500
// server-equivalents over three days, then decay to a level well below
// the peak.
func DefaultSurgeConfig() SurgeConfig {
	return SurgeConfig{
		Duration:     10 * 24 * time.Hour,
		Step:         10 * time.Minute,
		Baseline:     50,
		Peak:         3500,
		SurgeStart:   24 * time.Hour,
		RampDuration: 3 * 24 * time.Hour,
		HoldDuration: 12 * time.Hour,
		DecayTime:    24 * time.Hour,
		Settle:       400,
		NoiseSD:      0.03,
	}
}

// GenerateSurge synthesizes the demand series (in server-equivalents).
func GenerateSurge(cfg SurgeConfig, rng *sim.RNG) (*Series, error) {
	switch {
	case cfg.Duration <= 0 || cfg.Step <= 0:
		return nil, fmt.Errorf("trace: surge duration/step must be positive")
	case cfg.Baseline <= 0:
		// The ramp multiplies demand at a constant rate from the
		// baseline; growth from zero is undefined (0·(Peak/0)^frac).
		return nil, fmt.Errorf("trace: surge baseline %v must be positive", cfg.Baseline)
	case cfg.Peak < cfg.Baseline:
		return nil, fmt.Errorf("trace: surge peak %v below baseline %v", cfg.Peak, cfg.Baseline)
	case cfg.RampDuration <= 0:
		return nil, fmt.Errorf("trace: ramp duration must be positive")
	case cfg.DecayTime <= 0:
		return nil, fmt.Errorf("trace: decay time must be positive")
	case cfg.Settle < 0:
		return nil, fmt.Errorf("trace: settle level %v must be non-negative", cfg.Settle)
	}
	n := int(cfg.Duration / cfg.Step)
	vals := make([]float64, n)
	rampEnd := cfg.SurgeStart + cfg.RampDuration
	holdEnd := rampEnd + cfg.HoldDuration
	noise := newARNoise(0.9, cfg.NoiseSD)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * cfg.Step
		var v float64
		switch {
		case t < cfg.SurgeStart:
			v = cfg.Baseline
		case t < rampEnd:
			// Exponential (viral) growth: demand multiplies at a
			// constant rate until the peak, matching the "demand
			// surge … via Facebook" dynamic.
			frac := float64(t-cfg.SurgeStart) / float64(cfg.RampDuration)
			v = cfg.Baseline * math.Pow(cfg.Peak/cfg.Baseline, frac)
		case t < holdEnd:
			v = cfg.Peak
		default:
			age := (t - holdEnd).Seconds()
			v = cfg.Settle + (cfg.Peak-cfg.Settle)*math.Exp(-age/cfg.DecayTime.Seconds())
		}
		vals[i] = v * noise.next(rng.Normal)
	}
	return &Series{Step: cfg.Step, Values: vals}, nil
}
