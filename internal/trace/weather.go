package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// WeatherConfig parameterizes an outside-air trace for air-side economizer
// studies (paper §2.2: "the temperature and humidity of outside air change
// continuously, bringing additional challenges to cooling control").
type WeatherConfig struct {
	// Duration is the span to generate.
	Duration time.Duration
	// Step is the sampling interval.
	Step time.Duration
	// MeanTempC is the long-run mean outside temperature (°C).
	MeanTempC float64
	// DailyAmpC is the amplitude of the diurnal temperature swing.
	DailyAmpC float64
	// SeasonalAmpC is the amplitude of the annual swing (applied when
	// Duration spans a large fraction of a year).
	SeasonalAmpC float64
	// WeatherSD is the day-to-day AR(1) weather-front variation (°C).
	WeatherSD float64
	// MeanRH is the mean relative humidity (fraction 0..1).
	MeanRH float64
	// RHSwing is the diurnal humidity swing (humidity is lowest when
	// temperature peaks).
	RHSwing float64
}

// DefaultWeatherConfig describes a temperate site (e.g. the US Pacific
// Northwest, where economizers are most attractive).
func DefaultWeatherConfig() WeatherConfig {
	return WeatherConfig{
		Duration:     365 * 24 * time.Hour,
		Step:         time.Hour,
		MeanTempC:    12,
		DailyAmpC:    5,
		SeasonalAmpC: 9,
		WeatherSD:    3,
		MeanRH:       0.60,
		RHSwing:      0.15,
	}
}

// Weather is an outside-air condition trace.
type Weather struct {
	// TempC is the dry-bulb temperature series (°C).
	TempC *Series
	// RH is the relative-humidity series (fraction 0..1).
	RH *Series
}

// GenerateWeather synthesizes an outside-air trace.
func GenerateWeather(cfg WeatherConfig, rng *sim.RNG) (*Weather, error) {
	switch {
	case cfg.Duration <= 0 || cfg.Step <= 0:
		return nil, fmt.Errorf("trace: weather duration/step must be positive")
	case cfg.MeanRH < 0 || cfg.MeanRH > 1:
		return nil, fmt.Errorf("trace: mean RH %v out of [0,1]", cfg.MeanRH)
	}
	n := int(cfg.Duration / cfg.Step)
	temps := make([]float64, n)
	rhs := make([]float64, n)
	front := 0.0 // slow AR(1) weather-front offset
	yearHours := 365.0 * 24
	for i := 0; i < n; i++ {
		t := time.Duration(i) * cfg.Step
		h := hourOfDay(t)
		// Daily minimum near 5:00, maximum near 15:00.
		daily := cfg.DailyAmpC * math.Sin(2*math.Pi*(h-9)/24)
		seasonal := cfg.SeasonalAmpC * math.Sin(2*math.Pi*(t.Hours()/yearHours-0.25))
		// Weather fronts evolve on a multi-day scale.
		front = 0.995*front + rng.Normal(0, cfg.WeatherSD*0.07)
		temp := cfg.MeanTempC + daily + seasonal + front
		temps[i] = temp
		// RH moves opposite to the diurnal temperature swing, clamped.
		rh := cfg.MeanRH - cfg.RHSwing*math.Sin(2*math.Pi*(h-9)/24) + rng.Normal(0, 0.02)
		if rh < 0.05 {
			rh = 0.05
		}
		if rh > 0.99 {
			rh = 0.99
		}
		rhs[i] = rh
	}
	return &Weather{
		TempC: &Series{Step: cfg.Step, Values: temps},
		RH:    &Series{Step: cfg.Step, Values: rhs},
	}, nil
}
