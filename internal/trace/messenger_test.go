package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// windowMean averages s over the daily window [h0, h1) hours on the given
// days (0=Monday).
func windowMean(s *Series, h0, h1 float64, days ...int) float64 {
	daySet := make(map[int]bool, len(days))
	for _, d := range days {
		daySet[d] = true
	}
	var sum float64
	var n int
	for i := range s.Values {
		t := time.Duration(i) * s.Step
		h := hourOfDay(t)
		if h >= h0 && h < h1 && daySet[dayOfWeek(t)] {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestMessengerFigure3Properties(t *testing.T) {
	cfg := DefaultMessengerConfig()
	m, err := GenerateMessenger(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}

	// Normalizations match the figure's stated scales (within float
	// rounding from the rescale).
	if got := m.Connections.Max(); math.Abs(got-cfg.PeakConnections) > 1e-6*cfg.PeakConnections {
		t.Errorf("peak connections = %v, want %v", got, cfg.PeakConnections)
	}
	if got := m.Logins.Max(); math.Abs(got-cfg.PeakLoginRate) > 1e-6*cfg.PeakLoginRate {
		t.Errorf("peak login rate = %v, want %v", got, cfg.PeakLoginRate)
	}

	// "The number of users in the early afternoon is almost twice as
	// much as those after midnight."
	weekdays := []int{0, 1, 2, 3, 4}
	afternoon := windowMean(m.Connections, 13, 16, weekdays...)
	night := windowMean(m.Connections, 0, 4, weekdays...)
	ratio := afternoon / night
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("afternoon/midnight connection ratio = %.2f, want ~2", ratio)
	}

	// "The total demand in weekdays are higher than that in weekends."
	wkday := windowMean(m.Connections, 0, 24, 0, 1, 2, 3, 4)
	wkend := windowMean(m.Connections, 0, 24, 5, 6)
	if wkday <= wkend {
		t.Errorf("weekday mean %v not above weekend mean %v", wkday, wkend)
	}

	// "Flash crowd effects, where a large number of users login in a
	// short period of time": the login series must contain spikes well
	// above the smooth diurnal ceiling.
	if len(m.FlashTimes) == 0 {
		t.Skip("no flash crowds drawn for this seed")
	}
	// At a flash instant the login rate should exceed twice the series
	// median-scale level at that hour.
	ft := m.FlashTimes[0]
	spike := m.Logins.At(ft + time.Minute)
	typical := windowMean(m.Logins, hourOfDay(ft), hourOfDay(ft)+1,
		0, 1, 2, 3, 4, 5, 6)
	if spike < 1.5*typical {
		t.Errorf("flash crowd spike %v not well above typical %v", spike, typical)
	}
}

func TestMessengerSeriesAreSmoothAndPositive(t *testing.T) {
	m, err := GenerateMessenger(DefaultMessengerConfig(), sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Connections.Values {
		if v < 0 {
			t.Fatalf("negative connections at sample %d: %v", i, v)
		}
	}
	for i, v := range m.Logins.Values {
		if v < 0 {
			t.Fatalf("negative login rate at sample %d: %v", i, v)
		}
	}
	// Connections integrate logins, so step-to-step relative change must
	// stay small (sessions last ~90 min, step is 1 min).
	for i := 1; i < m.Connections.Len(); i++ {
		prev, cur := m.Connections.Values[i-1], m.Connections.Values[i]
		if prev > 1000 {
			rel := (cur - prev) / prev
			if rel > 0.2 || rel < -0.2 {
				t.Fatalf("connections jumped %.1f%% in one minute at sample %d", rel*100, i)
			}
		}
	}
}

func TestMessengerDeterministic(t *testing.T) {
	a, err := GenerateMessenger(DefaultMessengerConfig(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMessenger(DefaultMessengerConfig(), sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Logins.Values {
		if a.Logins.Values[i] != b.Logins.Values[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestMessengerValidation(t *testing.T) {
	base := DefaultMessengerConfig()
	tests := []struct {
		name   string
		mutate func(*MessengerConfig)
	}{
		{"zero duration", func(c *MessengerConfig) { c.Duration = 0 }},
		{"zero step", func(c *MessengerConfig) { c.Step = 0 }},
		{"step exceeds duration", func(c *MessengerConfig) { c.Step = c.Duration * 2 }},
		{"night fraction 0", func(c *MessengerConfig) { c.NightFraction = 0 }},
		{"night fraction >1", func(c *MessengerConfig) { c.NightFraction = 1.5 }},
		{"weekend factor 0", func(c *MessengerConfig) { c.WeekendFactor = 0 }},
		{"session mean 0", func(c *MessengerConfig) { c.SessionMean = 0 }},
		{"flash magnitude <1", func(c *MessengerConfig) { c.FlashMagnitude = 0.5 }},
		{"flash duration 0", func(c *MessengerConfig) { c.FlashDuration = 0 }},
		{"negative noise", func(c *MessengerConfig) { c.NoiseSD = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := GenerateMessenger(cfg, sim.NewRNG(1)); err == nil {
				t.Error("want validation error")
			}
		})
	}
}
