package trace

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// maxStepSec caps the parsed sampling interval so the time.Duration
// conversion below cannot overflow (about 292 years of nanoseconds).
const maxStepSec = int64(math.MaxInt64) / int64(time.Second)

// ParseCSV parses a series previously rendered by Series.CSV: a
// "seconds,<name>" header followed by one "seconds,value" line per
// sample, starting at second 0 with uniform whole-second spacing. It is
// the inverse of CSV for any series whose step is a whole number of
// seconds, up to the %.6g precision CSV prints. It returns the series
// and the header's column name.
//
// Non-finite values, non-uniform or non-monotonic timestamps, and
// malformed lines are rejected, so downstream consumers (experiment
// loaders replaying an exported figure) never see physically impossible
// demand.
func ParseCSV(data string) (*Series, string, error) {
	lines := strings.Split(data, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1] // CSV ends with a trailing newline
	}
	if len(lines) == 0 {
		return nil, "", fmt.Errorf("trace: empty CSV")
	}
	const prefix = "seconds,"
	if !strings.HasPrefix(lines[0], prefix) {
		return nil, "", fmt.Errorf("trace: CSV header %q must start with %q", lines[0], prefix)
	}
	name := lines[0][len(prefix):]
	if name == "" {
		return nil, "", fmt.Errorf("trace: CSV header names no series")
	}
	vals := make([]float64, 0, len(lines)-1)
	var stepSec int64
	for i, ln := range lines[1:] {
		secField, valField, ok := strings.Cut(ln, ",")
		if !ok {
			return nil, "", fmt.Errorf("trace: CSV line %d: %q is not seconds,value", i+2, ln)
		}
		sec, err := strconv.ParseInt(secField, 10, 64)
		if err != nil {
			return nil, "", fmt.Errorf("trace: CSV line %d: bad timestamp %q", i+2, secField)
		}
		v, err := strconv.ParseFloat(valField, 64)
		if err != nil {
			return nil, "", fmt.Errorf("trace: CSV line %d: bad value %q", i+2, valField)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, "", fmt.Errorf("trace: CSV line %d: non-finite value %v", i+2, v)
		}
		switch i {
		case 0:
			if sec != 0 {
				return nil, "", fmt.Errorf("trace: CSV must start at second 0, got %d", sec)
			}
		case 1:
			if sec <= 0 || sec > maxStepSec {
				return nil, "", fmt.Errorf("trace: CSV step %d s out of range", sec)
			}
			stepSec = sec
		default:
			if sec != int64(i)*stepSec {
				return nil, "", fmt.Errorf("trace: CSV line %d: timestamp %d breaks uniform %d s spacing", i+2, sec, stepSec)
			}
		}
		vals = append(vals, v)
	}
	step := time.Second
	if stepSec > 0 {
		step = time.Duration(stepSec) * time.Second
	}
	return &Series{Step: step, Values: vals}, name, nil
}
