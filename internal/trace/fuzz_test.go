package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// clampFuzz maps an arbitrary fuzzed float into [lo, hi], treating NaN
// as lo so every input exercises the generator instead of the validator.
func clampFuzz(v, lo, hi float64) float64 {
	if math.IsNaN(v) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// assertSeriesPhysical fails if any sample is non-finite or negative —
// the baseline physical-law contract for every generated demand series.
func assertSeriesPhysical(t *testing.T, name string, s *Series) {
	t.Helper()
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s[%d] = %v, want finite", name, i, v)
		}
		if v < 0 {
			t.Fatalf("%s[%d] = %v, want non-negative", name, i, v)
		}
	}
}

// FuzzGenerateMessenger drives the Figure-3 workload generator across
// the configuration space: every accepted configuration must yield
// finite, non-negative series normalized so the maximum equals the
// configured peak, with flash crowds inside the horizon.
func FuzzGenerateMessenger(f *testing.F) {
	f.Add(int64(1), uint16(7*24), uint16(1), 0.35, 0.82, 3.5, 0.02, 1400.0, 1e6)
	f.Add(int64(2), uint16(24), uint16(15), 0.1, 1.0, 1.0, 0.0, 100.0, 1000.0)
	f.Add(int64(3), uint16(1), uint16(60), 1.0, 0.01, 50.0, 1.0, 0.0, 0.0)
	f.Add(int64(-9), uint16(336), uint16(5), 0.5, 0.5, 10.0, 0.5, 1e9, 1e12)
	f.Fuzz(func(t *testing.T, seed int64, hours, stepMin uint16, night, weekend, flashMag, noiseSD, peakLogin, peakConns float64) {
		cfg := DefaultMessengerConfig()
		cfg.Duration = time.Duration(1+int(hours)%(14*24)) * time.Hour
		cfg.Step = time.Duration(1+int(stepMin)%60) * time.Minute
		cfg.NightFraction = clampFuzz(night, 0.01, 1)
		cfg.WeekendFactor = clampFuzz(weekend, 0.01, 1)
		cfg.FlashMagnitude = clampFuzz(flashMag, 1, 50)
		cfg.NoiseSD = clampFuzz(noiseSD, 0, 1)
		cfg.PeakLoginRate = clampFuzz(peakLogin, 0, 1e9)
		cfg.PeakConnections = clampFuzz(peakConns, 0, 1e12)

		m, err := GenerateMessenger(cfg, sim.NewRNG(seed))
		if err != nil {
			t.Fatalf("clamped config rejected: %v", err)
		}
		for series, peak := range map[*Series]float64{
			m.Logins:      cfg.PeakLoginRate,
			m.Connections: cfg.PeakConnections,
		} {
			assertSeriesPhysical(t, "series", series)
			if max := series.Max(); max > peak*(1+1e-9) {
				t.Fatalf("max %v exceeds configured peak %v", max, peak)
			} else if max > 0 && math.Abs(max-peak) > 1e-9*peak {
				t.Fatalf("normalized max %v != peak %v", max, peak)
			}
		}
		for _, ft := range m.FlashTimes {
			if ft < 0 || ft >= cfg.Duration {
				t.Fatalf("flash crowd at %v outside horizon %v", ft, cfg.Duration)
			}
		}
	})
}

// FuzzGenerateSurge drives the Animoto-style surge generator: output is
// always finite and non-negative, and with noise disabled it never
// exceeds the larger of the configured peak and settle levels.
func FuzzGenerateSurge(f *testing.F) {
	f.Add(int64(1), 50.0, 3500.0, 400.0, 0.03, uint16(240), uint16(10))
	f.Add(int64(2), 0.001, 0.001, 0.0, 0.0, uint16(1), uint16(120))
	f.Add(int64(5), 1.0, 1e6, 2e6, 1.0, uint16(480), uint16(30))
	f.Fuzz(func(t *testing.T, seed int64, baseline, peak, settle, noiseSD float64, hours, stepMin uint16) {
		cfg := DefaultSurgeConfig()
		cfg.Duration = time.Duration(1+int(hours)%(20*24)) * time.Hour
		cfg.Step = time.Duration(1+int(stepMin)%120) * time.Minute
		cfg.Baseline = clampFuzz(baseline, 0.001, 1e6)
		cfg.Peak = clampFuzz(peak, cfg.Baseline, 1e9)
		cfg.Settle = clampFuzz(settle, 0, 1e9)
		cfg.NoiseSD = clampFuzz(noiseSD, 0, 1)

		s, err := GenerateSurge(cfg, sim.NewRNG(seed))
		if err != nil {
			t.Fatalf("clamped config rejected: %v", err)
		}
		assertSeriesPhysical(t, "surge", s)

		// The noise multiplier is unbounded above, so the peak bound is a
		// property of the deterministic envelope only.
		quiet := cfg
		quiet.NoiseSD = 0
		q, err := GenerateSurge(quiet, sim.NewRNG(seed))
		if err != nil {
			t.Fatalf("noise-free config rejected: %v", err)
		}
		assertSeriesPhysical(t, "quiet surge", q)
		bound := math.Max(cfg.Peak, cfg.Settle)
		if max := q.Max(); max > bound*(1+1e-9) {
			t.Fatalf("noise-free surge max %v exceeds envelope %v", max, bound)
		}
		if min := q.Min(); len(q.Values) > 0 && min < math.Min(cfg.Baseline, cfg.Settle)*(1-1e-9) {
			t.Fatalf("noise-free surge min %v below floor %v", min, math.Min(cfg.Baseline, cfg.Settle))
		}
	})
}

// FuzzParseCSV feeds the workload parser arbitrary text: it must never
// panic, never accept a non-physical series (non-positive step,
// non-finite values), and anything it accepts must survive a
// render-and-reparse round trip.
func FuzzParseCSV(f *testing.F) {
	mess, err := GenerateMessenger(DefaultMessengerConfig(), sim.NewRNG(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mess.Logins.Window(0, 2*time.Hour).CSV("logins"))
	f.Add("seconds,demand\n0,50\n600,3500\n1200,400\n")
	f.Add("seconds,x\n0,1\n")
	f.Add("seconds,x\n")
	f.Add("seconds,x\n0,NaN\n")
	f.Add("seconds,x\n0,1\n1,2\n3,3\n")
	f.Add("not,a,csv\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		s, name, err := ParseCSV(data)
		if err != nil {
			return
		}
		if s.Step <= 0 {
			t.Fatalf("accepted step %v, want positive", s.Step)
		}
		if name == "" {
			t.Fatal("accepted empty series name")
		}
		assertSeriesPhysicalSigned(t, s)

		s2, name2, err := ParseCSV(s.CSV(name))
		if err != nil {
			t.Fatalf("re-parse of rendered CSV failed: %v", err)
		}
		if name2 != name {
			t.Fatalf("name round trip: %q != %q", name2, name)
		}
		if len(s.Values) > 1 && s2.Step != s.Step {
			t.Fatalf("step round trip: %v != %v", s2.Step, s.Step)
		}
		if len(s2.Values) != len(s.Values) {
			t.Fatalf("length round trip: %d != %d", len(s2.Values), len(s.Values))
		}
		for i := range s.Values {
			// CSV prints %.6g, so the round trip is only that precise.
			a, b := s.Values[i], s2.Values[i]
			if math.Abs(a-b) > 1e-5*math.Max(math.Abs(a), math.Abs(b)) {
				t.Fatalf("value[%d] round trip: %v != %v", i, a, b)
			}
		}
	})
}

// assertSeriesPhysicalSigned checks finiteness only: ParseCSV accepts
// signed series (temperature traces go below zero), unlike the demand
// generators.
func assertSeriesPhysicalSigned(t *testing.T, s *Series) {
	t.Helper()
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("parsed value[%d] = %v, want finite", i, v)
		}
	}
}

// TestParseCSVRoundTrip pins the deterministic inverse property on real
// generator output (whole-second steps).
func TestParseCSVRoundTrip(t *testing.T) {
	surge, err := GenerateSurge(DefaultSurgeConfig(), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	got, name, err := ParseCSV(surge.CSV("servers"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "servers" {
		t.Errorf("name = %q, want servers", name)
	}
	if got.Step != surge.Step {
		t.Errorf("step = %v, want %v", got.Step, surge.Step)
	}
	if got.Len() != surge.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), surge.Len())
	}
	for i := range surge.Values {
		a, b := surge.Values[i], got.Values[i]
		if math.Abs(a-b) > 1e-5*math.Abs(a) {
			t.Fatalf("value[%d]: %v != %v", i, a, b)
		}
	}
}

// TestParseCSVRejects enumerates the malformed inputs the parser must
// refuse, each with a distinct cause.
func TestParseCSVRejects(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad-header", "time,x\n0,1\n"},
		{"unnamed", "seconds,\n0,1\n"},
		{"no-comma", "seconds,x\n01\n"},
		{"bad-timestamp", "seconds,x\nzero,1\n"},
		{"bad-value", "seconds,x\n0,one\n"},
		{"nan-value", "seconds,x\n0,NaN\n"},
		{"inf-value", "seconds,x\n0,+Inf\n"},
		{"nonzero-start", "seconds,x\n5,1\n10,2\n"},
		{"non-increasing", "seconds,x\n0,1\n0,2\n"},
		{"uneven-spacing", "seconds,x\n0,1\n60,2\n180,3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ParseCSV(tc.in); err == nil {
				t.Fatalf("ParseCSV(%q) accepted malformed input", tc.in)
			}
		})
	}
}
