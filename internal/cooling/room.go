// Package cooling models the air-cooled machine room of the paper's
// Figure 2: thermal zones fed by CRAC units through a raised floor, with
// the three properties the paper's arguments depend on —
//
//  1. slow dynamics: CRAC controllers react only every ~15 minutes and
//     their actions reach servers after air-transport delays (§2.2);
//  2. uneven sensitivity: each CRAC regulates some locations much better
//     than others, captured by a zone×CRAC sensitivity matrix (§5.1,
//     after Project Genome [30]);
//  3. plant power: chilled-water CRACs draw compressor and fan power that
//     pushes facility PUE toward 2, while air-side economizers can bypass
//     the chiller when outside air permits (§2.2).
package cooling

import (
	"fmt"
	"math"
	"time"

	"repro/internal/control"
)

// airHeatCapacity is the volumetric heat capacity of air in J/(m³·K).
const airHeatCapacity = 1206

// DefaultPhysicsTick is the integration step used by the room builders.
const DefaultPhysicsTick = 10 * time.Second

// ZoneConfig describes one thermal zone (a group of racks sharing local
// airflow).
type ZoneConfig struct {
	// Name identifies the zone.
	Name string
	// Airflow is the cold-air volume delivered through the zone's
	// ventilated tiles, in m³/s.
	Airflow float64
	// ThermalTau is the lumped time constant of the zone's air and rack
	// mass: inlet temperature approaches its equilibrium with this lag.
	ThermalTau time.Duration
	// InitialC is the starting inlet temperature.
	InitialC float64
}

// CRACConfig describes one computer-room air conditioner.
type CRACConfig struct {
	// Name identifies the unit.
	Name string
	// SupplyMinC and SupplyMaxC bound the supply-air setpoint.
	SupplyMinC, SupplyMaxC float64
	// ReturnTargetC is the return-air temperature the unit regulates to.
	ReturnTargetC float64
	// Deadband suppresses reactions to small return-temperature
	// excursions ("to avoid over reaction and oscillation", §2.2).
	Deadband float64
	// Gain converts return-temperature error into supply-setpoint
	// change per control period.
	Gain float64
	// ControlPeriod is how often the controller acts (the paper: "CRAC
	// units usually react every 15 minutes").
	ControlPeriod time.Duration
	// CoilTau is the first-order lag of the cooling coil: the actual
	// supply temperature approaches the setpoint with this constant.
	CoilTau time.Duration
	// TransportDelay is the air-travel time from the unit to the zones.
	TransportDelay time.Duration
	// InitialSupplyC is the starting supply temperature and setpoint.
	InitialSupplyC float64
}

// DefaultZone returns a typical zone of ~2 racks.
func DefaultZone(name string) ZoneConfig {
	return ZoneConfig{
		Name:       name,
		Airflow:    4.0,
		ThermalTau: 4 * time.Minute,
		InitialC:   21,
	}
}

// DefaultCRAC returns a typical chilled-water unit with the paper's
// 15-minute control period.
func DefaultCRAC(name string) CRACConfig {
	return CRACConfig{
		Name:           name,
		SupplyMinC:     12,
		SupplyMaxC:     24,
		ReturnTargetC:  28,
		Deadband:       0.5,
		Gain:           0.8,
		ControlPeriod:  15 * time.Minute,
		CoilTau:        5 * time.Minute,
		TransportDelay: 2 * time.Minute,
		InitialSupplyC: 16,
	}
}

// RoomConfig assembles zones, CRACs, and their coupling.
type RoomConfig struct {
	Zones []ZoneConfig
	CRACs []CRACConfig
	// Sensitivity[z][c] is the fraction of zone z's inlet air that comes
	// (after transport delay) from CRAC c. Row sums must be in (0, 1];
	// the remainder 1−Σc is recirculated zone exhaust — the physical
	// reason a CRAC can be "extremely sensitive to servers at location
	// A, while not sensitive to servers at location B" (§5.1).
	Sensitivity [][]float64
	// PhysicsTick is the integration step for the thermal model.
	PhysicsTick time.Duration
}

// Validate checks structural and physical consistency.
func (c RoomConfig) Validate() error {
	if len(c.Zones) == 0 || len(c.CRACs) == 0 {
		return fmt.Errorf("cooling: room needs at least one zone and one CRAC")
	}
	if len(c.Sensitivity) != len(c.Zones) {
		return fmt.Errorf("cooling: sensitivity rows %d != zones %d", len(c.Sensitivity), len(c.Zones))
	}
	if c.PhysicsTick <= 0 {
		return fmt.Errorf("cooling: physics tick %v must be positive", c.PhysicsTick)
	}
	for zi, row := range c.Sensitivity {
		if len(row) != len(c.CRACs) {
			return fmt.Errorf("cooling: sensitivity row %d has %d entries, want %d", zi, len(row), len(c.CRACs))
		}
		var sum float64
		for ci, s := range row {
			if s < 0 || s > 1 {
				return fmt.Errorf("cooling: sensitivity[%d][%d] = %v out of [0,1]", zi, ci, s)
			}
			sum += s
		}
		if sum <= 0 || sum > 1+1e-9 {
			return fmt.Errorf("cooling: sensitivity row %d sums to %v, want (0,1]", zi, sum)
		}
	}
	for zi, z := range c.Zones {
		if z.Airflow <= 0 {
			return fmt.Errorf("cooling: zone %d airflow %v must be positive", zi, z.Airflow)
		}
		if z.ThermalTau <= 0 {
			return fmt.Errorf("cooling: zone %d thermal tau must be positive", zi)
		}
	}
	for ci, cr := range c.CRACs {
		if !(cr.SupplyMinC < cr.SupplyMaxC) {
			return fmt.Errorf("cooling: crac %d supply bounds [%v,%v] invalid", ci, cr.SupplyMinC, cr.SupplyMaxC)
		}
		if cr.ControlPeriod <= 0 || cr.CoilTau <= 0 {
			return fmt.Errorf("cooling: crac %d periods must be positive", ci)
		}
		if cr.TransportDelay < 0 {
			return fmt.Errorf("cooling: crac %d transport delay must be non-negative", ci)
		}
		if cr.Gain <= 0 {
			return fmt.Errorf("cooling: crac %d gain must be positive", ci)
		}
	}
	return nil
}

// zone is the runtime state of one zone.
type zone struct {
	cfg    ZoneConfig
	heatW  float64
	inlet  *control.FirstOrder
	recirc float64 // 1 − Σc sensitivity
}

// crac is the runtime state of one CRAC unit.
type crac struct {
	cfg      CRACConfig
	setpoint float64
	coil     *control.FirstOrder
	delay    *control.DelayLine
	deadband *control.Deadband
	// delayedSupply is the supply temperature as currently arriving at
	// the zones.
	delayedSupply float64
	// returnC is the last computed return-air temperature.
	returnC float64
	// adjustments counts setpoint changes (oscillation diagnostics).
	adjustments int
	// failed marks a unit whose cooling coil is out of service (fault
	// injection): the fan keeps moving air but the coil no longer chills
	// it, so the supply drifts toward the return temperature with the
	// coil's own lag and the zones it serves ramp hot.
	failed bool
}

// Room is the thermal model. Advance it with Step on a fine tick and run
// ControlTick per CRAC on its control period (Attach wires both onto a
// sim.Engine).
type Room struct {
	cfg   RoomConfig
	zones []*zone
	cracs []*crac
	// coolingLoadW is the total heat the plant currently removes.
	coolingLoadW float64
	// exhausts is Step's per-zone scratch, reused so the physics tick
	// stays allocation-free.
	exhausts []float64
}

// NewRoom builds the room model.
func NewRoom(cfg RoomConfig) (*Room, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Room{cfg: cfg}
	for zi, zc := range cfg.Zones {
		lag, err := control.NewFirstOrder(zc.ThermalTau, zc.InitialC)
		if err != nil {
			return nil, fmt.Errorf("cooling: zone %s: %w", zc.Name, err)
		}
		var sum float64
		for _, s := range cfg.Sensitivity[zi] {
			sum += s
		}
		r.zones = append(r.zones, &zone{cfg: zc, inlet: lag, recirc: 1 - sum})
	}
	for _, cc := range cfg.CRACs {
		coil, err := control.NewFirstOrder(cc.CoilTau, cc.InitialSupplyC)
		if err != nil {
			return nil, fmt.Errorf("cooling: crac %s: %w", cc.Name, err)
		}
		delay, err := control.NewDelayLine(cc.TransportDelay, cfg.PhysicsTick, cc.InitialSupplyC)
		if err != nil {
			return nil, fmt.Errorf("cooling: crac %s: %w", cc.Name, err)
		}
		db, err := control.NewDeadband(cc.Deadband)
		if err != nil {
			return nil, fmt.Errorf("cooling: crac %s: %w", cc.Name, err)
		}
		r.cracs = append(r.cracs, &crac{
			cfg:           cc,
			setpoint:      cc.InitialSupplyC,
			coil:          coil,
			delay:         delay,
			deadband:      db,
			delayedSupply: cc.InitialSupplyC,
			returnC:       cc.InitialSupplyC,
		})
	}
	r.exhausts = make([]float64, len(r.zones))
	return r, nil
}

// Zones reports the number of zones.
func (r *Room) Zones() int { return len(r.zones) }

// CRACs reports the number of CRAC units.
func (r *Room) CRACs() int { return len(r.cracs) }

// ZoneName returns the configured name of zone z.
func (r *Room) ZoneName(z int) string { return r.zones[z].cfg.Name }

// SetZoneHeat assigns the IT heat dissipated in zone z, in watts.
func (r *Room) SetZoneHeat(z int, watts float64) error {
	if z < 0 || z >= len(r.zones) {
		return fmt.Errorf("cooling: zone %d out of range", z)
	}
	if watts < 0 {
		return fmt.Errorf("cooling: negative heat %v", watts)
	}
	r.zones[z].heatW = watts
	return nil
}

// ZoneHeat reports the heat currently assigned to zone z.
func (r *Room) ZoneHeat(z int) float64 { return r.zones[z].heatW }

// ZoneSensitivity reports how strongly zone z is coupled to the CRACs:
// the sum of its sensitivity row (1 − recirculation). High values mean
// the cooling plant both sees and serves the zone well (§5.1).
func (r *Room) ZoneSensitivity(z int) float64 { return 1 - r.zones[z].recirc }

// ZoneInletC reports the current inlet temperature of zone z.
func (r *Room) ZoneInletC(z int) float64 { return r.zones[z].inlet.Output() }

// ZoneExhaustC reports the current exhaust (hot-aisle) temperature of
// zone z: inlet plus the temperature rise across the racks.
func (r *Room) ZoneExhaustC(z int) float64 {
	zn := r.zones[z]
	return zn.inlet.Output() + zn.heatW/(airHeatCapacity*zn.cfg.Airflow)
}

// UnitConfig returns the configuration of CRAC unit c (for observers that
// need the setpoint bounds, e.g. the invariant checker).
func (r *Room) UnitConfig(c int) CRACConfig { return r.cracs[c].cfg }

// CRACSupplyC reports the supply temperature of unit c as delivered (after
// coil lag, before transport delay).
func (r *Room) CRACSupplyC(c int) float64 { return r.cracs[c].coil.Output() }

// CRACSetpointC reports the supply setpoint of unit c.
func (r *Room) CRACSetpointC(c int) float64 { return r.cracs[c].setpoint }

// CRACReturnC reports the last computed return-air temperature of unit c.
func (r *Room) CRACReturnC(c int) float64 { return r.cracs[c].returnC }

// CRACAdjustments reports how many setpoint changes unit c has made.
func (r *Room) CRACAdjustments(c int) int { return r.cracs[c].adjustments }

// SetCRACSetpoint assigns the supply setpoint of unit c directly, clamped
// to the unit's configured bounds. Supervisory controllers (e.g. a
// sensor-map-driven loop above the unit's own return-air control) use
// this as their actuation path.
func (r *Room) SetCRACSetpoint(c int, v float64) error {
	if c < 0 || c >= len(r.cracs) {
		return fmt.Errorf("cooling: crac %d out of range", c)
	}
	u := r.cracs[c]
	next := math.Max(u.cfg.SupplyMinC, math.Min(u.cfg.SupplyMaxC, v))
	if next != u.setpoint {
		u.setpoint = next
		u.adjustments++
	}
	return nil
}

// SetUnitFailed marks CRAC unit c as failed or repairs it. A failed
// unit's coil stops chilling — its supply drifts toward the return
// temperature with the coil's lag — and its return-air control loop is
// suspended until repair. Fan airflow is assumed to continue, so the
// sensitivity coupling is unchanged; the plant simply loses that unit's
// heat-rejection capacity.
func (r *Room) SetUnitFailed(c int, failed bool) error {
	if c < 0 || c >= len(r.cracs) {
		return fmt.Errorf("cooling: crac %d out of range", c)
	}
	r.cracs[c].failed = failed
	return nil
}

// UnitFailed reports whether CRAC unit c is currently failed.
func (r *Room) UnitFailed(c int) bool { return r.cracs[c].failed }

// FailedUnits reports how many CRAC units are currently failed.
func (r *Room) FailedUnits() int {
	n := 0
	for _, c := range r.cracs {
		if c.failed {
			n++
		}
	}
	return n
}

// Sensitivity reports the configured supply fraction zone z draws from
// CRAC unit c — the zone×CRAC coupling observers (e.g. a load-shedding
// controller deciding which zones a failed unit strands) need.
func (r *Room) Sensitivity(z, c int) float64 { return r.cfg.Sensitivity[z][c] }

// CoolingLoadW reports the total heat the plant is removing (for plant
// power computation): the sum of all zone heats.
func (r *Room) CoolingLoadW() float64 { return r.coolingLoadW }

// Step advances the thermal physics by one tick:
//
//  1. each CRAC's coil approaches its setpoint and the result is pushed
//     into its transport delay line;
//  2. each zone's equilibrium inlet is the sensitivity-weighted mix of
//     delayed CRAC supplies plus recirculated own exhaust, and the zone
//     lag moves toward it;
//  3. each CRAC's return temperature is its sensitivity-share-weighted
//     average of zone exhausts.
func (r *Room) Step() {
	dt := r.cfg.PhysicsTick
	for _, c := range r.cracs {
		target := c.setpoint
		if c.failed {
			// Dead coil: the air passes through unchilled, so the
			// delivered supply relaxes toward the return air.
			target = c.returnC
		}
		supply := c.coil.Step(target, dt)
		c.delayedSupply = c.delay.Step(supply)
	}
	var totalHeat float64
	exhausts := r.exhausts
	for zi, zn := range r.zones {
		mix := 0.0
		for ci, s := range r.cfg.Sensitivity[zi] {
			mix += s * r.cracs[ci].delayedSupply
		}
		rise := zn.heatW / (airHeatCapacity * zn.cfg.Airflow)
		// Inlet equilibrium with recirculation: T = mix + rec·(T+rise)
		// ⇒ T = (mix + rec·rise) / (1 − rec), guarded for rec→1.
		denom := 1 - zn.recirc
		if denom < 0.05 {
			denom = 0.05
		}
		equilibrium := (mix + zn.recirc*rise) / denom
		zn.inlet.Step(equilibrium, dt)
		exhausts[zi] = zn.inlet.Output() + rise
		totalHeat += zn.heatW
	}
	r.coolingLoadW = totalHeat
	// Return air per CRAC: zones weighted by this CRAC's share of their
	// supply (column-normalized sensitivity).
	for ci, c := range r.cracs {
		var wsum, acc float64
		for zi := range r.zones {
			w := r.cfg.Sensitivity[zi][ci]
			acc += w * exhausts[zi]
			wsum += w
		}
		if wsum > 0 {
			c.returnC = acc / wsum
		}
	}
}

// ControlTick runs one CRAC control decision for unit c (call every
// ControlPeriod): if the deadband-filtered return temperature deviates
// from target, move the supply setpoint proportionally, clamped to the
// unit's bounds.
func (r *Room) ControlTick(c int) {
	u := r.cracs[c]
	if u.failed {
		return // a failed unit's controller is out of service too
	}
	filtered := u.deadband.Update(u.returnC)
	err := filtered - u.cfg.ReturnTargetC
	if err == 0 {
		return
	}
	next := math.Max(u.cfg.SupplyMinC, math.Min(u.cfg.SupplyMaxC, u.setpoint-u.cfg.Gain*err))
	if next != u.setpoint {
		u.setpoint = next
		u.adjustments++
	}
}

// PhysicsTick reports the configured integration step.
func (r *Room) PhysicsTick() time.Duration { return r.cfg.PhysicsTick }
