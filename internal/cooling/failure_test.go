package cooling

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// steadyTwoZone runs a loaded two-zone room to a warm steady state.
func steadyTwoZone(t *testing.T) (*sim.Engine, *Room) {
	t.Helper()
	e := sim.NewEngine(1)
	room, err := TwoZoneRoom(0.8, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	room.Attach(e)
	if err := room.SetZoneHeat(0, 20_000); err != nil {
		t.Fatal(err)
	}
	if err := room.SetZoneHeat(1, 15_000); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	return e, room
}

func TestFailedUnitRampsZonesAndSuspendsControl(t *testing.T) {
	e, room := steadyTwoZone(t)
	inletBefore := room.ZoneInletC(0)
	supplyBefore := room.CRACSupplyC(0)
	adjBefore := room.CRACAdjustments(0)
	setpointBefore := room.CRACSetpointC(0)

	if err := room.SetUnitFailed(0, true); err != nil {
		t.Fatal(err)
	}
	if !room.UnitFailed(0) || room.FailedUnits() != 1 {
		t.Fatal("failure flag not set")
	}
	if err := e.Run(e.Now() + 4*time.Hour); err != nil {
		t.Fatal(err)
	}
	if supply := room.CRACSupplyC(0); supply <= supplyBefore+3 {
		t.Fatalf("dead coil supply %v should drift well above %v", supply, supplyBefore)
	}
	if inlet := room.ZoneInletC(0); inlet <= inletBefore+2 {
		t.Fatalf("zone inlet %v should ramp above %v with the coil dead", inlet, inletBefore)
	}
	if room.CRACAdjustments(0) != adjBefore {
		t.Fatal("failed unit's controller must be out of service")
	}
	if room.CRACSetpointC(0) != setpointBefore {
		t.Fatal("failure must not move the setpoint")
	}

	// Repair: supply recovers back toward the setpoint.
	if err := room.SetUnitFailed(0, false); err != nil {
		t.Fatal(err)
	}
	failedSupply := room.CRACSupplyC(0)
	if err := e.Run(e.Now() + 4*time.Hour); err != nil {
		t.Fatal(err)
	}
	if supply := room.CRACSupplyC(0); supply >= failedSupply-3 {
		t.Fatalf("repaired supply %v should recover below %v", supply, failedSupply)
	}
	if room.FailedUnits() != 0 {
		t.Fatal("failure flag not cleared")
	}
}

func TestSetUnitFailedRange(t *testing.T) {
	_, room := steadyTwoZone(t)
	if err := room.SetUnitFailed(-1, true); err == nil {
		t.Error("negative index accepted")
	}
	if err := room.SetUnitFailed(room.CRACs(), true); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestSetCRACSetpointClampsAndCounts(t *testing.T) {
	_, room := steadyTwoZone(t)
	cfg := room.UnitConfig(0)
	adj := room.CRACAdjustments(0)
	if err := room.SetCRACSetpoint(0, cfg.SupplyMinC-10); err != nil {
		t.Fatal(err)
	}
	if got := room.CRACSetpointC(0); got != cfg.SupplyMinC {
		t.Fatalf("setpoint %v, want clamped to %v", got, cfg.SupplyMinC)
	}
	if room.CRACAdjustments(0) != adj+1 {
		t.Fatal("setpoint change must count as an adjustment")
	}
	if err := room.SetCRACSetpoint(0, cfg.SupplyMaxC+10); err != nil {
		t.Fatal(err)
	}
	if got := room.CRACSetpointC(0); got != cfg.SupplyMaxC {
		t.Fatalf("setpoint %v, want clamped to %v", got, cfg.SupplyMaxC)
	}
	// Re-applying the same value is not an adjustment.
	adj = room.CRACAdjustments(0)
	if err := room.SetCRACSetpoint(0, cfg.SupplyMaxC+10); err != nil {
		t.Fatal(err)
	}
	if room.CRACAdjustments(0) != adj {
		t.Fatal("no-op setpoint write counted as an adjustment")
	}
	if err := room.SetCRACSetpoint(7, 18); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestSensitivityAccessor(t *testing.T) {
	_, room := steadyTwoZone(t)
	if got := room.Sensitivity(0, 0); got != 0.8 {
		t.Fatalf("Sensitivity(0,0) = %v, want 0.8", got)
	}
	if got := room.Sensitivity(1, 0); got != 0.4 {
		t.Fatalf("Sensitivity(1,0) = %v, want 0.4", got)
	}
}
