package cooling

import (
	"testing"
	"time"
)

func TestHumidifierValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*HumidifierConfig)
	}{
		{"inverted band", func(c *HumidifierConfig) { c.LowRH = 0.5; c.HighRH = 0.4 }},
		{"zero low", func(c *HumidifierConfig) { c.LowRH = 0 }},
		{"high at 1", func(c *HumidifierConfig) { c.HighRH = 1 }},
		{"target outside band", func(c *HumidifierConfig) { c.TargetRH = 0.9 }},
		{"negative power", func(c *HumidifierConfig) { c.HumidifyW = -1 }},
		{"zero tau", func(c *HumidifierConfig) { c.Tau = 0 }},
		{"gain below 1", func(c *HumidifierConfig) { c.ActuatorGain = 0.5 }},
		{"initial out of range", func(c *HumidifierConfig) { c.InitialRH = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultHumidifierConfig()
			tt.mutate(&cfg)
			if _, err := NewHumidifier(cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if _, err := NewHumidifier(DefaultHumidifierConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// runDriving advances the loop for d with a fixed driving RH, returning
// accumulated actuator energy over the window.
func runDriving(h *Humidifier, driving float64, d time.Duration) float64 {
	before := h.EnergyJ()
	steps := int(d / (10 * time.Second))
	for i := 0; i < steps; i++ {
		h.Step(driving, 10*time.Second)
	}
	return h.EnergyJ() - before
}

func TestHumidifierHoldsBandAgainstDryAir(t *testing.T) {
	// Economizing with dry outside air (15 % RH) pulls the room dry; the
	// humidifier must hold the ASHRAE band at a power cost.
	h, err := NewHumidifier(DefaultHumidifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	energy := runDriving(h, 0.15, 6*time.Hour)
	if !h.InBand() {
		t.Errorf("RH %v left the band despite humidification", h.RH())
	}
	if energy <= 0 {
		t.Error("dry driving air cost no humidifier energy")
	}
	// The band is active control, not drift: without the actuator the
	// room would sit at the driving RH.
	if h.RH() < 0.30 {
		t.Errorf("RH %v below ASHRAE minimum", h.RH())
	}
}

func TestHumidifierDehumidifiesMuggyAir(t *testing.T) {
	h, err := NewHumidifier(DefaultHumidifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	energy := runDriving(h, 0.90, 6*time.Hour)
	if h.RH() > 0.45+1e-9 {
		t.Errorf("RH %v above ASHRAE maximum despite dehumidification", h.RH())
	}
	if energy <= 0 {
		t.Error("muggy driving air cost no dehumidifier energy")
	}
}

func TestHumidifierIdleInsideBand(t *testing.T) {
	// Driving air already inside the band: no actuator power at all.
	h, err := NewHumidifier(DefaultHumidifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	energy := runDriving(h, 0.40, 6*time.Hour)
	if energy != 0 {
		t.Errorf("in-band driving air cost %v J", energy)
	}
	hum, dehum := h.Active()
	if hum || dehum {
		t.Error("actuators engaged inside the band")
	}
}

func TestHumidifierHysteresisDisengagesAtTarget(t *testing.T) {
	h, err := NewHumidifier(DefaultHumidifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pull dry until the humidifier engages.
	for i := 0; i < 1000; i++ {
		h.Step(0.10, 10*time.Second)
		if hum, _ := h.Active(); hum {
			break
		}
	}
	if hum, _ := h.Active(); !hum {
		t.Fatal("humidifier never engaged against very dry air")
	}
	// Now neutral driving air: the actuator runs until the target, then
	// disengages rather than chattering at the band edge.
	for i := 0; i < 5000; i++ {
		h.Step(0.40, 10*time.Second)
		if hum, _ := h.Active(); !hum {
			break
		}
	}
	if hum, _ := h.Active(); hum {
		t.Error("humidifier never disengaged at the target")
	}
	if h.RH() < 0.39 {
		t.Errorf("disengaged below target: RH %v", h.RH())
	}
}

func TestHumidifierEconomizerTradeoff(t *testing.T) {
	// The §2.2 trade-off quantified: free cooling with dry winter air
	// costs humidification energy that chiller-based cooling (dry-ish
	// but stable supply) does not.
	econo, err := NewHumidifier(DefaultHumidifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	mech, err := NewHumidifier(DefaultHumidifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	econoCost := runDriving(econo, 0.15, 24*time.Hour) // dry outside air
	mechCost := runDriving(mech, 0.38, 24*time.Hour)   // conditioned supply
	if econoCost <= mechCost {
		t.Errorf("dry-air economization cost %v J not above mechanical %v J", econoCost, mechCost)
	}
	if mechCost != 0 {
		t.Errorf("conditioned supply should cost nothing, got %v J", mechCost)
	}
}

func TestHumidifierClampsDrivingRH(t *testing.T) {
	h, err := NewHumidifier(DefaultHumidifierConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Step(-5, time.Minute)
	h.Step(5, time.Minute)
	if h.RH() < 0 || h.RH() > 1 {
		t.Errorf("RH %v escaped [0,1]", h.RH())
	}
}
