package cooling

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func mustUniform(t *testing.T, zones, cracs int, coverage float64) *Room {
	t.Helper()
	r, err := UniformRoom(zones, cracs, coverage)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// settle advances the room physics (without CRAC control) for d.
func settle(r *Room, d time.Duration) {
	steps := int(d / r.PhysicsTick())
	for i := 0; i < steps; i++ {
		r.Step()
	}
}

func TestRoomValidation(t *testing.T) {
	base := func() RoomConfig {
		return RoomConfig{
			Zones:       []ZoneConfig{DefaultZone("a")},
			CRACs:       []CRACConfig{DefaultCRAC("c")},
			Sensitivity: [][]float64{{0.9}},
			PhysicsTick: DefaultPhysicsTick,
		}
	}
	tests := []struct {
		name   string
		mutate func(*RoomConfig)
	}{
		{"no zones", func(c *RoomConfig) { c.Zones = nil }},
		{"no cracs", func(c *RoomConfig) { c.CRACs = nil }},
		{"row count mismatch", func(c *RoomConfig) { c.Sensitivity = nil }},
		{"row width mismatch", func(c *RoomConfig) { c.Sensitivity = [][]float64{{0.5, 0.5}} }},
		{"sensitivity > 1", func(c *RoomConfig) { c.Sensitivity = [][]float64{{1.5}} }},
		{"row sums zero", func(c *RoomConfig) { c.Sensitivity = [][]float64{{0}} }},
		{"zero tick", func(c *RoomConfig) { c.PhysicsTick = 0 }},
		{"zero airflow", func(c *RoomConfig) { c.Zones[0].Airflow = 0 }},
		{"zero thermal tau", func(c *RoomConfig) { c.Zones[0].ThermalTau = 0 }},
		{"bad supply bounds", func(c *RoomConfig) { c.CRACs[0].SupplyMinC = 30 }},
		{"zero control period", func(c *RoomConfig) { c.CRACs[0].ControlPeriod = 0 }},
		{"zero gain", func(c *RoomConfig) { c.CRACs[0].Gain = 0 }},
		{"negative transport", func(c *RoomConfig) { c.CRACs[0].TransportDelay = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			if _, err := NewRoom(cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if _, err := NewRoom(base()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestZoneHeatAccessors(t *testing.T) {
	r := mustUniform(t, 2, 1, 0.9)
	if err := r.SetZoneHeat(0, 10_000); err != nil {
		t.Fatal(err)
	}
	if r.ZoneHeat(0) != 10_000 {
		t.Errorf("ZoneHeat = %v", r.ZoneHeat(0))
	}
	if err := r.SetZoneHeat(5, 100); err == nil {
		t.Error("out-of-range zone should error")
	}
	if err := r.SetZoneHeat(0, -1); err == nil {
		t.Error("negative heat should error")
	}
	if r.Zones() != 2 || r.CRACs() != 1 {
		t.Errorf("shape = %d zones, %d cracs", r.Zones(), r.CRACs())
	}
	if r.ZoneName(0) != "zone-0" {
		t.Errorf("ZoneName = %q", r.ZoneName(0))
	}
}

func TestMoreHeatRaisesInletAndExhaust(t *testing.T) {
	r := mustUniform(t, 1, 1, 0.9)
	if err := r.SetZoneHeat(0, 5_000); err != nil {
		t.Fatal(err)
	}
	settle(r, time.Hour)
	coolInlet := r.ZoneInletC(0)
	coolExhaust := r.ZoneExhaustC(0)
	if coolExhaust <= coolInlet {
		t.Errorf("exhaust %v not above inlet %v under load", coolExhaust, coolInlet)
	}
	if err := r.SetZoneHeat(0, 20_000); err != nil {
		t.Fatal(err)
	}
	settle(r, time.Hour)
	if r.ZoneInletC(0) <= coolInlet {
		t.Errorf("quadrupled heat did not raise inlet: %v -> %v", coolInlet, r.ZoneInletC(0))
	}
	if r.CoolingLoadW() != 20_000 {
		t.Errorf("cooling load = %v, want 20000", r.CoolingLoadW())
	}
}

func TestSlowDynamics(t *testing.T) {
	// Paper §2.2: "air cooling systems have slow dynamics" — a heat step
	// must not appear at the inlet instantly, and the response should
	// take minutes to settle.
	r := mustUniform(t, 1, 1, 0.85)
	settle(r, 30*time.Minute) // reach initial equilibrium
	before := r.ZoneInletC(0)
	if err := r.SetZoneHeat(0, 30_000); err != nil {
		t.Fatal(err)
	}
	r.Step() // one 10-second tick
	after := r.ZoneInletC(0)
	settle(r, time.Hour)
	final := r.ZoneInletC(0)
	jump := after - before
	total := final - before
	if total <= 0.5 {
		t.Fatalf("heat step produced no meaningful inlet change: %v", total)
	}
	if jump > 0.3*total {
		t.Errorf("inlet moved %.1f%% of the way in one 10s tick — dynamics too fast",
			100*jump/total)
	}
}

func TestTransportDelayDefersSupplyChange(t *testing.T) {
	cfg := RoomConfig{
		Zones:       []ZoneConfig{DefaultZone("a")},
		CRACs:       []CRACConfig{DefaultCRAC("c")},
		Sensitivity: [][]float64{{0.95}},
		PhysicsTick: DefaultPhysicsTick,
	}
	cfg.Zones[0].ThermalTau = time.Second // near-instant zone: isolate the delay
	cfg.CRACs[0].CoilTau = time.Second
	cfg.CRACs[0].TransportDelay = 2 * time.Minute
	r, err := NewRoom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	settle(r, 10*time.Minute)
	before := r.ZoneInletC(0)
	// Force a big setpoint change by hand.
	r.cracs[0].setpoint = 24
	// One tick later the zone must not yet have seen warm air (the
	// transport line still carries old supply).
	r.Step()
	if math.Abs(r.ZoneInletC(0)-before) > 0.5 {
		t.Errorf("inlet changed %v before transport delay elapsed", r.ZoneInletC(0)-before)
	}
	settle(r, 10*time.Minute)
	if r.ZoneInletC(0) <= before+2 {
		t.Errorf("inlet %v did not follow supply change after delay (was %v)", r.ZoneInletC(0), before)
	}
}

func TestCRACControlRespondsToHeat(t *testing.T) {
	r := mustUniform(t, 1, 1, 0.9)
	// 100 kW over 4 m³/s is a ~21 K rise: return air goes well above the
	// 28 °C target, so the controller must cut the supply temperature.
	if err := r.SetZoneHeat(0, 100_000); err != nil {
		t.Fatal(err)
	}
	initialSetpoint := r.CRACSetpointC(0)
	// Run physics + control for two hours.
	for i := 0; i < 8; i++ {
		settle(r, 15*time.Minute)
		r.ControlTick(0)
	}
	if r.CRACSetpointC(0) >= initialSetpoint {
		t.Errorf("setpoint %v did not drop under heavy load (was %v)",
			r.CRACSetpointC(0), initialSetpoint)
	}
	if r.CRACAdjustments(0) == 0 {
		t.Error("no control adjustments recorded")
	}
	if r.CRACReturnC(0) <= r.CRACSupplyC(0) {
		t.Errorf("return %v not above supply %v under load", r.CRACReturnC(0), r.CRACSupplyC(0))
	}
}

func TestCRACDeadbandSuppressesSmallErrors(t *testing.T) {
	r := mustUniform(t, 1, 1, 0.9)
	// Tiny heat: return stays within the deadband of its initial value,
	// so repeated control ticks must not adjust the setpoint...
	settle(r, time.Hour)
	ret := r.CRACReturnC(0)
	// Force return target to sit exactly at current return so error ~ 0.
	r.cracs[0].cfg.ReturnTargetC = ret
	r.cracs[0].deadband.Update(ret)
	before := r.CRACAdjustments(0)
	for i := 0; i < 10; i++ {
		settle(r, 15*time.Minute)
		r.ControlTick(0)
	}
	if got := r.CRACAdjustments(0) - before; got > 1 {
		t.Errorf("deadband allowed %d adjustments at equilibrium", got)
	}
}

func TestSetpointClampedToBounds(t *testing.T) {
	r := mustUniform(t, 1, 1, 0.9)
	if err := r.SetZoneHeat(0, 200_000); err != nil { // absurd heat
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		settle(r, 15*time.Minute)
		r.ControlTick(0)
	}
	min := r.cracs[0].cfg.SupplyMinC
	if r.CRACSetpointC(0) < min {
		t.Errorf("setpoint %v fell below bound %v", r.CRACSetpointC(0), min)
	}
	if r.CRACSetpointC(0) != min {
		t.Errorf("setpoint %v did not saturate at %v under absurd heat", r.CRACSetpointC(0), min)
	}
}

func TestMigrationPathologyMechanism(t *testing.T) {
	// Paper §5.1: the CRAC regulates zone A well and zone B poorly.
	// Migrating all load A→B and shutting A down makes the CRAC believe
	// the room is cold (its return is dominated by A), so it raises the
	// supply temperature while B — mostly recirculating its own exhaust —
	// heats toward alarm territory.
	r, err := TwoZoneRoom(0.85, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	const load = 25_000.0
	if err := r.SetZoneHeat(0, load); err != nil {
		t.Fatal(err)
	}
	if err := r.SetZoneHeat(1, 5_000); err != nil {
		t.Fatal(err)
	}
	run := func(d time.Duration) {
		periods := int(d / (15 * time.Minute))
		for i := 0; i < periods; i++ {
			settle(r, 15*time.Minute)
			r.ControlTick(0)
		}
	}
	run(3 * time.Hour)
	bBefore := r.ZoneInletC(1)
	setpointBefore := r.CRACSetpointC(0)

	// Migrate: all heat to B, none at A.
	if err := r.SetZoneHeat(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.SetZoneHeat(1, load+5_000); err != nil {
		t.Fatal(err)
	}
	run(4 * time.Hour)

	if r.CRACSetpointC(0) <= setpointBefore {
		t.Errorf("CRAC setpoint %v did not rise after its sensitive zone cooled (was %v)",
			r.CRACSetpointC(0), setpointBefore)
	}
	bAfter := r.ZoneInletC(1)
	if bAfter <= bBefore+3 {
		t.Errorf("zone B inlet rose only %.1f°C after migration (from %.1f to %.1f) — pathology not reproduced",
			bAfter-bBefore, bBefore, bAfter)
	}
}

func TestTwoZoneRoomValidation(t *testing.T) {
	if _, err := TwoZoneRoom(0.3, 0.5); err == nil {
		t.Error("A less sensitive than B should error")
	}
}

func TestUniformRoomValidation(t *testing.T) {
	if _, err := UniformRoom(0, 1, 0.9); err == nil {
		t.Error("zero zones should error")
	}
	if _, err := UniformRoom(1, 0, 0.9); err == nil {
		t.Error("zero cracs should error")
	}
	if _, err := UniformRoom(1, 1, 0); err == nil {
		t.Error("zero coverage should error")
	}
	if _, err := UniformRoom(1, 1, 1.5); err == nil {
		t.Error("coverage > 1 should error")
	}
}

func TestAttachRunsPhysicsAndControl(t *testing.T) {
	e := sim.NewEngine(1)
	r := mustUniform(t, 1, 1, 0.9)
	if err := r.SetZoneHeat(0, 40_000); err != nil {
		t.Fatal(err)
	}
	cancel := r.Attach(e)
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if r.CRACAdjustments(0) == 0 {
		t.Error("attached room made no control adjustments over 2h of load")
	}
	// Under load the inlet must sit above the cold-air supply (the rise
	// comes from recirculated exhaust).
	if r.ZoneInletC(0) <= r.CRACSupplyC(0) {
		t.Errorf("inlet %v not above supply %v under 40 kW", r.ZoneInletC(0), r.CRACSupplyC(0))
	}
	cancel()
	processed := e.Processed()
	if err := e.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != processed {
		t.Error("cancel did not stop the attached processes")
	}
}
