package cooling

import (
	"math"
	"testing"
)

func TestASHRAEEnvelope(t *testing.T) {
	tests := []struct {
		tempC, rh float64
		want      bool
	}{
		{22, 0.40, true},
		{20, 0.30, true},
		{25, 0.45, true},
		{19.9, 0.40, false},
		{25.1, 0.40, false},
		{22, 0.29, false},
		{22, 0.46, false},
	}
	for _, tt := range tests {
		if got := InASHRAEEnvelope(tt.tempC, tt.rh); got != tt.want {
			t.Errorf("InASHRAEEnvelope(%v, %v) = %v, want %v", tt.tempC, tt.rh, got, tt.want)
		}
	}
}

func TestPlantValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*PlantConfig)
	}{
		{"zero COP", func(c *PlantConfig) { c.COPNominal = 0 }},
		{"floor above nominal", func(c *PlantConfig) { c.COPMin = 10 }},
		{"negative slope", func(c *PlantConfig) { c.COPSlope = -1 }},
		{"negative fans", func(c *PlantConfig) { c.FanRatedW = -1 }},
		{"zero flow", func(c *PlantConfig) { c.FanFlowFraction = 0 }},
		{"negative pumps", func(c *PlantConfig) { c.PumpOverheadFrac = -1 }},
		{"econ temp bounds", func(c *PlantConfig) { c.EconoMinTempC = 30 }},
		{"econ rh bounds", func(c *PlantConfig) { c.EconoMinRH = 0.9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultPlantConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if err := DefaultPlantConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestCOPDegradesWithOutsideTemp(t *testing.T) {
	c := DefaultPlantConfig()
	cold := c.COP(5)
	warm := c.COP(30)
	if warm >= cold {
		t.Errorf("COP at 30°C (%v) not below COP at 5°C (%v)", warm, cold)
	}
	// Floored on the hottest days.
	if got := c.COP(100); got != c.COPMin {
		t.Errorf("COP(100) = %v, want floor %v", got, c.COPMin)
	}
	// Capped at nominal on the coldest.
	if got := c.COP(-40); got != c.COPNominal {
		t.Errorf("COP(-40) = %v, want nominal %v", got, c.COPNominal)
	}
}

func TestPlantPowerWithoutEconomizer(t *testing.T) {
	c := DefaultPlantConfig()
	p, err := c.Power(100_000, c.COPRefC, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	wantComp := 100_000 / c.COPNominal
	if math.Abs(p.CompressorW-wantComp) > 1e-9 {
		t.Errorf("compressor = %v, want %v", p.CompressorW, wantComp)
	}
	if math.Abs(p.PumpW-wantComp*c.PumpOverheadFrac) > 1e-9 {
		t.Errorf("pumps = %v", p.PumpW)
	}
	if p.FanW != c.FanRatedW {
		t.Errorf("fans = %v, want rated %v at full flow", p.FanW, c.FanRatedW)
	}
	if p.EconomizerActive {
		t.Error("economizer active while disabled")
	}
	if math.Abs(p.TotalW()-(p.CompressorW+p.PumpW+p.FanW)) > 1e-9 {
		t.Error("TotalW inconsistent")
	}
	if _, err := c.Power(-1, 20, 0.4); err == nil {
		t.Error("negative load should error")
	}
}

func TestFanCubeLaw(t *testing.T) {
	c := DefaultPlantConfig()
	c.FanFlowFraction = 0.5
	p, err := c.Power(0, 20, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.FanW-c.FanRatedW*0.125) > 1e-9 {
		t.Errorf("half-flow fan power = %v, want %v", p.FanW, c.FanRatedW*0.125)
	}
}

func TestEconomizerBypassesChiller(t *testing.T) {
	c := DefaultPlantConfig()
	c.Economizer = true
	// Cool, dry-enough outside air: free cooling.
	p, err := c.Power(100_000, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !p.EconomizerActive {
		t.Fatal("economizer not active in favourable weather")
	}
	if p.CompressorW != 0 || p.PumpW != 0 {
		t.Errorf("chiller running during economization: comp=%v pump=%v", p.CompressorW, p.PumpW)
	}
	if p.FanW == 0 {
		t.Error("fans must still run during economization")
	}
	// Too hot outside: back to the chiller.
	p, err = c.Power(100_000, 30, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.EconomizerActive || p.CompressorW == 0 {
		t.Error("economizer active in hot weather")
	}
	// Too humid outside: back to the chiller (paper: humidity changes
	// "bringing additional challenges to cooling control").
	p, err = c.Power(100_000, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if p.EconomizerActive {
		t.Error("economizer active in saturating humidity")
	}
	// Too cold outside is still usable (mixing keeps it free).
	if c.EconomizerUsable(-20, 0.5) {
		t.Error("below minimum temperature should not be directly usable")
	}
}

func TestPUE(t *testing.T) {
	// Paper §2.2: "most data centers have [PUE] close to 2" under
	// conservative chiller-only operation.
	legacy := PlantConfig{
		COPNominal:       2.2,
		COPRefC:          15,
		COPSlope:         0.05,
		COPMin:           1.8,
		FanRatedW:        18_000, // sized for a 100 kW room
		FanFlowFraction:  1,
		PumpOverheadFrac: 0.15,
		EconoMinTempC:    -10,
		EconoMaxTempC:    18,
		EconoMinRH:       0.2,
		EconoMaxRH:       0.8,
	}
	const itW = 100_000
	p, err := legacy.Power(itW*1.05, 25, 0.4) // overcooling margin
	if err != nil {
		t.Fatal(err)
	}
	distLoss := itW * 0.14 // lightly-loaded double-conversion UPS path
	misc := itW * 0.06     // lighting, office, security
	pue, err := PUE(itW, distLoss, p.TotalW()+misc)
	if err != nil {
		t.Fatal(err)
	}
	if pue < 1.7 || pue > 2.2 {
		t.Errorf("legacy-plant PUE = %.2f, want close to 2", pue)
	}

	if _, err := PUE(0, 1, 1); err == nil {
		t.Error("zero IT power should error")
	}
	if _, err := PUE(100, -1, 0); err == nil {
		t.Error("negative overhead should error")
	}
	perfect, err := PUE(100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if perfect != 1 {
		t.Errorf("overhead-free PUE = %v, want 1", perfect)
	}
}
