package cooling

import (
	"fmt"
	"time"

	"repro/internal/control"
)

// HumidifierConfig describes the humidity-control loop of §2.1 (the paper
// lists humidifiers among the facility's power consumers) and §2.2 (the
// ASHRAE 30–45 % RH band; outside air "brings additional challenges to
// cooling control" because its humidity varies).
type HumidifierConfig struct {
	// LowRH and HighRH bound the controlled band (ASHRAE recommends
	// 0.30–0.45).
	LowRH, HighRH float64
	// TargetRH is the setpoint the actuators steer toward when engaged.
	TargetRH float64
	// HumidifyW and DehumidifyW are the actuator draws when running
	// (steam humidifiers are power-hungry).
	HumidifyW, DehumidifyW float64
	// Tau is the room's humidity time constant toward the driving air.
	Tau time.Duration
	// ActuatorGain is how much faster the actuators move RH than
	// passive mixing (multiplies the effective rate while engaged).
	ActuatorGain float64
	// InitialRH is the starting room humidity.
	InitialRH float64
}

// DefaultHumidifierConfig is a conventional CRAC-integrated unit.
func DefaultHumidifierConfig() HumidifierConfig {
	return HumidifierConfig{
		LowRH:        ASHRAEMinRH,
		HighRH:       ASHRAEMaxRH,
		TargetRH:     0.40,
		HumidifyW:    6_000,
		DehumidifyW:  8_000,
		Tau:          30 * time.Minute,
		ActuatorGain: 4,
		InitialRH:    0.40,
	}
}

// Validate checks the configuration.
func (c HumidifierConfig) Validate() error {
	switch {
	case c.LowRH <= 0 || c.HighRH >= 1 || c.LowRH >= c.HighRH:
		return fmt.Errorf("cooling: RH band [%v,%v] invalid", c.LowRH, c.HighRH)
	case c.TargetRH < c.LowRH || c.TargetRH > c.HighRH:
		return fmt.Errorf("cooling: target RH %v outside band [%v,%v]", c.TargetRH, c.LowRH, c.HighRH)
	case c.HumidifyW < 0 || c.DehumidifyW < 0:
		return fmt.Errorf("cooling: negative actuator power")
	case c.Tau <= 0:
		return fmt.Errorf("cooling: humidity tau %v must be positive", c.Tau)
	case c.ActuatorGain < 1:
		return fmt.Errorf("cooling: actuator gain %v must be >= 1", c.ActuatorGain)
	case c.InitialRH <= 0 || c.InitialRH >= 1:
		return fmt.Errorf("cooling: initial RH %v out of (0,1)", c.InitialRH)
	}
	return nil
}

// Humidifier is the runtime humidity loop: room RH drifts toward the
// driving air (outside air when economizing, dried mechanical supply
// otherwise); the actuators engage outside the band and steer back to the
// target, drawing power while running.
type Humidifier struct {
	cfg           HumidifierConfig
	rh            *control.FirstOrder
	humidifying   bool
	dehumidifying bool
	energyJ       float64
}

// NewHumidifier builds the loop.
func NewHumidifier(cfg HumidifierConfig) (*Humidifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lag, err := control.NewFirstOrder(cfg.Tau, cfg.InitialRH)
	if err != nil {
		return nil, err
	}
	return &Humidifier{cfg: cfg, rh: lag}, nil
}

// RH reports the current room relative humidity.
func (h *Humidifier) RH() float64 { return h.rh.Output() }

// InBand reports whether the current RH sits inside the controlled band.
func (h *Humidifier) InBand() bool {
	return h.RH() >= h.cfg.LowRH && h.RH() <= h.cfg.HighRH
}

// Active reports whether either actuator is currently running.
func (h *Humidifier) Active() (humidify, dehumidify bool) {
	return h.humidifying, h.dehumidifying
}

// EnergyJ reports the actuator energy consumed so far.
func (h *Humidifier) EnergyJ() float64 { return h.energyJ }

// Step advances the loop by dt with the given driving air humidity and
// returns the instantaneous actuator draw. Hysteresis: actuators engage
// when RH leaves the band and run until the target is reached.
func (h *Humidifier) Step(drivingRH float64, dt time.Duration) (powerW float64) {
	if drivingRH < 0 {
		drivingRH = 0
	}
	if drivingRH > 1 {
		drivingRH = 1
	}
	cur := h.rh.Output()
	// Engage/disengage with hysteresis around the target.
	if cur < h.cfg.LowRH {
		h.humidifying = true
	}
	if cur > h.cfg.HighRH {
		h.dehumidifying = true
	}
	if h.humidifying && cur >= h.cfg.TargetRH {
		h.humidifying = false
	}
	if h.dehumidifying && cur <= h.cfg.TargetRH {
		h.dehumidifying = false
	}

	driving := drivingRH
	effDt := dt
	switch {
	case h.humidifying:
		driving = h.cfg.TargetRH + 0.05 // steam injection overshoots a little
		effDt = time.Duration(float64(dt) * h.cfg.ActuatorGain)
		powerW = h.cfg.HumidifyW
	case h.dehumidifying:
		driving = h.cfg.TargetRH - 0.05
		effDt = time.Duration(float64(dt) * h.cfg.ActuatorGain)
		powerW = h.cfg.DehumidifyW
	}
	h.rh.Step(driving, effDt)
	h.energyJ += powerW * dt.Seconds()
	return powerW
}
