package cooling

import (
	"fmt"
	"math"
)

// ASHRAE recommended envelope for data-center operation (paper §2.2).
const (
	ASHRAEMinTempC = 20.0
	ASHRAEMaxTempC = 25.0
	ASHRAEMinRH    = 0.30
	ASHRAEMaxRH    = 0.45
)

// InASHRAEEnvelope reports whether an inlet condition is inside the
// recommended temperature and humidity envelope.
func InASHRAEEnvelope(tempC, rh float64) bool {
	return tempC >= ASHRAEMinTempC && tempC <= ASHRAEMaxTempC &&
		rh >= ASHRAEMinRH && rh <= ASHRAEMaxRH
}

// PlantConfig describes the heat-rejection plant behind the CRACs: the
// chiller (compressor + pumps) and CRAC fans, plus an optional air-side
// economizer.
type PlantConfig struct {
	// COPNominal is the chiller coefficient of performance at the
	// reference outside temperature: watts of heat removed per watt of
	// compressor power.
	COPNominal float64
	// COPRefC is the outside temperature at which COPNominal holds.
	COPRefC float64
	// COPSlope is the COP loss per °C of outside temperature above the
	// reference (condensers reject heat less efficiently when hot out).
	COPSlope float64
	// COPMin floors the COP on the hottest days.
	COPMin float64
	// FanRatedW is the total CRAC fan power at full airflow.
	FanRatedW float64
	// FanFlowFraction is the current airflow as a fraction of rated;
	// fan power follows the cube law.
	FanFlowFraction float64
	// PumpOverheadFrac adds chilled-water pump power as a fraction of
	// compressor power.
	PumpOverheadFrac float64

	// Economizer enables air-side economization (§2.2: "using outside
	// air to cool data centers directly, rather than relying on energy
	// consuming water chillers").
	Economizer bool
	// EconoMaxTempC is the highest outside temperature at which outside
	// air can fully carry the cooling load.
	EconoMaxTempC float64
	// EconoMinTempC is the lowest usable outside temperature (below it,
	// air must be mixed to avoid undershooting the envelope; still free).
	EconoMinTempC float64
	// EconoMinRH and EconoMaxRH bound the humidity at which outside air
	// is admissible without costly (de)humidification.
	EconoMinRH, EconoMaxRH float64
}

// DefaultPlantConfig is a chilled-water plant without economizer.
func DefaultPlantConfig() PlantConfig {
	return PlantConfig{
		COPNominal:       4.0,
		COPRefC:          15,
		COPSlope:         0.08,
		COPMin:           2.0,
		FanRatedW:        12_000,
		FanFlowFraction:  1.0,
		PumpOverheadFrac: 0.12,
		Economizer:       false,
		EconoMaxTempC:    18,
		EconoMinTempC:    -10,
		EconoMinRH:       0.20,
		EconoMaxRH:       0.80,
	}
}

// Validate checks physical consistency.
func (c PlantConfig) Validate() error {
	switch {
	case c.COPNominal <= 0:
		return fmt.Errorf("cooling: nominal COP %v must be positive", c.COPNominal)
	case c.COPMin <= 0 || c.COPMin > c.COPNominal:
		return fmt.Errorf("cooling: COP floor %v out of (0, %v]", c.COPMin, c.COPNominal)
	case c.COPSlope < 0:
		return fmt.Errorf("cooling: COP slope %v must be non-negative", c.COPSlope)
	case c.FanRatedW < 0:
		return fmt.Errorf("cooling: fan power %v must be non-negative", c.FanRatedW)
	case c.FanFlowFraction <= 0 || c.FanFlowFraction > 1:
		return fmt.Errorf("cooling: fan flow fraction %v out of (0,1]", c.FanFlowFraction)
	case c.PumpOverheadFrac < 0:
		return fmt.Errorf("cooling: pump overhead %v must be non-negative", c.PumpOverheadFrac)
	case c.EconoMinTempC >= c.EconoMaxTempC:
		return fmt.Errorf("cooling: economizer bounds [%v,%v] invalid", c.EconoMinTempC, c.EconoMaxTempC)
	case c.EconoMinRH >= c.EconoMaxRH:
		return fmt.Errorf("cooling: economizer RH bounds [%v,%v] invalid", c.EconoMinRH, c.EconoMaxRH)
	}
	return nil
}

// COP evaluates the chiller coefficient of performance at the given
// outside temperature.
func (c PlantConfig) COP(outsideC float64) float64 {
	cop := c.COPNominal - c.COPSlope*(outsideC-c.COPRefC)
	return math.Max(c.COPMin, math.Min(c.COPNominal, cop))
}

// EconomizerUsable reports whether outside air can fully carry the load.
func (c PlantConfig) EconomizerUsable(outsideC, outsideRH float64) bool {
	return c.Economizer &&
		outsideC >= c.EconoMinTempC && outsideC <= c.EconoMaxTempC &&
		outsideRH >= c.EconoMinRH && outsideRH <= c.EconoMaxRH
}

// PlantPower is the power breakdown of the heat-rejection plant.
type PlantPower struct {
	// CompressorW is the chiller compressor draw.
	CompressorW float64
	// PumpW is the chilled-water pump draw.
	PumpW float64
	// FanW is the CRAC fan draw.
	FanW float64
	// EconomizerActive reports whether outside air carried the load.
	EconomizerActive bool
}

// TotalW sums the plant draw.
func (p PlantPower) TotalW() float64 { return p.CompressorW + p.PumpW + p.FanW }

// Power computes the plant draw needed to remove loadW of heat under the
// given outside conditions. With a usable economizer, the compressor and
// pumps idle and only fans run.
func (c PlantConfig) Power(loadW, outsideC, outsideRH float64) (PlantPower, error) {
	if loadW < 0 {
		return PlantPower{}, fmt.Errorf("cooling: negative load %v", loadW)
	}
	fan := c.FanRatedW * math.Pow(c.FanFlowFraction, 3)
	if c.EconomizerUsable(outsideC, outsideRH) {
		return PlantPower{FanW: fan, EconomizerActive: true}, nil
	}
	comp := loadW / c.COP(outsideC)
	return PlantPower{
		CompressorW: comp,
		PumpW:       comp * c.PumpOverheadFrac,
		FanW:        fan,
	}, nil
}

// PUE computes power-usage effectiveness: total facility power over IT
// power. The paper notes "most data centers have [PUE] close to 2".
func PUE(itW, distributionLossW, coolingW float64) (float64, error) {
	if itW <= 0 {
		return 0, fmt.Errorf("cooling: IT power %v must be positive for PUE", itW)
	}
	if distributionLossW < 0 || coolingW < 0 {
		return 0, fmt.Errorf("cooling: negative overhead power")
	}
	return (itW + distributionLossW + coolingW) / itW, nil
}
