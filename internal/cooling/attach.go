package cooling

import (
	"fmt"

	"repro/internal/sim"
)

// Attach wires the room onto a simulation engine: physics steps on every
// PhysicsTick and one control decision per CRAC on its control period.
// The returned cancel stops both.
func (r *Room) Attach(e *sim.Engine) sim.Cancel {
	e.Register(r)
	cancels := make([]sim.Cancel, 0, 1+len(r.cracs))
	cancels = append(cancels, e.Every(r.cfg.PhysicsTick, func(*sim.Engine) { r.Step() }))
	for ci := range r.cracs {
		ci := ci
		period := r.cracs[ci].cfg.ControlPeriod
		cancels = append(cancels, e.Every(period, func(*sim.Engine) { r.ControlTick(ci) }))
	}
	return func() {
		for _, c := range cancels {
			c()
		}
	}
}

// TwoZoneRoom builds the canonical asymmetric room of the paper's §5.1
// scenario: one CRAC, zone A tightly coupled to it (sensitivity
// aSensitivity) and zone B poorly coupled (bSensitivity, with the
// remainder recirculated hot air). Use it to reproduce the migration
// pathology: "migrate load from servers at location A to servers at
// location B and shut down the servers at A … servers at B are then at
// risk of generating thermal alarms."
func TwoZoneRoom(aSensitivity, bSensitivity float64) (*Room, error) {
	if aSensitivity <= bSensitivity {
		return nil, fmt.Errorf("cooling: zone A sensitivity %v must exceed zone B %v",
			aSensitivity, bSensitivity)
	}
	zoneA := DefaultZone("zone-a")
	zoneB := DefaultZone("zone-b")
	cfg := RoomConfig{
		Zones:       []ZoneConfig{zoneA, zoneB},
		CRACs:       []CRACConfig{DefaultCRAC("crac-1")},
		Sensitivity: [][]float64{{aSensitivity}, {bSensitivity}},
		PhysicsTick: DefaultPhysicsTick,
	}
	return NewRoom(cfg)
}

// UniformRoom builds a room of n zones and m CRACs with even coupling
// (each zone draws equally from every CRAC with total supply fraction
// coverage, the remainder recirculating).
func UniformRoom(zones, cracs int, coverage float64) (*Room, error) {
	if zones <= 0 || cracs <= 0 {
		return nil, fmt.Errorf("cooling: need positive zone and CRAC counts")
	}
	if coverage <= 0 || coverage > 1 {
		return nil, fmt.Errorf("cooling: coverage %v out of (0,1]", coverage)
	}
	cfg := RoomConfig{PhysicsTick: DefaultPhysicsTick}
	for z := 0; z < zones; z++ {
		cfg.Zones = append(cfg.Zones, DefaultZone(fmt.Sprintf("zone-%d", z)))
		row := make([]float64, cracs)
		for c := range row {
			row[c] = coverage / float64(cracs)
		}
		cfg.Sensitivity = append(cfg.Sensitivity, row)
	}
	for c := 0; c < cracs; c++ {
		cfg.CRACs = append(cfg.CRACs, DefaultCRAC(fmt.Sprintf("crac-%d", c)))
	}
	return NewRoom(cfg)
}
