package control

import (
	"math"
	"testing"
	"time"
)

func TestPIDConvergesFirstOrderPlant(t *testing.T) {
	// Plant: y' = (u - y)/tau. The controller should drive y to the
	// setpoint without violating its clamp.
	pid, err := NewPID(2.0, 1.0, 0.0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	plant, err := NewFirstOrder(10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	const setpoint = 5.0
	dt := time.Second
	var y float64
	for i := 0; i < 600; i++ {
		u := pid.Update(setpoint-y, dt)
		if u < 0 || u > 10 {
			t.Fatalf("control output %v escaped clamp", u)
		}
		y = plant.Step(u, dt)
	}
	if math.Abs(y-setpoint) > 0.05 {
		t.Errorf("PID settled at %v, want %v", y, setpoint)
	}
}

func TestPIDClampAndReset(t *testing.T) {
	pid, err := NewPID(100, 0, 0, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := pid.Update(1000, time.Second); got != 1 {
		t.Errorf("saturated output = %v, want 1", got)
	}
	if got := pid.Update(-1000, time.Second); got != -1 {
		t.Errorf("saturated output = %v, want -1", got)
	}
	pid.Reset()
	if got := pid.Update(0, time.Second); got != 0 {
		t.Errorf("after reset, zero error gives %v, want 0", got)
	}
	if _, err := NewPID(1, 0, 0, 5, 5); err == nil {
		t.Error("invalid clamp should error")
	}
}

func TestPIDAntiWindup(t *testing.T) {
	// Drive hard into saturation, then reverse; with anti-windup the
	// output must leave saturation promptly (within a few steps).
	pid, err := NewPID(0.1, 1.0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		pid.Update(10, time.Second) // deep saturation high
	}
	steps := 0
	for ; steps < 10; steps++ {
		if pid.Update(-1, time.Second) < 1 {
			break
		}
	}
	if steps >= 10 {
		t.Error("integral wind-up: output stuck at clamp after error reversed")
	}
}

func TestFirstOrderStepResponse(t *testing.T) {
	f, err := NewFirstOrder(time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After exactly one time constant the response to a unit step is 1-1/e.
	y := f.Step(1, time.Minute)
	want := 1 - math.Exp(-1)
	if math.Abs(y-want) > 1e-12 {
		t.Errorf("one-tau response = %v, want %v", y, want)
	}
	// Converges to the input.
	for i := 0; i < 100; i++ {
		y = f.Step(1, time.Minute)
	}
	if math.Abs(y-1) > 1e-9 {
		t.Errorf("settled at %v, want 1", y)
	}
	if f.Output() != y {
		t.Errorf("Output = %v, want %v", f.Output(), y)
	}
	f.Set(42)
	if f.Output() != 42 {
		t.Error("Set did not force output")
	}
	if _, err := NewFirstOrder(0, 0); err == nil {
		t.Error("zero time constant should error")
	}
}

func TestFirstOrderStepSizeInvariance(t *testing.T) {
	// Exact discretization: many small steps == one big step.
	a, _ := NewFirstOrder(time.Minute, 0)
	b, _ := NewFirstOrder(time.Minute, 0)
	for i := 0; i < 60; i++ {
		a.Step(1, time.Second)
	}
	b.Step(1, time.Minute)
	if math.Abs(a.Output()-b.Output()) > 1e-9 {
		t.Errorf("step-size dependence: %v vs %v", a.Output(), b.Output())
	}
}

func TestDelayLine(t *testing.T) {
	d, err := NewDelayLine(3*time.Second, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []float64{1, 2, 3, 4, 5, 6}
	var outputs []float64
	for _, u := range inputs {
		outputs = append(outputs, d.Step(u))
	}
	// First three outputs are the initial fill; then inputs delayed by 3.
	want := []float64{0, 0, 0, 1, 2, 3}
	for i := range want {
		if outputs[i] != want[i] {
			t.Fatalf("outputs = %v, want %v", outputs, want)
		}
	}
	if _, err := NewDelayLine(time.Second, 0, 0); err == nil {
		t.Error("zero tick should error")
	}
	if _, err := NewDelayLine(-time.Second, time.Second, 0); err == nil {
		t.Error("negative delay should error")
	}
	// Zero delay still delays by one tick (minimum line length).
	z, err := NewDelayLine(0, time.Second, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.Step(1); got != 9 {
		t.Errorf("minimum delay line first output = %v, want 9", got)
	}
}

func TestHysteresis(t *testing.T) {
	h, err := NewHysteresis(0.3, 0.7, false)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		x    float64
		want bool
	}{
		{0.5, false}, // inside band, stays off
		{0.8, true},  // crosses high
		{0.5, true},  // inside band, stays on
		{0.31, true}, // still above low
		{0.2, false}, // crosses low
		{0.69, false},
	}
	for i, s := range steps {
		if got := h.Update(s.x); got != s.want {
			t.Fatalf("step %d: Update(%v) = %v, want %v", i, s.x, got, s.want)
		}
	}
	if h.On() {
		t.Error("On() inconsistent with last update")
	}
	if _, err := NewHysteresis(0.7, 0.3, false); err == nil {
		t.Error("inverted thresholds should error")
	}
}

func TestDeadband(t *testing.T) {
	d, err := NewDeadband(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Update(10); got != 10 {
		t.Errorf("first update = %v, want 10", got)
	}
	if got := d.Update(10.5); got != 10 {
		t.Errorf("inside band = %v, want 10", got)
	}
	if got := d.Update(11.5); got != 11.5 {
		t.Errorf("outside band = %v, want 11.5", got)
	}
	if _, err := NewDeadband(-1); err == nil {
		t.Error("negative width should error")
	}
}
