package control

import (
	"math"
	"testing"
)

func TestEWMAConvergesToConstant(t *testing.T) {
	e, err := NewEWMA(0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e.Observe(7)
	}
	if math.Abs(e.Forecast(1)-7) > 1e-9 {
		t.Errorf("EWMA forecast = %v, want 7", e.Forecast(1))
	}
	if e.Level() != e.Forecast(5) {
		t.Error("EWMA forecast should be flat across horizons")
	}
}

func TestEWMAFirstObservationSetsLevel(t *testing.T) {
	e, _ := NewEWMA(0.1)
	e.Observe(42)
	if e.Level() != 42 {
		t.Errorf("first observation level = %v, want 42", e.Level())
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		if _, err := NewEWMA(a); err == nil {
			t.Errorf("alpha=%v should error", a)
		}
	}
	if _, err := NewEWMA(1); err != nil {
		t.Errorf("alpha=1 should be accepted: %v", err)
	}
}

func TestHoltTracksLinearRamp(t *testing.T) {
	h, err := NewHolt(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Feed y = 3t + 10; forecast k steps ahead should be ~3(t+k)+10.
	var tEnd int
	for i := 0; i <= 50; i++ {
		h.Observe(3*float64(i) + 10)
		tEnd = i
	}
	for _, k := range []int{1, 5, 10} {
		want := 3*float64(tEnd+k) + 10
		got := h.Forecast(k)
		if math.Abs(got-want) > 0.5 {
			t.Errorf("Holt forecast(+%d) = %v, want ~%v", k, got, want)
		}
	}
	if got, want := h.Forecast(0), h.Forecast(1); got != want {
		t.Errorf("Forecast(0) should clamp to 1 step: %v vs %v", got, want)
	}
}

func TestHoltValidation(t *testing.T) {
	if _, err := NewHolt(0, 0.5); err == nil {
		t.Error("alpha=0 should error")
	}
	if _, err := NewHolt(0.5, 2); err == nil {
		t.Error("beta=2 should error")
	}
}

func TestMovingWindowHeadroom(t *testing.T) {
	m, err := NewMovingWindow(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Forecast(1) != 0 {
		t.Error("empty window should forecast 0")
	}
	m.Observe(10)
	if m.Forecast(1) != 10 {
		t.Errorf("single observation forecast = %v, want 10 (no sd yet)", m.Forecast(1))
	}
	for _, x := range []float64{10, 10, 10} {
		m.Observe(x)
	}
	// Constant window: sd = 0, forecast = mean.
	if m.Forecast(1) != 10 {
		t.Errorf("constant window forecast = %v, want 10", m.Forecast(1))
	}
	// Now vary: forecast must exceed the mean by k*sd.
	m.Observe(20)
	m.Observe(20)
	f := m.Forecast(1)
	if f <= 15 {
		t.Errorf("headroom forecast = %v, want > mean 15", f)
	}
}

func TestMovingWindowEvictsOldest(t *testing.T) {
	m, err := NewMovingWindow(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(100)
	m.Observe(1)
	m.Observe(3) // evicts 100
	if got := m.Forecast(1); got != 2 {
		t.Errorf("window mean = %v, want 2 after eviction", got)
	}
}

func TestMovingWindowValidation(t *testing.T) {
	if _, err := NewMovingWindow(0, 1); err == nil {
		t.Error("zero-size window should error")
	}
}
