// Package control provides the feedback-control substrate the paper's
// coordination arguments rely on (§5.1): PID controllers with anti-windup,
// first-order lags and transport delays for the slow cooling dynamics,
// load forecasters for provisioning, and hysteresis/deadband elements for
// on/off decisions.
package control

import (
	"fmt"
	"math"
	"time"
)

// PID is a discrete proportional–integral–derivative controller with output
// clamping and integral anti-windup (conditional integration). Construct
// with NewPID.
type PID struct {
	kp, ki, kd float64
	outLo      float64
	outHi      float64
	integral   float64
	prevErr    float64
	havePrev   bool
}

// NewPID builds a controller with gains (kp, ki, kd) and output clamp
// [outLo, outHi].
func NewPID(kp, ki, kd, outLo, outHi float64) (*PID, error) {
	if !(outLo < outHi) {
		return nil, fmt.Errorf("control: PID clamp [%v, %v] invalid", outLo, outHi)
	}
	return &PID{kp: kp, ki: ki, kd: kd, outLo: outLo, outHi: outHi}, nil
}

// Update advances the controller by dt with the given error (setpoint −
// measurement) and returns the clamped control output.
func (p *PID) Update(err float64, dt time.Duration) float64 {
	h := dt.Seconds()
	if h <= 0 {
		h = 1e-9
	}
	deriv := 0.0
	if p.havePrev {
		deriv = (err - p.prevErr) / h
	}
	p.prevErr = err
	p.havePrev = true

	raw := p.kp*err + p.ki*(p.integral+err*h) + p.kd*deriv
	// Conditional integration: only accumulate when not pushing further
	// into saturation.
	if (raw < p.outHi || err < 0) && (raw > p.outLo || err > 0) {
		p.integral += err * h
	}
	out := p.kp*err + p.ki*p.integral + p.kd*deriv
	if out < p.outLo {
		return p.outLo
	}
	if out > p.outHi {
		return p.outHi
	}
	return out
}

// Reset clears the controller state.
func (p *PID) Reset() {
	p.integral = 0
	p.prevErr = 0
	p.havePrev = false
}

// FirstOrder is a first-order lag y' = (u − y)/τ, the lumped model used for
// air-volume and building thermal mass (paper §2.2: "air cooling systems
// have slow dynamics").
type FirstOrder struct {
	tau time.Duration
	y   float64
}

// NewFirstOrder builds a lag with time constant tau and initial output y0.
func NewFirstOrder(tau time.Duration, y0 float64) (*FirstOrder, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("control: time constant %v must be positive", tau)
	}
	return &FirstOrder{tau: tau, y: y0}, nil
}

// Step advances the lag by dt with input u using the exact discretization
// y += (u − y)(1 − e^(−dt/τ)) and returns the new output.
func (f *FirstOrder) Step(u float64, dt time.Duration) float64 {
	alpha := 1 - math.Exp(-dt.Seconds()/f.tau.Seconds())
	f.y += (u - f.y) * alpha
	return f.y
}

// Output reports the current output without advancing.
func (f *FirstOrder) Output() float64 { return f.y }

// Set forces the output (used to initialize from measured conditions).
func (f *FirstOrder) Set(y float64) { f.y = y }

// DelayLine models a pure transport delay: values pushed in emerge after
// the configured delay. It is sampled on a fixed tick; paper §2.2 notes
// CRAC actions "take long propagation delays to reach the servers".
type DelayLine struct {
	buf  []float64
	head int
}

// NewDelayLine builds a delay of delay seconds sampled every tick, filled
// with the initial value.
func NewDelayLine(delay, tick time.Duration, initial float64) (*DelayLine, error) {
	if tick <= 0 {
		return nil, fmt.Errorf("control: delay-line tick %v must be positive", tick)
	}
	if delay < 0 {
		return nil, fmt.Errorf("control: delay %v must be non-negative", delay)
	}
	n := int(delay / tick)
	if n < 1 {
		n = 1
	}
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = initial
	}
	return &DelayLine{buf: buf}, nil
}

// Step pushes u in and returns the value that emerges (u delayed).
func (d *DelayLine) Step(u float64) float64 {
	out := d.buf[d.head]
	d.buf[d.head] = u
	d.head = (d.head + 1) % len(d.buf)
	return out
}

// Hysteresis is a two-threshold switch: the output turns on when the input
// rises above high and off when it falls below low, suppressing chatter in
// on/off provisioning decisions.
type Hysteresis struct {
	low, high float64
	on        bool
}

// NewHysteresis builds a switch with the given thresholds (low < high) and
// initial state.
func NewHysteresis(low, high float64, initiallyOn bool) (*Hysteresis, error) {
	if !(low < high) {
		return nil, fmt.Errorf("control: hysteresis thresholds [%v, %v] invalid", low, high)
	}
	return &Hysteresis{low: low, high: high, on: initiallyOn}, nil
}

// Update folds in a new measurement and returns the switch state.
func (h *Hysteresis) Update(x float64) bool {
	if x > h.high {
		h.on = true
	} else if x < h.low {
		h.on = false
	}
	return h.on
}

// On reports the current state.
func (h *Hysteresis) On() bool { return h.on }

// Deadband passes its input through unchanged but reports zero change when
// the input moved less than width from the last emitted value. CRAC
// controllers use it to avoid reacting to small fluctuations.
type Deadband struct {
	width float64
	last  float64
	init  bool
}

// NewDeadband builds a deadband of the given width.
func NewDeadband(width float64) (*Deadband, error) {
	if width < 0 {
		return nil, fmt.Errorf("control: deadband width %v must be non-negative", width)
	}
	return &Deadband{width: width}, nil
}

// Update returns the value to act on: the new input if it escaped the band,
// otherwise the previously emitted value.
func (d *Deadband) Update(x float64) float64 {
	if !d.init || math.Abs(x-d.last) > d.width {
		d.last = x
		d.init = true
	}
	return d.last
}
