package control

import (
	"math"
	"testing"
)

// TestForecastEdgeCases is the table-driven edge-case suite for every
// Forecaster: empty history, single-sample history, and constant series.
// A provisioning policy may legitimately ask for a forecast before any
// telemetry has arrived, so these paths must return defined, finite
// values rather than NaN.
func TestForecastEdgeCases(t *testing.T) {
	mk := map[string]func(t *testing.T) Forecaster{
		"ewma": func(t *testing.T) Forecaster {
			f, err := NewEWMA(0.3)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"holt": func(t *testing.T) Forecaster {
			f, err := NewHolt(0.5, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"window": func(t *testing.T) Forecaster {
			f, err := NewMovingWindow(8, 2)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
	}

	cases := []struct {
		name    string
		history []float64
		steps   int
		want    float64
	}{
		{name: "empty-history", history: nil, steps: 1, want: 0},
		{name: "empty-history-long-horizon", history: nil, steps: 100, want: 0},
		{name: "single-sample", history: []float64{42}, steps: 1, want: 42},
		{name: "single-sample-long-horizon", history: []float64{42}, steps: 50, want: 42},
		{name: "single-zero-sample", history: []float64{0}, steps: 1, want: 0},
		{name: "constant-series", history: []float64{7, 7, 7, 7, 7, 7}, steps: 1, want: 7},
		{name: "constant-series-long-horizon", history: []float64{7, 7, 7, 7, 7, 7}, steps: 25, want: 7},
		{name: "constant-negative-series", history: []float64{-3, -3, -3, -3}, steps: 1, want: -3},
	}

	for name, build := range mk {
		for _, tc := range cases {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				f := build(t)
				for _, x := range tc.history {
					f.Observe(x)
				}
				got := f.Forecast(tc.steps)
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("Forecast(%d) = %v, want finite", tc.steps, got)
				}
				// Constant history ⇒ zero trend and zero variance, so all
				// three forecasters must agree on the exact value; empty
				// history must default to 0.
				if math.Abs(got-tc.want) > 1e-9 {
					t.Fatalf("Forecast(%d) after %v = %v, want %v", tc.steps, tc.history, got, tc.want)
				}
			})
		}
	}
}

// TestForecastNonPositiveSteps: a degenerate horizon must behave like the
// minimum lookahead of one step, not extrapolate backwards.
func TestForecastNonPositiveSteps(t *testing.T) {
	h, err := NewHolt(0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{10, 20, 30, 40} {
		h.Observe(x)
	}
	if got, want := h.Forecast(0), h.Forecast(1); got != want {
		t.Errorf("Forecast(0) = %v, want Forecast(1) = %v", got, want)
	}
	if got, want := h.Forecast(-5), h.Forecast(1); got != want {
		t.Errorf("Forecast(-5) = %v, want Forecast(1) = %v", got, want)
	}
}
