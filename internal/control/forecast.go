package control

import (
	"fmt"
	"math"
)

// Forecaster predicts the next value of a series from observations folded
// in so far. Provisioning policies (paper §3.1, after Chen et al. [18])
// forecast demand to decide how many servers to keep awake.
type Forecaster interface {
	// Observe folds in one observation.
	Observe(x float64)
	// Forecast predicts the value `steps` observations ahead (steps >= 1).
	Forecast(steps int) float64
}

// EWMA is an exponentially weighted moving-average forecaster. Its
// forecast is flat (the current level).
type EWMA struct {
	alpha float64
	level float64
	init  bool
}

var _ Forecaster = (*EWMA)(nil)

// NewEWMA builds an EWMA with smoothing factor alpha in (0,1].
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("control: EWMA alpha %v out of (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds in one observation.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.level = x
		e.init = true
		return
	}
	e.level += e.alpha * (x - e.level)
}

// Forecast returns the current level regardless of horizon.
func (e *EWMA) Forecast(int) float64 { return e.level }

// Level reports the current smoothed level.
func (e *EWMA) Level() float64 { return e.level }

// Holt is a Holt linear-trend (double exponential) forecaster, which
// tracks ramping demand such as flash-crowd onsets much faster than a flat
// EWMA.
type Holt struct {
	alpha, beta  float64
	level, trend float64
	n            int
}

var _ Forecaster = (*Holt)(nil)

// NewHolt builds a forecaster with level smoothing alpha and trend
// smoothing beta, both in (0,1].
func NewHolt(alpha, beta float64) (*Holt, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("control: Holt alpha %v out of (0,1]", alpha)
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("control: Holt beta %v out of (0,1]", beta)
	}
	return &Holt{alpha: alpha, beta: beta}, nil
}

// Observe folds in one observation.
func (h *Holt) Observe(x float64) {
	switch h.n {
	case 0:
		h.level = x
	case 1:
		h.trend = x - h.level
		h.level = x
	default:
		prev := h.level
		h.level = h.alpha*x + (1-h.alpha)*(h.level+h.trend)
		h.trend = h.beta*(h.level-prev) + (1-h.beta)*h.trend
	}
	h.n++
}

// Forecast extrapolates the trend `steps` ahead.
func (h *Holt) Forecast(steps int) float64 {
	if steps < 1 {
		steps = 1
	}
	return h.level + float64(steps)*h.trend
}

// MovingWindow is a sliding-window forecaster that predicts the windowed
// mean plus a configurable number of standard deviations of headroom —
// the classic "mean + kσ" provisioning rule.
type MovingWindow struct {
	buf   []float64
	head  int
	count int
	k     float64
}

var _ Forecaster = (*MovingWindow)(nil)

// NewMovingWindow builds a window of n observations with headroom k
// standard deviations.
func NewMovingWindow(n int, k float64) (*MovingWindow, error) {
	if n <= 0 {
		return nil, fmt.Errorf("control: window size %d must be positive", n)
	}
	return &MovingWindow{buf: make([]float64, n), k: k}, nil
}

// Observe folds in one observation.
func (m *MovingWindow) Observe(x float64) {
	m.buf[m.head] = x
	m.head = (m.head + 1) % len(m.buf)
	if m.count < len(m.buf) {
		m.count++
	}
}

// Forecast returns mean + k·σ of the window regardless of horizon.
func (m *MovingWindow) Forecast(int) float64 {
	if m.count == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < m.count; i++ {
		sum += m.buf[i]
	}
	mean := sum / float64(m.count)
	if m.count < 2 {
		return mean
	}
	var ss float64
	for i := 0; i < m.count; i++ {
		d := m.buf[i] - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(m.count-1))
	return mean + m.k*sd
}
