package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExampleJointOptimizer shows the coordinated (count, frequency) decision
// the paper's §5.1 argument calls for: one optimizer, one energy goal.
func ExampleJointOptimizer() {
	cfg := server.DefaultConfig()
	j, err := core.NewJointOptimizer(cfg, workload.DefaultQueueModel(), 100*time.Millisecond, 50)
	if err != nil {
		panic(err)
	}
	dec := j.Decide(8_000) // offered load in capacity units/s
	fmt.Printf("servers=%d pstate=%d power=%.0fW response<=%v\n",
		dec.Servers, dec.PState, dec.PredictedPowerW,
		dec.PredictedResponse.Round(time.Millisecond))
	// Output:
	// servers=10 pstate=0 power=2760W response<=100ms
}

// ExampleGeoRoute shows §3.2 federation routing: demand flows to the most
// efficient site that satisfies the latency bound.
func ExampleGeoRoute() {
	sites := []core.Site{
		{Name: "warm-home", CapacityUnits: 1000, MarginalPUE: 1.9, WattsPerUnit: 0.3, Latency: 20 * time.Millisecond},
		{Name: "cool-north", CapacityUnits: 600, MarginalPUE: 1.2, WattsPerUnit: 0.3, Latency: 60 * time.Millisecond},
	}
	allocs, totalW, unplaced, err := core.GeoRoute(900, sites, 100*time.Millisecond)
	if err != nil {
		panic(err)
	}
	for _, a := range allocs {
		fmt.Printf("%s: %.0f units (%.0f W)\n", a.Site, a.Units, a.PowerW)
	}
	fmt.Printf("total %.0f W, unplaced %.0f\n", totalW, unplaced)
	// Output:
	// cool-north: 600 units (216 W)
	// warm-home: 300 units (171 W)
	// total 387 W, unplaced 0
}

// ExampleFleet shows elastic fleet control: boot to a target, dispatch
// load, read power.
func ExampleFleet() {
	e := sim.NewEngine(1)
	cfg := server.DefaultConfig()
	fleet, err := core.NewFleet(e, cfg, 4)
	if err != nil {
		panic(err)
	}
	fleet.SetTarget(2)
	if err := e.Run(cfg.BootDelay); err != nil {
		panic(err)
	}
	fleet.Sync(e.Now())
	fleet.Dispatch(e.Now(), cfg.Capacity) // one server's worth over two servers
	fmt.Printf("active=%d power=%.0fW\n", fleet.ActiveCount(), fleet.PowerW())
	// Output:
	// active=2 power=480W
}
