package core

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestJointOptimizerValidation(t *testing.T) {
	cfg := testServerConfig()
	q := workload.DefaultQueueModel()
	if _, err := NewJointOptimizer(cfg, q, 100*time.Millisecond, 0); err == nil {
		t.Error("zero max count should error")
	}
	if _, err := NewJointOptimizer(cfg, q, q.ServiceTime, 10); err == nil {
		t.Error("SLA at service time should error")
	}
	bad := cfg
	bad.PeakPower = 0
	if _, err := NewJointOptimizer(bad, q, 100*time.Millisecond, 10); err == nil {
		t.Error("invalid server config should error")
	}
	badQ := workload.QueueModel{}
	if _, err := NewJointOptimizer(cfg, badQ, 100*time.Millisecond, 10); err == nil {
		t.Error("invalid queue should error")
	}
}

func TestJointDecisionMeetsSLA(t *testing.T) {
	cfg := testServerConfig()
	q := workload.DefaultQueueModel()
	const sla = 100 * time.Millisecond
	j, err := NewJointOptimizer(cfg, q, sla, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, offered := range []float64{0, 100, 500, 2_000, 10_000, 30_000} {
		dec := j.Decide(offered)
		if dec.Servers < 1 || dec.Servers > 50 {
			t.Errorf("offered %v: servers = %d out of range", offered, dec.Servers)
		}
		if dec.PredictedResponse > sla {
			t.Errorf("offered %v: predicted response %v exceeds SLA", offered, dec.PredictedResponse)
		}
		// Verify the prediction against the model directly.
		ps := cfg.PStates[dec.PState]
		rho := offered / (float64(dec.Servers) * cfg.Capacity * ps.Freq)
		if resp := q.Response(rho); resp > sla {
			t.Errorf("offered %v: actual modelled response %v exceeds SLA", offered, resp)
		}
	}
}

func TestJointDecisionMonotoneInLoad(t *testing.T) {
	cfg := testServerConfig()
	q := workload.DefaultQueueModel()
	j, err := NewJointOptimizer(cfg, q, 100*time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	prevPower := 0.0
	for _, offered := range []float64{1_000, 5_000, 10_000, 20_000, 40_000} {
		dec := j.Decide(offered)
		if dec.PredictedPowerW < prevPower {
			t.Errorf("power not monotone in load at %v: %v < %v", offered, dec.PredictedPowerW, prevPower)
		}
		prevPower = dec.PredictedPowerW
	}
}

func TestJointBeatsNaiveFullSpeed(t *testing.T) {
	// At moderate load, the joint choice must use less power than
	// running the same SLA-feasible count at full speed with spread
	// load, or fewer servers — the whole point of coordination.
	cfg := testServerConfig()
	q := workload.DefaultQueueModel()
	const sla = 100 * time.Millisecond
	j, err := NewJointOptimizer(cfg, q, sla, 100)
	if err != nil {
		t.Fatal(err)
	}
	const offered = 8_000.0
	dec := j.Decide(offered)

	// Naive: full frequency, minimum SLA-feasible count.
	rhoMax := q.UtilizationFor(sla)
	nNaive := int(offered/(cfg.Capacity*rhoMax)) + 1
	rhoNaive := offered / (float64(nNaive) * cfg.Capacity)
	idle := cfg.PeakPower * cfg.IdleFraction
	naivePower := float64(nNaive) * (idle + (cfg.PeakPower-idle)*rhoNaive)

	if dec.PredictedPowerW > naivePower+1e-9 {
		t.Errorf("joint power %v exceeds naive full-speed power %v", dec.PredictedPowerW, naivePower)
	}
}

func TestJointInfeasibleFallsBackToBestEffort(t *testing.T) {
	cfg := testServerConfig()
	q := workload.DefaultQueueModel()
	j, err := NewJointOptimizer(cfg, q, 100*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Far beyond 2 servers' capacity.
	dec := j.Decide(1e7)
	if dec.Servers != 2 || dec.PState != 0 {
		t.Errorf("infeasible decision = %+v, want full fleet at nominal", dec)
	}
	// Negative load clamps.
	dec = j.Decide(-100)
	if dec.Servers != 1 {
		t.Errorf("negative load servers = %d, want 1", dec.Servers)
	}
}
