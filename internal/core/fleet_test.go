package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
)

func testServerConfig() server.Config {
	cfg := server.DefaultConfig()
	cfg.BootDelay = 90 * time.Second
	return cfg
}

func bootedFleet(t *testing.T, e *sim.Engine, n, on int) *Fleet {
	t.Helper()
	f, err := NewFleet(e, testServerConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	f.SetTarget(on)
	if err := e.Run(e.Now() + testServerConfig().BootDelay + time.Second); err != nil {
		t.Fatal(err)
	}
	f.Sync(e.Now())
	if f.ActiveCount() != on {
		t.Fatalf("active = %d after boot, want %d", f.ActiveCount(), on)
	}
	return f
}

func TestNewFleetValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := NewFleet(e, testServerConfig(), 0); err == nil {
		t.Error("zero fleet should error")
	}
	bad := testServerConfig()
	bad.PeakPower = 0
	if _, err := NewFleet(e, bad, 2); err == nil {
		t.Error("invalid server config should error")
	}
	f, err := NewFleet(e, testServerConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 {
		t.Errorf("Size = %d", f.Size())
	}
	names := map[string]bool{}
	for _, s := range f.Servers() {
		names[s.Name()] = true
	}
	if len(names) != 3 {
		t.Error("server names not unique")
	}
}

func TestSetTargetBootAndShutdown(t *testing.T) {
	e := sim.NewEngine(1)
	f := bootedFleet(t, e, 10, 4)
	ons, offs := f.Switches()
	if ons != 4 || offs != 0 {
		t.Errorf("switches = %d/%d, want 4/0", ons, offs)
	}
	// Booting servers count toward the committed target (no double
	// ignition).
	f.SetTarget(6)
	if f.OnCount() != 6 {
		t.Fatalf("OnCount = %d, want 6", f.OnCount())
	}
	f.SetTarget(6) // idempotent while booting
	ons, _ = f.Switches()
	if ons != 6 {
		t.Errorf("switch-ons = %d, want 6 (no re-ignition)", ons)
	}
	if err := e.Run(e.Now() + 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	f.Sync(e.Now())
	if f.ActiveCount() != 6 {
		t.Fatalf("active = %d, want 6", f.ActiveCount())
	}
	// Scale down.
	f.SetTarget(2)
	if err := e.Run(e.Now() + time.Minute); err != nil {
		t.Fatal(err)
	}
	f.Sync(e.Now())
	if f.ActiveCount() != 2 {
		t.Errorf("active after shrink = %d, want 2", f.ActiveCount())
	}
	_, offs = f.Switches()
	if offs != 4 {
		t.Errorf("switch-offs = %d, want 4", offs)
	}
	// Clamping.
	f.SetTarget(-5)
	f.SetTarget(999)
	if f.OnCount() > f.Size() {
		t.Error("target clamping failed")
	}
}

func TestFleetDispatchAndPower(t *testing.T) {
	e := sim.NewEngine(1)
	f := bootedFleet(t, e, 4, 2)
	now := e.Now()
	cfg := testServerConfig()

	// Idle active servers draw idle power each.
	idle := cfg.PeakPower * cfg.IdleFraction
	if math.Abs(f.PowerW()-2*idle) > 1e-9 {
		t.Errorf("idle fleet power = %v, want %v", f.PowerW(), 2*idle)
	}
	// Dispatch half the active capacity: each at 50 %.
	d, maxU := f.Dispatch(now, cfg.Capacity)
	if d.Dropped != 0 {
		t.Errorf("dropped = %v", d.Dropped)
	}
	if math.Abs(maxU-0.5) > 1e-9 {
		t.Errorf("max utilization = %v, want 0.5", maxU)
	}
	// Overload drops.
	d, maxU = f.Dispatch(now, cfg.Capacity*5)
	if d.Dropped <= 0 || maxU != 1 {
		t.Errorf("overload: dropped=%v maxU=%v", d.Dropped, maxU)
	}
}

func TestFleetActivationOrderIsSliceOrder(t *testing.T) {
	e := sim.NewEngine(1)
	f := bootedFleet(t, e, 5, 2)
	// The first two servers in slice order must be the active ones —
	// the property cooling-aware ordering relies on.
	for i, s := range f.Servers() {
		want := server.StateActive
		if i >= 2 {
			want = server.StateOff
		}
		if s.State() != want {
			t.Errorf("server %d state = %v, want %v", i, s.State(), want)
		}
	}
}

func TestFleetEnergyAccumulates(t *testing.T) {
	e := sim.NewEngine(1)
	f := bootedFleet(t, e, 2, 2)
	before := f.EnergyJ()
	if err := e.Run(e.Now() + time.Hour); err != nil {
		t.Fatal(err)
	}
	f.Sync(e.Now())
	cfg := testServerConfig()
	wantDelta := 2 * cfg.PeakPower * cfg.IdleFraction * 3600
	delta := f.EnergyJ() - before
	if math.Abs(delta-wantDelta) > 1e-6*wantDelta {
		t.Errorf("hour of idle energy = %v J, want %v J", delta, wantDelta)
	}
}

func TestFleetSetPStateAll(t *testing.T) {
	e := sim.NewEngine(1)
	f := bootedFleet(t, e, 3, 3)
	if err := f.SetPStateAll(e.Now(), 2); err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Servers() {
		if s.PStateIndex() != 2 {
			t.Errorf("server %s p-state = %d, want 2", s.Name(), s.PStateIndex())
		}
	}
	if err := f.SetPStateAll(e.Now(), 99); err == nil {
		t.Error("invalid p-state should error")
	}
}

// TestSetTargetDropDuringBootWindow is the regression for the elastic
// scale-down bug: lowering the target while servers are still booting
// must shed the booting servers too, not wait for a boot that may never
// be reconciled.
func TestSetTargetDropDuringBootWindow(t *testing.T) {
	e := sim.NewEngine(1)
	f, err := NewFleet(e, testServerConfig(), 10)
	if err != nil {
		t.Fatal(err)
	}
	f.SetTarget(8)
	if f.OnCount() != 8 {
		t.Fatalf("OnCount = %d, want 8", f.OnCount())
	}
	// Mid-boot, demand collapses.
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	f.SetTarget(3)
	if f.OnCount() != 3 {
		t.Fatalf("OnCount immediately after drop = %d, want 3", f.OnCount())
	}
	// After every transition settles, exactly 3 are active — the five
	// aborted boots must not resurrect as Active servers.
	if err := e.Run(e.Now() + testServerConfig().BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	f.Sync(e.Now())
	if f.ActiveCount() != 3 {
		t.Errorf("ActiveCount after settling = %d, want 3", f.ActiveCount())
	}
	if f.OnCount() != 3 {
		t.Errorf("OnCount after settling = %d, want 3", f.OnCount())
	}
	_, offs := f.Switches()
	if offs != 5 {
		t.Errorf("switch-offs = %d, want 5", offs)
	}
}

// TestSetTargetDropToZeroDuringBoot covers the full-collapse case: every
// committed server is still booting when the target reaches zero.
func TestSetTargetDropToZeroDuringBoot(t *testing.T) {
	e := sim.NewEngine(1)
	f, err := NewFleet(e, testServerConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	f.SetTarget(4)
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	f.SetTarget(0)
	if f.OnCount() != 0 {
		t.Fatalf("OnCount = %d, want 0", f.OnCount())
	}
	if err := e.Run(e.Now() + testServerConfig().BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	f.Sync(e.Now())
	for _, s := range f.Servers() {
		if s.State() != server.StateOff {
			t.Errorf("%s state = %v after collapse, want off", s.Name(), s.State())
		}
	}
}
