package core

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
)

// degraderFixture assembles the small test facility with every server
// active and dispatched hot, plus a degrader subscribed to an injector.
func degraderFixture(t *testing.T, genFailProb float64) (*sim.Engine, *DataCenter, *Degrader, *fault.Injector, *fault.Utility) {
	t.Helper()
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, smallDCConfig())
	if err != nil {
		t.Fatal(err)
	}
	dc.Fleet().SetTarget(dc.Fleet().Size())
	if err := e.Run(testServerConfig().BootDelay + time.Second); err != nil {
		t.Fatal(err)
	}
	dc.Fleet().Dispatch(e.Now(), 0.9*float64(dc.Fleet().Size())*testServerConfig().Capacity)

	// EmergencyCapFrac 0.4 puts the derated cap (800 W) below the
	// facility's 90 %-dispatch rack draw, so enforcement must bite.
	d, err := NewDegrader(e, dc, DegraderConfig{EmergencyCapFrac: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(e)
	in.WireRoom(dc.Room())
	in.WireServers(dc.Fleet().Servers())
	bat, err := power.BatteryForAutonomy(dc.ITPowerW(), 5*time.Minute, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	u, err := in.WireUtility(fault.UtilityConfig{
		Battery:          bat,
		LoadW:            func() float64 { return dc.Flow().OutW },
		GenStartDelay:    time.Minute,
		GenStartFailProb: genFailProb,
		GenRetries:       1,
		GenRetryBackoff:  30 * time.Second,
		Tick:             5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Subscribe(d.OnNotice)
	d.Start()
	return e, dc, d, in, u
}

func TestDegraderEmergencyCaps(t *testing.T) {
	e, dc, d, in, _ := degraderFixture(t, 0)
	racks := dc.Topology().Racks
	savedCap := racks[0].Cap()
	outageAt := e.Now() + time.Hour
	if err := in.Arm([]fault.Event{
		{Kind: fault.UtilityOutage, At: outageAt, Duration: 30 * time.Minute},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(outageAt + 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	wantCap := racks[0].RatedW() * 0.4
	if got := racks[0].Cap(); got != wantCap {
		t.Fatalf("mid-outage rack cap %v, want derated %v", got, wantCap)
	}
	if d.CapEvents() != 1 {
		t.Fatalf("cap events %d, want 1", d.CapEvents())
	}
	// The 90 %-dispatched racks exceed the derated cap, so enforcement
	// must have throttled them under it.
	if d.Enforcer().ThrottleEvents() == 0 {
		t.Fatal("expected throttling against the emergency cap")
	}
	// The throttle/relax loop oscillates in a narrow band around the
	// cap (relax overshoots by up to 15 % before the next pass bites),
	// so allow that band rather than an instant-exact bound.
	if flow := racks[0].Evaluate(); flow.OutW > wantCap*1.15 {
		t.Fatalf("rack draw %v not pulled toward emergency cap %v", flow.OutW, wantCap)
	}
	if err := e.Run(outageAt + 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := racks[0].Cap(); got != savedCap {
		t.Fatalf("post-outage rack cap %v, want restored %v", got, savedCap)
	}
	for i, s := range dc.Fleet().Servers() {
		if s.State() != server.StateActive {
			continue
		}
		cfg := s.Config()
		nominal := cfg.Capacity * cfg.PStates[s.PStateIndex()].Freq
		if s.AvailableCapacity() < nominal*0.999 {
			t.Fatalf("server %d still throttled after cap release", i)
		}
	}
}

func TestDegraderSurvivalShedOnDepletion(t *testing.T) {
	e, dc, d, in, u := degraderFixture(t, 1) // generator never starts
	outageAt := e.Now() + time.Hour
	if err := in.Arm([]fault.Event{
		{Kind: fault.UtilityOutage, At: outageAt, Duration: time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(outageAt + 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if u.UnservedJ() <= 0 {
		t.Fatal("five-minute store must deplete in a one-hour outage with no generator")
	}
	if d.SurvivalSheds() != 1 {
		t.Fatalf("survival sheds %d, want 1", d.SurvivalSheds())
	}
	// 10 % survival fraction of 8 servers = 1 committed server.
	if on := dc.Fleet().OnCount(); on != 1 {
		t.Fatalf("post-depletion committed count %d, want 1", on)
	}
	if d.ShedServers() == 0 {
		t.Fatal("shed servers not counted")
	}
}

func TestDegraderThermalLadder(t *testing.T) {
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, smallDCConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Attach only the room physics — no server↔room coupling, so the
	// ladder (not thermal trips) is the only actor.
	dc.Room().Attach(e)
	dc.Fleet().SetTarget(dc.Fleet().Size())
	if err := e.Run(testServerConfig().BootDelay + time.Second); err != nil {
		t.Fatal(err)
	}
	dc.Fleet().Dispatch(e.Now(), 0.8*float64(dc.Fleet().Size())*testServerConfig().Capacity)
	d, err := NewDegrader(e, dc, DegraderConfig{CheckPeriod: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()

	// Fail the (only) CRAC under heavy heat: the room ramps and the
	// ladder must walk DVFS-down → consolidate → zone shed.
	if err := dc.Room().SetUnitFailed(0, true); err != nil {
		t.Fatal(err)
	}
	if err := dc.Room().SetZoneHeat(0, 30_000); err != nil {
		t.Fatal(err)
	}
	if err := dc.Room().SetZoneHeat(1, 25_000); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(e.Now() + 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	if d.LadderStage() != 3 {
		t.Fatalf("ladder stage %d under sustained overheat, want 3", d.LadderStage())
	}
	if d.DVFSDowns() != 1 || d.Consolidations() != 1 || d.ZoneSheds() != 1 {
		t.Fatalf("ladder actions dvfs=%d consolidate=%d zone=%d, want 1 each",
			d.DVFSDowns(), d.Consolidations(), d.ZoneSheds())
	}
	if d.ShedServers() == 0 {
		t.Fatal("ladder shed no servers")
	}
	// Zone 0 leans hardest on the failed CRAC (sensitivity 0.85 vs
	// 0.80): its servers must be the ones powered off by stage 3.
	for _, i := range dc.ServersInZone(0) {
		if st := dc.Fleet().Servers()[i].State(); st == server.StateActive {
			t.Fatalf("zone-0 server %d still active after zone shed", i)
		}
	}

	// Repair and cool: the ladder must release and restore the fast
	// DVFS point.
	if err := dc.Room().SetUnitFailed(0, false); err != nil {
		t.Fatal(err)
	}
	for z := 0; z < dc.Room().Zones(); z++ {
		if err := dc.Room().SetZoneHeat(z, 100); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(e.Now() + 6*time.Hour); err != nil {
		t.Fatal(err)
	}
	if d.LadderStage() != 0 {
		t.Fatalf("ladder stage %d after recovery, want 0", d.LadderStage())
	}
	for i, s := range dc.Fleet().Servers() {
		if s.State() == server.StateActive && s.PStateIndex() != 0 {
			t.Fatalf("server %d left at p-state %d after recovery", i, s.PStateIndex())
		}
	}
}

func TestDegraderConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, smallDCConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []DegraderConfig{
		{ShedInletC: 25, RecoverInletC: 30},
		{ConsolidateFrac: 1.5},
		{EmergencyCapFrac: -0.2},
		{SurvivalFrac: 2},
	}
	for i, cfg := range bad {
		if _, err := NewDegrader(e, dc, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTelemetryGuard(t *testing.T) {
	if _, err := NewTelemetryGuard(0); err == nil {
		t.Error("maxDark 0 accepted")
	}
	g, err := NewTelemetryGuard(2)
	if err != nil {
		t.Fatal(err)
	}
	// Dark before any good round: nothing to fall back on.
	m, degraded := g.Observe(nil, false)
	if m != nil || degraded {
		t.Fatalf("first dark round: map %v degraded %v", m, degraded)
	}
	good := []float64{21, 22}
	m, degraded = g.Observe(good, true)
	if degraded || m[0] != 21 {
		t.Fatal("good round mishandled")
	}
	// Two dark rounds: last-good replayed, degraded on the second.
	m, degraded = g.Observe(nil, false)
	if degraded || m == nil || m[1] != 22 {
		t.Fatalf("dark round 1: map %v degraded %v", m, degraded)
	}
	m, degraded = g.Observe(nil, false)
	if !degraded || m[1] != 22 {
		t.Fatalf("dark round 2: map %v degraded %v", m, degraded)
	}
	if g.DarkRounds() != 2 || g.Fallbacks() != 3 {
		t.Fatalf("dark %d fallbacks %d", g.DarkRounds(), g.Fallbacks())
	}
	// Recovery resets the dark counter and the guard must not alias the
	// caller's slice.
	good2 := []float64{25, 26}
	g.Observe(good2, true)
	good2[0] = 99
	m, _ = g.Observe(nil, false)
	if m[0] != 25 {
		t.Fatalf("guard aliased caller slice: %v", m)
	}
	if g.DarkRounds() != 1 {
		t.Fatalf("dark rounds %d after recovery+1, want 1", g.DarkRounds())
	}
}
