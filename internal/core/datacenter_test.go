package core

import (
	"testing"
	"time"

	"repro/internal/cooling"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// smallDCConfig builds a 2-rack, 2-zone facility with 4 servers per rack.
func smallDCConfig() DataCenterConfig {
	room := cooling.RoomConfig{
		Zones:       []cooling.ZoneConfig{cooling.DefaultZone("za"), cooling.DefaultZone("zb")},
		CRACs:       []cooling.CRACConfig{cooling.DefaultCRAC("c1")},
		Sensitivity: [][]float64{{0.85}, {0.80}},
		PhysicsTick: cooling.DefaultPhysicsTick,
	}
	// Size the plant to the tiny 8-server facility: fans at ~15 % of
	// the ~2.4 kW IT load.
	plant := cooling.DefaultPlantConfig()
	plant.FanRatedW = 350
	return DataCenterConfig{
		Name:           "dc-test",
		ServerConfig:   testServerConfig(),
		ServersPerRack: 4,
		Topology: power.TopologyConfig{
			UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: 2,
			RackRatedW: 2_000, Oversubscription: 1,
		},
		Room:        room,
		ZoneOfRack:  []int{0, 1},
		Plant:       plant,
		SampleEvery: 15 * time.Second,
	}
}

func TestNewDataCenterValidation(t *testing.T) {
	e := sim.NewEngine(1)
	tests := []struct {
		name   string
		mutate func(*DataCenterConfig)
	}{
		{"zero servers per rack", func(c *DataCenterConfig) { c.ServersPerRack = 0 }},
		{"bad topology", func(c *DataCenterConfig) { c.Topology.UPSCount = 0 }},
		{"bad room", func(c *DataCenterConfig) { c.Room.Zones = nil }},
		{"bad plant", func(c *DataCenterConfig) { c.Plant.COPNominal = 0 }},
		{"zone map wrong length", func(c *DataCenterConfig) { c.ZoneOfRack = []int{0} }},
		{"zone map out of range", func(c *DataCenterConfig) { c.ZoneOfRack = []int{0, 9} }},
		{"negative sampling", func(c *DataCenterConfig) { c.SampleEvery = -time.Second }},
		{"bad server config", func(c *DataCenterConfig) { c.ServerConfig.PeakPower = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallDCConfig()
			tt.mutate(&cfg)
			if _, err := NewDataCenter(e, cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestDataCenterAssembly(t *testing.T) {
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, smallDCConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dc.Fleet().Size() != 8 {
		t.Errorf("fleet size = %d, want 8", dc.Fleet().Size())
	}
	// Servers 0–3 in rack 0 / zone 0; 4–7 in rack 1 / zone 1.
	if dc.ZoneOfServer(0) != 0 || dc.ZoneOfServer(7) != 1 {
		t.Errorf("zone mapping wrong: %d, %d", dc.ZoneOfServer(0), dc.ZoneOfServer(7))
	}
	if got := dc.ServersInZone(0); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("ServersInZone(0) = %v", got)
	}
	if dc.Store() == nil {
		t.Error("telemetry store missing despite sampling enabled")
	}
}

func TestDataCenterPowerFlowTracksFleet(t *testing.T) {
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, smallDCConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All off: no critical power.
	flow := dc.Flow()
	if flow.CriticalPower() != 0 {
		t.Errorf("off facility critical power = %v", flow.CriticalPower())
	}
	// Boot four servers; critical power = 4 × idle.
	dc.Fleet().SetTarget(4)
	if err := e.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	dc.Fleet().Sync(e.Now())
	flow = dc.Flow()
	cfg := testServerConfig()
	want := 4 * cfg.PeakPower * cfg.IdleFraction
	if diff := flow.CriticalPower() - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("critical power = %v, want %v", flow.CriticalPower(), want)
	}
	if flow.InW <= flow.CriticalPower() {
		t.Error("no distribution losses in flow")
	}
	if dc.ITPowerW() != dc.Fleet().PowerW() {
		t.Error("ITPowerW inconsistent with fleet")
	}
}

func TestDataCenterAttachCouplesHeatAndTelemetry(t *testing.T) {
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, smallDCConfig())
	if err != nil {
		t.Fatal(err)
	}
	cancel, err := dc.Attach()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Attach(); err == nil {
		t.Error("double attach should error")
	}
	dc.Fleet().SetTarget(8)
	now := time.Duration(0)
	if err := e.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	now = e.Now()
	dc.Fleet().Dispatch(now, 6_000) // hot fleet
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	// Heat reached the room.
	if dc.Room().CoolingLoadW() <= 0 {
		t.Error("room saw no heat from the fleet")
	}
	// Telemetry collected per-server and per-zone series.
	keys := dc.Store().Keys()
	if len(keys) != 8*2+2 {
		t.Errorf("telemetry keys = %d, want 18", len(keys))
	}
	bs, err := dc.Store().Query("srv0000/power", 0, 1<<62, telemetry.ResMinute)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) == 0 {
		t.Error("no power samples collected")
	}
	// PUE is sane for a loaded facility.
	pue, plant, err := dc.PUEAt(20, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if pue < 1.05 || pue > 3 {
		t.Errorf("PUE = %v out of plausible range", pue)
	}
	if plant.TotalW() <= 0 {
		t.Error("plant drew no power under load")
	}
	cancel()
}

func TestDataCenterThermalProtection(t *testing.T) {
	// Cripple the cooling: starve the zones of tile airflow and make
	// them recirculate their own exhaust (sensitivity 0.1 → 90 %%
	// recirculation). A loaded fleet must trip its protective sensors
	// rather than cook.
	cfg := smallDCConfig()
	for i := range cfg.Room.Zones {
		cfg.Room.Zones[i].Airflow = 0.2
	}
	cfg.Room.Sensitivity = [][]float64{{0.1}, {0.1}}
	cfg.SampleEvery = 0
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Store() != nil {
		t.Error("store created despite sampling disabled")
	}
	if _, err := dc.Attach(); err != nil {
		t.Fatal(err)
	}
	dc.Fleet().SetTarget(8)
	if err := e.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	dc.Fleet().Dispatch(e.Now(), 8_000)
	if err := e.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if dc.Trips() == 0 {
		t.Error("no thermal trips despite crippled cooling under full load")
	}
	if dc.Fleet().Trips() != dc.Trips() {
		t.Errorf("trip accounting mismatch: %d vs %d", dc.Fleet().Trips(), dc.Trips())
	}
}

func TestPreferCoolingSensitiveZones(t *testing.T) {
	// Zone 1 is better coupled than zone 0; preferring sensitive zones
	// must activate zone-1 servers first.
	cfg := smallDCConfig()
	cfg.Room.Sensitivity = [][]float64{{0.40}, {0.90}}
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.PreferCoolingSensitiveZones(); err != nil {
		t.Fatal(err)
	}
	// Mapping stayed consistent after the reorder.
	for i := range dc.Fleet().Servers() {
		if i < 4 && dc.ZoneOfServer(i) != 1 {
			t.Fatalf("server %d zone = %d, want 1 (sensitive first)", i, dc.ZoneOfServer(i))
		}
		if i >= 4 && dc.ZoneOfServer(i) != 0 {
			t.Fatalf("server %d zone = %d, want 0", i, dc.ZoneOfServer(i))
		}
	}
	dc.Fleet().SetTarget(4)
	if err := e.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	dc.Fleet().Sync(e.Now())
	// All active servers sit in the sensitive zone.
	for i, s := range dc.Fleet().Servers() {
		active := s.State().String() == "active"
		if active && dc.ZoneOfServer(i) != 1 {
			t.Errorf("active server %d in zone %d, want sensitive zone 1", i, dc.ZoneOfServer(i))
		}
	}
}

func TestFleetReorderValidation(t *testing.T) {
	e := sim.NewEngine(1)
	f, err := NewFleet(e, testServerConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reorder([]int{0, 1}); err == nil {
		t.Error("short permutation should error")
	}
	if err := f.Reorder([]int{0, 0, 1}); err == nil {
		t.Error("duplicate entry should error")
	}
	if err := f.Reorder([]int{0, 1, 5}); err == nil {
		t.Error("out-of-range entry should error")
	}
	names := []string{f.Servers()[0].Name(), f.Servers()[1].Name(), f.Servers()[2].Name()}
	if err := f.Reorder([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if f.Servers()[0].Name() != names[2] || f.Servers()[1].Name() != names[0] {
		t.Error("reorder did not permute as requested")
	}
}
