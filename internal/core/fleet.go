// Package core implements the paper's primary contribution: the
// macro-resource management (MRM) layer of Figure 4. It assembles the
// substrates — servers, the power-distribution tree, the cooling room and
// plant, telemetry — into a data center; runs coordination policies that
// jointly decide server on/off state, DVFS operating points, load
// dispatch, power caps, and cooling-aware activation; and exposes both
// the coordinated policies the paper calls for and the oblivious
// compositions it warns against (§5.1), so the difference is measurable.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fleet manages an ordered set of servers as one elastic pool: power
// servers up or down to a target count, dispatch offered load over the
// active ones, and report aggregate capacity and power.
type Fleet struct {
	servers []*server.Server
	engine  *sim.Engine
	// switchOns counts power-on transitions (oscillation diagnostic).
	switchOns  int
	switchOffs int
}

// NewFleet builds a fleet of n servers from cfg, all initially off.
// Names are suffixed with the index.
func NewFleet(e *sim.Engine, cfg server.Config, n int) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: fleet size %d must be positive", n)
	}
	f := &Fleet{engine: e, servers: make([]*server.Server, 0, n)}
	for i := 0; i < n; i++ {
		c := cfg
		c.Name = fmt.Sprintf("%s-%03d", cfg.Name, i)
		s, err := server.New(c)
		if err != nil {
			return nil, err
		}
		f.servers = append(f.servers, s)
	}
	e.Register(f)
	return f, nil
}

// Servers exposes the underlying servers (shared slice: do not mutate).
func (f *Fleet) Servers() []*server.Server { return f.servers }

// Size reports the total fleet size.
func (f *Fleet) Size() int { return len(f.servers) }

// OnCount reports servers that are active or booting (committed to be
// on).
func (f *Fleet) OnCount() int {
	n := 0
	for _, s := range f.servers {
		if st := s.State(); st == server.StateActive || st == server.StateBooting {
			n++
		}
	}
	return n
}

// ActiveCount reports fully-booted servers.
func (f *Fleet) ActiveCount() int {
	n := 0
	for _, s := range f.servers {
		if s.State() == server.StateActive {
			n++
		}
	}
	return n
}

// Switches reports cumulative power-on and power-off transitions.
func (f *Fleet) Switches() (ons, offs int) { return f.switchOns, f.switchOffs }

// SetTarget powers servers on or off so that the committed count matches
// target (clamped to [0, Size]). Servers are activated in slice order and
// deactivated from the tail, so a caller that orders servers by
// preference (e.g. CRAC-sensitive zones first, §5.1) gets cooling-aware
// activation for free.
func (f *Fleet) SetTarget(target int) {
	if target < 0 {
		target = 0
	}
	if target > len(f.servers) {
		target = len(f.servers)
	}
	on := f.OnCount()
	if on < target {
		for _, s := range f.servers {
			if on == target {
				break
			}
			if s.State() == server.StateOff {
				s.PowerOn(f.engine)
				f.switchOns++
				on++
			}
		}
		return
	}
	if on > target {
		// Shed booting servers as well as active ones: OnCount counts
		// both, so skipping Booting here would leave the committed count
		// above target until the boot completes — or forever, if the
		// target stays low (the server boots to Active with no further
		// SetTarget call to reconcile it).
		for i := len(f.servers) - 1; i >= 0 && on > target; i-- {
			s := f.servers[i]
			if st := s.State(); st == server.StateActive || st == server.StateBooting {
				s.PowerOff(f.engine)
				f.switchOffs++
				on--
			}
		}
	}
}

// Reorder permutes the fleet's activation order: perm[i] is the index of
// the server that should occupy position i. SetTarget activates from the
// front and deactivates from the back, so callers encode activation
// preference (e.g. CRAC-sensitive zones first) by reordering.
func (f *Fleet) Reorder(perm []int) error {
	if len(perm) != len(f.servers) {
		return fmt.Errorf("core: permutation length %d != fleet size %d", len(perm), len(f.servers))
	}
	seen := make([]bool, len(perm))
	next := make([]*server.Server, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("core: invalid permutation entry %d at %d", p, i)
		}
		seen[p] = true
		next[i] = f.servers[p]
	}
	f.servers = next
	return nil
}

// Sync advances every server's energy accounting to now.
func (f *Fleet) Sync(now time.Duration) {
	for _, s := range f.servers {
		s.Sync(now)
	}
}

// SetPStateAll moves every server to the given DVFS index.
func (f *Fleet) SetPStateAll(now time.Duration, idx int) error {
	for _, s := range f.servers {
		if err := s.SetPState(now, idx); err != nil {
			return err
		}
	}
	return nil
}

// Capacities returns each server's currently available capacity
// (zero for servers that are off or booting).
func (f *Fleet) Capacities() []float64 {
	caps := make([]float64, len(f.servers))
	for i, s := range f.servers {
		caps[i] = s.AvailableCapacity()
	}
	return caps
}

// Dispatch spreads offered load over the active servers and applies the
// resulting utilizations. It returns the dispatch (including dropped
// load) and the highest per-server utilization.
func (f *Fleet) Dispatch(now time.Duration, offered float64) (workload.Dispatch, float64) {
	d := workload.SpreadLoad(offered, f.Capacities())
	var maxU float64
	for i, s := range f.servers {
		s.SetUtilization(now, d.Utilizations[i])
		maxU = math.Max(maxU, d.Utilizations[i])
	}
	return d, maxU
}

// PowerW reports the instantaneous total fleet draw.
func (f *Fleet) PowerW() float64 {
	var total float64
	for _, s := range f.servers {
		total += s.Power()
	}
	return total
}

// EnergyJ reports the cumulative fleet energy through the last Sync.
func (f *Fleet) EnergyJ() float64 {
	var total float64
	for _, s := range f.servers {
		total += s.EnergyJ()
	}
	return total
}

// Trips reports the total protective thermal shutdowns across the fleet.
func (f *Fleet) Trips() int {
	n := 0
	for _, s := range f.servers {
		n += s.Trips()
	}
	return n
}
