// Package core implements the paper's primary contribution: the
// macro-resource management (MRM) layer of Figure 4. It assembles the
// substrates — servers, the power-distribution tree, the cooling room and
// plant, telemetry — into a data center; runs coordination policies that
// jointly decide server on/off state, DVFS operating points, load
// dispatch, power caps, and cooling-aware activation; and exposes both
// the coordinated policies the paper calls for and the oblivious
// compositions it warns against (§5.1), so the difference is measurable.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/par"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// rebaseEvery is how many MaybeRebase calls (telemetry sample rounds)
// pass between exact recomputations of the floating-point running sums.
// Incremental maintenance drifts by ~1 ulp per applied delta; rebasing at
// this cadence keeps the drift many orders of magnitude below the 1e-6
// golden-fixture tolerance while staying O(N) only once per window.
const rebaseEvery = 64

// parCutoff is the fleet size above which the sharded fold becomes the
// fleet's canonical aggregation structure. The choice is made from size
// alone — never from the worker count or pool presence — so a run's float
// results are bit-identical whether its shards execute on one goroutine
// or eight. Fleets at or below the cutoff (every golden fixture) keep the
// pre-existing serial left-fold and its exact historical bits.
const parCutoff = 1024

// Fleet manages an ordered set of servers as one elastic pool: power
// servers up or down to a target count, dispatch offered load over the
// active ones, and report aggregate capacity and power.
//
// The fleet is the single Watcher of all its servers and maintains a
// struct-of-arrays power plane: per-slot instantaneous draw plus running
// totals (power, energy, trips, on/active counts) and optional per-rack /
// per-zone sums, updated in O(1) per server transition. Aggregate
// accessors are therefore O(1) reads instead of O(N) rescans, which is
// what lets the physics tick, telemetry sample, and control loops stay
// proportional to what changed rather than fleet size.
type Fleet struct {
	servers []*server.Server
	engine  *sim.Engine
	// switchOns counts power-on transitions (oscillation diagnostic).
	switchOns  int
	switchOffs int

	// bySlot is the construction-order view of the fleet; Reorder permutes
	// only the activation order (servers), never slots, so slot-indexed
	// arrays stay valid across reorders.
	bySlot []*server.Server
	// powerW is the SoA power plane: instantaneous draw per slot, written
	// by ServerChanged on every power-affecting transition.
	powerW []float64
	// Running aggregates maintained from notification deltas.
	powerTotal  float64
	energyTotal float64
	onCount     int
	activeCount int
	tripsTotal  int
	// Optional grouping (installed by SetPowerGroups): slot→rack and
	// slot→zone with per-group running power sums. Physical placement is
	// slot-invariant, so these survive Reorder.
	rackOfSlot []int
	zoneOfSlot []int
	rackPower  []float64
	zonePower  []float64
	rebaseTick int
	// Rebase recomputation scratch (same shape as rackPower/zonePower),
	// so drift can be measured against the incremental sums before they
	// are overwritten.
	rackScratch []float64
	zoneScratch []float64
	// Pre-clamp rebase drift accounting: the clamped accessors (PowerW,
	// RackPowerW, ZonePowerW) floor ulp-scale negative drift at zero,
	// which is correct for physics but would silently absorb a real
	// accounting bug. Each Rebase therefore records how far the
	// incremental sums had wandered from the exact recompute — the
	// magnitude the clamp would otherwise mask — and VerifyAggregates
	// fails when it exceeds the tolerance a rebase window may accumulate.
	lastRebaseDriftW float64 // max |incremental − exact| at the last rebase
	maxRebaseDriftW  float64 // lifetime high-water mark of the above
	lastRebaseRefW   float64 // exact total power at the last rebase (drift scale)
	// Dispatch scratch, reused across calls (engine is single-threaded).
	capsBuf []float64
	utilBuf []float64

	// Sharded-fold machinery, armed by NewFleet when the fleet exceeds
	// parCutoff (nil otherwise). shards partitions activation positions
	// [0, n) purely by size; slotOfPos maps activation position → slot
	// (identity until Reorder); dispatchShard maps slot → the shard owning
	// its activation position, so notification deltas raised inside a
	// parallel dispatch phase land in that shard's accumulator.
	shards        []par.Range
	slotOfPos     []int32
	dispatchShard []int32
	// routeShard is non-nil only inside a shard phase (beginShardPhase /
	// endShardPhase); while set, ServerChanged folds deltas into
	// acc[routeShard[slot]] instead of the shared running sums, which is
	// what makes concurrent per-shard server mutation race-free.
	routeShard []int32
	// acc is one padded accumulator per possible shard; accRack/accZone
	// are the matching per-shard rack/zone power-delta slabs (allocated
	// with SetPowerGroups). All routed fields are zero outside phases —
	// endShardPhase merges them into the running sums in shard order and
	// re-zeroes, and VerifyAggregates asserts the invariant.
	acc     []shardAcc
	accRack [][]float64
	accZone [][]float64
	// pool executes shard fan-outs; nil runs them inline (workers=1).
	pool *par.Pool
	// rebases counts exact Rebase recomputations, so tests can pin the
	// once-per-sample-round scheduling under parallel sampling.
	rebases int
}

// shardAcc collects one shard's aggregate deltas during a parallel phase.
// Padded to two cache lines so adjacent shards' accumulators never share
// a line (they are written concurrently by different workers).
type shardAcc struct {
	power, energy float64
	capSum, maxU  float64
	on, active    int64
	trips         int64
	groupDirty    bool
	_             [71]byte
}

// NewFleet builds a fleet of n servers from cfg, all initially off.
// Names are suffixed with the index.
func NewFleet(e *sim.Engine, cfg server.Config, n int) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: fleet size %d must be positive", n)
	}
	f := &Fleet{
		engine:  e,
		servers: make([]*server.Server, 0, n),
		powerW:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		c := cfg
		c.Name = fmt.Sprintf("%s-%03d", cfg.Name, i)
		s, err := server.New(c)
		if err != nil {
			return nil, err
		}
		f.servers = append(f.servers, s)
		s.Watch(i, f)
	}
	f.bySlot = append([]*server.Server(nil), f.servers...)
	f.capsBuf = par.AlignedFloats(n)
	f.utilBuf = par.AlignedFloats(n)
	if n > parCutoff {
		f.shards = par.Shards(n)
		f.slotOfPos = make([]int32, n)
		for i := range f.slotOfPos {
			f.slotOfPos[i] = int32(i)
		}
		f.dispatchShard = make([]int32, n)
		f.acc = make([]shardAcc, par.MaxShards)
		f.rebuildDispatchShards()
	}
	e.Register(f)
	return f, nil
}

// SetParallel installs the worker pool that executes the fleet's shard
// fan-outs. A nil pool (or a fleet at or below parCutoff) runs them
// inline on the calling goroutine; the produced bits are identical either
// way, because shard structure never depends on the pool.
func (f *Fleet) SetParallel(p *par.Pool) { f.pool = p }

// Pool returns the installed worker pool (nil means inline execution).
func (f *Fleet) Pool() *par.Pool { return f.pool }

// rebuildDispatchShards refreshes the slot → dispatch-shard map from the
// current activation order. Called whenever slotOfPos changes (NewFleet,
// Reorder).
func (f *Fleet) rebuildDispatchShards() {
	for sh, r := range f.shards {
		for i := r.Lo; i < r.Hi; i++ {
			f.dispatchShard[f.slotOfPos[i]] = int32(sh)
		}
	}
}

// ServerChanged implements server.Watcher: it folds one server's
// transition delta into the SoA plane and the running aggregates. Inside
// a shard phase the delta is routed to the owning shard's accumulator
// instead, so concurrent shards never touch the shared sums.
func (f *Fleet) ServerChanged(slot int, c server.Change) {
	if f.routeShard != nil {
		f.serverChangedRouted(slot, c)
		return
	}
	f.powerW[slot] = c.NewPowerW
	d := c.NewPowerW - c.OldPowerW
	f.powerTotal += d
	f.energyTotal += c.EnergyDeltaJ
	f.tripsTotal += c.TripDelta
	if c.NewState != c.OldState {
		if c.OldState == server.StateActive || c.OldState == server.StateBooting {
			f.onCount--
		}
		if c.NewState == server.StateActive || c.NewState == server.StateBooting {
			f.onCount++
		}
		if c.OldState == server.StateActive {
			f.activeCount--
		}
		if c.NewState == server.StateActive {
			f.activeCount++
		}
	}
	if f.rackOfSlot != nil && d != 0 {
		f.rackPower[f.rackOfSlot[slot]] += d
		f.zonePower[f.zoneOfSlot[slot]] += d
	}
}

// serverChangedRouted is the shard-phase variant of ServerChanged: the
// per-slot plane write stays (each slot is owned by exactly one shard),
// every scalar delta goes into the shard's private accumulator, and the
// rack/zone deltas into its private slabs. Merging back happens once, in
// shard order, at endShardPhase.
func (f *Fleet) serverChangedRouted(slot int, c server.Change) {
	f.powerW[slot] = c.NewPowerW
	sh := f.routeShard[slot]
	a := &f.acc[sh]
	d := c.NewPowerW - c.OldPowerW
	a.power += d
	a.energy += c.EnergyDeltaJ
	a.trips += int64(c.TripDelta)
	if c.NewState != c.OldState {
		if c.OldState == server.StateActive || c.OldState == server.StateBooting {
			a.on--
		}
		if c.NewState == server.StateActive || c.NewState == server.StateBooting {
			a.on++
		}
		if c.OldState == server.StateActive {
			a.active--
		}
		if c.NewState == server.StateActive {
			a.active++
		}
	}
	if f.rackOfSlot != nil && d != 0 {
		f.accRack[sh][f.rackOfSlot[slot]] += d
		f.accZone[sh][f.zoneOfSlot[slot]] += d
		a.groupDirty = true
	}
}

// beginShardPhase arms delta routing for a parallel phase: route maps
// slot → accumulator shard for every slot that may notify during the
// phase. The caller must end the phase (endShardPhase) on the same
// goroutine before any aggregate read or serial mutation.
func (f *Fleet) beginShardPhase(route []int32) {
	if f.routeShard != nil {
		panic("core: nested shard phase")
	}
	f.routeShard = route
}

// endShardPhase disarms routing and merges every shard's accumulated
// deltas into the running sums in ascending shard order — the fixed
// reduction order that keeps the float results independent of which
// worker executed which shard. Accumulators are re-zeroed, restoring the
// all-zero-outside-phases invariant.
func (f *Fleet) endShardPhase() {
	f.routeShard = nil
	for sh := range f.acc {
		a := &f.acc[sh]
		f.powerTotal += a.power
		f.energyTotal += a.energy
		f.onCount += int(a.on)
		f.activeCount += int(a.active)
		f.tripsTotal += int(a.trips)
		a.power, a.energy = 0, 0
		a.on, a.active, a.trips = 0, 0, 0
		if a.groupDirty {
			ar, az := f.accRack[sh], f.accZone[sh]
			for r, d := range ar {
				if d != 0 {
					f.rackPower[r] += d
					ar[r] = 0
				}
			}
			for z, d := range az {
				if d != 0 {
					f.zonePower[z] += d
					az[z] = 0
				}
			}
			a.groupDirty = false
		}
	}
}

// SetPowerGroups installs slot→rack and slot→zone maps and starts
// maintaining per-group power sums. Call it before any Reorder, while
// slot order and activation order still coincide; the maps are copied and
// keyed by slot, so they remain correct afterwards (a server's physical
// rack and zone never change).
func (f *Fleet) SetPowerGroups(rackOf, zoneOf []int, nRacks, nZones int) error {
	if len(rackOf) != len(f.bySlot) || len(zoneOf) != len(f.bySlot) {
		return fmt.Errorf("core: power groups sized %d/%d for fleet of %d",
			len(rackOf), len(zoneOf), len(f.bySlot))
	}
	for i := range rackOf {
		if rackOf[i] < 0 || rackOf[i] >= nRacks {
			return fmt.Errorf("core: slot %d mapped to invalid rack %d", i, rackOf[i])
		}
		if zoneOf[i] < 0 || zoneOf[i] >= nZones {
			return fmt.Errorf("core: slot %d mapped to invalid zone %d", i, zoneOf[i])
		}
	}
	f.rackOfSlot = append([]int(nil), rackOf...)
	f.zoneOfSlot = append([]int(nil), zoneOf...)
	f.rackPower = make([]float64, nRacks)
	f.zonePower = make([]float64, nZones)
	f.rackScratch = make([]float64, nRacks)
	f.zoneScratch = make([]float64, nZones)
	if f.shards != nil {
		f.accRack = make([][]float64, par.MaxShards)
		f.accZone = make([][]float64, par.MaxShards)
		for sh := range f.accRack {
			// Separately allocated aligned slabs: no two shards' group
			// deltas ever share a cache line.
			f.accRack[sh] = par.AlignedFloats(nRacks)
			f.accZone[sh] = par.AlignedFloats(nZones)
		}
	}
	// Populate the just-installed (zeroed) group sums without measuring
	// drift: they have no incremental history yet, so the gap to the
	// exact sums is installation, not drift.
	f.rebase(false)
	return nil
}

// RackPowerW reports the instantaneous draw of physical rack r
// (requires SetPowerGroups). Clamped at zero: incremental maintenance
// can leave an all-off group a few ulps below it.
func (f *Fleet) RackPowerW(r int) float64 { return clampNonNeg(f.rackPower[r]) }

// ZonePowerW reports the instantaneous draw dissipating into cooling
// zone z (requires SetPowerGroups). Clamped at zero like RackPowerW.
func (f *Fleet) ZonePowerW(z int) float64 { return clampNonNeg(f.zonePower[z]) }

// clampNonNeg floors a maintained power sum at zero. Power is
// physically non-negative; drift between rebases can undershoot by ulps.
func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// Rebase recomputes the floating-point running sums (total, per-rack and
// per-zone power, total energy) exactly from the per-slot plane,
// discarding accumulated incremental rounding drift. Counters (on,
// active, trips) are deliberately left incremental so a missed
// notification stays detectable by VerifyAggregates. The magnitude of
// the discarded power drift is recorded (see RebaseDrift) rather than
// silently absorbed.
func (f *Fleet) Rebase() { f.rebase(true) }

// rebase is Rebase with drift measurement optional: SetPowerGroups
// skips it for the very first recompute over freshly zeroed group sums.
func (f *Fleet) rebase(measure bool) {
	if f.routeShard != nil {
		panic("core: rebase during a shard phase")
	}
	f.rebases++
	var pw, en float64
	for r := range f.rackScratch {
		f.rackScratch[r] = 0
	}
	for z := range f.zoneScratch {
		f.zoneScratch[z] = 0
	}
	for i, s := range f.bySlot {
		p := f.powerW[i]
		pw += p
		en += s.EnergyJ()
		if f.rackOfSlot != nil {
			f.rackScratch[f.rackOfSlot[i]] += p
			f.zoneScratch[f.zoneOfSlot[i]] += p
		}
	}
	if measure {
		drift := math.Abs(f.powerTotal - pw)
		for r := range f.rackScratch {
			drift = math.Max(drift, math.Abs(f.rackPower[r]-f.rackScratch[r]))
		}
		for z := range f.zoneScratch {
			drift = math.Max(drift, math.Abs(f.zonePower[z]-f.zoneScratch[z]))
		}
		f.lastRebaseDriftW = drift
		f.lastRebaseRefW = math.Abs(pw)
		if drift > f.maxRebaseDriftW {
			f.maxRebaseDriftW = drift
		}
	}
	copy(f.rackPower, f.rackScratch)
	copy(f.zonePower, f.zoneScratch)
	f.powerTotal = pw
	f.energyTotal = en
}

// RebaseDrift reports the pre-clamp power drift the incremental sums
// had accumulated when they were last rebased (lastW) and the largest
// such drift seen over the fleet's lifetime (maxW). Live exporters
// publish these as gauges so accounting decay is observable instead of
// being floored away by the non-negative clamps.
func (f *Fleet) RebaseDrift() (lastW, maxW float64) {
	return f.lastRebaseDriftW, f.maxRebaseDriftW
}

// MaybeRebase counts one sample boundary and rebases every rebaseEvery-th
// call, amortizing the exact O(N) recompute over the sampling cadence.
// It must be called exactly once per sample round, from serial code —
// never from inside a shard fan-out, where it would count once per shard
// and mutate the running sums concurrently. The rebase guard enforces
// the phase half of that contract; Rebases lets tests pin the cadence.
func (f *Fleet) MaybeRebase() {
	if f.routeShard != nil {
		panic("core: MaybeRebase during a shard phase")
	}
	f.rebaseTick++
	if f.rebaseTick >= rebaseEvery {
		f.rebaseTick = 0
		f.Rebase()
	}
}

// Rebases reports how many exact rebase recomputations have run over the
// fleet's lifetime (including the SetPowerGroups installation pass and
// explicit Rebase/Sync calls).
func (f *Fleet) Rebases() int { return f.rebases }

// VerifyAggregates cross-validates the maintained aggregates against a
// fresh full scan: counters and the per-slot plane must match exactly,
// floating-point running sums within the drift a rebase window can
// accumulate. A failure means a mutation path skipped its notification
// (or drift escaped the rebase policy) and is reported loudly by the
// invariant checker.
func (f *Fleet) VerifyAggregates() error {
	const (
		relTol = 1e-7
		absTol = 1e-6
	)
	// Recorded rebase drift must stay within the tolerance one rebase
	// window can legitimately accumulate. Without this check, drift
	// beyond tolerance would be discarded at the very Rebase that could
	// have revealed it — and the non-negative clamps on the power
	// accessors would keep masking the symptom in between.
	if f.lastRebaseDriftW > relTol*f.lastRebaseRefW+absTol {
		return fmt.Errorf("core: rebase discarded %v W of drift (exact total %v W), beyond tolerance",
			f.lastRebaseDriftW, f.lastRebaseRefW)
	}
	on, active, trips := 0, 0, 0
	var pw, en float64
	for i, s := range f.bySlot {
		switch s.State() {
		case server.StateActive:
			on++
			active++
		case server.StateBooting:
			on++
		}
		trips += s.Trips()
		p := s.Power()
		if p != f.powerW[i] {
			return fmt.Errorf("core: slot %d power plane %v != server power %v", i, f.powerW[i], p)
		}
		pw += p
		en += s.EnergyJ()
	}
	if on != f.onCount {
		return fmt.Errorf("core: maintained on count %d != scan %d", f.onCount, on)
	}
	if active != f.activeCount {
		return fmt.Errorf("core: maintained active count %d != scan %d", f.activeCount, active)
	}
	if trips != f.tripsTotal {
		return fmt.Errorf("core: maintained trips %d != scan %d", f.tripsTotal, trips)
	}
	if !withinTol(f.powerTotal, pw, relTol, absTol) {
		return fmt.Errorf("core: maintained power %v W != scan %v W", f.powerTotal, pw)
	}
	if !withinTol(f.energyTotal, en, relTol, absTol) {
		return fmt.Errorf("core: maintained energy %v J != scan %v J", f.energyTotal, en)
	}
	if f.rackOfSlot != nil {
		rp := make([]float64, len(f.rackPower))
		zp := make([]float64, len(f.zonePower))
		for i := range f.bySlot {
			rp[f.rackOfSlot[i]] += f.powerW[i]
			zp[f.zoneOfSlot[i]] += f.powerW[i]
		}
		for r := range rp {
			if !withinTol(f.rackPower[r], rp[r], relTol, absTol) {
				return fmt.Errorf("core: maintained rack %d power %v W != scan %v W", r, f.rackPower[r], rp[r])
			}
		}
		for z := range zp {
			if !withinTol(f.zonePower[z], zp[z], relTol, absTol) {
				return fmt.Errorf("core: maintained zone %d power %v W != scan %v W", z, f.zonePower[z], zp[z])
			}
		}
	}
	if f.shards != nil {
		if err := f.verifyShardedFold(relTol, absTol); err != nil {
			return err
		}
	}
	return nil
}

// verifyShardedFold cross-checks the maintained sums against the sharded
// reduction — a per-shard partial fold over the power plane merged in
// shard order, exactly the grouping parallel phases produce — and
// asserts the phase invariants: no phase in flight, every accumulator
// zeroed, and the shard partition still tiling the fleet.
func (f *Fleet) verifyShardedFold(relTol, absTol float64) error {
	if f.routeShard != nil {
		return fmt.Errorf("core: aggregate verification during a shard phase")
	}
	for sh := range f.acc {
		a := &f.acc[sh]
		if a.power != 0 || a.energy != 0 || a.on != 0 || a.active != 0 || a.trips != 0 || a.groupDirty {
			return fmt.Errorf("core: shard %d accumulator not zero outside a phase (%+v)", sh, *a)
		}
	}
	lo := 0
	var pw float64
	for _, r := range f.shards {
		if r.Lo != lo || r.Hi <= r.Lo {
			return fmt.Errorf("core: shard partition does not tile the fleet at %d", r.Lo)
		}
		lo = r.Hi
		var part float64
		for i := r.Lo; i < r.Hi; i++ {
			part += f.powerW[f.slotOfPos[i]]
		}
		pw += part
	}
	if lo != len(f.servers) {
		return fmt.Errorf("core: shard partition covers %d of %d servers", lo, len(f.servers))
	}
	if !withinTol(f.powerTotal, pw, relTol, absTol) {
		return fmt.Errorf("core: maintained power %v W != sharded fold %v W", f.powerTotal, pw)
	}
	return nil
}

// withinTol reports |a-b| <= relTol*max(|a|,|b|) + absTol.
func withinTol(a, b, relTol, absTol float64) bool {
	return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))+absTol
}

// Servers exposes the underlying servers (shared slice: do not mutate).
func (f *Fleet) Servers() []*server.Server { return f.servers }

// Size reports the total fleet size.
func (f *Fleet) Size() int { return len(f.servers) }

// OnCount reports servers that are active or booting (committed to be
// on). O(1): maintained from server notifications.
func (f *Fleet) OnCount() int { return f.onCount }

// ActiveCount reports fully-booted servers. O(1): maintained from server
// notifications.
func (f *Fleet) ActiveCount() int { return f.activeCount }

// Switches reports cumulative power-on and power-off transitions.
func (f *Fleet) Switches() (ons, offs int) { return f.switchOns, f.switchOffs }

// SetTarget powers servers on or off so that the committed count matches
// target (clamped to [0, Size]). Servers are activated in slice order and
// deactivated from the tail, so a caller that orders servers by
// preference (e.g. CRAC-sensitive zones first, §5.1) gets cooling-aware
// activation for free.
func (f *Fleet) SetTarget(target int) {
	if target < 0 {
		target = 0
	}
	if target > len(f.servers) {
		target = len(f.servers)
	}
	on := f.OnCount()
	if on < target {
		for _, s := range f.servers {
			if on == target {
				break
			}
			if s.State() == server.StateOff {
				s.PowerOn(f.engine)
				f.switchOns++
				on++
			}
		}
		return
	}
	if on > target {
		// Shed booting servers as well as active ones: OnCount counts
		// both, so skipping Booting here would leave the committed count
		// above target until the boot completes — or forever, if the
		// target stays low (the server boots to Active with no further
		// SetTarget call to reconcile it).
		for i := len(f.servers) - 1; i >= 0 && on > target; i-- {
			s := f.servers[i]
			if st := s.State(); st == server.StateActive || st == server.StateBooting {
				s.PowerOff(f.engine)
				f.switchOffs++
				on--
			}
		}
	}
}

// Reorder permutes the fleet's activation order: perm[i] is the index of
// the server that should occupy position i. SetTarget activates from the
// front and deactivates from the back, so callers encode activation
// preference (e.g. CRAC-sensitive zones first) by reordering.
func (f *Fleet) Reorder(perm []int) error {
	if len(perm) != len(f.servers) {
		return fmt.Errorf("core: permutation length %d != fleet size %d", len(perm), len(f.servers))
	}
	seen := make([]bool, len(perm))
	next := make([]*server.Server, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("core: invalid permutation entry %d at %d", p, i)
		}
		seen[p] = true
		next[i] = f.servers[p]
	}
	f.servers = next
	if f.shards != nil {
		nextSlot := make([]int32, len(perm))
		for i, p := range perm {
			nextSlot[i] = f.slotOfPos[p]
		}
		f.slotOfPos = nextSlot
		f.rebuildDispatchShards()
	}
	return nil
}

// Sync advances every server's energy accounting to now and rebases the
// running sums, so aggregate reads right after a Sync are exact.
func (f *Fleet) Sync(now time.Duration) {
	for _, s := range f.servers {
		s.Sync(now)
	}
	f.Rebase()
}

// SetPStateAll moves every server to the given DVFS index.
func (f *Fleet) SetPStateAll(now time.Duration, idx int) error {
	for _, s := range f.servers {
		if err := s.SetPState(now, idx); err != nil {
			return err
		}
	}
	return nil
}

// Capacities returns each server's currently available capacity
// (zero for servers that are off or booting).
func (f *Fleet) Capacities() []float64 {
	caps := make([]float64, len(f.servers))
	for i, s := range f.servers {
		caps[i] = s.AvailableCapacity()
	}
	return caps
}

// Dispatch spreads offered load over the active servers and applies the
// resulting utilizations. It returns the dispatch (including dropped
// load) and the highest per-server utilization. The returned dispatch's
// Utilizations slice is fleet-owned scratch, valid only until the next
// Dispatch call; copy it to retain.
func (f *Fleet) Dispatch(now time.Duration, offered float64) (workload.Dispatch, float64) {
	if f.shards != nil {
		return f.dispatchSharded(now, offered)
	}
	for i, s := range f.servers {
		f.capsBuf[i] = s.AvailableCapacity()
	}
	d := workload.SpreadLoadInto(f.utilBuf, offered, f.capsBuf)
	var maxU float64
	for i, s := range f.servers {
		s.SetUtilization(now, d.Utilizations[i])
		maxU = math.Max(maxU, d.Utilizations[i])
	}
	return d, maxU
}

// dispatchSharded is Dispatch over the sharded fold: phase A reads every
// server's available capacity into shard-partitioned scratch and folds
// per-shard capacity partials (pure reads, no routing needed); the
// spread decision is taken once from the shard-ordered total; phase B
// applies the identical fill to every shard while notification deltas
// route to per-shard accumulators. Both phases produce bits that depend
// only on the shard partition — i.e. on fleet size — so any worker count
// yields the same dispatch, the same power plane, and the same energy.
func (f *Fleet) dispatchSharded(now time.Duration, offered float64) (workload.Dispatch, float64) {
	f.pool.RunRanges(f.shards, func(sh int, r par.Range) {
		var sum float64
		for i := r.Lo; i < r.Hi; i++ {
			c := f.servers[i].AvailableCapacity()
			f.capsBuf[i] = c
			if c > 0 {
				sum += c
			}
		}
		f.acc[sh].capSum = sum
	})
	var total float64
	for sh := range f.shards {
		total += f.acc[sh].capSum
		f.acc[sh].capSum = 0
	}
	plan := workload.PlanSpread(offered, total)
	f.beginShardPhase(f.dispatchShard)
	f.pool.RunRanges(f.shards, func(sh int, r par.Range) {
		var maxU float64
		for i := r.Lo; i < r.Hi; i++ {
			var u float64
			if f.capsBuf[i] > 0 {
				u = plan.Fill
			}
			f.utilBuf[i] = u
			f.servers[i].SetUtilization(now, u)
			if u > maxU {
				maxU = u
			}
		}
		f.acc[sh].maxU = maxU
	})
	f.endShardPhase()
	var maxU float64
	for sh := range f.shards {
		if f.acc[sh].maxU > maxU {
			maxU = f.acc[sh].maxU
		}
		f.acc[sh].maxU = 0
	}
	return workload.Dispatch{Utilizations: f.utilBuf, Dropped: plan.Dropped}, maxU
}

// PowerW reports the instantaneous total fleet draw. O(1): maintained
// from server notifications, exactly rebased at sample boundaries, and
// clamped at zero like the per-group sums.
func (f *Fleet) PowerW() float64 { return clampNonNeg(f.powerTotal) }

// EnergyJ reports the cumulative fleet energy through the last Sync.
// O(1): Sync rebases, so this is the exact per-server sum at that point.
func (f *Fleet) EnergyJ() float64 { return f.energyTotal }

// Trips reports the total protective thermal shutdowns across the fleet.
// O(1): maintained from server notifications.
func (f *Fleet) Trips() int { return f.tripsTotal }
