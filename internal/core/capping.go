package core

import (
	"fmt"
	"time"

	"repro/internal/power"
	"repro/internal/server"
)

// CapEnforcer is the §3.1 safety valve that makes oversubscription safe:
// "How to protect the safety of the facility in the rare events that the
// demand exceeds the capacity?" When a rack's draw exceeds its cap, the
// enforcer throttles that rack's servers (T-states, §4.2) until the draw
// fits; when headroom returns it relaxes the throttle. Idle power cannot
// be throttled away, so a cap below the rack's idle floor stays violated
// and is reported — the signal that servers must be shut down instead.
type CapEnforcer struct {
	racks   []*power.Node
	servers [][]*server.Server
	// margin keeps the post-throttle draw this fraction under the cap
	// so noise does not immediately re-trip it.
	margin float64
	// minDuty floors the throttle (a fully stopped clock is a crash,
	// not power management).
	minDuty float64

	throttleEvents int
	relaxEvents    int
	uncappable     int
}

// NewCapEnforcer builds an enforcer over racks and the servers attached
// to each (servers[i] powers racks[i]).
func NewCapEnforcer(racks []*power.Node, servers [][]*server.Server) (*CapEnforcer, error) {
	if len(racks) == 0 || len(racks) != len(servers) {
		return nil, fmt.Errorf("core: enforcer needs matching racks/servers, got %d/%d",
			len(racks), len(servers))
	}
	return &CapEnforcer{
		racks:   racks,
		servers: servers,
		margin:  0.02,
		minDuty: 0.2,
	}, nil
}

// ThrottleEvents reports how many times racks were throttled down.
func (c *CapEnforcer) ThrottleEvents() int { return c.throttleEvents }

// RelaxEvents reports how many times throttles were relaxed.
func (c *CapEnforcer) RelaxEvents() int { return c.relaxEvents }

// Uncappable reports enforcement attempts that could not fit under the
// cap even at the minimum duty cycle (idle floor above the cap).
func (c *CapEnforcer) Uncappable() int { return c.uncappable }

// Enforce runs one enforcement pass at now and returns the number of
// racks acted on. Call it on the manager's decision period.
func (c *CapEnforcer) Enforce(now time.Duration) int {
	acted := 0
	for i, rack := range c.racks {
		capW := rack.Cap()
		if capW <= 0 {
			continue
		}
		outW := rack.OutputW()
		switch {
		case outW > capW:
			if c.throttleRack(now, i, outW, capW) {
				c.throttleEvents++
			} else {
				c.uncappable++
			}
			acted++
		case outW < capW*(1-2*c.margin):
			if c.relaxRack(now, i, outW, capW) {
				c.relaxEvents++
				acted++
			}
		}
	}
	return acted
}

// throttleRack scales the rack's dynamic power down to fit the cap.
// Reports false when even the floor duty cannot fit (idle floor too
// high).
func (c *CapEnforcer) throttleRack(now time.Duration, i int, outW, capW float64) bool {
	var idleW, dynW float64
	for _, s := range c.servers[i] {
		if s.State() != server.StateActive {
			continue
		}
		cfg := s.Config()
		idle := cfg.PeakPower * cfg.IdleFraction
		p := s.Power()
		idleW += idle
		dynW += p - idle
	}
	target := capW * (1 - c.margin)
	fit := true
	var scale float64
	switch {
	case dynW <= 0:
		scale = c.minDuty
		fit = idleW <= target
	default:
		scale = (target - idleW) / dynW
		if scale < c.minDuty {
			scale = c.minDuty
			fit = idleW+dynW*scale <= capW
		}
		if scale > 1 {
			scale = 1
		}
	}
	for _, s := range c.servers[i] {
		if s.State() != server.StateActive {
			continue
		}
		// Compose with the current duty multiplicatively so repeated
		// passes converge.
		_ = s.SetThrottle(now, clampDuty(currentDuty(s)*scale, c.minDuty))
	}
	return fit
}

// relaxRack eases throttles toward full duty while headroom lasts.
// Reports whether any server was actually relaxed.
func (c *CapEnforcer) relaxRack(now time.Duration, i int, outW, capW float64) bool {
	relaxed := false
	for _, s := range c.servers[i] {
		if s.State() != server.StateActive {
			continue
		}
		d := currentDuty(s)
		if d >= 1 {
			continue
		}
		_ = s.SetThrottle(now, clampDuty(d*1.15, c.minDuty))
		relaxed = true
	}
	return relaxed
}

// currentDuty infers the server's duty cycle from its capacity ratio.
// The server package exposes throttle only through capacity, which keeps
// the knob single-sourced; at full frequency and no parking,
// capacity/(nominal·freq) is the duty.
func currentDuty(s *server.Server) float64 {
	cfg := s.Config()
	ps := cfg.PStates[s.PStateIndex()]
	nominal := cfg.Capacity * ps.Freq
	if nominal <= 0 || s.State() != server.StateActive {
		return 1
	}
	d := s.AvailableCapacity() / nominal
	if d <= 0 {
		return 1
	}
	if d > 1 {
		d = 1
	}
	return d
}

func clampDuty(d, min float64) float64 {
	if d < min {
		return min
	}
	if d > 1 {
		return 1
	}
	return d
}
