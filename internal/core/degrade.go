package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DegraderConfig shapes the MRM layer's graceful-degradation responses
// to infrastructure faults (§2's failure realities meeting Figure 4's
// coordination problem): emergency power caps when the feed loses
// redundancy, a thermal load-shedding ladder when cooling capacity drops,
// and last-good telemetry fallback when sensors go dark.
type DegraderConfig struct {
	// CheckPeriod is the degradation control period (default 1 min).
	CheckPeriod time.Duration
	// ShedInletC engages the thermal ladder when the hottest zone inlet
	// exceeds it while CRAC capacity is reduced (default 31 °C — above
	// the ASHRAE envelope, below the protective trip).
	ShedInletC float64
	// RecoverInletC releases the ladder when the hottest inlet drops
	// below it (hysteresis; default 27 °C).
	RecoverInletC float64
	// ConsolidateFrac is the fraction of active servers the ladder's
	// consolidation stage sheds (default 0.25).
	ConsolidateFrac float64
	// EmergencyCapFrac derates each rack cap to this fraction of its
	// rating while the facility runs without feed redundancy
	// (default 0.7).
	EmergencyCapFrac float64
	// SurvivalFrac is the fleet fraction kept on when the UPS store
	// empties with no generator — shed everything else immediately
	// (default 0.1).
	SurvivalFrac float64
	// TelemetryMaxDark is how many consecutive dark telemetry rounds
	// the guard tolerates before declaring degraded control
	// (default 3).
	TelemetryMaxDark int
}

// withDefaults fills zero fields.
func (c DegraderConfig) withDefaults() DegraderConfig {
	if c.CheckPeriod <= 0 {
		c.CheckPeriod = time.Minute
	}
	if c.ShedInletC == 0 {
		c.ShedInletC = 31
	}
	if c.RecoverInletC == 0 {
		c.RecoverInletC = 27
	}
	if c.ConsolidateFrac == 0 {
		c.ConsolidateFrac = 0.25
	}
	if c.EmergencyCapFrac == 0 {
		c.EmergencyCapFrac = 0.7
	}
	if c.SurvivalFrac == 0 {
		c.SurvivalFrac = 0.1
	}
	if c.TelemetryMaxDark <= 0 {
		c.TelemetryMaxDark = 3
	}
	return c
}

// validate rejects physically inconsistent settings.
func (c DegraderConfig) validate() error {
	if c.RecoverInletC >= c.ShedInletC {
		return fmt.Errorf("core: recover threshold %v must sit below shed threshold %v",
			c.RecoverInletC, c.ShedInletC)
	}
	if c.ConsolidateFrac < 0 || c.ConsolidateFrac >= 1 {
		return fmt.Errorf("core: consolidate fraction %v out of [0,1)", c.ConsolidateFrac)
	}
	if c.EmergencyCapFrac <= 0 || c.EmergencyCapFrac > 1 {
		return fmt.Errorf("core: emergency cap fraction %v out of (0,1]", c.EmergencyCapFrac)
	}
	if c.SurvivalFrac < 0 || c.SurvivalFrac > 1 {
		return fmt.Errorf("core: survival fraction %v out of [0,1]", c.SurvivalFrac)
	}
	return nil
}

// Degrader is the graceful-degradation half of the MRM layer: it
// subscribes to fault notifications (wire with Injector.Subscribe) and
// runs a periodic degradation check, trading performance for survival
// instead of letting protection circuits trip.
type Degrader struct {
	engine *sim.Engine
	dc     *DataCenter
	cfg    DegraderConfig

	enforcer *CapEnforcer
	guard    *TelemetryGuard

	capsOn    bool
	savedCaps []float64
	ladder    int
	slowest   int // DVFS index with the lowest frequency
	fastest   int // DVFS index with the highest frequency

	// admission, when linked, mirrors the degradation state onto the
	// request-level shed ladder so infrastructure trouble is expressed
	// in users (degraded classes, rejections), not only in watts.
	admission *workload.Admission
	// retry, when linked, lets the degrader trip the admission-side
	// circuit breaker the moment a correlated fault guarantees a
	// rejection wave, instead of waiting for the rate window to see it;
	// its recovery hysteresis also holds the shed ladder at >= 1 until
	// capacity has been stable long enough for the breaker to close.
	retry    *workload.RetryLoop
	survival bool

	capEvents     int
	survivalSheds int
	dvfsDowns     int
	consolidates  int
	zoneSheds     int
	shedServers   int
}

// NewDegrader builds a degrader over an assembled facility. Subscribe
// its OnNotice to a fault.Injector and call Start to run the periodic
// check.
func NewDegrader(e *sim.Engine, dc *DataCenter, cfg DegraderConfig) (*Degrader, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rackServers := make([][]*server.Server, len(dc.Topology().Racks))
	for i, s := range dc.Fleet().Servers() {
		rackServers[dc.RackOfServer(i)] = append(rackServers[dc.RackOfServer(i)], s)
	}
	enforcer, err := NewCapEnforcer(dc.Topology().Racks, rackServers)
	if err != nil {
		return nil, err
	}
	guard, err := NewTelemetryGuard(cfg.TelemetryMaxDark)
	if err != nil {
		return nil, err
	}
	d := &Degrader{engine: e, dc: dc, cfg: cfg, enforcer: enforcer, guard: guard}
	ps := dc.Fleet().Servers()[0].Config().PStates
	for i, p := range ps {
		if p.Freq < ps[d.slowest].Freq {
			d.slowest = i
		}
		if p.Freq > ps[d.fastest].Freq {
			d.fastest = i
		}
	}
	return d, nil
}

// Telemetry exposes the last-good telemetry guard for controllers that
// consume zone maps.
func (d *Degrader) Telemetry() *TelemetryGuard { return d.guard }

// SetAdmission links the request-level admission controller: from now
// on every degradation action also moves the user-facing shed ladder
// (admit → degrade class → reject). Pass nil to unlink.
func (d *Degrader) SetAdmission(a *workload.Admission) {
	d.admission = a
	d.syncAdmission()
}

// SetRetry links the closed-loop retry controller: infrastructure
// faults that guarantee a rejection wave (rack loss, capacity dips, UPS
// depletion) trip its circuit breaker immediately, and the shed ladder
// will not fully release while the breaker is open or probing. Pass nil
// to unlink.
func (d *Degrader) SetRetry(r *workload.RetryLoop) {
	d.retry = r
	if r != nil && d.admission == nil {
		d.admission = r.Admission()
	}
	d.syncAdmission()
}

// AdmissionShedLevel reports the user-facing shed level the degradation
// state maps to, whether or not a controller is linked.
func (d *Degrader) AdmissionShedLevel() int {
	level := d.ladder
	if d.retry != nil && d.retry.State() != workload.BreakerClosed && level < 1 {
		// Recovery hysteresis: while the breaker is open or probing,
		// capacity has not proven stable — keep best-effort traffic
		// degraded rather than releasing everything into the storm.
		level = 1
	}
	if d.capsOn && level < 1 {
		// Emergency caps throttle capacity: degrade best-effort traffic
		// rather than letting the fair share sag for everyone.
		level = 1
	}
	if d.survival && level < workload.MaxShedLevel {
		// Survival mode keeps only the critical interactive slice.
		level = workload.MaxShedLevel
	}
	return level
}

// syncAdmission pushes the current degradation state onto the linked
// admission controller.
func (d *Degrader) syncAdmission() {
	if d.admission == nil {
		return
	}
	d.admission.SetShedLevel(d.AdmissionShedLevel())
}

// LadderStage reports the current thermal-shedding stage (0 = none,
// 1 = DVFS-down, 2 = consolidated, 3 = zone shed).
func (d *Degrader) LadderStage() int { return d.ladder }

// CapEvents reports emergency cap engagements.
func (d *Degrader) CapEvents() int { return d.capEvents }

// SurvivalSheds reports shed-to-survival actions after UPS depletion.
func (d *Degrader) SurvivalSheds() int { return d.survivalSheds }

// DVFSDowns reports ladder stage-1 engagements.
func (d *Degrader) DVFSDowns() int { return d.dvfsDowns }

// Consolidations reports ladder stage-2 engagements.
func (d *Degrader) Consolidations() int { return d.consolidates }

// ZoneSheds reports ladder stage-3 engagements.
func (d *Degrader) ZoneSheds() int { return d.zoneSheds }

// ShedServers reports servers powered off by ladder/survival shedding.
func (d *Degrader) ShedServers() int { return d.shedServers }

// Enforcer exposes the reused §3.1 cap enforcer for diagnostics.
func (d *Degrader) Enforcer() *CapEnforcer { return d.enforcer }

// OnNotice is the fault.Listener entry point.
func (d *Degrader) OnNotice(e *sim.Engine, n fault.Notice) {
	switch n.Kind {
	case fault.UtilityOutage:
		// Redundancy lost (or regained): the feed runs on stored/backup
		// energy, so cap the racks against the derated capacity.
		if n.Start {
			d.engageCaps(e.Now())
		} else {
			d.releaseCaps(e.Now())
		}
	case fault.GeneratorOnline:
		// Generator carries the full critical load: keep the caps (one
		// failure from dark) but no additional action.
	case fault.RackFailure, fault.CapacityDip:
		// A correlated capacity loss makes a rejection wave certain:
		// trip the breaker now so clients fast-fail cheaply instead of
		// feeding the retry storm while the rate window catches up.
		if n.Start && d.retry != nil {
			d.retry.Trip()
		}
	case fault.UPSDepleted:
		if n.Start {
			if d.retry != nil {
				d.retry.Trip()
			}
			// Store empty, no generator: shed to the survival set now;
			// anything still drawing is unserved load.
			target := int(math.Ceil(float64(d.dc.Fleet().Size()) * d.cfg.SurvivalFrac))
			before := d.dc.Fleet().OnCount()
			d.dc.Fleet().SetTarget(target)
			if dropped := before - d.dc.Fleet().OnCount(); dropped > 0 {
				d.shedServers += dropped
			}
			d.survivalSheds++
			d.survival = true
		} else {
			d.survival = false
		}
	}
	d.syncAdmission()
}

// engageCaps derates every rack cap and starts enforcing.
func (d *Degrader) engageCaps(now time.Duration) {
	if d.capsOn {
		return
	}
	d.capsOn = true
	d.capEvents++
	racks := d.dc.Topology().Racks
	d.savedCaps = make([]float64, len(racks))
	for i, r := range racks {
		d.savedCaps[i] = r.Cap()
		r.SetCap(r.RatedW() * d.cfg.EmergencyCapFrac)
	}
	d.enforcer.Enforce(now)
}

// releaseCaps restores the saved caps and lifts the emergency throttle.
func (d *Degrader) releaseCaps(now time.Duration) {
	if !d.capsOn {
		return
	}
	d.capsOn = false
	for i, r := range d.dc.Topology().Racks {
		r.SetCap(d.savedCaps[i])
	}
	for _, s := range d.dc.Fleet().Servers() {
		if s.State() == server.StateActive {
			_ = s.SetThrottle(now, 1)
		}
	}
}

// Start runs the periodic degradation check; the Cancel stops it.
func (d *Degrader) Start() sim.Cancel {
	return d.engine.Every(d.cfg.CheckPeriod, func(e *sim.Engine) { d.tick(e.Now()) })
}

// tick runs one degradation pass: enforce emergency caps while engaged
// and walk the thermal ladder against the room state.
func (d *Degrader) tick(now time.Duration) {
	if d.capsOn {
		d.enforcer.Enforce(now)
	}
	room := d.dc.Room()
	maxInlet := math.Inf(-1)
	for z := 0; z < room.Zones(); z++ {
		maxInlet = math.Max(maxInlet, room.ZoneInletC(z))
	}
	cracDown := room.FailedUnits() > 0
	switch {
	case cracDown && maxInlet >= d.cfg.ShedInletC && d.ladder < 3:
		d.ladder++
		d.escalate(now)
	case d.ladder > 0 && !cracDown && maxInlet <= d.cfg.RecoverInletC:
		d.ladder--
		if d.ladder == 0 {
			// Back to nominal operating point.
			_ = d.dc.Fleet().SetPStateAll(now, d.fastest)
		}
	}
	d.syncAdmission()
}

// escalate applies one ladder stage: DVFS-down, consolidate, then power
// off the zones the failed CRACs regulate — performance first, capacity
// second, locality last (§5.1: keep load where the cooling can see it).
func (d *Degrader) escalate(now time.Duration) {
	fleet := d.dc.Fleet()
	switch d.ladder {
	case 1:
		_ = fleet.SetPStateAll(now, d.slowest)
		d.dvfsDowns++
	case 2:
		active := fleet.ActiveCount()
		shed := int(math.Ceil(float64(active) * d.cfg.ConsolidateFrac))
		before := fleet.OnCount()
		fleet.SetTarget(fleet.OnCount() - shed)
		if dropped := before - fleet.OnCount(); dropped > 0 {
			d.shedServers += dropped
		}
		d.consolidates++
	case 3:
		z := d.worstFailedZone()
		if z < 0 {
			return
		}
		servers := fleet.Servers()
		for _, i := range d.dc.ServersInZone(z) {
			st := servers[i].State()
			if st == server.StateActive || st == server.StateBooting {
				servers[i].PowerOff(d.engine)
				d.shedServers++
			}
		}
		d.zoneSheds++
	}
}

// worstFailedZone picks the zone most dependent on failed CRAC units
// (highest summed sensitivity to them), or -1 when none is failed.
func (d *Degrader) worstFailedZone() int {
	room := d.dc.Room()
	best, bestScore := -1, 0.0
	for z := 0; z < room.Zones(); z++ {
		score := 0.0
		for c := 0; c < room.CRACs(); c++ {
			if room.UnitFailed(c) {
				score += room.Sensitivity(z, c)
			}
		}
		if score > bestScore {
			best, bestScore = z, score
		}
	}
	return best
}

// TelemetryGuard implements the last-good telemetry fallback: controllers
// hand every reconstructed zone map through Observe, and when the sensor
// network goes dark the guard replays the last good map and reports how
// long control has been running blind.
type TelemetryGuard struct {
	maxDark    int
	lastGood   []float64
	darkRounds int
	fallbacks  int
}

// NewTelemetryGuard builds a guard that declares degraded control after
// maxDark consecutive dark rounds (must be >= 1).
func NewTelemetryGuard(maxDark int) (*TelemetryGuard, error) {
	if maxDark < 1 {
		return nil, fmt.Errorf("core: telemetry guard needs maxDark >= 1, got %d", maxDark)
	}
	return &TelemetryGuard{maxDark: maxDark}, nil
}

// Observe records one telemetry round. ok=false (or a nil estimate)
// marks the round dark; the guard then returns the last good map (nil if
// none yet) and whether control should consider itself degraded — dark
// for more than maxDark consecutive rounds.
func (g *TelemetryGuard) Observe(est []float64, ok bool) (zoneMap []float64, degraded bool) {
	if ok && est != nil {
		g.lastGood = append(g.lastGood[:0], est...)
		g.darkRounds = 0
		return est, false
	}
	g.darkRounds++
	g.fallbacks++
	return g.lastGood, g.darkRounds >= g.maxDark
}

// Fallbacks reports how many rounds were served from the last good map.
func (g *TelemetryGuard) Fallbacks() int { return g.fallbacks }

// DarkRounds reports the current consecutive dark-round count.
func (g *TelemetryGuard) DarkRounds() int { return g.darkRounds }
