package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
)

// scanAggregates recomputes the fleet aggregates the slow way, straight
// from the servers — the reference the maintained counters must match.
func scanAggregates(f *Fleet) (on, active, trips int, powerW, energyJ float64) {
	for _, s := range f.Servers() {
		switch s.State() {
		case server.StateActive:
			on++
			active++
		case server.StateBooting:
			on++
		}
		trips += s.Trips()
		powerW += s.Power()
		energyJ += s.EnergyJ()
	}
	return on, active, trips, powerW, energyJ
}

func requireAggregatesMatchScan(t *testing.T, f *Fleet) {
	t.Helper()
	on, active, trips, powerW, energyJ := scanAggregates(f)
	if f.OnCount() != on {
		t.Errorf("OnCount = %d, scan = %d", f.OnCount(), on)
	}
	if f.ActiveCount() != active {
		t.Errorf("ActiveCount = %d, scan = %d", f.ActiveCount(), active)
	}
	if f.Trips() != trips {
		t.Errorf("Trips = %d, scan = %d", f.Trips(), trips)
	}
	if !withinTol(f.PowerW(), powerW, 1e-9, 1e-9) {
		t.Errorf("PowerW = %v, scan = %v", f.PowerW(), powerW)
	}
	if !withinTol(f.EnergyJ(), energyJ, 1e-9, 1e-6) {
		t.Errorf("EnergyJ = %v, scan = %v", f.EnergyJ(), energyJ)
	}
	if err := f.VerifyAggregates(); err != nil {
		t.Errorf("VerifyAggregates: %v", err)
	}
}

// TestAggregatesMatchScanAfterFaults drives the fleet through the ugly
// lifecycle corners — aborted boots, crashes, thermal trips, re-boots —
// and checks the maintained counters against a fresh scan at every stage.
func TestAggregatesMatchScanAfterFaults(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testServerConfig()
	f, err := NewFleet(e, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireAggregatesMatchScan(t, f)

	// Boot six; abort two of them mid-boot.
	f.SetTarget(6)
	requireAggregatesMatchScan(t, f)
	if err := e.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	f.SetTarget(4) // sheds booting servers: Booting→ShuttingDown aborts
	requireAggregatesMatchScan(t, f)
	if err := e.Run(cfg.BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	if f.ActiveCount() != 4 {
		t.Fatalf("ActiveCount = %d after aborted boots, want 4", f.ActiveCount())
	}
	requireAggregatesMatchScan(t, f)

	// Put load on, then crash one server and trip another.
	f.Dispatch(e.Now(), 2000)
	requireAggregatesMatchScan(t, f)
	servers := f.Servers()
	if !servers[0].Crash(e.Now()) {
		t.Fatal("crash did not take")
	}
	if !servers[1].ObserveInlet(e.Now(), cfg.TripTempC+2) {
		t.Fatal("trip did not take")
	}
	requireAggregatesMatchScan(t, f)
	if f.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", f.Trips())
	}

	// Recover: boot back up, complete, and re-dispatch.
	f.SetTarget(6)
	requireAggregatesMatchScan(t, f)
	if err := e.Run(e.Now() + cfg.BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	f.Dispatch(e.Now(), 3000)
	f.Sync(e.Now())
	requireAggregatesMatchScan(t, f)
}

// aggregateTrajectory runs a seeded random op sequence (boots, sheds,
// DVFS moves, throttles, core parking, crashes, trips, dispatches) over a
// fleet of size n, verifying SoA aggregates against a scan as it goes,
// and returns the observable aggregate trajectory for determinism checks.
func aggregateTrajectory(t *testing.T, seed int64, n, steps int) []float64 {
	t.Helper()
	e := sim.NewEngine(1)
	cfg := testServerConfig()
	f, err := NewFleet(e, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic rack/zone grouping so per-group sums are exercised too.
	rackOf := make([]int, n)
	zoneOf := make([]int, n)
	nRacks := (n + 3) / 4
	for i := range rackOf {
		rackOf[i] = i / 4
		zoneOf[i] = i % 3
	}
	if err := f.SetPowerGroups(rackOf, zoneOf, nRacks, 3); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	var traj []float64
	now := time.Duration(0)
	for step := 0; step < steps; step++ {
		now += time.Duration(rng.Intn(30)+1) * time.Second
		if err := e.Run(now); err != nil {
			t.Fatal(err)
		}
		s := f.Servers()[rng.Intn(n)]
		switch rng.Intn(10) {
		case 0:
			s.PowerOn(e)
		case 1:
			s.PowerOff(e)
		case 2:
			s.SetUtilization(e.Now(), rng.Float64()*1.2-0.1) // incl. clamped values
		case 3:
			if err := s.SetPState(e.Now(), rng.Intn(len(cfg.PStates))); err != nil {
				t.Fatal(err)
			}
		case 4:
			if err := s.SetThrottle(e.Now(), 0.2+0.8*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		case 5:
			if err := s.ParkCores(e.Now(), rng.Intn(cfg.Cores)); err != nil {
				t.Fatal(err)
			}
		case 6:
			s.Crash(e.Now())
		case 7:
			// Sometimes above the trip threshold, sometimes below.
			s.ObserveInlet(e.Now(), cfg.TripTempC-5+rng.Float64()*10)
		case 8:
			f.SetTarget(rng.Intn(n + 1))
		case 9:
			f.Dispatch(e.Now(), rng.Float64()*cfg.Capacity*float64(n))
		}
		if step%7 == 0 {
			requireAggregatesMatchScan(t, f)
		}
		if step%11 == 0 {
			f.MaybeRebase()
		}
		traj = append(traj, f.PowerW(), f.EnergyJ(),
			float64(f.OnCount()), float64(f.ActiveCount()), float64(f.Trips()))
	}
	f.Sync(e.Now())
	requireAggregatesMatchScan(t, f)
	traj = append(traj, f.PowerW(), f.EnergyJ())
	return traj
}

// TestAggregatesPropertyRandom asserts, across fleet sizes and seeds,
// that the incrementally maintained aggregates track a full recompute
// through arbitrary op interleavings, and that the whole observable
// trajectory is bitwise deterministic across two same-seed runs.
func TestAggregatesPropertyRandom(t *testing.T) {
	for _, n := range []int{1, 7, 32, 129} {
		for seed := int64(1); seed <= 3; seed++ {
			a := aggregateTrajectory(t, seed, n, 150)
			b := aggregateTrajectory(t, seed, n, 150)
			if len(a) != len(b) {
				t.Fatalf("n=%d seed=%d: trajectory lengths differ: %d vs %d", n, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d seed=%d: trajectories diverge at %d: %v vs %v", n, seed, i, a[i], b[i])
				}
			}
		}
	}
}
