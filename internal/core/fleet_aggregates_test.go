package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
)

// scanAggregates recomputes the fleet aggregates the slow way, straight
// from the servers — the reference the maintained counters must match.
func scanAggregates(f *Fleet) (on, active, trips int, powerW, energyJ float64) {
	for _, s := range f.Servers() {
		switch s.State() {
		case server.StateActive:
			on++
			active++
		case server.StateBooting:
			on++
		}
		trips += s.Trips()
		powerW += s.Power()
		energyJ += s.EnergyJ()
	}
	return on, active, trips, powerW, energyJ
}

func requireAggregatesMatchScan(t *testing.T, f *Fleet) {
	t.Helper()
	on, active, trips, powerW, energyJ := scanAggregates(f)
	if f.OnCount() != on {
		t.Errorf("OnCount = %d, scan = %d", f.OnCount(), on)
	}
	if f.ActiveCount() != active {
		t.Errorf("ActiveCount = %d, scan = %d", f.ActiveCount(), active)
	}
	if f.Trips() != trips {
		t.Errorf("Trips = %d, scan = %d", f.Trips(), trips)
	}
	if !withinTol(f.PowerW(), powerW, 1e-9, 1e-9) {
		t.Errorf("PowerW = %v, scan = %v", f.PowerW(), powerW)
	}
	if !withinTol(f.EnergyJ(), energyJ, 1e-9, 1e-6) {
		t.Errorf("EnergyJ = %v, scan = %v", f.EnergyJ(), energyJ)
	}
	if err := f.VerifyAggregates(); err != nil {
		t.Errorf("VerifyAggregates: %v", err)
	}
}

// TestAggregatesMatchScanAfterFaults drives the fleet through the ugly
// lifecycle corners — aborted boots, crashes, thermal trips, re-boots —
// and checks the maintained counters against a fresh scan at every stage.
func TestAggregatesMatchScanAfterFaults(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testServerConfig()
	f, err := NewFleet(e, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireAggregatesMatchScan(t, f)

	// Boot six; abort two of them mid-boot.
	f.SetTarget(6)
	requireAggregatesMatchScan(t, f)
	if err := e.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	f.SetTarget(4) // sheds booting servers: Booting→ShuttingDown aborts
	requireAggregatesMatchScan(t, f)
	if err := e.Run(cfg.BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	if f.ActiveCount() != 4 {
		t.Fatalf("ActiveCount = %d after aborted boots, want 4", f.ActiveCount())
	}
	requireAggregatesMatchScan(t, f)

	// Put load on, then crash one server and trip another.
	f.Dispatch(e.Now(), 2000)
	requireAggregatesMatchScan(t, f)
	servers := f.Servers()
	if !servers[0].Crash(e.Now()) {
		t.Fatal("crash did not take")
	}
	if !servers[1].ObserveInlet(e.Now(), cfg.TripTempC+2) {
		t.Fatal("trip did not take")
	}
	requireAggregatesMatchScan(t, f)
	if f.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", f.Trips())
	}

	// Recover: boot back up, complete, and re-dispatch.
	f.SetTarget(6)
	requireAggregatesMatchScan(t, f)
	if err := e.Run(e.Now() + cfg.BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	f.Dispatch(e.Now(), 3000)
	f.Sync(e.Now())
	requireAggregatesMatchScan(t, f)
}

// aggregateTrajectory runs a seeded random op sequence (boots, sheds,
// DVFS moves, throttles, core parking, crashes, trips, dispatches) over a
// fleet of size n, verifying SoA aggregates against a scan as it goes,
// and returns the observable aggregate trajectory for determinism checks.
func aggregateTrajectory(t *testing.T, seed int64, n, steps int) []float64 {
	t.Helper()
	e := sim.NewEngine(1)
	cfg := testServerConfig()
	f, err := NewFleet(e, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic rack/zone grouping so per-group sums are exercised too.
	rackOf := make([]int, n)
	zoneOf := make([]int, n)
	nRacks := (n + 3) / 4
	for i := range rackOf {
		rackOf[i] = i / 4
		zoneOf[i] = i % 3
	}
	if err := f.SetPowerGroups(rackOf, zoneOf, nRacks, 3); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	var traj []float64
	now := time.Duration(0)
	for step := 0; step < steps; step++ {
		now += time.Duration(rng.Intn(30)+1) * time.Second
		if err := e.Run(now); err != nil {
			t.Fatal(err)
		}
		s := f.Servers()[rng.Intn(n)]
		switch rng.Intn(10) {
		case 0:
			s.PowerOn(e)
		case 1:
			s.PowerOff(e)
		case 2:
			s.SetUtilization(e.Now(), rng.Float64()*1.2-0.1) // incl. clamped values
		case 3:
			if err := s.SetPState(e.Now(), rng.Intn(len(cfg.PStates))); err != nil {
				t.Fatal(err)
			}
		case 4:
			if err := s.SetThrottle(e.Now(), 0.2+0.8*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		case 5:
			if err := s.ParkCores(e.Now(), rng.Intn(cfg.Cores)); err != nil {
				t.Fatal(err)
			}
		case 6:
			s.Crash(e.Now())
		case 7:
			// Sometimes above the trip threshold, sometimes below.
			s.ObserveInlet(e.Now(), cfg.TripTempC-5+rng.Float64()*10)
		case 8:
			f.SetTarget(rng.Intn(n + 1))
		case 9:
			f.Dispatch(e.Now(), rng.Float64()*cfg.Capacity*float64(n))
		}
		if step%7 == 0 {
			requireAggregatesMatchScan(t, f)
		}
		if step%11 == 0 {
			f.MaybeRebase()
		}
		traj = append(traj, f.PowerW(), f.EnergyJ(),
			float64(f.OnCount()), float64(f.ActiveCount()), float64(f.Trips()))
	}
	f.Sync(e.Now())
	requireAggregatesMatchScan(t, f)
	traj = append(traj, f.PowerW(), f.EnergyJ())
	return traj
}

// TestRebaseRecordsDrift pins the drift-visibility fix: the non-negative
// clamps on PowerW/RackPowerW/ZonePowerW floor ulp-scale drift, but the
// magnitude discarded at each Rebase must be recorded, and drift beyond
// the rebase-window tolerance must fail VerifyAggregates instead of
// vanishing into the clamp.
func TestRebaseRecordsDrift(t *testing.T) {
	e := sim.NewEngine(1)
	f := bootedFleet(t, e, 8, 6)

	f.Rebase()
	last, max := f.RebaseDrift()
	if last > 1e-9 {
		t.Fatalf("healthy fleet recorded %v W of rebase drift", last)
	}
	if err := f.VerifyAggregates(); err != nil {
		t.Fatalf("healthy fleet: %v", err)
	}

	// Inject drift well past what a rebase window can accumulate —
	// the shape of a lost notification delta.
	f.powerTotal += 3.5
	f.Rebase()
	last, max = f.RebaseDrift()
	if last < 3.4 || last > 3.6 {
		t.Fatalf("recorded drift = %v W, want ~3.5", last)
	}
	if max < last {
		t.Fatalf("max drift %v below last %v", max, last)
	}
	if err := f.VerifyAggregates(); err == nil {
		t.Fatal("VerifyAggregates passed despite out-of-tolerance rebase drift")
	}

	// A clean rebase clears the fresh-drift failure but keeps the
	// lifetime high-water mark.
	f.Rebase()
	if err := f.VerifyAggregates(); err != nil {
		t.Fatalf("after clean rebase: %v", err)
	}
	if _, max = f.RebaseDrift(); max < 3.4 {
		t.Fatalf("lifetime max drift = %v, want ~3.5 retained", max)
	}
}

// TestRebaseDriftCoversGroups injects drift into a per-zone sum only and
// checks it is still seen (the clamped ZonePowerW accessor would have
// masked a negative version of it entirely).
func TestRebaseDriftCoversGroups(t *testing.T) {
	e := sim.NewEngine(1)
	f := bootedFleet(t, e, 8, 8)
	rackOf := make([]int, 8)
	zoneOf := make([]int, 8)
	for i := range rackOf {
		rackOf[i] = i / 4
		zoneOf[i] = i / 4
	}
	if err := f.SetPowerGroups(rackOf, zoneOf, 2, 2); err != nil {
		t.Fatal(err)
	}
	if last, _ := f.RebaseDrift(); last != 0 {
		t.Fatalf("SetPowerGroups installation measured as drift: %v W", last)
	}
	f.zonePower[1] -= 2.0 // negative drift: exactly what the clamp hides
	f.Rebase()
	if last, _ := f.RebaseDrift(); last < 1.9 || last > 2.1 {
		t.Fatalf("zone drift recorded as %v W, want ~2", last)
	}
	if err := f.VerifyAggregates(); err == nil {
		t.Fatal("VerifyAggregates passed despite zone-sum drift")
	}
}

// TestAggregatesPropertyRandom asserts, across fleet sizes and seeds,
// that the incrementally maintained aggregates track a full recompute
// through arbitrary op interleavings, and that the whole observable
// trajectory is bitwise deterministic across two same-seed runs.
func TestAggregatesPropertyRandom(t *testing.T) {
	for _, n := range []int{1, 7, 32, 129} {
		for seed := int64(1); seed <= 3; seed++ {
			a := aggregateTrajectory(t, seed, n, 150)
			b := aggregateTrajectory(t, seed, n, 150)
			if len(a) != len(b) {
				t.Fatalf("n=%d seed=%d: trajectory lengths differ: %d vs %d", n, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d seed=%d: trajectories diverge at %d: %v vs %v", n, seed, i, a[i], b[i])
				}
			}
		}
	}
}
