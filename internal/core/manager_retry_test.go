package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// retryConfig builds a manager config with the closed-loop retry
// controller in front of dispatch.
func retryConfig(t *testing.T, e *sim.Engine, mode PolicyMode, fleet, initial int, policy workload.RetryPolicy, breaker bool) (ManagerConfig, *workload.RetryLoop) {
	t.Helper()
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := workload.DefaultRetryConfig(policy)
	rcfg.SLORetryFrac = 0 // steady-state SLO churn is covered in workload tests
	if breaker {
		rcfg.Breaker = workload.DefaultBreakerConfig()
	}
	rl, err := workload.NewRetryLoop(rcfg, adm, e.RNG().Fork("retry"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := pathologyConfig(mode)
	cfg.FleetSize = fleet
	cfg.InitialOn = initial
	cfg.Trigger.Max = fleet
	cfg.Retry = rl
	cfg.ClassDemand = func(now time.Duration) [workload.NumClasses]float64 {
		return [workload.NumClasses]float64{
			workload.ClassInteractive: workload.UsersPerTick(1000, time.Minute),
			workload.ClassBatch:       workload.UsersPerTick(40, time.Minute),
			workload.ClassBackground:  workload.UsersPerTick(100, time.Minute),
		}
	}
	return cfg, rl
}

func TestManagerRetryConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	cfg, rl := retryConfig(t, e, ModeAlwaysOn, 40, 40, workload.RetryBackoff, false)
	cfg.Admission = rl.Admission() // both knobs set: ambiguous
	if _, err := NewManager(e, cfg, nil); err == nil {
		t.Error("Retry together with Admission should error")
	}
	cfg.Admission = nil
	cfg.ClassDemand = nil
	if _, err := NewManager(e, cfg, nil); err == nil {
		t.Error("Retry without class demand should error")
	}
	cfg2, _ := retryConfig(t, sim.NewEngine(1), ModeAlwaysOn, 40, 40, workload.RetryBackoff, false)
	if _, err := NewManager(sim.NewEngine(1), cfg2, nil); err != nil {
		t.Errorf("retry-driven manager rejected: %v", err)
	}
}

func TestManagerRetryClosedLoopOutcomes(t *testing.T) {
	e := sim.NewEngine(1)
	cfg, rl := retryConfig(t, e, ModeAlwaysOn, 40, 40, workload.RetryBackoff, true)
	m, err := NewManager(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retry() != rl || m.Admission() != rl.Admission() {
		t.Fatal("accessors lost the closed-loop controller")
	}
	m.Start()
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	res := m.Result(e.Now())
	u := res.Users
	if u == nil {
		t.Fatal("closed-loop run reported no user outcomes")
	}
	if u.Goodput <= 0 || u.Goodput > u.Admitted {
		t.Errorf("goodput %v out of (0, admitted %v]", u.Goodput, u.Admitted)
	}
	if u.RetryAmplification < 1 {
		t.Errorf("amplification %v < 1", u.RetryAmplification)
	}
	// Boot delay rejects the first ticks (and trips the breaker), so
	// the closed loop must have seen retries; with 40 servers against
	// ~38 erl the storm stays a startup transient.
	if u.Retried <= 0 {
		t.Error("expected startup rejections to re-enter as retries")
	}
	if last := m.LastRetryOutcome(); last.Breaker != workload.BreakerClosed {
		t.Errorf("steady-state breaker %v, want closed", last.Breaker)
	}
	if frac := u.Abandoned / u.Fresh; frac > 0.1 {
		t.Errorf("abandoned fraction %v too high for an ample fleet", frac)
	}
}

func TestManagerRetryCoordinatedPlansOnInflatedDemand(t *testing.T) {
	// The planner must see fresh + retried + fast-failed demand, or a
	// small initial fleet stays trapped under its own retry storm.
	e := sim.NewEngine(1)
	cfg, rl := retryConfig(t, e, ModeCoordinated, 40, 2, workload.RetryNaive, false)
	m, err := NewManager(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	last := m.LastOutcome()
	if last.Q != 1 {
		t.Errorf("steady-state Q = %v, want 1 once the planner catches up", last.Q)
	}
	if rl.InRetryTotal() > 1e-6 {
		t.Errorf("retry queue still holds %v users at steady state", rl.InRetryTotal())
	}
	if active := m.Fleet().ActiveCount(); active < 20 {
		t.Errorf("fleet grew to only %d active servers, want >= 20", active)
	}
}

func TestManagerCapacityDipScalesAdmissionView(t *testing.T) {
	e := sim.NewEngine(1)
	cfg, rl := retryConfig(t, e, ModeAlwaysOn, 40, 40, workload.RetryBackoff, true)
	m, err := NewManager(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.OnNotice(e, fault.Notice{Kind: fault.CapacityDip, At: 0, Start: true, Index: -1, Frac: 0.75})
	if got := m.CapacityFactor(); got != 0.25 {
		t.Fatalf("capacity factor %v under a 75%% dip, want 0.25", got)
	}
	m.Start()
	if err := e.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// 40 active servers scaled to 10 effective against ~24 erl: the
	// admission layer must be rejecting even though the fleet is up.
	if rl.Admission().RejectedUsers() <= 0 {
		t.Error("no rejections under a deep capacity dip")
	}
	// The rejection wave trips the breaker, which then fast-fails
	// arrivals before the pool sees them — so the mid-dip signal is the
	// breaker state, not pool fair share.
	if st := m.LastRetryOutcome().Breaker; st == workload.BreakerClosed {
		t.Error("breaker still closed mid-dip, want tripped")
	}
	m.OnNotice(e, fault.Notice{Kind: fault.CapacityDip, At: e.Now(), Start: false, Index: -1, Frac: 0.75})
	if got := m.CapacityFactor(); got != 1 {
		t.Fatalf("capacity factor %v after revert, want 1", got)
	}
	// Without the breaker this storm is metastable: retry-inflated
	// demand plus rejection waste holds the pool under water long after
	// the dip reverts. The breaker fast-fails the backlog dry, so the
	// loop must settle back to Q == 1 within the recovery window.
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if q := m.LastOutcome().Q; q != 1 {
		t.Errorf("fair share Q = %v after the dip cleared, want 1", q)
	}
	if err := rl.CheckInvariants(e.Now()); err != nil {
		t.Error(err)
	}
}

func TestDegraderTripsBreakerOnCorrelatedFaults(t *testing.T) {
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, smallDCConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDegrader(e, dc, DegraderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := workload.DefaultRetryConfig(workload.RetryBackoff)
	rcfg.Breaker = workload.DefaultBreakerConfig()
	rl, err := workload.NewRetryLoop(rcfg, adm, e.RNG().Fork("retry"))
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetry(rl) // also links the wrapped admission
	if rl.State() != workload.BreakerClosed {
		t.Fatalf("initial breaker %v, want closed", rl.State())
	}
	d.OnNotice(e, fault.Notice{Kind: fault.RackFailure, At: 0, Start: true, Index: 0})
	if rl.State() != workload.BreakerOpen || rl.Trips() != 1 {
		t.Fatalf("rack failure left breaker %v (trips %d), want open", rl.State(), rl.Trips())
	}
	// Recovery hysteresis: while the breaker is not closed, the shed
	// ladder holds at >= 1 even though the thermal ladder is at 0.
	if got := d.AdmissionShedLevel(); got != 1 {
		t.Errorf("shed level %d while breaker open, want 1", got)
	}
	if got := adm.ShedLevel(); got != 1 {
		t.Errorf("linked admission shed level %d, want 1", got)
	}
	// Walk the breaker through open -> half-open -> closed with healthy
	// (idle) ticks; the shed hold must release only then.
	var none [workload.NumClasses]float64
	b := rcfg.Breaker
	for i := 0; i < b.OpenTicks+b.RecoverTicks; i++ {
		rl.Tick(time.Minute, &none, 100)
	}
	if rl.State() != workload.BreakerClosed {
		t.Fatalf("breaker %v after healthy recovery window, want closed", rl.State())
	}
	d.OnNotice(e, fault.Notice{Kind: fault.RackFailure, At: 0, Start: false, Index: 0})
	if got := adm.ShedLevel(); got != 0 {
		t.Errorf("shed level %d after breaker closed, want 0", got)
	}
	// A capacity dip trips too.
	d.OnNotice(e, fault.Notice{Kind: fault.CapacityDip, At: 0, Start: true, Index: -1, Frac: 0.5})
	if rl.State() != workload.BreakerOpen || rl.Trips() != 2 {
		t.Errorf("capacity dip left breaker %v (trips %d), want open", rl.State(), rl.Trips())
	}
}

func TestUserOutcomesRetryFieldsConserve(t *testing.T) {
	e := sim.NewEngine(1)
	cfg, _ := retryConfig(t, e, ModeAlwaysOn, 6, 6, workload.RetryNaive, false)
	m, err := NewManager(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	u := m.Result(e.Now()).Users
	if u == nil {
		t.Fatal("no user outcomes")
	}
	// Closed-loop ledger at run end: every fresh arrival completed,
	// abandoned, or still parked (retry queue or deferral backlog).
	got := u.Goodput + u.Abandoned + u.InRetry + u.DeferredBacklog
	if math.Abs(got-u.Fresh) > 1e-6*math.Max(1, u.Fresh) {
		t.Errorf("closed-loop conservation broken: goodput %v + abandoned %v + in-retry %v + backlog %v != fresh %v",
			u.Goodput, u.Abandoned, u.InRetry, u.DeferredBacklog, u.Fresh)
	}
	if u.Abandoned <= 0 {
		t.Error("6 servers against ~24 erl should abandon users")
	}
	if u.RetryAmplification <= 1 {
		t.Errorf("amplification %v, want > 1 under sustained overload", u.RetryAmplification)
	}
}
