package core

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestRebaseCadencePerFacility pins the amortized-rebase contract when
// several facilities share one engine on different telemetry cadences
// (the geo federation's shape): each fleet counts its own sample rounds
// and rebases every rebaseEvery-th round, independently of its
// neighbours.
func TestRebaseCadencePerFacility(t *testing.T) {
	e := sim.NewEngine(11)

	fast := smallDCConfig()
	fast.Name = "dc-fast"
	fast.SampleEvery = 15 * time.Second
	slow := smallDCConfig()
	slow.Name = "dc-slow"
	slow.SampleEvery = 45 * time.Second

	var fleets []*Fleet
	var base []int
	for _, cfg := range []DataCenterConfig{fast, slow} {
		dc, err := NewDataCenter(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dc.Attach(); err != nil {
			t.Fatal(err)
		}
		fleets = append(fleets, dc.Fleet())
		// The group-install pass runs one unmeasured recompute; capture
		// whatever construction cost so the run delta is exact.
		base = append(base, dc.Fleet().Rebases())
	}

	horizon := time.Hour
	if err := e.Run(horizon); err != nil {
		t.Fatal(err)
	}

	// rounds = horizon / SampleEvery (first fire at SampleEvery, horizon
	// inclusive); one rebase per rebaseEvery rounds.
	for i, cfg := range []DataCenterConfig{fast, slow} {
		rounds := int(horizon / cfg.SampleEvery)
		want := rounds / rebaseEvery
		if got := fleets[i].Rebases() - base[i]; got != want {
			t.Errorf("%s: %d rebases over %d rounds, want %d (every %d rounds)",
				cfg.Name, got, rounds, want, rebaseEvery)
		}
	}
	if fleets[0].Rebases() == fleets[1].Rebases() {
		t.Error("different cadences should have produced different rebase counts")
	}

	// The amortized policy must still leave the aggregates verifiable.
	for i, f := range fleets {
		if err := f.VerifyAggregates(); err != nil {
			t.Errorf("fleet %d aggregates diverged: %v", i, err)
		}
	}

	// A barrier-style Sync (what the federation runs at every epoch
	// boundary) forces an exact recompute regardless of cadence phase.
	for i, f := range fleets {
		before := f.Rebases()
		f.Sync(horizon)
		if f.Rebases() != before+1 {
			t.Errorf("fleet %d: Sync did not rebase", i)
		}
		lastW, _ := f.RebaseDrift()
		if lastW > 1e-6 {
			t.Errorf("fleet %d: post-Sync drift %v W suspiciously large for an idle fleet", i, lastW)
		}
	}
}
