// Tests for the sharded (deterministic-parallel) fleet paths: dispatch,
// physics trip scan, telemetry sampling, and rebase scheduling must
// produce bit-identical results at every worker count, because shard
// structure is a pure function of fleet size (see internal/par).
package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/cooling"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/sim"
)

// newTestPool builds a pool of the given width with cleanup registered.
// Width 1 yields the nil (inline) pool — the serial configuration.
func newTestPool(tb testing.TB, workers int) *par.Pool {
	tb.Helper()
	p := par.New(workers)
	tb.Cleanup(p.Close)
	return p
}

// shardedTestDC builds a single-zone facility with 4 racks × perRack
// servers wired to the given pool. perRack > parCutoff/4 arms the
// sharded fold for both the fleet and the zone.
func shardedTestDC(tb testing.TB, e *sim.Engine, pool *par.Pool, perRack int, sampleEvery time.Duration) *DataCenter {
	tb.Helper()
	const racks = 4
	srvCfg := testServerConfig()
	n := racks * perRack
	airScale := float64(n) / 40
	zone := cooling.DefaultZone("z0")
	zone.Airflow *= airScale
	plant := cooling.DefaultPlantConfig()
	plant.FanRatedW = 2_000 * airScale
	dc, err := NewDataCenter(e, DataCenterConfig{
		Name:           "dc-par",
		ServerConfig:   srvCfg,
		ServersPerRack: perRack,
		Topology: power.TopologyConfig{
			UPSCount: 1, PDUsPerUPS: 2, RacksPerPDU: 2,
			RackRatedW: float64(perRack) * srvCfg.PeakPower * 1.05, Oversubscription: 1,
		},
		Room: cooling.RoomConfig{
			Zones:       []cooling.ZoneConfig{zone},
			CRACs:       []cooling.CRACConfig{cooling.DefaultCRAC("c0")},
			Sensitivity: [][]float64{{0.6}},
			PhysicsTick: cooling.DefaultPhysicsTick,
		},
		ZoneOfRack:  []int{0, 0, 0, 0},
		Plant:       plant,
		SampleEvery: sampleEvery,
		Pool:        pool,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return dc
}

// fleetTrace is the bit-level record of one sharded fleet scenario.
type fleetTrace struct {
	Power, Energy     []uint64
	Dropped, MaxU     []uint64
	On, Active, Trips []int
}

// runShardedFleetScenario drives a 2048-server fleet (above parCutoff)
// through boots, dispatches, and shrinks, recording the exact float bits
// of every aggregate along the way.
func runShardedFleetScenario(t *testing.T, workers int) fleetTrace {
	t.Helper()
	e := sim.NewEngine(1)
	const n = 2048
	cfg := testServerConfig()
	f, err := NewFleet(e, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	f.SetParallel(newTestPool(t, workers))

	var tr fleetTrace
	rec := func() {
		f.Sync(e.Now())
		tr.Power = append(tr.Power, math.Float64bits(f.PowerW()))
		tr.Energy = append(tr.Energy, math.Float64bits(f.EnergyJ()))
		tr.On = append(tr.On, f.OnCount())
		tr.Active = append(tr.Active, f.ActiveCount())
		tr.Trips = append(tr.Trips, f.Trips())
	}

	f.SetTarget(3 * n / 4)
	if err := e.Run(cfg.BootDelay + time.Second); err != nil {
		t.Fatal(err)
	}
	rec()
	for k := 0; k < 14; k++ {
		now := e.Now()
		offered := (0.15 + 0.08*float64(k%9)) * float64(n) * cfg.Capacity
		d, maxU := f.Dispatch(now, offered)
		tr.Dropped = append(tr.Dropped, math.Float64bits(d.Dropped))
		tr.MaxU = append(tr.MaxU, math.Float64bits(maxU))
		switch k {
		case 5:
			f.SetTarget(n / 3)
		case 9:
			f.SetTarget(n - 7)
		}
		if err := e.Run(now + time.Minute); err != nil {
			t.Fatal(err)
		}
		rec()
	}
	if err := f.VerifyAggregates(); err != nil {
		t.Errorf("workers=%d: VerifyAggregates: %v", workers, err)
	}
	return tr
}

// TestShardedFleetBitIdenticalAcrossWorkers is the core determinism
// contract: the sharded dispatch/aggregation path yields the same float
// bits whether shards run inline or over 2, 4, or 8 workers.
func TestShardedFleetBitIdenticalAcrossWorkers(t *testing.T) {
	ref := runShardedFleetScenario(t, 1)
	for _, w := range []int{2, 4, 8} {
		got := runShardedFleetScenario(t, w)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d trace diverged from serial trace", w)
		}
	}
}

// dcTrace is the bit-level record of one full-facility scenario.
type dcTrace struct {
	Power, Energy []uint64
	Racks         []uint64
	Dropped, MaxU []uint64
	FrameXor      uint64
	FrameT        time.Duration
	Trips         []int
	ScanTripped   int
	Rebases       int
}

// runShardedDCScenario runs the fig4-style control surface (physics
// ticks, telemetry samples, dispatch, reorder, a forced sharded trip
// scan) over a 2048-server single-zone facility.
func runShardedDCScenario(t *testing.T, workers int) dcTrace {
	t.Helper()
	e := sim.NewEngine(1)
	srvCfg := testServerConfig()
	dc := shardedTestDC(t, e, newTestPool(t, workers), 512, time.Minute)
	if _, err := dc.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := dc.PreferCoolingSensitiveZones(); err != nil {
		t.Fatal(err)
	}
	f := dc.Fleet()
	n := f.Size()

	var tr dcTrace
	rec := func() {
		f.Sync(e.Now())
		tr.Power = append(tr.Power, math.Float64bits(f.PowerW()))
		tr.Energy = append(tr.Energy, math.Float64bits(f.EnergyJ()))
		for r := range dc.Topology().Racks {
			tr.Racks = append(tr.Racks, math.Float64bits(f.RackPowerW(r)))
		}
		tr.Trips = append(tr.Trips, f.Trips())
	}

	f.SetTarget(3 * n / 4)
	if err := e.Run(srvCfg.BootDelay + time.Second); err != nil {
		t.Fatal(err)
	}
	rec()
	for k := 0; k < 12; k++ {
		now := e.Now()
		offered := (0.2 + 0.07*float64(k%7)) * float64(n) * srvCfg.Capacity
		d, maxU := f.Dispatch(now, offered)
		tr.Dropped = append(tr.Dropped, math.Float64bits(d.Dropped))
		tr.MaxU = append(tr.MaxU, math.Float64bits(maxU))
		if k == 7 {
			f.SetTarget(n / 2)
		}
		if err := e.Run(now + time.Minute); err != nil {
			t.Fatal(err)
		}
		rec()
	}

	// The latest telemetry frame, folded to one checksum: the sharded
	// frame fill and the columnar AppendPar must be byte-stable too.
	row := make([]float64, dc.Frames().Width())
	ft, ok := dc.Frames().LatestInto(row)
	if !ok {
		t.Fatal("no telemetry frame sampled")
	}
	tr.FrameT = ft
	for i, v := range row {
		tr.FrameXor ^= math.Float64bits(v) * uint64(i+1)
	}

	// Force the sharded trip scan: an inlet above every trip threshold
	// routes a burst of concurrent state transitions through the
	// per-shard accumulators.
	tr.ScanTripped = dc.scanZoneSharded(e.Now(), srvCfg.TripTempC+10, dc.zoneServers[0], dc.zoneShards[0])
	rec()
	tr.Rebases = f.Rebases()
	if err := f.VerifyAggregates(); err != nil {
		t.Errorf("workers=%d: VerifyAggregates: %v", workers, err)
	}
	return tr
}

// TestShardedDataCenterBitIdenticalAcrossWorkers runs the full facility
// loop — sharded physics scan, sharded sample, sharded dispatch — and
// requires every recorded bit to match the inline run.
func TestShardedDataCenterBitIdenticalAcrossWorkers(t *testing.T) {
	if dc := shardedTestDC(t, sim.NewEngine(1), nil, 512, time.Minute); dc.zoneShards[0] == nil {
		t.Fatal("test facility did not arm the sharded zone scan")
	}
	ref := runShardedDCScenario(t, 1)
	if ref.ScanTripped == 0 {
		t.Fatal("forced trip scan tripped nothing; scenario lost its coverage")
	}
	for _, w := range []int{2, 4} {
		got := runShardedDCScenario(t, w)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d facility trace diverged from serial trace", w)
		}
	}
}

// TestRebaseOncePerSampleRoundSharded pins the MaybeRebase cadence under
// parallel sampling: one count per sample round regardless of how many
// shards the round fanned out to, so the O(N) exact rebase still runs
// every rebaseEvery-th round and no more.
func TestRebaseOncePerSampleRoundSharded(t *testing.T) {
	e := sim.NewEngine(1)
	dc := shardedTestDC(t, e, newTestPool(t, 4), 512, time.Second)
	if _, err := dc.Attach(); err != nil {
		t.Fatal(err)
	}
	r0 := dc.Fleet().Rebases()
	rounds := 2 * rebaseEvery
	if err := e.Run(time.Duration(rounds) * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := dc.Fleet().Rebases() - r0; got != 2 {
		t.Errorf("%d sample rounds triggered %d rebases, want 2 (once per %d rounds)",
			rounds, got, rebaseEvery)
	}
}

// TestRebaseGuardsDuringShardPhase pins the serial-only contract of the
// rebase entry points: recomputing the running sums while per-shard
// accumulators hold unmerged deltas would corrupt them, so both paths
// panic inside a phase, and VerifyAggregates refuses to certify one.
func TestRebaseGuardsDuringShardPhase(t *testing.T) {
	e := sim.NewEngine(1)
	f, err := NewFleet(e, testServerConfig(), parCutoff+1)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s inside a shard phase did not panic", name)
			}
		}()
		fn()
	}
	f.beginShardPhase(f.dispatchShard)
	mustPanic("Rebase", f.Rebase)
	mustPanic("MaybeRebase", f.MaybeRebase)
	if err := f.VerifyAggregates(); err == nil {
		t.Error("VerifyAggregates inside a shard phase did not fail")
	}
	f.endShardPhase()
	f.Rebase() // must be fine again outside the phase
	if err := f.VerifyAggregates(); err != nil {
		t.Errorf("VerifyAggregates after phase end: %v", err)
	}
}

// BenchmarkPhysicsTickParallel measures the sharded per-zone trip scan —
// the physics-tick hot loop — at 1/2/4/8 workers over a 4096-server
// zone. The sub-trip inlet keeps every server active, so iterations are
// steady-state and comparable.
func BenchmarkPhysicsTickParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e := sim.NewEngine(1)
			srvCfg := testServerConfig()
			dc := shardedTestDC(b, e, newTestPool(b, w), 1024, 0)
			f := dc.Fleet()
			f.SetTarget(f.Size())
			if err := e.Run(srvCfg.BootDelay + time.Second); err != nil {
				b.Fatal(err)
			}
			f.Sync(e.Now())
			list, shards := dc.zoneServers[0], dc.zoneShards[0]
			if shards == nil {
				b.Fatal("zone scan not sharded")
			}
			inlet := srvCfg.TripTempC - 5
			now := e.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 10 * time.Second
				if n := dc.scanZoneSharded(now, inlet, list, shards); n != 0 {
					b.Fatalf("unexpected trips: %d", n)
				}
			}
		})
	}
}
