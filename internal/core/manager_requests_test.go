package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// requestsConfig builds a manager config with request-level admission
// control in front of dispatch. interactiveRate is users/second.
func requestsConfig(t *testing.T, mode PolicyMode, fleet, initial int) (ManagerConfig, *workload.Admission) {
	t.Helper()
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pathologyConfig(mode)
	cfg.FleetSize = fleet
	cfg.InitialOn = initial
	cfg.Trigger.Max = fleet
	cfg.Admission = adm
	cfg.ClassDemand = func(now time.Duration) [workload.NumClasses]float64 {
		// 1000 interactive users/s ≈ 20 server-equivalents at the
		// default 20 ms service time, plus light batch/background.
		return [workload.NumClasses]float64{
			workload.ClassInteractive: workload.UsersPerTick(1000, time.Minute),
			workload.ClassBatch:       workload.UsersPerTick(40, time.Minute),
			workload.ClassBackground:  workload.UsersPerTick(100, time.Minute),
		}
	}
	return cfg, adm
}

func TestManagerAdmissionConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	cfg, _ := requestsConfig(t, ModeAlwaysOn, 40, 40)
	cfg.ClassDemand = nil
	if _, err := NewManager(e, cfg, nil); err == nil {
		t.Error("admission without class demand should error")
	}
	cfg2 := pathologyConfig(ModeAlwaysOn)
	cfg2.ClassDemand = func(time.Duration) [workload.NumClasses]float64 { return [workload.NumClasses]float64{} }
	if _, err := NewManager(e, cfg2, nil); err == nil {
		t.Error("class demand without admission should error")
	}
	// With admission wired, the aggregate demand function may be nil.
	cfg3, _ := requestsConfig(t, ModeAlwaysOn, 40, 40)
	if _, err := NewManager(sim.NewEngine(1), cfg3, nil); err != nil {
		t.Errorf("admission-driven manager rejected: %v", err)
	}
}

func TestManagerAdmissionAmpleFleet(t *testing.T) {
	e := sim.NewEngine(1)
	cfg, adm := requestsConfig(t, ModeAlwaysOn, 40, 40)
	m, err := NewManager(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := m.Result(e.Now())
	if res.Users == nil {
		t.Fatal("admission run reported no user outcomes")
	}
	u := res.Users
	if u.Offered <= 0 || u.Admitted <= 0 {
		t.Fatalf("no users flowed: %+v", u)
	}
	got := u.Admitted + u.Rejected + u.DeferredBacklog
	if math.Abs(got-u.Offered) > 1e-6*u.Offered {
		t.Errorf("user conservation broken: admitted %v + rejected %v + backlog %v != offered %v",
			u.Admitted, u.Rejected, u.DeferredBacklog, u.Offered)
	}
	// Boot delay makes the first ticks capacity-less, so some early
	// rejection is physical; once the fleet is up everyone gets in.
	if last := m.LastOutcome(); last.Q != 1 {
		t.Errorf("steady-state Q = %v, want 1 with an ample fleet", last.Q)
	}
	if frac := u.Rejected / u.Offered; frac > 0.15 {
		t.Errorf("rejected fraction %v too high for an ample fleet", frac)
	}
	if m.Admission() != adm {
		t.Error("Admission() accessor lost the controller")
	}
}

func TestManagerAdmissionCrunchRejectsAndDegrades(t *testing.T) {
	e := sim.NewEngine(1)
	cfg, _ := requestsConfig(t, ModeAlwaysOn, 5, 5)
	m, err := NewManager(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := m.Result(e.Now())
	u := res.Users
	if u == nil {
		t.Fatal("no user outcomes")
	}
	// ~20 server-equivalents offered against 5 servers: the fair share
	// floor must shed users and mark the admitted remainder degraded.
	if u.Rejected <= 0 {
		t.Errorf("rejected = %v, want positive under 4x overload", u.Rejected)
	}
	if u.Degraded <= 0 {
		t.Errorf("degraded = %v, want positive at Q < 1", u.Degraded)
	}
	last := m.LastOutcome()
	if last.Q >= 1 {
		t.Errorf("steady-state Q = %v, want < 1 under overload", last.Q)
	}
	if last.Q < m.Admission().Config().Qmin-1e-9 {
		t.Errorf("Q = %v fell below the Qmin floor %v", last.Q, m.Admission().Config().Qmin)
	}
	got := u.Admitted + u.Rejected + u.DeferredBacklog
	if math.Abs(got-u.Offered) > 1e-6*u.Offered {
		t.Errorf("user conservation broken under crunch: %+v", u)
	}
}

func TestManagerAdmissionCoordinatedGrowsOutOfRejection(t *testing.T) {
	// The coordinated planner must size the fleet for the pre-admission
	// demand (what users wanted), not the post-admission trickle — else
	// a capacity crunch is self-sustaining.
	e := sim.NewEngine(1)
	cfg, adm := requestsConfig(t, ModeCoordinated, 40, 2)
	m, err := NewManager(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	last := m.LastOutcome()
	if last.Q != 1 {
		t.Errorf("steady-state Q = %v, want 1 once the planner catches up", last.Q)
	}
	for c := 0; c < workload.NumClasses; c++ {
		if last.Rejected[c] > 0 {
			t.Errorf("class %s still rejecting %v users/tick at steady state",
				workload.Class(c), last.Rejected[c])
		}
	}
	if active := m.Fleet().ActiveCount(); active < 20 {
		t.Errorf("fleet grew to only %d active servers, want >= 20 for ~20 erl of demand", active)
	}
	// Early rejection happened (tiny initial fleet), so totals record it.
	if adm.RejectedUsers() <= 0 {
		t.Error("expected startup rejections with a 2-server initial fleet")
	}
}

func TestDegraderSyncsAdmissionShedLevel(t *testing.T) {
	e := sim.NewEngine(1)
	dc, err := NewDataCenter(e, smallDCConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDegrader(e, dc, DegraderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.SetAdmission(adm)
	if adm.ShedLevel() != 0 {
		t.Fatalf("initial shed level = %d, want 0", adm.ShedLevel())
	}

	// Feed redundancy lost: emergency caps map to ladder level 1
	// (degrade best-effort traffic).
	d.OnNotice(e, fault.Notice{Kind: fault.UtilityOutage, At: e.Now(), Start: true, Index: -1})
	if got := adm.ShedLevel(); got != 1 {
		t.Errorf("shed level under emergency caps = %d, want 1", got)
	}

	// UPS depleted: survival mode keeps only interactive traffic.
	d.OnNotice(e, fault.Notice{Kind: fault.UPSDepleted, At: e.Now(), Start: true, Index: -1})
	if got := adm.ShedLevel(); got != workload.MaxShedLevel {
		t.Errorf("shed level in survival mode = %d, want %d", got, workload.MaxShedLevel)
	}

	// Recovery unwinds: UPS back, then feed back.
	d.OnNotice(e, fault.Notice{Kind: fault.UPSDepleted, At: e.Now(), Start: false, Index: -1})
	if got := adm.ShedLevel(); got != 1 {
		t.Errorf("shed level after UPS recovery = %d, want 1 (caps still on)", got)
	}
	d.OnNotice(e, fault.Notice{Kind: fault.UtilityOutage, At: e.Now(), Start: false, Index: -1})
	if got := adm.ShedLevel(); got != 0 {
		t.Errorf("shed level after full recovery = %d, want 0", got)
	}
	if d.AdmissionShedLevel() != 0 {
		t.Errorf("AdmissionShedLevel = %d, want 0", d.AdmissionShedLevel())
	}
}
