package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/control"
	"repro/internal/dvfs"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/onoff"
	"repro/internal/par"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PolicyMode selects how the manager composes power-management knobs.
type PolicyMode int

// Policy modes. The first three are single-knob baselines; Oblivious is
// the §5.1 hazard (independent DVFS and on/off loops reacting to each
// other's side effects); Coordinated is the MRM fix (one joint decision).
const (
	ModeAlwaysOn PolicyMode = iota + 1
	ModeOnOffOnly
	ModeDVFSOnly
	ModeOblivious
	ModeCoordinated
)

// String renders the mode.
func (m PolicyMode) String() string {
	switch m {
	case ModeAlwaysOn:
		return "always-on"
	case ModeOnOffOnly:
		return "onoff-only"
	case ModeDVFSOnly:
		return "dvfs-only"
	case ModeOblivious:
		return "oblivious"
	case ModeCoordinated:
		return "coordinated"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DemandFunc reports the offered load (capacity units/second) at a
// virtual time.
type DemandFunc func(now time.Duration) float64

// ManagerConfig configures a manager run.
type ManagerConfig struct {
	// ServerConfig is the homogeneous server model.
	ServerConfig server.Config
	// FleetSize is the total number of machines.
	FleetSize int
	// Queue maps utilization to response time.
	Queue workload.QueueModel
	// SLA is the response-time target.
	SLA time.Duration
	// DecisionPeriod is how often the manager acts.
	DecisionPeriod time.Duration
	// Mode selects the policy composition.
	Mode PolicyMode
	// DVFSTarget is the threshold governor's utilization target
	// (ModeDVFSOnly and ModeOblivious).
	DVFSTarget float64
	// Trigger is the naive delay-threshold on/off policy
	// (ModeOnOffOnly and ModeOblivious).
	Trigger onoff.DelayTrigger
	// InitialOn is the starting active count.
	InitialOn int
	// Record enables per-decision sampling for plots.
	Record bool
	// Admission, when set, runs batched request-level admission control
	// ahead of dispatch: each tick the fresh per-class arrivals from
	// ClassDemand are admitted against the active capacity, and only the
	// admitted load (in capacity units) reaches the fleet. Requires
	// ClassDemand; the aggregate demand function may then be nil.
	Admission *workload.Admission
	// ClassDemand reports the fresh per-class user arrivals of the tick
	// ending at now. Required with Admission or Retry, ignored without.
	ClassDemand func(now time.Duration) [workload.NumClasses]float64
	// Retry, when set, runs closed-loop admission: the retry loop (which
	// wraps its own Admission) ticks ahead of dispatch, so rejected and
	// SLO-missed users come back as retry-inflated demand and capacity
	// planning sees what actually hits the front door. Mutually
	// exclusive with Admission; requires ClassDemand.
	Retry *workload.RetryLoop
	// Pool, when non-nil, executes the fleet's sharded per-tick loops
	// (capacity scan, dispatch application) on its workers. Ignored by
	// NewManagerForFleet when the caller's fleet already carries a pool
	// (e.g. one installed by its DataCenter).
	Pool *par.Pool
}

// Validate checks the configuration.
func (c ManagerConfig) Validate() error {
	if err := c.ServerConfig.Validate(); err != nil {
		return err
	}
	if c.FleetSize <= 0 {
		return fmt.Errorf("core: fleet size %d must be positive", c.FleetSize)
	}
	if err := c.Queue.Validate(); err != nil {
		return err
	}
	if c.SLA <= 0 {
		return fmt.Errorf("core: SLA %v must be positive", c.SLA)
	}
	if c.DecisionPeriod <= 0 {
		return fmt.Errorf("core: decision period %v must be positive", c.DecisionPeriod)
	}
	switch c.Mode {
	case ModeAlwaysOn, ModeOnOffOnly, ModeDVFSOnly, ModeOblivious, ModeCoordinated:
	default:
		return fmt.Errorf("core: unknown mode %v", c.Mode)
	}
	if c.Mode == ModeDVFSOnly || c.Mode == ModeOblivious {
		if c.DVFSTarget <= 0 || c.DVFSTarget > 1 {
			return fmt.Errorf("core: DVFS target %v out of (0,1]", c.DVFSTarget)
		}
	}
	if c.Mode == ModeOnOffOnly || c.Mode == ModeOblivious {
		if err := c.Trigger.Validate(); err != nil {
			return err
		}
	}
	if c.InitialOn < 0 || c.InitialOn > c.FleetSize {
		return fmt.Errorf("core: initial on %d out of [0,%d]", c.InitialOn, c.FleetSize)
	}
	if c.Retry != nil && c.Admission != nil {
		return fmt.Errorf("core: Retry already wraps an admission controller; set one of Retry and Admission")
	}
	if (c.Admission != nil || c.Retry != nil) != (c.ClassDemand != nil) {
		return fmt.Errorf("core: admission/retry controller and class demand must be set together")
	}
	return nil
}

// Sample is one recorded decision instant.
type Sample struct {
	At       time.Duration
	Offered  float64
	Active   int
	PState   int
	PowerW   float64
	Response time.Duration
	Dropped  float64
}

// RunResult summarizes a manager run.
type RunResult struct {
	Mode PolicyMode
	// EnergyKWh is the fleet energy over the run.
	EnergyKWh float64
	// SLAViolationRate is the fraction of decisions above the SLA.
	SLAViolationRate float64
	// WorstResponse is the worst observed response.
	WorstResponse time.Duration
	// SwitchOns / SwitchOffs count power transitions (oscillation).
	SwitchOns, SwitchOffs int
	// MeanActive is the average active server count.
	MeanActive float64
	// DroppedFraction is dropped load over offered load.
	DroppedFraction float64
	// Samples holds per-decision detail when recording was enabled.
	Samples []Sample
	// Users summarizes request-level outcomes when the run had an
	// admission controller (nil otherwise). A pointer keeps it out of
	// the reflection-flattened metric set of fluid-only experiments.
	Users *UserOutcomes
}

// UserOutcomes is the user-visible side of a managed run: what happened
// to the people behind the load curve while the power side actuated.
type UserOutcomes struct {
	// Offered is cumulative pool arrivals (retry re-presentations
	// included when a retry loop runs); Admitted, Rejected, and the
	// closing DeferredBacklog partition it.
	Offered, Admitted, Rejected, DeferredBacklog float64
	// Degraded counts admitted users served below full quality.
	Degraded float64
	// SLOMissRate is, per class, the fraction of its active ticks whose
	// Erlang-C expected wait exceeded the class SLO.
	SLOMissRate [workload.NumClasses]float64
	// Fresh, Retried, Abandoned, Goodput, InRetry,
	// RetryAmplification, and BreakerTrips describe the closed loop
	// and are populated only when the run used a retry loop: first
	// arrivals, cumulative retry re-arrivals, users who gave up,
	// completed users (admitted net of SLO re-entries), users still
	// waiting to retry at run end, total attempts over fresh arrivals,
	// and circuit-breaker openings. Fresh == Goodput + Abandoned +
	// InRetry + DeferredBacklog at any instant.
	Fresh, Retried, Abandoned, Goodput, InRetry float64
	RetryAmplification                          float64
	BreakerTrips                                int64
}

// Manager is the closed-loop macro-resource manager over one fleet.
type Manager struct {
	cfg    ManagerConfig
	fleet  *Fleet
	engine *sim.Engine
	demand DemandFunc

	governor *dvfs.Threshold
	joint    *JointOptimizer
	sla      *metrics.SLAAccumulator
	// demandFc forecasts offered load so the coordinated mode can
	// pre-boot servers across the boot delay (capacity ordered now
	// arrives only after BootDelay).
	demandFc  *control.Holt
	lookahead int

	decisions    int64
	activeSum    int64
	offeredTotal float64
	droppedTotal float64
	samples      []Sample
	lastResp     time.Duration
	curPState    int
	lastOut      workload.TickOutcome
	lastROut     workload.RetryOutcome
	// capFactor scales the serving capacity the admission layer sees; a
	// CapacityDip fault notice drops it below 1 until the dip reverts.
	capFactor float64
}

// NewManager builds the manager and its fleet on the engine.
func NewManager(e *sim.Engine, cfg ManagerConfig, demand DemandFunc) (*Manager, error) {
	fleet, err := NewFleet(e, cfg.ServerConfig, cfg.FleetSize)
	if err != nil {
		return nil, err
	}
	return NewManagerForFleet(e, cfg, fleet, demand)
}

// NewManagerForFleet builds the manager over an existing fleet (e.g. one
// assembled inside a DataCenter, so decisions feed the power tree and the
// cooling room). cfg.FleetSize must match the fleet.
func NewManagerForFleet(e *sim.Engine, cfg ManagerConfig, fleet *Fleet, demand DemandFunc) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if demand == nil && cfg.Admission == nil && cfg.Retry == nil {
		return nil, fmt.Errorf("core: nil demand function")
	}
	if fleet == nil || fleet.Size() != cfg.FleetSize {
		return nil, fmt.Errorf("core: fleet size mismatch with config %d", cfg.FleetSize)
	}
	if cfg.Pool != nil && fleet.Pool() == nil {
		fleet.SetParallel(cfg.Pool)
	}
	m := &Manager{cfg: cfg, fleet: fleet, engine: e, demand: demand}
	var err error
	m.sla, err = metrics.NewSLAAccumulator(cfg.SLA)
	if err != nil {
		return nil, err
	}
	if cfg.Mode == ModeDVFSOnly || cfg.Mode == ModeOblivious {
		m.governor, err = dvfs.NewThreshold(cfg.ServerConfig.PStates, cfg.DVFSTarget)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Mode == ModeCoordinated {
		m.joint, err = NewJointOptimizer(cfg.ServerConfig, cfg.Queue, cfg.SLA, cfg.FleetSize)
		if err != nil {
			return nil, err
		}
		m.demandFc, err = control.NewHolt(0.6, 0.3)
		if err != nil {
			return nil, err
		}
		m.lookahead = int(math.Ceil(float64(cfg.ServerConfig.BootDelay)/float64(cfg.DecisionPeriod))) + 1
	}
	m.lastResp = cfg.Queue.ServiceTime
	m.capFactor = 1
	if cfg.Admission != nil {
		// The invariant checker picks the controller up through its
		// Checkable interface: user conservation is scanned with the
		// physical laws.
		e.Register(cfg.Admission)
	}
	if cfg.Retry != nil {
		// Both ledgers ride the checker: the pool's open-loop partition
		// and the closed loop's extended conservation.
		e.Register(cfg.Retry)
		e.Register(cfg.Retry.Admission())
	}
	return m, nil
}

// Fleet exposes the managed fleet.
func (m *Manager) Fleet() *Fleet { return m.fleet }

// Admission exposes the request-level admission controller — the retry
// loop's wrapped pool when the run is closed-loop — or nil when the run
// is fluid-only.
func (m *Manager) Admission() *workload.Admission {
	if m.cfg.Retry != nil {
		return m.cfg.Retry.Admission()
	}
	return m.cfg.Admission
}

// Retry exposes the closed-loop retry controller (nil without one).
func (m *Manager) Retry() *workload.RetryLoop { return m.cfg.Retry }

// LastOutcome reports the most recent admission tick (zero value before
// the first tick or without admission control).
func (m *Manager) LastOutcome() workload.TickOutcome { return m.lastOut }

// LastRetryOutcome reports the most recent closed-loop tick (zero value
// before the first tick or without a retry loop).
func (m *Manager) LastRetryOutcome() workload.RetryOutcome { return m.lastROut }

// SetCapacityFactor scales the serving capacity the admission layer
// sees, clamped to [0,1]. 1 is nominal; a CapacityDip fault drives it
// down. No-op on fluid-only runs (dispatch capacity is unaffected:
// the dip models software serving capacity, not rack power).
func (m *Manager) SetCapacityFactor(f float64) {
	if math.IsNaN(f) || f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	m.capFactor = f
}

// CapacityFactor reports the current serving-capacity scale.
func (m *Manager) CapacityFactor() float64 { return m.capFactor }

// OnNotice is a fault.Listener: subscribe it to an Injector so
// CapacityDip events scale the admission layer's capacity view for the
// dip's duration.
func (m *Manager) OnNotice(e *sim.Engine, n fault.Notice) {
	if n.Kind != fault.CapacityDip {
		return
	}
	if n.Start {
		m.SetCapacityFactor(1 - n.Frac)
	} else {
		m.SetCapacityFactor(1)
	}
}

// Mode reports the policy composition the manager is running.
func (m *Manager) Mode() PolicyMode { return m.cfg.Mode }

// Decisions reports how many decision cycles have run so far.
func (m *Manager) Decisions() int64 { return m.decisions }

// SLAViolationRate reports the running fraction of decisions whose
// observed response exceeded the SLA.
func (m *Manager) SLAViolationRate() float64 { return m.sla.ViolationRate() }

// WorstResponse reports the worst response observed so far.
func (m *Manager) WorstResponse() time.Duration { return m.sla.Worst() }

// PState reports the fleet-wide DVFS operating point last actuated.
func (m *Manager) PState() int { return m.curPState }

// Start boots the initial servers and schedules the decision loop.
func (m *Manager) Start() sim.Cancel {
	m.fleet.SetTarget(m.cfg.InitialOn)
	return m.engine.Every(m.cfg.DecisionPeriod, func(e *sim.Engine) { m.tick(e.Now()) })
}

// tick runs one observe→decide→actuate cycle.
func (m *Manager) tick(now time.Duration) {
	var offered float64
	// planDemand is what capacity planning sees. With admission control
	// it is the pre-admission demand — the controller must plan for the
	// users it had to turn away, or the fleet never grows out of a
	// rejection regime. Without admission it equals offered.
	planDemand := -1.0
	if rl := m.cfg.Retry; rl != nil {
		classes := m.cfg.ClassDemand(now)
		rout := rl.Tick(m.cfg.DecisionPeriod, &classes, float64(m.fleet.ActiveCount())*m.capFactor)
		m.lastROut = rout
		m.lastOut = rout.Pool
		offered = rout.Pool.AdmittedErl * m.cfg.ServerConfig.Capacity
		// Plan on the retry-inflated arrival stream — fresh plus retries
		// plus what the breaker fast-failed — or the fleet never grows
		// out of the storm it is feeding.
		planDemand = rout.OfferedErl * m.cfg.ServerConfig.Capacity
	} else if adm := m.cfg.Admission; adm != nil {
		classes := m.cfg.ClassDemand(now)
		out := adm.Tick(m.cfg.DecisionPeriod, &classes, float64(m.fleet.ActiveCount())*m.capFactor)
		m.lastOut = out
		offered = out.AdmittedErl * m.cfg.ServerConfig.Capacity
		planDemand = out.DemandErl * m.cfg.ServerConfig.Capacity
	} else {
		offered = m.demand(now)
	}
	if offered < 0 {
		offered = 0
	}

	// Observe: dispatch current load over current capacity and measure.
	d, maxU := m.fleet.Dispatch(now, offered)
	resp := m.cfg.Queue.Response(maxU)
	if d.Dropped > 0 {
		resp = m.cfg.Queue.MaxResponse
	}
	m.lastResp = resp
	m.sla.Observe(resp)
	m.decisions++
	m.activeSum += int64(m.fleet.ActiveCount())
	m.offeredTotal += offered
	m.droppedTotal += d.Dropped

	// Decide + actuate.
	switch m.cfg.Mode {
	case ModeAlwaysOn:
		m.fleet.SetTarget(m.cfg.FleetSize)
	case ModeOnOffOnly:
		next := m.cfg.Trigger.Desired(m.fleet.OnCount(), resp)
		m.fleet.SetTarget(next)
	case ModeDVFSOnly:
		m.applyGovernor(now, offered)
	case ModeOblivious:
		// Two independent controllers, each blind to the other — the
		// composition hazard of §5.1.
		next := m.cfg.Trigger.Desired(m.fleet.OnCount(), resp)
		m.fleet.SetTarget(next)
		m.applyGovernor(now, offered)
	case ModeCoordinated:
		// Decide on the worse of current and boot-delay-ahead demand so
		// rising edges find capacity already booted.
		obs := offered
		if planDemand >= 0 {
			obs = planDemand
		}
		m.demandFc.Observe(obs)
		planFor := math.Max(obs, m.demandFc.Forecast(m.lookahead))
		dec := m.joint.Decide(planFor)
		m.fleet.SetTarget(dec.Servers)
		m.setPState(now, dec.PState)
	}

	if m.cfg.Record {
		m.fleet.Sync(now)
		m.samples = append(m.samples, Sample{
			At:       now,
			Offered:  offered,
			Active:   m.fleet.ActiveCount(),
			PState:   m.curPState,
			PowerW:   m.fleet.PowerW(),
			Response: resp,
			Dropped:  d.Dropped,
		})
	}
}

// applyGovernor runs the threshold DVFS governor on the per-server share
// of the offered load.
func (m *Manager) applyGovernor(now time.Duration, offered float64) {
	active := m.fleet.ActiveCount()
	if active == 0 {
		return
	}
	perServer := offered / float64(active)
	idx := m.governor.Decide(perServer, m.cfg.ServerConfig.Capacity)
	m.setPState(now, idx)
}

func (m *Manager) setPState(now time.Duration, idx int) {
	if idx == m.curPState {
		return
	}
	// Fleet-wide homogeneous setting keeps the model simple; per-zone
	// differentiation belongs to the placement layer.
	if err := m.fleet.SetPStateAll(now, idx); err != nil {
		panic(fmt.Sprintf("core: p-state actuation: %v", err)) // indexes are validated at construction
	}
	m.curPState = idx
}

// Result finalizes accounting at now and summarizes the run.
func (m *Manager) Result(now time.Duration) RunResult {
	m.fleet.Sync(now)
	ons, offs := m.fleet.Switches()
	res := RunResult{
		Mode:             m.cfg.Mode,
		EnergyKWh:        m.fleet.EnergyJ() / 3.6e6,
		SLAViolationRate: m.sla.ViolationRate(),
		WorstResponse:    m.sla.Worst(),
		SwitchOns:        ons,
		SwitchOffs:       offs,
		Samples:          m.samples,
	}
	if m.decisions > 0 {
		res.MeanActive = float64(m.activeSum) / float64(m.decisions)
	}
	if m.offeredTotal > 0 {
		res.DroppedFraction = m.droppedTotal / m.offeredTotal
	}
	if adm := m.Admission(); adm != nil {
		u := &UserOutcomes{
			Offered:         adm.OfferedUsers(),
			Admitted:        adm.AdmittedUsers(),
			Rejected:        adm.RejectedUsers(),
			DeferredBacklog: adm.DeferredBacklog(),
			Degraded:        adm.DegradedUsers(),
		}
		for c := 0; c < workload.NumClasses; c++ {
			u.SLOMissRate[c] = adm.SLOMissRate(workload.Class(c))
		}
		if rl := m.cfg.Retry; rl != nil {
			u.Fresh = rl.FreshUsers()
			u.Retried = rl.RetriedUsers()
			u.Abandoned = rl.AbandonedUsers()
			u.Goodput = rl.GoodputUsers()
			u.InRetry = rl.InRetryTotal()
			u.RetryAmplification = rl.RetryAmplification()
			u.BreakerTrips = rl.Trips()
		}
		res.Users = u
	}
	return res
}
