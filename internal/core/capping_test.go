package core

import (
	"testing"

	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
)

// cappedRack builds one rack with n active servers attached and a fleet
// to drive them.
func cappedRack(t *testing.T, e *sim.Engine, n int) (*power.Node, []*server.Server) {
	t.Helper()
	rack, err := power.NewNode("rack", power.KindRack, 10_000, power.DefaultRackLoss)
	if err != nil {
		t.Fatal(err)
	}
	f := bootedFleet(t, e, n, n)
	for _, s := range f.Servers() {
		s := s
		rack.AddLoad(func() float64 { return s.Power() })
	}
	return rack, f.Servers()
}

func TestNewCapEnforcerValidation(t *testing.T) {
	if _, err := NewCapEnforcer(nil, nil); err == nil {
		t.Error("empty enforcer should error")
	}
	e := sim.NewEngine(1)
	rack, servers := cappedRack(t, e, 2)
	if _, err := NewCapEnforcer([]*power.Node{rack}, [][]*server.Server{servers, servers}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestEnforceThrottlesOverCapRack(t *testing.T) {
	e := sim.NewEngine(1)
	rack, servers := cappedRack(t, e, 10)
	now := e.Now()
	for _, s := range servers {
		s.SetUtilization(now, 1) // 10 × 300 W = 3000 W
	}
	rack.SetCap(2500)
	enf, err := NewCapEnforcer([]*power.Node{rack}, [][]*server.Server{servers})
	if err != nil {
		t.Fatal(err)
	}
	if rack.Evaluate().OutW <= 2500 {
		t.Fatal("precondition: rack should be over cap")
	}
	acted := enf.Enforce(now)
	if acted != 1 {
		t.Fatalf("Enforce acted on %d racks, want 1", acted)
	}
	out := rack.Evaluate().OutW
	if out > 2500 {
		t.Errorf("rack draw %v still above cap after enforcement", out)
	}
	if enf.ThrottleEvents() != 1 {
		t.Errorf("throttle events = %d, want 1", enf.ThrottleEvents())
	}
	// Capacity took the hit: throughput is the price of safety.
	for _, s := range servers {
		if s.AvailableCapacity() >= s.Config().Capacity {
			t.Error("server not throttled despite cap enforcement")
		}
	}
}

func TestEnforceRelaxesWhenHeadroomReturns(t *testing.T) {
	e := sim.NewEngine(1)
	rack, servers := cappedRack(t, e, 10)
	now := e.Now()
	for _, s := range servers {
		s.SetUtilization(now, 1)
	}
	rack.SetCap(2500)
	enf, err := NewCapEnforcer([]*power.Node{rack}, [][]*server.Server{servers})
	if err != nil {
		t.Fatal(err)
	}
	enf.Enforce(now)
	throttledCap := servers[0].AvailableCapacity()

	// Load drops: draw falls well under the cap; the enforcer should
	// relax the throttle over subsequent passes.
	for _, s := range servers {
		s.SetUtilization(now, 0.1)
	}
	for i := 0; i < 20; i++ {
		enf.Enforce(now)
	}
	if servers[0].AvailableCapacity() <= throttledCap {
		t.Error("throttle never relaxed despite headroom")
	}
	if enf.RelaxEvents() == 0 {
		t.Error("no relax events recorded")
	}
	// Fully relaxed servers reach nominal capacity again.
	if got := servers[0].AvailableCapacity(); got < servers[0].Config().Capacity*0.99 {
		t.Errorf("capacity %v did not return to nominal", got)
	}
}

func TestEnforceUncappableIdleFloor(t *testing.T) {
	e := sim.NewEngine(1)
	rack, servers := cappedRack(t, e, 10)
	now := e.Now()
	// Idle floor is 10 × 180 = 1800 W; a 1000 W cap cannot be met by
	// throttling.
	rack.SetCap(1000)
	enf, err := NewCapEnforcer([]*power.Node{rack}, [][]*server.Server{servers})
	if err != nil {
		t.Fatal(err)
	}
	enf.Enforce(now)
	if enf.Uncappable() != 1 {
		t.Errorf("uncappable = %d, want 1 (idle floor above cap)", enf.Uncappable())
	}
}

func TestEnforceIgnoresUncappedRacks(t *testing.T) {
	e := sim.NewEngine(1)
	rack, servers := cappedRack(t, e, 4)
	now := e.Now()
	for _, s := range servers {
		s.SetUtilization(now, 1)
	}
	enf, err := NewCapEnforcer([]*power.Node{rack}, [][]*server.Server{servers})
	if err != nil {
		t.Fatal(err)
	}
	if acted := enf.Enforce(now); acted != 0 {
		t.Errorf("Enforce acted on %d uncapped racks", acted)
	}
	for _, s := range servers {
		if s.AvailableCapacity() != s.Config().Capacity {
			t.Error("uncapped rack's server was throttled")
		}
	}
}

func TestEnforceConvergesUnderRepeatedPasses(t *testing.T) {
	// Multiplicative composition must converge, not oscillate: after a
	// few passes at constant load the draw stays under the cap and the
	// duty stabilizes.
	e := sim.NewEngine(1)
	rack, servers := cappedRack(t, e, 10)
	now := e.Now()
	for _, s := range servers {
		s.SetUtilization(now, 1)
	}
	rack.SetCap(2600)
	enf, err := NewCapEnforcer([]*power.Node{rack}, [][]*server.Server{servers})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i := 0; i < 10; i++ {
		enf.Enforce(now)
		out := rack.Evaluate().OutW
		if i > 2 {
			if out > 2600 {
				t.Fatalf("pass %d: draw %v above cap", i, out)
			}
			if prev > 0 && (out > prev*1.1 || out < prev*0.9) {
				t.Fatalf("pass %d: draw oscillating %v -> %v", i, prev, out)
			}
		}
		prev = out
	}
}
