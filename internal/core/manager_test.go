package core

import (
	"testing"
	"time"

	"repro/internal/onoff"
	"repro/internal/sim"
	"repro/internal/workload"
)

// pathologyConfig builds the §5.1 scenario: moderate constant load on a
// fleet large enough for the oblivious composition to run away.
func pathologyConfig(mode PolicyMode) ManagerConfig {
	return ManagerConfig{
		ServerConfig:   testServerConfig(),
		FleetSize:      40,
		Queue:          workload.DefaultQueueModel(), // 20 ms service time
		SLA:            100 * time.Millisecond,
		DecisionPeriod: time.Minute,
		Mode:           mode,
		DVFSTarget:     0.8,
		Trigger: onoff.DelayTrigger{
			High: 60 * time.Millisecond, Low: 25 * time.Millisecond,
			StepUp: 1, StepDown: 1, Min: 1, Max: 40,
		},
		InitialOn: 10,
	}
}

func runMode(t *testing.T, mode PolicyMode, demand DemandFunc, horizon time.Duration) RunResult {
	t.Helper()
	e := sim.NewEngine(42)
	m, err := NewManager(e, pathologyConfig(mode), demand)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return m.Result(horizon)
}

func TestManagerValidation(t *testing.T) {
	demand := func(time.Duration) float64 { return 100 }
	e := sim.NewEngine(1)
	tests := []struct {
		name   string
		mutate func(*ManagerConfig)
	}{
		{"zero fleet", func(c *ManagerConfig) { c.FleetSize = 0 }},
		{"bad server", func(c *ManagerConfig) { c.ServerConfig.PeakPower = 0 }},
		{"bad queue", func(c *ManagerConfig) { c.Queue = workload.QueueModel{} }},
		{"zero sla", func(c *ManagerConfig) { c.SLA = 0 }},
		{"zero period", func(c *ManagerConfig) { c.DecisionPeriod = 0 }},
		{"unknown mode", func(c *ManagerConfig) { c.Mode = PolicyMode(99) }},
		{"bad dvfs target", func(c *ManagerConfig) { c.Mode = ModeDVFSOnly; c.DVFSTarget = 0 }},
		{"bad trigger", func(c *ManagerConfig) { c.Mode = ModeOnOffOnly; c.Trigger = onoff.DelayTrigger{} }},
		{"initial out of range", func(c *ManagerConfig) { c.InitialOn = 999 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := pathologyConfig(ModeCoordinated)
			tt.mutate(&cfg)
			if _, err := NewManager(e, cfg, demand); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if _, err := NewManager(e, pathologyConfig(ModeCoordinated), nil); err == nil {
		t.Error("nil demand should error")
	}
}

func TestObliviousCompositionPathology(t *testing.T) {
	// Paper §5.1 (after [29]): "the composition of power state
	// adjustment and on/off control may actually hurt energy saving
	// goals if performed without coordination … The energy expended on
	// keeping a larger number of machines on may not necessarily be
	// offset by DVS savings."
	const offered = 8_000.0
	demand := func(time.Duration) float64 { return offered }
	const horizon = 6 * time.Hour

	alwaysOn := runMode(t, ModeAlwaysOn, demand, horizon)
	onOffOnly := runMode(t, ModeOnOffOnly, demand, horizon)
	dvfsOnly := runMode(t, ModeDVFSOnly, demand, horizon)
	oblivious := runMode(t, ModeOblivious, demand, horizon)
	coordinated := runMode(t, ModeCoordinated, demand, horizon)

	// The oblivious composition spends MORE energy than either policy
	// alone — the headline pathology.
	if oblivious.EnergyKWh <= onOffOnly.EnergyKWh {
		t.Errorf("oblivious %.2f kWh not above on/off-only %.2f kWh",
			oblivious.EnergyKWh, onOffOnly.EnergyKWh)
	}
	if oblivious.EnergyKWh <= dvfsOnly.EnergyKWh {
		t.Errorf("oblivious %.2f kWh not above DVFS-only %.2f kWh",
			oblivious.EnergyKWh, dvfsOnly.EnergyKWh)
	}
	// Coordination restores the savings: no worse than every
	// alternative.
	for _, r := range []RunResult{alwaysOn, onOffOnly, dvfsOnly, oblivious} {
		if coordinated.EnergyKWh > r.EnergyKWh+1e-9 {
			t.Errorf("coordinated %.2f kWh above %v %.2f kWh",
				coordinated.EnergyKWh, r.Mode, r.EnergyKWh)
		}
	}
	// The oblivious loop turned on far more machines than coordination.
	if oblivious.SwitchOns <= coordinated.SwitchOns {
		t.Errorf("oblivious switch-ons %d not above coordinated %d",
			oblivious.SwitchOns, coordinated.SwitchOns)
	}
	if oblivious.MeanActive <= coordinated.MeanActive {
		t.Errorf("oblivious mean active %.1f not above coordinated %.1f",
			oblivious.MeanActive, coordinated.MeanActive)
	}
	// Everyone still held the SLA at steady moderate load (the waste is
	// energy, not user experience).
	for _, r := range []RunResult{coordinated, oblivious, onOffOnly, dvfsOnly, alwaysOn} {
		if r.SLAViolationRate > 0.1 {
			t.Errorf("%v SLA violation rate %.2f too high", r.Mode, r.SLAViolationRate)
		}
		if r.DroppedFraction > 0.01 {
			t.Errorf("%v dropped %.3f of load", r.Mode, r.DroppedFraction)
		}
	}
	// Always-on burns the most energy of all.
	if alwaysOn.EnergyKWh <= oblivious.EnergyKWh {
		t.Errorf("always-on %.2f kWh not above oblivious %.2f kWh",
			alwaysOn.EnergyKWh, oblivious.EnergyKWh)
	}
}

func TestCoordinatedTracksElasticDemand(t *testing.T) {
	// Diurnal demand: the coordinated manager should scale the active
	// count down at night and up in the day while holding the SLA.
	demand := func(now time.Duration) float64 {
		h := now.Hours() - 24*float64(int(now.Hours()/24))
		base := 3_000.0
		if h >= 9 && h < 18 {
			base = 15_000
		}
		return base
	}
	e := sim.NewEngine(7)
	cfg := pathologyConfig(ModeCoordinated)
	cfg.Record = true
	m, err := NewManager(e, cfg, demand)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(48 * time.Hour); err != nil {
		t.Fatal(err)
	}
	res := m.Result(48 * time.Hour)
	if res.SLAViolationRate > 0.05 {
		t.Errorf("violation rate %.3f under elastic tracking", res.SLAViolationRate)
	}
	// Find day and night actives from the samples.
	var dayActive, nightActive, dayN, nightN float64
	for _, s := range res.Samples {
		h := s.At.Hours() - 24*float64(int(s.At.Hours()/24))
		if h >= 10 && h < 17 {
			dayActive += float64(s.Active)
			dayN++
		}
		if h >= 1 && h < 8 {
			nightActive += float64(s.Active)
			nightN++
		}
	}
	if dayN == 0 || nightN == 0 {
		t.Fatal("no samples recorded")
	}
	day := dayActive / dayN
	night := nightActive / nightN
	if day <= 1.5*night {
		t.Errorf("daytime fleet %.1f not well above nighttime %.1f", day, night)
	}
}

func TestManagerRecording(t *testing.T) {
	demand := func(time.Duration) float64 { return 1000 }
	e := sim.NewEngine(1)
	cfg := pathologyConfig(ModeCoordinated)
	cfg.Record = true
	m, err := NewManager(e, cfg, demand)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	res := m.Result(time.Hour)
	if len(res.Samples) != 60 {
		t.Errorf("samples = %d, want 60 (one per minute)", len(res.Samples))
	}
	for _, s := range res.Samples {
		if s.PowerW < 0 || s.Active < 0 || s.Offered != 1000 {
			t.Errorf("bad sample %+v", s)
		}
	}
}

func TestPolicyModeString(t *testing.T) {
	for m, want := range map[PolicyMode]string{
		ModeAlwaysOn: "always-on", ModeOnOffOnly: "onoff-only",
		ModeDVFSOnly: "dvfs-only", ModeOblivious: "oblivious",
		ModeCoordinated: "coordinated", PolicyMode(9): "mode(9)",
	} {
		if m.String() != want {
			t.Errorf("mode %d = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestNegativeDemandClamped(t *testing.T) {
	e := sim.NewEngine(1)
	m, err := NewManager(e, pathologyConfig(ModeCoordinated), func(time.Duration) float64 { return -500 })
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	res := m.Result(time.Hour)
	if res.DroppedFraction != 0 {
		t.Errorf("dropped fraction %v for negative demand", res.DroppedFraction)
	}
}
