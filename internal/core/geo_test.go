package core

import (
	"math"
	"testing"
	"time"
)

func testSites() []Site {
	return []Site{
		{Name: "chiller-south", CapacityUnits: 1000, MarginalPUE: 1.9, WattsPerUnit: 0.3, Latency: 30 * time.Millisecond},
		{Name: "econo-north", CapacityUnits: 800, MarginalPUE: 1.2, WattsPerUnit: 0.3, Latency: 60 * time.Millisecond},
		{Name: "far-arctic", CapacityUnits: 5000, MarginalPUE: 1.1, WattsPerUnit: 0.3, Latency: 250 * time.Millisecond},
	}
}

func TestGeoRoutePrefersEfficientSites(t *testing.T) {
	allocs, totalPower, unplaced, err := GeoRoute(1000, testSites(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if unplaced != 0 {
		t.Errorf("unplaced = %v", unplaced)
	}
	// The arctic site is out of latency bounds; the economized northern
	// site fills first, the chiller site takes the remainder.
	if len(allocs) != 2 {
		t.Fatalf("allocations = %+v", allocs)
	}
	if allocs[0].Site != "econo-north" || allocs[0].Units != 800 {
		t.Errorf("first allocation = %+v, want econo-north at capacity", allocs[0])
	}
	if allocs[1].Site != "chiller-south" || allocs[1].Units != 200 {
		t.Errorf("second allocation = %+v, want chiller-south 200", allocs[1])
	}
	want := 800*0.3*1.2 + 200*0.3*1.9
	if math.Abs(totalPower-want) > 1e-9 {
		t.Errorf("total power = %v, want %v", totalPower, want)
	}
}

func TestGeoRouteLatencyBoundRelaxed(t *testing.T) {
	// Without a latency bound the arctic site absorbs everything.
	allocs, _, unplaced, err := GeoRoute(1000, testSites(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if unplaced != 0 {
		t.Errorf("unplaced = %v", unplaced)
	}
	if allocs[0].Site != "far-arctic" || allocs[0].Units != 1000 {
		t.Errorf("allocation = %+v, want far-arctic taking all", allocs[0])
	}
}

func TestGeoRouteOverflow(t *testing.T) {
	_, _, unplaced, err := GeoRoute(10_000, testSites(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if unplaced != 10_000-1800 {
		t.Errorf("unplaced = %v, want %v", unplaced, 10_000-1800)
	}
}

func TestGeoRouteValidation(t *testing.T) {
	if _, _, _, err := GeoRoute(-1, testSites(), 0); err == nil {
		t.Error("negative demand should error")
	}
	if _, _, _, err := GeoRoute(100, nil, 0); err == nil {
		t.Error("no sites should error")
	}
	bad := testSites()
	bad[0].MarginalPUE = 0.5
	if _, _, _, err := GeoRoute(100, bad, 0); err == nil {
		t.Error("PUE < 1 should error")
	}
	bad = testSites()
	bad[0].Name = ""
	if _, _, _, err := GeoRoute(100, bad, 0); err == nil {
		t.Error("unnamed site should error")
	}
	bad = testSites()
	bad[0].WattsPerUnit = 0
	if _, _, _, err := GeoRoute(100, bad, 0); err == nil {
		t.Error("zero watts/unit should error")
	}
	bad = testSites()
	bad[0].CapacityUnits = -1
	if _, _, _, err := GeoRoute(100, bad, 0); err == nil {
		t.Error("negative capacity should error")
	}
	bad = testSites()
	bad[0].Latency = -time.Second
	if _, _, _, err := GeoRoute(100, bad, 0); err == nil {
		t.Error("negative latency should error")
	}
}

func TestGeoRouteZeroDemand(t *testing.T) {
	allocs, power, unplaced, err := GeoRoute(0, testSites(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 0 || power != 0 || unplaced != 0 {
		t.Errorf("zero demand: %v, %v, %v", allocs, power, unplaced)
	}
}
