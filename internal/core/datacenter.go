package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cooling"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// DataCenterConfig assembles a complete facility: a server fleet placed
// into the power tree's racks, racks mapped onto cooling zones, a
// heat-rejection plant, and optional telemetry collection.
type DataCenterConfig struct {
	// Name identifies the facility.
	Name string
	// ServerConfig is the homogeneous server model.
	ServerConfig server.Config
	// ServersPerRack places this many servers in each rack of the
	// power topology.
	ServersPerRack int
	// Topology shapes the power tree.
	Topology power.TopologyConfig
	// Room shapes the thermal model. len(Room.Zones) zones.
	Room cooling.RoomConfig
	// ZoneOfRack maps each rack index to a cooling zone.
	ZoneOfRack []int
	// Plant is the heat-rejection plant.
	Plant cooling.PlantConfig
	// SampleEvery enables telemetry collection at this period (0
	// disables; the paper's scenario samples every 15 s).
	SampleEvery time.Duration
	// Pool, when non-nil, executes the facility's sharded per-tick loops
	// (physics trip scans, dispatch, frame sampling) on its workers. Nil
	// runs the same sharded structure inline; results are identical.
	Pool *par.Pool
}

// DataCenter is the assembled cyber-physical facility of Figure 4's
// bottom half: computing fleet, power distribution, and cooling coupled
// through heat and protected by thermal trips, with telemetry feeding the
// macro layer.
type DataCenter struct {
	cfg    DataCenterConfig
	engine *sim.Engine
	fleet  *Fleet
	topo   *power.Topology
	room   *cooling.Room
	store  *telemetry.Store
	// The per-entity series form one synchronously-sampled frame: server
	// i's power and utilization occupy columns 2i and 2i+1, the zone
	// inlets follow. A sample round fills frameBuf and hands the store
	// one columnar append — no per-key locking, hashing, or pyramid
	// walks (the §5.3 ingest fast path).
	frames   *telemetry.FrameWriter
	frameBuf []float64
	rackOf   []int // server index -> rack index
	zoneOf   []int // server index -> zone index
	// zoneServers lists server indexes per zone (rebuilt on reorder), so
	// zone-scoped control loops avoid O(N) scans.
	zoneServers [][]int
	// zoneMinTripC is the lowest protective-trip threshold in each zone:
	// the physics tick only walks a zone's servers when its inlet exceeds
	// this, keeping the steady-state tick O(zones) instead of O(servers)
	// while preserving exact trip semantics.
	zoneMinTripC []float64
	// Sharded physics-scan machinery (armed only for zones larger than
	// parCutoff, which implies a sharded fleet): per-zone shard lists over
	// the zone's server index, a slot → shard routing map covering every
	// zone, and padded per-shard trip counters so concurrent shards never
	// bounce a cache line while counting.
	zoneShards [][]par.Range
	physRoute  []int32
	tripCnt    []padCount
	tripped    int
	cancels    []sim.Cancel
	attached   bool
}

// padCount is an int64 counter padded to a full cache line, for slabs of
// per-shard counters written concurrently.
type padCount struct {
	v int64
	_ [56]byte
}

// NewDataCenter builds and wires the facility.
func NewDataCenter(e *sim.Engine, cfg DataCenterConfig) (*DataCenter, error) {
	if cfg.ServersPerRack <= 0 {
		return nil, fmt.Errorf("core: servers per rack %d must be positive", cfg.ServersPerRack)
	}
	topo, err := power.NewTopology(cfg.Topology)
	if err != nil {
		return nil, err
	}
	room, err := cooling.NewRoom(cfg.Room)
	if err != nil {
		return nil, err
	}
	if err := cfg.Plant.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.ZoneOfRack) != len(topo.Racks) {
		return nil, fmt.Errorf("core: ZoneOfRack has %d entries for %d racks", len(cfg.ZoneOfRack), len(topo.Racks))
	}
	for ri, z := range cfg.ZoneOfRack {
		if z < 0 || z >= room.Zones() {
			return nil, fmt.Errorf("core: rack %d mapped to invalid zone %d", ri, z)
		}
	}
	if cfg.SampleEvery < 0 {
		return nil, fmt.Errorf("core: negative sample period")
	}

	nServers := len(topo.Racks) * cfg.ServersPerRack
	fleet, err := NewFleet(e, cfg.ServerConfig, nServers)
	if err != nil {
		return nil, err
	}
	fleet.SetParallel(cfg.Pool)
	dc := &DataCenter{
		cfg:    cfg,
		engine: e,
		fleet:  fleet,
		topo:   topo,
		room:   room,
		rackOf: make([]int, nServers),
		zoneOf: make([]int, nServers),
	}
	for i := range fleet.Servers() {
		rack := i / cfg.ServersPerRack
		dc.rackOf[i] = rack
		dc.zoneOf[i] = cfg.ZoneOfRack[rack]
	}
	// One load closure per rack reading the fleet's maintained per-rack
	// sum — the power tree no longer fans out to N per-server closures.
	if err := fleet.SetPowerGroups(dc.rackOf, dc.zoneOf, len(topo.Racks), room.Zones()); err != nil {
		return nil, err
	}
	for r := range topo.Racks {
		r := r // capture for the load closure
		topo.Racks[r].AddLoad(func() float64 { return fleet.RackPowerW(r) })
	}
	dc.rebuildZoneIndex()
	e.Register(topo)
	if cfg.SampleEvery > 0 {
		dc.store, err = telemetry.NewStore(telemetry.DefaultConfig())
		if err != nil {
			return nil, err
		}
		keys := make([]string, 0, 2*nServers+room.Zones())
		for i := 0; i < nServers; i++ {
			keys = append(keys, fmt.Sprintf("srv%04d/power", i), fmt.Sprintf("srv%04d/util", i))
		}
		for z := 0; z < room.Zones(); z++ {
			keys = append(keys, fmt.Sprintf("zone%02d/inlet", z))
		}
		dc.frames, err = dc.store.Frames(keys)
		if err != nil {
			return nil, err
		}
		dc.frameBuf = par.AlignedFloats(len(keys))
	}
	return dc, nil
}

// Fleet exposes the server fleet.
func (dc *DataCenter) Fleet() *Fleet { return dc.fleet }

// Room exposes the thermal model.
func (dc *DataCenter) Room() *cooling.Room { return dc.room }

// Topology exposes the power tree.
func (dc *DataCenter) Topology() *power.Topology { return dc.topo }

// Store exposes the telemetry store (nil unless sampling was enabled).
func (dc *DataCenter) Store() *telemetry.Store { return dc.store }

// Frames exposes the facility's columnar telemetry frame (nil unless
// sampling was enabled). Column layout: server i's power and utilization
// occupy columns 2i and 2i+1; zone z's inlet temperature is column
// 2*Fleet().Size()+z (see ZoneInletColumn). Live exporters read the
// open row through FrameWriter.LatestInto instead of re-aggregating.
func (dc *DataCenter) Frames() *telemetry.FrameWriter { return dc.frames }

// ZoneInletColumn reports the frame column holding zone z's inlet
// temperature.
func (dc *DataCenter) ZoneInletColumn(z int) int { return 2*dc.fleet.Size() + z }

// SampleEvery reports the telemetry sampling period (0 when disabled).
func (dc *DataCenter) SampleEvery() time.Duration { return dc.cfg.SampleEvery }

// ZoneOfServer reports the cooling zone of server i.
func (dc *DataCenter) ZoneOfServer(i int) int { return dc.zoneOf[i] }

// RackOfServer reports the power-tree rack of server i (indices track the
// fleet's current activation order).
func (dc *DataCenter) RackOfServer(i int) int { return dc.rackOf[i] }

// ServersInZone returns the indexes of servers in zone z. The slice is
// the data center's precomputed index (rebuilt on reorder): do not
// mutate.
func (dc *DataCenter) ServersInZone(z int) []int { return dc.zoneServers[z] }

// rebuildZoneIndex recomputes the zone→servers index and per-zone
// minimum trip thresholds from the current order-indexed zone map, and —
// for zones big enough to shard — the per-zone shard lists plus the
// slot-level routing map the sharded trip scan folds its deltas through.
func (dc *DataCenter) rebuildZoneIndex() {
	if dc.zoneServers == nil {
		dc.zoneServers = make([][]int, dc.room.Zones())
		dc.zoneMinTripC = make([]float64, dc.room.Zones())
		dc.zoneShards = make([][]par.Range, dc.room.Zones())
	}
	for z := range dc.zoneServers {
		dc.zoneServers[z] = dc.zoneServers[z][:0]
		dc.zoneMinTripC[z] = math.Inf(1)
		dc.zoneShards[z] = nil
	}
	servers := dc.fleet.Servers()
	for i, z := range dc.zoneOf {
		dc.zoneServers[z] = append(dc.zoneServers[z], i)
		if t := servers[i].Config().TripTempC; t < dc.zoneMinTripC[z] {
			dc.zoneMinTripC[z] = t
		}
	}
	for z, list := range dc.zoneServers {
		// The shard/serial choice depends only on the zone's size, so the
		// scan's float grouping — and therefore every downstream bit — is
		// the same for every worker count. A zone above the cutoff implies
		// the fleet is above it too, so the fleet's routing plumbing exists.
		if len(list) <= parCutoff {
			continue
		}
		dc.zoneShards[z] = par.Shards(len(list))
		if dc.physRoute == nil {
			dc.physRoute = make([]int32, dc.fleet.Size())
			dc.tripCnt = make([]padCount, par.MaxShards)
		}
		for sh, r := range dc.zoneShards[z] {
			for k := r.Lo; k < r.Hi; k++ {
				dc.physRoute[dc.fleet.slotOfPos[list[k]]] = int32(sh)
			}
		}
	}
}

// Attach wires the facility onto the engine: room physics and CRAC
// control, the heat/thermal-protection coupling loop, and telemetry
// sampling. Idempotent per instance.
func (dc *DataCenter) Attach() (sim.Cancel, error) {
	if dc.attached {
		return nil, fmt.Errorf("core: data center already attached")
	}
	dc.attached = true
	dc.cancels = append(dc.cancels, dc.room.Attach(dc.engine))

	// Couple servers ↔ room on the physics tick: zone heat in, inlet
	// temperatures (and protective trips, §2.2) out. Zone heat comes from
	// the fleet's maintained per-zone sums and the trip scan only enters
	// zones whose inlet exceeds the zone's lowest trip threshold, so the
	// steady-state tick is O(zones), not O(servers).
	dc.cancels = append(dc.cancels, dc.engine.Every(dc.room.PhysicsTick(), func(e *sim.Engine) {
		now := e.Now()
		servers := dc.fleet.Servers()
		for z := 0; z < dc.room.Zones(); z++ {
			if err := dc.room.SetZoneHeat(z, dc.fleet.ZonePowerW(z)); err != nil {
				panic(fmt.Sprintf("core: zone heat: %v", err)) // zones validated at construction
			}
		}
		for z := range dc.zoneServers {
			inlet := dc.room.ZoneInletC(z)
			if inlet <= dc.zoneMinTripC[z] {
				continue
			}
			if shards := dc.zoneShards[z]; shards != nil {
				dc.tripped += dc.scanZoneSharded(now, inlet, dc.zoneServers[z], shards)
				continue
			}
			for _, i := range dc.zoneServers[z] {
				if servers[i].ObserveInlet(now, inlet) {
					dc.tripped++
				}
			}
		}
	}))

	if dc.store != nil {
		dc.cancels = append(dc.cancels, dc.engine.Every(dc.cfg.SampleEvery, func(e *sim.Engine) {
			dc.sample(e.Now())
		}))
	}
	return func() {
		for _, c := range dc.cancels {
			c()
		}
	}, nil
}

// scanZoneSharded is the trip scan for one hot zone, fanned out over the
// zone's shard list. ObserveInlet advances each server and may trip it;
// the resulting power/energy/state deltas route to per-shard
// accumulators (merged in shard order at endShardPhase), and each shard
// counts its trips into a padded counter folded serially afterwards.
func (dc *DataCenter) scanZoneSharded(now time.Duration, inlet float64, list []int, shards []par.Range) int {
	f := dc.fleet
	servers := f.servers
	f.beginShardPhase(dc.physRoute)
	f.pool.RunRanges(shards, func(sh int, r par.Range) {
		var n int64
		for k := r.Lo; k < r.Hi; k++ {
			if servers[list[k]].ObserveInlet(now, inlet) {
				n++
			}
		}
		dc.tripCnt[sh].v = n
	})
	f.endShardPhase()
	total := 0
	for sh := range shards {
		total += int(dc.tripCnt[sh].v)
		dc.tripCnt[sh].v = 0
	}
	return total
}

// sample pushes one telemetry round into the store as a single columnar
// frame append. Power is piecewise-constant between events, so no
// per-server Sync is needed to read it; the fleet's running sums are
// rebased here periodically to shed incremental float drift. On sharded
// fleets the per-server columns fill in parallel — pure slot-local reads
// into disjoint frame columns, so the frame is identical to the serial
// fill — and the columnar fold inside AppendPar fans out per column.
// MaybeRebase stays strictly serial, once per round, after the append.
func (dc *DataCenter) sample(now time.Duration) {
	servers := dc.fleet.Servers()
	f := dc.fleet
	if f.shards != nil {
		f.pool.RunRanges(f.shards, func(_ int, r par.Range) {
			for i := r.Lo; i < r.Hi; i++ {
				s := servers[i]
				dc.frameBuf[2*i] = s.Power()
				dc.frameBuf[2*i+1] = s.Utilization()
			}
		})
	} else {
		for i, s := range servers {
			dc.frameBuf[2*i] = s.Power()
			dc.frameBuf[2*i+1] = s.Utilization()
		}
	}
	base := 2 * len(servers)
	for z := 0; z < dc.room.Zones(); z++ {
		dc.frameBuf[base+z] = dc.room.ZoneInletC(z)
	}
	if err := dc.frames.AppendPar(now, dc.frameBuf, f.pool); err != nil {
		panic(fmt.Sprintf("core: telemetry: %v", err)) // single writer, monotone time
	}
	dc.fleet.MaybeRebase()
}

// PreferCoolingSensitiveZones reorders the fleet so servers in zones the
// CRACs regulate well activate first and shed last — the mechanism behind
// avoiding the §5.1 migration hazard (keep load where the cooling can see
// it). Call before the manager starts.
func (dc *DataCenter) PreferCoolingSensitiveZones() error {
	idx := make([]int, dc.fleet.Size())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return dc.room.ZoneSensitivity(dc.zoneOf[idx[a]]) >
			dc.room.ZoneSensitivity(dc.zoneOf[idx[b]])
	})
	if err := dc.fleet.Reorder(idx); err != nil {
		return err
	}
	zoneOf := make([]int, len(dc.zoneOf))
	rackOf := make([]int, len(dc.rackOf))
	for i, p := range idx {
		zoneOf[i] = dc.zoneOf[p]
		rackOf[i] = dc.rackOf[p]
	}
	dc.zoneOf, dc.rackOf = zoneOf, rackOf
	dc.rebuildZoneIndex()
	return nil
}

// Trips reports protective shutdowns observed through the coupling loop.
func (dc *DataCenter) Trips() int { return dc.tripped }

// ITPowerW reports the instantaneous fleet draw.
func (dc *DataCenter) ITPowerW() float64 { return dc.fleet.PowerW() }

// Flow evaluates the power tree.
func (dc *DataCenter) Flow() power.Flow { return dc.topo.Feed.Evaluate() }

// PUEAt computes the facility PUE under the given outside conditions:
// IT power from the fleet, distribution losses from the tree, plant power
// for removing the room's current cooling load.
func (dc *DataCenter) PUEAt(outsideC, outsideRH float64) (float64, cooling.PlantPower, error) {
	it := dc.ITPowerW()
	flow := dc.Flow()
	plant, err := dc.cfg.Plant.Power(dc.room.CoolingLoadW(), outsideC, outsideRH)
	if err != nil {
		return 0, plant, err
	}
	pue, err := cooling.PUE(it, flow.TotalLoss(), plant.TotalW())
	return pue, plant, err
}
