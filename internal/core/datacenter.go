package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cooling"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// DataCenterConfig assembles a complete facility: a server fleet placed
// into the power tree's racks, racks mapped onto cooling zones, a
// heat-rejection plant, and optional telemetry collection.
type DataCenterConfig struct {
	// Name identifies the facility.
	Name string
	// ServerConfig is the homogeneous server model.
	ServerConfig server.Config
	// ServersPerRack places this many servers in each rack of the
	// power topology.
	ServersPerRack int
	// Topology shapes the power tree.
	Topology power.TopologyConfig
	// Room shapes the thermal model. len(Room.Zones) zones.
	Room cooling.RoomConfig
	// ZoneOfRack maps each rack index to a cooling zone.
	ZoneOfRack []int
	// Plant is the heat-rejection plant.
	Plant cooling.PlantConfig
	// SampleEvery enables telemetry collection at this period (0
	// disables; the paper's scenario samples every 15 s).
	SampleEvery time.Duration
}

// DataCenter is the assembled cyber-physical facility of Figure 4's
// bottom half: computing fleet, power distribution, and cooling coupled
// through heat and protected by thermal trips, with telemetry feeding the
// macro layer.
type DataCenter struct {
	cfg    DataCenterConfig
	engine *sim.Engine
	fleet  *Fleet
	topo   *power.Topology
	room   *cooling.Room
	store  *telemetry.Store
	// Interned per-entity telemetry handles: keys are formatted and
	// resolved once at construction, so a sample round does no string
	// building, hashing, or map lookups (the §5.3 ingest fast path).
	powerApp []*telemetry.Appender
	utilApp  []*telemetry.Appender
	inletApp []*telemetry.Appender
	// heatScratch is the physics tick's per-zone accumulator, reused
	// across ticks (the engine is single-threaded).
	heatScratch []float64
	rackOf      []int // server index -> rack index
	zoneOf      []int // server index -> zone index
	tripped     int
	cancels     []sim.Cancel
	attached    bool
}

// NewDataCenter builds and wires the facility.
func NewDataCenter(e *sim.Engine, cfg DataCenterConfig) (*DataCenter, error) {
	if cfg.ServersPerRack <= 0 {
		return nil, fmt.Errorf("core: servers per rack %d must be positive", cfg.ServersPerRack)
	}
	topo, err := power.NewTopology(cfg.Topology)
	if err != nil {
		return nil, err
	}
	room, err := cooling.NewRoom(cfg.Room)
	if err != nil {
		return nil, err
	}
	if err := cfg.Plant.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.ZoneOfRack) != len(topo.Racks) {
		return nil, fmt.Errorf("core: ZoneOfRack has %d entries for %d racks", len(cfg.ZoneOfRack), len(topo.Racks))
	}
	for ri, z := range cfg.ZoneOfRack {
		if z < 0 || z >= room.Zones() {
			return nil, fmt.Errorf("core: rack %d mapped to invalid zone %d", ri, z)
		}
	}
	if cfg.SampleEvery < 0 {
		return nil, fmt.Errorf("core: negative sample period")
	}

	nServers := len(topo.Racks) * cfg.ServersPerRack
	fleet, err := NewFleet(e, cfg.ServerConfig, nServers)
	if err != nil {
		return nil, err
	}
	dc := &DataCenter{
		cfg:    cfg,
		engine: e,
		fleet:  fleet,
		topo:   topo,
		room:   room,
		rackOf: make([]int, nServers),
		zoneOf: make([]int, nServers),
	}
	for i, s := range fleet.Servers() {
		rack := i / cfg.ServersPerRack
		dc.rackOf[i] = rack
		dc.zoneOf[i] = cfg.ZoneOfRack[rack]
		s := s // capture for the load closure
		topo.Racks[rack].AddLoad(func() float64 { return s.Power() })
	}
	e.Register(topo)
	if cfg.SampleEvery > 0 {
		dc.store, err = telemetry.NewStore(telemetry.DefaultConfig())
		if err != nil {
			return nil, err
		}
		dc.powerApp = make([]*telemetry.Appender, nServers)
		dc.utilApp = make([]*telemetry.Appender, nServers)
		for i := 0; i < nServers; i++ {
			dc.powerApp[i] = dc.store.Appender(fmt.Sprintf("srv%04d/power", i))
			dc.utilApp[i] = dc.store.Appender(fmt.Sprintf("srv%04d/util", i))
		}
		dc.inletApp = make([]*telemetry.Appender, room.Zones())
		for z := range dc.inletApp {
			dc.inletApp[z] = dc.store.Appender(fmt.Sprintf("zone%02d/inlet", z))
		}
	}
	return dc, nil
}

// Fleet exposes the server fleet.
func (dc *DataCenter) Fleet() *Fleet { return dc.fleet }

// Room exposes the thermal model.
func (dc *DataCenter) Room() *cooling.Room { return dc.room }

// Topology exposes the power tree.
func (dc *DataCenter) Topology() *power.Topology { return dc.topo }

// Store exposes the telemetry store (nil unless sampling was enabled).
func (dc *DataCenter) Store() *telemetry.Store { return dc.store }

// ZoneOfServer reports the cooling zone of server i.
func (dc *DataCenter) ZoneOfServer(i int) int { return dc.zoneOf[i] }

// RackOfServer reports the power-tree rack of server i (indices track the
// fleet's current activation order).
func (dc *DataCenter) RackOfServer(i int) int { return dc.rackOf[i] }

// ServersInZone returns the indexes of servers in zone z.
func (dc *DataCenter) ServersInZone(z int) []int {
	var out []int
	for i, zz := range dc.zoneOf {
		if zz == z {
			out = append(out, i)
		}
	}
	return out
}

// Attach wires the facility onto the engine: room physics and CRAC
// control, the heat/thermal-protection coupling loop, and telemetry
// sampling. Idempotent per instance.
func (dc *DataCenter) Attach() (sim.Cancel, error) {
	if dc.attached {
		return nil, fmt.Errorf("core: data center already attached")
	}
	dc.attached = true
	dc.cancels = append(dc.cancels, dc.room.Attach(dc.engine))

	// Couple servers ↔ room on the physics tick: zone heat in, inlet
	// temperatures (and protective trips, §2.2) out.
	dc.cancels = append(dc.cancels, dc.engine.Every(dc.room.PhysicsTick(), func(e *sim.Engine) {
		now := e.Now()
		if dc.heatScratch == nil {
			dc.heatScratch = make([]float64, dc.room.Zones())
		}
		heat := dc.heatScratch
		for z := range heat {
			heat[z] = 0
		}
		for i, s := range dc.fleet.Servers() {
			s.Sync(now)
			heat[dc.zoneOf[i]] += s.Power()
		}
		for z, h := range heat {
			if err := dc.room.SetZoneHeat(z, h); err != nil {
				panic(fmt.Sprintf("core: zone heat: %v", err)) // zones validated at construction
			}
		}
		for i, s := range dc.fleet.Servers() {
			if s.ObserveInlet(now, dc.room.ZoneInletC(dc.zoneOf[i])) {
				dc.tripped++
			}
		}
	}))

	if dc.store != nil {
		dc.cancels = append(dc.cancels, dc.engine.Every(dc.cfg.SampleEvery, func(e *sim.Engine) {
			dc.sample(e.Now())
		}))
	}
	return func() {
		for _, c := range dc.cancels {
			c()
		}
	}, nil
}

// sample pushes one telemetry round into the store through the interned
// per-entity handles.
func (dc *DataCenter) sample(now time.Duration) {
	for i, s := range dc.fleet.Servers() {
		s.Sync(now)
		if err := dc.powerApp[i].Append(now, s.Power()); err != nil {
			panic(fmt.Sprintf("core: telemetry: %v", err)) // single writer, monotone time
		}
		if err := dc.utilApp[i].Append(now, s.Utilization()); err != nil {
			panic(fmt.Sprintf("core: telemetry: %v", err))
		}
	}
	for z, a := range dc.inletApp {
		if err := a.Append(now, dc.room.ZoneInletC(z)); err != nil {
			panic(fmt.Sprintf("core: telemetry: %v", err))
		}
	}
}

// PreferCoolingSensitiveZones reorders the fleet so servers in zones the
// CRACs regulate well activate first and shed last — the mechanism behind
// avoiding the §5.1 migration hazard (keep load where the cooling can see
// it). Call before the manager starts.
func (dc *DataCenter) PreferCoolingSensitiveZones() error {
	idx := make([]int, dc.fleet.Size())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return dc.room.ZoneSensitivity(dc.zoneOf[idx[a]]) >
			dc.room.ZoneSensitivity(dc.zoneOf[idx[b]])
	})
	if err := dc.fleet.Reorder(idx); err != nil {
		return err
	}
	zoneOf := make([]int, len(dc.zoneOf))
	rackOf := make([]int, len(dc.rackOf))
	for i, p := range idx {
		zoneOf[i] = dc.zoneOf[p]
		rackOf[i] = dc.rackOf[p]
	}
	dc.zoneOf, dc.rackOf = zoneOf, rackOf
	return nil
}

// Trips reports protective shutdowns observed through the coupling loop.
func (dc *DataCenter) Trips() int { return dc.tripped }

// ITPowerW reports the instantaneous fleet draw.
func (dc *DataCenter) ITPowerW() float64 { return dc.fleet.PowerW() }

// Flow evaluates the power tree.
func (dc *DataCenter) Flow() power.Flow { return dc.topo.Feed.Evaluate() }

// PUEAt computes the facility PUE under the given outside conditions:
// IT power from the fleet, distribution losses from the tree, plant power
// for removing the room's current cooling load.
func (dc *DataCenter) PUEAt(outsideC, outsideRH float64) (float64, cooling.PlantPower, error) {
	it := dc.ITPowerW()
	flow := dc.Flow()
	plant, err := dc.cfg.Plant.Power(dc.room.CoolingLoadW(), outsideC, outsideRH)
	if err != nil {
		return 0, plant, err
	}
	pue, err := cooling.PUE(it, flow.TotalLoss(), plant.TotalW())
	return pue, plant, err
}
