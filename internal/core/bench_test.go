package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cooling"
	"repro/internal/server"
	"repro/internal/sim"
)

// benchFleet boots a fleet of n servers (all active) for the dispatch
// and aggregate microbenchmarks.
func benchFleet(b *testing.B, n int) (*sim.Engine, *Fleet) {
	b.Helper()
	e := sim.NewEngine(1)
	cfg := server.DefaultConfig()
	f, err := NewFleet(e, cfg, n)
	if err != nil {
		b.Fatal(err)
	}
	// Synthetic rack/zone grouping so the per-group sums are maintained,
	// as they are inside a DataCenter.
	rackOf := make([]int, n)
	zoneOf := make([]int, n)
	nRacks := (n + 39) / 40
	for i := range rackOf {
		rackOf[i] = i / 40
		zoneOf[i] = i % 4
	}
	if err := f.SetPowerGroups(rackOf, zoneOf, nRacks, 4); err != nil {
		b.Fatal(err)
	}
	f.SetTarget(n)
	if err := e.Run(e.Now() + cfg.BootDelay + time.Second); err != nil {
		b.Fatal(err)
	}
	f.Sync(e.Now())
	if f.ActiveCount() != n {
		b.Fatalf("active = %d after boot, want %d", f.ActiveCount(), n)
	}
	return e, f
}

// BenchmarkFleetAggregateReads measures the O(1) aggregate surface the
// control loops poll every decision period. Must be allocation-free.
func BenchmarkFleetAggregateReads(b *testing.B) {
	_, f := benchFleet(b, 1_000)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.PowerW() + f.EnergyJ()
		sink += float64(f.OnCount() + f.ActiveCount() + f.Trips())
		for z := 0; z < 4; z++ {
			sink += f.ZonePowerW(z)
		}
	}
	if sink < 0 {
		b.Fatal("impossible negative aggregate")
	}
}

// BenchmarkFleetDispatch measures one spread-dispatch round over the
// whole fleet — the per-decision hot path of every manager mode. Must be
// allocation-free: capacities and utilizations live in fleet-owned
// scratch buffers.
func BenchmarkFleetDispatch(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e, f := benchFleet(b, n)
			cfg := server.DefaultConfig()
			offered := 0.6 * float64(n) * cfg.Capacity
			now := e.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += time.Second
				_, _ = f.Dispatch(now, offered)
			}
		})
	}
}

// benchDC assembles an attached mid-size facility (40 racks × 25
// servers = 1,000) for the physics-tick and sample microbenchmarks.
func benchDC(b *testing.B, sampleEvery time.Duration) (*sim.Engine, *DataCenter) {
	b.Helper()
	e := sim.NewEngine(1)
	cfg := smallDCConfig()
	cfg.ServersPerRack = 25
	cfg.Topology.UPSCount = 2
	cfg.Topology.PDUsPerUPS = 2
	cfg.Topology.RacksPerPDU = 10
	cfg.Topology.RackRatedW = 25 * cfg.ServerConfig.PeakPower * 1.05
	cfg.ZoneOfRack = make([]int, 40)
	for r := range cfg.ZoneOfRack {
		cfg.ZoneOfRack[r] = r % 2
	}
	// Cooling sized for the 1k-server load so steady state stays below
	// the trip band (the gated tick's fast path).
	for z := range cfg.Room.Zones {
		cfg.Room.Zones[z].Airflow *= 125
	}
	cfg.Plant.FanRatedW = 350 * 125
	cfg.SampleEvery = sampleEvery
	dc, err := NewDataCenter(e, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dc.Attach(); err != nil {
		b.Fatal(err)
	}
	dc.Fleet().SetTarget(500)
	if err := e.Run(e.Now() + 10*time.Minute); err != nil {
		b.Fatal(err)
	}
	return e, dc
}

// BenchmarkDataCenterPhysicsTick measures one steady-state physics tick
// interval: zone heat from the fleet's per-zone sums, cooling update,
// and the gated trip scan.
func BenchmarkDataCenterPhysicsTick(b *testing.B) {
	e, _ := benchDC(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(e.Now() + cooling.DefaultPhysicsTick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataCenterSample measures one telemetry sample round: 2,000
// per-server points plus zone inlets through the columnar frame path.
func BenchmarkDataCenterSample(b *testing.B) {
	e, dc := benchDC(b, time.Minute)
	now := e.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += time.Minute
		dc.sample(now)
	}
}

// TestPhysicsTickSteadyStateAllocFree pins the tentpole claim: once the
// facility reaches steady state, a physics tick allocates nothing — the
// event kernel reuses its arena, zone heat comes from maintained sums,
// and the trip scan is gated off while inlets sit below the trip band.
func TestPhysicsTickSteadyStateAllocFree(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := smallDCConfig()
	cfg.SampleEvery = 0
	dc, err := NewDataCenter(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Attach(); err != nil {
		t.Fatal(err)
	}
	dc.Fleet().SetTarget(4)
	if err := e.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := e.Run(e.Now() + cooling.DefaultPhysicsTick); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state physics tick allocates %v objects per tick, want 0", allocs)
	}
}

// TestSampleSteadyStateAllocsAmortized pins the sample round: after the
// raw ring has filled, a round's only allocations are the amortized
// doubling of the closed-bucket slabs — strictly less than one object
// per round on average.
func TestSampleSteadyStateAllocsAmortized(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := smallDCConfig()
	// Sampling must be enabled so the frame plumbing exists, but the
	// rounds are driven by hand below (past the engine's own callbacks)
	// so the measurement covers exactly one round per run.
	cfg.SampleEvery = 15 * time.Second
	dc, err := NewDataCenter(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Attach(); err != nil {
		t.Fatal(err)
	}
	dc.Fleet().SetTarget(4)
	if err := e.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Warm until the raw ring has filled and been through compaction
	// cycles (retention 1 h at 15 s rounds = 240 live rounds).
	now := e.Now()
	for i := 0; i < 600; i++ {
		now += 15 * time.Second
		dc.sample(now)
	}
	allocs := testing.AllocsPerRun(400, func() {
		now += 15 * time.Second
		dc.sample(now)
	})
	if allocs >= 1 {
		t.Errorf("steady-state sample averages %v allocations per round, want < 1", allocs)
	}
}
