package core

import (
	"fmt"
	"sort"
	"time"
)

// Site is one data center in a federation (§3.2: "Where to migrate power
// consuming operations to best utilize cooling and power conversion
// efficiency across data centers without sacrificing user experience?").
type Site struct {
	// Name identifies the site.
	Name string
	// CapacityUnits is the load the site can absorb.
	CapacityUnits float64
	// MarginalPUE is the facility watts drawn per watt of IT work — the
	// efficiency of serving one more unit here (economized sites in
	// cold climates approach 1.1; chiller-bound sites approach 2).
	MarginalPUE float64
	// WattsPerUnit is the IT power per load unit served.
	WattsPerUnit float64
	// Latency is the user-perceived network latency to the site.
	Latency time.Duration
}

// Validate checks a site.
func (s Site) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("core: site needs a name")
	}
	if s.CapacityUnits < 0 {
		return fmt.Errorf("core: site %s capacity %v must be non-negative", s.Name, s.CapacityUnits)
	}
	if s.MarginalPUE < 1 {
		return fmt.Errorf("core: site %s marginal PUE %v must be >= 1", s.Name, s.MarginalPUE)
	}
	if s.WattsPerUnit <= 0 {
		return fmt.Errorf("core: site %s watts/unit %v must be positive", s.Name, s.WattsPerUnit)
	}
	if s.Latency < 0 {
		return fmt.Errorf("core: site %s negative latency", s.Name)
	}
	return nil
}

// Allocation is the load assigned to one site.
type Allocation struct {
	Site  string
	Units float64
	// PowerW is the facility power consumed by this assignment.
	PowerW float64
}

// GeoRoute splits demand across sites, filling the most efficient
// (lowest marginal PUE) eligible site first, subject to each site's
// capacity and a user-experience latency bound (sites beyond the bound
// are ineligible). It returns the allocations, the total facility power,
// and the demand that could not be placed.
func GeoRoute(demand float64, sites []Site, latencyBound time.Duration) ([]Allocation, float64, float64, error) {
	if demand < 0 {
		return nil, 0, 0, fmt.Errorf("core: negative demand %v", demand)
	}
	if len(sites) == 0 {
		return nil, 0, 0, fmt.Errorf("core: no sites")
	}
	eligible := make([]Site, 0, len(sites))
	for _, s := range sites {
		if err := s.Validate(); err != nil {
			return nil, 0, 0, err
		}
		if latencyBound <= 0 || s.Latency <= latencyBound {
			eligible = append(eligible, s)
		}
	}
	// Cheapest marginal energy first; name breaks ties deterministically.
	sort.SliceStable(eligible, func(i, j int) bool {
		ci := eligible[i].MarginalPUE * eligible[i].WattsPerUnit
		cj := eligible[j].MarginalPUE * eligible[j].WattsPerUnit
		if ci != cj {
			return ci < cj
		}
		return eligible[i].Name < eligible[j].Name
	})
	var allocs []Allocation
	var totalPower float64
	remaining := demand
	for _, s := range eligible {
		if remaining <= 0 {
			break
		}
		units := s.CapacityUnits
		if units > remaining {
			units = remaining
		}
		if units <= 0 {
			continue
		}
		p := units * s.WattsPerUnit * s.MarginalPUE
		allocs = append(allocs, Allocation{Site: s.Name, Units: units, PowerW: p})
		totalPower += p
		remaining -= units
	}
	return allocs, totalPower, remaining, nil
}
