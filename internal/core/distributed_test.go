package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

func distributedBase(fleet int) ManagerConfig {
	return ManagerConfig{
		ServerConfig:   testServerConfig(),
		FleetSize:      fleet,
		Queue:          workload.DefaultQueueModel(),
		SLA:            100 * time.Millisecond,
		DecisionPeriod: time.Minute,
		Mode:           ModeCoordinated,
		InitialOn:      fleet / 4,
	}
}

func TestNewDistributedValidation(t *testing.T) {
	e := sim.NewEngine(1)
	demand := func(time.Duration) float64 { return 100 }
	if _, err := NewDistributed(e, distributedBase(10), nil, demand); err == nil {
		t.Error("no clusters should error")
	}
	if _, err := NewDistributed(e, distributedBase(10), []int{5, 0}, demand); err == nil {
		t.Error("zero-size cluster should error")
	}
	if _, err := NewDistributed(e, distributedBase(10), []int{5, 5}, nil); err == nil {
		t.Error("nil demand should error")
	}
	bad := distributedBase(10)
	bad.SLA = 0
	if _, err := NewDistributed(e, bad, []int{5, 5}, demand); err == nil {
		t.Error("invalid base config should error")
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	// The §3.2 claim in mechanism form: per-cluster sub-layers with only
	// a proportional share message achieve nearly the centralized
	// energy.
	const fleet = 40
	srv := testServerConfig()
	demand := func(now time.Duration) float64 {
		h := math.Mod(now.Hours(), 24)
		frac := 0.15 + 0.35*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * fleet * srv.Capacity
	}
	const horizon = 2 * 24 * time.Hour

	eC := sim.NewEngine(9)
	central, err := NewManager(eC, distributedBase(fleet), demand)
	if err != nil {
		t.Fatal(err)
	}
	central.Start()
	if err := eC.Run(horizon); err != nil {
		t.Fatal(err)
	}
	cres := central.Result(horizon)

	eD := sim.NewEngine(9)
	dist, err := NewDistributed(eD, distributedBase(fleet), []int{10, 10, 10, 10}, demand)
	if err != nil {
		t.Fatal(err)
	}
	dist.Start()
	if err := eD.Run(horizon); err != nil {
		t.Fatal(err)
	}
	dres := dist.Result(horizon)

	// Energy within 15 % of centralized (quantization of per-cluster
	// ceil() costs a little).
	rel := (dres.EnergyKWh - cres.EnergyKWh) / cres.EnergyKWh
	if rel < -0.02 || rel > 0.15 {
		t.Errorf("distributed energy %.1f kWh vs centralized %.1f kWh (%.1f%%)",
			dres.EnergyKWh, cres.EnergyKWh, rel*100)
	}
	if dres.SLAViolationRate > 0.1 {
		t.Errorf("distributed SLA violation rate %.3f", dres.SLAViolationRate)
	}
	if dres.DroppedFraction > 0.01 {
		t.Errorf("distributed dropped %.4f of load", dres.DroppedFraction)
	}
	// One message per cluster per period.
	wantMsgs := int64(4 * (horizon / time.Minute))
	if dist.Messages() != wantMsgs {
		t.Errorf("messages = %d, want %d", dist.Messages(), wantMsgs)
	}
	if len(dist.Clusters()) != 4 {
		t.Errorf("clusters = %d", len(dist.Clusters()))
	}
}

func TestDistributedUnevenClusters(t *testing.T) {
	const fleet = 30
	demand := func(time.Duration) float64 { return 6_000 }
	e := sim.NewEngine(3)
	dist, err := NewDistributed(e, distributedBase(fleet), []int{20, 10}, demand)
	if err != nil {
		t.Fatal(err)
	}
	dist.Start()
	if err := e.Run(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	res := dist.Result(6 * time.Hour)
	// The large cluster should run roughly twice the small one's fleet.
	big := dist.Clusters()[0].Result(6 * time.Hour).MeanActive
	small := dist.Clusters()[1].Result(6 * time.Hour).MeanActive
	if big < 1.5*small {
		t.Errorf("big cluster mean active %.1f not ~2x small %.1f", big, small)
	}
	if res.DroppedFraction > 0.01 {
		t.Errorf("dropped %.4f", res.DroppedFraction)
	}
}
