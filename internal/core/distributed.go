package core

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Distributed is the hierarchical form of the macro-resource management
// layer: "although illustrated as a single unit, the macro-resource
// management layer is by no means centralized. It may consist of multiple
// sub-layers that are distributed over server clusters and data centers"
// (§3.2). A thin global layer splits offered demand into per-cluster
// shares (one message per cluster per period); each cluster runs its own
// full Manager on local information only.
type Distributed struct {
	clusters []*Manager
	names    []string
	shares   []float64
	engine   *sim.Engine
	period   time.Duration
	// messages counts global→cluster coordination messages, the
	// communication cost the paper asks about ("how to organize this
	// layer to perform desired coordination with efficient communication
	// among submodules").
	messages int64
}

// NewDistributed builds one cluster Manager per entry of clusterSizes,
// each configured from base (FleetSize and InitialOn are overridden per
// cluster), and splits the global demand proportionally to cluster
// capacity.
func NewDistributed(e *sim.Engine, base ManagerConfig, clusterSizes []int, demand DemandFunc) (*Distributed, error) {
	if len(clusterSizes) == 0 {
		return nil, fmt.Errorf("core: need at least one cluster")
	}
	if demand == nil {
		return nil, fmt.Errorf("core: nil demand function")
	}
	total := 0
	for i, n := range clusterSizes {
		if n <= 0 {
			return nil, fmt.Errorf("core: cluster %d size %d must be positive", i, n)
		}
		total += n
	}
	d := &Distributed{
		engine: e,
		period: base.DecisionPeriod,
		shares: make([]float64, len(clusterSizes)),
	}
	for i, n := range clusterSizes {
		d.shares[i] = float64(n) / float64(total)
		cfg := base
		cfg.FleetSize = n
		cfg.InitialOn = base.InitialOn * n / total
		if cfg.InitialOn > n {
			cfg.InitialOn = n
		}
		cfg.Trigger.Max = n
		if cfg.Trigger.Min > n {
			cfg.Trigger.Min = n
		}
		i := i
		local := func(now time.Duration) float64 {
			return demand(now) * d.shares[i]
		}
		m, err := NewManager(e, cfg, local)
		if err != nil {
			return nil, fmt.Errorf("core: cluster %d: %w", i, err)
		}
		d.clusters = append(d.clusters, m)
		d.names = append(d.names, fmt.Sprintf("cluster-%d", i))
	}
	return d, nil
}

// Clusters exposes the cluster managers.
func (d *Distributed) Clusters() []*Manager { return d.clusters }

// Messages reports global→cluster share messages sent so far.
func (d *Distributed) Messages() int64 { return d.messages }

// Start launches the global share loop and every cluster manager. The
// global tick is scheduled first so share updates precede local decisions
// within a period (deterministic FIFO for simultaneous events).
func (d *Distributed) Start() sim.Cancel {
	cancels := make([]sim.Cancel, 0, 1+len(d.clusters))
	cancels = append(cancels, d.engine.Every(d.period, func(*sim.Engine) {
		// Static proportional split re-announced each period; a richer
		// policy would reweight by cluster health or efficiency.
		d.messages += int64(len(d.clusters))
	}))
	for _, m := range d.clusters {
		cancels = append(cancels, m.Start())
	}
	return func() {
		for _, c := range cancels {
			c()
		}
	}
}

// Result aggregates the cluster results at now.
func (d *Distributed) Result(now time.Duration) RunResult {
	var agg RunResult
	agg.Mode = d.clusters[0].cfg.Mode
	var worst time.Duration
	var violSum, decSum float64
	var offered, dropped float64
	for _, m := range d.clusters {
		r := m.Result(now)
		agg.EnergyKWh += r.EnergyKWh
		agg.SwitchOns += r.SwitchOns
		agg.SwitchOffs += r.SwitchOffs
		agg.MeanActive += r.MeanActive
		if r.WorstResponse > worst {
			worst = r.WorstResponse
		}
		violSum += r.SLAViolationRate * float64(m.decisions)
		decSum += float64(m.decisions)
		offered += m.offeredTotal
		dropped += m.droppedTotal
	}
	agg.WorstResponse = worst
	if decSum > 0 {
		agg.SLAViolationRate = violSum / decSum
	}
	if offered > 0 {
		agg.DroppedFraction = dropped / offered
	}
	return agg
}
