package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// JointDecision is a coordinated (server count, DVFS state) choice.
type JointDecision struct {
	// Servers is the number of active servers to run.
	Servers int
	// PState is the DVFS index every active server should use.
	PState int
	// PredictedPowerW is the steady-state fleet power of the choice.
	PredictedPowerW float64
	// PredictedResponse is the modelled response time of the choice.
	PredictedResponse time.Duration
}

// JointOptimizer is the coordinated policy the paper's §5.1 argument
// calls for: instead of a DVFS governor and an on/off policy acting on
// each other's side effects, one decision-maker enumerates (count,
// frequency) pairs and picks the cheapest that meets the SLA — "both the
// DVS and On/Off policies have the same energy saving goal", so a single
// optimizer pursues it directly.
type JointOptimizer struct {
	cfg      server.Config
	queue    workload.QueueModel
	sla      time.Duration
	maxCount int
}

// NewJointOptimizer builds the optimizer for a homogeneous fleet of up to
// maxCount servers of the given configuration.
func NewJointOptimizer(cfg server.Config, queue workload.QueueModel, sla time.Duration, maxCount int) (*JointOptimizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := queue.Validate(); err != nil {
		return nil, err
	}
	if sla <= queue.ServiceTime {
		return nil, fmt.Errorf("core: SLA %v not achievable (service time %v)", sla, queue.ServiceTime)
	}
	if maxCount <= 0 {
		return nil, fmt.Errorf("core: max count %d must be positive", maxCount)
	}
	return &JointOptimizer{cfg: cfg, queue: queue, sla: sla, maxCount: maxCount}, nil
}

// Decide returns the minimum-power (count, p-state) pair that keeps the
// modelled response within the SLA for the offered load. When even the
// full fleet at nominal frequency cannot meet the SLA it returns the
// full fleet at nominal frequency (best effort).
func (j *JointOptimizer) Decide(offered float64) JointDecision {
	if offered < 0 {
		offered = 0
	}
	rhoMax := j.queue.UtilizationFor(j.sla)
	if rhoMax <= 0 {
		rhoMax = 0.01
	}
	idle := j.cfg.PeakPower * j.cfg.IdleFraction
	dynFull := j.cfg.PeakPower - idle

	best := JointDecision{Servers: j.maxCount, PState: 0,
		PredictedPowerW: math.Inf(1), PredictedResponse: j.queue.MaxResponse}
	feasible := false
	for pi, ps := range j.cfg.PStates {
		perServer := j.cfg.Capacity * ps.Freq
		if perServer <= 0 {
			continue
		}
		n := int(math.Ceil(offered / (perServer * rhoMax)))
		if n < 1 {
			n = 1
		}
		if n > j.maxCount {
			continue // this frequency cannot meet the SLA within the fleet
		}
		rho := offered / (float64(n) * perServer)
		resp := j.queue.Response(rho)
		if resp > j.sla {
			continue // ceil rounding should prevent this, but stay safe
		}
		power := float64(n) * (idle + dynFull*rho*ps.DynFactor)
		if power < best.PredictedPowerW {
			best = JointDecision{
				Servers:           n,
				PState:            pi,
				PredictedPowerW:   power,
				PredictedResponse: resp,
			}
			feasible = true
		}
	}
	if !feasible {
		// Best effort: everything on, full speed.
		rho := math.Min(1, offered/(float64(j.maxCount)*j.cfg.Capacity))
		best = JointDecision{
			Servers:           j.maxCount,
			PState:            0,
			PredictedPowerW:   float64(j.maxCount) * (idle + dynFull*rho),
			PredictedResponse: j.queue.Response(rho),
		}
	}
	return best
}
