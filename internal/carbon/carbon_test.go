package carbon

import (
	"math"
	"testing"
	"time"
)

func TestModelValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Model
		ok   bool
	}{
		{"default", DefaultModel(), true},
		{"flat", Model{BaseGPerKWh: 100}, true},
		{"negative base", Model{BaseGPerKWh: -1}, false},
		{"nan base", Model{BaseGPerKWh: math.NaN()}, false},
		{"inf base", Model{BaseGPerKWh: math.Inf(1)}, false},
		{"swing one", Model{BaseGPerKWh: 100, Swing: 1}, false},
		{"negative swing", Model{BaseGPerKWh: 100, Swing: -0.1}, false},
	}
	for _, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestIntensityDiurnalShape(t *testing.T) {
	m := Model{BaseGPerKWh: 400, Swing: 0.25}
	// Minimum at hour 14 (solar midday), maximum at hour 2.
	lo := m.IntensityAt(14 * time.Hour)
	hi := m.IntensityAt(2 * time.Hour)
	if want := 400 * 0.75; math.Abs(lo-want) > 1e-9 {
		t.Errorf("midday intensity = %v, want %v", lo, want)
	}
	if want := 400 * 1.25; math.Abs(hi-want) > 1e-9 {
		t.Errorf("overnight intensity = %v, want %v", hi, want)
	}
	// Periodic: same hour on day 3 matches day 0.
	if a, b := m.IntensityAt(5*time.Hour), m.IntensityAt(77*time.Hour); math.Abs(a-b) > 1e-9 {
		t.Errorf("intensity not 24h-periodic: %v vs %v", a, b)
	}
	// Flat grid is constant.
	flat := Model{BaseGPerKWh: 300}
	for h := 0; h < 24; h++ {
		if got := flat.IntensityAt(time.Duration(h) * time.Hour); got != 300 {
			t.Fatalf("flat grid intensity at %dh = %v", h, got)
		}
	}
}

func TestMeterIntegration(t *testing.T) {
	mt, err := NewMeter(Model{BaseGPerKWh: 500}) // flat: easy arithmetic
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Observe(0, 0); err != nil {
		t.Fatal(err)
	}
	if mt.Grams() != 0 {
		t.Fatalf("grams after anchor = %v", mt.Grams())
	}
	// 3.6e6 J = 1 kWh at 500 g/kWh = 500 g.
	if err := mt.Observe(time.Hour, 3.6e6); err != nil {
		t.Fatal(err)
	}
	if g := mt.Grams(); math.Abs(g-500) > 1e-9 {
		t.Fatalf("grams = %v, want 500", g)
	}
	// Monotone accumulation.
	if err := mt.Observe(2*time.Hour, 5.4e6); err != nil {
		t.Fatal(err)
	}
	if g := mt.Grams(); math.Abs(g-750) > 1e-9 {
		t.Fatalf("grams = %v, want 750", g)
	}
}

func TestMeterRejectsRegressions(t *testing.T) {
	mt, err := NewMeter(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Observe(time.Hour, 100); err != nil {
		t.Fatal(err)
	}
	if err := mt.Observe(30*time.Minute, 200); err == nil {
		t.Error("time regression accepted")
	}
	if err := mt.Observe(2*time.Hour, 50); err == nil {
		t.Error("energy regression accepted")
	}
	if err := mt.Observe(2*time.Hour, math.NaN()); err == nil {
		t.Error("NaN energy accepted")
	}
}

func TestRateGPerHour(t *testing.T) {
	m := Model{BaseGPerKWh: 400}
	// 2 kW at 400 g/kWh = 800 g/h.
	if got := m.RateGPerHour(0, 2000); math.Abs(got-800) > 1e-9 {
		t.Errorf("rate = %v, want 800", got)
	}
	if got := m.RateGPerHour(0, -5); got != 0 {
		t.Errorf("negative power rate = %v, want 0", got)
	}
}
