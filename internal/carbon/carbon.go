// Package carbon converts the facility's electrical energy into carbon
// emissions, making gCO2e/kWh a first-class output of the simulator the
// way PUE already is. The paper argues elastic power management is an
// operational discipline; in modern operations the quantity watched next
// to watts is carbon, so the live serving surface exports both.
//
// The model is deliberately small and deterministic: a grid's carbon
// intensity is a base level (gCO2e per kWh, the published annual average
// for the grid mix) modulated by a diurnal swing that dips around midday
// when solar generation peaks and rises overnight when dispatchable
// fossil plants carry the load. That shape is what real-time intensity
// feeds (electricityMap, WattTime) show for solar-heavy grids, reduced
// to a cosine so simulation output stays reproducible from the seed.
package carbon

import (
	"fmt"
	"math"
	"time"
)

// DefaultGridGPerKWh is a world-average grid intensity (gCO2e/kWh),
// the conventional figure for an unspecified grid mix.
const DefaultGridGPerKWh = 475

// Model is a deterministic time-varying carbon-intensity curve.
type Model struct {
	// BaseGPerKWh is the mean grid intensity in gCO2e per kWh.
	BaseGPerKWh float64
	// Swing is the fractional diurnal modulation amplitude in [0, 1):
	// intensity peaks at Base*(1+Swing) around 02:00 and bottoms at
	// Base*(1-Swing) around 14:00 (solar midday). Zero is a flat grid.
	Swing float64
}

// DefaultModel is the world-average grid with a 20 % solar diurnal swing.
func DefaultModel() Model {
	return Model{BaseGPerKWh: DefaultGridGPerKWh, Swing: 0.2}
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.BaseGPerKWh < 0 || math.IsNaN(m.BaseGPerKWh) || math.IsInf(m.BaseGPerKWh, 0) {
		return fmt.Errorf("carbon: base intensity %v gCO2e/kWh must be finite and non-negative", m.BaseGPerKWh)
	}
	if m.Swing < 0 || m.Swing >= 1 || math.IsNaN(m.Swing) {
		return fmt.Errorf("carbon: swing %v out of [0, 1)", m.Swing)
	}
	return nil
}

// IntensityAt reports the grid intensity (gCO2e/kWh) at virtual time t.
// The curve is a 24 h cosine with its minimum at hour 14 — the same
// phase convention as the diurnal demand model, so "load peak" and
// "solar dip" coincide the way they do for a daytime-peaking service on
// a solar-heavy grid.
func (m Model) IntensityAt(t time.Duration) float64 {
	if m.Swing == 0 {
		return m.BaseGPerKWh
	}
	h := t.Hours() - 24*math.Floor(t.Hours()/24)
	return m.BaseGPerKWh * (1 - m.Swing*math.Cos(2*math.Pi*(h-14)/24))
}

// Meter integrates emissions from a cumulative energy counter: feed it
// (time, energy-so-far) observations and it accumulates grams of CO2e,
// pricing each energy increment at the intensity of the interval's
// midpoint. Observations must be non-decreasing in both time and energy.
type Meter struct {
	model   Model
	started bool
	lastT   time.Duration
	lastJ   float64
	grams   float64
}

// NewMeter builds a meter over a validated model.
func NewMeter(m Model) (*Meter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Meter{model: m}, nil
}

// Model returns the meter's intensity model.
func (mt *Meter) Model() Model { return mt.model }

// Observe accounts the energy accrued since the previous observation.
// The first observation anchors the meter and accrues nothing.
func (mt *Meter) Observe(t time.Duration, energyJ float64) error {
	if math.IsNaN(energyJ) {
		return fmt.Errorf("carbon: NaN energy")
	}
	if !mt.started {
		mt.started = true
		mt.lastT, mt.lastJ = t, energyJ
		return nil
	}
	if t < mt.lastT {
		return fmt.Errorf("carbon: time moved backwards %v -> %v", mt.lastT, t)
	}
	if energyJ < mt.lastJ {
		return fmt.Errorf("carbon: energy counter decreased %v -> %v J", mt.lastJ, energyJ)
	}
	mid := mt.lastT + (t-mt.lastT)/2
	mt.grams += (energyJ - mt.lastJ) / 3.6e6 * mt.model.IntensityAt(mid)
	mt.lastT, mt.lastJ = t, energyJ
	return nil
}

// Grams reports cumulative emissions in grams of CO2e.
func (mt *Meter) Grams() float64 { return mt.grams }

// RateGPerHour reports the instantaneous emission rate for a power draw
// at virtual time t: watts × intensity, in grams CO2e per hour.
func (m Model) RateGPerHour(t time.Duration, powerW float64) float64 {
	if powerW < 0 {
		powerW = 0
	}
	return powerW / 1000 * m.IntensityAt(t)
}
