package sim

import (
	"testing"
	"time"
)

// TestHandleCancelBeforeFire: the allocation-free Handle API cancels a
// pending event.
func TestHandleCancelBeforeFire(t *testing.T) {
	e := NewEngine(1)
	h := e.At(time.Second, func(*Engine) { t.Error("cancelled event fired") })
	if !e.Active(h) {
		t.Fatal("fresh handle not active")
	}
	e.Cancel(h)
	if e.Active(h) {
		t.Error("cancelled handle still active")
	}
	e.Cancel(h) // double cancel is a no-op
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestHandleStaleAfterFire: once a one-shot fires, its handle is inert —
// cancelling it must not affect whatever event reused the slot.
func TestHandleStaleAfterFire(t *testing.T) {
	e := NewEngine(1)
	h1 := e.At(time.Second, func(*Engine) {})
	if err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Active(h1) {
		t.Error("fired handle still active")
	}
	// The freed slot is reused by the next schedule; the stale handle
	// must not be able to cancel the new occupant.
	fired := false
	h2 := e.At(3*time.Second, func(*Engine) { fired = true })
	e.Cancel(h1)
	if !e.Active(h2) {
		t.Fatal("stale cancel killed the slot's new occupant")
	}
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event in reused slot did not fire")
	}
}

// TestHandleZeroValueInert: the zero Handle cancels nothing and is never
// active.
func TestHandleZeroValueInert(t *testing.T) {
	e := NewEngine(1)
	var h Handle
	if e.Active(h) {
		t.Error("zero handle active")
	}
	e.Cancel(h) // must not panic or affect anything
	fired := false
	e.At(time.Second, func(*Engine) { fired = true })
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event did not fire")
	}
}

// TestPeriodicHandleReuse: a periodic process keeps one live handle for
// its whole lifetime; Cancel stops it, including from inside its own
// tick, and the slot's reuse by later events leaves the old handle inert.
func TestPeriodicHandleReuse(t *testing.T) {
	e := NewEngine(1)
	count := 0
	h := e.Periodic(time.Second, time.Second, func(*Engine) { count++ })
	if err := e.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
	if !e.Active(h) {
		t.Fatal("periodic handle went inactive mid-lifetime")
	}
	e.Cancel(h)
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("ticks after cancel = %d, want 3", count)
	}
}

// TestPeriodicSelfCancelViaHandle: a periodic that cancels its own handle
// during a tick stops immediately and frees its slot.
func TestPeriodicSelfCancelViaHandle(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var h Handle
	h = e.Periodic(time.Second, time.Second, func(eng *Engine) {
		count++
		if count == 2 {
			eng.Cancel(h)
		}
	})
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("ticks = %d, want 2", count)
	}
	if e.Active(h) {
		t.Error("self-cancelled periodic still active")
	}
}

// TestStepPeakPendingConsistentWithRun is the regression test for the
// Step/peakPending satellite: a drain-and-refill pattern driven through
// Step must report the same high-water mark as the identical schedule
// driven through Run, and cancelled events must be skipped by Step
// without firing hooks or bumping Processed.
func TestStepPeakPendingConsistentWithRun(t *testing.T) {
	script := func(drive func(e *Engine)) (peak int, processed uint64, hooks int) {
		e := NewEngine(1)
		h := 0
		e.AfterEvent(func(*Engine) { h++ })
		fn := func(*Engine) {}
		// Fill to depth 5, drain, refill to depth 3 with one cancelled.
		for i := 1; i <= 5; i++ {
			e.ScheduleAt(time.Duration(i)*time.Second, fn)
		}
		drive(e)
		c := e.ScheduleAfter(10*time.Second, fn)
		e.ScheduleAfter(11*time.Second, fn)
		e.ScheduleAfter(12*time.Second, fn)
		c()
		drive(e)
		return e.PeakPending(), e.Processed(), h
	}
	stepAll := func(e *Engine) {
		for e.Step() {
		}
	}
	runAll := func(e *Engine) {
		if err := e.Run(e.Now() + time.Hour); err != nil {
			panic(err)
		}
	}
	sPeak, sProc, sHooks := script(stepAll)
	rPeak, rProc, rHooks := script(runAll)
	if sPeak != rPeak {
		t.Errorf("peak pending: Step=%d Run=%d", sPeak, rPeak)
	}
	if sPeak != 5 {
		t.Errorf("peak = %d, want 5 (high-water from first fill)", sPeak)
	}
	if sProc != rProc {
		t.Errorf("processed: Step=%d Run=%d", sProc, rProc)
	}
	if sProc != 7 {
		t.Errorf("processed = %d, want 7 (cancelled event must not count)", sProc)
	}
	if sHooks != rHooks {
		t.Errorf("hook firings: Step=%d Run=%d", sHooks, rHooks)
	}
	if sHooks != 7 {
		t.Errorf("hooks = %d, want 7 (cancelled event must not fire hooks)", sHooks)
	}
}

// TestSlotReuseKeepsArenaCompact: steady-state schedule/fire churn must
// reuse slots rather than grow the arena without bound.
func TestSlotReuseKeepsArenaCompact(t *testing.T) {
	e := NewEngine(1)
	var chain Handler
	n := 0
	chain = func(eng *Engine) {
		n++
		if n < 10000 {
			eng.After(time.Millisecond, chain)
		}
	}
	e.After(time.Millisecond, chain)
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if n != 10000 {
		t.Fatalf("fired %d chain events", n)
	}
	if got := len(e.arena); got > 4 {
		t.Errorf("arena grew to %d slots for a 1-deep chain, want <= 4", got)
	}
}
