package sim

import (
	"math"
	"math/rand"
)

// RNG is the deterministic random source used by every stochastic model in
// the library. It wraps math/rand with the distributions the simulator
// needs (exponential, Poisson, normal, lognormal, Pareto) so that call
// sites stay readable and every draw is attributable to a single seeded
// stream.
type RNG struct {
	r *rand.Rand
}

// NewRNG builds a source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream. Substrates that must not
// perturb each other's draw sequences (e.g. workload vs. failure
// injection) each take a fork keyed by a distinct label hash.
func (g *RNG) Fork(label string) *RNG {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRNG(g.r.Int63() ^ int64(h&math.MaxInt64))
}

// Float64 draws uniformly from [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn draws uniformly from [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 draws a non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform draws uniformly from [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp draws from an exponential distribution with the given rate (>0).
func (g *RNG) Exp(rate float64) float64 {
	return g.r.ExpFloat64() / rate
}

// Normal draws from N(mean, sd²).
func (g *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// LogNormal draws from a lognormal with the given parameters of the
// underlying normal (mu, sigma).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Pareto draws from a Pareto distribution with scale xm > 0 and shape
// alpha > 0. Heavy-tailed service demands use this.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson draws from a Poisson distribution with the given mean. For small
// means it uses Knuth's product method; for large means a normal
// approximation with continuity correction keeps it O(1).
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		k := math.Round(g.Normal(mean, math.Sqrt(mean)))
		if k < 0 {
			return 0
		}
		return int(k)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli reports true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Shuffle permutes n elements via the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
