package sim

// Stats is a snapshot of kernel counters aggregated over every engine a
// probe has observed. The parallel experiment harness reports these per
// job (events fired, throughput, queue high-water mark).
type Stats struct {
	// Engines is how many engines were observed.
	Engines int `json:"engines"`
	// Processed is the total number of events fired across all engines.
	Processed uint64 `json:"processed"`
	// PeakPending is the largest event-queue depth any observed engine
	// reached.
	PeakPending int `json:"peak_pending"`
}

// Probe aggregates kernel statistics across the engines registered with
// it. A probe is owned by a single run (one experiment × one seed): it is
// not safe for concurrent use, and the harness gives every worker job its
// own probe so parallel runs never share one.
type Probe struct {
	engines []*Engine
}

// Observe registers an engine with the probe and returns it unchanged, so
// call sites can wrap construction: p.Observe(NewEngine(seed)).
func (p *Probe) Observe(e *Engine) *Engine {
	p.engines = append(p.engines, e)
	return e
}

// Stats snapshots the counters of every observed engine.
func (p *Probe) Stats() Stats {
	s := Stats{Engines: len(p.engines)}
	for _, e := range p.engines {
		s.Processed += e.Processed()
		if e.PeakPending() > s.PeakPending {
			s.PeakPending = e.PeakPending()
		}
	}
	return s
}
