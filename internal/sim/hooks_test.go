package sim

import (
	"testing"
	"time"
)

// TestAfterEventFiresPerEvent: hooks run once after every fired event, in
// registration order, with the clock at the event's time.
func TestAfterEventFiresPerEvent(t *testing.T) {
	e := NewEngine(1)
	var order []string
	var times []time.Duration
	e.AfterEvent(func(eng *Engine) {
		order = append(order, "a")
		times = append(times, eng.Now())
	})
	e.AfterEvent(func(*Engine) { order = append(order, "b") })

	e.ScheduleAt(time.Second, func(*Engine) {})
	e.ScheduleAt(2*time.Second, func(*Engine) {})
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 || order[0] != "a" || order[1] != "b" || order[2] != "a" || order[3] != "b" {
		t.Fatalf("hook order = %v, want [a b a b]", order)
	}
	if times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("hook times = %v", times)
	}
}

// TestAfterEventSkipsCancelled: a cancelled event does not fire, so its
// hooks must not run either.
func TestAfterEventSkipsCancelled(t *testing.T) {
	e := NewEngine(1)
	hooks := 0
	e.AfterEvent(func(*Engine) { hooks++ })
	cancel := e.ScheduleAt(time.Second, func(*Engine) { t.Fatal("cancelled event fired") })
	cancel()
	e.ScheduleAt(2*time.Second, func(*Engine) {})
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if hooks != 1 {
		t.Fatalf("hooks fired %d times, want 1", hooks)
	}
}

// TestAfterEventOnStep: Step honours the hook exactly like Run.
func TestAfterEventOnStep(t *testing.T) {
	e := NewEngine(1)
	hooks := 0
	e.AfterEvent(func(*Engine) { hooks++ })
	e.ScheduleAt(time.Second, func(*Engine) {})
	if !e.Step() {
		t.Fatal("Step fired nothing")
	}
	if hooks != 1 {
		t.Fatalf("hooks fired %d times after Step, want 1", hooks)
	}
}

// TestComponentRegistry: Register/Components preserve order and identity,
// and registration is behaviourally inert.
func TestComponentRegistry(t *testing.T) {
	e := NewEngine(1)
	if got := e.Components(); len(got) != 0 {
		t.Fatalf("fresh engine has components: %v", got)
	}
	a, b := &struct{ n int }{1}, &struct{ n int }{2}
	e.Register(a)
	e.Register(b)
	got := e.Components()
	if len(got) != 2 || got[0] != any(a) || got[1] != any(b) {
		t.Fatalf("Components() = %v, want [a b]", got)
	}
}

// TestHooksPreserveDeterminism: an engine with a read-only hook fires the
// same events at the same times as one without.
func TestHooksPreserveDeterminism(t *testing.T) {
	run := func(hook bool) []time.Duration {
		e := NewEngine(42)
		var fired []time.Duration
		if hook {
			e.AfterEvent(func(*Engine) {})
		}
		var chain Handler
		chain = func(eng *Engine) {
			fired = append(fired, eng.Now())
			delay := time.Duration(eng.RNG().Float64() * float64(time.Minute))
			eng.ScheduleAfter(delay, chain)
		}
		e.ScheduleAfter(time.Second, chain)
		if err := e.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	plain, hooked := run(false), run(true)
	if len(plain) != len(hooked) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(hooked))
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("event %d at %v vs %v", i, plain[i], hooked[i])
		}
	}
}
