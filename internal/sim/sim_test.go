package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.ScheduleAt(3*time.Second, func(*Engine) { got = append(got, 3) })
	e.ScheduleAt(1*time.Second, func(*Engine) { got = append(got, 1) })
	e.ScheduleAt(2*time.Second, func(*Engine) { got = append(got, 2) })
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want horizon 10s", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAt(time.Second, func(*Engine) { got = append(got, i) })
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events out of order: %v", got)
		}
	}
}

func TestScheduleAfterUsesNow(t *testing.T) {
	e := NewEngine(1)
	var firedAt time.Duration
	e.ScheduleAt(5*time.Second, func(eng *Engine) {
		eng.ScheduleAfter(2*time.Second, func(eng2 *Engine) {
			firedAt = eng2.Now()
		})
	})
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if firedAt != 7*time.Second {
		t.Errorf("nested event fired at %v, want 7s", firedAt)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	cancel := e.ScheduleAt(time.Second, func(*Engine) { fired = true })
	cancel()
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Every(time.Minute, func(*Engine) { count++ })
	if err := e.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("periodic fired %d times, want 10", count)
	}
}

func TestEveryCancelInsideHandler(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var cancel Cancel
	cancel = e.Every(time.Minute, func(*Engine) {
		count++
		if count == 3 {
			cancel()
		}
	})
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("self-cancelling periodic fired %d times, want 3", count)
	}
}

func TestEveryFrom(t *testing.T) {
	e := NewEngine(1)
	var times []time.Duration
	e.EveryFrom(0, 15*time.Minute, func(eng *Engine) {
		times = append(times, eng.Now())
	})
	if err := e.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 15 * time.Minute, 30 * time.Minute}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Every(time.Second, func(eng *Engine) {
		count++
		if count == 5 {
			eng.Stop()
		}
	})
	err := e.Run(time.Hour)
	if err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 5 {
		t.Errorf("fired %d times before stop, want 5", count)
	}
}

func TestRunHorizonBeforeNow(t *testing.T) {
	e := NewEngine(1)
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(time.Millisecond); err == nil {
		t.Error("running to an earlier horizon should error")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	_ = e.Run(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.ScheduleAt(0, func(*Engine) {})
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.ScheduleAt(time.Second, func(*Engine) { fired++ })
	e.ScheduleAt(2*time.Second, func(*Engine) { fired++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if fired != 1 || e.Now() != time.Second {
		t.Errorf("after one step: fired=%d now=%v", fired, e.Now())
	}
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if e.Step() {
		t.Error("Step returned true with empty queue")
	}
	if e.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", e.Processed())
	}
}

func TestEventsBeyondHorizonStayQueued(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.ScheduleAt(time.Hour, func(*Engine) { fired = true })
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event did not fire after extending horizon")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(42)
		var draws []float64
		e.Every(time.Second, func(eng *Engine) {
			draws = append(draws, eng.RNG().Float64())
		})
		_ = e.Run(10 * time.Second)
		return draws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScheduleAfterNegativePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.ScheduleAfter(-time.Second, func(*Engine) {})
}

func TestEveryNonPositivePeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("zero period should panic")
		}
	}()
	e.Every(0, func(*Engine) {})
}

func TestEveryFromNonPositivePeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("zero period should panic")
		}
	}()
	e.EveryFrom(time.Second, 0, func(*Engine) {})
}

func TestEveryFromCancelInsideHandler(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var cancel Cancel
	cancel = e.EveryFrom(0, time.Minute, func(*Engine) {
		count++
		if count == 2 {
			cancel()
		}
	})
	if err := e.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("fired %d times, want 2", count)
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	e := NewEngine(1)
	cancel := e.ScheduleAt(time.Second, func(*Engine) { t.Error("cancelled event fired") })
	cancel()
	fired := false
	e.ScheduleAt(2*time.Second, func(*Engine) { fired = true })
	if !e.Step() {
		t.Fatal("Step found nothing")
	}
	if !fired {
		t.Error("Step did not skip the cancelled event")
	}
}

func TestRunStopsMidQueue(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.ScheduleAt(time.Second, func(eng *Engine) { eng.Stop() })
	e.ScheduleAt(2*time.Second, func(*Engine) { fired = true })
	if err := e.Run(time.Hour); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
	if fired {
		t.Error("event after stop fired during the stopped run")
	}
	if e.Now() != time.Second {
		t.Errorf("clock after stop = %v, want 1s", e.Now())
	}
	// Stop applies only to the run in progress: a second Run resumes from
	// where the engine halted and drains the remaining events.
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatalf("resumed run err = %v", err)
	}
	if !fired {
		t.Error("pending event did not fire on resume")
	}
	if e.Now() != 2*time.Hour {
		t.Errorf("clock after resume = %v, want horizon", e.Now())
	}
}

func TestRunResumesAfterRepeatedStops(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	for i := 1; i <= 3; i++ {
		i := i
		e.ScheduleAt(time.Duration(i)*time.Second, func(eng *Engine) {
			fired = append(fired, i)
			eng.Stop()
		})
	}
	for i := 1; i <= 3; i++ {
		if err := e.Run(time.Hour); err != ErrStopped {
			t.Fatalf("run %d err = %v", i, err)
		}
		if len(fired) != i {
			t.Fatalf("after run %d fired %v", i, fired)
		}
	}
	if err := e.Run(time.Hour); err != nil {
		t.Fatalf("final run err = %v", err)
	}
}

func TestPeakPendingHighWaterMark(t *testing.T) {
	e := NewEngine(1)
	for i := 1; i <= 5; i++ {
		e.ScheduleAt(time.Duration(i)*time.Second, func(*Engine) {})
	}
	if got := e.PeakPending(); got != 5 {
		t.Fatalf("peak before run = %d, want 5", got)
	}
	if err := e.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("pending after run = %d, want 0", got)
	}
	if got := e.PeakPending(); got != 5 {
		t.Errorf("peak after run = %d, want 5 (high-water mark must not decay)", got)
	}
}

func TestProbeAggregatesEngines(t *testing.T) {
	var p Probe
	a := p.Observe(NewEngine(1))
	b := p.Observe(NewEngine(2))
	for i := 1; i <= 3; i++ {
		a.ScheduleAt(time.Duration(i)*time.Second, func(*Engine) {})
	}
	b.ScheduleAt(time.Second, func(*Engine) {})
	if err := a.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Engines != 2 {
		t.Errorf("engines = %d, want 2", s.Engines)
	}
	if s.Processed != 4 {
		t.Errorf("processed = %d, want 4", s.Processed)
	}
	if s.PeakPending != 3 {
		t.Errorf("peak pending = %d, want 3", s.PeakPending)
	}
}
