package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewRNG(7)
	a := g.Fork("workload")
	g2 := NewRNG(7)
	b := g2.Fork("failures")
	// Different labels from the same parent state should diverge.
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("forks with different labels coincide on %d/50 draws", same)
	}
	// Same label from same parent state must match (determinism).
	c := NewRNG(7).Fork("workload")
	d := NewRNG(7).Fork("workload")
	for i := 0; i < 50; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("same-label forks differ")
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(5, 10)
		if x < 5 || x >= 10 {
			t.Fatalf("Uniform(5,10) = %v out of range", x)
		}
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(2)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exp(4) // mean 0.25
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Exp(4) sample mean = %v, want ~0.25", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(3)
	const n = 50000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := g.Normal(10, 2)
		sum += x
		ss += x * x
	}
	mean := sum / n
	sd := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("Normal sd = %v, want ~2", sd)
	}
}

func TestPoissonMoments(t *testing.T) {
	g := NewRNG(4)
	for _, mean := range []float64{0.5, 3, 20, 200} { // spans both algorithms
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestParetoTail(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		x := g.Pareto(2, 1.5)
		if x < 2 {
			t.Fatalf("Pareto(2,1.5) = %v below scale", x)
		}
	}
}

func TestBernoulli(t *testing.T) {
	g := NewRNG(6)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) hit rate = %v", p)
	}
}

func TestPermAndShuffle(t *testing.T) {
	g := NewRNG(7)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 15 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func TestIntnAndInt63(t *testing.T) {
	g := NewRNG(8)
	for i := 0; i < 100; i++ {
		if v := g.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		if g.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestLogNormal(t *testing.T) {
	g := NewRNG(9)
	const n = 50000
	var sumLog float64
	for i := 0; i < n; i++ {
		x := g.LogNormal(1.0, 0.5)
		if x <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", x)
		}
		sumLog += math.Log(x)
	}
	if got := sumLog / n; math.Abs(got-1.0) > 0.02 {
		t.Errorf("mean of log = %v, want ~1.0", got)
	}
}
