package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// runKernelScript exercises every scheduling primitive the kernel offers in
// one deliberately tangled script — simultaneous events, cancels before
// fire, cancels issued from inside other handlers, self-cancelling
// periodics, RNG-driven nested scheduling, interleaved Step and Run calls —
// and returns the fired-event sequence as "tag@time" strings. The expected
// sequence below was captured from the pointer-heap kernel that predates
// the index-heap rewrite; it is the kernel-level bit-for-bit equivalence
// proof (the experiment-level proof is the golden-fixture suite).
func runKernelScript() []string {
	e := NewEngine(99)
	var fired []string
	log := func(tag string) Handler {
		return func(eng *Engine) {
			fired = append(fired, fmt.Sprintf("%s@%v", tag, eng.Now()))
		}
	}

	// Simultaneous events must fire in scheduling order.
	e.ScheduleAt(2*time.Second, log("a"))
	e.ScheduleAt(2*time.Second, log("b"))
	e.ScheduleAt(time.Second, log("c"))

	// Cancelled before fire: must never appear.
	cancelD := e.ScheduleAt(3*time.Second, log("d"))
	cancelD()

	// A handler that cancels a later event and schedules nested follow-ups
	// with RNG-driven delays.
	var cancelE Cancel
	cancelE = e.ScheduleAt(5*time.Second, log("e"))
	e.ScheduleAt(4*time.Second, func(eng *Engine) {
		fired = append(fired, fmt.Sprintf("killer@%v", eng.Now()))
		cancelE()
		d := time.Duration(eng.RNG().Float64() * float64(2*time.Second))
		eng.ScheduleAfter(d, log("nested1"))
		eng.ScheduleAfter(d/2, log("nested2"))
	})

	// Periodic that cancels itself on the third tick.
	tick := 0
	var cancelP Cancel
	cancelP = e.Every(1500*time.Millisecond, func(eng *Engine) {
		tick++
		fired = append(fired, fmt.Sprintf("p%d@%v", tick, eng.Now()))
		if tick == 3 {
			cancelP()
		}
	})

	// Periodic anchored at an absolute start, cancelled externally later.
	cancelQ := e.EveryFrom(500*time.Millisecond, 2*time.Second, log("q"))

	// Drive the first chunk one event at a time through Step.
	for i := 0; i < 4; i++ {
		e.Step()
	}
	// Then run to an interior horizon, cancel the anchored periodic from
	// outside, and drain the rest.
	if err := e.Run(6 * time.Second); err != nil {
		panic(err)
	}
	cancelQ()
	e.Every(3*time.Second, func(eng *Engine) {
		fired = append(fired, fmt.Sprintf("late@%v", eng.Now()))
		eng.ScheduleAfter(time.Duration(eng.RNG().Float64()*float64(time.Second)), log("echo"))
	})
	if err := e.Run(12 * time.Second); err != nil {
		panic(err)
	}
	fired = append(fired, fmt.Sprintf("end:now=%v,processed=%d,pending=%d,peak=%d",
		e.Now(), e.Processed(), e.Pending(), e.PeakPending()))
	return fired
}

// kernelScriptWant is the sequence the pre-rewrite pointer-heap kernel
// produced for runKernelScript (captured at the commit introducing this
// test, before the index-heap rewrite landed). Any divergence means the
// kernel's observable behaviour changed.
const kernelScriptWant = `q@500ms
c@1s
p1@1.5s
a@2s
b@2s
q@2.5s
p2@3s
killer@4s
nested2@4.263577614s
q@4.5s
p3@4.5s
nested1@4.527155229s
late@9s
echo@9.635817303s
late@12s
end:now=12s,processed=15,pending=2,peak=8`

func TestKernelScriptSequence(t *testing.T) {
	got := strings.Join(runKernelScript(), "\n")
	if got != kernelScriptWant {
		t.Fatalf("kernel script sequence diverged from the pre-rewrite kernel:\ngot:\n%s\n\nwant:\n%s", got, kernelScriptWant)
	}
}

// TestKernelScriptStable: the script is itself deterministic run-to-run,
// so a future divergence in TestKernelScriptSequence is a kernel change,
// not script noise.
func TestKernelScriptStable(t *testing.T) {
	a := strings.Join(runKernelScript(), "\n")
	b := strings.Join(runKernelScript(), "\n")
	if a != b {
		t.Fatalf("script not deterministic:\n%s\nvs\n%s", a, b)
	}
}
