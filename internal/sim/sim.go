// Package sim provides the discrete-event simulation kernel on which every
// substrate in this library runs: a virtual clock, a binary-heap event
// queue with deterministic tie-breaking, periodic processes, and a seeded
// random source. The kernel is single-threaded by design so that every
// experiment is reproducible bit-for-bit from its seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped explicitly
// before the horizon was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Handler is a callback invoked when its event fires. The engine passes
// itself so handlers can schedule follow-up events.
type Handler func(e *Engine)

// Event is a scheduled callback. Events are ordered by firing time, then by
// scheduling sequence number, so simultaneous events fire in the order they
// were scheduled — a requirement for determinism.
type event struct {
	at     time.Duration
	seq    uint64
	fn     Handler
	cancel *bool
	index  int // heap index
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. Construct with NewEngine; the zero
// value is not usable because the random source must be seeded.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *RNG
	stopped bool
	// processed counts fired events, exposed for harness statistics.
	processed uint64
	// peakPending is the high-water mark of the event queue, exposed for
	// harness statistics.
	peakPending int
	// afterEvent hooks run after every fired event, in registration
	// order. Runtime invariant checkers ride this hook.
	afterEvent []Handler
	// components holds substrate objects attached to this engine so
	// cross-cutting observers (invariant checkers, probes) can discover
	// what the simulation is made of without the substrates importing
	// them.
	components []any
}

// NewEngine builds an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now reports the current virtual time (duration since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// RNG exposes the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// PeakPending reports the high-water mark of the event queue over the
// engine's lifetime.
func (e *Engine) PeakPending() int { return e.peakPending }

// push enqueues an event and maintains the queue-depth high-water mark.
func (e *Engine) push(ev *event) {
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.peakPending {
		e.peakPending = len(e.queue)
	}
}

// AfterEvent registers fn to run after every fired event, in registration
// order, with the clock still at the event's firing time. Hooks observe —
// they may read any component state — but must not schedule events or
// mutate substrates, or determinism relative to an unhooked engine is
// lost. The invariant checker layer rides this hook.
func (e *Engine) AfterEvent(fn Handler) {
	e.afterEvent = append(e.afterEvent, fn)
}

// Register attaches a substrate component (fleet, cooling room, power
// topology, …) to the engine so cross-cutting observers can enumerate the
// simulation's parts via Components. Registration has no behavioural
// effect on the simulation itself.
func (e *Engine) Register(c any) {
	e.components = append(e.components, c)
}

// Components returns the registered substrate components in registration
// order. Callers must not mutate the returned slice.
func (e *Engine) Components() []any { return e.components }

// fireHooks invokes the after-event hooks for one fired event.
func (e *Engine) fireHooks() {
	for _, h := range e.afterEvent {
		h(e)
	}
}

// Cancel is returned by Schedule-family methods; calling it prevents the
// event from firing (it is a no-op after the event has fired).
type Cancel func()

// ScheduleAt schedules fn to fire at absolute virtual time at. Scheduling
// in the past panics: it is always a programming error in a simulation.
func (e *Engine) ScheduleAt(at time.Duration, fn Handler) Cancel {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	cancelled := new(bool)
	ev := &event{at: at, seq: e.seq, fn: fn, cancel: cancelled}
	e.seq++
	e.push(ev)
	return func() { *cancelled = true }
}

// ScheduleAfter schedules fn to fire d after the current virtual time.
func (e *Engine) ScheduleAfter(d time.Duration, fn Handler) Cancel {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.ScheduleAt(e.now+d, fn)
}

// Every schedules fn to fire repeatedly with the given period, starting one
// period from now. The returned Cancel stops future firings.
func (e *Engine) Every(period time.Duration, fn Handler) Cancel {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	cancelled := new(bool)
	var tick Handler
	tick = func(eng *Engine) {
		if *cancelled {
			return
		}
		fn(eng)
		if *cancelled { // fn may cancel itself
			return
		}
		ev := &event{at: eng.now + period, seq: eng.seq, fn: tick, cancel: cancelled}
		eng.seq++
		eng.push(ev)
	}
	ev := &event{at: e.now + period, seq: e.seq, fn: tick, cancel: cancelled}
	e.seq++
	e.push(ev)
	return func() { *cancelled = true }
}

// EveryFrom behaves like Every but fires the first tick at start (absolute).
func (e *Engine) EveryFrom(start, period time.Duration, fn Handler) Cancel {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	cancelled := new(bool)
	var tick Handler
	tick = func(eng *Engine) {
		if *cancelled {
			return
		}
		fn(eng)
		if *cancelled {
			return
		}
		ev := &event{at: eng.now + period, seq: eng.seq, fn: tick, cancel: cancelled}
		eng.seq++
		eng.push(ev)
	}
	ev := &event{at: start, seq: e.seq, fn: tick, cancel: cancelled}
	e.seq++
	e.push(ev)
	return func() { *cancelled = true }
}

// Stop halts Run after the currently-firing event returns. A stop applies
// only to the Run in progress: Run clears the flag on entry, so a stopped
// engine can always be resumed with a fresh call to Run (a Stop issued
// while no Run is executing is discarded).
func (e *Engine) Stop() { e.stopped = true }

// Run fires events in order until the queue is empty or virtual time would
// pass horizon. Events exactly at the horizon still fire. It returns
// ErrStopped if Stop was called during this run, otherwise nil. The
// stopped flag is cleared on entry, so a stopped engine resumes from where
// it halted when Run is called again. After Run returns, Now is
// min(horizon, time of last fired event) — the clock is advanced to the
// horizon when the queue drains early so that integrations cover the full
// window.
func (e *Engine) Run(horizon time.Duration) error {
	if horizon < e.now {
		return fmt.Errorf("sim: horizon %v before now %v", horizon, e.now)
	}
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		if *next.cancel {
			continue
		}
		e.now = next.at
		e.processed++
		next.fn(e)
		e.fireHooks()
	}
	if e.stopped {
		return ErrStopped
	}
	e.now = horizon
	return nil
}

// Step fires exactly one pending event (skipping cancelled ones) and
// reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*event)
		if *next.cancel {
			continue
		}
		e.now = next.at
		e.processed++
		next.fn(e)
		e.fireHooks()
		return true
	}
	return false
}
