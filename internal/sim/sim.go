// Package sim provides the discrete-event simulation kernel on which every
// substrate in this library runs: a virtual clock, an allocation-free
// event queue with deterministic tie-breaking, periodic processes, and a
// seeded random source. The kernel is single-threaded by design so that
// every experiment is reproducible bit-for-bit from its seed.
//
// # Kernel design
//
// The event queue is an index-based 4-ary min-heap over a contiguous
// event arena. Scheduling never allocates per event in steady state: a
// slot is taken from a free list (or appended to the arena, amortized),
// the heap stores arena indices, and ordering is (time, sequence) so
// simultaneous events fire in scheduling order. Cancellation is lazy —
// a generation-counted Handle is invalidated in O(1) and the slot is
// reclaimed when it surfaces at the heap top — and periodic processes
// reuse their single slot across ticks instead of allocating one event
// per period. The Handle-based API (At, After, Periodic, Cancel) is the
// zero-allocation fast path; the closure-returning Schedule family wraps
// it for convenience at one small allocation per call.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped explicitly
// before the horizon was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Handler is a callback invoked when its event fires. The engine passes
// itself so handlers can schedule follow-up events.
type Handler func(e *Engine)

// event is one arena slot. Events are ordered by firing time, then by
// scheduling sequence number, so simultaneous events fire in the order
// they were scheduled — a requirement for determinism. A slot with a
// positive period is a periodic process and is reinserted after each
// fire; a slot whose fn is nil is cancelled (or free) and is reclaimed
// when it surfaces.
type event struct {
	at     time.Duration
	seq    uint64
	fn     Handler
	period time.Duration
	gen    uint32
}

// Handle identifies a scheduled event. The zero Handle is inert: Cancel
// on it is a no-op and Active reports false. Handles are generation
// counted, so a stale handle (its event fired, or its slot was reused)
// safely does nothing.
type Handle struct {
	slot int32 // arena index + 1; 0 means "no event"
	gen  uint32
}

// Engine is a discrete-event simulator. Construct with NewEngine; the zero
// value is not usable because the random source must be seeded.
type Engine struct {
	now   time.Duration
	seq   uint64
	arena []event
	heap  []int32 // 4-ary min-heap of arena indices, keyed by (at, seq)
	// freeHead is the intrusive free list of reusable arena slots (index
	// + 1; 0 means empty). Free slots thread through their seq field, so
	// reclaiming an event never allocates.
	freeHead int32
	rng      *RNG
	stopped  bool
	// processed counts fired events, exposed for harness statistics.
	processed uint64
	// peakPending is the high-water mark of the event queue, exposed for
	// harness statistics. It is maintained by the single push path, so
	// Run and Step report it identically.
	peakPending int
	// afterEvent hooks run after every fired event, in registration
	// order. Runtime invariant checkers ride this hook; the fire path
	// skips the hook dispatch entirely when none are registered.
	afterEvent []Handler
	// components holds substrate objects attached to this engine so
	// cross-cutting observers (invariant checkers, probes) can discover
	// what the simulation is made of without the substrates importing
	// them.
	components []any
}

// NewEngine builds an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now reports the current virtual time (duration since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// RNG exposes the engine's deterministic random source.
func (e *Engine) RNG() *RNG { return e.rng }

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are currently scheduled (cancelled
// events count until their slot is lazily reclaimed, exactly as the
// queue length always has).
func (e *Engine) Pending() int { return len(e.heap) }

// PeakPending reports the high-water mark of the event queue over the
// engine's lifetime.
func (e *Engine) PeakPending() int { return e.peakPending }

// less orders two arena slots by (time, sequence).
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.arena[a], &e.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// heapPush inserts an arena index and maintains the queue-depth
// high-water mark. This is the only insertion path, so peakPending is
// consistent across Run, Step, and direct scheduling.
func (e *Engine) heapPush(idx int32) {
	h := append(e.heap, idx)
	// Sift up through 4-ary parents.
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.heap = h
	if len(h) > e.peakPending {
		e.peakPending = len(h)
	}
}

// heapPop removes and returns the minimum arena index.
func (e *Engine) heapPop() int32 {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	item := h[n]
	e.heap = h[:n]
	if n > 0 {
		h = e.heap
		// Sift the displaced last element down from the root.
		i := 0
		for {
			first := i*4 + 1
			if first >= n {
				break
			}
			best := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if e.less(h[c], h[best]) {
					best = c
				}
			}
			if !e.less(h[best], item) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = item
	}
	return top
}

// alloc takes a slot from the free list (or grows the arena), stamps it
// with the next sequence number, and returns its handle.
func (e *Engine) alloc(at time.Duration, fn Handler, period time.Duration) Handle {
	var idx int32
	if e.freeHead != 0 {
		idx = e.freeHead - 1
		e.freeHead = int32(e.arena[idx].seq)
	} else {
		e.arena = append(e.arena, event{})
		idx = int32(len(e.arena) - 1)
	}
	ev := &e.arena[idx]
	ev.at = at
	ev.seq = e.seq
	e.seq++
	ev.fn = fn
	ev.period = period
	// ev.gen carries over from the slot's previous incarnation; bumping
	// happens at free time, which is what invalidates stale handles.
	return Handle{slot: idx + 1, gen: ev.gen}
}

// freeSlot retires a slot: the handler reference is dropped, the
// generation advances (invalidating outstanding handles), and the slot
// joins the intrusive free list for reuse, its seq field holding the
// next free slot.
func (e *Engine) freeSlot(idx int32) {
	ev := &e.arena[idx]
	ev.fn = nil
	ev.gen++
	ev.seq = uint64(e.freeHead)
	e.freeHead = idx + 1
}

// AfterEvent registers fn to run after every fired event, in registration
// order, with the clock still at the event's firing time. Hooks observe —
// they may read any component state — but must not schedule events or
// mutate substrates, or determinism relative to an unhooked engine is
// lost. The invariant checker layer rides this hook. When no hook is
// registered the fire path skips hook dispatch entirely.
func (e *Engine) AfterEvent(fn Handler) {
	e.afterEvent = append(e.afterEvent, fn)
}

// Register attaches a substrate component (fleet, cooling room, power
// topology, …) to the engine so cross-cutting observers can enumerate the
// simulation's parts via Components. Registration has no behavioural
// effect on the simulation itself.
func (e *Engine) Register(c any) {
	e.components = append(e.components, c)
}

// Components returns the registered substrate components in registration
// order. Callers must not mutate the returned slice.
func (e *Engine) Components() []any { return e.components }

// fireHooks invokes the after-event hooks for one fired event.
func (e *Engine) fireHooks() {
	for _, h := range e.afterEvent {
		h(e)
	}
}

// Cancel is returned by the Schedule-family convenience methods; calling
// it prevents the event from firing (it is a no-op after the event has
// fired). The allocation-free equivalent is Engine.Cancel on a Handle.
type Cancel func()

// At schedules fn to fire at absolute virtual time at and returns its
// handle. Scheduling in the past panics: it is always a programming error
// in a simulation. This is the allocation-free fast path; ScheduleAt
// wraps it when a self-contained cancel closure is more convenient.
func (e *Engine) At(at time.Duration, fn Handler) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	h := e.alloc(at, fn, 0)
	e.heapPush(h.slot - 1)
	return h
}

// After schedules fn to fire d after the current virtual time and returns
// its handle.
func (e *Engine) After(d time.Duration, fn Handler) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Periodic schedules fn to fire first at absolute time start and then
// repeatedly with the given period. The process occupies a single event
// slot for its whole lifetime — ticks do not allocate. Cancel(handle)
// stops future firings, including from inside fn itself.
func (e *Engine) Periodic(start, period time.Duration, fn Handler) Handle {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	h := e.alloc(start, fn, period)
	e.heapPush(h.slot - 1)
	return h
}

// Cancel invalidates a handle's event in O(1): the event will not fire
// (nor will a periodic process tick again), and its slot is reclaimed
// lazily when it surfaces at the heap top. Cancelling the zero Handle, a
// fired event, or an already-cancelled event is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.slot == 0 || int(h.slot) > len(e.arena) {
		return
	}
	ev := &e.arena[h.slot-1]
	if ev.gen != h.gen || ev.fn == nil {
		return
	}
	ev.fn = nil
}

// Active reports whether h still refers to a live event: scheduled and
// not cancelled (a periodic process is active for its whole lifetime).
func (e *Engine) Active(h Handle) bool {
	if h.slot == 0 || int(h.slot) > len(e.arena) {
		return false
	}
	ev := &e.arena[h.slot-1]
	return ev.gen == h.gen && ev.fn != nil
}

// ScheduleAt schedules fn to fire at absolute virtual time at. Scheduling
// in the past panics: it is always a programming error in a simulation.
func (e *Engine) ScheduleAt(at time.Duration, fn Handler) Cancel {
	h := e.At(at, fn)
	return func() { e.Cancel(h) }
}

// ScheduleAfter schedules fn to fire d after the current virtual time.
func (e *Engine) ScheduleAfter(d time.Duration, fn Handler) Cancel {
	h := e.After(d, fn)
	return func() { e.Cancel(h) }
}

// Every schedules fn to fire repeatedly with the given period, starting one
// period from now. The returned Cancel stops future firings.
func (e *Engine) Every(period time.Duration, fn Handler) Cancel {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	h := e.Periodic(e.now+period, period, fn)
	return func() { e.Cancel(h) }
}

// EveryFrom behaves like Every but fires the first tick at start (absolute).
func (e *Engine) EveryFrom(start, period time.Duration, fn Handler) Cancel {
	h := e.Periodic(start, period, fn)
	return func() { e.Cancel(h) }
}

// Stop halts Run after the currently-firing event returns. A stop applies
// only to the Run in progress: Run clears the flag on entry, so a stopped
// engine can always be resumed with a fresh call to Run (a Stop issued
// while no Run is executing is discarded).
func (e *Engine) Stop() { e.stopped = true }

// fire dispatches one popped arena slot and reports whether an event
// actually fired (false for a lazily-reclaimed cancelled slot). It is
// the single fire path shared by Run and Step, so cancelled-event
// skipping, the processed counter, periodic reinsertion, and hook
// dispatch behave identically under both.
func (e *Engine) fire(idx int32) bool {
	ev := &e.arena[idx]
	if ev.fn == nil {
		// Cancelled while queued: reclaim the slot, fire nothing.
		e.freeSlot(idx)
		return false
	}
	fn := ev.fn
	at := ev.at
	periodic := ev.period > 0
	if !periodic {
		// One-shot slots are recycled before dispatch so the handler's
		// own scheduling can reuse them; the generation bump makes the
		// outstanding handle inert, preserving cancel-after-fire = no-op.
		e.freeSlot(idx)
	}
	e.now = at
	e.processed++
	fn(e)
	if periodic {
		// Re-take the pointer: fn may have grown the arena.
		ev = &e.arena[idx]
		if ev.fn == nil {
			// Cancelled during its own tick: retire the slot.
			e.freeSlot(idx)
		} else {
			// Reuse the slot for the next tick. The sequence number is
			// taken after fn ran, exactly where the old per-tick event
			// allocation took it, so firing order is bit-for-bit
			// unchanged.
			ev.at = e.now + ev.period
			ev.seq = e.seq
			e.seq++
			e.heapPush(idx)
		}
	}
	if len(e.afterEvent) > 0 {
		e.fireHooks()
	}
	return true
}

// Run fires events in order until the queue is empty or virtual time would
// pass horizon. Events exactly at the horizon still fire. It returns
// ErrStopped if Stop was called during this run, otherwise nil. The
// stopped flag is cleared on entry, so a stopped engine resumes from where
// it halted when Run is called again. After Run returns, Now is
// min(horizon, time of last fired event) — the clock is advanced to the
// horizon when the queue drains early so that integrations cover the full
// window.
func (e *Engine) Run(horizon time.Duration) error {
	if horizon < e.now {
		return fmt.Errorf("sim: horizon %v before now %v", horizon, e.now)
	}
	e.stopped = false
	for len(e.heap) > 0 {
		if e.stopped {
			return ErrStopped
		}
		if e.arena[e.heap[0]].at > horizon {
			break
		}
		e.fire(e.heapPop())
	}
	if e.stopped {
		return ErrStopped
	}
	e.now = horizon
	return nil
}

// Step fires exactly one pending event (skipping cancelled ones) and
// reports whether an event fired. It shares Run's fire path, so the
// processed counter, peak-pending high-water mark, and hook dispatch are
// identical under single-stepping and free running.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		if e.fire(e.heapPop()) {
			return true
		}
	}
	return false
}
