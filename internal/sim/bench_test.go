package sim

import (
	"fmt"
	"testing"
	"time"
)

// Kernel microbenchmarks. These pin allocs/op at the layer the
// allocation-free rewrite targets: scheduling, firing, cancellation, and
// periodic churn, at queue depths spanning 10^4–10^6 pending events. The
// end-to-end numbers live in the repo-root bench suite; these isolate the
// kernel so a regression cannot hide behind substrate noise.

// benchSizes are the pending-queue depths the depth-sensitive benches sweep.
var benchSizes = []int{10_000, 100_000, 1_000_000}

// BenchmarkSchedule measures one ScheduleAt into a queue preloaded with
// size pending events (push cost at depth, plus per-event allocations).
func BenchmarkSchedule(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("pending=%d", size), func(b *testing.B) {
			e := NewEngine(1)
			fn := func(*Engine) {}
			for i := 0; i < size; i++ {
				e.ScheduleAt(time.Duration(i)*time.Millisecond, fn)
			}
			base := time.Duration(size) * time.Millisecond
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ScheduleAt(base+time.Duration(i), fn)
			}
		})
	}
}

// BenchmarkRunLargeQueue measures draining size events through Run —
// the fire path: pop, dispatch, hook check — and reports events/sec.
func BenchmarkRunLargeQueue(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("events=%d", size), func(b *testing.B) {
			fn := func(*Engine) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := NewEngine(1)
				for j := 0; j < size; j++ {
					e.ScheduleAt(time.Duration(j)*time.Microsecond, fn)
				}
				b.StartTimer()
				if err := e.Run(time.Duration(size) * time.Microsecond); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkPeriodicTicks measures periodic-process churn: 100 Every
// processes ticking through a long horizon. The old kernel allocated a
// fresh event per tick; the rewrite reuses the slot.
func BenchmarkPeriodicTicks(b *testing.B) {
	const procs = 100
	const ticksPer = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine(1)
		for p := 0; p < procs; p++ {
			e.Every(time.Second, func(*Engine) {})
		}
		b.StartTimer()
		if err := e.Run(ticksPer * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs*ticksPer)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkCancelHeavy measures the schedule-then-cancel pattern (timeouts
// that almost never fire): schedule size events, cancel 90 % of them, then
// drain. Lazy cancellation makes the cancel itself O(1); the drain pays
// the skip.
func BenchmarkCancelHeavy(b *testing.B) {
	const size = 100_000
	fn := func(*Engine) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine(1)
		cancels := make([]Cancel, 0, size)
		for j := 0; j < size; j++ {
			cancels = append(cancels, e.ScheduleAt(time.Duration(j)*time.Microsecond, fn))
		}
		b.StartTimer()
		for j, c := range cancels {
			if j%10 != 0 {
				c()
			}
		}
		if err := e.Run(time.Duration(size) * time.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleFireSteady measures the steady-state schedule-one /
// fire-one cycle that dominates event-driven substrates: each fired event
// schedules its successor, so the queue stays shallow and the per-event
// constant cost (not heap depth) is what's visible.
func BenchmarkScheduleFireSteady(b *testing.B) {
	e := NewEngine(1)
	var chain Handler
	n := 0
	chain = func(eng *Engine) {
		n++
		eng.ScheduleAfter(time.Microsecond, chain)
	}
	e.ScheduleAfter(time.Microsecond, chain)
	b.ReportAllocs()
	b.ResetTimer()
	// Each Step fires exactly one chain event which schedules the next.
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	if n < b.N {
		b.Fatalf("fired %d events over %d iterations", n, b.N)
	}
}
