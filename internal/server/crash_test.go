package server

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCrashFromActive(t *testing.T) {
	e := sim.NewEngine(1)
	s := MustNew(DefaultConfig())
	s.PowerOn(e)
	if err := e.Run(DefaultConfig().BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	s.SetUtilization(e.Now(), 0.7)
	if !s.Crash(e.Now()) {
		t.Fatal("active server must crash")
	}
	if s.State() != StateOff {
		t.Fatalf("state %v after crash, want Off", s.State())
	}
	if s.Utilization() != 0 {
		t.Fatalf("utilization %v after crash, want 0", s.Utilization())
	}
	if s.Crashes() != 1 {
		t.Fatalf("crashes %d, want 1", s.Crashes())
	}
	// Recovery is a normal boot.
	s.PowerOn(e)
	if s.State() != StateBooting {
		t.Fatalf("state %v after recovery PowerOn, want Booting", s.State())
	}
}

func TestCrashAbortsBoot(t *testing.T) {
	e := sim.NewEngine(1)
	s := MustNew(DefaultConfig())
	s.PowerOn(e)
	if err := e.Run(10 * time.Second); err != nil { // mid-boot
		t.Fatal(err)
	}
	if s.State() != StateBooting {
		t.Fatalf("state %v, want Booting", s.State())
	}
	if !s.Crash(e.Now()) {
		t.Fatal("booting server must crash")
	}
	if s.State() != StateOff {
		t.Fatalf("state %v after crash, want Off", s.State())
	}
	// The stale boot-completion event must not resurrect the machine.
	if err := e.Run(DefaultConfig().BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateOff {
		t.Fatalf("state %v after stale boot event, want Off", s.State())
	}
}

func TestCrashNoOpWhenOffOrShuttingDown(t *testing.T) {
	e := sim.NewEngine(1)
	s := MustNew(DefaultConfig())
	if s.Crash(e.Now()) {
		t.Fatal("off server must not crash")
	}
	s.PowerOn(e)
	if err := e.Run(DefaultConfig().BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	s.PowerOff(e)
	if s.State() != StateShuttingDown {
		t.Fatalf("state %v, want ShuttingDown", s.State())
	}
	if s.Crash(e.Now()) {
		t.Fatal("shutting-down server must not crash")
	}
	if s.Crashes() != 0 {
		t.Fatalf("crashes %d, want 0", s.Crashes())
	}
}

func TestCrashKeepsEnergyAccountingConsistent(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	s := MustNew(cfg)
	s.PowerOn(e)
	if err := e.Run(cfg.BootDelay + time.Hour); err != nil {
		t.Fatal(err)
	}
	s.SetUtilization(e.Now(), 0.5)
	crashAt := e.Now() + 30*time.Minute
	e.ScheduleAt(crashAt, func(eng *sim.Engine) { s.Crash(eng.Now()) })
	if err := e.Run(crashAt + time.Hour); err != nil {
		t.Fatal(err)
	}
	beforeJ := s.EnergyJ()
	s.Sync(e.Now())
	if s.EnergyJ() != beforeJ {
		t.Fatalf("an Off server must not accrue energy: %v -> %v", beforeJ, s.EnergyJ())
	}
	if s.LastSyncAt() != e.Now() {
		t.Fatalf("sync time %v, want %v", s.LastSyncAt(), e.Now())
	}
}
