package server

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func activeServer(t *testing.T, e *sim.Engine) *Server {
	t.Helper()
	s := MustNew(DefaultConfig())
	s.PowerOn(e)
	if err := e.Run(e.Now() + s.Config().BootDelay); err != nil {
		t.Fatal(err)
	}
	s.Sync(e.Now())
	if s.State() != StateActive {
		t.Fatalf("server not active after boot delay: %v", s.State())
	}
	return s
}

func TestIdlePowerIsSixtyPercentOfPeak(t *testing.T) {
	// Paper §4.3: "a powered on server with zero workload consumes
	// about 60% of its peak power."
	e := sim.NewEngine(1)
	s := activeServer(t, e)
	idle := s.Power()
	peak := s.Config().PeakPower
	if math.Abs(idle/peak-0.60) > 1e-9 {
		t.Errorf("idle/peak = %v, want 0.60", idle/peak)
	}
	s.SetUtilization(e.Now(), 1)
	if math.Abs(s.Power()-peak) > 1e-9 {
		t.Errorf("full-load power = %v, want %v", s.Power(), peak)
	}
}

func TestPowerMonotoneInUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	s := activeServer(t, e)
	check := func(a, b float64) bool {
		ua := math.Abs(math.Mod(a, 1))
		ub := math.Abs(math.Mod(b, 1))
		if ua > ub {
			ua, ub = ub, ua
		}
		s.SetUtilization(e.Now(), ua)
		pa := s.Power()
		s.SetUtilization(e.Now(), ub)
		pb := s.Power()
		return pa <= pb+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOffServerDrawsNothing(t *testing.T) {
	s := MustNew(DefaultConfig())
	if s.Power() != 0 {
		t.Errorf("off power = %v, want 0", s.Power())
	}
	if s.AvailableCapacity() != 0 {
		t.Errorf("off capacity = %v, want 0", s.AvailableCapacity())
	}
	// Utilization on an off server is ignored.
	s.SetUtilization(0, 0.5)
	if s.Utilization() != 0 {
		t.Error("off server accepted utilization")
	}
}

func TestBootLifecycleAndEnergy(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	s := MustNew(cfg)
	s.PowerOn(e)
	if s.State() != StateBooting {
		t.Fatalf("state after PowerOn = %v, want booting", s.State())
	}
	if s.Boots() != 1 {
		t.Errorf("Boots = %d, want 1", s.Boots())
	}
	// Boot energy is charged up front.
	if s.EnergyJ() < cfg.BootEnergy {
		t.Errorf("energy %v missing boot energy %v", s.EnergyJ(), cfg.BootEnergy)
	}
	// During boot it draws idle power.
	if got := s.Power(); math.Abs(got-cfg.PeakPower*cfg.IdleFraction) > 1e-9 {
		t.Errorf("boot power = %v, want idle %v", got, cfg.PeakPower*cfg.IdleFraction)
	}
	if err := e.Run(cfg.BootDelay); err != nil {
		t.Fatal(err)
	}
	s.Sync(e.Now())
	if s.State() != StateActive {
		t.Fatalf("state after boot = %v, want active", s.State())
	}
	// Double PowerOn is a no-op.
	s.PowerOn(e)
	if s.Boots() != 1 {
		t.Error("PowerOn on active server counted a boot")
	}
	// Graceful shutdown.
	s.PowerOff(e)
	if s.State() != StateShuttingDown {
		t.Fatalf("state after PowerOff = %v", s.State())
	}
	if err := e.Run(e.Now() + cfg.ShutdownDelay); err != nil {
		t.Fatal(err)
	}
	s.Sync(e.Now())
	if s.State() != StateOff {
		t.Fatalf("state after shutdown = %v, want off", s.State())
	}
}

func TestEnergyIntegration(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.BootEnergy = 0
	cfg.BootDelay = 0
	s := MustNew(cfg)
	s.PowerOn(e)
	if err := e.Run(0); err != nil { // zero-delay boot completes at t=0
		t.Fatal(err)
	}
	s.Sync(0)
	s.SetUtilization(0, 1.0)
	s.Sync(time.Hour)
	// One hour at peak power = PeakPower * 3600 J.
	want := cfg.PeakPower * 3600
	if math.Abs(s.EnergyJ()-want) > 1e-6*want {
		t.Errorf("energy = %v J, want %v J", s.EnergyJ(), want)
	}
}

func TestDVFSReducesPowerAndCapacity(t *testing.T) {
	e := sim.NewEngine(1)
	s := activeServer(t, e)
	now := e.Now()
	s.SetUtilization(now, 1)
	fullPower := s.Power()
	fullCap := s.AvailableCapacity()
	if err := s.SetPState(now, len(s.Config().PStates)-1); err != nil {
		t.Fatal(err)
	}
	slowPower := s.Power()
	slowCap := s.AvailableCapacity()
	if slowPower >= fullPower {
		t.Errorf("slowest p-state power %v not below nominal %v", slowPower, fullPower)
	}
	if slowCap >= fullCap {
		t.Errorf("slowest p-state capacity %v not below nominal %v", slowCap, fullCap)
	}
	// DVFS is superlinear: power drops faster than capacity.
	if (slowPower-s.Config().PeakPower*s.Config().IdleFraction)/(fullPower-s.Config().PeakPower*s.Config().IdleFraction) >= slowCap/fullCap {
		t.Error("dynamic power did not drop superlinearly vs capacity")
	}
	if err := s.SetPState(now, 99); err == nil {
		t.Error("out-of-range p-state should error")
	}
}

func TestThrottleAndCoreParking(t *testing.T) {
	e := sim.NewEngine(1)
	s := activeServer(t, e)
	now := e.Now()
	s.SetUtilization(now, 1)
	base := s.Power()
	baseCap := s.AvailableCapacity()

	if err := s.SetThrottle(now, 0.5); err != nil {
		t.Fatal(err)
	}
	if s.Power() >= base {
		t.Error("throttling did not reduce power")
	}
	if math.Abs(s.AvailableCapacity()-baseCap/2) > 1e-9 {
		t.Errorf("50%% throttle capacity = %v, want %v", s.AvailableCapacity(), baseCap/2)
	}
	if err := s.SetThrottle(now, 0); err == nil {
		t.Error("zero throttle should error")
	}
	if err := s.SetThrottle(now, 1); err != nil {
		t.Fatal(err)
	}

	// Parking half the cores saves idle power and halves capacity share.
	s.SetUtilization(now, 0)
	idleFull := s.Power()
	if err := s.ParkCores(now, s.Config().Cores/2); err != nil {
		t.Fatal(err)
	}
	idleParked := s.Power()
	wantSave := s.Config().PeakPower * s.Config().IdleFraction * s.Config().ParkSavings * 0.5
	if math.Abs((idleFull-idleParked)-wantSave) > 1e-9 {
		t.Errorf("parking saved %v W, want %v W", idleFull-idleParked, wantSave)
	}
	if err := s.ParkCores(now, s.Config().Cores); err == nil {
		t.Error("parking all cores should error")
	}
	if err := s.ParkCores(now, -1); err == nil {
		t.Error("negative parking should error")
	}
}

func TestThermalTrip(t *testing.T) {
	e := sim.NewEngine(1)
	s := activeServer(t, e)
	now := e.Now()
	if tripped := s.ObserveInlet(now, 25); tripped {
		t.Error("tripped at a safe inlet temperature")
	}
	if tripped := s.ObserveInlet(now, s.Config().TripTempC+5); !tripped {
		t.Error("did not trip above threshold")
	}
	if s.State() != StateOff {
		t.Errorf("state after trip = %v, want off", s.State())
	}
	if s.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", s.Trips())
	}
	// Off servers do not trip again.
	if tripped := s.ObserveInlet(now, 99); tripped {
		t.Error("off server tripped")
	}
	if s.InletTempC() != 99 {
		t.Errorf("InletTempC = %v, want 99", s.InletTempC())
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero peak", func(c *Config) { c.PeakPower = 0 }},
		{"idle fraction 1", func(c *Config) { c.IdleFraction = 1 }},
		{"negative idle", func(c *Config) { c.IdleFraction = -0.1 }},
		{"no p-states", func(c *Config) { c.PStates = nil }},
		{"bad p-state freq", func(c *Config) { c.PStates = []PState{{Freq: 1.5, DynFactor: 1}} }},
		{"bad dyn factor", func(c *Config) { c.PStates = []PState{{Freq: 1, DynFactor: 0}} }},
		{"first not nominal", func(c *Config) { c.PStates = []PState{{Freq: 0.5, DynFactor: 0.2}} }},
		{"zero capacity", func(c *Config) { c.Capacity = 0 }},
		{"negative boot delay", func(c *Config) { c.BootDelay = -time.Second }},
		{"negative boot energy", func(c *Config) { c.BootEnergy = -1 }},
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"park savings >1", func(c *Config) { c.ParkSavings = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestTimeMovingBackwardsPanics(t *testing.T) {
	s := MustNew(DefaultConfig())
	s.Sync(time.Hour)
	defer func() {
		if recover() == nil {
			t.Error("backwards time should panic")
		}
	}()
	s.Sync(time.Minute)
}

func TestUtilizationClamped(t *testing.T) {
	e := sim.NewEngine(1)
	s := activeServer(t, e)
	s.SetUtilization(e.Now(), 2.5)
	if s.Utilization() != 1 {
		t.Errorf("utilization = %v, want clamped to 1", s.Utilization())
	}
	s.SetUtilization(e.Now(), -3)
	if s.Utilization() != 0 {
		t.Errorf("utilization = %v, want clamped to 0", s.Utilization())
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		StateOff: "off", StateBooting: "booting", StateActive: "active",
		StateShuttingDown: "shutting-down", State(42): "state(42)",
	} {
		if st.String() != want {
			t.Errorf("State(%d) = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := MustNew(DefaultConfig())
	if s.Name() != "server" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.PStateIndex() != 0 {
		t.Errorf("initial p-state = %d", s.PStateIndex())
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config should panic")
		}
	}()
	bad := DefaultConfig()
	bad.PeakPower = 0
	MustNew(bad)
}

func TestPowerOffFromOffIsNoop(t *testing.T) {
	e := sim.NewEngine(1)
	s := MustNew(DefaultConfig())
	s.PowerOff(e) // off server: nothing happens
	if s.State() != StateOff {
		t.Errorf("state = %v", s.State())
	}
}

func TestPowerCurveValidation(t *testing.T) {
	tests := []struct {
		name  string
		curve []CurvePoint
	}{
		{"single point", []CurvePoint{{0, 0}}},
		{"not starting at origin", []CurvePoint{{0.1, 0}, {1, 1}}},
		{"not ending at one", []CurvePoint{{0, 0}, {0.9, 0.9}}},
		{"non-increasing util", []CurvePoint{{0, 0}, {0.5, 0.2}, {0.5, 0.4}, {1, 1}}},
		{"decreasing fraction", []CurvePoint{{0, 0}, {0.5, 0.6}, {0.8, 0.4}, {1, 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.PowerCurve = tt.curve
			if _, err := New(cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
	good := DefaultConfig()
	good.PowerCurve = BigLittleCurve()
	if _, err := New(good); err != nil {
		t.Errorf("BigLittleCurve rejected: %v", err)
	}
}

func TestBigLittleCurveSavesAtLightLoad(t *testing.T) {
	// §4.1: heterogeneous CMPs absorb light load on efficient cores.
	e := sim.NewEngine(1)
	homo := activeServer(t, e)

	hetCfg := DefaultConfig()
	hetCfg.PowerCurve = BigLittleCurve()
	het := MustNew(hetCfg)
	het.PowerOn(e)
	if err := e.Run(e.Now() + hetCfg.BootDelay); err != nil {
		t.Fatal(err)
	}
	het.Sync(e.Now())

	now := e.Now()
	// At 30 % load the little cores carry it far cheaper.
	homo.SetUtilization(now, 0.3)
	het.SetUtilization(now, 0.3)
	if het.Power() >= homo.Power() {
		t.Errorf("big.LITTLE at 30%% load %vW not below homogeneous %vW", het.Power(), homo.Power())
	}
	// At full load both hit the same peak.
	homo.SetUtilization(now, 1)
	het.SetUtilization(now, 1)
	if math.Abs(het.Power()-homo.Power()) > 1e-9 {
		t.Errorf("peak power differs: %v vs %v", het.Power(), homo.Power())
	}
	// And idle is unchanged (idle power is a platform floor).
	homo.SetUtilization(now, 0)
	het.SetUtilization(now, 0)
	if math.Abs(het.Power()-homo.Power()) > 1e-9 {
		t.Errorf("idle power differs: %v vs %v", het.Power(), homo.Power())
	}
}

func TestPowerCurveInterpolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerCurve = BigLittleCurve()
	// Halfway along the first segment: u=0.2 → 0.075 of dynamic.
	if got := cfg.dynFraction(0.2); math.Abs(got-0.075) > 1e-12 {
		t.Errorf("dynFraction(0.2) = %v, want 0.075", got)
	}
	// Breakpoint exactly.
	if got := cfg.dynFraction(0.4); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("dynFraction(0.4) = %v, want 0.15", got)
	}
	// Above the last point clamps to 1.
	if got := cfg.dynFraction(2); got != 1 {
		t.Errorf("dynFraction(2) = %v, want 1", got)
	}
	// Nil curve is identity.
	lin := DefaultConfig()
	if got := lin.dynFraction(0.37); got != 0.37 {
		t.Errorf("linear dynFraction = %v", got)
	}
}

func TestPowerOffAbortsBoot(t *testing.T) {
	e := sim.NewEngine(1)
	s := MustNew(DefaultConfig())
	s.PowerOn(e)
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateBooting {
		t.Fatalf("state = %v mid-boot", s.State())
	}
	s.PowerOff(e)
	if s.State() != StateShuttingDown {
		t.Fatalf("state after abort = %v, want shutting-down", s.State())
	}
	// The original boot-completion event must not flip the server back
	// to Active.
	if err := e.Run(e.Now() + DefaultConfig().BootDelay + time.Minute); err != nil {
		t.Fatal(err)
	}
	s.Sync(e.Now())
	if s.State() != StateOff {
		t.Errorf("state after settling = %v, want off", s.State())
	}
	if s.AvailableCapacity() != 0 {
		t.Errorf("aborted boot still advertises capacity %v", s.AvailableCapacity())
	}
	if s.Boots() != 1 {
		t.Errorf("boots = %d, want 1 (energy charged once, not refunded)", s.Boots())
	}
}

func TestPowerOffWhileShuttingDownIsNoop(t *testing.T) {
	e := sim.NewEngine(1)
	s := MustNew(DefaultConfig())
	s.PowerOn(e)
	if err := e.Run(e.Now() + DefaultConfig().BootDelay + time.Second); err != nil {
		t.Fatal(err)
	}
	s.PowerOff(e)
	first := s.State()
	s.PowerOff(e) // second call must not extend the shutdown deadline
	if s.State() != first || first != StateShuttingDown {
		t.Fatalf("state = %v, want shutting-down", s.State())
	}
	if err := e.Run(e.Now() + DefaultConfig().ShutdownDelay + time.Second); err != nil {
		t.Fatal(err)
	}
	s.Sync(e.Now())
	if s.State() != StateOff {
		t.Errorf("state = %v, want off", s.State())
	}
}
