// Package server models individual machines: their power draw as a
// function of utilization and DVFS state, their on/off lifecycle with boot
// delays and boot energy, core parking, component-level power breakdown,
// and the protective thermal trip the paper describes in §2.2 ("servers
// have protective temperature sensors which will shut down the server if
// the CPU or key components are overheated").
//
// The power model follows the literature the paper builds on: a powered-on
// idle server draws a large constant fraction of its peak (≈60 %, §4.3,
// after Fan et al. [10]), with the dynamic remainder proportional to
// utilization and scaled by the DVFS operating point.
package server

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// State is the lifecycle state of a server.
type State int

// Server lifecycle states. Transitions: Off→Booting→Active→ShuttingDown→Off,
// with Booting→ShuttingDown on an aborted boot and Active/Booting→Off
// directly on a thermal trip.
const (
	StateOff State = iota + 1
	StateBooting
	StateActive
	StateShuttingDown
)

// String renders the state for logs.
func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateBooting:
		return "booting"
	case StateActive:
		return "active"
	case StateShuttingDown:
		return "shutting-down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// PState is one DVFS operating point (paper §4.2). Freq is the clock as a
// fraction of nominal; capacity scales linearly with Freq while the
// dynamic power share scales with DynFactor (≈ Freq·V², superlinear in
// Freq because voltage drops with clock).
type PState struct {
	// Freq is the relative clock frequency in (0, 1].
	Freq float64
	// DynFactor is the relative dynamic power at this point in (0, 1].
	DynFactor float64
}

// DefaultPStates is a typical five-point ladder. DynFactor ≈ Freq³
// approximates the voltage–frequency relation.
func DefaultPStates() []PState {
	freqs := []float64{1.0, 0.9, 0.8, 0.7, 0.6}
	ps := make([]PState, 0, len(freqs))
	for _, f := range freqs {
		ps = append(ps, PState{Freq: f, DynFactor: f * f * f})
	}
	return ps
}

// Config describes a server model.
type Config struct {
	// Name identifies the server in logs and placement maps.
	Name string
	// PeakPower is the wall draw at 100 % utilization and nominal
	// frequency, in watts.
	PeakPower float64
	// IdleFraction is the idle power as a fraction of peak (the paper
	// cites ≈0.6).
	IdleFraction float64
	// PStates is the DVFS ladder, ordered from fastest to slowest. It
	// must contain at least one entry with Freq == 1.
	PStates []PState
	// Capacity is the work the server completes per second at nominal
	// frequency, in abstract capacity units (requests/s, connections
	// accepted/s — the workload layer decides).
	Capacity float64
	// BootDelay is the off→active latency (paper §4.3: "it takes time
	// to wake up a slept component").
	BootDelay time.Duration
	// BootEnergy is the extra energy consumed by one boot, in joules
	// ("this wakeup process may consume more energy and offset the
	// benefit of sleeping").
	BootEnergy float64
	// ShutdownDelay is the active→off latency.
	ShutdownDelay time.Duration
	// Cores is the number of CPU cores (core parking granularity).
	Cores int
	// ParkSavings is the fraction of idle power eliminated by parking
	// all cores (§4.3 "core parking").
	ParkSavings float64
	// TripTempC is the inlet temperature at which the protective sensor
	// shuts the server down.
	TripTempC float64
	// PowerCurve optionally maps utilization to the fraction of dynamic
	// power drawn, as piecewise-linear breakpoints over [0,1]. Nil means
	// linear (homogeneous cores). A concave curve models heterogeneous
	// CMPs (§4.1): efficient little cores absorb light load cheaply and
	// big cores engage only near the top ("selectively use cores with
	// different power and performance trade-offs to meet workload
	// variation").
	PowerCurve []CurvePoint
}

// CurvePoint is one breakpoint of a utilization→dynamic-power-fraction
// curve.
type CurvePoint struct {
	// Utilization in [0,1].
	Utilization float64
	// DynFraction in [0,1]: share of full dynamic power drawn at this
	// utilization.
	DynFraction float64
}

// BigLittleCurve is a canonical heterogeneous-CMP curve: the first 40 %
// of capacity comes from efficient cores at 15 % of dynamic power; the
// rest engages the big cores.
func BigLittleCurve() []CurvePoint {
	return []CurvePoint{
		{Utilization: 0, DynFraction: 0},
		{Utilization: 0.4, DynFraction: 0.15},
		{Utilization: 1, DynFraction: 1},
	}
}

// DefaultConfig is a contemporary 1U dual-socket service node.
func DefaultConfig() Config {
	return Config{
		Name:          "server",
		PeakPower:     300,
		IdleFraction:  0.60,
		PStates:       DefaultPStates(),
		Capacity:      1000,
		BootDelay:     90 * time.Second,
		BootEnergy:    20_000, // ~90 s near 220 W
		ShutdownDelay: 20 * time.Second,
		Cores:         8,
		ParkSavings:   0.25,
		TripTempC:     38,
	}
}

// Validate checks the configuration for physical consistency.
func (c Config) Validate() error {
	switch {
	case c.PeakPower <= 0:
		return fmt.Errorf("server: peak power %v must be positive", c.PeakPower)
	case c.IdleFraction < 0 || c.IdleFraction >= 1:
		return fmt.Errorf("server: idle fraction %v out of [0,1)", c.IdleFraction)
	case len(c.PStates) == 0:
		return fmt.Errorf("server: at least one P-state required")
	case c.Capacity <= 0:
		return fmt.Errorf("server: capacity %v must be positive", c.Capacity)
	case c.BootDelay < 0 || c.ShutdownDelay < 0:
		return fmt.Errorf("server: negative transition delay")
	case c.BootEnergy < 0:
		return fmt.Errorf("server: negative boot energy")
	case c.Cores <= 0:
		return fmt.Errorf("server: cores %d must be positive", c.Cores)
	case c.ParkSavings < 0 || c.ParkSavings > 1:
		return fmt.Errorf("server: park savings %v out of [0,1]", c.ParkSavings)
	}
	for i, p := range c.PStates {
		if p.Freq <= 0 || p.Freq > 1 {
			return fmt.Errorf("server: p-state %d frequency %v out of (0,1]", i, p.Freq)
		}
		if p.DynFactor <= 0 || p.DynFactor > 1 {
			return fmt.Errorf("server: p-state %d dyn factor %v out of (0,1]", i, p.DynFactor)
		}
	}
	if c.PStates[0].Freq != 1 {
		return fmt.Errorf("server: first p-state must be nominal frequency, got %v", c.PStates[0].Freq)
	}
	if len(c.PowerCurve) > 0 {
		if len(c.PowerCurve) < 2 {
			return fmt.Errorf("server: power curve needs at least two points")
		}
		first, last := c.PowerCurve[0], c.PowerCurve[len(c.PowerCurve)-1]
		if first.Utilization != 0 || first.DynFraction != 0 {
			return fmt.Errorf("server: power curve must start at (0,0)")
		}
		if last.Utilization != 1 || last.DynFraction != 1 {
			return fmt.Errorf("server: power curve must end at (1,1)")
		}
		for i := 1; i < len(c.PowerCurve); i++ {
			if c.PowerCurve[i].Utilization <= c.PowerCurve[i-1].Utilization {
				return fmt.Errorf("server: power curve utilization not increasing at %d", i)
			}
			if c.PowerCurve[i].DynFraction < c.PowerCurve[i-1].DynFraction {
				return fmt.Errorf("server: power curve fraction decreasing at %d", i)
			}
		}
	}
	return nil
}

// dynFraction evaluates the configured power curve (linear when nil).
func (c Config) dynFraction(u float64) float64 {
	if len(c.PowerCurve) == 0 {
		return u
	}
	for i := 1; i < len(c.PowerCurve); i++ {
		lo, hi := c.PowerCurve[i-1], c.PowerCurve[i]
		if u <= hi.Utilization {
			frac := (u - lo.Utilization) / (hi.Utilization - lo.Utilization)
			return lo.DynFraction + frac*(hi.DynFraction-lo.DynFraction)
		}
	}
	return 1
}

// Change is one observed power-affecting transition on a server, handed
// to its Watcher. Deltas are exactly the differences the server's own
// accounting produced, so a watcher that accumulates them maintains the
// same aggregates a fresh scan would compute (up to float association).
type Change struct {
	// OldState and NewState bracket the lifecycle transition (equal when
	// only power, energy, or the trip counter moved).
	OldState, NewState State
	// OldPowerW and NewPowerW bracket the instantaneous draw.
	OldPowerW, NewPowerW float64
	// EnergyDeltaJ is the energy accumulated since the last notification
	// (integration plus any boot surcharge).
	EnergyDeltaJ float64
	// TripDelta is the protective-trip counter increment (0 or 1).
	TripDelta int
}

// Watcher observes power-affecting changes on servers. A fleet installs
// one watcher per server (see Watch) and maintains struct-of-arrays
// aggregates — total and per-group power, committed/active counts,
// energy, trips — in O(changes) instead of rescanning every server.
type Watcher interface {
	// ServerChanged is called after a mutation left the server with a
	// different power draw, state, energy total, or trip count. slot is
	// the identity the watcher registered the server under.
	ServerChanged(slot int, c Change)
}

// Server is one simulated machine. Methods that change power-relevant
// state integrate energy up to the supplied instant first, so total energy
// is exact for piecewise-constant power.
type Server struct {
	cfg Config

	state       State
	pstate      int
	util        float64 // utilization of currently available capacity, [0,1]
	parkedCores int

	lastAt   time.Duration
	energyJ  float64
	trips    int
	boots    int
	crashes  int
	readyAt  time.Duration // when a pending boot completes
	offAt    time.Duration // when a pending shutdown completes
	inletC   float64
	throttle float64 // T-state duty cycle in (0,1]; 1 = no throttling

	// Notification hook: the watcher sees every power-affecting change,
	// tagged with slot. seen* hold the values of the last notification so
	// deltas are exact.
	watcher    Watcher
	slot       int
	seenState  State
	seenPowerW float64
	seenEnergy float64
	seenTrips  int
}

// New builds a server in the Off state.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, state: StateOff, throttle: 1, inletC: 20}, nil
}

// MustNew builds a server or panics; intended for tests and examples with
// known-good configurations.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name reports the configured name.
func (s *Server) Name() string { return s.cfg.Name }

// Config returns the server's configuration.
func (s *Server) Config() Config { return s.cfg }

// State reports the lifecycle state.
func (s *Server) State() State { return s.state }

// Utilization reports the current fraction of available capacity in use.
func (s *Server) Utilization() float64 { return s.util }

// PStateIndex reports the current DVFS operating point index.
func (s *Server) PStateIndex() int { return s.pstate }

// Trips reports how many protective thermal shutdowns have occurred.
func (s *Server) Trips() int { return s.trips }

// Boots reports how many boot cycles have been initiated.
func (s *Server) Boots() int { return s.boots }

// InletTempC reports the last observed inlet temperature.
func (s *Server) InletTempC() float64 { return s.inletC }

// advance integrates energy up to now.
func (s *Server) advance(now time.Duration) {
	if now < s.lastAt {
		panic(fmt.Sprintf("server %s: time moved backwards %v -> %v", s.cfg.Name, s.lastAt, now))
	}
	dt := (now - s.lastAt).Seconds()
	s.energyJ += s.Power() * dt
	s.lastAt = now

	// Complete pending transitions whose deadline has passed.
	if s.state == StateBooting && now >= s.readyAt {
		s.state = StateActive
	}
	if s.state == StateShuttingDown && now >= s.offAt {
		s.state = StateOff
		s.util = 0
	}
}

// Sync integrates energy up to now and completes due transitions without
// changing any setpoints. Call it before reading Power or EnergyJ mid-run.
func (s *Server) Sync(now time.Duration) {
	s.advance(now)
	s.notify()
}

// Watch installs w as the server's single watcher; notifications carry
// slot as the server's identity. The delta baseline is the server's
// current state, so install watchers before mutating. A nil w removes
// the hook.
func (s *Server) Watch(slot int, w Watcher) {
	s.watcher = w
	s.slot = slot
	s.seenState = s.state
	s.seenPowerW = s.Power()
	s.seenEnergy = s.energyJ
	s.seenTrips = s.trips
}

// notify hands the watcher the delta since the last notification, if
// anything power-relevant moved. Every public mutator ends here, after
// advance has integrated energy and completed due transitions.
func (s *Server) notify() {
	if s.watcher == nil {
		return
	}
	p := s.Power()
	if s.state == s.seenState && p == s.seenPowerW &&
		s.energyJ == s.seenEnergy && s.trips == s.seenTrips {
		return
	}
	c := Change{
		OldState:     s.seenState,
		NewState:     s.state,
		OldPowerW:    s.seenPowerW,
		NewPowerW:    p,
		EnergyDeltaJ: s.energyJ - s.seenEnergy,
		TripDelta:    s.trips - s.seenTrips,
	}
	s.seenState = s.state
	s.seenPowerW = p
	s.seenEnergy = s.energyJ
	s.seenTrips = s.trips
	s.watcher.ServerChanged(s.slot, c)
}

// Power reports the instantaneous wall draw in watts for the current
// state, utilization, DVFS point, throttling, and core parking.
func (s *Server) Power() float64 {
	switch s.state {
	case StateOff:
		return 0
	case StateBooting, StateShuttingDown:
		// Transitioning machines draw near-idle power but do no work.
		return s.idlePower()
	case StateActive:
		ps := s.cfg.PStates[s.pstate]
		dynamic := (s.cfg.PeakPower - s.cfg.PeakPower*s.cfg.IdleFraction) *
			s.cfg.dynFraction(s.util) * ps.DynFactor * s.throttle
		return s.idlePower() + dynamic
	default:
		return 0
	}
}

// idlePower is the baseline draw of a powered-on machine after core
// parking savings.
func (s *Server) idlePower() float64 {
	parkedFrac := float64(s.parkedCores) / float64(s.cfg.Cores)
	return s.cfg.PeakPower * s.cfg.IdleFraction * (1 - s.cfg.ParkSavings*parkedFrac)
}

// AvailableCapacity reports the work per second the server can currently
// absorb: zero unless active, scaled by DVFS frequency, throttling, and
// unparked cores.
func (s *Server) AvailableCapacity() float64 {
	if s.state != StateActive {
		return 0
	}
	ps := s.cfg.PStates[s.pstate]
	coreFrac := 1 - float64(s.parkedCores)/float64(s.cfg.Cores)
	return s.cfg.Capacity * ps.Freq * s.throttle * coreFrac
}

// EnergyJ reports the energy consumed so far (through the last advance).
func (s *Server) EnergyJ() float64 { return s.energyJ }

// LastSyncAt reports the instant through which energy has been integrated
// (the time of the last advance). External observers — e.g. the invariant
// checker — use it to reconcile EnergyJ against the power history without
// forcing a Sync of their own, which would perturb floating-point grouping
// relative to an unobserved run.
func (s *Server) LastSyncAt() time.Duration { return s.lastAt }

// SetUtilization assigns the utilization of available capacity at now.
// Values are clamped to [0,1]. Assigning utilization to a non-active
// server is a no-op (it has no capacity).
func (s *Server) SetUtilization(now time.Duration, u float64) {
	s.advance(now)
	if s.state != StateActive {
		s.util = 0
		s.notify()
		return
	}
	s.util = math.Max(0, math.Min(1, u))
	s.notify()
}

// SetPState moves the DVFS operating point at now. The index must be valid.
func (s *Server) SetPState(now time.Duration, idx int) error {
	if idx < 0 || idx >= len(s.cfg.PStates) {
		return fmt.Errorf("server %s: p-state %d out of range [0,%d)", s.cfg.Name, idx, len(s.cfg.PStates))
	}
	s.advance(now)
	s.pstate = idx
	s.notify()
	return nil
}

// SetThrottle sets the T-state duty cycle in (0,1] at now (paper §4.2:
// T-states "throttle down a CPU … by inserting STPCLK signals").
func (s *Server) SetThrottle(now time.Duration, duty float64) error {
	if duty <= 0 || duty > 1 {
		return fmt.Errorf("server %s: throttle duty %v out of (0,1]", s.cfg.Name, duty)
	}
	s.advance(now)
	s.throttle = duty
	s.notify()
	return nil
}

// ParkCores parks n cores at now (0 ≤ n < Cores).
func (s *Server) ParkCores(now time.Duration, n int) error {
	if n < 0 || n >= s.cfg.Cores {
		return fmt.Errorf("server %s: cannot park %d of %d cores", s.cfg.Name, n, s.cfg.Cores)
	}
	s.advance(now)
	s.parkedCores = n
	s.notify()
	return nil
}

// PowerOn starts booting the server using the engine's clock, charging the
// boot energy immediately. It is a no-op unless the server is Off.
func (s *Server) PowerOn(e *sim.Engine) {
	s.advance(e.Now())
	if s.state != StateOff {
		s.notify()
		return
	}
	s.state = StateBooting
	s.boots++
	s.energyJ += s.cfg.BootEnergy
	s.readyAt = e.Now() + s.cfg.BootDelay
	// The completion event must Sync (not bare advance) so the
	// Booting→Active transition reaches the watcher.
	e.ScheduleAt(s.readyAt, func(eng *sim.Engine) { s.Sync(eng.Now()) })
	s.notify()
}

// PowerOff starts a graceful shutdown. It applies to Active servers and
// to Booting ones — a boot in flight is aborted into the shutdown path
// (the boot energy is already spent and is not refunded), so an elastic
// controller that lowers its target during a boot window actually sheds
// the committed capacity. It is a no-op when Off or already ShuttingDown.
func (s *Server) PowerOff(e *sim.Engine) {
	s.advance(e.Now())
	if s.state != StateActive && s.state != StateBooting {
		s.notify()
		return
	}
	s.state = StateShuttingDown
	s.util = 0
	s.offAt = e.Now() + s.cfg.ShutdownDelay
	e.ScheduleAt(s.offAt, func(eng *sim.Engine) { s.Sync(eng.Now()) })
	s.notify()
}

// Crash models an abrupt failure at now (fault injection): a powered-on
// or booting machine drops straight to Off with no graceful shutdown
// delay — the same hard path a protective thermal trip takes, so the
// transition is legal under the lifecycle invariant. Recovery is a normal
// PowerOn. It reports whether the server actually crashed (a machine that
// is Off or already ShuttingDown has nothing to lose).
func (s *Server) Crash(now time.Duration) bool {
	s.advance(now)
	if s.state != StateActive && s.state != StateBooting {
		s.notify()
		return false
	}
	s.state = StateOff
	s.util = 0
	s.crashes++
	s.notify()
	return true
}

// Crashes reports how many abrupt (injected) failures have occurred.
func (s *Server) Crashes() int { return s.crashes }

// ObserveInlet reports the inlet air temperature to the server's
// protective sensor at now. Exceeding the trip threshold while powered on
// causes an immediate protective shutdown (no graceful delay) and reports
// true.
func (s *Server) ObserveInlet(now time.Duration, tempC float64) (tripped bool) {
	s.advance(now)
	s.inletC = tempC
	if tempC > s.cfg.TripTempC && (s.state == StateActive || s.state == StateBooting) {
		s.state = StateOff
		s.util = 0
		s.trips++
		s.notify()
		return true
	}
	s.notify()
	return false
}
