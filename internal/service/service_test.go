package service

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func capacities(n int, each float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = each
	}
	return out
}

func tierCaps(cfg Config, counts []int) [][]float64 {
	out := make([][]float64, len(cfg.Tiers))
	for i, tier := range cfg.Tiers {
		out[i] = capacities(counts[i], tier.OpCapacityPerServer)
	}
	return out
}

func TestSLAValidation(t *testing.T) {
	if err := (SLA{Target: 0, Percentile: 0.95}).Validate(); err == nil {
		t.Error("zero target should error")
	}
	if err := (SLA{Target: time.Second, Percentile: 0}).Validate(); err == nil {
		t.Error("zero percentile should error")
	}
	if err := (SLA{Target: time.Second, Percentile: 1.5}).Validate(); err == nil {
		t.Error("percentile > 1 should error")
	}
	if err := (SLA{Target: time.Second, Percentile: 0.95}).Validate(); err != nil {
		t.Errorf("valid SLA rejected: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultThreeTier("svc")
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := cfg
	bad.Tiers = nil
	if err := bad.Validate(); err == nil {
		t.Error("no tiers should error")
	}
	bad = DefaultThreeTier("svc")
	bad.Tiers[0].Fanout = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero fanout should error")
	}
	bad = DefaultThreeTier("svc")
	bad.Tiers[0].OpCapacityPerServer = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity should error")
	}
	bad = DefaultThreeTier("svc")
	bad.Tiers[0].MinServers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero min servers should error")
	}
	bad = DefaultThreeTier("svc")
	bad.Tiers[0].PackTarget = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero pack target should error")
	}
	bad = DefaultThreeTier("svc")
	bad.Tiers[0].Queue = workload.QueueModel{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid queue model should error")
	}
}

func TestEvaluateHealthyService(t *testing.T) {
	cfg := DefaultThreeTier("svc")
	counts, err := ServersFor(cfg, 1000, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(cfg, 1000, tierCaps(cfg, counts), PolicySpread)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLAViolated {
		t.Errorf("SLA violated at provisioned load: response %v", rep.Response)
	}
	if rep.DropFraction != 0 {
		t.Errorf("drops at provisioned load: %v", rep.DropFraction)
	}
	if len(rep.Tiers) != 3 {
		t.Fatalf("tier reports = %d, want 3", len(rep.Tiers))
	}
	// Storage fanout dominates offered ops.
	if rep.Tiers[2].OfferedOps <= rep.Tiers[0].OfferedOps {
		t.Error("storage tier should see more ops than web tier")
	}
	// Utilization near the 0.6 target on every tier.
	for _, tr := range rep.Tiers {
		if tr.MeanUtilization > 0.65 {
			t.Errorf("tier %s utilization %v above provision target", tr.Name, tr.MeanUtilization)
		}
	}
	// End-to-end response is the series sum of tiers.
	var sum time.Duration
	for _, tr := range rep.Tiers {
		sum += tr.Response
	}
	if rep.Response != sum {
		t.Errorf("response %v != tier sum %v", rep.Response, sum)
	}
}

func TestEvaluateOverloadDegradesGracefully(t *testing.T) {
	cfg := DefaultThreeTier("svc")
	counts, err := ServersFor(cfg, 100, 0.6) // provisioned for 100 rps
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(cfg, 5000, tierCaps(cfg, counts), PolicySpread)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SLAViolated {
		t.Error("50x overload should violate the SLA")
	}
	if rep.DropFraction <= 0 || rep.DropFraction >= 1 {
		t.Errorf("drop fraction = %v, want in (0,1): shed excess, keep serving", rep.DropFraction)
	}
}

func TestEvaluatePackVsSpread(t *testing.T) {
	cfg := DefaultThreeTier("svc")
	counts := []int{10, 10, 10}
	caps := tierCaps(cfg, counts)
	spread, err := Evaluate(cfg, 200, caps, PolicySpread)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := Evaluate(cfg, 200, caps, PolicyPack)
	if err != nil {
		t.Fatal(err)
	}
	// Packing concentrates load: some servers idle (reclaimable), and
	// the hottest server is hotter than under spreading.
	idle := 0
	for _, u := range pack.Tiers[0].Utilizations {
		if u == 0 {
			idle++
		}
	}
	if idle == 0 {
		t.Error("packing left no server idle at light load")
	}
	for _, u := range spread.Tiers[0].Utilizations {
		if u == 0 {
			t.Error("spreading left a server idle")
		}
	}
	if pack.Response <= spread.Response {
		t.Errorf("pack response %v should exceed spread response %v (hotter servers)",
			pack.Response, spread.Response)
	}
}

func TestEvaluateValidation(t *testing.T) {
	cfg := DefaultThreeTier("svc")
	caps := tierCaps(cfg, []int{2, 2, 3})
	if _, err := Evaluate(cfg, -1, caps, PolicySpread); err == nil {
		t.Error("negative demand should error")
	}
	if _, err := Evaluate(cfg, 100, caps[:2], PolicySpread); err == nil {
		t.Error("capacity list count mismatch should error")
	}
	if _, err := Evaluate(cfg, 100, caps, Policy(99)); err == nil {
		t.Error("unknown policy should error")
	}
	bad := cfg
	bad.Tiers = nil
	if _, err := Evaluate(bad, 100, nil, PolicySpread); err == nil {
		t.Error("invalid config should error")
	}
}

func TestServersForScalesWithDemand(t *testing.T) {
	cfg := DefaultThreeTier("svc")
	low, err := ServersFor(cfg, 100, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	high, err := ServersFor(cfg, 10_000, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range low {
		if high[i] < low[i] {
			t.Errorf("tier %d shrank with demand: %d -> %d", i, low[i], high[i])
		}
	}
	// Tier minimums hold at zero demand.
	zero, err := ServersFor(cfg, 0, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for i, tier := range cfg.Tiers {
		if zero[i] != tier.MinServers {
			t.Errorf("tier %s at zero demand = %d, want min %d", tier.Name, zero[i], tier.MinServers)
		}
	}
	// Capacity actually suffices: evaluating at the sized fleet meets
	// the target utilization.
	counts, err := ServersFor(cfg, 2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(cfg, 2000, tierCaps(cfg, counts), PolicySpread)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tiers {
		if tr.MeanUtilization > 0.5+1e-9 {
			t.Errorf("tier %s utilization %v above sizing target 0.5", tr.Name, tr.MeanUtilization)
		}
	}
}

func TestServersForValidation(t *testing.T) {
	cfg := DefaultThreeTier("svc")
	if _, err := ServersFor(cfg, 100, 0); err == nil {
		t.Error("zero target should error")
	}
	if _, err := ServersFor(cfg, 100, 1.5); err == nil {
		t.Error("target > 1 should error")
	}
	if _, err := ServersFor(cfg, -1, 0.5); err == nil {
		t.Error("negative demand should error")
	}
}

func TestTierFanoutCompounds(t *testing.T) {
	cfg := DefaultThreeTier("svc")
	counts, err := ServersFor(cfg, 1000, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Storage needs far more capacity than web at the same demand.
	webOps := 1000 * cfg.Tiers[0].Fanout
	stoOps := 1000 * cfg.Tiers[2].Fanout
	if stoOps/webOps < 10 {
		t.Skip("fanout config changed")
	}
	webCap := float64(counts[0]) * cfg.Tiers[0].OpCapacityPerServer
	stoCap := float64(counts[2]) * cfg.Tiers[2].OpCapacityPerServer
	if stoCap <= webCap {
		t.Errorf("storage capacity %v not above web %v despite 20x fanout", stoCap, webCap)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicySpread.String() != "spread" || PolicyPack.String() != "pack" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "policy(9)" {
		t.Error("unknown policy name wrong")
	}
}
