// Package service models the application side of the paper's elasticity
// story: multi-tier Internet services with SLAs, load-balancing policies
// over heterogeneous server pools, tier-by-tier scaling as user demand
// rises and falls, and graceful degradation at resource limits (§3:
// applications "can take advantage of server-level parallelism to scale
// out", and "their performances can degrade gracefully when reaching
// resource limitations").
package service

import (
	"fmt"
	"math"
	"time"

	"repro/internal/workload"
)

// SLA is a response-time service-level agreement (§3.2 lists SLAs among
// the inputs to macro-resource management).
type SLA struct {
	// Target is the response-time bound.
	Target time.Duration
	// Percentile is the fraction of requests that must meet Target
	// (informational at the fluid level; the mean must meet Target
	// scaled by a percentile allowance).
	Percentile float64
}

// Validate checks the SLA.
func (s SLA) Validate() error {
	if s.Target <= 0 {
		return fmt.Errorf("service: SLA target %v must be positive", s.Target)
	}
	if s.Percentile <= 0 || s.Percentile > 1 {
		return fmt.Errorf("service: SLA percentile %v out of (0,1]", s.Percentile)
	}
	return nil
}

// Policy selects how a tier's load is dispatched over its servers.
type Policy int

// Dispatch policies.
const (
	// PolicySpread fills all servers proportionally (least-loaded
	// balancing in steady state): best for latency, worst for
	// consolidation.
	PolicySpread Policy = iota + 1
	// PolicyPack fills servers one at a time to a target utilization,
	// leaving the rest idle for the on/off policy to reclaim.
	PolicyPack
)

// String renders the policy.
func (p Policy) String() string {
	switch p {
	case PolicySpread:
		return "spread"
	case PolicyPack:
		return "pack"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// TierConfig describes one tier of a service.
type TierConfig struct {
	// Name identifies the tier (web, application, storage…).
	Name string
	// Fanout is the number of tier operations generated per user
	// request (§3: "each user request may hit hundreds to thousands of
	// servers"; fanout compounds demand down the stack).
	Fanout float64
	// OpCapacityPerServer is the operations/second one tier server
	// sustains at utilization 1.
	OpCapacityPerServer float64
	// Queue converts tier utilization into tier response time.
	Queue workload.QueueModel
	// MinServers keeps a floor under elastic scaling.
	MinServers int
	// PackTarget is the fill level used by PolicyPack.
	PackTarget float64
}

// Validate checks the tier.
func (t TierConfig) Validate() error {
	if t.Fanout <= 0 {
		return fmt.Errorf("service: tier %q fanout %v must be positive", t.Name, t.Fanout)
	}
	if t.OpCapacityPerServer <= 0 {
		return fmt.Errorf("service: tier %q capacity %v must be positive", t.Name, t.OpCapacityPerServer)
	}
	if t.MinServers < 1 {
		return fmt.Errorf("service: tier %q min servers %d must be >= 1", t.Name, t.MinServers)
	}
	if t.PackTarget <= 0 || t.PackTarget > 1 {
		return fmt.Errorf("service: tier %q pack target %v out of (0,1]", t.Name, t.PackTarget)
	}
	return t.Queue.Validate()
}

// Config describes a complete multi-tier service.
type Config struct {
	Name  string
	SLA   SLA
	Tiers []TierConfig
}

// Validate checks the whole service definition.
func (c Config) Validate() error {
	if len(c.Tiers) == 0 {
		return fmt.Errorf("service: %q needs at least one tier", c.Name)
	}
	if err := c.SLA.Validate(); err != nil {
		return err
	}
	for _, t := range c.Tiers {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultThreeTier is a canonical web/app/storage stack whose storage
// fanout dominates (each user request touches many storage shards).
func DefaultThreeTier(name string) Config {
	web := workload.QueueModel{ServiceTime: 5 * time.Millisecond, MaxResponse: 2 * time.Second}
	app := workload.QueueModel{ServiceTime: 15 * time.Millisecond, MaxResponse: 4 * time.Second}
	sto := workload.QueueModel{ServiceTime: 8 * time.Millisecond, MaxResponse: 4 * time.Second}
	return Config{
		Name: name,
		SLA:  SLA{Target: 300 * time.Millisecond, Percentile: 0.95},
		Tiers: []TierConfig{
			{Name: "web", Fanout: 1, OpCapacityPerServer: 800, Queue: web, MinServers: 2, PackTarget: 0.7},
			{Name: "app", Fanout: 3, OpCapacityPerServer: 500, Queue: app, MinServers: 2, PackTarget: 0.7},
			{Name: "storage", Fanout: 20, OpCapacityPerServer: 2000, Queue: sto, MinServers: 3, PackTarget: 0.7},
		},
	}
}

// TierReport is the evaluated state of one tier.
type TierReport struct {
	Name string
	// OfferedOps is the tier demand in operations/second.
	OfferedOps float64
	// Utilizations is the per-server assigned utilization.
	Utilizations []float64
	// MeanUtilization averages over servers that received load.
	MeanUtilization float64
	// Response is the tier's mean response time at its hottest server
	// (the slowest shard gates a fanned-out request).
	Response time.Duration
	// DroppedOps is tier load beyond capacity.
	DroppedOps float64
}

// Report is the evaluated state of a service at one demand level.
type Report struct {
	Service string
	// DemandRPS is the user-request rate evaluated.
	DemandRPS float64
	// Tiers holds per-tier detail.
	Tiers []TierReport
	// Response is the end-to-end mean response (tiers in series).
	Response time.Duration
	// DropFraction is the worst tier drop ratio — the graceful
	// degradation measure.
	DropFraction float64
	// SLAViolated reports Response above the SLA target.
	SLAViolated bool
}

// Evaluate computes tier loads, responses, and SLA state for a user
// demand of rps, given per-tier server capacity lists (operations/second
// available on each server of that tier; zero entries are powered-off
// machines).
func Evaluate(cfg Config, rps float64, tierCapacities [][]float64, policy Policy) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	if rps < 0 {
		return Report{}, fmt.Errorf("service: negative demand %v", rps)
	}
	if len(tierCapacities) != len(cfg.Tiers) {
		return Report{}, fmt.Errorf("service: %d capacity lists for %d tiers", len(tierCapacities), len(cfg.Tiers))
	}
	rep := Report{Service: cfg.Name, DemandRPS: rps}
	var total time.Duration
	for i, tier := range cfg.Tiers {
		offered := rps * tier.Fanout
		var d workload.Dispatch
		switch policy {
		case PolicySpread:
			d = workload.SpreadLoad(offered, tierCapacities[i])
		case PolicyPack:
			var err error
			d, err = workload.PackLoad(offered, tierCapacities[i], tier.PackTarget)
			if err != nil {
				return Report{}, err
			}
		default:
			return Report{}, fmt.Errorf("service: unknown policy %v", policy)
		}
		tr := TierReport{
			Name:         tier.Name,
			OfferedOps:   offered,
			Utilizations: d.Utilizations,
			DroppedOps:   d.Dropped,
		}
		var maxU, sumU float64
		var loaded int
		for _, u := range d.Utilizations {
			if u > 0 {
				sumU += u
				loaded++
			}
			maxU = math.Max(maxU, u)
		}
		if loaded > 0 {
			tr.MeanUtilization = sumU / float64(loaded)
		}
		tr.Response = tier.Queue.Response(maxU)
		total += tr.Response
		if offered > 0 {
			rep.DropFraction = math.Max(rep.DropFraction, d.Dropped/offered)
		}
		rep.Tiers = append(rep.Tiers, tr)
	}
	rep.Response = total
	rep.SLAViolated = total > cfg.SLA.Target
	return rep, nil
}

// ServersFor returns the number of servers each tier needs to keep its
// utilization at or below targetU for a user demand of rps, honouring
// tier minimums — the tier-by-tier scaling rule (§3.2: "How do different
// tiers scale when user demands increase or decrease?").
func ServersFor(cfg Config, rps, targetU float64) ([]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if targetU <= 0 || targetU > 1 {
		return nil, fmt.Errorf("service: target utilization %v out of (0,1]", targetU)
	}
	if rps < 0 {
		return nil, fmt.Errorf("service: negative demand %v", rps)
	}
	out := make([]int, 0, len(cfg.Tiers))
	for _, tier := range cfg.Tiers {
		need := int(math.Ceil(rps * tier.Fanout / (tier.OpCapacityPerServer * targetU)))
		if need < tier.MinServers {
			need = tier.MinServers
		}
		out = append(out, need)
	}
	return out, nil
}
