package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/par"
)

// FrameWriter ingests fleet-synchronous telemetry: a fixed set of keys
// that are all sampled at the same instant, every round — the §5.3
// collector shape, where one sweep reads every server's counters at
// once. Because the timestamp is shared, the whole frame has one
// ordering check, one bucket boundary per pyramid level, and one count
// per bucket; per-key state reduces to sum/min/max columns stored as
// contiguous slabs. One round is therefore a handful of sequential
// array writes instead of per-key pyramid walks — the structure-of-
// arrays ingest path that keeps a 10,000-server sample round cache-
// friendly.
//
// Framed keys live in the parent Store's namespace: Query, Stats, Keys
// and the derived analyses (DailyAverages, HourlyPattern, Anomalies,
// CorrelateDetrended) see identical buckets to what per-point ingestion
// of the same values would have produced.
type FrameWriter struct {
	store *Store
	keys  []string

	mu     sync.RWMutex
	lastT  time.Duration
	hasAny bool
	// Raw band: one timestamp per retained round, values row-major
	// (round r's values are rawV[r*K : (r+1)*K]). Retention advances
	// rawHead in rounds; compaction amortizes the copy exactly as the
	// per-series raw band does.
	rawT          []time.Duration
	rawV          []float64
	rawHead       int
	droppedRounds int64
	levels        [4]frameLevel
	// colShards partitions the column space for AppendPar, fixed at
	// construction (a pure function of the frame width).
	colShards []par.Range
}

// frameLevel is one aggregation level of the frame pyramid. The open
// bucket is columnar: a shared start/count plus K-wide sum/min/max
// columns; closing a bucket appends the columns to the closed slabs.
type frameLevel struct {
	width  time.Duration
	curEnd time.Duration // exclusive end of the open bucket; 0 while empty
	curCnt int64
	curSum []float64
	curMin []float64
	curMax []float64
	// Closed buckets: starts/counts per bucket, value columns row-major
	// (bucket i, key k at [i*K+k]).
	starts []time.Duration
	counts []int64
	sums   []float64
	mins   []float64
	maxs   []float64
}

// frameRef resolves a framed key to its writer and column.
type frameRef struct {
	w   *FrameWriter
	col int
}

// Frames declares keys as one synchronously-sampled frame and returns
// its writer. The keys must be distinct and must not already exist in
// the store (as plain series or in another frame); they are created
// empty. Lock order: the store's frame registry is always acquired
// before any shard lock.
func (s *Store) Frames(keys []string) (*FrameWriter, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("telemetry: frame needs at least one key")
	}
	s.framesMu.Lock()
	defer s.framesMu.Unlock()
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return nil, fmt.Errorf("telemetry: duplicate frame key %q", k)
		}
		seen[k] = true
		if _, ok := s.frames[k]; ok {
			return nil, fmt.Errorf("telemetry: key %q already belongs to a frame", k)
		}
		sh := s.shardFor(k)
		sh.mu.RLock()
		_, exists := sh.series[k]
		sh.mu.RUnlock()
		if exists {
			return nil, fmt.Errorf("telemetry: key %q already exists as a plain series", k)
		}
	}
	w := &FrameWriter{store: s, keys: append([]string(nil), keys...)}
	k := len(keys)
	w.colShards = par.Shards(k)
	for i := range w.levels {
		// Cache-line-aligned columns: AppendPar shards these by column
		// range on 64-byte boundaries, so aligned bases keep concurrent
		// shards off each other's lines.
		w.levels[i] = frameLevel{
			curSum: par.AlignedFloats(k),
			curMin: par.AlignedFloats(k),
			curMax: par.AlignedFloats(k),
		}
	}
	w.levels[0].width = time.Minute
	w.levels[1].width = 15 * time.Minute
	w.levels[2].width = time.Hour
	w.levels[3].width = 24 * time.Hour
	for col, key := range w.keys {
		s.frames[key] = frameRef{w: w, col: col}
	}
	s.frameWriters = append(s.frameWriters, w)
	return w, nil
}

// Keys returns the frame's key set in column order.
func (w *FrameWriter) Keys() []string { return append([]string(nil), w.keys...) }

// Width returns the number of columns (keys) in the frame.
func (w *FrameWriter) Width() int { return len(w.keys) }

// LatestInto copies the most recent round's values into dst (which must
// have at least Width elements) and returns the round's timestamp. It
// reports false if no round has been ingested yet. This is the
// zero-copy scrape path for live exporters: one memcpy of the open row
// under the frame's read lock — no bucket materialization, no
// aggregation, and no contention with the store's shard locks.
func (w *FrameWriter) LatestInto(dst []float64) (time.Duration, bool) {
	k := len(w.keys)
	if len(dst) < k {
		panic(fmt.Sprintf("telemetry: LatestInto dst of %d for frame width %d", len(dst), k))
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	n := len(w.rawT)
	if n == 0 {
		return 0, false
	}
	copy(dst, w.rawV[(n-1)*k:n*k])
	return w.rawT[n-1], true
}

// Append ingests one round: values[i] is the sample for the i-th frame
// key, all observed at time t. Rounds must arrive in non-decreasing
// time order.
func (w *FrameWriter) Append(t time.Duration, values []float64) error {
	return w.AppendPar(t, values, nil)
}

// AppendPar is Append with the K-wide column updates fanned out over the
// pool. Every per-column fold (sum/min/max) touches only that column's
// state, so the sharded execution is bit-identical to the serial one for
// any worker count — including the nil pool, which runs the shards
// inline and IS the serial path. All boundary decisions, closed-bucket
// slab appends, raw-band appends, and retention trimming stay on the
// calling goroutine; only the in-bucket column arithmetic fans out.
func (w *FrameWriter) AppendPar(t time.Duration, values []float64, p *par.Pool) error {
	if len(values) != len(w.keys) {
		return fmt.Errorf("telemetry: frame round has %d values for %d keys", len(values), len(w.keys))
	}
	if t < 0 {
		return fmt.Errorf("telemetry: negative timestamp %v", t)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hasAny && t < w.lastT {
		return fmt.Errorf("telemetry: out-of-order frame round: %v after %v", t, w.lastT)
	}
	w.lastT = t
	w.hasAny = true
	w.rawT = append(w.rawT, t)
	w.rawV = append(w.rawV, values...)
	var inBucket [4]bool
	anyIn := false
	for i := range w.levels {
		inBucket[i] = w.levels[i].foldBoundary(t, values)
		anyIn = anyIn || inBucket[i]
	}
	if anyIn {
		if p == nil {
			// Closure-free serial path: the steady-state ingest stays
			// allocation-free per round.
			w.foldLevels(&inBucket, values, 0, len(values))
		} else {
			w.foldLevelsPar(p, inBucket, values)
		}
	}
	if ret := w.store.cfg.RawRetention; ret > 0 {
		cutoff := t - ret
		drop := 0
		for w.rawHead < len(w.rawT) && w.rawT[w.rawHead] < cutoff {
			w.rawHead++
			drop++
		}
		if drop > 0 {
			w.droppedRounds += int64(drop)
			if w.rawHead*2 >= len(w.rawT) {
				k := len(w.keys)
				n := copy(w.rawT, w.rawT[w.rawHead:])
				w.rawT = w.rawT[:n]
				nv := copy(w.rawV, w.rawV[w.rawHead*k:])
				w.rawV = w.rawV[:nv]
				w.rawHead = 0
			}
		}
	}
	return nil
}

// foldBoundary makes the level's single per-round boundary decision and,
// on rollover, closes the open bucket (slab appends) and seeds the new
// one from the round's values. It reports whether the round lands in the
// already-open bucket, i.e. whether the K-wide column updates are still
// pending (foldColumns).
func (l *frameLevel) foldBoundary(t time.Duration, values []float64) bool {
	if t < l.curEnd {
		l.curCnt++
		return true
	}
	var start time.Duration
	if t < l.curEnd+l.width {
		// Adjacent bucket — the steady-state rollover. No division.
		start = l.curEnd
	} else {
		start = t / l.width * l.width
	}
	if l.curEnd != 0 {
		l.starts = append(l.starts, l.curEnd-l.width)
		l.counts = append(l.counts, l.curCnt)
		l.sums = append(l.sums, l.curSum...)
		l.mins = append(l.mins, l.curMin...)
		l.maxs = append(l.maxs, l.curMax...)
	}
	l.curEnd = start + l.width
	l.curCnt = 1
	copy(l.curSum, values)
	copy(l.curMin, values)
	copy(l.curMax, values)
	return false
}

// foldLevelsPar fans foldLevels out over the column shards. Kept out of
// AppendPar so the closure's captures don't force the serial path's
// locals onto the heap.
func (w *FrameWriter) foldLevelsPar(p *par.Pool, inBucket [4]bool, values []float64) {
	p.RunRanges(w.colShards, func(_ int, r par.Range) {
		w.foldLevels(&inBucket, values, r.Lo, r.Hi)
	})
}

// foldLevels folds the round into every level whose bucket stayed open,
// over the column range [lo, hi) — the shard body of AppendPar's fan-out
// and, over the full range, the serial fold.
func (w *FrameWriter) foldLevels(inBucket *[4]bool, values []float64, lo, hi int) {
	for i := range w.levels {
		if inBucket[i] {
			w.levels[i].foldColumns(values, lo, hi)
		}
	}
}

// foldColumns folds the round's values into the open bucket over the
// column range [lo, hi) — the shard body of AppendPar's fan-out.
func (l *frameLevel) foldColumns(values []float64, lo, hi int) {
	for k := lo; k < hi; k++ {
		v := values[k]
		l.curSum[k] += v
		if v < l.curMin[k] {
			l.curMin[k] = v
		}
		if v > l.curMax[k] {
			l.curMax[k] = v
		}
	}
}

// query materializes one column's buckets over [from, to) at res.
func (w *FrameWriter) query(col int, from, to time.Duration, res Resolution) ([]Bucket, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	k := len(w.keys)
	if res == ResRaw {
		var out []Bucket
		for r := w.rawHead; r < len(w.rawT); r++ {
			if t := w.rawT[r]; t >= from && t < to {
				v := w.rawV[r*k+col]
				out = append(out, Bucket{Start: t, Count: 1, Sum: v, Min: v, Max: v})
			}
		}
		return out, nil
	}
	li, err := levelIndex(res)
	if err != nil {
		return nil, err
	}
	l := &w.levels[li]
	lo := sort.Search(len(l.starts), func(i int) bool {
		return l.starts[i]+l.width > from
	})
	hi := sort.Search(len(l.starts), func(i int) bool {
		return l.starts[i] >= to
	})
	takeCur := l.curEnd != 0 && l.curEnd > from && l.curEnd-l.width < to
	n := hi - lo
	if takeCur {
		n++
	}
	out := make([]Bucket, 0, n)
	for i := lo; i < hi; i++ {
		out = append(out, Bucket{
			Start: l.starts[i], Count: l.counts[i],
			Sum: l.sums[i*k+col], Min: l.mins[i*k+col], Max: l.maxs[i*k+col],
		})
	}
	if takeCur {
		out = append(out, Bucket{
			Start: l.curEnd - l.width, Count: l.curCnt,
			Sum: l.curSum[col], Min: l.curMin[col], Max: l.curMax[col],
		})
	}
	return out, nil
}

// stats folds the frame's storage accounting into out.
func (w *FrameWriter) stats(out *Stats) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	k := int64(len(w.keys))
	out.Keys += len(w.keys)
	out.RawPoints += int64(len(w.rawT)-w.rawHead) * k
	out.DroppedRaw += w.droppedRounds * k
	for i := range w.levels {
		l := &w.levels[i]
		n := int64(len(l.starts))
		if l.curEnd != 0 {
			n++
		}
		out.AggBuckets += n * k
	}
}
