package telemetry

import (
	"testing"
	"time"
)

func TestOutcomeRecorder(t *testing.T) {
	s, err := NewStore(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := []string{"interactive", "batch", "background"}
	r, err := NewOutcomeRecorder(s, classes)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Classes(); len(got) != 3 || got[0] != "interactive" {
		t.Fatalf("Classes() = %v", got)
	}
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Minute
		err := r.Record(at, UserOutcome{
			Offered: 1000, Admitted: 900, Rejected: 80, Degraded: 200, Deferred: 20,
			Q:       0.9,
			SLOMiss: []float64{0, 1, 0},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	bs, err := s.Query(KeyRejectedUsers, 0, 1<<62, ResRaw)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, b := range bs {
		total += b.Sum
	}
	if total != 800 {
		t.Errorf("rejected sum = %v, want 800", total)
	}
	bs, err = s.Query("users.slo_miss.batch", 0, 1<<62, ResRaw)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, b := range bs {
		total += b.Sum
	}
	if total != 10 {
		t.Errorf("batch SLO-miss sum = %v, want 10 (missed every tick)", total)
	}
}

func TestOutcomeRecorderValidation(t *testing.T) {
	s, err := NewStore(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOutcomeRecorder(nil, []string{"a"}); err == nil {
		t.Error("nil store should error")
	}
	if _, err := NewOutcomeRecorder(s, nil); err == nil {
		t.Error("no classes should error")
	}
	if _, err := NewOutcomeRecorder(s, []string{""}); err == nil {
		t.Error("empty class name should error")
	}
	r, err := NewOutcomeRecorder(s, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Record(0, UserOutcome{SLOMiss: []float64{1}}); err == nil {
		t.Error("SLO flag count mismatch should error")
	}
}

func TestOutcomeRecorderRetrySeries(t *testing.T) {
	s, err := NewStore(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewOutcomeRecorder(s, []string{"interactive"})
	if err != nil {
		t.Fatal(err)
	}
	// Before enabling, retry fields are silently dropped.
	if err := r.Record(0, UserOutcome{Retried: 50, SLOMiss: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(KeyRetriedUsers, 0, 1<<62, ResRaw); err == nil {
		t.Error("retried series exists before EnableRetrySeries")
	}
	if err := r.EnableRetrySeries(nil); err == nil {
		t.Error("EnableRetrySeries(nil) should error")
	}
	if err := r.EnableRetrySeries(s); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		err := r.Record(time.Duration(i)*time.Minute, UserOutcome{
			Retried: 50, Goodput: 900, Amplification: 1.25, BreakerState: 1,
			SLOMiss: []float64{0},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		key  string
		want float64
	}{
		{KeyRetriedUsers, 200},
		{KeyGoodputUsers, 3600},
		{KeyRetryAmplif, 5},
		{KeyBreakerState, 4},
	} {
		bs, err := s.Query(tc.key, 0, 1<<62, ResRaw)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, b := range bs {
			total += b.Sum
		}
		if total != tc.want {
			t.Errorf("%s sum = %v, want %v", tc.key, total, tc.want)
		}
	}
}
