package telemetry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/par"
)

// TestAppendParMatchesAppendAcrossWorkers pins the columnar-fold
// determinism contract: AppendPar's per-column folds are grouped by the
// width-only shard partition (par.Shards over the key count), so a frame
// ingested over 2 or 4 workers is indistinguishable — bucket for bucket,
// bit for bit — from the same frame appended serially.
func TestAppendParMatchesAppendAcrossWorkers(t *testing.T) {
	// Wide enough for several column shards (MinShardLen = 512).
	const (
		width  = 2000
		rounds = 300
	)
	keys := make([]string, width)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", i)
	}
	// One fixed synthetic dataset, shared by every ingest variant.
	rng := rand.New(rand.NewSource(11))
	data := make([][]float64, rounds)
	for r := range data {
		row := make([]float64, width)
		for k := range row {
			row[k] = rng.Float64()*100 - 20
		}
		data[r] = row
	}

	cfg := Config{RawInterval: 15 * time.Second, RawRetention: time.Hour, Shards: 4}
	type variant struct {
		name    string
		workers int
	}
	variants := []variant{{"inline", 1}, {"w2", 2}, {"w4", 4}}
	stores := make([]*Store, len(variants))
	for vi, v := range variants {
		stores[vi] = mustStore(t, cfg)
		fw, err := stores[vi].Frames(keys)
		if err != nil {
			t.Fatal(err)
		}
		pool := par.New(v.workers)
		for r := 0; r < rounds; r++ {
			now := time.Duration(r) * time.Minute
			if err := fw.AppendPar(now, data[r], pool); err != nil {
				t.Fatalf("%s: round %d: %v", v.name, r, err)
			}
		}
		pool.Close()
	}

	// Columns straddling every shard seam plus the edges; every
	// resolution; exact bucket equality (Bucket is comparable).
	cols := []int{0, 1, 511, 512, 513, 1023, 1024, 1500, width - 1}
	horizon := time.Duration(rounds) * time.Minute
	for _, c := range cols {
		for _, res := range []Resolution{ResRaw, ResMinute, ResQuarter, ResHour, ResDay} {
			want, err := stores[0].Query(keys[c], 0, horizon, res)
			if err != nil {
				t.Fatal(err)
			}
			for vi := 1; vi < len(variants); vi++ {
				got, err := stores[vi].Query(keys[c], 0, horizon, res)
				if err != nil {
					t.Fatal(err)
				}
				requireSameBuckets(t, got, want,
					fmt.Sprintf("%s col %d res %v", variants[vi].name, c, res))
			}
		}
	}
}
