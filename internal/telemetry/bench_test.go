package telemetry

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkAppendRetentionSteady measures steady-state ingest with the
// retention window full, so every append expires one old point. The
// pre-amortization trim recopied the whole retained band per expired
// point — O(window) per append, quadratic over a run — which this bench
// sweeps by window size: per-op cost must stay flat as the window grows.
func BenchmarkAppendRetentionSteady(b *testing.B) {
	for _, window := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			interval := time.Second
			store, err := NewStore(Config{
				RawInterval:  interval,
				RawRetention: time.Duration(window) * interval,
				Shards:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			a := store.Appender("srv/cpu")
			// Fill the window so the steady state (one drop per append)
			// starts at iteration 0.
			for i := 0; i < window; i++ {
				if err := a.Append(time.Duration(i)*interval, float64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := time.Duration(window+i) * interval
				if err := a.Append(t, float64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendByKey measures the map-lookup ingest path (one string
// hash + map probe per point).
func BenchmarkAppendByKey(b *testing.B) {
	store, err := NewStore(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const keys = 100
	names := make([]string, keys)
	for k := range names {
		names[k] = fmt.Sprintf("srv%02d/cpu", k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := time.Duration(i) * 15 * time.Second
		if err := store.Append(names[i%keys], ts, float64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendByHandle measures the same ingest through resolved
// Appender handles — the fast path collection pipelines should use.
func BenchmarkAppendByHandle(b *testing.B) {
	store, err := NewStore(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const keys = 100
	handles := make([]*Appender, keys)
	for k := range handles {
		handles[k] = store.Appender(fmt.Sprintf("srv%02d/cpu", k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := time.Duration(i) * 15 * time.Second
		if err := handles[i%keys].Append(ts, float64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
}
