package telemetry

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// frameEquivalentStores ingests the same synthetic rounds twice — once
// through a FrameWriter, once as per-point appends — and returns both
// stores for comparison.
func frameEquivalentStores(t *testing.T, cfg Config, keys []string, rounds int, step time.Duration) (framed, plain *Store) {
	t.Helper()
	framed = mustStore(t, cfg)
	plain = mustStore(t, cfg)
	fw, err := framed.Frames(keys)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, len(keys))
	for r := 0; r < rounds; r++ {
		now := time.Duration(r) * step
		for k := range vals {
			vals[k] = rng.Float64()*100 - 20
		}
		if err := fw.Append(now, vals); err != nil {
			t.Fatal(err)
		}
		for k, key := range keys {
			if err := plain.Append(key, now, vals[k]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return framed, plain
}

func requireSameBuckets(t *testing.T, got, want []Bucket, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d buckets, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: bucket %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestFramesMatchPerPointIngest is the core contract: a framed key is
// indistinguishable from the same values appended point by point — at
// every resolution, over full and partial ranges, and in the storage
// accounting.
func TestFramesMatchPerPointIngest(t *testing.T) {
	keys := []string{"a/power", "a/util", "b/power", "b/util", "inlet"}
	for _, cfg := range []Config{noRetention(), {RawInterval: 15 * time.Second, RawRetention: time.Hour, Shards: 4}} {
		framed, plain := frameEquivalentStores(t, cfg, keys, 300, time.Minute)
		for _, key := range keys {
			for _, res := range []Resolution{ResRaw, ResMinute, ResQuarter, ResHour, ResDay} {
				for _, span := range [][2]time.Duration{
					{0, 1 << 62},
					{40 * time.Minute, 3 * time.Hour},
					{90 * time.Minute, 91 * time.Minute},
				} {
					ctx := fmt.Sprintf("retention=%v %s %v [%v,%v)", cfg.RawRetention, key, res, span[0], span[1])
					got, err := framed.Query(key, span[0], span[1], res)
					if err != nil {
						t.Fatal(ctx, err)
					}
					want, err := plain.Query(key, span[0], span[1], res)
					if err != nil {
						t.Fatal(ctx, err)
					}
					requireSameBuckets(t, got, want, ctx)
				}
			}
		}
		if got, want := framed.Stats(), plain.Stats(); got != want {
			t.Errorf("retention=%v: frame stats %+v, plain stats %+v", cfg.RawRetention, got, want)
		}
		gotKeys, wantKeys := framed.Keys(), plain.Keys()
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("keys %v vs %v", gotKeys, wantKeys)
		}
		for i := range gotKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("keys %v vs %v", gotKeys, wantKeys)
			}
		}
	}
}

// TestFramesDerivedQueries checks the analysis layer runs unchanged on
// framed series.
func TestFramesDerivedQueries(t *testing.T) {
	keys := []string{"x", "y"}
	framed, plain := frameEquivalentStores(t, noRetention(), keys, 3000, time.Minute)
	for _, key := range keys {
		fd, err := framed.DailyAverages(key)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := plain.DailyAverages(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(fd) != len(pd) {
			t.Fatalf("daily averages %d vs %d", len(fd), len(pd))
		}
		for i := range fd {
			if fd[i] != pd[i] {
				t.Fatalf("daily average %d: %v vs %v", i, fd[i], pd[i])
			}
		}
		fh, err := framed.HourlyPattern(key)
		if err != nil {
			t.Fatal(err)
		}
		ph, err := plain.HourlyPattern(key)
		if err != nil {
			t.Fatal(err)
		}
		if fh != ph {
			t.Fatalf("hourly pattern mismatch: %v vs %v", fh, ph)
		}
	}
	fc, err := framed.CorrelateDetrended("x", "y", ResMinute, 61)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := plain.CorrelateDetrended("x", "y", ResMinute, 61)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fc-pc) != 0 {
		t.Fatalf("correlation %v vs %v", fc, pc)
	}
}

func TestFramesValidation(t *testing.T) {
	s := mustStore(t, noRetention())
	if _, err := s.Frames(nil); err == nil {
		t.Error("empty frame should error")
	}
	if _, err := s.Frames([]string{"dup", "dup"}); err == nil {
		t.Error("duplicate frame keys should error")
	}
	if err := s.Append("taken", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Frames([]string{"taken"}); err == nil {
		t.Error("frame over an existing plain series should error")
	}
	fw, err := s.Frames([]string{"f1", "f2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Frames([]string{"f2", "f3"}); err == nil {
		t.Error("frame over an already-framed key should error")
	}
	if err := fw.Append(0, []float64{1}); err == nil {
		t.Error("short round should error")
	}
	if err := fw.Append(-time.Second, []float64{1, 2}); err == nil {
		t.Error("negative timestamp should error")
	}
	if err := fw.Append(time.Minute, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Append(time.Second, []float64{1, 2}); err == nil {
		t.Error("out-of-order round should error")
	}
	if err := s.Append("f1", 0, 1); err == nil {
		t.Error("plain append to a framed key should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("Appender on a framed key should panic")
		}
	}()
	s.Appender("f1")
}

// TestBatchMatchesPlainAppend checks the burst path is behaviourally
// identical to per-point Appender appends.
func TestBatchMatchesPlainAppend(t *testing.T) {
	cfg := Config{RawInterval: 15 * time.Second, RawRetention: 30 * time.Minute, Shards: 4}
	batched := mustStore(t, cfg)
	plain := mustStore(t, cfg)
	keys := []string{"k0", "k1", "k2"}
	var apps []*Appender
	for _, k := range keys {
		apps = append(apps, batched.Appender(k))
	}
	for r := 0; r < 200; r++ {
		now := time.Duration(r) * time.Minute
		b := batched.BeginBatch()
		for i, k := range keys {
			v := float64(r * (i + 1))
			if err := b.Append(apps[i], now, v); err != nil {
				t.Fatal(err)
			}
			if err := plain.Append(k, now, v); err != nil {
				t.Fatal(err)
			}
		}
		b.End()
	}
	if got, want := batched.Stats(), plain.Stats(); got != want {
		t.Fatalf("batch stats %+v, plain stats %+v", got, want)
	}
	for _, k := range keys {
		for _, res := range []Resolution{ResRaw, ResMinute, ResHour} {
			got, err := batched.Query(k, 0, 1<<62, res)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Query(k, 0, 1<<62, res)
			if err != nil {
				t.Fatal(err)
			}
			requireSameBuckets(t, got, want, fmt.Sprintf("%s %v", k, res))
		}
	}
}

func TestBatchRejectsForeignAppender(t *testing.T) {
	s1 := mustStore(t, noRetention())
	s2 := mustStore(t, noRetention())
	a := s2.Appender("elsewhere")
	b := s1.BeginBatch()
	defer b.End()
	if err := b.Append(a, 0, 1); err == nil {
		t.Error("appender from another store should be rejected")
	}
}
