// Package telemetry is the data-management substrate of §5.3. A 10,000
// server fleet with 100 counters sampled every 15 seconds produces 2.4
// million points per minute; the same data serves long-term trends, daily
// usage patterns, load-balancer correlation after detrending, and anomaly
// detection. The paper's prescription — "preprocessing and indexing the
// data into multiple scales can speed up the query significantly. At the
// same time, raw data out of these bands can be considered as noise and
// be eliminated" — is implemented here as a streaming multi-resolution
// aggregation pyramid with raw-band retention.
//
// # Concurrency contract
//
// A Store is safe for concurrent use: any number of goroutines may mix
// appends (Store.Append, Appender.Append, FrameWriter.Append, Batch
// bursts) with reads (Query, Stats, Keys, the derived analyses, and
// FrameWriter.LatestInto). Internally the store is lock-sharded by key;
// framed keys are guarded by their FrameWriter's own lock and never
// touch the shard locks, so scraping a framed key (Query or LatestInto)
// stays wait-free with respect to BeginBatch bursts, which hold every
// shard lock for their duration. The frame registry lock is always
// acquired before any shard lock, and no path holds a shard lock while
// acquiring another store lock, so the lock order is acyclic.
//
// Reads are internally consistent but only per call: a Query observes
// one atomic state of its series (no torn open-tail buckets), while a
// sequence of calls (e.g. Stats then Query, or the multi-Query derived
// analyses) may straddle concurrent appends. Per-key sample ordering
// remains the appender's obligation: timestamps per key (and per frame)
// must be non-decreasing regardless of which goroutine delivers them.
// The one exception to general thread-safety is Batch itself: a Batch
// value must stay on the goroutine that began it, and End must be
// called promptly.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// Resolution names one level of the aggregation pyramid.
type Resolution int

// Pyramid levels, finest first.
const (
	ResRaw Resolution = iota + 1
	ResMinute
	ResQuarter
	ResHour
	ResDay
)

// String renders the resolution.
func (r Resolution) String() string {
	switch r {
	case ResRaw:
		return "raw"
	case ResMinute:
		return "1m"
	case ResQuarter:
		return "15m"
	case ResHour:
		return "1h"
	case ResDay:
		return "1d"
	default:
		return fmt.Sprintf("res(%d)", int(r))
	}
}

// Interval returns the bucket width of a resolution given the raw
// sampling interval.
func (r Resolution) Interval(raw time.Duration) (time.Duration, error) {
	switch r {
	case ResRaw:
		return raw, nil
	case ResMinute:
		return time.Minute, nil
	case ResQuarter:
		return 15 * time.Minute, nil
	case ResHour:
		return time.Hour, nil
	case ResDay:
		return 24 * time.Hour, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown resolution %d", int(r))
	}
}

// Bucket is one aggregated interval.
type Bucket struct {
	// Start is the bucket's inclusive start time.
	Start time.Duration
	// Count, Sum, Min, Max summarize the folded samples.
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (0 for an empty bucket).
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// point is one raw sample.
type point struct {
	t time.Duration
	v float64
}

// level is one aggregation level of a key's pyramid. The open tail
// bucket lives inline (cur) rather than at the end of the slice: a fold
// that lands in the open bucket — the overwhelmingly common case for the
// coarse levels — updates the level struct itself and touches no other
// memory, so one ingested point dirties a handful of contiguous cache
// lines instead of four scattered slice tails.
type level struct {
	width time.Duration
	// curEnd caches cur's exclusive end time (zero while the level is
	// empty). Timestamps per key are non-decreasing, so a sample lands
	// either in cur or in a new bucket past it; the cached end turns the
	// common tail hit into one comparison, no division.
	curEnd time.Duration
	cur    Bucket   // open tail bucket; empty iff curEnd == 0
	done   []Bucket // closed buckets, dense, in time order
}

func (l *level) fold(t time.Duration, v float64) {
	if t < l.curEnd {
		l.cur.Count++
		l.cur.Sum += v
		if v < l.cur.Min {
			l.cur.Min = v
		}
		if v > l.cur.Max {
			l.cur.Max = v
		}
		return
	}
	var start time.Duration
	if t < l.curEnd+l.width {
		// Adjacent bucket — the steady-state rollover for a level whose
		// width matches the sampling cadence. No division.
		start = l.curEnd
	} else {
		start = t / l.width * l.width
	}
	if l.curEnd != 0 {
		l.done = append(l.done, l.cur)
	}
	l.curEnd = start + l.width
	l.cur = Bucket{Start: start, Count: 1, Sum: v, Min: v, Max: v}
}

// open reports whether the level has an open tail bucket.
func (l *level) open() bool { return l.curEnd != 0 }

// series is the pyramid for one key.
type series struct {
	// raw[rawHead:] is the retained raw band. Retention advances rawHead
	// instead of recopying the slice per drop; compact() reclaims the
	// dead prefix once it reaches half the slice, so trimming is
	// amortized O(1) per append instead of O(window).
	raw     []point
	rawHead int
	levels  [4]level // minute, quarter, hour, day — inline for locality
	lastT   time.Duration
	hasAny  bool
	// dropped counts raw points discarded by band retention.
	dropped int64
}

// retained returns the live raw band.
func (ser *series) retained() []point { return ser.raw[ser.rawHead:] }

// compact slides the live band to the front when the dead prefix
// dominates, bounding memory at ~2× the retained window.
func (ser *series) compact() {
	if ser.rawHead > 0 && ser.rawHead*2 >= len(ser.raw) {
		n := copy(ser.raw, ser.raw[ser.rawHead:])
		ser.raw = ser.raw[:n]
		ser.rawHead = 0
	}
}

// Config configures a Store.
type Config struct {
	// RawInterval is the base sampling period (the paper uses 15 s).
	RawInterval time.Duration
	// RawRetention bounds how long raw points are kept; zero keeps
	// everything. Aggregates are kept forever (they are the "bands" of
	// interest; rawer data "can be considered as noise and be
	// eliminated").
	RawRetention time.Duration
	// Shards is the number of lock shards for concurrent ingestion.
	Shards int
}

// DefaultConfig matches the paper's scenario: 15-second samples, one hour
// of raw retention, enough shards for a many-core collector.
func DefaultConfig() Config {
	return Config{RawInterval: 15 * time.Second, RawRetention: time.Hour, Shards: 32}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RawInterval <= 0 {
		return fmt.Errorf("telemetry: raw interval %v must be positive", c.RawInterval)
	}
	if c.RawRetention < 0 {
		return fmt.Errorf("telemetry: raw retention %v must be non-negative", c.RawRetention)
	}
	if c.Shards <= 0 {
		return fmt.Errorf("telemetry: shards %d must be positive", c.Shards)
	}
	return nil
}

// Store is a sharded multi-resolution time-series store, safe for
// concurrent appends and queries.
type Store struct {
	cfg    Config
	shards []*shard
	// Frame registry (see Frames). framesMu is always acquired before
	// any shard lock; the per-point hot paths (Appender.Append,
	// Batch.Append) never touch it.
	framesMu     sync.RWMutex
	frames       map[string]frameRef
	frameWriters []*FrameWriter
}

type shard struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewStore builds a store.
func NewStore(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, shards: make([]*shard, cfg.Shards), frames: make(map[string]frameRef)}
	for i := range s.shards {
		s.shards[i] = &shard{series: make(map[string]*series)}
	}
	return s, nil
}

func (s *Store) shardFor(key string) *shard {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return s.shards[h%uint64(len(s.shards))]
}

func newSeries() *series {
	return &series{
		levels: [4]level{
			{width: time.Minute},
			{width: 15 * time.Minute},
			{width: time.Hour},
			{width: 24 * time.Hour},
		},
	}
}

// Append ingests one sample. Timestamps per key must be non-decreasing
// (collection pipelines deliver in order); regressions are rejected.
// Pipelines appending the same key repeatedly should resolve an Appender
// once and use its Append, which skips the per-point key hash and map
// lookup.
func (s *Store) Append(key string, t time.Duration, v float64) error {
	// Hold the frame registry read lock across the shard operation so a
	// concurrent Frames() cannot register key between the check and the
	// series creation (registry before shard is the package lock order).
	s.framesMu.RLock()
	defer s.framesMu.RUnlock()
	if _, framed := s.frames[key]; framed {
		return fmt.Errorf("telemetry: key %q belongs to a frame; append through its FrameWriter", key)
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ser, ok := sh.series[key]
	if !ok {
		ser = newSeries()
		sh.series[key] = ser
	}
	return s.appendLocked(key, ser, t, v)
}

// appendLocked ingests one sample into a resolved series. The caller
// holds the series' shard lock.
func (s *Store) appendLocked(key string, ser *series, t time.Duration, v float64) error {
	if t < 0 {
		return fmt.Errorf("telemetry: negative timestamp %v", t)
	}
	if ser.hasAny && t < ser.lastT {
		return fmt.Errorf("telemetry: out-of-order sample for %q: %v after %v", key, t, ser.lastT)
	}
	ser.lastT = t
	ser.hasAny = true
	ser.raw = append(ser.raw, point{t: t, v: v})
	for i := range ser.levels {
		ser.levels[i].fold(t, v)
	}
	// Band retention: drop raw samples older than the window by advancing
	// the head index (timestamps are non-decreasing, so expiry is always
	// a prefix); compaction amortizes the copy.
	if s.cfg.RawRetention > 0 {
		cutoff := t - s.cfg.RawRetention
		drop := 0
		for ser.rawHead < len(ser.raw) && ser.raw[ser.rawHead].t < cutoff {
			ser.rawHead++
			drop++
		}
		if drop > 0 {
			ser.dropped += int64(drop)
			ser.compact()
		}
	}
	return nil
}

// Appender is a resolved handle to one series: the shard and series are
// looked up once at construction, so the per-point ingest path skips the
// key hash and map lookup entirely. An Appender is safe for concurrent
// use with other Appenders and with Store methods (appends still take
// the shard lock); per-key sample ordering rules are unchanged.
type Appender struct {
	store *Store
	sh    *shard
	ser   *series
	key   string
}

// Appender interns key and returns its append handle, creating the
// series if it does not exist yet. Keys belonging to a frame have no
// per-point series; resolving one is a programming error and panics.
func (s *Store) Appender(key string) *Appender {
	s.framesMu.RLock()
	defer s.framesMu.RUnlock()
	if _, framed := s.frames[key]; framed {
		panic(fmt.Sprintf("telemetry: key %q belongs to a frame; append through its FrameWriter", key))
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	ser, ok := sh.series[key]
	if !ok {
		ser = newSeries()
		sh.series[key] = ser
	}
	sh.mu.Unlock()
	return &Appender{store: s, sh: sh, ser: ser, key: key}
}

// Key returns the series key the handle is bound to.
func (a *Appender) Key() string { return a.key }

// Append ingests one sample through the resolved handle.
func (a *Appender) Append(t time.Duration, v float64) error {
	a.sh.mu.Lock()
	err := a.store.appendLocked(a.key, a.ser, t, v)
	a.sh.mu.Unlock()
	return err
}

// Batch is a write burst that holds every shard lock, so a sampling
// round over N series pays two lock operations per shard instead of two
// per point — the difference between 20,000 atomic RMWs and 64 when a
// 10,000-server collector flushes one round. Queries and other appenders
// block for the duration, so End must be called promptly (it is safe and
// idiomatic to defer it). A Batch must not outlive one burst: it is not
// safe for concurrent use.
type Batch struct {
	s *Store
}

// BeginBatch locks the store for a burst of appends through resolved
// Appenders. Shards are locked in index order — the only multi-lock
// acquisition in the package, so lock ordering stays consistent.
func (s *Store) BeginBatch() Batch {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	return Batch{s: s}
}

// Append ingests one sample through a resolved handle under the batch's
// locks. The handle must come from the same store the batch was begun
// on.
func (b Batch) Append(a *Appender, t time.Duration, v float64) error {
	if a.store != b.s {
		return fmt.Errorf("telemetry: appender %q belongs to a different store", a.key)
	}
	return b.s.appendLocked(a.key, a.ser, t, v)
}

// End releases every shard lock acquired by BeginBatch.
func (b Batch) End() {
	for _, sh := range b.s.shards {
		sh.mu.Unlock()
	}
}

// Keys returns all stored keys in sorted order, framed keys included.
func (s *Store) Keys() []string {
	var keys []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.series {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	s.framesMu.RLock()
	for k := range s.frames {
		keys = append(keys, k)
	}
	s.framesMu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Stats summarizes storage.
type Stats struct {
	// Keys is the number of series.
	Keys int
	// RawPoints is the number of retained raw samples.
	RawPoints int64
	// DroppedRaw is the number of raw samples discarded by retention.
	DroppedRaw int64
	// AggBuckets is the total bucket count across all levels.
	AggBuckets int64
}

// Stats reports storage accounting — the §5.3 storage-reduction measure.
func (s *Store) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ser := range sh.series {
			out.Keys++
			out.RawPoints += int64(len(ser.retained()))
			out.DroppedRaw += ser.dropped
			for i := range ser.levels {
				l := &ser.levels[i]
				out.AggBuckets += int64(len(l.done))
				if l.open() {
					out.AggBuckets++
				}
			}
		}
		sh.mu.RUnlock()
	}
	s.framesMu.RLock()
	writers := s.frameWriters
	s.framesMu.RUnlock()
	for _, w := range writers {
		w.stats(&out)
	}
	return out
}

// Query returns the buckets of key overlapping [from, to) at the given
// resolution. Raw queries synthesize one bucket per sample from the
// retained raw band.
//
// Framed keys are resolved against the frame registry first and answer
// entirely from their FrameWriter's columns: a scrape of framed
// telemetry never waits on a shard lock, so it cannot stall behind a
// BeginBatch ingest burst (which holds every shard lock). Before this
// ordering, a framed-key query blocked on the — always irrelevant —
// shard its key hashed to for the whole burst.
func (s *Store) Query(key string, from, to time.Duration, res Resolution) ([]Bucket, error) {
	if to < from {
		return nil, fmt.Errorf("telemetry: inverted range [%v, %v)", from, to)
	}
	s.framesMu.RLock()
	ref, framed := s.frames[key]
	s.framesMu.RUnlock()
	if framed {
		return ref.w.query(ref.col, from, to, res)
	}
	sh := s.shardFor(key)
	sh.mu.RLock()
	ser, ok := sh.series[key]
	if !ok {
		sh.mu.RUnlock()
		return nil, fmt.Errorf("telemetry: unknown key %q", key)
	}
	defer sh.mu.RUnlock()
	if res == ResRaw {
		var out []Bucket
		for _, p := range ser.retained() {
			if p.t >= from && p.t < to {
				out = append(out, Bucket{Start: p.t, Count: 1, Sum: p.v, Min: p.v, Max: p.v})
			}
		}
		return out, nil
	}
	li, err := levelIndex(res)
	if err != nil {
		return nil, err
	}
	lv := &ser.levels[li]
	// Binary search the dense, sorted closed buckets, then splice in the
	// open tail bucket if it overlaps the range.
	lo := sort.Search(len(lv.done), func(i int) bool {
		return lv.done[i].Start+lv.width > from
	})
	hi := sort.Search(len(lv.done), func(i int) bool {
		return lv.done[i].Start >= to
	})
	takeCur := lv.open() && lv.curEnd > from && lv.cur.Start < to
	n := hi - lo
	if takeCur {
		n++
	}
	out := make([]Bucket, n)
	copy(out, lv.done[lo:hi])
	if takeCur {
		out[n-1] = lv.cur
	}
	return out, nil
}

func levelIndex(res Resolution) (int, error) {
	switch res {
	case ResMinute:
		return 0, nil
	case ResQuarter:
		return 1, nil
	case ResHour:
		return 2, nil
	case ResDay:
		return 3, nil
	default:
		return 0, fmt.Errorf("telemetry: resolution %v has no aggregate level", res)
	}
}

// DailyAverages returns the per-day mean of a key — the long-term trend
// query ("predict long term usage trend (e.g. by performing daily
// average)").
func (s *Store) DailyAverages(key string) ([]float64, error) {
	bs, err := s.Query(key, 0, 1<<62, ResDay)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(bs))
	for _, b := range bs {
		out = append(out, b.Mean())
	}
	return out, nil
}

// HourlyPattern returns the mean value per hour-of-day — the usage-pattern
// query ("understand usage patterns within a day (e.g. by performing
// hourly average)").
func (s *Store) HourlyPattern(key string) ([24]float64, error) {
	var sums [24]float64
	var counts [24]int64
	bs, err := s.Query(key, 0, 1<<62, ResHour)
	if err != nil {
		return [24]float64{}, err
	}
	for _, b := range bs {
		h := int(b.Start/time.Hour) % 24
		sums[h] += b.Sum
		counts[h] += b.Count
	}
	var out [24]float64
	for h := range out {
		if counts[h] > 0 {
			out[h] = sums[h] / float64(counts[h])
		}
	}
	return out, nil
}

// CorrelateDetrended computes the Pearson correlation of two keys at the
// given resolution after removing each series' own trend with a centered
// moving average — the load-balancer-behaviour query ("by performing
// correlations after removing the hourly trend").
func (s *Store) CorrelateDetrended(key1, key2 string, res Resolution, window int) (float64, error) {
	a, err := s.Query(key1, 0, 1<<62, res)
	if err != nil {
		return 0, err
	}
	b, err := s.Query(key2, 0, 1<<62, res)
	if err != nil {
		return 0, err
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < window {
		return 0, fmt.Errorf("telemetry: %d aligned buckets below detrend window %d", n, window)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = a[i].Mean()
		ys[i] = b[i].Mean()
	}
	dx, err := stats.Detrend(xs, window)
	if err != nil {
		return 0, err
	}
	dy, err := stats.Detrend(ys, window)
	if err != nil {
		return 0, err
	}
	return stats.Correlation(dx, dy)
}

// Anomaly is one detected outlier.
type Anomaly struct {
	// At is the bucket start time.
	At time.Duration
	// Value is the observed bucket mean.
	Value float64
	// Score is the robust z-score against the hour-of-day pattern.
	Score float64
}

// Anomalies flags minute buckets whose mean deviates from the key's
// hour-of-day pattern by more than zThreshold standard deviations — the
// spike-detection query ("detect anomalies (e.g. by monitoring unusually
// spikes)").
func (s *Store) Anomalies(key string, zThreshold float64) ([]Anomaly, error) {
	if zThreshold <= 0 {
		return nil, fmt.Errorf("telemetry: z threshold %v must be positive", zThreshold)
	}
	pattern, err := s.HourlyPattern(key)
	if err != nil {
		return nil, err
	}
	bs, err := s.Query(key, 0, 1<<62, ResMinute)
	if err != nil {
		return nil, err
	}
	// Residual spread vs the hourly pattern.
	var resid stats.Running
	for _, b := range bs {
		h := int(b.Start/time.Hour) % 24
		resid.Add(b.Mean() - pattern[h])
	}
	sd := resid.StdDev()
	if sd == 0 {
		return nil, nil
	}
	var out []Anomaly
	for _, b := range bs {
		h := int(b.Start/time.Hour) % 24
		z := (b.Mean() - pattern[h] - resid.Mean()) / sd
		if math.Abs(z) >= zThreshold {
			out = append(out, Anomaly{At: b.Start, Value: b.Mean(), Score: z})
		}
	}
	return out, nil
}
