package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentScrapeWhileIngest is the live-exporter shape: one
// goroutine ingests frame rounds, one runs Batch bursts over plain
// series, and scrapers hammer every read path the serving layer uses
// (Query at several resolutions, LatestInto, Stats, Keys, the derived
// analyses). Run under -race this proves the store's concurrency
// contract; without -race it is still a torn-read smoke test because
// every observed bucket must be internally consistent.
func TestConcurrentScrapeWhileIngest(t *testing.T) {
	s, err := NewStore(Config{RawInterval: 15 * time.Second, RawRetention: time.Hour, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	frameKeys := []string{"f/power", "f/util", "f/inlet", "f/cap"}
	fw, err := s.Frames(frameKeys)
	if err != nil {
		t.Fatal(err)
	}
	plainKeys := make([]string, 8)
	appenders := make([]*Appender, len(plainKeys))
	for i := range plainKeys {
		plainKeys[i] = fmt.Sprintf("plain/%d", i)
		appenders[i] = s.Appender(plainKeys[i])
	}

	const rounds = 2000
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Frame ingester.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals := make([]float64, len(frameKeys))
		for r := 0; r < rounds; r++ {
			ts := time.Duration(r) * 15 * time.Second
			for k := range vals {
				vals[k] = float64(r + k)
			}
			if err := fw.Append(ts, vals); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Batched plain-series ingester.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			ts := time.Duration(r) * 15 * time.Second
			b := s.BeginBatch()
			for i, a := range appenders {
				if err := b.Append(a, ts, float64(r*i)); err != nil {
					b.End()
					t.Error(err)
					return
				}
			}
			b.End()
		}
	}()

	// Scrapers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			latest := make([]float64, fw.Width())
			for i := 0; !stop.Load(); i++ {
				key := frameKeys[i%len(frameKeys)]
				if i%2 == 1 {
					key = plainKeys[i%len(plainKeys)]
				}
				res := []Resolution{ResRaw, ResMinute, ResHour}[i%3]
				bs, err := s.Query(key, 0, 1<<62, res)
				if err != nil {
					t.Errorf("query %q: %v", key, err)
					return
				}
				for _, b := range bs {
					if b.Count <= 0 || b.Min > b.Max {
						t.Errorf("torn bucket for %q: %+v", key, b)
						return
					}
				}
				if ts, ok := fw.LatestInto(latest); ok {
					// A round is written atomically: the latest row must be
					// the self-consistent r, r+1, r+2, ... pattern.
					base := latest[0]
					for k, v := range latest {
						if v != base+float64(k) {
							t.Errorf("torn frame row at %v: %v", ts, latest)
							return
						}
					}
				}
				if st := s.Stats(); st.RawPoints < 0 || st.Keys < 0 {
					t.Errorf("implausible stats: %+v", st)
					return
				}
				if i%64 == 0 {
					s.Keys()
					// Derived analyses share Query's locking; exercise one.
					if _, err := s.DailyAverages(frameKeys[0]); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}

	// Let writers finish, then release scrapers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	go func() {
		// Writers are the first two Adds; give them time then stop readers.
		time.Sleep(50 * time.Millisecond)
		stop.Store(true)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent soak wedged")
	}
}

// TestFramedReadsDoNotBlockBehindBatch pins the scrape-latency fix: a
// Batch burst holds every shard lock, but framed keys live outside the
// shards, so Query and LatestInto on them must complete while the batch
// is open. Before Query consulted the frame registry first, a framed
// scrape blocked on the (irrelevant) shard its key hashed to until the
// burst ended.
func TestFramedReadsDoNotBlockBehindBatch(t *testing.T) {
	s, err := NewStore(Config{RawInterval: 15 * time.Second, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := s.Frames([]string{"f/a", "f/b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Append(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}

	b := s.BeginBatch()
	defer b.End()

	done := make(chan error, 1)
	go func() {
		if _, err := s.Query("f/a", 0, 1<<62, ResRaw); err != nil {
			done <- err
			return
		}
		buf := make([]float64, fw.Width())
		if _, ok := fw.LatestInto(buf); !ok {
			done <- fmt.Errorf("no latest round")
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("framed read blocked behind an open batch")
	}
}

func TestLatestInto(t *testing.T) {
	s, err := NewStore(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fw, err := s.Frames([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 3)
	if _, ok := fw.LatestInto(buf); ok {
		t.Fatal("LatestInto reported a round before any append")
	}
	if err := fw.Append(10*time.Second, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Append(25*time.Second, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	ts, ok := fw.LatestInto(buf)
	if !ok || ts != 25*time.Second {
		t.Fatalf("LatestInto = %v, %v", ts, ok)
	}
	if buf[0] != 4 || buf[1] != 5 || buf[2] != 6 {
		t.Fatalf("latest row = %v", buf)
	}
	// Undersized destination is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	fw.LatestInto(make([]float64, 2))
}
