package telemetry

import (
	"fmt"
	"time"
)

// Canonical key names for user-outcome series. The request-level
// experiments and the live server record under these so dashboards and
// queries can rely on stable names; per-class SLO-miss series append a
// class label: "users.slo_miss.<class>".
const (
	KeyOfferedUsers  = "users.offered"
	KeyAdmittedUsers = "users.admitted"
	KeyRejectedUsers = "users.rejected"
	KeyDegradedUsers = "users.degraded"
	KeyDeferredUsers = "users.deferred"
	KeyFairShareQ    = "users.fair_share_q"

	// Closed-loop retry series, recorded only when the run wires a
	// retry loop (EnableRetrySeries).
	KeyRetriedUsers = "users.retried"
	KeyGoodputUsers = "users.goodput"
	KeyRetryAmplif  = "users.retry_amplification"
	KeyBreakerState = "users.breaker_state"
)

// UserOutcome is one admission tick's user-visible accounting, ready
// for the pyramid. The package stays generic: class semantics live in
// internal/workload; here classes are just labelled series.
type UserOutcome struct {
	// Offered, Admitted, Rejected, Degraded, Deferred are user counts
	// for the tick.
	Offered, Admitted, Rejected, Degraded, Deferred float64
	// Q is the fair share granted this tick.
	Q float64
	// Retried, Goodput, Amplification, and BreakerState describe the
	// closed retry loop for the tick; they are recorded only when the
	// recorder has retry series enabled. BreakerState is the numeric
	// circuit-breaker state (0 closed, 1 open, 2 half-open).
	Retried, Goodput, Amplification, BreakerState float64
	// SLOMiss holds one 0/1 flag per class, in the recorder's class
	// order. Length must match the recorder's classes.
	SLOMiss []float64
}

// OutcomeRecorder appends user-outcome samples under the canonical
// keys through pre-resolved handles, so a per-tick record costs no key
// hashing or map lookups beyond the shard locks.
type OutcomeRecorder struct {
	offered, admitted, rejected *Appender
	degraded, deferred, q       *Appender
	retried, goodput            *Appender
	amplif, breaker             *Appender
	slo                         []*Appender
	classes                     []string
}

// NewOutcomeRecorder resolves the canonical series on the store plus
// one SLO-miss series per class name (e.g. "interactive").
func NewOutcomeRecorder(s *Store, classes []string) (*OutcomeRecorder, error) {
	if s == nil {
		return nil, fmt.Errorf("telemetry: nil store")
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("telemetry: outcome recorder needs at least one class")
	}
	r := &OutcomeRecorder{
		offered:  s.Appender(KeyOfferedUsers),
		admitted: s.Appender(KeyAdmittedUsers),
		rejected: s.Appender(KeyRejectedUsers),
		degraded: s.Appender(KeyDegradedUsers),
		deferred: s.Appender(KeyDeferredUsers),
		q:        s.Appender(KeyFairShareQ),
		classes:  append([]string(nil), classes...),
	}
	for _, c := range classes {
		if c == "" {
			return nil, fmt.Errorf("telemetry: empty class name")
		}
		r.slo = append(r.slo, s.Appender("users.slo_miss."+c))
	}
	return r, nil
}

// Classes reports the class order SLOMiss samples must arrive in.
func (r *OutcomeRecorder) Classes() []string { return r.classes }

// EnableRetrySeries resolves the closed-loop retry series on the store
// so subsequent Record calls also append Retried, Goodput,
// Amplification, and BreakerState. Call once, before recording, on runs
// that drive a retry loop; plain admission runs skip the four series
// entirely.
func (r *OutcomeRecorder) EnableRetrySeries(s *Store) error {
	if s == nil {
		return fmt.Errorf("telemetry: nil store")
	}
	r.retried = s.Appender(KeyRetriedUsers)
	r.goodput = s.Appender(KeyGoodputUsers)
	r.amplif = s.Appender(KeyRetryAmplif)
	r.breaker = s.Appender(KeyBreakerState)
	return nil
}

// Record appends one tick's outcome at time t.
func (r *OutcomeRecorder) Record(t time.Duration, o UserOutcome) error {
	if len(o.SLOMiss) != len(r.slo) {
		return fmt.Errorf("telemetry: outcome has %d SLO flags, recorder tracks %d classes",
			len(o.SLOMiss), len(r.slo))
	}
	for _, step := range [...]struct {
		app *Appender
		v   float64
	}{
		{r.offered, o.Offered},
		{r.admitted, o.Admitted},
		{r.rejected, o.Rejected},
		{r.degraded, o.Degraded},
		{r.deferred, o.Deferred},
		{r.q, o.Q},
		{r.retried, o.Retried},
		{r.goodput, o.Goodput},
		{r.amplif, o.Amplification},
		{r.breaker, o.BreakerState},
	} {
		if step.app == nil {
			continue // retry series not enabled for this run
		}
		if err := step.app.Append(t, step.v); err != nil {
			return err
		}
	}
	for i, app := range r.slo {
		if err := app.Append(t, o.SLOMiss[i]); err != nil {
			return err
		}
	}
	return nil
}
