package telemetry_test

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Example shows the §5.3 pipeline: ingest 15-second samples, query the
// pyramid at a coarse resolution, and watch band retention discard stale
// raw points while aggregates survive.
func Example() {
	store, err := telemetry.NewStore(telemetry.Config{
		RawInterval:  15 * time.Second,
		RawRetention: 30 * time.Minute,
		Shards:       4,
	})
	if err != nil {
		panic(err)
	}
	// Two hours of a counter that sits at 10 and doubles in hour two.
	for i := 0; i < 2*60*4; i++ {
		v := 10.0
		if i >= 60*4 {
			v = 20.0
		}
		if err := store.Append("srv1/cpu", time.Duration(i)*15*time.Second, v); err != nil {
			panic(err)
		}
	}
	hours, err := store.Query("srv1/cpu", 0, 2*time.Hour, telemetry.ResHour)
	if err != nil {
		panic(err)
	}
	for _, b := range hours {
		fmt.Printf("hour starting %v: mean %.0f (%d samples)\n",
			b.Start, b.Mean(), b.Count)
	}
	st := store.Stats()
	fmt.Printf("raw retained: %d of %d appended\n", st.RawPoints, st.RawPoints+st.DroppedRaw)
	// Output:
	// hour starting 0s: mean 10 (240 samples)
	// hour starting 1h0m0s: mean 20 (240 samples)
	// raw retained: 121 of 480 appended
}
