package telemetry

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func noRetention() Config {
	return Config{RawInterval: 15 * time.Second, RawRetention: 0, Shards: 4}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{RawInterval: 0, Shards: 1}); err == nil {
		t.Error("zero interval should error")
	}
	if _, err := NewStore(Config{RawInterval: time.Second, RawRetention: -1, Shards: 1}); err == nil {
		t.Error("negative retention should error")
	}
	if _, err := NewStore(Config{RawInterval: time.Second, Shards: 0}); err == nil {
		t.Error("zero shards should error")
	}
	if _, err := NewStore(DefaultConfig()); err != nil {
		t.Error("default config rejected")
	}
}

func TestAppendAndRawQuery(t *testing.T) {
	s := mustStore(t, noRetention())
	for i := 0; i < 10; i++ {
		if err := s.Append("cpu", time.Duration(i)*15*time.Second, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	bs, err := s.Query("cpu", 0, time.Hour, ResRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 10 {
		t.Fatalf("raw buckets = %d, want 10", len(bs))
	}
	if bs[3].Sum != 3 || bs[3].Count != 1 {
		t.Errorf("bucket 3 = %+v", bs[3])
	}
	// Range filtering.
	bs, err = s.Query("cpu", 30*time.Second, 60*time.Second, ResRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Errorf("windowed raw buckets = %d, want 2", len(bs))
	}
}

func TestAppendErrors(t *testing.T) {
	s := mustStore(t, noRetention())
	if err := s.Append("k", -time.Second, 1); err == nil {
		t.Error("negative time should error")
	}
	if err := s.Append("k", time.Minute, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("k", time.Second, 2); err == nil {
		t.Error("out-of-order append should error")
	}
	// Equal timestamps are fine (multiple counters can share an instant).
	if err := s.Append("k", time.Minute, 3); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
	if _, err := s.Query("missing", 0, time.Hour, ResRaw); err == nil {
		t.Error("unknown key should error")
	}
	if _, err := s.Query("k", time.Hour, 0, ResRaw); err == nil {
		t.Error("inverted range should error")
	}
	if _, err := s.Query("k", 0, time.Hour, Resolution(99)); err == nil {
		t.Error("unknown resolution should error")
	}
}

func TestAggregationPyramidConsistency(t *testing.T) {
	// Invariant: every level's total Sum and Count equal the raw totals.
	s := mustStore(t, noRetention())
	var wantSum float64
	const n = 4 * 24 * 60 * 4 // 4 days of 15s samples
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i)/100) + 2
		wantSum += v
		if err := s.Append("m", time.Duration(i)*15*time.Second, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, res := range []Resolution{ResMinute, ResQuarter, ResHour, ResDay} {
		bs, err := s.Query("m", 0, 1<<62, res)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var count int64
		for _, b := range bs {
			sum += b.Sum
			count += b.Count
			if b.Min > b.Max {
				t.Fatalf("%v bucket min %v > max %v", res, b.Min, b.Max)
			}
		}
		if count != n {
			t.Errorf("%v count = %d, want %d", res, count, n)
		}
		if math.Abs(sum-wantSum) > 1e-6*wantSum {
			t.Errorf("%v sum = %v, want %v", res, sum, wantSum)
		}
	}
	// Bucket counts shrink up the pyramid.
	counts := make([]int, 0, 4)
	for _, res := range []Resolution{ResMinute, ResQuarter, ResHour, ResDay} {
		bs, _ := s.Query("m", 0, 1<<62, res)
		counts = append(counts, len(bs))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] {
			t.Errorf("pyramid not shrinking: %v", counts)
		}
	}
}

func TestBandRetentionDropsRawKeepsAggregates(t *testing.T) {
	cfg := Config{RawInterval: 15 * time.Second, RawRetention: 10 * time.Minute, Shards: 2}
	s := mustStore(t, cfg)
	const n = 24 * 60 * 4 // one day of 15s samples
	for i := 0; i < n; i++ {
		if err := s.Append("m", time.Duration(i)*15*time.Second, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.RawPoints > 10*4+4 {
		t.Errorf("raw points retained = %d, want ≈ 40 (10 min of 15s samples)", st.RawPoints)
	}
	if st.DroppedRaw == 0 {
		t.Error("no raw points dropped despite retention window")
	}
	if st.DroppedRaw+st.RawPoints != n {
		t.Errorf("dropped %d + retained %d != appended %d", st.DroppedRaw, st.RawPoints, n)
	}
	// Aggregates still cover the whole day.
	bs, err := s.Query("m", 0, 1<<62, ResHour)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 24 {
		t.Errorf("hour buckets = %d, want 24", len(bs))
	}
	// Storage reduction: aggregate buckets are far fewer than raw points.
	if st.AggBuckets >= n {
		t.Errorf("aggregation did not reduce storage: %d buckets for %d points", st.AggBuckets, n)
	}
}

func TestHourlyPattern(t *testing.T) {
	s := mustStore(t, noRetention())
	// Two days where hour h has value h.
	for d := 0; d < 2; d++ {
		for h := 0; h < 24; h++ {
			for q := 0; q < 4; q++ {
				ts := time.Duration(d)*24*time.Hour + time.Duration(h)*time.Hour + time.Duration(q)*15*time.Minute
				if err := s.Append("m", ts, float64(h)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	pat, err := s.HourlyPattern("m")
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 24; h++ {
		if math.Abs(pat[h]-float64(h)) > 1e-9 {
			t.Errorf("pattern[%d] = %v, want %d", h, pat[h], h)
		}
	}
}

func TestDailyAverages(t *testing.T) {
	s := mustStore(t, noRetention())
	// Day 0 at value 1, day 1 at value 3.
	for d := 0; d < 2; d++ {
		for i := 0; i < 24; i++ {
			ts := time.Duration(d)*24*time.Hour + time.Duration(i)*time.Hour
			if err := s.Append("m", ts, float64(1+2*d)); err != nil {
				t.Fatal(err)
			}
		}
	}
	days, err := s.DailyAverages("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 2 || days[0] != 1 || days[1] != 3 {
		t.Errorf("daily averages = %v, want [1 3]", days)
	}
}

func TestCorrelateDetrended(t *testing.T) {
	s := mustStore(t, noRetention())
	// Both keys share a rising trend; their *residuals* are opposite.
	for i := 0; i < 240; i++ {
		ts := time.Duration(i) * time.Minute
		trend := float64(i) * 0.1
		wiggle := math.Sin(float64(i) / 3)
		if err := s.Append("a", ts, trend+wiggle); err != nil {
			t.Fatal(err)
		}
		if err := s.Append("b", ts, trend-wiggle); err != nil {
			t.Fatal(err)
		}
	}
	// Raw correlation is dominated by the shared trend (strongly
	// positive); detrended correlation exposes the opposition.
	c, err := s.CorrelateDetrended("a", "b", ResMinute, 21)
	if err != nil {
		t.Fatal(err)
	}
	if c > -0.8 {
		t.Errorf("detrended correlation = %v, want strongly negative", c)
	}
	if _, err := s.CorrelateDetrended("a", "missing", ResMinute, 21); err == nil {
		t.Error("unknown key should error")
	}
	if _, err := s.CorrelateDetrended("a", "b", ResMinute, 100000); err == nil {
		t.Error("window beyond data should error")
	}
}

func TestAnomalies(t *testing.T) {
	s := mustStore(t, noRetention())
	// Flat signal with one big spike.
	spikeAt := 30 * time.Hour
	for i := 0; i < 48*60; i++ {
		ts := time.Duration(i) * time.Minute
		v := 10.0
		if ts == spikeAt {
			v = 100
		}
		if err := s.Append("m", ts, v); err != nil {
			t.Fatal(err)
		}
	}
	as, err := s.Anomalies("m", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Fatalf("anomalies = %d, want exactly the spike; got %+v", len(as), as)
	}
	if as[0].At != spikeAt {
		t.Errorf("anomaly at %v, want %v", as[0].At, spikeAt)
	}
	if as[0].Score < 5 {
		t.Errorf("anomaly score = %v, want >= 5", as[0].Score)
	}
	if _, err := s.Anomalies("m", 0); err == nil {
		t.Error("zero threshold should error")
	}
	// A constant series has no anomalies (sd = 0 path).
	for i := 0; i < 100; i++ {
		if err := s.Append("flat", time.Duration(i)*time.Minute, 5); err != nil {
			t.Fatal(err)
		}
	}
	as, err = s.Anomalies("flat", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 0 {
		t.Errorf("flat series anomalies = %d, want 0", len(as))
	}
}

func TestKeysSorted(t *testing.T) {
	s := mustStore(t, noRetention())
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := s.Append(k, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[2] != "zeta" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestConcurrentIngestion(t *testing.T) {
	s := mustStore(t, DefaultConfig())
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("srv%d/cpu", w)
			for i := 0; i < perWorker; i++ {
				if err := s.Append(key, time.Duration(i)*15*time.Second, float64(i)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Keys != workers {
		t.Errorf("keys = %d, want %d", st.Keys, workers)
	}
	// Aggregates account for every appended point.
	var total int64
	for w := 0; w < workers; w++ {
		bs, err := s.Query(fmt.Sprintf("srv%d/cpu", w), 0, 1<<62, ResHour)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bs {
			total += b.Count
		}
	}
	if total != workers*perWorker {
		t.Errorf("aggregated count = %d, want %d", total, workers*perWorker)
	}
}

func TestResolutionHelpers(t *testing.T) {
	for res, want := range map[Resolution]string{
		ResRaw: "raw", ResMinute: "1m", ResQuarter: "15m", ResHour: "1h", ResDay: "1d",
		Resolution(9): "res(9)",
	} {
		if res.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(res), res.String(), want)
		}
	}
	if iv, err := ResQuarter.Interval(15 * time.Second); err != nil || iv != 15*time.Minute {
		t.Errorf("ResQuarter.Interval = %v, %v", iv, err)
	}
	if iv, err := ResRaw.Interval(15 * time.Second); err != nil || iv != 15*time.Second {
		t.Errorf("ResRaw.Interval = %v, %v", iv, err)
	}
	if _, err := Resolution(99).Interval(time.Second); err == nil {
		t.Error("unknown resolution interval should error")
	}
	b := Bucket{Count: 4, Sum: 10}
	if b.Mean() != 2.5 {
		t.Errorf("Mean = %v", b.Mean())
	}
	if (Bucket{}).Mean() != 0 {
		t.Error("empty bucket mean should be 0")
	}
}

func TestAppenderMatchesByKeyIngest(t *testing.T) {
	mk := func() *Store {
		s, err := NewStore(Config{RawInterval: 15 * time.Second, RawRetention: time.Hour, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	byKey, byHandle := mk(), mk()
	a := byHandle.Appender("srv/cpu")
	if a.Key() != "srv/cpu" {
		t.Fatalf("handle key = %q", a.Key())
	}
	for i := 0; i < 2000; i++ {
		ts := time.Duration(i) * 15 * time.Second
		v := float64(i % 97)
		if err := byKey.Append("srv/cpu", ts, v); err != nil {
			t.Fatal(err)
		}
		if err := a.Append(ts, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, res := range []Resolution{ResRaw, ResMinute, ResHour} {
		b1, err := byKey.Query("srv/cpu", 0, 1<<62, res)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := byHandle.Query("srv/cpu", 0, 1<<62, res)
		if err != nil {
			t.Fatal(err)
		}
		if len(b1) != len(b2) {
			t.Fatalf("%v: %d vs %d buckets", res, len(b1), len(b2))
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Fatalf("%v bucket %d: %+v vs %+v", res, i, b1[i], b2[i])
			}
		}
	}
	s1, s2 := byKey.Stats(), byHandle.Stats()
	if s1 != s2 {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
}

func TestAppenderRejectsOutOfOrderAndNegative(t *testing.T) {
	s, err := NewStore(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := s.Appender("k")
	if err := a.Append(-time.Second, 1); err == nil {
		t.Error("negative timestamp accepted")
	}
	if err := a.Append(time.Minute, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(time.Second, 1); err == nil {
		t.Error("out-of-order sample accepted through handle")
	}
	// The same-key by-key path shares the series and sees the regression
	// too.
	if err := s.Append("k", time.Second, 1); err == nil {
		t.Error("out-of-order sample accepted through store after handle append")
	}
}

func TestRetentionCompactionBoundsMemory(t *testing.T) {
	interval := time.Second
	const window = 512
	s, err := NewStore(Config{RawInterval: interval, RawRetention: window * interval, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := s.Appender("k")
	const n = 20000
	for i := 0; i < n; i++ {
		if err := a.Append(time.Duration(i)*interval, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Window is [t-ret, t]: the cutoff is exclusive, so window+1 points
	// survive.
	if st.RawPoints != window+1 {
		t.Fatalf("retained %d raw points, want %d", st.RawPoints, window+1)
	}
	if st.DroppedRaw != n-(window+1) {
		t.Fatalf("dropped %d, want %d", st.DroppedRaw, n-(window+1))
	}
	// The backing slice must stay bounded near the window size, not grow
	// with total appends: compaction keeps the dead prefix under half.
	ser := s.shardFor("k").series["k"]
	if got := len(ser.raw); got > 3*window {
		t.Fatalf("backing slice holds %d points for a %d-point window", got, window)
	}
	// And the retained view matches what Query sees.
	bs, err := s.Query("k", 0, 1<<62, ResRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != window+1 {
		t.Fatalf("raw query returned %d points, want %d", len(bs), window+1)
	}
	if bs[0].Start != time.Duration(n-window-1)*interval {
		t.Fatalf("oldest retained point at %v", bs[0].Start)
	}
}
