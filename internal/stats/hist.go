package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width bucket histogram over [Lo, Hi). Samples outside
// the range are counted in dedicated under/overflow buckets so no
// observation is silently dropped.
type Histogram struct {
	lo, hi    float64
	width     float64
	counts    []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram builds a histogram with n equal buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs n > 0, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi, got [%v, %v)", lo, hi)
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(n),
		counts: make([]int64, n),
	}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.counts) { // guard float rounding at the top edge
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total reports the number of observations, including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// Bucket reports the count in bucket i and its [lo, hi) bounds.
func (h *Histogram) Bucket(i int) (count int64, lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return h.counts[i], lo, lo + h.width
}

// Buckets reports the number of in-range buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// OutOfRange reports the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.underflow, h.overflow }

// Quantile estimates the q-quantile (q in [0,1]) assuming uniform density
// within buckets. Underflow maps to lo and overflow to hi.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if target <= cum {
		return h.lo, nil
	}
	for i, c := range h.counts {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width, nil
		}
		cum = next
	}
	return h.hi, nil
}

// String renders a compact ASCII sparkline of the histogram for logs.
func (h *Histogram) String() string {
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return "(empty histogram)"
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	fmt.Fprintf(&b, "[%g..%g) ", h.lo, h.hi)
	for _, c := range h.counts {
		idx := int(math.Round(float64(c) / float64(max) * float64(len(levels)-1)))
		b.WriteRune(levels[idx])
	}
	fmt.Fprintf(&b, " n=%d", h.total)
	return b.String()
}
