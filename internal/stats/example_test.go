package stats_test

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// ExampleErlangC sizes a server pool with the classic queueing formula:
// how many servers keep the probability of queueing under 10 % at 20
// Erlangs of offered load?
func ExampleErlangC() {
	const offered = 20.0 // Erlangs
	for c := 21; ; c++ {
		p, err := stats.ErlangC(c, offered)
		if err != nil {
			panic(err)
		}
		if p < 0.10 {
			fmt.Printf("%d servers: P(wait) = %.3f\n", c, p)
			break
		}
	}
	// Output:
	// 27 servers: P(wait) = 0.096
}

// ExampleMMcWait converts the same sizing into a mean waiting time.
func ExampleMMcWait() {
	w, err := stats.MMcWait(27, 20, 1) // 27 servers, 20/s arrivals, 1/s service
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean wait: %v\n", time.Duration(w*float64(time.Second)).Round(time.Millisecond))
	// Output:
	// mean wait: 14ms
}

// ExampleRunning shows streaming moments without storing samples.
func ExampleRunning() {
	var r stats.Running
	for _, w := range []float64{180, 220, 300, 260} {
		r.Add(w)
	}
	fmt.Printf("mean=%.0fW sd=%.1fW range=[%.0f, %.0f]\n", r.Mean(), r.StdDev(), r.Min(), r.Max())
	// Output:
	// mean=240W sd=51.6W range=[180, 300]
}
