// Package stats provides the statistical substrate used throughout the
// elastic power-management library: streaming moments, percentiles,
// histograms, correlation, Gaussian tail bounds, and the Erlang-C queueing
// formula. Everything is allocation-conscious and deterministic; no global
// state is kept.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Running accumulates streaming mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN folds the same observation in n times (useful for weighted series).
func (r *Running) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		r.Add(x)
	}
}

// N reports the number of observations.
func (r *Running) N() int { return r.n }

// Mean reports the running mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Min reports the smallest observation, or 0 with no observations.
func (r *Running) Min() float64 { return r.min }

// Max reports the largest observation, or 0 with no observations.
func (r *Running) Max() float64 { return r.max }

// Variance reports the unbiased sample variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev reports the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Sum reports the total of all observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Merge combines another accumulator into this one (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	delta := o.mean - r.mean
	total := r.n + o.n
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(total)
	r.mean += delta * float64(o.n) / float64(total)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = total
}

// String summarizes the accumulator for logs.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// Mean computes the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum computes the total of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance computes the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev computes the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax reports the extrema of xs. It returns ErrEmpty for an empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Desc is a four-number summary of a sample set — the aggregate the
// parallel experiment harness reports per experiment across seed
// replications. JSON tags keep the machine-readable sidecar stable.
type Desc struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
}

// Describe reduces xs to its four-number summary. It returns ErrEmpty for
// an empty slice.
func Describe(xs []float64) (Desc, error) {
	if len(xs) == 0 {
		return Desc{}, ErrEmpty
	}
	min, max, err := MinMax(xs)
	if err != nil {
		return Desc{}, err
	}
	return Desc{
		N:      len(xs),
		Mean:   Mean(xs),
		Min:    min,
		Max:    max,
		StdDev: StdDev(xs),
	}, nil
}

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,1]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p), nil
}

// Percentiles returns several quantiles of xs at once, sorting only once.
func Percentiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, 0, len(ps))
	for _, p := range ps {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("stats: percentile %v out of [0,1]", p)
		}
		out = append(out, quantileSorted(sorted, p))
	}
	return out, nil
}

func quantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation computes the Pearson correlation coefficient of two
// equal-length series. It returns 0 when either series is constant.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Autocorrelation computes the lag-k autocorrelation of xs.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	if lag < 0 || lag >= len(xs) {
		return 0, fmt.Errorf("stats: lag %d out of range for %d samples", lag, len(xs))
	}
	return Correlation(xs[:len(xs)-lag], xs[lag:])
}

// Detrend subtracts a centered moving average of the given window from xs,
// returning the residual series. It is used by telemetry queries that
// correlate load-balancer behaviour after removing the hourly trend
// (paper §5.3). Window must be odd and positive.
func Detrend(xs []float64, window int) ([]float64, error) {
	if window <= 0 || window%2 == 0 {
		return nil, fmt.Errorf("stats: detrend window %d must be positive and odd", window)
	}
	if window > len(xs) {
		return nil, fmt.Errorf("stats: detrend window %d exceeds series length %d", window, len(xs))
	}
	half := window / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		out[i] = xs[i] - Mean(xs[lo:hi])
	}
	return out, nil
}

// NormalCDF evaluates the standard normal cumulative distribution at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalTail evaluates P(Z > z) for a standard normal Z.
func NormalTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormalQuantile returns z such that NormalCDF(z) = p, via the
// Acklam rational approximation refined with one Newton step. p must be
// in (0,1).
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: quantile argument %v out of (0,1)", p)
	}
	// Acklam's approximation coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var z float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		z = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		z = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		z = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Newton refinement using the analytic density.
	e := NormalCDF(z) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z -= u / (1 + z*u/2)
	return z, nil
}

// ErlangC returns the probability that an arriving job must queue in an
// M/M/c system with offered load a = lambda/mu Erlangs and c servers.
// It returns 1 when the system is unstable (a >= c).
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("stats: ErlangC needs c > 0, got %d", c)
	}
	if a < 0 {
		return 0, fmt.Errorf("stats: ErlangC needs a >= 0, got %v", a)
	}
	if a >= float64(c) {
		return 1, nil
	}
	// Iterative Erlang-B then convert, numerically stable for large c.
	eb := 1.0
	for k := 1; k <= c; k++ {
		eb = a * eb / (float64(k) + a*eb)
	}
	rho := a / float64(c)
	return eb / (1 - rho + rho*eb), nil
}

// MMcWait returns the mean waiting time (excluding service) in an M/M/c
// queue with arrival rate lambda, per-server service rate mu, and c servers.
// It returns +Inf when unstable.
func MMcWait(c int, lambda, mu float64) (float64, error) {
	if mu <= 0 {
		return 0, fmt.Errorf("stats: MMcWait needs mu > 0, got %v", mu)
	}
	a := lambda / mu
	pq, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	if a >= float64(c) {
		return math.Inf(1), nil
	}
	return pq / (float64(c)*mu - lambda), nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
