package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMMcWaitMatchesMM1ClosedForm pins the Erlang-C machinery against
// the closed-form M/M/1 solution when c = 1: the queueing probability
// is exactly ρ and the mean wait (excluding service) is ρ/(μ−λ).
// Randomized over utilizations to cover the stable region densely.
func TestMMcWaitMatchesMM1ClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		mu := 0.1 + rng.Float64()*100
		rho := rng.Float64()*0.98 + 0.01 // stable: ρ in (0.01, 0.99)
		lambda := rho * mu

		pq, err := ErlangC(1, lambda/mu)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pq-rho) > 1e-12*math.Max(1, rho) {
			t.Fatalf("ErlangC(1, %v) = %v, want ρ = %v", lambda/mu, pq, rho)
		}

		wait, err := MMcWait(1, lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		want := rho / (mu - lambda)
		if math.Abs(wait-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("MMcWait(1, λ=%v, μ=%v) = %v, want M/M/1 Wq = %v", lambda, mu, wait, want)
		}
	}
	// Boundary: the unstable M/M/1 waits forever.
	wait, err := MMcWait(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(wait, 1) {
		t.Errorf("unstable M/M/1 wait = %v, want +Inf", wait)
	}
}

// TestMMcWaitDecreasesWithServers checks the multi-server sanity
// property the admission controller relies on: at fixed offered load,
// adding servers never increases the expected wait.
func TestMMcWaitDecreasesWithServers(t *testing.T) {
	const lambda, mu = 90.0, 10.0 // a = 9 Erlangs
	prev := math.Inf(1)
	for c := 9; c <= 40; c++ {
		wait, err := MMcWait(c, lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		if wait > prev+1e-12 {
			t.Fatalf("wait rose from %v to %v at c=%d", prev, wait, c)
		}
		prev = wait
	}
	if prev <= 0 || prev > 1e-3 {
		t.Errorf("wait at c=40 = %v, want small positive", prev)
	}
}
