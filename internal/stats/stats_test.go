package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if !almost(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population sd is 2; sample variance = 32/7.
	if !almost(r.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if !almost(r.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %v, want 40", r.Sum())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 {
		t.Errorf("zero-value Running should report zeros, got %s", r.String())
	}
}

// sanitize maps arbitrary quick-generated floats into a numerically tame
// range so overflow does not mask genuine algorithmic bugs.
func sanitize(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, math.Mod(x, 1e6))
	}
	return out
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	check := func(rawXs, rawYs []float64) bool {
		xs, ys := sanitize(rawXs), sanitize(rawYs)
		var all, a, b Running
		for _, x := range xs {
			all.Add(x)
			a.Add(x)
		}
		for _, y := range ys {
			all.Add(y)
			b.Add(y)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return almost(a.Mean(), all.Mean(), 1e-9*(1+math.Abs(all.Mean()))) &&
			almost(a.Variance(), all.Variance(), 1e-6*(1+all.Variance()))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestMeanVariance(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		mean     float64
		variance float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 3, 0},
		{"pair", []float64{1, 3}, 2, 2},
		{"constant", []float64{5, 5, 5, 5}, 5, 0},
		{"mixed", []float64{-1, 0, 1}, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almost(got, tt.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Variance(tt.xs); !almost(got, tt.variance, 1e-12) {
				t.Errorf("Variance = %v, want %v", got, tt.variance)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{1, 50},
		{0.5, 35},
		{0.25, 20},
		{0.75, 40},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almost(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Error("Percentile on empty slice should error")
	}
	if _, err := Percentile(xs, 1.5); err == nil {
		t.Error("Percentile out of range should error")
	}
}

func TestPercentilesMatchesSingle(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 3, 8, 2, 6, 5}
	ps := []float64{0.1, 0.5, 0.9, 0.99}
	multi, err := Percentiles(xs, ps...)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		single, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(multi[i], single, 1e-12) {
			t.Errorf("Percentiles[%v] = %v, want %v", p, multi[i], single)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	got, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	got, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", got)
	}
	flat := []float64{7, 7, 7, 7, 7}
	got, err = Correlation(xs, flat)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("correlation with constant = %v, want 0", got)
	}
	if _, err := Correlation(xs, xs[:3]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestCorrelationBounded(t *testing.T) {
	check := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 4 {
			return true
		}
		n := len(xs) / 2
		c, err := Correlation(xs[:n], xs[n:2*n])
		if err != nil {
			return false
		}
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelationLagZero(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 6, 8, 7}
	got, err := Autocorrelation(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 1, 1e-12) {
		t.Errorf("lag-0 autocorrelation = %v, want 1", got)
	}
	if _, err := Autocorrelation(xs, len(xs)); err == nil {
		t.Error("excessive lag should error")
	}
}

func TestDetrendRemovesConstantOffset(t *testing.T) {
	xs := make([]float64, 21)
	for i := range xs {
		xs[i] = 100 // constant series: residual must be ~0 everywhere
	}
	res, err := Detrend(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !almost(r, 0, 1e-9) {
			t.Errorf("residual[%d] = %v, want 0", i, r)
		}
	}
	if _, err := Detrend(xs, 4); err == nil {
		t.Error("even window should error")
	}
	if _, err := Detrend(xs[:3], 5); err == nil {
		t.Error("window larger than series should error")
	}
}

func TestNormalCDFAndTail(t *testing.T) {
	tests := []struct {
		z   float64
		cdf float64
		tol float64
	}{
		{0, 0.5, 1e-12},
		{1.96, 0.975, 1e-3},
		{-1.96, 0.025, 1e-3},
		{3, 0.99865, 1e-4},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.z); !almost(got, tt.cdf, tt.tol) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.z, got, tt.cdf)
		}
		if got := NormalTail(tt.z); !almost(got, 1-tt.cdf, tt.tol) {
			t.Errorf("NormalTail(%v) = %v, want %v", tt.z, got, 1-tt.cdf)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		z, err := NormalQuantile(p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", p, err)
		}
		if back := NormalCDF(z); !almost(back, p, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%v) should error", p)
		}
	}
}

func TestErlangC(t *testing.T) {
	// Known value: c=2, a=1 Erlang → P(wait) = 1/3.
	got, err := ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 1.0/3.0, 1e-12) {
		t.Errorf("ErlangC(2,1) = %v, want 1/3", got)
	}
	// Single server reduces to rho.
	got, err = ErlangC(1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.7, 1e-12) {
		t.Errorf("ErlangC(1,0.7) = %v, want 0.7", got)
	}
	// Unstable system always waits.
	got, err = ErlangC(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("unstable ErlangC = %v, want 1", got)
	}
	if _, err := ErlangC(0, 1); err == nil {
		t.Error("c=0 should error")
	}
	if _, err := ErlangC(2, -1); err == nil {
		t.Error("negative load should error")
	}
}

func TestErlangCIsProbability(t *testing.T) {
	check := func(c uint8, load float64) bool {
		servers := int(c%64) + 1
		a := math.Abs(load)
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, float64(servers)) // keep stable
		p, err := ErlangC(servers, a)
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMMcWait(t *testing.T) {
	// M/M/1: W = rho/(mu - lambda) with rho = lambda/mu.
	w, err := MMcWait(1, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(w, 1.0, 1e-12) {
		t.Errorf("M/M/1 wait = %v, want 1", w)
	}
	w, err = MMcWait(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(w, 1) {
		t.Errorf("unstable wait = %v, want +Inf", w)
	}
	if _, err := MMcWait(1, 1, 0); err == nil {
		t.Error("mu=0 should error")
	}
}

func TestClampAndLerp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.3, 0, 1); got != 0.3 {
		t.Errorf("Clamp(0.3,0,1) = %v", got)
	}
	if got := Lerp(10, 20, 0.5); got != 15 {
		t.Errorf("Lerp = %v, want 15", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 5 {
		t.Errorf("MinMax = %v/%v, want -1/5", min, max)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("empty MinMax should error")
	}
}
