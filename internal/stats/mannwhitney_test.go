package stats

import (
	"math"
	"testing"
)

func TestMannWhitneyCompleteSeparation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{6, 7, 8, 9, 10}
	r, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact {
		t.Error("small untied samples should use the exact distribution")
	}
	if r.U != 0 {
		t.Errorf("U = %v, want 0", r.U)
	}
	// P(U <= 0) = 1/C(10,5) = 1/252; two-sided doubles it.
	want := 2.0 / 252.0
	if math.Abs(r.P-want) > 1e-12 {
		t.Errorf("p = %v, want %v", r.P, want)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5}
	r, err := MannWhitneyU(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 {
		t.Errorf("identical samples p = %v, want 1", r.P)
	}
}

func TestMannWhitneyInterleaved(t *testing.T) {
	// Perfectly interleaved samples: no evidence of a shift, p must be
	// large.
	x := []float64{1, 3, 5, 7, 9}
	y := []float64{2, 4, 6, 8, 10}
	r, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.5 {
		t.Errorf("interleaved samples p = %v, want >= 0.5", r.P)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	x := []float64{1.2, 1.4, 1.1, 1.3, 1.5}
	y := []float64{2.1, 2.3, 1.9, 2.0, 2.2}
	a, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MannWhitneyU(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.P-b.P) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", a.P, b.P)
	}
	if math.Abs(a.U+b.U-float64(len(x)*len(y))) > 1e-9 {
		t.Errorf("U + U' = %v, want %d", a.U+b.U, len(x)*len(y))
	}
}

func TestMannWhitneyTiesFallBackToNormal(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3}
	y := []float64{2, 3, 3, 4, 4}
	r, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact {
		t.Error("tied samples must use the normal approximation")
	}
	if r.P <= 0 || r.P > 1 {
		t.Errorf("p = %v out of range", r.P)
	}
}

func TestMannWhitneyLargeSamplesNormal(t *testing.T) {
	var x, y []float64
	for i := 0; i < 30; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i)+20)
	}
	r, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact {
		t.Error("n=30 should use the normal approximation")
	}
	if r.P > 1e-6 {
		t.Errorf("clearly shifted samples p = %v, want tiny", r.P)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := MannWhitneyU([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN accepted")
	}
}
