package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// TestDescribeIdenticalSamplesExact: K copies of a dyadic-rational value
// sum and average without rounding, so Describe must report stddev
// exactly zero and mean exactly equal to min and max. This pins the
// harness aggregation contract: replications that agree perfectly must
// never show phantom spread.
func TestDescribeIdenticalSamplesExact(t *testing.T) {
	prop := func(raw float64, k uint8) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		// Quantize to an integer small enough that 255 copies sum
		// exactly in float64.
		x := math.Trunc(math.Remainder(raw, 1<<40))
		n := int(k) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = x
		}
		d, err := Describe(xs)
		if err != nil {
			return false
		}
		return d.N == n && d.Mean == x && d.Min == x && d.Max == x && d.StdDev == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestDescribeIdenticalSamplesArbitrary: for arbitrary (non-dyadic)
// values the mean of K identical samples can round (e.g. mean of three
// 0.1s), so the contract weakens to ulp-scale agreement — min and max
// stay exact, and the spread stays far below anything a real experiment
// difference would produce.
func TestDescribeIdenticalSamplesArbitrary(t *testing.T) {
	prop := func(raw float64, k uint8) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		x := math.Remainder(raw, 1e150)
		n := int(k) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = x
		}
		d, err := Describe(xs)
		if err != nil {
			return false
		}
		scale := math.Abs(x)
		return d.Min == x && d.Max == x &&
			math.Abs(d.Mean-x) <= 1e-12*scale &&
			d.StdDev <= 1e-12*scale
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestDescribeMatchesRunning: the streaming accumulator and the batch
// summary must agree on identical inputs — the harness uses both.
func TestDescribeMatchesRunning(t *testing.T) {
	xs := []float64{3.5, -1.25, 0, 7.75, 3.5, 2.125}
	d, err := Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if d.N != r.N() || d.Min != r.Min() || d.Max != r.Max() {
		t.Fatalf("Describe %+v disagrees with Running n=%d min=%v max=%v", d, r.N(), r.Min(), r.Max())
	}
	if math.Abs(d.Mean-r.Mean()) > 1e-12 || math.Abs(d.StdDev-r.StdDev()) > 1e-12 {
		t.Fatalf("Describe mean/stddev %v/%v vs Running %v/%v", d.Mean, d.StdDev, r.Mean(), r.StdDev())
	}
}
